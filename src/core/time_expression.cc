#include "core/time_expression.h"

#include <cctype>

namespace hgdb {

namespace {

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

bool Eat(const std::string& s, size_t* pos, char c) {
  SkipSpace(s, pos);
  if (*pos < s.size() && s[*pos] == c) {
    ++*pos;
    return true;
  }
  return false;
}

}  // namespace

// expr := and ('|' and)*
Status TimeExpression::ParseOr(const std::string& s, size_t* pos, size_t num_vars,
                               std::unique_ptr<Node>* out) {
  std::unique_ptr<Node> lhs;
  HG_RETURN_NOT_OK(ParseAnd(s, pos, num_vars, &lhs));
  while (Eat(s, pos, '|')) {
    std::unique_ptr<Node> rhs;
    HG_RETURN_NOT_OK(ParseAnd(s, pos, num_vars, &rhs));
    auto node = std::make_unique<Node>();
    node->op = Node::Op::kOr;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  *out = std::move(lhs);
  return Status::OK();
}

// and := factor ('&' factor)*
Status TimeExpression::ParseAnd(const std::string& s, size_t* pos, size_t num_vars,
                                std::unique_ptr<Node>* out) {
  std::unique_ptr<Node> lhs;
  HG_RETURN_NOT_OK(ParseFactor(s, pos, num_vars, &lhs));
  while (Eat(s, pos, '&')) {
    std::unique_ptr<Node> rhs;
    HG_RETURN_NOT_OK(ParseFactor(s, pos, num_vars, &rhs));
    auto node = std::make_unique<Node>();
    node->op = Node::Op::kAnd;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  *out = std::move(lhs);
  return Status::OK();
}

// factor := '!' factor | '(' expr ')' | 't' digits
Status TimeExpression::ParseFactor(const std::string& s, size_t* pos, size_t num_vars,
                                   std::unique_ptr<Node>* out) {
  SkipSpace(s, pos);
  if (Eat(s, pos, '!')) {
    std::unique_ptr<Node> inner;
    HG_RETURN_NOT_OK(ParseFactor(s, pos, num_vars, &inner));
    auto node = std::make_unique<Node>();
    node->op = Node::Op::kNot;
    node->lhs = std::move(inner);
    *out = std::move(node);
    return Status::OK();
  }
  if (Eat(s, pos, '(')) {
    HG_RETURN_NOT_OK(ParseOr(s, pos, num_vars, out));
    if (!Eat(s, pos, ')')) {
      return Status::InvalidArgument("time expression: missing ')'");
    }
    return Status::OK();
  }
  if (Eat(s, pos, 't')) {
    size_t start = *pos;
    int value = 0;
    while (*pos < s.size() && std::isdigit(static_cast<unsigned char>(s[*pos]))) {
      value = value * 10 + (s[*pos] - '0');
      ++*pos;
    }
    if (*pos == start) {
      return Status::InvalidArgument("time expression: expected digits after 't'");
    }
    if (static_cast<size_t>(value) >= num_vars) {
      return Status::InvalidArgument("time expression: t" + std::to_string(value) +
                                     " out of range (have " +
                                     std::to_string(num_vars) + " time points)");
    }
    auto node = std::make_unique<Node>();
    node->op = Node::Op::kVar;
    node->var = value;
    *out = std::move(node);
    return Status::OK();
  }
  return Status::InvalidArgument("time expression: unexpected input at position " +
                                 std::to_string(*pos));
}

Result<TimeExpression> TimeExpression::Parse(std::vector<Timestamp> times,
                                             const std::string& formula) {
  TimeExpression expr;
  expr.times_ = std::move(times);
  size_t pos = 0;
  std::unique_ptr<Node> root;
  HG_RETURN_NOT_OK(ParseOr(formula, &pos, expr.times_.size(), &root));
  SkipSpace(formula, &pos);
  if (pos != formula.size()) {
    return Status::InvalidArgument("time expression: trailing input at position " +
                                   std::to_string(pos));
  }
  expr.root_ = std::shared_ptr<Node>(root.release());
  return expr;
}

bool TimeExpression::Eval(const Node& n, const std::vector<bool>& membership) {
  switch (n.op) {
    case Node::Op::kVar:
      return membership[static_cast<size_t>(n.var)];
    case Node::Op::kAnd:
      return Eval(*n.lhs, membership) && Eval(*n.rhs, membership);
    case Node::Op::kOr:
      return Eval(*n.lhs, membership) || Eval(*n.rhs, membership);
    case Node::Op::kNot:
      return !Eval(*n.lhs, membership);
  }
  return false;
}

std::string TimeExpression::Render(const Node& n) {
  switch (n.op) {
    case Node::Op::kVar:
      return "t" + std::to_string(n.var);
    case Node::Op::kAnd:
      return "(" + Render(*n.lhs) + " & " + Render(*n.rhs) + ")";
    case Node::Op::kOr:
      return "(" + Render(*n.lhs) + " | " + Render(*n.rhs) + ")";
    case Node::Op::kNot:
      return "!" + Render(*n.lhs);
  }
  return "?";
}

bool TimeExpression::Evaluate(const std::vector<bool>& membership) const {
  if (!root_ || membership.size() < times_.size()) return false;
  return Eval(*root_, membership);
}

std::string TimeExpression::ToString() const {
  return root_ ? Render(*root_) : "<empty>";
}

}  // namespace hgdb
