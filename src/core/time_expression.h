#ifndef HISTGRAPH_CORE_TIME_EXPRESSION_H_
#define HISTGRAPH_CORE_TIME_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace hgdb {

/// \brief A multinomial Boolean expression over k time points (Section 3.2.1).
///
/// `GetHistGraph(TimeExpression, ...)` retrieves the hypothetical graph whose
/// elements satisfy the expression — e.g. `(t0 & !t1)` selects the elements
/// valid at t0 but not at t1. Time points are referenced as t0, t1, ... and
/// combined with `&`, `|`, `!`, and parentheses.
class TimeExpression {
 public:
  /// Builds an expression over `times` from a boolean formula string, e.g.
  /// TimeExpression::Parse({t_a, t_b}, "t0 & !t1").
  static Result<TimeExpression> Parse(std::vector<Timestamp> times,
                                      const std::string& formula);

  /// Evaluates the expression given per-timepoint membership of an element.
  bool Evaluate(const std::vector<bool>& membership) const;

  const std::vector<Timestamp>& times() const { return times_; }
  std::string ToString() const;

 private:
  struct Node {
    enum class Op { kVar, kAnd, kOr, kNot } op = Op::kVar;
    int var = -1;
    std::unique_ptr<Node> lhs, rhs;
  };

  static Status ParseOr(const std::string& s, size_t* pos, size_t num_vars,
                        std::unique_ptr<Node>* out);
  static Status ParseAnd(const std::string& s, size_t* pos, size_t num_vars,
                         std::unique_ptr<Node>* out);
  static Status ParseFactor(const std::string& s, size_t* pos, size_t num_vars,
                            std::unique_ptr<Node>* out);
  static bool Eval(const Node& n, const std::vector<bool>& membership);
  static std::string Render(const Node& n);

  std::vector<Timestamp> times_;
  std::shared_ptr<Node> root_;  // shared_ptr keeps TimeExpression copyable.
};

}  // namespace hgdb

#endif  // HISTGRAPH_CORE_TIME_EXPRESSION_H_
