#ifndef HISTGRAPH_CORE_HIST_OBJECTS_H_
#define HISTGRAPH_CORE_HIST_OBJECTS_H_

#include <string>
#include <vector>

#include "core/graph_manager.h"

namespace hgdb {

class HistEdge;

/// \brief Object-style node handle mirroring the paper's traversal snippet:
///
///   List<HistNode> nodes = h1.getNodes();
///   List<HistNode> neighborList = nodes.get(0).getNeighbors();
///   HistEdge ed = h1.getEdgeObj(nodes.get(0), neighborList.get(0));
///
/// (Section 3.2.1; the paper's longer-term goal is the Blueprints API — this
/// is the equivalent C++ shape.) Handles are cheap value types borrowing the
/// HistGraph; they must not outlive it.
class HistNode {
 public:
  HistNode() = default;
  HistNode(const HistGraph* graph, NodeId id) : graph_(graph), id_(id) {}

  NodeId id() const { return id_; }
  bool valid() const { return graph_ != nullptr && graph_->HasNode(id_); }

  /// Neighbor handles in this historical graph.
  std::vector<HistNode> GetNeighbors() const;

  /// Incident edge handles.
  std::vector<HistEdge> GetEdges() const;

  /// Attribute value as of the graph's time point, or nullptr.
  const std::string* GetAttr(const std::string& key) const {
    return graph_ == nullptr ? nullptr : graph_->GetNodeAttr(id_, key);
  }

  bool operator==(const HistNode& other) const { return id_ == other.id_; }

 private:
  const HistGraph* graph_ = nullptr;
  NodeId id_ = kInvalidNodeId;
};

/// \brief Object-style edge handle (the paper's HistEdge).
class HistEdge {
 public:
  HistEdge() = default;
  HistEdge(const HistGraph* graph, EdgeId id) : graph_(graph), id_(id) {}

  EdgeId id() const { return id_; }
  bool valid() const { return graph_ != nullptr && graph_->HasEdge(id_); }

  HistNode GetSource() const;
  HistNode GetDestination() const;
  bool IsDirected() const;

  const std::string* GetAttr(const std::string& key) const {
    return graph_ == nullptr ? nullptr : graph_->GetEdgeAttr(id_, key);
  }

 private:
  const HistGraph* graph_ = nullptr;
  EdgeId id_ = kInvalidEdgeId;
};

/// All node handles of a historical graph (the paper's h1.getNodes()).
std::vector<HistNode> GetNodeObjs(const HistGraph& graph);

/// The edge handle between two nodes, if one exists in this graph (the
/// paper's h1.getEdgeObj(u, v)). When parallel edges connect the pair, the
/// lowest edge id is returned.
Result<HistEdge> GetEdgeObj(const HistGraph& graph, const HistNode& a,
                            const HistNode& b);

}  // namespace hgdb

#endif  // HISTGRAPH_CORE_HIST_OBJECTS_H_
