#ifndef HISTGRAPH_CORE_ATTR_OPTIONS_H_
#define HISTGRAPH_CORE_ATTR_OPTIONS_H_

#include <string>
#include <unordered_set>

#include "common/result.h"
#include "temporal/event.h"

namespace hgdb {

/// \brief Parsed attribute-retrieval options (Table 1 of the paper).
///
/// The option string concatenates sub-options:
///   "-node:all"   (default) no node attributes
///   "+node:all"   all node attributes
///   "+node:attr1" fetch node attribute attr1 (overrides -node:all for it)
///   "-node:attr1" skip node attribute attr1 (overrides +node:all for it)
/// and the same for "edge:". Example from the paper: to fetch all node
/// attributes except salary plus the edge attribute name:
///   "+node:all-node:salary+edge:name".
struct AttrOptions {
  bool node_all = false;
  bool edge_all = false;
  std::unordered_set<std::string> node_include, node_exclude;
  std::unordered_set<std::string> edge_include, edge_exclude;

  /// Parses an option string; empty string = structure only.
  static Result<AttrOptions> Parse(const std::string& spec);

  /// Columnar components a query with these options must fetch.
  unsigned Components() const {
    unsigned c = kCompStruct;
    if (node_all || !node_include.empty()) c |= kCompNodeAttr;
    if (edge_all || !edge_include.empty()) c |= kCompEdgeAttr;
    return c;
  }

  /// Whether a specific attribute key survives filtering.
  bool KeepNodeAttr(const std::string& key) const {
    if (node_include.contains(key)) return true;
    if (node_exclude.contains(key)) return false;
    return node_all;
  }
  bool KeepEdgeAttr(const std::string& key) const {
    if (edge_include.contains(key)) return true;
    if (edge_exclude.contains(key)) return false;
    return edge_all;
  }

  /// True if some individual attribute filtering is needed beyond whole
  /// components.
  bool NeedsFiltering() const {
    return !node_include.empty() || !node_exclude.empty() || !edge_include.empty() ||
           !edge_exclude.empty();
  }
};

}  // namespace hgdb

#endif  // HISTGRAPH_CORE_ATTR_OPTIONS_H_
