#include "core/graph_manager.h"

#include <cstdlib>

namespace hgdb {

Result<std::unique_ptr<GraphManager>> GraphManager::Create(KVStore* store,
                                                           GraphManagerOptions options) {
  auto dg = DeltaGraph::Create(store, options.index);
  if (!dg.ok()) return dg.status();
  auto gm = std::unique_ptr<GraphManager>(
      new GraphManager(std::move(dg).value(), std::move(options)));
  gm->WireExecPool();
  return gm;
}

Result<std::unique_ptr<GraphManager>> GraphManager::Open(KVStore* store,
                                                         GraphManagerOptions options) {
  auto dg = DeltaGraph::Open(store);
  if (!dg.ok()) return dg.status();
  options.index = dg.value()->options();
  auto gm = std::unique_ptr<GraphManager>(
      new GraphManager(std::move(dg).value(), std::move(options)));
  gm->WireExecPool();
  gm->pool_.InitCurrent(gm->dg_->current());
  gm->leaves_seen_ = gm->dg_->skeleton().leaves().size();
  return gm;
}

void GraphManager::WireExecPool() {
  if (options_.exec_parallelism < 0 || options_.exec_parallelism == 1) {
    // 1 = documented forced serial; negative = invalid, fail conservative
    // (serial) rather than silently spawning the shared pool.
    dg_->SetTaskPool(nullptr);
  } else if (options_.exec_parallelism >= 2) {
    owned_exec_pool_ = std::make_unique<TaskPool>(options_.exec_parallelism);
    dg_->SetTaskPool(owned_exec_pool_.get());
  }
  // 0: keep the DeltaGraph default (the lazily resolved shared pool).

  if (options_.io_parallelism < 0) {
    dg_->SetIoPool(nullptr);  // Prefetch off: fetches block their worker.
  } else if (options_.io_parallelism >= 1) {
    owned_io_pool_ = std::make_unique<IoPool>(options_.io_parallelism);
    dg_->SetIoPool(owned_io_pool_.get());
  }
  // 0: keep the DeltaGraph default (IoPool::Shared via HISTGRAPH_IO_THREADS).
}

std::unique_ptr<RetrievalSession> GraphManager::NewRetrievalSession() {
  return std::make_unique<RetrievalSession>(dg_.get());
}

Status GraphManager::SetInitialSnapshot(const Snapshot& g0, Timestamp t0) {
  HG_RETURN_NOT_OK(dg_->SetInitialSnapshot(g0, t0));
  pool_.InitCurrent(g0);
  leaves_seen_ = dg_->skeleton().leaves().size();
  return Status::OK();
}

Status GraphManager::ApplyEvent(const Event& e) {
  HG_RETURN_NOT_OK(dg_->Append(e));
  HG_RETURN_NOT_OK(pool_.ApplyEventToCurrent(e));
  // If the append cut a leaf, the recent eventlist was folded into the index
  // and the bit-1 (recently deleted, unindexed) marks can be dropped.
  const size_t leaves = dg_->skeleton().leaves().size();
  if (leaves != leaves_seen_) {
    pool_.ClearRecentlyDeleted();
    leaves_seen_ = leaves;
  }
  return Status::OK();
}

Status GraphManager::ApplyEvents(const std::vector<Event>& events) {
  // Batched form: one AppendAll — and therefore ONE published epoch — for
  // the whole batch, so concurrent readers never observe a torn batch. The
  // pool's current graph then catches up event by event.
  HG_RETURN_NOT_OK(dg_->AppendAll(events));
  for (const auto& e : events) HG_RETURN_NOT_OK(pool_.ApplyEventToCurrent(e));
  const size_t leaves = dg_->skeleton().leaves().size();
  if (leaves != leaves_seen_) {
    pool_.ClearRecentlyDeleted();
    leaves_seen_ = leaves;
  }
  return Status::OK();
}

Status GraphManager::FinalizeIndex() {
  HG_RETURN_NOT_OK(dg_->Finalize());
  pool_.ClearRecentlyDeleted();
  leaves_seen_ = dg_->skeleton().leaves().size();
  return Status::OK();
}

void GraphManager::FilterAttrs(Snapshot* snap, const AttrOptions& opts) {
  if (!opts.NeedsFiltering()) return;
  std::vector<std::pair<NodeId, AttrId>> drop_node_attrs;
  for (const auto& [n, attrs] : snap->node_attrs()) {
    for (const auto& [k, v] : attrs) {
      if (!opts.KeepNodeAttr(AttrStr(k))) drop_node_attrs.emplace_back(n, k);
    }
  }
  for (const auto& [n, k] : drop_node_attrs) snap->RemoveNodeAttrId(n, k);
  std::vector<std::pair<EdgeId, AttrId>> drop_edge_attrs;
  for (const auto& [e, attrs] : snap->edge_attrs()) {
    for (const auto& [k, v] : attrs) {
      if (!opts.KeepEdgeAttr(AttrStr(k))) drop_edge_attrs.emplace_back(e, k);
    }
  }
  for (const auto& [e, k] : drop_edge_attrs) snap->RemoveEdgeAttrId(e, k);
}

Result<size_t> GraphManager::MaterializeDepth(int depth) {
  auto count = dg_->MaterializeDepth(depth, kCompAll);
  if (!count.ok()) return count.status();
  for (int32_t node_id : dg_->NodesAtDepth(depth)) {
    // Skip nodes already overlaid.
    bool known = false;
    for (const auto& base : materialized_bases_) {
      if (base.node_id == node_id) {
        known = true;
        break;
      }
    }
    if (known) continue;
    const Snapshot* snap = dg_->materialized_snapshot(node_id);
    if (snap == nullptr) continue;
    auto pool_id = pool_.OverlayMaterialized(*snap);
    if (!pool_id.ok()) return pool_id.status();
    materialized_bases_.push_back(MaterializedBase{pool_id.value(), node_id, snap});
  }
  return count.value();
}

Result<HistGraph> GraphManager::OverlaySnapshot(Snapshot&& snap, Timestamp t,
                                                unsigned components) {
  Result<PoolGraphId> id = Status::OK();
  // The dependence decision of Section 6: "during the query plan
  // construction, we count the total number of events that need to be
  // applied to the materialized graph, and if it is small relative to the
  // size of the graph, the fetched graph is marked as being dependent".
  // Candidate bases: the current graph and the materialized graph whose
  // size is closest to the snapshot's.
  bool overlaid = false;
  if (options_.dependent_overlay_threshold > 0 && components == kCompAll) {
    std::vector<std::pair<PoolGraphId, const Snapshot*>> candidates;
    if (options_.index.maintain_current) {
      candidates.emplace_back(kCurrentGraph, &dg_->current());
    }
    const MaterializedBase* closest = nullptr;
    for (const auto& base : materialized_bases_) {
      if (closest == nullptr ||
          std::llabs(static_cast<long long>(base.snapshot->ElementCount()) -
                     static_cast<long long>(snap.ElementCount())) <
              std::llabs(static_cast<long long>(closest->snapshot->ElementCount()) -
                         static_cast<long long>(snap.ElementCount()))) {
        closest = &base;
      }
    }
    if (closest != nullptr) candidates.emplace_back(closest->pool_id, closest->snapshot);

    PoolGraphId best_base = -1;
    Delta best_diff;
    size_t best_size = 0;
    for (const auto& [pool_id, base_snap] : candidates) {
      Delta diff = Delta::Between(snap, *base_snap);
      if (best_base < 0 || diff.ElementCount() < best_size) {
        best_base = pool_id;
        best_size = diff.ElementCount();
        best_diff = std::move(diff);
      }
    }
    if (best_base >= 0 &&
        best_size <= options_.dependent_overlay_threshold *
                         static_cast<double>(std::max<size_t>(1, snap.ElementCount()))) {
      id = pool_.OverlayDependent(best_base, best_diff);
      overlaid = true;
    }
  }
  if (!overlaid) id = pool_.OverlayHistorical(snap);
  if (!id.ok()) return id.status();
  HistGraph out;
  out.id_ = id.value();
  out.time_ = t;
  out.view_ = pool_.View(out.id_);
  return out;
}

Result<HistGraph> GraphManager::GetHistGraph(Timestamp t,
                                             const std::string& attr_options) {
  auto graphs = GetHistGraphs({t}, attr_options);
  if (!graphs.ok()) return graphs.status();
  return std::move(graphs.value()[0]);
}

Result<std::vector<HistGraph>> GraphManager::GetHistGraphs(
    const std::vector<Timestamp>& times, const std::string& attr_options) {
  auto opts = AttrOptions::Parse(attr_options);
  if (!opts.ok()) return opts.status();
  const unsigned components = opts.value().Components();
  auto snaps = dg_->GetSnapshots(times, components);
  if (!snaps.ok()) return snaps.status();
  std::vector<HistGraph> out;
  out.reserve(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Snapshot snap = std::move(snaps.value()[i]);
    FilterAttrs(&snap, opts.value());
    auto hist = OverlaySnapshot(std::move(snap), times[i], components);
    if (!hist.ok()) return hist.status();
    out.push_back(std::move(hist).value());
  }
  return out;
}

Result<HistGraph> GraphManager::GetHistGraph(const TimeExpression& expr,
                                             const std::string& attr_options) {
  auto opts = AttrOptions::Parse(attr_options);
  if (!opts.ok()) return opts.status();
  const unsigned components = opts.value().Components();
  auto snaps = dg_->GetSnapshots(expr.times(), components);
  if (!snaps.ok()) return snaps.status();
  const auto& gs = snaps.value();
  const size_t k = gs.size();

  // Evaluate the Boolean expression element-wise over the k snapshots
  // (Section 4.4: fetch the snapshots, then combine).
  Snapshot result;
  std::vector<bool> membership(k);
  auto membership_of = [&](auto&& probe) {
    for (size_t i = 0; i < k; ++i) membership[i] = probe(gs[i]);
    return expr.Evaluate(membership);
  };

  std::unordered_set<NodeId> seen_nodes;
  std::unordered_set<EdgeId> seen_edges;
  for (const auto& g : gs) {
    for (NodeId n : g.nodes()) {
      if (!seen_nodes.insert(n).second) continue;
      if (membership_of([n](const Snapshot& s) { return s.HasNode(n); })) {
        result.AddNode(n);
      }
    }
    for (const auto& [e, rec] : g.edges()) {
      if (!seen_edges.insert(e).second) continue;
      if (membership_of([e](const Snapshot& s) { return s.HasEdge(e); })) {
        result.AddEdge(e, rec);
      }
    }
    for (const auto& [n, attrs] : g.node_attrs()) {
      for (const auto& [key, value] : attrs) {
        if (result.GetNodeAttrValueId(n, key) != kInvalidAttrId) continue;
        if (membership_of([n, key, value](const Snapshot& s) {
              return s.GetNodeAttrValueId(n, key) == value;
            })) {
          result.SetNodeAttrId(n, key, value);
        }
      }
    }
    for (const auto& [e, attrs] : g.edge_attrs()) {
      for (const auto& [key, value] : attrs) {
        if (result.GetEdgeAttrValueId(e, key) != kInvalidAttrId) continue;
        if (membership_of([e, key, value](const Snapshot& s) {
              return s.GetEdgeAttrValueId(e, key) == value;
            })) {
          result.SetEdgeAttrId(e, key, value);
        }
      }
    }
  }
  FilterAttrs(&result, opts.value());
  return OverlaySnapshot(std::move(result),
                         expr.times().empty() ? 0 : expr.times().front(), components);
}

Result<HistGraph> GraphManager::GetHistGraphInterval(Timestamp ts, Timestamp te,
                                                     const std::string& attr_options) {
  auto opts = AttrOptions::Parse(attr_options);
  if (!opts.ok()) return opts.status();
  const unsigned components = opts.value().Components() | kCompTransient;
  EventList events;
  HG_RETURN_NOT_OK(dg_->CollectEvents(ts, te, components, &events));

  // The interval graph: every element *added* during the window, plus the
  // transient events (which by definition no snapshot query returns).
  Snapshot result;
  for (const auto& e : events.events()) {
    switch (e.type) {
      case EventType::kAddNode:
        result.AddNode(e.node);
        break;
      case EventType::kAddEdge:
        result.AddEdge(e.edge, EdgeRecord{e.src, e.dst, e.directed});
        break;
      case EventType::kNodeAttr:
        if (e.new_value.has_value() && opts.value().KeepNodeAttr(e.key)) {
          result.SetNodeAttr(e.node, e.key, *e.new_value);
        }
        break;
      case EventType::kEdgeAttr:
        if (e.new_value.has_value() && opts.value().KeepEdgeAttr(e.key)) {
          result.SetEdgeAttr(e.edge, e.key, *e.new_value);
        }
        break;
      case EventType::kTransientEdge: {
        const EdgeId id = next_transient_edge_id_++;
        result.AddEdge(id, EdgeRecord{e.src, e.dst, true});
        result.SetEdgeAttr(id, "__transient", e.key);
        break;
      }
      case EventType::kTransientNode:
        result.AddNode(e.node);
        result.SetNodeAttr(e.node, "__transient", e.key);
        break;
      case EventType::kDeleteNode:
      case EventType::kDeleteEdge:
        break;  // Deletions are not "elements added during the interval".
    }
  }
  return OverlaySnapshot(std::move(result), ts, components);
}

Result<EventList> GraphManager::GetEvents(Timestamp ts, Timestamp te,
                                          bool include_transient) {
  EventList events;
  const unsigned components =
      include_transient ? kCompAllWithTransient : kCompAll;
  HG_RETURN_NOT_OK(dg_->CollectEvents(ts, te, components, &events));
  return events;
}

Status GraphManager::Release(HistGraph* g) {
  if (g == nullptr || !g->valid()) return Status::OK();
  HG_RETURN_NOT_OK(pool_.Release(g->pool_id()));
  g->id_ = -1;
  return Status::OK();
}

size_t GraphManager::RunCleaner() { return pool_.RunCleaner(); }

}  // namespace hgdb
