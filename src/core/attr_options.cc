#include "core/attr_options.h"

namespace hgdb {

Result<AttrOptions> AttrOptions::Parse(const std::string& spec) {
  AttrOptions out;
  size_t pos = 0;
  while (pos < spec.size()) {
    const char sign = spec[pos];
    if (sign != '+' && sign != '-') {
      return Status::InvalidArgument("attr options: expected '+' or '-' at position " +
                                     std::to_string(pos) + " in \"" + spec + "\"");
    }
    ++pos;
    // Token runs until the next +/- or end of string.
    size_t end = pos;
    while (end < spec.size() && spec[end] != '+' && spec[end] != '-') ++end;
    const std::string token = spec.substr(pos, end - pos);
    pos = end;

    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("attr options: missing ':' in \"" + token + "\"");
    }
    const std::string target = token.substr(0, colon);
    const std::string name = token.substr(colon + 1);
    if (name.empty()) {
      return Status::InvalidArgument("attr options: empty attribute name");
    }
    const bool plus = sign == '+';
    if (target == "node") {
      if (name == "all") {
        out.node_all = plus;
      } else if (plus) {
        out.node_include.insert(name);
        out.node_exclude.erase(name);
      } else {
        out.node_exclude.insert(name);
        out.node_include.erase(name);
      }
    } else if (target == "edge") {
      if (name == "all") {
        out.edge_all = plus;
      } else if (plus) {
        out.edge_include.insert(name);
        out.edge_exclude.erase(name);
      } else {
        out.edge_exclude.insert(name);
        out.edge_include.erase(name);
      }
    } else {
      return Status::InvalidArgument("attr options: unknown target \"" + target +
                                     "\" (want node/edge)");
    }
  }
  return out;
}

}  // namespace hgdb
