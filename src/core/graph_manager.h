#ifndef HISTGRAPH_CORE_GRAPH_MANAGER_H_
#define HISTGRAPH_CORE_GRAPH_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/attr_options.h"
#include "core/time_expression.h"
#include "deltagraph/delta_graph.h"
#include "exec/io_pool.h"
#include "exec/retrieval_session.h"
#include "graphpool/graph_pool.h"

namespace hgdb {

/// \brief A retrieved historical graph: a filtered view over the GraphPool
/// (the paper's HistGraph, Section 3.2.1).
///
/// Obtained from GraphManager::GetHistGraph*, traversed through the view
/// accessors, and returned to the pool with GraphManager::Release when the
/// analysis is done.
class HistGraph {
 public:
  HistGraph() = default;

  const HistGraphView& view() const { return view_; }
  Timestamp time() const { return time_; }
  PoolGraphId pool_id() const { return id_; }
  bool valid() const { return id_ >= 0; }

  // Convenience passthroughs mirroring the paper's programmatic API.
  std::vector<NodeId> GetNodes() const { return view_.GetNodes(); }
  std::vector<NodeId> GetNeighbors(NodeId n) const { return view_.GetNeighbors(n); }
  bool HasNode(NodeId n) const { return view_.HasNode(n); }
  bool HasEdge(EdgeId e) const { return view_.HasEdge(e); }
  const std::string* GetNodeAttr(NodeId n, const std::string& key) const {
    return view_.GetNodeAttr(n, key);
  }
  const std::string* GetEdgeAttr(EdgeId e, const std::string& key) const {
    return view_.GetEdgeAttr(e, key);
  }

 private:
  friend class GraphManager;
  HistGraphView view_;
  Timestamp time_ = 0;
  PoolGraphId id_ = -1;
};

/// Configuration of the full system facade.
struct GraphManagerOptions {
  DeltaGraphOptions index;
  /// Overlay a retrieved snapshot as *dependent* on the current graph when
  /// its diff is below this fraction of the snapshot's size (Section 6's
  /// query-time dependence decision). 0 disables dependent overlays. Only
  /// full-attribute retrievals use dependence (a partial retrieval must not
  /// inherit attributes the caller did not ask for).
  double dependent_overlay_threshold = 0.25;
  /// Parallelism of multipoint plan execution. 0 = the process-wide default
  /// (HISTGRAPH_THREADS, falling back to the hardware concurrency); 1 forces
  /// the serial executor; N >= 2 runs this manager's retrievals on a private
  /// pool of N threads. Negative values are treated as 1 (forced serial).
  int exec_parallelism = 0;
  /// Parallelism of the asynchronous fetch prefetcher. 0 = the process-wide
  /// default (IoPool::Shared, sized by HISTGRAPH_IO_THREADS, default 8);
  /// N >= 1 runs this manager's prefetches on a private I/O pool of N
  /// threads; negative disables prefetching (every fetch blocks its worker).
  int io_parallelism = 0;
  /// Memory budget for traffic-adaptive materialization, in bytes of
  /// resident materialized snapshots (src/adaptive/). 0 disables the
  /// advisor. The HISTGRAPH_MAT_BUDGET environment variable overrides when
  /// set. Consumed by HistGraphServer, which runs the advisor's decision
  /// ticks on its ingest strand; a bare GraphManager does not tick on its
  /// own (construct a MaterializationAdvisor directly to drive one).
  uint64_t materialization_budget_bytes = 0;
};

/// \brief The system facade tying together the DeltaGraph (HistoryManager
/// role: query planning and disk I/O) and the GraphPool (GraphManager role:
/// overlaying and cleanup) — the components below the dashed line of
/// Figure 2.
class GraphManager {
 public:
  /// Creates a fresh historical graph database over `store`.
  static Result<std::unique_ptr<GraphManager>> Create(KVStore* store,
                                                      GraphManagerOptions options);

  /// Reopens a previously finalized database.
  static Result<std::unique_ptr<GraphManager>> Open(KVStore* store,
                                                    GraphManagerOptions options = {});

  // -- Updates -----------------------------------------------------------------
  /// Seeds the database with a non-empty starting graph as of `t0` (must
  /// precede all events).
  Status SetInitialSnapshot(const Snapshot& g0, Timestamp t0);

  /// Applies one event to the database: the DeltaGraph absorbs it (cutting
  /// leaves as needed) and the pool's current graph is updated in place.
  Status ApplyEvent(const Event& e);
  Status ApplyEvents(const std::vector<Event>& events);

  /// Flushes trailing events and persists the index (DeltaGraph::Finalize).
  Status FinalizeIndex();

  // -- Snapshot queries (Section 3.2.1) ------------------------------------------
  /// GetHistGraph(Time t, String attr_options).
  Result<HistGraph> GetHistGraph(Timestamp t, const std::string& attr_options = "");

  /// GetHistGraphs(List<Time>, String attr_options): multipoint retrieval
  /// through the Steiner-tree planner; snapshots share storage in the pool.
  Result<std::vector<HistGraph>> GetHistGraphs(const std::vector<Timestamp>& times,
                                               const std::string& attr_options = "");

  /// GetHistGraph(TimeExpression, String attr_options): the hypothetical
  /// graph of elements satisfying a Boolean expression over time points.
  Result<HistGraph> GetHistGraph(const TimeExpression& expr,
                                 const std::string& attr_options = "");

  /// GetHistGraphInterval(ts, te, attr_options): all elements *added* during
  /// [ts, te), including transient events (which no snapshot query returns).
  Result<HistGraph> GetHistGraphInterval(Timestamp ts, Timestamp te,
                                         const std::string& attr_options = "");

  /// Raw event window access (backs interval analytics).
  Result<EventList> GetEvents(Timestamp ts, Timestamp te,
                              bool include_transient = true);

  /// Opens a batched-retrieval session over the index: queue several
  /// GetSnapshot(s)-shaped requests, then run them concurrently on the
  /// manager's task pool with one shared fetch pin (see RetrievalSession).
  /// The session must not outlive the manager, and index updates must not
  /// run while it has requests in flight.
  std::unique_ptr<RetrievalSession> NewRetrievalSession();

  // -- Materialization ------------------------------------------------------------
  /// Materializes every index node at `depth` below the super-root (0 =
  /// roots) and overlays the materialized graphs into the pool, where they
  /// get single bits and can serve as dependency bases for later historical
  /// overlays (Figure 5(c): "historical snapshot 35 is dependent on
  /// materialized graph 4"). Returns how many nodes were materialized.
  Result<size_t> MaterializeDepth(int depth);

  // -- Lifecycle ----------------------------------------------------------------
  /// Returns a retrieved graph to the pool (cleanup happens lazily).
  Status Release(HistGraph* g);

  /// Runs the lazy cleaner; returns the number of evicted elements.
  size_t RunCleaner();

  // -- Components ----------------------------------------------------------------
  DeltaGraph& index() { return *dg_; }
  const DeltaGraph& index() const { return *dg_; }
  GraphPool& pool() { return pool_; }
  const GraphPool& pool() const { return pool_; }

 private:
  GraphManager(std::unique_ptr<DeltaGraph> dg, GraphManagerOptions options)
      : options_(std::move(options)), dg_(std::move(dg)) {}

  /// Overlays a reconstructed snapshot into the pool, choosing dependent vs
  /// independent overlay, and wraps it in a HistGraph.
  Result<HistGraph> OverlaySnapshot(Snapshot&& snap, Timestamp t, unsigned components);

  /// Applies options_.exec_parallelism to the index's task pool.
  void WireExecPool();

  static void FilterAttrs(Snapshot* snap, const AttrOptions& opts);

  GraphManagerOptions options_;
  std::unique_ptr<DeltaGraph> dg_;
  std::unique_ptr<TaskPool> owned_exec_pool_;  ///< When exec_parallelism >= 2.
  std::unique_ptr<IoPool> owned_io_pool_;      ///< When io_parallelism >= 1.
  GraphPool pool_;
  size_t leaves_seen_ = 0;
  EdgeId next_transient_edge_id_ = (EdgeId{1} << 62);

  /// Materialized index nodes overlaid in the pool; candidate dependency
  /// bases for historical overlays. The Snapshot pointers live in the
  /// DeltaGraph's materialization map.
  struct MaterializedBase {
    PoolGraphId pool_id;
    int32_t node_id;
    const Snapshot* snapshot;
  };
  std::vector<MaterializedBase> materialized_bases_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_CORE_GRAPH_MANAGER_H_
