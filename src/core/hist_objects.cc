#include "core/hist_objects.h"

#include <algorithm>

namespace hgdb {

std::vector<HistNode> HistNode::GetNeighbors() const {
  std::vector<HistNode> out;
  if (graph_ == nullptr) return out;
  for (NodeId n : graph_->GetNeighbors(id_)) out.emplace_back(graph_, n);
  return out;
}

std::vector<HistEdge> HistNode::GetEdges() const {
  std::vector<HistEdge> out;
  if (graph_ == nullptr) return out;
  for (EdgeId e : graph_->view().GetIncidentEdges(id_)) out.emplace_back(graph_, e);
  return out;
}

HistNode HistEdge::GetSource() const {
  if (graph_ == nullptr) return HistNode();
  const EdgeRecord* rec = graph_->view().GetEdgeRecord(id_);
  return rec == nullptr ? HistNode() : HistNode(graph_, rec->src);
}

HistNode HistEdge::GetDestination() const {
  if (graph_ == nullptr) return HistNode();
  const EdgeRecord* rec = graph_->view().GetEdgeRecord(id_);
  return rec == nullptr ? HistNode() : HistNode(graph_, rec->dst);
}

bool HistEdge::IsDirected() const {
  if (graph_ == nullptr) return false;
  const EdgeRecord* rec = graph_->view().GetEdgeRecord(id_);
  return rec != nullptr && rec->directed;
}

std::vector<HistNode> GetNodeObjs(const HistGraph& graph) {
  std::vector<HistNode> out;
  for (NodeId n : graph.GetNodes()) out.emplace_back(&graph, n);
  return out;
}

Result<HistEdge> GetEdgeObj(const HistGraph& graph, const HistNode& a,
                            const HistNode& b) {
  std::vector<EdgeId> candidates;
  for (EdgeId e : graph.view().GetIncidentEdges(a.id())) {
    const EdgeRecord* rec = graph.view().GetEdgeRecord(e);
    if (rec == nullptr) continue;
    const NodeId other = rec->src == a.id() ? rec->dst : rec->src;
    if (other == b.id()) candidates.push_back(e);
  }
  if (candidates.empty()) {
    return Status::NotFound("no edge between nodes " + std::to_string(a.id()) +
                            " and " + std::to_string(b.id()));
  }
  return HistEdge(&graph, *std::min_element(candidates.begin(), candidates.end()));
}

}  // namespace hgdb
