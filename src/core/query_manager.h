#ifndef HISTGRAPH_CORE_QUERY_MANAGER_H_
#define HISTGRAPH_CORE_QUERY_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/graph_manager.h"

namespace hgdb {

/// \brief The user-facing id-translation layer (Figure 2's QueryManager).
///
/// "One of its functions is to translate any explicit references (e.g.
/// user-id) from the query to the corresponding internal-id and vice-versa
/// for the final result, using a lookup table." This component keeps that
/// lookup table and offers convenience wrappers that accept external string
/// ids (e.g. author names) instead of internal NodeIds. Application-specific
/// concerns beyond translation are intentionally out of scope, as in the
/// paper.
class QueryManager {
 public:
  explicit QueryManager(GraphManager* gm) : gm_(gm) {}

  /// Registers (or looks up) an external id, allocating an internal NodeId.
  NodeId InternNode(const std::string& external_id);

  /// Resolves an external id; NotFound if never registered.
  Result<NodeId> Resolve(const std::string& external_id) const;

  /// Reverse lookup for presenting results.
  Result<std::string> ExternalName(NodeId id) const;

  /// Convenience: record a node addition (plus attributes) under an external
  /// id at time `t`.
  Status AddNode(Timestamp t, const std::string& external_id,
                 const std::vector<std::pair<std::string, std::string>>& attrs = {});

  /// Convenience: record an edge between two previously registered external
  /// ids. Returns the new edge id.
  Result<EdgeId> AddEdge(Timestamp t, const std::string& src_external,
                         const std::string& dst_external, bool directed = false);

  /// Batched-retrieval session passthrough (see GraphManager /
  /// RetrievalSession): concurrent in-flight snapshot queries sharing the
  /// task pool and one fetch pin.
  std::unique_ptr<RetrievalSession> NewRetrievalSession() {
    return gm_->NewRetrievalSession();
  }

  GraphManager* graph_manager() { return gm_; }

 private:
  GraphManager* gm_;
  std::unordered_map<std::string, NodeId> to_internal_;
  std::unordered_map<NodeId, std::string> to_external_;
  NodeId next_node_id_ = 1;
  EdgeId next_edge_id_ = 1;
};

}  // namespace hgdb

#endif  // HISTGRAPH_CORE_QUERY_MANAGER_H_
