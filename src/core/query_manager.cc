#include "core/query_manager.h"

namespace hgdb {

NodeId QueryManager::InternNode(const std::string& external_id) {
  auto it = to_internal_.find(external_id);
  if (it != to_internal_.end()) return it->second;
  const NodeId id = next_node_id_++;
  to_internal_.emplace(external_id, id);
  to_external_.emplace(id, external_id);
  return id;
}

Result<NodeId> QueryManager::Resolve(const std::string& external_id) const {
  auto it = to_internal_.find(external_id);
  if (it == to_internal_.end()) {
    return Status::NotFound("external id: " + external_id);
  }
  return it->second;
}

Result<std::string> QueryManager::ExternalName(NodeId id) const {
  auto it = to_external_.find(id);
  if (it == to_external_.end()) {
    return Status::NotFound("internal id: " + std::to_string(id));
  }
  return it->second;
}

Status QueryManager::AddNode(
    Timestamp t, const std::string& external_id,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  const NodeId id = InternNode(external_id);
  HG_RETURN_NOT_OK(gm_->ApplyEvent(Event::AddNode(t, id)));
  for (const auto& [k, v] : attrs) {
    HG_RETURN_NOT_OK(gm_->ApplyEvent(Event::SetNodeAttr(t, id, k, std::nullopt, v)));
  }
  return Status::OK();
}

Result<EdgeId> QueryManager::AddEdge(Timestamp t, const std::string& src_external,
                                     const std::string& dst_external, bool directed) {
  auto src = Resolve(src_external);
  if (!src.ok()) return src.status();
  auto dst = Resolve(dst_external);
  if (!dst.ok()) return dst.status();
  const EdgeId id = next_edge_id_++;
  HG_RETURN_NOT_OK(
      gm_->ApplyEvent(Event::AddEdge(t, id, src.value(), dst.value(), directed)));
  return id;
}

}  // namespace hgdb
