#ifndef HISTGRAPH_DELTAGRAPH_PLANNER_H_
#define HISTGRAPH_DELTAGRAPH_PLANNER_H_

#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "deltagraph/plan.h"
#include "deltagraph/skeleton.h"

namespace hgdb {

/// Planner-visible description of the index state beyond the skeleton: the
/// in-memory recent eventlist and the current graph (Section 4.5: the
/// "rightmost leaf" — really the current graph — counts as materialized).
struct PlannerContext {
  const Skeleton* skeleton = nullptr;
  size_t recent_count = 0;                 ///< Events not yet folded into the index.
  Timestamp recent_end = kMinTimestamp;    ///< Time of the newest recent event.
  bool has_current = false;                ///< Current graph is loadable.
  uint64_t current_elements = 0;           ///< |current| (copy-cost estimate).
  double avg_event_bytes = 32.0;           ///< Recent-eventlist size estimate.
  /// Auxiliary-index retrieval cannot start from materialized graph
  /// snapshots or the current graph; these gates disable those shortcuts.
  bool allow_materialized = true;
  bool allow_current = true;
};

/// Cost-model constants. All costs are in "bytes fetched from the store";
/// in-memory work is discounted by kMemoryCostFactor.
struct PlannerCosts {
  double per_edge_overhead = 64.0;     ///< Per-fetch latency stand-in.
  double memory_cost_factor = 0.05;    ///< In-memory apply vs disk fetch.
  double bytes_per_element = 24.0;     ///< Copy cost of materialized graphs.
};

/// \brief Cached single-source shortest paths from the super-root, the
/// incremental-planning optimization the paper lists as ongoing work
/// ("incrementally maintaining single source shortest paths to handle very
/// large DeltaGraph skeletons", Section 4.3).
///
/// The distances from the super-root depend only on the skeleton (including
/// materialization flags) and the requested components, not on the query
/// time point, so consecutive singlepoint queries reuse one Dijkstra run.
/// The skeleton's version counter invalidates the cache on any change.
struct SsspCache {
  uint64_t skeleton_version = ~0ull;  ///< Version this cache was built at.
  unsigned components = 0;
  std::vector<double> dist;           ///< Per skeleton node.
  std::vector<int32_t> parent_edge;   ///< Skeleton edge ids toward super-root.

  bool ValidFor(const Skeleton& skel, unsigned comps) const {
    return skeleton_version == skel.version() && components == comps &&
           dist.size() == skel.node_count();
  }
};

/// \brief Translates snapshot queries into retrieval plans over the skeleton.
///
/// Singlepoint queries are planned with Dijkstra's shortest path from the
/// super-root to the query's virtual node (Section 4.3). Multipoint queries
/// are planned as a Steiner tree connecting the super-root and all virtual
/// nodes, via the standard metric-closure MST 2-approximation (Section 4.4);
/// the DeltaGraph's invertible deltas make every skeleton edge traversable in
/// both directions, which is what makes the undirected approximation valid
/// here.
class Planner {
 public:
  Planner(PlannerContext ctx, PlannerCosts costs = {})
      : ctx_(ctx), costs_(costs) {}

  /// Plans one snapshot retrieval using (and refreshing) a cached
  /// super-root SSSP over the base skeleton. Falls back to the uncached path
  /// for times beyond the last leaf boundary (those depend on the volatile
  /// recent eventlist). `cache` may be empty/mismatched; it is rebuilt.
  Result<Plan> PlanSinglepointCached(Timestamp t, unsigned components,
                                     SsspCache* cache) const;

  /// Plans retrieval of snapshots as of each time in `times` (duplicates
  /// allowed), fetching only `components`. Requires a non-empty skeleton.
  Result<Plan> PlanSnapshots(const std::vector<Timestamp>& times,
                             unsigned components) const;

  /// Plans retrieval of the graphs of specific skeleton nodes (used to
  /// materialize interior nodes, Section 4.5).
  Result<Plan> PlanNodes(const std::vector<int32_t>& node_ids,
                         unsigned components) const;

  struct AugGraph;  // The augmented search graph; defined in planner.cc.

 private:
  Result<Plan> SolveSteiner(AugGraph& g, const std::vector<int32_t>& terminals) const;

  PlannerContext ctx_;
  PlannerCosts costs_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_PLANNER_H_
