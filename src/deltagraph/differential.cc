#include "deltagraph/differential.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/coding.h"

namespace hgdb {

namespace {

// ---------------------------------------------------------------------------
// Element-wise iteration helpers. Differential functions are defined over the
// element sets of Section 4.2 (nodes, edges, attribute triples); these
// helpers visit the elements of `to - from`.
// ---------------------------------------------------------------------------

struct ElementVisitor {
  std::function<void(NodeId)> node;
  std::function<void(EdgeId, const EdgeRecord&)> edge;
  std::function<void(NodeId, AttrId, AttrId)> nattr;  ///< (owner, key id, value id).
  std::function<void(EdgeId, AttrId, AttrId)> eattr;
};

// Visits every element of `to` that is not in `from` (value-sensitive for
// attributes: a changed value counts as an add of the new and a delete of the
// old element). Attribute values compare by interned id. Chunks the two
// snapshots share by pointer hold identical elements and are skipped.
void ForEachDiff(const Snapshot& to, const Snapshot& from, const ElementVisitor& v) {
  to.nodes().ForEachDivergent(from.nodes(), [&](NodeId n) {
    if (!from.HasNode(n)) v.node(n);
  });
  to.edges().ForEachDivergent(from.edges(), [&](EdgeId id, const EdgeRecord& rec) {
    if (!from.HasEdge(id)) v.edge(id, rec);
  });
  to.node_attrs().ForEachDivergent(
      from.node_attrs(), [&](NodeId owner, const AttrMap& attrs) {
        for (const auto& [k, val] : attrs) {
          if (from.GetNodeAttrValueId(owner, k) != val) v.nattr(owner, k, val);
        }
      });
  to.edge_attrs().ForEachDivergent(
      from.edge_attrs(), [&](EdgeId owner, const AttrMap& attrs) {
        for (const auto& [k, val] : attrs) {
          if (from.GetEdgeAttrValueId(owner, k) != val) v.eattr(owner, k, val);
        }
      });
}

// Deterministic element-selection hashes (Section 5.2: "by using a hash
// function that maps the events to 0 or 1"; we generalize to a threshold on a
// 64-bit hash so any selection ratio r works, and we use the *same* hash for
// the delta and rho picks as the paper requires for the Balanced function).
uint64_t NodeHash(NodeId n) { return Mix64(n * 2654435761u + 0x9e37); }
uint64_t EdgeHash(EdgeId e) { return Mix64(e * 2654435761u + 0x79b9); }
uint64_t AttrHash(uint64_t owner, const std::string& key, bool node_side) {
  return HashBytes(key.data(), key.size(), Mix64(owner) ^ (node_side ? 0x1234 : 0x4321));
}

bool Selected(uint64_t h, double r) {
  if (r >= 1.0) return true;
  if (r <= 0.0) return false;
  return h < static_cast<uint64_t>(r * static_cast<double>(UINT64_MAX));
}

// Adds to `result` the selected fraction `r` of elements in `to - from`, and
// removes from `result` the selected fraction `r_del` of elements in
// `from - to`. This is one pairwise step of the Mixed/Skewed family.
void ApplySelectedDiff(Snapshot* result, const Snapshot& from, const Snapshot& to,
                       double r_add, double r_del) {
  ElementVisitor add{
      [&](NodeId n) {
        if (Selected(NodeHash(n), r_add) && !result->HasNode(n)) result->AddNode(n);
      },
      [&](EdgeId e, const EdgeRecord& rec) {
        if (Selected(EdgeHash(e), r_add) && !result->HasEdge(e)) result->AddEdge(e, rec);
      },
      [&](NodeId o, AttrId k, AttrId val) {
        // The selection hash stays over the key *string* so element picks are
        // stable across processes (interning order is run-dependent).
        if (Selected(AttrHash(o, AttrStr(k), true), r_add)) {
          result->SetNodeAttrId(o, k, val);
        }
      },
      [&](EdgeId o, AttrId k, AttrId val) {
        if (Selected(AttrHash(o, AttrStr(k), false), r_add)) {
          result->SetEdgeAttrId(o, k, val);
        }
      }};
  ForEachDiff(to, from, add);
  ElementVisitor del{
      [&](NodeId n) {
        if (Selected(NodeHash(n), r_del)) result->RemoveNode(n);
      },
      [&](EdgeId e, const EdgeRecord&) {
        if (Selected(EdgeHash(e), r_del)) result->RemoveEdge(e);
      },
      [&](NodeId o, AttrId k, AttrId val) {
        // Only remove if the value is still the one being deleted; a value
        // change pairs a delete of the old with an add of the new.
        if (result->GetNodeAttrValueId(o, k) == val &&
            Selected(AttrHash(o, AttrStr(k), true), r_del)) {
          result->RemoveNodeAttrId(o, k);
        }
      },
      [&](EdgeId o, AttrId k, AttrId val) {
        if (result->GetEdgeAttrValueId(o, k) == val &&
            Selected(AttrHash(o, AttrStr(k), false), r_del)) {
          result->RemoveEdgeAttrId(o, k);
        }
      }};
  ForEachDiff(from, to, del);
}

Snapshot Intersect(const Snapshot& a, const Snapshot& b) {
  Snapshot out;
  for (NodeId n : a.nodes()) {
    if (b.HasNode(n)) out.AddNode(n);
  }
  for (const auto& [id, rec] : a.edges()) {
    if (b.HasEdge(id)) out.AddEdge(id, rec);
  }
  for (const auto& [owner, attrs] : a.node_attrs()) {
    for (const auto& [k, val] : attrs) {
      if (b.GetNodeAttrValueId(owner, k) == val) out.SetNodeAttrId(owner, k, val);
    }
  }
  for (const auto& [owner, attrs] : a.edge_attrs()) {
    for (const auto& [k, val] : attrs) {
      if (b.GetEdgeAttrValueId(owner, k) == val) out.SetEdgeAttrId(owner, k, val);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Concrete functions
// ---------------------------------------------------------------------------

class IntersectionFunction final : public DifferentialFunction {
 public:
  std::string name() const override { return "intersection"; }
  Snapshot Combine(const std::vector<const Snapshot*>& children) const override {
    Snapshot out = *children[0];
    for (size_t i = 1; i < children.size(); ++i) out = Intersect(out, *children[i]);
    return out;
  }
};

class UnionFunction final : public DifferentialFunction {
 public:
  std::string name() const override { return "union"; }
  Snapshot Combine(const std::vector<const Snapshot*>& children) const override {
    // Note: element sets with conflicting attribute values are not
    // representable in a Snapshot's single-valued attribute maps; the newest
    // child wins. This only affects delta sizes, never reconstruction
    // correctness (deltas are diffs against the actual parent content).
    Snapshot out = *children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      // Snapshot the accumulator: ApplySelectedDiff must not iterate the
      // container it mutates.
      const Snapshot base = out;
      ApplySelectedDiff(&out, base, *children[i], /*r_add=*/1.0, /*r_del=*/0.0);
    }
    return out;
  }
};

class EmptyFunction final : public DifferentialFunction {
 public:
  std::string name() const override { return "empty"; }
  Snapshot Combine(const std::vector<const Snapshot*>&) const override {
    return Snapshot();
  }
};

class MixedFunction final : public DifferentialFunction {
 public:
  MixedFunction(double r1, double r2, std::string display_name)
      : r1_(r1), r2_(r2), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }

  Snapshot Combine(const std::vector<const Snapshot*>& children) const override {
    // p = c1 + r1·(δ_c1c2 + δ_c2c3 + ...) − r2·(ρ_c1c2 + ρ_c2c3 + ...)
    Snapshot out = *children[0];
    for (size_t i = 0; i + 1 < children.size(); ++i) {
      ApplySelectedDiff(&out, *children[i], *children[i + 1], r1_, r2_);
    }
    return out;
  }

 private:
  double r1_, r2_;
  std::string name_;
};

class SkewedFunction final : public DifferentialFunction {
 public:
  explicit SkewedFunction(double r) : r_(r) {}

  std::string name() const override {
    std::ostringstream os;
    os << "skewed:" << r_;
    return os.str();
  }

  Snapshot Combine(const std::vector<const Snapshot*>& children) const override {
    // f(a, b) = a + r·(b − a), where (b − a) is the full delta (inserts and
    // deletes), so r = 1 yields exactly b. Folds pairwise for arity > 2.
    Snapshot out = *children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      const Snapshot base = out;  // Never iterate the container being mutated.
      ApplySelectedDiff(&out, base, *children[i], r_, r_);
    }
    return out;
  }

 private:
  double r_;
};

class SideSkewedFunction final : public DifferentialFunction {
 public:
  SideSkewedFunction(double r, bool right) : r_(r), right_(right) {}

  std::string name() const override {
    std::ostringstream os;
    os << (right_ ? "rightskewed:" : "leftskewed:") << r_;
    return os.str();
  }

  Snapshot Combine(const std::vector<const Snapshot*>& children) const override {
    // Right: f(a, b) = a∩b + r·(b − a∩b); Left: f(a, b) = a∩b + r·(a − a∩b).
    Snapshot out = *children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      const Snapshot& b = *children[i];
      Snapshot result = Intersect(out, b);
      const Snapshot base = result;  // Stable copy: see ApplySelectedDiff.
      const Snapshot& extra_from = right_ ? b : out;
      ApplySelectedDiff(&result, base, extra_from, r_, 0.0);
      out = std::move(result);
    }
    return out;
  }

 private:
  double r_;
  bool right_;
};

}  // namespace

std::unique_ptr<DifferentialFunction> MakeIntersectionFunction() {
  return std::make_unique<IntersectionFunction>();
}

std::unique_ptr<DifferentialFunction> MakeUnionFunction() {
  return std::make_unique<UnionFunction>();
}

std::unique_ptr<DifferentialFunction> MakeEmptyFunction() {
  return std::make_unique<EmptyFunction>();
}

std::unique_ptr<DifferentialFunction> MakeMixedFunction(double r1, double r2) {
  std::ostringstream os;
  os << "mixed:" << r1 << ":" << r2;
  return std::make_unique<MixedFunction>(r1, r2, os.str());
}

std::unique_ptr<DifferentialFunction> MakeBalancedFunction() {
  return std::make_unique<MixedFunction>(0.5, 0.5, "balanced");
}

std::unique_ptr<DifferentialFunction> MakeSkewedFunction(double r) {
  return std::make_unique<SkewedFunction>(r);
}

std::unique_ptr<DifferentialFunction> MakeRightSkewedFunction(double r) {
  return std::make_unique<SideSkewedFunction>(r, /*right=*/true);
}

std::unique_ptr<DifferentialFunction> MakeLeftSkewedFunction(double r) {
  return std::make_unique<SideSkewedFunction>(r, /*right=*/false);
}

Result<std::unique_ptr<DifferentialFunction>> MakeDifferentialFunction(
    const std::string& spec) {
  auto parse_params = [](const std::string& s, size_t pos,
                         std::vector<double>* out) -> bool {
    while (pos < s.size()) {
      size_t next = s.find(':', pos);
      if (next == std::string::npos) next = s.size();
      try {
        out->push_back(std::stod(s.substr(pos, next - pos)));
      } catch (...) {
        return false;
      }
      pos = next + 1;
    }
    return true;
  };

  if (spec == "intersection") return MakeIntersectionFunction();
  if (spec == "union") return MakeUnionFunction();
  if (spec == "empty") return MakeEmptyFunction();
  if (spec == "balanced") return MakeBalancedFunction();
  std::vector<double> params;
  if (spec.rfind("mixed:", 0) == 0 && parse_params(spec, 6, &params) &&
      params.size() == 2) {
    if (params[1] > params[0] || params[0] > 1.0 || params[1] < 0.0) {
      return Status::InvalidArgument("mixed requires 0 <= r2 <= r1 <= 1: " + spec);
    }
    return MakeMixedFunction(params[0], params[1]);
  }
  if (spec.rfind("skewed:", 0) == 0 && parse_params(spec, 7, &params) &&
      params.size() == 1) {
    return MakeSkewedFunction(params[0]);
  }
  if (spec.rfind("rightskewed:", 0) == 0 && parse_params(spec, 12, &params) &&
      params.size() == 1) {
    return MakeRightSkewedFunction(params[0]);
  }
  if (spec.rfind("leftskewed:", 0) == 0 && parse_params(spec, 11, &params) &&
      params.size() == 1) {
    return MakeLeftSkewedFunction(params[0]);
  }
  return Status::InvalidArgument("unknown differential function: " + spec);
}

}  // namespace hgdb
