#ifndef HISTGRAPH_DELTAGRAPH_DELTA_GRAPH_H_
#define HISTGRAPH_DELTAGRAPH_DELTA_GRAPH_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "deltagraph/aux_hook.h"
#include "deltagraph/delta_store.h"
#include "deltagraph/differential.h"
#include "deltagraph/frontier.h"
#include "deltagraph/plan.h"
#include "deltagraph/planner.h"
#include "deltagraph/skeleton.h"
#include "graph/delta.h"
#include "graph/snapshot.h"
#include "kvstore/kv_store.h"
#include "obs/trace.h"
#include "temporal/event.h"
#include "temporal/event_list.h"

namespace hgdb {

class TaskPool;        // src/exec/task_pool.h
class IoPool;          // src/exec/io_pool.h
class ExecFetchCache;  // src/exec/fetch_cache.h

/// Construction parameters of a DeltaGraph (Section 4.6): the leaf-eventlist
/// size L, the arity k, and the differential function(s). Multiple functions
/// build multiple hierarchies over the same leaves (Figure 3(b)), trading
/// disk space for query latitude.
struct DeltaGraphOptions {
  size_t leaf_size = 1000;  ///< L: events per leaf-eventlist.
  int arity = 2;            ///< k: children per interior node.
  /// Differential function specs (see MakeDifferentialFunction); one
  /// hierarchy is built per entry.
  std::vector<std::string> functions = {"intersection"};
  /// Keep the current graph in memory and treat it as materialized
  /// (Section 4.5: "the rightmost leaf should also be considered
  /// materialized"). Needed for updates; may be disabled for read-only
  /// replay experiments.
  bool maintain_current = true;
  /// Reuse a cached super-root shortest-path tree across singlepoint queries
  /// (the incremental-planning optimization of Section 4.3's discussion);
  /// invalidated automatically whenever the skeleton changes.
  bool use_plan_cache = true;

  Status Validate() const;
  std::string Encode() const;
  static Status Decode(const std::string& blob, DeltaGraphOptions* out);
};

/// Index statistics for the experiments (space columns of Figures 7, 9, 10).
struct DeltaGraphStats {
  size_t leaf_count = 0;
  size_t node_count = 0;        ///< Skeleton nodes (incl. super-root).
  size_t edge_count = 0;        ///< Live skeleton edges.
  int height = 0;               ///< Levels incl. leaves, excl. super-root.
  uint64_t delta_bytes = 0;     ///< Serialized delta bytes (interior + root).
  uint64_t eventlist_bytes = 0; ///< Serialized leaf-eventlist bytes.
  uint64_t store_bytes = 0;     ///< Actual (compressed) bytes in the KV store.
  uint64_t materialized_bytes = 0;  ///< Approx. memory held by materialization.
  size_t materialized_nodes = 0;
};

/// Applies the events with lo < time <= hi to `g`: forward applies them
/// oldest-first, backward applies the same range newest-first, inverted.
/// Shared by the serial plan visitor and the parallel executor. Takes a span
/// so both owned eventlists and pinned recent-tail views apply through one
/// path.
Status ApplyEventRange(std::span<const Event> events, Snapshot* g, bool forward,
                       Timestamp lo, Timestamp hi, unsigned components);

/// \brief Visitor over a plan execution (used for snapshot retrieval and for
/// auxiliary-index retrieval over the same plan).
class PlanVisitor {
 public:
  virtual ~PlanVisitor() = default;
  virtual Status LoadMaterialized(int32_t node) = 0;
  virtual Status LoadCurrent() = 0;
  /// Undo of LoadMaterialized/LoadCurrent during backtracking.
  virtual Status Unload() = 0;
  virtual Status ApplyDelta(int32_t edge, bool forward) = 0;
  virtual Status ApplyEvents(int32_t edge, bool forward, Timestamp lo, Timestamp hi) = 0;
  virtual Status ApplyRecentEvents(bool forward, Timestamp lo, Timestamp hi) = 0;
  /// `is_final` marks the very last emit of the plan: the working snapshot
  /// will not be used again, so the visitor may move instead of copy.
  virtual Status EmitTime(Timestamp t, bool is_final) = 0;
  virtual Status EmitNode(int32_t node, bool is_final) = 0;
};

/// \brief The DeltaGraph: a hierarchical delta-based index over the history
/// of a graph (Section 4), storing its payloads in a key-value store and its
/// skeleton in memory.
///
/// Usage:
///   auto dg = DeltaGraph::Create(store, options).value();
///   dg->AppendAll(events);      // chronological
///   dg->Finalize();             // attach roots, persist skeleton
///   Snapshot g = dg->GetSnapshot(t, kCompStruct | kCompNodeAttr).value();
///
/// The index remains updatable after Finalize: further Append calls extend
/// the recent eventlist, cut new leaves every L events, and cascade interior
/// node creation (Section 6, "Updates to the Current graph").
class DeltaGraph {
 public:
  /// Creates a fresh index backed by `store` (which must be empty of
  /// DeltaGraph keys). The store must outlive the DeltaGraph.
  static Result<std::unique_ptr<DeltaGraph>> Create(KVStore* store,
                                                    DeltaGraphOptions options);

  /// Reopens an index previously persisted to `store` by Finalize.
  static Result<std::unique_ptr<DeltaGraph>> Open(KVStore* store);

  // -- Building and updating --------------------------------------------------
  /// Installs a non-empty initial graph G0 as of time `t0` (the state of
  /// leaf 0). Must be called before any Append. This is how Datasets 2 and 3
  /// of the paper start "with Dataset 1 / a patent network as the starting
  /// snapshot"; with Intersection it also makes the root approximate the
  /// surviving part of G0 (Section 5.3).
  Status SetInitialSnapshot(const Snapshot& g0, Timestamp t0);

  /// Appends one event (must be chronologically >= all prior events). Applies
  /// it to the current graph and cuts a leaf when the recent eventlist
  /// reaches L (leaves are cut at time boundaries so that equal-time events
  /// never straddle two eventlists).
  Status Append(const Event& e);
  Status AppendAll(const std::vector<Event>& events);

  /// Flushes the trailing partial eventlist as a final (short) leaf, builds
  /// parents for all pending nodes up to the root(s), attaches root(s) to the
  /// super-root, and persists the skeleton. Idempotent; callable again after
  /// further appends.
  Status Finalize();

  // -- Snapshot retrieval -----------------------------------------------------
  /// Retrieves the snapshot as of time `t` (all events with time <= t
  /// applied), fetching only the requested components.
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components = kCompAll);

  /// Multipoint retrieval (Section 4.4): one Steiner-planned pass fetching
  /// each shared delta once. Returns snapshots in the order of `times`.
  /// Independent plan subtrees execute concurrently on the attached task
  /// pool when it has parallelism >= 2 (see SetTaskPool); results are
  /// identical to serial execution.
  Result<std::vector<Snapshot>> GetSnapshots(const std::vector<Timestamp>& times,
                                             unsigned components = kCompAll);

  /// GetSnapshots under an externally owned trace: plan/execute spans and all
  /// fetch attribution land under `tc`. The no-trace form above allocates its
  /// own trace when `obs::TraceEnabled()` and dumps it per HISTGRAPH_TRACE.
  Result<std::vector<Snapshot>> GetSnapshots(const std::vector<Timestamp>& times,
                                             unsigned components, obs::TraceCtx tc);

  // -- Epoch-based visibility (see src/deltagraph/frontier.h) -----------------
  /// Pins the latest published frontier: an immutable view of the index the
  /// caller may plan and execute against while the writer keeps appending.
  /// Never null (a fresh index publishes its empty state at construction).
  /// The pin is one mutex-guarded shared_ptr copy — not std::atomic<
  /// shared_ptr>, whose libstdc++ implementation unlocks its embedded
  /// spinlock with a relaxed store on the load path, which leaves the
  /// reader's pointer read formally unordered against the writer's next
  /// swap (TSan reports it). One uncontended lock per *query* is noise.
  FrontierPtr PinFrontier() const {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    return frontier_;
  }
  /// Epoch of the latest published frontier.
  uint64_t frontier_epoch() const { return PinFrontier()->epoch; }

  /// GetSnapshots against an explicitly pinned frontier. All state — plan,
  /// skeleton edges, current graph, materialized graphs, recent tail — is
  /// resolved from `frontier`, so the result equals a replay of exactly
  /// `frontier->event_count` events no matter what the writer does
  /// concurrently. `frontier` must come from this graph's PinFrontier().
  Result<std::vector<Snapshot>> GetSnapshotsAt(const FrontierPtr& frontier,
                                               const std::vector<Timestamp>& times,
                                               unsigned components = kCompAll,
                                               obs::TraceCtx tc = {}) const;

  /// The plan the index would execute for `times` at a pinned frontier.
  Result<Plan> PlanForAt(const FrontierPtr& frontier,
                         const std::vector<Timestamp>& times,
                         unsigned components = kCompAll) const;

  /// Snapshots produced by one plan execution, keyed by emit target.
  struct SnapshotPlanResults {
    std::map<Timestamp, Snapshot> by_time;
    std::map<int32_t, Snapshot> by_node;

    /// Moves the by_time entries out in the order of `times` (duplicate
    /// times are copied for all but their last use). Internal error if a
    /// requested time was never emitted.
    Result<std::vector<Snapshot>> TakeInOrder(const std::vector<Timestamp>& times);
  };

  /// Exposes the plan the index would execute (benchmarks, tests, EXPLAIN).
  Result<Plan> PlanFor(const std::vector<Timestamp>& times,
                       unsigned components = kCompAll) const;

  /// Runs a plan with a custom visitor (auxiliary-index retrieval reuses the
  /// snapshot plan machinery this way).
  Status ExecutePlan(const Plan& plan, PlanVisitor* visitor) const;

  /// Executes an already-built snapshot plan with the serial backtracking
  /// visitor, resolving every fetch through `pinned` when non-null — e.g. a
  /// cache an external prefetch pass has already filled. The partitioned
  /// index uses this to run per-shard plans serially behind one up-front
  /// cross-shard prefetch; with `pinned` null it is a plain serial execute.
  /// `frontier` fixes the visibility epoch (null pins the latest); the plan
  /// must have been built against the same frontier.
  Result<SnapshotPlanResults> ExecutePlanPinned(const Plan& plan, unsigned components,
                                                ExecFetchCache* pinned,
                                                obs::TraceCtx tc = {},
                                                FrontierPtr frontier = nullptr) const;

  /// Collects all events with ts <= time < te, including transient events if
  /// requested (backs GetHistGraphInterval).
  Status CollectEvents(Timestamp ts, Timestamp te, unsigned components,
                       EventList* out) const;

  // -- Materialization (Section 4.5) -------------------------------------------
  /// Materializes the graph of a skeleton node in memory; subsequent plans
  /// may start from it at near-zero cost.
  Status MaterializeNode(int32_t node_id, unsigned components = kCompAll);
  Status UnmaterializeNode(int32_t node_id);
  /// Nodes at `depth` edges below the super-root (0 = roots, 1 = their
  /// children, ...).
  std::vector<int32_t> NodesAtDepth(int depth) const;
  /// Materializes every node at the given depth; returns how many.
  Result<size_t> MaterializeDepth(int depth, unsigned components = kCompAll);
  /// Total materialization: every leaf in memory (reduces the index to
  /// Copy+Log with overlaid in-memory copies).
  Status MaterializeAllLeaves(unsigned components = kCompAll);

  // -- Introspection ------------------------------------------------------------
  const Skeleton& skeleton() const { return skeleton_; }
  const DeltaGraphOptions& options() const { return options_; }
  const Snapshot& current() const { return current_; }
  Timestamp min_time() const { return min_time_; }
  Timestamp max_time() const { return max_time_; }
  size_t event_count() const { return event_count_; }
  /// Insert/delete event tallies — feed `EstimateDynamics` (src/analysis/
  /// models.h) so the paper's cost model can run online, next to real plans.
  size_t insert_events() const { return insert_events_; }
  size_t delete_events() const { return delete_events_; }
  /// |G0| in elements (0 without an initial snapshot).
  double initial_elements() const { return initial_elements_; }
  DeltaGraphStats Stats() const;

  /// Registers this graph's index-shape stats and per-delta fetch-frequency
  /// top-k under `"deltagraph.<name>"` in the metrics registry's "exports"
  /// block (MetricsRegistry::ToJSON). Re-registering under a new name moves
  /// the export; the registration is removed when the graph dies. The graph
  /// must outlive any concurrent ToJSON call.
  void RegisterMetricsExports(const std::string& name);

  ~DeltaGraph();  ///< Unregisters any metrics export.
  const Snapshot* materialized_snapshot(int32_t node_id) const;

  /// The decoded-payload store (read-only access for the execution layer;
  /// its Get* paths are thread-safe).
  const DeltaStore& delta_store() const { return store_; }
  /// Per-skeleton-node touch counters: every retrieval plan records the
  /// nodes its traversal passes through (see exec/plan_touches.h). Together
  /// with the store's per-edge fetch frequency this is the traffic signal
  /// the adaptive materialization advisor scores candidates with. Gated like
  /// FetchFrequency: off unless metrics are on or SetAlwaysOn was called.
  FetchFrequency& node_touches() const { return node_touches_; }
  /// Events newer than the last cut leaf (read-only; the parallel executor
  /// applies them without going through the store).
  const EventList& recent_events() const { return recent_; }

  /// Attaches the task pool that multipoint plan execution runs on. nullptr
  /// forces the serial path. When never called, the default is
  /// TaskPool::Shared() — resolved lazily, the first time a branchy plan
  /// executes, so serial-only processes never spawn the pool's threads —
  /// which is itself serial unless HISTGRAPH_THREADS (or the hardware)
  /// allows >= 2 threads. Retrieval is safe to run concurrently from several
  /// threads, but this setter itself must not race with in-flight queries.
  void SetTaskPool(TaskPool* pool) {
    exec_pool_ = pool;
    exec_pool_set_ = true;
  }
  /// The explicitly attached pool (nullptr when defaulted or forced serial).
  TaskPool* task_pool() const { return exec_pool_; }
  /// True once SetTaskPool was called — distinguishes "forced serial"
  /// (set to nullptr) from "never configured" (lazy shared default).
  bool task_pool_overridden() const { return exec_pool_set_; }

  /// Attaches the I/O pool that plan-driven prefetch runs on. nullptr
  /// disables prefetching (every fetch blocks its worker, the pre-PR 3
  /// behavior). When never called, the default is IoPool::Shared() — sized
  /// by HISTGRAPH_IO_THREADS, itself null (prefetch off) at 0. Same
  /// concurrency contract as SetTaskPool: must not race in-flight queries.
  void SetIoPool(IoPool* pool) {
    io_pool_ = pool;
    io_pool_set_ = true;
  }
  IoPool* io_pool() const { return io_pool_; }
  bool io_pool_overridden() const { return io_pool_set_; }
  /// The pool prefetch actually uses: the attached one, or the shared
  /// default when never configured (nullptr = prefetch disabled).
  IoPool* ResolveIoPool() const;

  /// Pins every prefetch this graph issues to one IoPool lane
  /// (lane % io->parallelism()) instead of sharding by delta id. A
  /// partitioned index gives each shard its own lane so the shards' fetch
  /// pipelines drain on distinct I/O threads and overlap in flight.
  /// Negative (the default) restores delta-id sharding.
  void SetIoLane(int lane) { io_lane_ = lane; }
  int io_lane() const { return io_lane_; }

  /// Sizes the decoded delta/eventlist LRU that sits above the KVStore
  /// (0 disables and drops all entries). For ablations and for tests that
  /// damage the underlying store out-of-band.
  void SetDecodedCacheCapacity(size_t entries) {
    store_.SetDecodedCacheCapacity(entries);
  }

  // -- Extensibility (Section 4.7) ----------------------------------------------
  /// Registers an auxiliary index hook. Must be called before events are
  /// appended; the hook must outlive the DeltaGraph.
  void RegisterAuxHook(AuxIndexHook* hook) { aux_hooks_.push_back(hook); }

  /// Reconstructs the auxiliary state of `hook` as of time `t` by replaying
  /// the retrieval plan through the hook.
  Result<std::unique_ptr<AuxState>> GetAuxState(const AuxIndexHook& hook,
                                                Timestamp t) const;

 private:
  DeltaGraph(KVStore* store, DeltaGraphOptions options);

  /// A node pending aggregation into a parent, with its in-memory graph.
  struct Pending {
    int32_t node_id;
    std::shared_ptr<Snapshot> graph;
  };

  Result<SnapshotPlanResults> ExecuteSnapshotPlan(const Plan& plan,
                                                  unsigned components,
                                                  const FrontierPtr& frontier,
                                                  obs::TraceCtx tc = {}) const;
  /// Counts `plan`'s node touches into node_touches(). Called once per
  /// query — from the inline-planning retrieval path and from PlanForAt
  /// (the session paths plan there and execute separately), which between
  /// them cover every retrieval exactly once. Materialization's own
  /// PlanNodes work is deliberately not counted: the advisor must not see
  /// its own actions as traffic.
  void RecordPlanTouches(const Plan& plan, const Skeleton& skel) const;
  Status WalkPlanNode(const PlanNode& node, PlanVisitor* visitor, bool is_tail) const;
  Status ApplyPlanStep(const PlanStep& step, PlanVisitor* visitor, bool undo) const;

  /// Flushes the first `prefix` recent events as a leaf + eventlist edge,
  /// leaving the remainder in the recent eventlist. Callers must never place
  /// the boundary inside an equal-time run: every event left behind must be
  /// strictly newer than the cut's boundary time, or it becomes invisible to
  /// the (lo, hi] interval semantics (see src/deltagraph/README.md).
  Status CutLeaf(size_t prefix);
  Status BuildParent(size_t hierarchy, size_t level_index);
  Status CascadeMerges(bool force_partial);
  Status AttachSuperRoot(size_t hierarchy, const Pending& pending_root);
  PlannerContext MakePlannerContext() const;
  PlannerContext MakePlannerContext(const FrontierState& frontier) const;
  Status PersistMeta();

  /// The single-event body of Append, without publication (AppendAll batches
  /// publication so a multi-event call lands as one epoch).
  Status AppendOne(const Event& e);
  /// Mirrors the event into the append-once recent tail (see RecentTail).
  void PushRecentTail(const Event& e);
  /// Starts a fresh tail holding the current recent_ events (leaf cut, Open).
  void ResetRecentTail();
  /// Builds and atomically publishes a new FrontierState from writer state.
  /// Called by the single writer after every mutation batch; readers that
  /// pinned earlier frontiers are unaffected.
  void PublishFrontier();

  KVStore* kv_;
  DeltaStore store_;
  DeltaGraphOptions options_;
  std::vector<std::unique_ptr<DifferentialFunction>> functions_;
  Skeleton skeleton_;

  Snapshot current_;          ///< The current graph (state after all events).
  EventList recent_;          ///< Events newer than the last leaf.
  Timestamp min_time_ = kMaxTimestamp;
  Timestamp max_time_ = kMinTimestamp;
  size_t event_count_ = 0;
  size_t insert_events_ = 0;   ///< kAddNode/kAddEdge appended so far.
  size_t delete_events_ = 0;   ///< kDeleteNode/kDeleteEdge appended so far.
  double initial_elements_ = 0;  ///< |G0| at SetInitialSnapshot.
  bool has_initial_leaf_ = false;

  /// pending_[h][l] = nodes at level l+1 awaiting a parent in hierarchy h.
  std::vector<std::vector<std::vector<Pending>>> pending_;

  std::map<int32_t, std::shared_ptr<Snapshot>> materialized_;
  /// Per-skeleton-node touch counters (see node_touches()). Mutable: queries
  /// are const but still traffic.
  mutable FetchFrequency node_touches_;

  // -- Epoch publication state (single writer; see frontier.h) ---------------
  /// The latest published frontier; readers pin it under frontier_mu_ (held
  /// only for the shared_ptr copy/swap — never while building a frontier or
  /// executing a query).
  mutable std::mutex frontier_mu_;
  FrontierPtr frontier_ = std::make_shared<FrontierState>();
  uint64_t epoch_ = 0;  ///< Last published epoch.
  /// Append-once mirror of recent_ the published RecentViews point into.
  std::shared_ptr<RecentTail> recent_tail_;
  size_t recent_tail_count_ = 0;
  /// Cached immutable skeleton copy; refreshed only when version() moved.
  std::shared_ptr<const Skeleton> published_skeleton_;
  uint64_t published_skeleton_version_ = ~uint64_t{0};
  /// Cached immutable materialized-map copy; refreshed when dirty.
  std::shared_ptr<const std::map<int32_t, std::shared_ptr<Snapshot>>>
      published_materialized_;
  bool materialized_dirty_ = true;
  mutable SsspCache sssp_cache_;  ///< Singlepoint planning cache.
  mutable std::mutex sssp_mu_;    ///< Guards sssp_cache_ across concurrent queries.
  TaskPool* exec_pool_ = nullptr;  ///< Plan-execution pool (see SetTaskPool).
  bool exec_pool_set_ = false;     ///< False = default to the lazy shared pool.
  IoPool* io_pool_ = nullptr;      ///< Prefetch I/O pool (see SetIoPool).
  bool io_pool_set_ = false;       ///< False = default to IoPool::Shared().
  int io_lane_ = -1;               ///< Fixed prefetch lane (see SetIoLane).

  std::vector<AuxIndexHook*> aux_hooks_;

  std::string metrics_export_name_;  ///< Non-empty after RegisterMetricsExports.

  friend class SnapshotPlanVisitor;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_DELTA_GRAPH_H_
