#ifndef HISTGRAPH_DELTAGRAPH_PLAN_H_
#define HISTGRAPH_DELTAGRAPH_PLAN_H_

#include <memory>
#include <vector>

#include "common/types.h"

namespace hgdb {

/// \brief One state transition in a query plan.
///
/// A plan is a tree rooted at the *origin* (the empty graph, i.e. the
/// super-root). Each step transforms the working snapshot:
///  - kLoadMaterialized: replace the (empty) working snapshot with a copy of
///    a materialized skeleton node's graph (the 0-weight super-root edges of
///    Section 4.5).
///  - kLoadCurrent: replace it with a copy of the current graph (the
///    "rightmost leaf should also be considered materialized").
///  - kApplyDelta: fetch skeleton edge's delta and apply it (forward =
///    parent-to-child direction).
///  - kApplyEvents: fetch a leaf-eventlist edge and apply the events with
///    lo < time <= hi. Forward applies them oldest-first; backward undoes
///    them newest-first. Full traversal uses (kMinTimestamp, kMaxTimestamp].
///  - kApplyRecentEvents: like kApplyEvents but over the in-memory recent
///    eventlist that has not been folded into the index yet (Section 6,
///    "Updates to the Current graph").
struct PlanStep {
  enum class Kind : unsigned char {
    kLoadMaterialized,
    kLoadCurrent,
    kApplyDelta,
    kApplyEvents,
    kApplyRecentEvents,
  };
  Kind kind = Kind::kApplyDelta;
  int32_t node = -1;  ///< kLoadMaterialized: skeleton node id.
  int32_t edge = -1;  ///< kApplyDelta / kApplyEvents: skeleton edge id.
  bool forward = true;
  Timestamp lo = kMinTimestamp;  ///< kApplyEvents: exclusive lower bound.
  Timestamp hi = kMaxTimestamp;  ///< kApplyEvents: inclusive upper bound.
};

/// A node of the plan tree. `emit_times` are the query time points whose
/// snapshots equal the working snapshot at this node; `emit_nodes` are
/// skeleton node ids whose graphs equal it (materialization plans).
struct PlanNode {
  std::vector<Timestamp> emit_times;
  std::vector<int32_t> emit_nodes;
  std::vector<std::pair<PlanStep, std::unique_ptr<PlanNode>>> children;
};

/// A complete (single- or multi-point) retrieval plan.
struct Plan {
  std::unique_ptr<PlanNode> root;  ///< The origin (empty working snapshot).
  double estimated_cost = 0.0;     ///< Sum of traversed edge weights (bytes).

  /// Total number of steps (diagnostics).
  size_t StepCount() const;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_PLAN_H_
