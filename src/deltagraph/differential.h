#ifndef HISTGRAPH_DELTAGRAPH_DIFFERENTIAL_H_
#define HISTGRAPH_DELTAGRAPH_DIFFERENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/snapshot.h"

namespace hgdb {

/// \brief A differential function f() (Table 2 of the paper).
///
/// A differential function computes the graph corresponding to an interior
/// DeltaGraph node from the graphs of its k children: Sp = f(Sc1, ..., Sck).
/// The result need not be a valid graph as of any time point — it is just a
/// set of elements chosen to make the deltas to the children small and to
/// shape the distribution of retrieval times over history (Section 5.2).
class DifferentialFunction {
 public:
  virtual ~DifferentialFunction() = default;

  /// Canonical name, e.g. "intersection", "mixed(0.5,0.5)".
  virtual std::string name() const = 0;

  /// Combines the children snapshots (ordered oldest to newest) into the
  /// parent snapshot. Children are never empty.
  virtual Snapshot Combine(const std::vector<const Snapshot*>& children) const = 0;
};

/// f(a, b, ...) = a ∩ b ∩ ... — lowest disk usage; skewed retrieval times
/// (older snapshots faster on growing graphs). For a growing-only graph the
/// root equals G0.
std::unique_ptr<DifferentialFunction> MakeIntersectionFunction();

/// f(a, b, ...) = a ∪ b ∪ ...
std::unique_ptr<DifferentialFunction> MakeUnionFunction();

/// f(...) = ∅ — reduces the DeltaGraph to the Copy+Log approach (every
/// interior edge stores a full snapshot).
std::unique_ptr<DifferentialFunction> MakeEmptyFunction();

/// Mixed: f(a, b, c, ...) = a + r1·(δab + δbc + ...) − r2·(ρab + ρbc + ...),
/// 0 ≤ r2 ≤ r1 ≤ 1. Element selection uses a fixed hash (the same hash for
/// the δ and ρ picks, which keeps the result well-defined — Section 5.2).
/// Balanced is the special case r1 = r2 = 1/2.
std::unique_ptr<DifferentialFunction> MakeMixedFunction(double r1, double r2);

/// Balanced: Mixed with r1 = r2 = 1/2; equalizes delta sizes across children.
std::unique_ptr<DifferentialFunction> MakeBalancedFunction();

/// Skewed: f(a, b) = a + r·(b − a). r = 0 yields a, r = 1 yields b. Folds
/// pairwise for arity > 2.
std::unique_ptr<DifferentialFunction> MakeSkewedFunction(double r);

/// Right-skewed: f(a, b) = a∩b + r·(b − a∩b).
std::unique_ptr<DifferentialFunction> MakeRightSkewedFunction(double r);

/// Left-skewed: f(a, b) = a∩b + r·(a − a∩b).
std::unique_ptr<DifferentialFunction> MakeLeftSkewedFunction(double r);

/// Parses a function spec: "intersection", "union", "empty", "balanced",
/// "mixed:<r1>:<r2>", "skewed:<r>", "rightskewed:<r>", "leftskewed:<r>".
Result<std::unique_ptr<DifferentialFunction>> MakeDifferentialFunction(
    const std::string& spec);

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_DIFFERENTIAL_H_
