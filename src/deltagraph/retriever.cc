#include <chrono>
#include <unordered_map>

#include "analysis/models.h"
#include "deltagraph/delta_graph.h"
#include "exec/fetch_cache.h"
#include "exec/io_pool.h"
#include "exec/parallel_executor.h"
#include "exec/plan_touches.h"
#include "exec/prefetcher.h"
#include "exec/task_pool.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stages.h"

namespace hgdb {

namespace {

/// Times one GetSnapshots call into the registry (when metrics are on), and
/// feeds the latency to the trace sampler so an over-threshold query arms
/// tail tracing for its successors.
class QueryMeter {
 public:
  QueryMeter() : on_(obs::MetricsEnabled()) {
    if (on_) start_ = std::chrono::steady_clock::now();
  }
  ~QueryMeter() {
    if (!on_) return;
    static obs::Histogram* us =
        obs::MetricsRegistry::Global().GetHistogram("deltagraph.query_us");
    static obs::Counter* queries =
        obs::MetricsRegistry::Global().GetCounter("deltagraph.queries");
    const auto elapsed_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    us->Record(elapsed_us);
    queries->Add();
    obs::TraceSampler::Global().Observe(elapsed_us);
  }

 private:
  bool on_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Status ApplyEventRange(std::span<const Event> events, Snapshot* g, bool forward,
                       Timestamp lo, Timestamp hi, unsigned components) {
  if (forward) {
    for (const auto& e : events) {
      if (e.time <= lo) continue;
      if (e.time > hi) break;
      HG_RETURN_NOT_OK(g->Apply(e, true, components));
    }
  } else {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it->time > hi) continue;
      if (it->time <= lo) break;
      HG_RETURN_NOT_OK(g->Apply(*it, false, components));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Snapshot plan execution
// ---------------------------------------------------------------------------

/// The PlanVisitor that actually reconstructs snapshots: fetches deltas and
/// eventlists from the store, applies them to a working snapshot, and copies
/// the working snapshot out at every emit point — an O(1) copy-on-write
/// share since the Snapshot rework; the clone cost is paid lazily, only for
/// stores the plan actually mutates after the emit. Decoded deltas and
/// eventlists are pinned (shared_ptr) for the duration of one plan so the
/// backtracking (inverse) application never refetches; across plans they
/// come from the DeltaStore's decoded-object LRU.
///
/// When a `prefetched` cache is supplied, misses in the local pin resolve
/// through it instead of fetching synchronously: the plan pre-scan has
/// already queued every edge on the I/O pool, so the visitor blocks only if
/// it outruns the prefetcher.
class SnapshotPlanVisitor final : public PlanVisitor {
 public:
  /// Every piece of writer-mutable state — skeleton edges, the current graph,
  /// materialized snapshots, the recent tail — is resolved from `frontier`,
  /// so the visitor is immune to concurrent appends. `tc` attributes the
  /// visitor's *direct* store fetches (the no-prefetch path) to the trace;
  /// fetches through `prefetched` are attributed by the cache itself (its
  /// owner set its trace).
  SnapshotPlanVisitor(const DeltaGraph* dg, FrontierPtr frontier,
                      unsigned components, ExecFetchCache* prefetched = nullptr,
                      obs::TraceCtx tc = {})
      : dg_(dg),
        frontier_(std::move(frontier)),
        components_(components),
        prefetched_(prefetched),
        tc_(tc) {}

  Status LoadMaterialized(int32_t node) override {
    const Snapshot* snap = frontier_->materialized_snapshot(node);
    if (snap == nullptr) {
      return Status::Internal("plan: node not materialized: " + std::to_string(node));
    }
    const unsigned have = frontier_->skeleton->node(node).materialized_components;
    g_ = (have == components_) ? *snap : snap->CopyFiltered(components_);
    return Status::OK();
  }

  Status LoadCurrent() override {
    if (frontier_->current == nullptr) {
      return Status::Internal("plan: no current graph at pinned frontier");
    }
    g_ = frontier_->current->CopyFiltered(components_);
    return Status::OK();
  }

  Status Unload() override {
    g_.Clear();
    return Status::OK();
  }

  Status ApplyDelta(int32_t edge, bool forward) override {
    const Delta* d = nullptr;
    HG_RETURN_NOT_OK(FetchDelta(edge, &d));
    return d->ApplyTo(&g_, forward, components_);
  }

  Status ApplyEvents(int32_t edge, bool forward, Timestamp lo, Timestamp hi) override {
    const EventList* el = nullptr;
    HG_RETURN_NOT_OK(FetchEventList(edge, &el));
    return ApplyRange(el->events(), forward, lo, hi);
  }

  Status ApplyRecentEvents(bool forward, Timestamp lo, Timestamp hi) override {
    return ApplyRange(frontier_->recent.events(), forward, lo, hi);
  }

  Status EmitTime(Timestamp t, bool is_final) override {
    // The last emit of the plan owns the working snapshot outright; skipping
    // the copy matters for large snapshots (singlepoint queries especially).
    results_.by_time[t] = is_final ? std::move(g_) : g_;
    return Status::OK();
  }

  Status EmitNode(int32_t node, bool is_final) override {
    results_.by_node[node] = is_final ? std::move(g_) : g_;
    return Status::OK();
  }

  DeltaGraph::SnapshotPlanResults TakeResults() { return std::move(results_); }

 private:
  Status FetchDelta(int32_t edge, const Delta** out) {
    auto it = delta_cache_.find(edge);
    if (it == delta_cache_.end()) {
      // Resolve the edge's payload key from the *pinned* skeleton; payloads
      // are written before their edge is published and never deleted, so the
      // fetch always succeeds regardless of concurrent ingest.
      const SkeletonEdge& e = frontier_->skeleton->edge(edge);
      Result<std::shared_ptr<const Delta>> d = [&] {
        if (prefetched_ != nullptr) return prefetched_->GetDelta(*dg_, e, components_);
        obs::StageTimer stage(obs::StageFetchHist());
        obs::ScopedSpan span(tc_, "fetch.demand");
        DeltaStore::ReadStats rs;
        auto r = dg_->store_.GetDeltaShared(e.delta_id, components_, e.sizes,
                                            tc_ ? &rs : nullptr);
        RecordDirectFetch(span, edge, "delta", rs);
        return r;
      }();
      if (!d.ok()) return d.status();
      it = delta_cache_.emplace(edge, std::move(d).value()).first;
    }
    *out = it->second.get();
    return Status::OK();
  }

  Status FetchEventList(int32_t edge, const EventList** out) {
    auto it = el_cache_.find(edge);
    if (it == el_cache_.end()) {
      const SkeletonEdge& e = frontier_->skeleton->edge(edge);
      Result<std::shared_ptr<const EventList>> el = [&] {
        if (prefetched_ != nullptr) {
          return prefetched_->GetEventList(*dg_, e, components_);
        }
        obs::StageTimer stage(obs::StageFetchHist());
        obs::ScopedSpan span(tc_, "fetch.demand");
        DeltaStore::ReadStats rs;
        auto r = dg_->store_.GetEventListShared(e.delta_id, components_, e.sizes,
                                                tc_ ? &rs : nullptr);
        RecordDirectFetch(span, edge, "eventlist", rs);
        return r;
      }();
      if (!el.ok()) return el.status();
      it = el_cache_.emplace(edge, std::move(el).value()).first;
    }
    *out = it->second.get();
    return Status::OK();
  }

  /// Books one direct (no fetch cache) store read onto the trace.
  void RecordDirectFetch(obs::ScopedSpan& span, int32_t edge, const char* kind,
                         const DeltaStore::ReadStats& rs) {
    if (!tc_) return;
    span.SetAttrs({{"edge", static_cast<int64_t>(edge)},
                   {"kind", std::string(kind)},
                   {"lru_hit", static_cast<int64_t>(rs.cache_hit ? 1 : 0)},
                   {"kv_keys", static_cast<int64_t>(rs.kv_keys)},
                   {"bytes", static_cast<int64_t>(rs.bytes)}});
    tc_.trace->fetches_total.fetch_add(1, std::memory_order_relaxed);
    tc_.trace->fetches_demand.fetch_add(1, std::memory_order_relaxed);
    if (rs.cache_hit) {
      tc_.trace->lru_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      tc_.trace->lru_misses.fetch_add(1, std::memory_order_relaxed);
      tc_.trace->kv_reads.fetch_add(rs.kv_keys, std::memory_order_relaxed);
      tc_.trace->bytes_read.fetch_add(rs.bytes, std::memory_order_relaxed);
      tc_.trace->bytes_decoded.fetch_add(rs.bytes, std::memory_order_relaxed);
    }
  }

  Status ApplyRange(std::span<const Event> events, bool forward, Timestamp lo,
                    Timestamp hi) {
    return ApplyEventRange(events, &g_, forward, lo, hi, components_);
  }

  const DeltaGraph* dg_;
  FrontierPtr frontier_;  ///< Pinned visibility epoch for all mutable state.
  unsigned components_;
  ExecFetchCache* prefetched_;  ///< Optional; filled ahead by the I/O pool.
  obs::TraceCtx tc_;            ///< Attribution for direct store fetches.
  Snapshot g_;
  DeltaGraph::SnapshotPlanResults results_;
  std::unordered_map<int32_t, std::shared_ptr<const Delta>> delta_cache_;
  std::unordered_map<int32_t, std::shared_ptr<const EventList>> el_cache_;
};

Status DeltaGraph::ApplyPlanStep(const PlanStep& step, PlanVisitor* visitor,
                                 bool undo) const {
  switch (step.kind) {
    case PlanStep::Kind::kLoadMaterialized:
      return undo ? visitor->Unload() : visitor->LoadMaterialized(step.node);
    case PlanStep::Kind::kLoadCurrent:
      return undo ? visitor->Unload() : visitor->LoadCurrent();
    case PlanStep::Kind::kApplyDelta:
      return visitor->ApplyDelta(step.edge, undo ? !step.forward : step.forward);
    case PlanStep::Kind::kApplyEvents:
      return visitor->ApplyEvents(step.edge, undo ? !step.forward : step.forward,
                                  step.lo, step.hi);
    case PlanStep::Kind::kApplyRecentEvents:
      return visitor->ApplyRecentEvents(undo ? !step.forward : step.forward, step.lo,
                                        step.hi);
  }
  return Status::Internal("plan: unknown step kind");
}

Status DeltaGraph::WalkPlanNode(const PlanNode& node, PlanVisitor* visitor,
                                bool is_tail) const {
  // The very last emit of the whole plan happens at a tail node with no
  // children; that emit may consume the working state.
  const bool final_here = is_tail && node.children.empty();
  for (size_t i = 0; i < node.emit_times.size(); ++i) {
    const bool is_final =
        final_here && node.emit_nodes.empty() && i + 1 == node.emit_times.size();
    HG_RETURN_NOT_OK(visitor->EmitTime(node.emit_times[i], is_final));
  }
  for (size_t i = 0; i < node.emit_nodes.size(); ++i) {
    const bool is_final = final_here && i + 1 == node.emit_nodes.size();
    HG_RETURN_NOT_OK(visitor->EmitNode(node.emit_nodes[i], is_final));
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const auto& [step, child] = node.children[i];
    // The deepest-rightmost path never needs undoing: nothing follows it.
    const bool child_tail = is_tail && (i + 1 == node.children.size());
    HG_RETURN_NOT_OK(ApplyPlanStep(step, visitor, /*undo=*/false));
    HG_RETURN_NOT_OK(WalkPlanNode(*child, visitor, child_tail));
    if (!child_tail) HG_RETURN_NOT_OK(ApplyPlanStep(step, visitor, /*undo=*/true));
  }
  return Status::OK();
}

Status DeltaGraph::ExecutePlan(const Plan& plan, PlanVisitor* visitor) const {
  if (!plan.root) return Status::InvalidArgument("plan has no root");
  return WalkPlanNode(*plan.root, visitor, /*is_tail=*/true);
}

Result<DeltaGraph::SnapshotPlanResults> DeltaGraph::ExecutePlanPinned(
    const Plan& plan, unsigned components, ExecFetchCache* pinned,
    obs::TraceCtx tc, FrontierPtr frontier) const {
  if (frontier == nullptr) frontier = PinFrontier();
  obs::StageTimer stage(obs::StageExecuteHist());
  obs::ScopedSpan span(tc, "execute.serial");
  SnapshotPlanVisitor visitor(this, std::move(frontier), components, pinned,
                              span.ctx());
  HG_RETURN_NOT_OK(ExecutePlan(plan, &visitor));
  return visitor.TakeResults();
}

IoPool* DeltaGraph::ResolveIoPool() const {
  if (io_pool_ != nullptr) return io_pool_;
  return io_pool_set_ ? nullptr : IoPool::Shared();
}

Result<DeltaGraph::SnapshotPlanResults> DeltaGraph::ExecuteSnapshotPlan(
    const Plan& plan, unsigned components, const FrontierPtr& frontier,
    obs::TraceCtx tc) const {
  // Branchy plans run on the attached pool when it offers real parallelism;
  // linear plans (every singlepoint query) and serial configurations keep
  // the backtracking visitor, whose single-thread profile matches PR 1
  // exactly. The shared default pool is resolved lazily so processes that
  // never execute a branchy plan never spawn its threads. Either executor
  // runs behind the plan prefetcher when an I/O pool is available.
  const bool branchy = PlanHasBranches(plan);
  TaskPool* pool = exec_pool_;
  if (pool == nullptr && !exec_pool_set_ && branchy) pool = &TaskPool::Shared();
  IoPool* io = ResolveIoPool();
  if (branchy && pool != nullptr && pool->parallelism() >= 2) {
    ParallelPlanExecutor executor(this, frontier, components, pool,
                                  /*shared_cache=*/nullptr, io);
    executor.SetTrace(tc);
    return executor.Run(plan);
  }
  if (io != nullptr) {
    // Serial execution over a prefetched pin: the I/O pool fetches the
    // plan's edges in first-touch order while the visitor applies. The cache
    // destructor drains any prefetches the plan never consumed. Plans with
    // fewer than two fetches have nothing to overlap (the visitor blocks on
    // the first fetch either way), so they keep the zero-synchronization
    // direct path — e.g. singlepoint queries served from a materialized node.
    const std::vector<PlanFetch> fetches = CollectPlanFetches(plan);
    if (fetches.size() >= 2) {
      obs::StageTimer stage(obs::StageExecuteHist());
      obs::ScopedSpan span(tc, "execute.serial_prefetch");
      ExecFetchCache cache;
      cache.SetTrace(span.ctx());
      StartCollectedPrefetch(*this, *frontier->skeleton, fetches, components,
                             &cache, io);
      SnapshotPlanVisitor visitor(this, frontier, components, &cache, span.ctx());
      HG_RETURN_NOT_OK(ExecutePlan(plan, &visitor));
      return visitor.TakeResults();
    }
  }
  obs::StageTimer stage(obs::StageExecuteHist());
  obs::ScopedSpan span(tc, "execute.serial");
  SnapshotPlanVisitor visitor(this, frontier, components, /*prefetched=*/nullptr,
                              span.ctx());
  HG_RETURN_NOT_OK(ExecutePlan(plan, &visitor));
  return visitor.TakeResults();
}

Result<std::vector<Snapshot>> DeltaGraph::SnapshotPlanResults::TakeInOrder(
    const std::vector<Timestamp>& times) {
  std::vector<Snapshot> out;
  out.reserve(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    auto it = by_time.find(times[i]);
    if (it == by_time.end()) {
      return Status::Internal("plan did not produce snapshot for requested time");
    }
    // The same time may be requested twice; copy all but the last use.
    bool last_use = true;
    for (size_t j = i + 1; j < times.size(); ++j) {
      if (times[j] == times[i]) {
        last_use = false;
        break;
      }
    }
    if (last_use) {
      out.push_back(std::move(it->second));
    } else {
      out.push_back(it->second);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Public retrieval API
// ---------------------------------------------------------------------------

Result<Plan> DeltaGraph::PlanFor(const std::vector<Timestamp>& times,
                                 unsigned components) const {
  Planner planner(MakePlannerContext());
  return planner.PlanSnapshots(times, components);
}

Result<Plan> DeltaGraph::PlanForAt(const FrontierPtr& frontier,
                                   const std::vector<Timestamp>& times,
                                   unsigned components) const {
  Planner planner(MakePlannerContext(*frontier));
  auto plan = planner.PlanSnapshots(times, components);
  if (plan.ok()) RecordPlanTouches(plan.value(), *frontier->skeleton);
  return plan;
}

void DeltaGraph::RecordPlanTouches(const Plan& plan, const Skeleton& skel) const {
  node_touches_.EnsureSize(skel.node_count());
  for (int32_t n : CollectPlanNodeTouches(plan, skel)) {
    node_touches_.Record(static_cast<DeltaId>(n));
  }
}

Result<Snapshot> DeltaGraph::GetSnapshot(Timestamp t, unsigned components) {
  auto snaps = GetSnapshots({t}, components);
  if (!snaps.ok()) return snaps.status();
  return std::move(snaps.value()[0]);
}

Result<std::vector<Snapshot>> DeltaGraph::GetSnapshots(
    const std::vector<Timestamp>& times, unsigned components) {
  // Pin once so the trace-enabled check and the query see one epoch.
  FrontierPtr frontier = PinFrontier();
  // When tracing is on — globally, or this query won the sampler's draw — a
  // standalone call owns its own trace and dumps it on completion; callers
  // that want programmatic access go through a session
  // (RetrievalSession::LastTrace) or the traced overload below.
  if ((obs::TraceEnabled() || obs::TraceSampler::Global().Sample()) &&
      !times.empty() && !frontier->skeleton->leaves().empty()) {
    obs::QueryTrace trace;
    trace.set_query_label(times.size() == 1 ? "singlepoint" : "multipoint");
    trace.set_epoch(frontier->epoch);
    trace.set_event_count(frontier->event_count);
    auto out =
        GetSnapshotsAt(frontier, times, components, obs::TraceCtx{&trace, obs::kNoSpan});
    obs::FinishAndMaybeDump(&trace);
    return out;
  }
  return GetSnapshotsAt(frontier, times, components, obs::TraceCtx{});
}

Result<std::vector<Snapshot>> DeltaGraph::GetSnapshots(
    const std::vector<Timestamp>& times, unsigned components, obs::TraceCtx tc) {
  return GetSnapshotsAt(PinFrontier(), times, components, tc);
}

Result<std::vector<Snapshot>> DeltaGraph::GetSnapshotsAt(
    const FrontierPtr& frontier, const std::vector<Timestamp>& times,
    unsigned components, obs::TraceCtx tc) const {
  if (times.empty()) return std::vector<Snapshot>();
  QueryMeter meter;

  // Index still empty at the pinned epoch: replay the recent tail directly.
  if (frontier->skeleton->leaves().empty()) {
    std::vector<Snapshot> out;
    out.reserve(times.size());
    for (Timestamp t : times) {
      Snapshot g;
      for (const auto& e : frontier->recent.events()) {
        if (e.time > t) break;
        HG_RETURN_NOT_OK(g.Apply(e, true, components));
      }
      out.push_back(std::move(g));
    }
    return out;
  }

  Planner planner(MakePlannerContext(*frontier));
  Result<Plan> plan = [&]() -> Result<Plan> {
    obs::StageTimer stage(obs::StagePlanHist());
    obs::ScopedSpan span(tc, "plan");
    auto r = [&]() -> Result<Plan> {
      if (times.size() == 1 && options_.use_plan_cache) {
        // The SSSP cache is shared mutable state; concurrent retrievals
        // serialize the (cheap) planning step, never the execution. The cache
        // keys on the skeleton version, so queries pinned at different
        // epochs rebuild it rather than reading a mismatched tree.
        std::lock_guard<std::mutex> lock(sssp_mu_);
        return planner.PlanSinglepointCached(times[0], components, &sssp_cache_);
      }
      return planner.PlanSnapshots(times, components);
    }();
    if (tc && r.ok()) {
      // Predicted cost next to actuals: the planner's byte estimate for this
      // plan, and the analytical model's balanced-path element count from the
      // graph's observed dynamics (Section 6 of the paper).
      span.SetAttr("steps", static_cast<int64_t>(r.value().StepCount()));
      span.SetAttr("est_cost_bytes", r.value().estimated_cost);
      const GraphDynamics dyn =
          EstimateDynamics(frontier->insert_events, frontier->delete_events,
                           frontier->event_count, frontier->initial_elements);
      span.SetAttr("model_path_elements", BalancedPathElements(dyn));
      span.SetAttr("times", static_cast<int64_t>(times.size()));
    }
    return r;
  }();
  if (!plan.ok()) return plan.status();
  RecordPlanTouches(plan.value(), *frontier->skeleton);
  auto exec = ExecuteSnapshotPlan(plan.value(), components, frontier, tc);
  if (!exec.ok()) return exec.status();
  obs::StageTimer merge_stage(obs::StageMergeHist());
  return exec.value().TakeInOrder(times);
}

Status DeltaGraph::CollectEvents(Timestamp ts, Timestamp te, unsigned components,
                                 EventList* out) const {
  if (ts >= te) return Status::InvalidArgument("CollectEvents requires ts < te");
  // Pin once: the scan sees one consistent epoch of eventlists + recent tail.
  const FrontierPtr frontier = PinFrontier();
  const Skeleton& skel = *frontier->skeleton;
  *out = EventList();
  for (int32_t eid : skel.EventlistEdgesInOrder()) {
    const SkeletonEdge& e = skel.edge(eid);
    const Timestamp b_lo = skel.node(e.from).boundary_time;
    const Timestamp b_hi = skel.node(e.to).boundary_time;
    if (b_hi < ts || b_lo >= te) continue;  // Eventlist covers (b_lo, b_hi].
    auto el = store_.GetEventListShared(e.delta_id, components, e.sizes);
    if (!el.ok()) return el.status();
    for (const auto& ev : el.value()->events()) {
      if (ev.time >= ts && ev.time < te) out->Append(ev);
    }
  }
  for (const auto& ev : frontier->recent.events()) {
    if (ev.time >= ts && ev.time < te &&
        (ev.component() & components) != 0) {
      out->Append(ev);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Auxiliary-index retrieval (Section 4.7)
// ---------------------------------------------------------------------------

namespace {

/// Bridges plan execution onto an auxiliary index hook.
class AuxPlanVisitor final : public PlanVisitor {
 public:
  AuxPlanVisitor(const AuxIndexHook& hook) : hook_(hook), state_(hook.NewState()) {}

  Status LoadMaterialized(int32_t) override {
    return Status::Internal("aux plan must not use materialized shortcuts");
  }
  Status LoadCurrent() override {
    return Status::Internal("aux plan must not use the current graph");
  }
  Status Unload() override {
    state_ = hook_.NewState();
    return Status::OK();
  }
  Status ApplyDelta(int32_t edge, bool forward) override {
    return hook_.ApplyDeltaEdge(state_.get(), edge, forward);
  }
  Status ApplyEvents(int32_t edge, bool forward, Timestamp lo, Timestamp hi) override {
    return hook_.ApplyEventRange(state_.get(), edge, forward, lo, hi);
  }
  Status ApplyRecentEvents(bool forward, Timestamp lo, Timestamp hi) override {
    return hook_.ApplyRecentRange(state_.get(), forward, lo, hi);
  }
  Status EmitTime(Timestamp, bool) override {
    emitted_ = std::move(state_);
    state_ = hook_.NewState();
    return Status::OK();
  }
  Status EmitNode(int32_t, bool is_final) override { return EmitTime(0, is_final); }

  std::unique_ptr<AuxState> TakeEmitted() { return std::move(emitted_); }

 private:
  const AuxIndexHook& hook_;
  std::unique_ptr<AuxState> state_;
  std::unique_ptr<AuxState> emitted_;
};

}  // namespace

Result<std::unique_ptr<AuxState>> DeltaGraph::GetAuxState(const AuxIndexHook& hook,
                                                          Timestamp t) const {
  PlannerContext ctx = MakePlannerContext();
  ctx.allow_materialized = false;
  ctx.allow_current = false;
  Planner planner(ctx);
  auto plan = planner.PlanSnapshots({t}, kCompStruct);
  if (!plan.ok()) return plan.status();
  AuxPlanVisitor visitor(hook);
  HG_RETURN_NOT_OK(ExecutePlan(plan.value(), &visitor));
  auto emitted = visitor.TakeEmitted();
  if (emitted == nullptr) {
    return Status::Internal("aux plan emitted no state");
  }
  return emitted;
}

}  // namespace hgdb
