#include "deltagraph/skeleton.h"

#include <algorithm>

#include "common/coding.h"

namespace hgdb {

int32_t Skeleton::AddNode(SkeletonNode node) {
  ++version_;
  node.id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  incident_.emplace_back();
  if (node.is_leaf) {
    leaves_.push_back(node.id);
    // Leaves are appended chronologically by the builder; keep sorted anyway.
    std::sort(leaves_.begin(), leaves_.end(), [this](int32_t a, int32_t b) {
      return nodes_[a].boundary_time < nodes_[b].boundary_time;
    });
  }
  return node.id;
}

int32_t Skeleton::AddEdge(SkeletonEdge edge) {
  ++version_;
  edge.id = static_cast<int32_t>(edges_.size());
  edges_.push_back(edge);
  incident_[edge.from].push_back(edge.id);
  incident_[edge.to].push_back(edge.id);
  return edge.id;
}

void Skeleton::RemoveEdge(int32_t edge_id) {
  ++version_;
  SkeletonEdge& e = edges_[edge_id];
  if (e.deleted) return;
  e.deleted = true;
  auto drop = [edge_id](std::vector<int32_t>* v) {
    v->erase(std::remove(v->begin(), v->end(), edge_id), v->end());
  };
  drop(&incident_[e.from]);
  drop(&incident_[e.to]);
}

int Skeleton::FindLeafInterval(Timestamp t) const {
  if (leaves_.empty()) return -1;
  // Find the last leaf with boundary_time < t; the interval to its right
  // contains t. boundary(leaves[i]) < t <= boundary(leaves[i+1]).
  int lo = 0, hi = static_cast<int>(leaves_.size()) - 1, ans = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (nodes_[leaves_[mid]].boundary_time < t) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

int32_t Skeleton::FindEventlistEdge(int32_t left_leaf, int32_t right_leaf) const {
  for (int32_t eid : incident_[left_leaf]) {
    const SkeletonEdge& e = edges_[eid];
    if (e.is_eventlist && e.from == left_leaf && e.to == right_leaf) return eid;
  }
  return -1;
}

std::vector<int32_t> Skeleton::EventlistEdgesInOrder() const {
  std::vector<int32_t> out;
  for (size_t i = 0; i + 1 < leaves_.size(); ++i) {
    const int32_t eid = FindEventlistEdge(leaves_[i], leaves_[i + 1]);
    if (eid >= 0) out.push_back(eid);
  }
  return out;
}

uint64_t Skeleton::TotalBytes(unsigned components) const {
  uint64_t total = 0;
  for (const auto& e : edges_) {
    if (!e.deleted) total += e.sizes.TotalBytes(components);
  }
  return total;
}

void Skeleton::EncodeTo(std::string* out) const {
  out->clear();
  PutVarint32(out, 1);  // Format version.
  PutVarint64(out, nodes_.size());
  for (const auto& n : nodes_) {
    PutVarint32(out, static_cast<uint32_t>(n.level));
    unsigned char flags = 0;
    if (n.is_leaf) flags |= 1;
    if (n.is_super_root) flags |= 2;
    if (n.materialized) flags |= 4;
    out->push_back(static_cast<char>(flags));
    PutVarint32(out, static_cast<uint32_t>(n.hierarchy));
    PutVarsint64(out, n.boundary_time);
    PutVarint64(out, n.element_count);
  }
  PutVarint64(out, edges_.size());
  for (const auto& e : edges_) {
    PutVarint32(out, static_cast<uint32_t>(e.from));
    PutVarint32(out, static_cast<uint32_t>(e.to));
    unsigned char flags = 0;
    if (e.is_eventlist) flags |= 1;
    if (e.deleted) flags |= 2;
    out->push_back(static_cast<char>(flags));
    PutVarint64(out, e.delta_id);
    for (int c = 0; c < kNumComponents; ++c) PutVarint64(out, e.sizes.bytes[c]);
    for (int c = 0; c < kNumComponents; ++c) PutVarint64(out, e.sizes.elements[c]);
  }
  PutVarint32(out, static_cast<uint32_t>(super_root_ + 1));
}

Status Skeleton::DecodeFrom(const Slice& blob, Skeleton* out) {
  *out = Skeleton();
  Slice in = blob;
  uint32_t version = 0;
  if (!GetVarint32(&in, &version) || version != 1) {
    return Status::Corruption("skeleton: bad version");
  }
  uint64_t node_count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &node_count, "skeleton node count"));
  for (uint64_t i = 0; i < node_count; ++i) {
    SkeletonNode n;
    uint32_t level = 0, hierarchy = 0;
    if (!GetVarint32(&in, &level)) return Status::Corruption("skeleton node level");
    if (in.empty()) return Status::Corruption("skeleton node flags");
    const unsigned char flags = static_cast<unsigned char>(in[0]);
    in.RemovePrefix(1);
    if (!GetVarint32(&in, &hierarchy)) return Status::Corruption("skeleton hierarchy");
    if (!GetVarsint64(&in, &n.boundary_time)) {
      return Status::Corruption("skeleton node time");
    }
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &n.element_count, "skeleton node size"));
    n.level = static_cast<int32_t>(level);
    n.hierarchy = static_cast<int32_t>(hierarchy);
    n.is_leaf = flags & 1;
    n.is_super_root = flags & 2;
    n.materialized = false;  // Materialization is a runtime property.
    out->AddNode(n);
  }
  uint64_t edge_count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &edge_count, "skeleton edge count"));
  for (uint64_t i = 0; i < edge_count; ++i) {
    SkeletonEdge e;
    uint32_t from = 0, to = 0;
    if (!GetVarint32(&in, &from) || !GetVarint32(&in, &to)) {
      return Status::Corruption("skeleton edge endpoints");
    }
    if (in.empty()) return Status::Corruption("skeleton edge flags");
    const unsigned char flags = static_cast<unsigned char>(in[0]);
    in.RemovePrefix(1);
    e.from = static_cast<int32_t>(from);
    e.to = static_cast<int32_t>(to);
    e.is_eventlist = flags & 1;
    const bool deleted = flags & 2;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &e.delta_id, "skeleton delta id"));
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(ExpectVarint64(&in, &e.sizes.bytes[c], "skeleton edge bytes"));
    }
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(
          ExpectVarint64(&in, &e.sizes.elements[c], "skeleton edge elements"));
    }
    const int32_t id = out->AddEdge(e);
    if (deleted) out->RemoveEdge(id);
  }
  uint32_t super_root_plus1 = 0;
  if (!GetVarint32(&in, &super_root_plus1)) {
    return Status::Corruption("skeleton super root");
  }
  out->super_root_ = static_cast<int32_t>(super_root_plus1) - 1;
  if (!in.empty()) return Status::Corruption("skeleton: trailing bytes");
  return Status::OK();
}

}  // namespace hgdb
