#include "deltagraph/skeleton.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "codec/format.h"
#include "common/coding.h"

namespace hgdb {

int32_t Skeleton::AddNode(SkeletonNode node) {
  ++version_;
  node.id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  incident_.emplace_back();
  if (node.is_leaf) {
    leaves_.push_back(node.id);
    // Leaves are appended chronologically by the builder; keep sorted anyway.
    std::sort(leaves_.begin(), leaves_.end(), [this](int32_t a, int32_t b) {
      return nodes_[a].boundary_time < nodes_[b].boundary_time;
    });
  }
  return node.id;
}

int32_t Skeleton::AddEdge(SkeletonEdge edge) {
  ++version_;
  edge.id = static_cast<int32_t>(edges_.size());
  edges_.push_back(edge);
  incident_[edge.from].push_back(edge.id);
  incident_[edge.to].push_back(edge.id);
  return edge.id;
}

void Skeleton::RemoveEdge(int32_t edge_id) {
  ++version_;
  SkeletonEdge& e = edges_[edge_id];
  if (e.deleted) return;
  e.deleted = true;
  auto drop = [edge_id](std::vector<int32_t>* v) {
    v->erase(std::remove(v->begin(), v->end(), edge_id), v->end());
  };
  drop(&incident_[e.from]);
  drop(&incident_[e.to]);
}

int Skeleton::FindLeafInterval(Timestamp t) const {
  if (leaves_.empty()) return -1;
  // Find the last leaf with boundary_time < t; the interval to its right
  // contains t. boundary(leaves[i]) < t <= boundary(leaves[i+1]).
  int lo = 0, hi = static_cast<int>(leaves_.size()) - 1, ans = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (nodes_[leaves_[mid]].boundary_time < t) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

int32_t Skeleton::FindEventlistEdge(int32_t left_leaf, int32_t right_leaf) const {
  for (int32_t eid : incident_[left_leaf]) {
    const SkeletonEdge& e = edges_[eid];
    if (e.is_eventlist && e.from == left_leaf && e.to == right_leaf) return eid;
  }
  return -1;
}

std::vector<int32_t> Skeleton::EventlistEdgesInOrder() const {
  std::vector<int32_t> out;
  for (size_t i = 0; i + 1 < leaves_.size(); ++i) {
    const int32_t eid = FindEventlistEdge(leaves_[i], leaves_[i + 1]);
    if (eid >= 0) out.push_back(eid);
  }
  return out;
}

uint64_t Skeleton::TotalBytes(unsigned components) const {
  uint64_t total = 0;
  for (const auto& e : edges_) {
    if (!e.deleted) total += e.sizes.TotalBytes(components);
  }
  return total;
}

// Skeleton blobs use the versioned columnar container (src/codec/format.h):
// header + framed column blocks, each a PutDeltaVarints column so runs of
// close values (levels, endpoints, monotone boundary times) encode as short
// deltas and large columns ride the block compressor. Signed boundary times
// are zigzagged into the unsigned column. Blobs written before this format
// (the pre-codec v0 row layout, a bare varint version 1) are still decoded
// by the legacy path below.
void Skeleton::EncodeTo(std::string* out) const {
  out->clear();
  codec::PutHeader(out, codec::kVersion1);

  const auto zigzag = [](int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  };

  {
    std::string payload;
    PutVarint64(&payload, nodes_.size());
    std::vector<uint64_t> col(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) col[i] = static_cast<uint32_t>(nodes_[i].level);
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const auto& n = nodes_[i];
      col[i] = (n.is_leaf ? 1u : 0u) | (n.is_super_root ? 2u : 0u) |
               (n.materialized ? 4u : 0u);
    }
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < nodes_.size(); ++i) col[i] = static_cast<uint32_t>(nodes_[i].hierarchy);
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < nodes_.size(); ++i) col[i] = zigzag(nodes_[i].boundary_time);
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < nodes_.size(); ++i) col[i] = nodes_[i].element_count;
    codec::PutDeltaVarints(col, &payload);
    codec::AppendBlock(codec::kBlockSkelNodes, Slice(payload), out);
  }
  {
    std::string payload;
    PutVarint64(&payload, edges_.size());
    std::vector<uint64_t> col(edges_.size());
    for (size_t i = 0; i < edges_.size(); ++i) col[i] = static_cast<uint32_t>(edges_[i].from);
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < edges_.size(); ++i) col[i] = static_cast<uint32_t>(edges_[i].to);
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < edges_.size(); ++i) {
      col[i] = (edges_[i].is_eventlist ? 1u : 0u) | (edges_[i].deleted ? 2u : 0u);
    }
    codec::PutDeltaVarints(col, &payload);
    for (size_t i = 0; i < edges_.size(); ++i) col[i] = edges_[i].delta_id;
    codec::PutDeltaVarints(col, &payload);
    for (int c = 0; c < kNumComponents; ++c) {
      for (size_t i = 0; i < edges_.size(); ++i) col[i] = edges_[i].sizes.bytes[c];
      codec::PutDeltaVarints(col, &payload);
    }
    for (int c = 0; c < kNumComponents; ++c) {
      for (size_t i = 0; i < edges_.size(); ++i) col[i] = edges_[i].sizes.elements[c];
      codec::PutDeltaVarints(col, &payload);
    }
    codec::AppendBlock(codec::kBlockSkelEdges, Slice(payload), out);
  }
  {
    std::string payload;
    PutVarint32(&payload, static_cast<uint32_t>(super_root_ + 1));
    codec::AppendBlock(codec::kBlockSkelMeta, Slice(payload), out);
  }
}

namespace {

// Reads one PutDeltaVarints column of exactly `count` entries.
Status GetColumn(Slice* in, size_t count, std::vector<uint64_t>* col,
                 const char* what) {
  HG_RETURN_NOT_OK(codec::GetDeltaVarints(in, col, what));
  if (col->size() != count) {
    return Status::Corruption(std::string("skeleton: column size mismatch: ") + what);
  }
  return Status::OK();
}

Status DecodeColumnar(const Slice& blob, Skeleton* out) {
  codec::BlockReader reader;
  std::unordered_map<uint8_t, Slice> blocks;
  HG_RETURN_NOT_OK(codec::ReadBlocks(blob, &reader, &blocks));
  const auto unzigzag = [](uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  };

  auto nodes_it = blocks.find(codec::kBlockSkelNodes);
  if (nodes_it == blocks.end()) return Status::Corruption("skeleton: missing node block");
  {
    Slice in = nodes_it->second;
    uint64_t count = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "skeleton node count"));
    std::vector<uint64_t> levels, flags, hierarchies, times, sizes;
    HG_RETURN_NOT_OK(GetColumn(&in, count, &levels, "skeleton node levels"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &flags, "skeleton node flags"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &hierarchies, "skeleton node hierarchies"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &times, "skeleton node times"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &sizes, "skeleton node sizes"));
    if (!in.empty()) return Status::Corruption("skeleton: node block trailing bytes");
    for (uint64_t i = 0; i < count; ++i) {
      SkeletonNode n;
      n.level = static_cast<int32_t>(levels[i]);
      n.is_leaf = flags[i] & 1;
      n.is_super_root = flags[i] & 2;
      n.materialized = false;  // Materialization is a runtime property.
      n.hierarchy = static_cast<int32_t>(hierarchies[i]);
      n.boundary_time = unzigzag(times[i]);
      n.element_count = sizes[i];
      out->AddNode(n);
    }
  }

  auto edges_it = blocks.find(codec::kBlockSkelEdges);
  if (edges_it == blocks.end()) return Status::Corruption("skeleton: missing edge block");
  {
    Slice in = edges_it->second;
    uint64_t count = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "skeleton edge count"));
    std::vector<uint64_t> from, to, flags, delta_ids;
    HG_RETURN_NOT_OK(GetColumn(&in, count, &from, "skeleton edge from"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &to, "skeleton edge to"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &flags, "skeleton edge flags"));
    HG_RETURN_NOT_OK(GetColumn(&in, count, &delta_ids, "skeleton delta ids"));
    std::array<std::vector<uint64_t>, kNumComponents> bytes, elements;
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(GetColumn(&in, count, &bytes[c], "skeleton edge bytes"));
    }
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(GetColumn(&in, count, &elements[c], "skeleton edge elements"));
    }
    if (!in.empty()) return Status::Corruption("skeleton: edge block trailing bytes");
    const size_t node_count = out->node_count();
    for (uint64_t i = 0; i < count; ++i) {
      SkeletonEdge e;
      if (from[i] >= node_count || to[i] >= node_count) {
        return Status::Corruption("skeleton: edge endpoint out of range");
      }
      e.from = static_cast<int32_t>(from[i]);
      e.to = static_cast<int32_t>(to[i]);
      e.is_eventlist = flags[i] & 1;
      e.delta_id = delta_ids[i];
      for (int c = 0; c < kNumComponents; ++c) {
        e.sizes.bytes[c] = bytes[c][i];
        e.sizes.elements[c] = elements[c][i];
      }
      const int32_t id = out->AddEdge(e);
      if (flags[i] & 2) out->RemoveEdge(id);
    }
  }

  auto meta_it = blocks.find(codec::kBlockSkelMeta);
  if (meta_it == blocks.end()) return Status::Corruption("skeleton: missing meta block");
  {
    Slice in = meta_it->second;
    uint32_t super_root_plus1 = 0;
    if (!GetVarint32(&in, &super_root_plus1)) {
      return Status::Corruption("skeleton super root");
    }
    if (super_root_plus1 > out->node_count()) {
      return Status::Corruption("skeleton: super root out of range");
    }
    out->SetSuperRoot(static_cast<int32_t>(super_root_plus1) - 1);
  }
  return Status::OK();
}

}  // namespace

Status Skeleton::DecodeFrom(const Slice& blob, Skeleton* out) {
  *out = Skeleton();
  if (codec::HasHeader(blob)) return DecodeColumnar(blob, out);
  // Legacy pre-codec v0 row layout (bare varint version tag).
  Slice in = blob;
  uint32_t version = 0;
  if (!GetVarint32(&in, &version) || version != 1) {
    return Status::Corruption("skeleton: bad version");
  }
  uint64_t node_count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &node_count, "skeleton node count"));
  for (uint64_t i = 0; i < node_count; ++i) {
    SkeletonNode n;
    uint32_t level = 0, hierarchy = 0;
    if (!GetVarint32(&in, &level)) return Status::Corruption("skeleton node level");
    if (in.empty()) return Status::Corruption("skeleton node flags");
    const unsigned char flags = static_cast<unsigned char>(in[0]);
    in.RemovePrefix(1);
    if (!GetVarint32(&in, &hierarchy)) return Status::Corruption("skeleton hierarchy");
    if (!GetVarsint64(&in, &n.boundary_time)) {
      return Status::Corruption("skeleton node time");
    }
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &n.element_count, "skeleton node size"));
    n.level = static_cast<int32_t>(level);
    n.hierarchy = static_cast<int32_t>(hierarchy);
    n.is_leaf = flags & 1;
    n.is_super_root = flags & 2;
    n.materialized = false;  // Materialization is a runtime property.
    out->AddNode(n);
  }
  uint64_t edge_count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &edge_count, "skeleton edge count"));
  for (uint64_t i = 0; i < edge_count; ++i) {
    SkeletonEdge e;
    uint32_t from = 0, to = 0;
    if (!GetVarint32(&in, &from) || !GetVarint32(&in, &to)) {
      return Status::Corruption("skeleton edge endpoints");
    }
    if (in.empty()) return Status::Corruption("skeleton edge flags");
    const unsigned char flags = static_cast<unsigned char>(in[0]);
    in.RemovePrefix(1);
    e.from = static_cast<int32_t>(from);
    e.to = static_cast<int32_t>(to);
    e.is_eventlist = flags & 1;
    const bool deleted = flags & 2;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &e.delta_id, "skeleton delta id"));
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(ExpectVarint64(&in, &e.sizes.bytes[c], "skeleton edge bytes"));
    }
    for (int c = 0; c < kNumComponents; ++c) {
      HG_RETURN_NOT_OK(
          ExpectVarint64(&in, &e.sizes.elements[c], "skeleton edge elements"));
    }
    const int32_t id = out->AddEdge(e);
    if (deleted) out->RemoveEdge(id);
  }
  uint32_t super_root_plus1 = 0;
  if (!GetVarint32(&in, &super_root_plus1)) {
    return Status::Corruption("skeleton super root");
  }
  out->super_root_ = static_cast<int32_t>(super_root_plus1) - 1;
  if (!in.empty()) return Status::Corruption("skeleton: trailing bytes");
  return Status::OK();
}

}  // namespace hgdb
