#include "deltagraph/partitioned_delta_graph.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/coding.h"
#include "exec/fetch_cache.h"
#include "exec/io_pool.h"
#include "exec/parallel_executor.h"
#include "exec/prefetcher.h"
#include "exec/task_pool.h"

namespace hgdb {

namespace {

/// Meta key (in the base store, outside every shard namespace) recording the
/// shard count of a single-store partitioned index.
constexpr char kShardCountKey[] = "pm/shards";

std::string ShardPrefix(size_t i) { return "s" + std::to_string(i) + "/"; }

}  // namespace

PartitionedDeltaGraph::PartitionedDeltaGraph(
    std::vector<std::unique_ptr<DeltaGraph>> parts,
    std::vector<std::unique_ptr<KVStore>> owned_stores)
    : owned_stores_(std::move(owned_stores)), partitions_(std::move(parts)) {
  // One I/O lane per shard: the shard's whole fetch pipeline drains on one
  // IoPool thread, and distinct shards drain on distinct threads (mod the
  // pool size), which is what makes the per-shard pipelines overlap.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->SetIoLane(static_cast<int>(i));
  }
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Create(
    std::vector<KVStore*> stores, DeltaGraphOptions options) {
  if (stores.empty()) {
    return Status::InvalidArgument("at least one partition store required");
  }
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  parts.reserve(stores.size());
  for (KVStore* store : stores) {
    auto dg = DeltaGraph::Create(store, options);
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), {}));
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Create(
    KVStore* base, size_t shards, DeltaGraphOptions options) {
  if (base == nullptr) return Status::InvalidArgument("null base store");
  if (shards == 0) return Status::InvalidArgument("at least one shard required");
  if (base->Contains(kShardCountKey)) {
    return Status::InvalidArgument("store already holds a partitioned index (use Open)");
  }
  std::vector<std::unique_ptr<KVStore>> owned;
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  owned.reserve(shards);
  parts.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    owned.push_back(NewPrefixKVStore(base, ShardPrefix(i)));
    auto dg = DeltaGraph::Create(owned.back().get(), options);
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  HG_RETURN_NOT_OK(base->Put(kShardCountKey, std::to_string(shards)));
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), std::move(owned)));
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Open(
    KVStore* base) {
  if (base == nullptr) return Status::InvalidArgument("null base store");
  std::string count_str;
  Status s = base->Get(kShardCountKey, &count_str);
  if (!s.ok()) {
    return Status::InvalidArgument("store holds no partitioned index (missing " +
                                   std::string(kShardCountKey) + ")");
  }
  char* end = nullptr;
  const unsigned long shards = std::strtoul(count_str.c_str(), &end, 10);
  if (end == count_str.c_str() || *end != '\0' || shards == 0 || shards > 1u << 16) {
    return Status::Corruption("bad shard count: " + count_str);
  }
  std::vector<std::unique_ptr<KVStore>> owned;
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  owned.reserve(shards);
  parts.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    owned.push_back(NewPrefixKVStore(base, ShardPrefix(i)));
    auto dg = DeltaGraph::Open(owned.back().get());
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), std::move(owned)));
}

PartitionId PartitionedDeltaGraph::PartitionOfNode(NodeId n) const {
  // Chunk-aligned: Snapshot's node-keyed chunks span at most 256 consecutive
  // ids, so hashing the 256-id block number keeps every chunk on one shard
  // and lets AbsorbDisjoint adopt it wholesale at merge time.
  return static_cast<PartitionId>(Mix64(n >> 8) % partitions_.size());
}

PartitionId PartitionedDeltaGraph::PartitionOfEdge(EdgeId e) const {
  // Same block-hash rule as nodes, over the edge id space: edge records and
  // edge attributes live in 128-id chunks, and a 256-id block covers exactly
  // two of those, so every edge-keyed chunk is partition-pure too.
  return static_cast<PartitionId>(Mix64(e >> 8) % partitions_.size());
}

PartitionId PartitionedDeltaGraph::PartitionOf(const Event& e) const {
  switch (e.type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
    case EventType::kNodeAttr:
    case EventType::kTransientNode:
      return PartitionOfNode(e.node);
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
    case EventType::kTransientEdge:
    case EventType::kEdgeAttr:
      // All events about one edge — structural and attribute — carry the edge
      // id, so routing by it keeps an edge's whole history on one shard.
      return PartitionOfEdge(e.edge);
  }
  return 0;
}

Status PartitionedDeltaGraph::SetInitialSnapshot(const Snapshot& g0, Timestamp t0) {
  std::vector<Snapshot> parts(partitions_.size());
  for (NodeId n : g0.nodes()) parts[PartitionOfNode(n)].AddNode(n);
  for (const auto& [id, rec] : g0.edges()) {
    parts[PartitionOfEdge(id)].AddEdge(id, rec);
  }
  for (const auto& [n, attrs] : g0.node_attrs()) {
    Snapshot& p = parts[PartitionOfNode(n)];
    for (const auto& [k, v] : attrs) p.SetNodeAttrId(n, k, v);
  }
  for (const auto& [id, attrs] : g0.edge_attrs()) {
    Snapshot& p = parts[PartitionOfEdge(id)];
    for (const auto& [k, v] : attrs) p.SetEdgeAttrId(id, k, v);
  }
  return ForEachShard([&](size_t i) {
    return partitions_[i]->SetInitialSnapshot(parts[i], t0);
  });
}

Status PartitionedDeltaGraph::Append(const Event& e) {
  return partitions_[PartitionOf(e)]->Append(e);
}

Status PartitionedDeltaGraph::AppendAll(const std::vector<Event>& events) {
  std::vector<std::vector<Event>> buckets(partitions_.size());
  for (const Event& e : events) buckets[PartitionOf(e)].push_back(e);
  return ForEachShard([&](size_t i) {
    return partitions_[i]->AppendAll(buckets[i]);
  });
}

Status PartitionedDeltaGraph::Finalize() {
  return ForEachShard([&](size_t i) { return partitions_[i]->Finalize(); });
}

void PartitionedDeltaGraph::SetTaskPool(TaskPool* pool) {
  exec_pool_ = pool;
  exec_pool_set_ = true;
  for (auto& p : partitions_) p->SetTaskPool(pool);
}

TaskPool* PartitionedDeltaGraph::ResolveTaskPool() const {
  if (exec_pool_ != nullptr) return exec_pool_;
  return exec_pool_set_ ? nullptr : &TaskPool::Shared();
}

void PartitionedDeltaGraph::SetIoPool(IoPool* pool) {
  for (auto& p : partitions_) p->SetIoPool(pool);
}

void PartitionedDeltaGraph::SetDecodedCacheCapacity(size_t entries) {
  for (auto& p : partitions_) p->SetDecodedCacheCapacity(entries);
}

Status PartitionedDeltaGraph::ForEachShard(const std::function<Status(size_t)>& fn) {
  const size_t n = partitions_.size();
  TaskPool* pool = ResolveTaskPool();
  if (pool == nullptr || pool->parallelism() < 2 || n < 2) {
    for (size_t i = 0; i < n; ++i) HG_RETURN_NOT_OK(fn(i));
    return Status::OK();
  }
  std::vector<Status> statuses(n);
  {
    TaskGroup group(pool);
    for (size_t i = 0; i < n; ++i) {
      group.Spawn([&statuses, &fn, i] { statuses[i] = fn(i); });
    }
    group.Wait();
  }
  for (const Status& s : statuses) HG_RETURN_NOT_OK(s);
  return Status::OK();
}

Result<std::vector<std::vector<Snapshot>>> PartitionedDeltaGraph::RetrieveParts(
    const std::vector<Timestamp>& times, unsigned components) {
  // Standalone call with tracing on: own the trace and dump on completion.
  // GetSnapshots wraps this with its own trace, so only one of them owns it.
  if (obs::TraceEnabled() && !times.empty()) {
    obs::QueryTrace trace;
    trace.set_query_label("retrieve_parts");
    auto out = RetrieveParts(times, components, obs::TraceCtx{&trace, obs::kNoSpan});
    obs::FinishAndMaybeDump(&trace);
    return out;
  }
  return RetrieveParts(times, components, obs::TraceCtx{});
}

Result<std::vector<std::vector<Snapshot>>> PartitionedDeltaGraph::RetrieveParts(
    const std::vector<Timestamp>& times, unsigned components, obs::TraceCtx tc) {
  const size_t n = partitions_.size();
  std::vector<std::vector<Snapshot>> parts(n);
  if (times.empty()) return parts;

  obs::ScopedSpan retrieve_span(tc, "retrieve");
  tc = retrieve_span.ctx();
  std::vector<obs::SpanId> shard_spans(n, obs::kNoSpan);

  TaskPool* pool = ResolveTaskPool();
  const bool parallel = pool != nullptr && pool->parallelism() >= 2;

  // Pin one cross-shard frontier up front: planning, prefetch, execution,
  // and the replay fallbacks below all resolve against this vector, so a
  // concurrent writer cannot skew any shard mid-query.
  const std::vector<FrontierPtr> frontiers = PinFrontiers();

  // Plan every shard before touching storage. A shard with no skeleton (never
  // finalized, or simply empty) has nothing to plan over; it takes the
  // in-memory replay fallback below.
  std::vector<Plan> plans(n);
  std::vector<char> fallback(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (frontiers[i]->skeleton->leaves().empty()) {
      fallback[i] = 1;
      continue;
    }
    auto plan = partitions_[i]->PlanForAt(frontiers[i], times, components);
    if (!plan.ok()) return plan.status();
    plans[i] = std::move(plan).value();
  }

  // Issue every shard's prefetch before any shard executes. Each shard's
  // batch lands on its own I/O lane (SetIoLane in the constructor), so all
  // the per-shard fetch pipelines are in flight together and their storage
  // stalls overlap instead of queueing behind one another.
  std::vector<std::unique_ptr<ExecFetchCache>> caches(n);
  for (size_t i = 0; i < n; ++i) {
    if (fallback[i]) continue;
    caches[i] = std::make_unique<ExecFetchCache>();
    if (parallel) caches[i]->SetDecodePool(pool);
    if (tc) {
      shard_spans[i] = tc.trace->BeginSpan("shard", tc.span);
      tc.trace->SetAttr(shard_spans[i], "shard", static_cast<int64_t>(i));
      tc.trace->SetAttr(shard_spans[i], "steps",
                        static_cast<int64_t>(plans[i].StepCount()));
      tc.trace->SetAttr(shard_spans[i], "est_cost_bytes", plans[i].estimated_cost);
      caches[i]->SetTrace(obs::TraceCtx{tc.trace, shard_spans[i]});
    }
    IoPool* io = partitions_[i]->ResolveIoPool();
    if (io != nullptr) {
      StartCollectedPrefetch(*partitions_[i], *frontiers[i]->skeleton,
                             CollectPlanFetches(plans[i]), components,
                             caches[i].get(), io);
    }
  }

  Status first_error;
  auto record = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  };

  if (parallel) {
    // Every shard's plan tree goes into ONE group on the shared pool: shard
    // subtrees are sibling tasks, stolen freely across workers, so a shard
    // that finishes early lends its cycles to the others. Executors get a
    // null IoPool — their prefetch already ran above into the shard cache —
    // so Start does not queue the same fetches twice.
    std::vector<std::unique_ptr<ParallelPlanExecutor>> executors(n);
    {
      TaskGroup group(pool);
      for (size_t i = 0; i < n; ++i) {
        if (fallback[i]) continue;
        executors[i] = std::make_unique<ParallelPlanExecutor>(
            partitions_[i].get(), frontiers[i], components, pool,
            caches[i].get(), /*io_pool=*/nullptr);
        executors[i]->SetTrace(obs::TraceCtx{tc.trace, shard_spans[i]});
        executors[i]->Start(plans[i], &group);
      }
      group.Wait();
    }
    uint64_t busy_sum_ns = 0, busy_max_ns = 0;
    size_t busy_shards = 0;
    for (size_t i = 0; i < n; ++i) {
      if (executors[i] == nullptr) continue;
      const Status s = executors[i]->TakeStatus();
      if (tc) {
        const uint64_t busy = executors[i]->busy_ns();
        busy_sum_ns += busy;
        busy_max_ns = std::max(busy_max_ns, busy);
        ++busy_shards;
        tc.trace->EndSpan(shard_spans[i]);
      }
      if (!s.ok()) {
        record(s);
        continue;
      }
      auto in_order = executors[i]->TakeResults().TakeInOrder(times);
      record(in_order.status());
      if (in_order.ok()) parts[i] = std::move(in_order).value();
    }
    if (tc && busy_shards > 0) {
      // Execution skew: slowest shard's busy time over the per-shard mean;
      // 1.0 = perfectly balanced.
      tc.trace->SetAttr(tc.span, "busy_us_sum",
                        static_cast<int64_t>(busy_sum_ns / 1000));
      tc.trace->SetAttr(tc.span, "busy_us_max",
                        static_cast<int64_t>(busy_max_ns / 1000));
      if (busy_sum_ns > 0) {
        tc.trace->SetAttr(tc.span, "shard_skew",
                          static_cast<double>(busy_max_ns) * busy_shards /
                              static_cast<double>(busy_sum_ns));
      }
    }
  } else {
    // Serial execution pinned to the prefilled caches: the single thread
    // walks one shard plan at a time while the I/O lanes keep fetching the
    // other shards' payloads in the background.
    for (size_t i = 0; i < n; ++i) {
      if (fallback[i]) continue;
      auto results = partitions_[i]->ExecutePlanPinned(
          plans[i], components, caches[i].get(),
          obs::TraceCtx{tc.trace, shard_spans[i]}, frontiers[i]);
      if (tc) tc.trace->EndSpan(shard_spans[i]);
      if (!results.ok()) {
        record(results.status());
        continue;
      }
      auto in_order = results.value().TakeInOrder(times);
      record(in_order.status());
      if (in_order.ok()) parts[i] = std::move(in_order).value();
    }
  }

  // Fallback shards replay their (entirely in-memory) pinned recent view.
  for (size_t i = 0; i < n; ++i) {
    if (!fallback[i]) continue;
    auto snaps = partitions_[i]->GetSnapshotsAt(frontiers[i], times, components, tc);
    record(snaps.status());
    if (snaps.ok()) parts[i] = std::move(snaps).value();
  }

  if (!first_error.ok()) return first_error;
  return parts;
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshots(
    const std::vector<Timestamp>& times, unsigned components) {
  // Own the trace here (rather than letting RetrieveParts own one) so the
  // cross-shard merge is on the same trace as the per-shard execution.
  obs::QueryTrace trace;
  obs::TraceCtx tc;
  if (obs::TraceEnabled() && !times.empty()) {
    trace.set_query_label(times.size() == 1 ? "partitioned_singlepoint"
                                            : "partitioned_multipoint");
    tc = obs::TraceCtx{&trace, obs::kNoSpan};
  }
  auto parts = RetrieveParts(times, components, tc);
  if (!parts.ok()) return parts.status();
  std::vector<Snapshot> merged(times.size());
  {
    obs::ScopedSpan merge_span(tc, "merge");
    for (size_t p = 0; p < partitions_.size(); ++p) {
      for (size_t i = 0; i < times.size(); ++i) {
        merged[i].AbsorbDisjoint(std::move(parts.value()[p][i]));
      }
    }
  }
  if (tc) obs::FinishAndMaybeDump(tc.trace);
  return merged;
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshotParts(
    Timestamp t, unsigned components) {
  auto parts = RetrieveParts({t}, components);
  if (!parts.ok()) return parts.status();
  std::vector<Snapshot> flat;
  flat.reserve(partitions_.size());
  for (auto& p : parts.value()) flat.push_back(std::move(p.front()));
  return flat;
}

DeltaGraphStats PartitionedDeltaGraph::Stats() const {
  DeltaGraphStats agg;
  for (const auto& shard : partitions_) {
    const DeltaGraphStats s = shard->Stats();
    agg.leaf_count += s.leaf_count;
    agg.node_count += s.node_count;
    agg.edge_count += s.edge_count;
    agg.height = std::max(agg.height, s.height);
    agg.delta_bytes += s.delta_bytes;
    agg.eventlist_bytes += s.eventlist_bytes;
    agg.store_bytes += s.store_bytes;
    agg.materialized_bytes += s.materialized_bytes;
    agg.materialized_nodes += s.materialized_nodes;
  }
  return agg;
}

Result<Snapshot> PartitionedDeltaGraph::GetSnapshot(Timestamp t, unsigned components) {
  auto parts = GetSnapshotParts(t, components);
  if (!parts.ok()) return parts.status();
  Snapshot merged;
  for (auto& p : parts.value()) merged.AbsorbDisjoint(std::move(p));
  return merged;
}

}  // namespace hgdb
