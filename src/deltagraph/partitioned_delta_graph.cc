#include "deltagraph/partitioned_delta_graph.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/coding.h"
#include "exec/fetch_cache.h"
#include "exec/io_pool.h"
#include "exec/parallel_executor.h"
#include "exec/prefetcher.h"
#include "exec/task_pool.h"

namespace hgdb {

namespace {

/// Meta key (in the base store, outside every shard namespace) recording the
/// shard count of a single-store partitioned index.
constexpr char kShardCountKey[] = "pm/shards";

std::string ShardPrefix(size_t i) { return "s" + std::to_string(i) + "/"; }

}  // namespace

PartitionedDeltaGraph::PartitionedDeltaGraph(
    std::vector<std::unique_ptr<DeltaGraph>> parts,
    std::vector<std::unique_ptr<KVStore>> owned_stores)
    : owned_stores_(std::move(owned_stores)), partitions_(std::move(parts)) {
  // One I/O lane per shard: the shard's whole fetch pipeline drains on one
  // IoPool thread, and distinct shards drain on distinct threads (mod the
  // pool size), which is what makes the per-shard pipelines overlap.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->SetIoLane(static_cast<int>(i));
  }
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Create(
    std::vector<KVStore*> stores, DeltaGraphOptions options) {
  if (stores.empty()) {
    return Status::InvalidArgument("at least one partition store required");
  }
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  parts.reserve(stores.size());
  for (KVStore* store : stores) {
    auto dg = DeltaGraph::Create(store, options);
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), {}));
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Create(
    KVStore* base, size_t shards, DeltaGraphOptions options) {
  if (base == nullptr) return Status::InvalidArgument("null base store");
  if (shards == 0) return Status::InvalidArgument("at least one shard required");
  if (base->Contains(kShardCountKey)) {
    return Status::InvalidArgument("store already holds a partitioned index (use Open)");
  }
  std::vector<std::unique_ptr<KVStore>> owned;
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  owned.reserve(shards);
  parts.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    owned.push_back(NewPrefixKVStore(base, ShardPrefix(i)));
    auto dg = DeltaGraph::Create(owned.back().get(), options);
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  HG_RETURN_NOT_OK(base->Put(kShardCountKey, std::to_string(shards)));
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), std::move(owned)));
}

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Open(
    KVStore* base) {
  if (base == nullptr) return Status::InvalidArgument("null base store");
  std::string count_str;
  Status s = base->Get(kShardCountKey, &count_str);
  if (!s.ok()) {
    return Status::InvalidArgument("store holds no partitioned index (missing " +
                                   std::string(kShardCountKey) + ")");
  }
  char* end = nullptr;
  const unsigned long shards = std::strtoul(count_str.c_str(), &end, 10);
  if (end == count_str.c_str() || *end != '\0' || shards == 0 || shards > 1u << 16) {
    return Status::Corruption("bad shard count: " + count_str);
  }
  std::vector<std::unique_ptr<KVStore>> owned;
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  owned.reserve(shards);
  parts.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    owned.push_back(NewPrefixKVStore(base, ShardPrefix(i)));
    auto dg = DeltaGraph::Open(owned.back().get());
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts), std::move(owned)));
}

PartitionId PartitionedDeltaGraph::PartitionOfNode(NodeId n) const {
  // Chunk-aligned: Snapshot's node-keyed chunks span at most 256 consecutive
  // ids, so hashing the 256-id block number keeps every chunk on one shard
  // and lets AbsorbDisjoint adopt it wholesale at merge time.
  return static_cast<PartitionId>(Mix64(n >> 8) % partitions_.size());
}

PartitionId PartitionedDeltaGraph::PartitionOfEdge(EdgeId e) const {
  // Same block-hash rule as nodes, over the edge id space: edge records and
  // edge attributes live in 128-id chunks, and a 256-id block covers exactly
  // two of those, so every edge-keyed chunk is partition-pure too.
  return static_cast<PartitionId>(Mix64(e >> 8) % partitions_.size());
}

PartitionId PartitionedDeltaGraph::PartitionOf(const Event& e) const {
  switch (e.type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
    case EventType::kNodeAttr:
    case EventType::kTransientNode:
      return PartitionOfNode(e.node);
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
    case EventType::kTransientEdge:
    case EventType::kEdgeAttr:
      // All events about one edge — structural and attribute — carry the edge
      // id, so routing by it keeps an edge's whole history on one shard.
      return PartitionOfEdge(e.edge);
  }
  return 0;
}

Status PartitionedDeltaGraph::SetInitialSnapshot(const Snapshot& g0, Timestamp t0) {
  std::vector<Snapshot> parts(partitions_.size());
  for (NodeId n : g0.nodes()) parts[PartitionOfNode(n)].AddNode(n);
  for (const auto& [id, rec] : g0.edges()) {
    parts[PartitionOfEdge(id)].AddEdge(id, rec);
  }
  for (const auto& [n, attrs] : g0.node_attrs()) {
    Snapshot& p = parts[PartitionOfNode(n)];
    for (const auto& [k, v] : attrs) p.SetNodeAttrId(n, k, v);
  }
  for (const auto& [id, attrs] : g0.edge_attrs()) {
    Snapshot& p = parts[PartitionOfEdge(id)];
    for (const auto& [k, v] : attrs) p.SetEdgeAttrId(id, k, v);
  }
  return ForEachShard([&](size_t i) {
    return partitions_[i]->SetInitialSnapshot(parts[i], t0);
  });
}

Status PartitionedDeltaGraph::Append(const Event& e) {
  return partitions_[PartitionOf(e)]->Append(e);
}

Status PartitionedDeltaGraph::AppendAll(const std::vector<Event>& events) {
  std::vector<std::vector<Event>> buckets(partitions_.size());
  for (const Event& e : events) buckets[PartitionOf(e)].push_back(e);
  return ForEachShard([&](size_t i) {
    return partitions_[i]->AppendAll(buckets[i]);
  });
}

Status PartitionedDeltaGraph::Finalize() {
  return ForEachShard([&](size_t i) { return partitions_[i]->Finalize(); });
}

void PartitionedDeltaGraph::SetTaskPool(TaskPool* pool) {
  exec_pool_ = pool;
  exec_pool_set_ = true;
  for (auto& p : partitions_) p->SetTaskPool(pool);
}

TaskPool* PartitionedDeltaGraph::ResolveTaskPool() const {
  if (exec_pool_ != nullptr) return exec_pool_;
  return exec_pool_set_ ? nullptr : &TaskPool::Shared();
}

void PartitionedDeltaGraph::SetIoPool(IoPool* pool) {
  for (auto& p : partitions_) p->SetIoPool(pool);
}

void PartitionedDeltaGraph::SetDecodedCacheCapacity(size_t entries) {
  for (auto& p : partitions_) p->SetDecodedCacheCapacity(entries);
}

Status PartitionedDeltaGraph::ForEachShard(const std::function<Status(size_t)>& fn) {
  const size_t n = partitions_.size();
  TaskPool* pool = ResolveTaskPool();
  if (pool == nullptr || pool->parallelism() < 2 || n < 2) {
    for (size_t i = 0; i < n; ++i) HG_RETURN_NOT_OK(fn(i));
    return Status::OK();
  }
  std::vector<Status> statuses(n);
  {
    TaskGroup group(pool);
    for (size_t i = 0; i < n; ++i) {
      group.Spawn([&statuses, &fn, i] { statuses[i] = fn(i); });
    }
    group.Wait();
  }
  for (const Status& s : statuses) HG_RETURN_NOT_OK(s);
  return Status::OK();
}

Result<std::vector<std::vector<Snapshot>>> PartitionedDeltaGraph::RetrieveParts(
    const std::vector<Timestamp>& times, unsigned components) {
  const size_t n = partitions_.size();
  std::vector<std::vector<Snapshot>> parts(n);
  if (times.empty()) return parts;

  TaskPool* pool = ResolveTaskPool();
  const bool parallel = pool != nullptr && pool->parallelism() >= 2;

  // Plan every shard before touching storage. A shard with no skeleton (never
  // finalized, or simply empty) has nothing to plan over; it takes the
  // in-memory replay fallback below.
  std::vector<Plan> plans(n);
  std::vector<char> fallback(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (partitions_[i]->skeleton().leaves().empty()) {
      fallback[i] = 1;
      continue;
    }
    auto plan = partitions_[i]->PlanFor(times, components);
    if (!plan.ok()) return plan.status();
    plans[i] = std::move(plan).value();
  }

  // Issue every shard's prefetch before any shard executes. Each shard's
  // batch lands on its own I/O lane (SetIoLane in the constructor), so all
  // the per-shard fetch pipelines are in flight together and their storage
  // stalls overlap instead of queueing behind one another.
  std::vector<std::unique_ptr<ExecFetchCache>> caches(n);
  for (size_t i = 0; i < n; ++i) {
    if (fallback[i]) continue;
    caches[i] = std::make_unique<ExecFetchCache>();
    if (parallel) caches[i]->SetDecodePool(pool);
    IoPool* io = partitions_[i]->ResolveIoPool();
    if (io != nullptr) {
      StartCollectedPrefetch(*partitions_[i], CollectPlanFetches(plans[i]),
                             components, caches[i].get(), io);
    }
  }

  Status first_error;
  auto record = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  };

  if (parallel) {
    // Every shard's plan tree goes into ONE group on the shared pool: shard
    // subtrees are sibling tasks, stolen freely across workers, so a shard
    // that finishes early lends its cycles to the others. Executors get a
    // null IoPool — their prefetch already ran above into the shard cache —
    // so Start does not queue the same fetches twice.
    std::vector<std::unique_ptr<ParallelPlanExecutor>> executors(n);
    {
      TaskGroup group(pool);
      for (size_t i = 0; i < n; ++i) {
        if (fallback[i]) continue;
        executors[i] = std::make_unique<ParallelPlanExecutor>(
            partitions_[i].get(), components, pool, caches[i].get(),
            /*io_pool=*/nullptr);
        executors[i]->Start(plans[i], &group);
      }
      group.Wait();
    }
    for (size_t i = 0; i < n; ++i) {
      if (executors[i] == nullptr) continue;
      const Status s = executors[i]->TakeStatus();
      if (!s.ok()) {
        record(s);
        continue;
      }
      auto in_order = executors[i]->TakeResults().TakeInOrder(times);
      record(in_order.status());
      if (in_order.ok()) parts[i] = std::move(in_order).value();
    }
  } else {
    // Serial execution pinned to the prefilled caches: the single thread
    // walks one shard plan at a time while the I/O lanes keep fetching the
    // other shards' payloads in the background.
    for (size_t i = 0; i < n; ++i) {
      if (fallback[i]) continue;
      auto results =
          partitions_[i]->ExecutePlanPinned(plans[i], components, caches[i].get());
      if (!results.ok()) {
        record(results.status());
        continue;
      }
      auto in_order = results.value().TakeInOrder(times);
      record(in_order.status());
      if (in_order.ok()) parts[i] = std::move(in_order).value();
    }
  }

  // Fallback shards replay their (entirely in-memory) recent history.
  for (size_t i = 0; i < n; ++i) {
    if (!fallback[i]) continue;
    auto snaps = partitions_[i]->GetSnapshots(times, components);
    record(snaps.status());
    if (snaps.ok()) parts[i] = std::move(snaps).value();
  }

  if (!first_error.ok()) return first_error;
  return parts;
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshots(
    const std::vector<Timestamp>& times, unsigned components) {
  auto parts = RetrieveParts(times, components);
  if (!parts.ok()) return parts.status();
  std::vector<Snapshot> merged(times.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    for (size_t i = 0; i < times.size(); ++i) {
      merged[i].AbsorbDisjoint(std::move(parts.value()[p][i]));
    }
  }
  return merged;
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshotParts(
    Timestamp t, unsigned components) {
  auto parts = RetrieveParts({t}, components);
  if (!parts.ok()) return parts.status();
  std::vector<Snapshot> flat;
  flat.reserve(partitions_.size());
  for (auto& p : parts.value()) flat.push_back(std::move(p.front()));
  return flat;
}

Result<Snapshot> PartitionedDeltaGraph::GetSnapshot(Timestamp t, unsigned components) {
  auto parts = GetSnapshotParts(t, components);
  if (!parts.ok()) return parts.status();
  Snapshot merged;
  for (auto& p : parts.value()) merged.AbsorbDisjoint(std::move(p));
  return merged;
}

}  // namespace hgdb
