#include "deltagraph/partitioned_delta_graph.h"

#include <thread>

#include "common/coding.h"

namespace hgdb {

Result<std::unique_ptr<PartitionedDeltaGraph>> PartitionedDeltaGraph::Create(
    std::vector<KVStore*> stores, DeltaGraphOptions options) {
  if (stores.empty()) {
    return Status::InvalidArgument("at least one partition store required");
  }
  std::vector<std::unique_ptr<DeltaGraph>> parts;
  parts.reserve(stores.size());
  for (KVStore* store : stores) {
    auto dg = DeltaGraph::Create(store, options);
    if (!dg.ok()) return dg.status();
    parts.push_back(std::move(dg).value());
  }
  return std::unique_ptr<PartitionedDeltaGraph>(
      new PartitionedDeltaGraph(std::move(parts)));
}

PartitionId PartitionedDeltaGraph::PartitionOfNode(NodeId n) const {
  return static_cast<PartitionId>(Mix64(n) % partitions_.size());
}

PartitionId PartitionedDeltaGraph::PartitionOf(const Event& e) const {
  switch (e.type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
    case EventType::kNodeAttr:
    case EventType::kTransientNode:
      return PartitionOfNode(e.node);
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
    case EventType::kTransientEdge:
      return PartitionOfNode(e.src);
    case EventType::kEdgeAttr:
      // Edge attributes must be co-located with their edge; generators carry
      // the source endpoint on UEA events for this purpose.
      return e.src != kInvalidNodeId ? PartitionOfNode(e.src)
                                     : static_cast<PartitionId>(
                                           Mix64(e.edge) % partitions_.size());
  }
  return 0;
}

Status PartitionedDeltaGraph::SetInitialSnapshot(const Snapshot& g0, Timestamp t0) {
  std::vector<Snapshot> parts(partitions_.size());
  for (NodeId n : g0.nodes()) parts[PartitionOfNode(n)].AddNode(n);
  for (const auto& [id, rec] : g0.edges()) {
    parts[PartitionOfNode(rec.src)].AddEdge(id, rec);
  }
  for (const auto& [n, attrs] : g0.node_attrs()) {
    Snapshot& p = parts[PartitionOfNode(n)];
    for (const auto& [k, v] : attrs) p.SetNodeAttrId(n, k, v);
  }
  for (const auto& [id, attrs] : g0.edge_attrs()) {
    const EdgeRecord* rec = g0.FindEdge(id);
    const PartitionId pid = rec != nullptr
                                ? PartitionOfNode(rec->src)
                                : static_cast<PartitionId>(
                                      Mix64(id) % partitions_.size());
    Snapshot& p = parts[pid];
    for (const auto& [k, v] : attrs) p.SetEdgeAttrId(id, k, v);
  }
  for (size_t i = 0; i < partitions_.size(); ++i) {
    HG_RETURN_NOT_OK(partitions_[i]->SetInitialSnapshot(parts[i], t0));
  }
  return Status::OK();
}

Status PartitionedDeltaGraph::Append(const Event& e) {
  return partitions_[PartitionOf(e)]->Append(e);
}

Status PartitionedDeltaGraph::AppendAll(const std::vector<Event>& events) {
  for (const auto& e : events) HG_RETURN_NOT_OK(Append(e));
  return Status::OK();
}

Status PartitionedDeltaGraph::Finalize() {
  for (auto& p : partitions_) HG_RETURN_NOT_OK(p->Finalize());
  return Status::OK();
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshotParts(
    Timestamp t, unsigned components, int num_threads) {
  const size_t n = partitions_.size();
  if (num_threads <= 0) num_threads = static_cast<int>(n);
  std::vector<Snapshot> parts(n);
  std::vector<Status> statuses(n);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      auto snap = partitions_[i]->GetSnapshot(t, components);
      if (snap.ok()) {
        parts[i] = std::move(snap).value();
      } else {
        statuses[i] = snap.status();
      }
    }
  };
  std::vector<std::thread> threads;
  const int thread_count = std::min<int>(num_threads, static_cast<int>(n));
  threads.reserve(thread_count);
  for (int i = 0; i < thread_count; ++i) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
  for (const auto& s : statuses) {
    if (!s.ok()) return s;
  }
  return parts;
}

Result<std::vector<Snapshot>> PartitionedDeltaGraph::GetSnapshots(
    const std::vector<Timestamp>& times, unsigned components, int num_threads) {
  const size_t n = partitions_.size();
  if (num_threads <= 0) num_threads = static_cast<int>(n);
  std::vector<std::vector<Snapshot>> parts(n);
  std::vector<Status> statuses(n);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      auto snaps = partitions_[i]->GetSnapshots(times, components);
      if (snaps.ok()) {
        parts[i] = std::move(snaps).value();
      } else {
        statuses[i] = snaps.status();
      }
    }
  };
  std::vector<std::thread> threads;
  const int thread_count = std::min<int>(num_threads, static_cast<int>(n));
  threads.reserve(thread_count);
  for (int i = 0; i < thread_count; ++i) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
  for (const auto& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<Snapshot> merged(times.size());
  for (size_t p = 0; p < n; ++p) {
    for (size_t i = 0; i < times.size(); ++i) {
      merged[i].AbsorbDisjoint(std::move(parts[p][i]));
    }
  }
  return merged;
}

Result<Snapshot> PartitionedDeltaGraph::GetSnapshot(Timestamp t, unsigned components,
                                                    int num_threads) {
  auto parts = GetSnapshotParts(t, components, num_threads);
  if (!parts.ok()) return parts.status();
  Snapshot merged;
  for (auto& p : parts.value()) merged.AbsorbDisjoint(std::move(p));
  return merged;
}

}  // namespace hgdb
