#include "deltagraph/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace hgdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Inverts a plan step (traversal in the opposite direction).
PlanStep InvertStep(PlanStep s) {
  s.forward = !s.forward;
  return s;
}

}  // namespace

/// The augmented weighted graph the planner searches: skeleton nodes plus a
/// node for the current graph and one virtual node per query time point
/// (Figure 4). All edges are traversable in both directions.
struct Planner::AugGraph {
  struct Edge {
    int32_t u, v;
    double w;
    PlanStep step;  ///< Transforms the u-side state into the v-side state.
  };

  std::vector<Edge> edges;
  std::vector<std::vector<int32_t>> adj;  // node -> incident edge indices
  std::vector<std::vector<Timestamp>> emit_times;  // per aug node
  std::vector<int32_t> emit_node;  // aug node -> skeleton node to emit, or -1
  int32_t origin = -1;

  int32_t AddNode() {
    adj.emplace_back();
    emit_times.emplace_back();
    emit_node.push_back(-1);
    return static_cast<int32_t>(adj.size()) - 1;
  }

  void AddEdge(int32_t u, int32_t v, double w, PlanStep step) {
    const int32_t id = static_cast<int32_t>(edges.size());
    edges.push_back(Edge{u, v, w, step});
    adj[u].push_back(id);
    adj[v].push_back(id);
  }

  /// Single-source shortest paths (Dijkstra).
  void Dijkstra(int32_t source, std::vector<double>* dist,
                std::vector<int32_t>* parent_edge) const {
    dist->assign(adj.size(), kInf);
    parent_edge->assign(adj.size(), -1);
    using Item = std::pair<double, int32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    (*dist)[source] = 0.0;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > (*dist)[u]) continue;
      for (int32_t eid : adj[u]) {
        const Edge& e = edges[eid];
        const int32_t v = e.u == u ? e.v : e.u;
        const double nd = d + e.w;
        if (nd < (*dist)[v]) {
          (*dist)[v] = nd;
          (*parent_edge)[v] = eid;
          pq.emplace(nd, v);
        }
      }
    }
  }
};

namespace {

/// Builds the plan tree from a set of chosen augmented edges: takes a BFS
/// spanning tree of the chosen subgraph from the origin, prunes branches that
/// serve no terminal, and converts the remainder into PlanNodes whose steps
/// point away from the origin.
std::unique_ptr<PlanNode> BuildPlanTree(const Planner::AugGraph& g,
                                        const std::vector<int32_t>& chosen_edges,
                                        double* cost_out) {
  // BFS over the chosen subgraph.
  std::unordered_map<int32_t, std::vector<int32_t>> sub_adj;
  for (int32_t eid : chosen_edges) {
    sub_adj[g.edges[eid].u].push_back(eid);
    sub_adj[g.edges[eid].v].push_back(eid);
  }
  std::unordered_map<int32_t, int32_t> tree_parent_edge;  // node -> edge id
  std::vector<int32_t> order;
  std::unordered_set<int32_t> visited{g.origin};
  std::queue<int32_t> q;
  q.push(g.origin);
  while (!q.empty()) {
    const int32_t u = q.front();
    q.pop();
    order.push_back(u);
    auto it = sub_adj.find(u);
    if (it == sub_adj.end()) continue;
    for (int32_t eid : it->second) {
      const auto& e = g.edges[eid];
      const int32_t v = e.u == u ? e.v : e.u;
      if (visited.insert(v).second) {
        tree_parent_edge[v] = eid;
        q.push(v);
      }
    }
  }

  // Prune: repeatedly drop leaves that emit nothing.
  std::unordered_map<int32_t, int> child_count;
  for (const auto& [v, eid] : tree_parent_edge) {
    const auto& e = g.edges[eid];
    const int32_t parent = (e.u == v) ? e.v : e.u;
    ++child_count[parent];
  }
  auto is_terminal = [&](int32_t v) {
    return !g.emit_times[v].empty() || g.emit_node[v] >= 0;
  };
  // Process nodes in reverse BFS order so children are pruned before parents.
  std::unordered_set<int32_t> pruned;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int32_t v = *it;
    if (v == g.origin) continue;
    if (child_count[v] == 0 && !is_terminal(v)) {
      pruned.insert(v);
      const auto& e = g.edges[tree_parent_edge[v]];
      const int32_t parent = (e.u == v) ? e.v : e.u;
      --child_count[parent];
    }
  }

  // Recursively build PlanNodes.
  std::unordered_map<int32_t, std::vector<int32_t>> children_of;
  double cost = 0.0;
  for (const auto& [v, eid] : tree_parent_edge) {
    if (pruned.contains(v)) continue;
    const auto& e = g.edges[eid];
    const int32_t parent = (e.u == v) ? e.v : e.u;
    children_of[parent].push_back(v);
    cost += e.w;
  }
  *cost_out = cost;

  std::function<std::unique_ptr<PlanNode>(int32_t)> build =
      [&](int32_t v) -> std::unique_ptr<PlanNode> {
    auto node = std::make_unique<PlanNode>();
    node->emit_times = g.emit_times[v];
    if (g.emit_node[v] >= 0) node->emit_nodes.push_back(g.emit_node[v]);
    auto it = children_of.find(v);
    if (it != children_of.end()) {
      // Deterministic order: by child id.
      std::vector<int32_t> kids = it->second;
      std::sort(kids.begin(), kids.end());
      for (int32_t c : kids) {
        const auto& e = g.edges[tree_parent_edge[c]];
        PlanStep step = (e.u == v) ? e.step : InvertStep(e.step);
        node->children.emplace_back(step, build(c));
      }
    }
    return node;
  };
  return build(g.origin);
}

}  // namespace

size_t Plan::StepCount() const {
  size_t count = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    for (const auto& [step, child] : n.children) {
      ++count;
      walk(*child);
    }
  };
  if (root) walk(*root);
  return count;
}

namespace {

struct TerminalSpec {
  Timestamp time;
  // Attachment: either an exact skeleton node, or a virtual node on an
  // eventlist edge / the recent eventlist.
  enum class Kind { kExactNode, kOnEventlist, kOnRecent } kind;
  int32_t node = -1;       // kExactNode: skeleton node id.
  int32_t el_edge = -1;    // kOnEventlist: eventlist skeleton edge id.
};

}  // namespace

Result<Plan> Planner::PlanSnapshots(const std::vector<Timestamp>& times,
                                    unsigned components) const {
  const Skeleton& skel = *ctx_.skeleton;
  if (skel.leaves().empty() || skel.super_root() < 0) {
    return Status::InvalidArgument("planner: index has no leaves yet");
  }

  AugGraph g;
  // Augmented node 0..N-1 mirror skeleton nodes.
  for (size_t i = 0; i < skel.node_count(); ++i) g.AddNode();
  g.origin = skel.super_root();

  // Skeleton edges.
  for (size_t i = 0; i < skel.edge_count(); ++i) {
    const SkeletonEdge& e = skel.edge(static_cast<int32_t>(i));
    if (e.deleted) continue;
    PlanStep step;
    step.edge = e.id;
    step.forward = true;
    if (e.is_eventlist) {
      step.kind = PlanStep::Kind::kApplyEvents;
      step.lo = skel.node(e.from).boundary_time;
      step.hi = skel.node(e.to).boundary_time;
    } else {
      step.kind = PlanStep::Kind::kApplyDelta;
    }
    const double w =
        costs_.per_edge_overhead + static_cast<double>(e.sizes.TotalBytes(components));
    g.AddEdge(e.from, e.to, w, step);
  }

  // Materialized nodes hang off the super-root with near-zero weight
  // (Section 4.5). The weight models the in-memory copy. A materialized copy
  // is only usable if it holds every requested component.
  for (size_t i = 0; ctx_.allow_materialized && i < skel.node_count(); ++i) {
    const SkeletonNode& n = skel.node(static_cast<int32_t>(i));
    if (!n.materialized || n.is_super_root) continue;
    if ((n.materialized_components & components) != components) continue;
    PlanStep step;
    step.kind = PlanStep::Kind::kLoadMaterialized;
    step.node = n.id;
    const double w = costs_.memory_cost_factor * costs_.bytes_per_element *
                     static_cast<double>(n.element_count);
    g.AddEdge(g.origin, n.id, w, step);
  }

  // Current-graph node, connected to the last leaf by the recent eventlist.
  const int32_t last_leaf = skel.leaves().back();
  const Timestamp last_boundary = skel.node(last_leaf).boundary_time;
  int32_t current_node = -1;
  if (ctx_.has_current && ctx_.allow_current) {
    current_node = g.AddNode();
    PlanStep load;
    load.kind = PlanStep::Kind::kLoadCurrent;
    const double w = costs_.memory_cost_factor * costs_.bytes_per_element *
                     static_cast<double>(ctx_.current_elements);
    g.AddEdge(g.origin, current_node, w, load);
  }

  // Resolve each distinct query time to a terminal attachment.
  std::map<Timestamp, TerminalSpec> terminals;  // Ordered: chains need sorting.
  const auto& leaves = skel.leaves();
  for (Timestamp t : times) {
    if (terminals.contains(t)) continue;
    TerminalSpec spec;
    spec.time = t;
    const Timestamp first_boundary = skel.node(leaves.front()).boundary_time;
    if (t <= first_boundary) {
      // The first leaf already answers any time at or before its boundary
      // (there are no indexed events at or before it other than its own).
      spec.kind = TerminalSpec::Kind::kExactNode;
      spec.node = leaves.front();
    } else if (t > last_boundary) {
      if (ctx_.recent_count == 0) {
        spec.kind = TerminalSpec::Kind::kExactNode;
        spec.node = last_leaf;
      } else {
        spec.kind = TerminalSpec::Kind::kOnRecent;
      }
    } else {
      const int i = skel.FindLeafInterval(t);
      const int32_t right = leaves[i + 1];
      if (skel.node(right).boundary_time == t) {
        spec.kind = TerminalSpec::Kind::kExactNode;
        spec.node = right;
      } else {
        spec.kind = TerminalSpec::Kind::kOnEventlist;
        spec.el_edge = skel.FindEventlistEdge(leaves[i], right);
        if (spec.el_edge < 0) {
          return Status::Internal("planner: missing eventlist edge");
        }
      }
    }
    terminals.emplace(t, spec);
  }

  // Create virtual nodes and chains. Group on-eventlist terminals by edge.
  std::map<int32_t, std::vector<Timestamp>> by_edge;
  std::vector<Timestamp> on_recent;
  std::vector<int32_t> terminal_aug_nodes;
  std::unordered_map<Timestamp, int32_t> aug_of_time;
  for (auto& [t, spec] : terminals) {
    switch (spec.kind) {
      case TerminalSpec::Kind::kExactNode:
        g.emit_times[spec.node].push_back(t);
        aug_of_time[t] = spec.node;
        break;
      case TerminalSpec::Kind::kOnEventlist:
        by_edge[spec.el_edge].push_back(t);
        break;
      case TerminalSpec::Kind::kOnRecent:
        on_recent.push_back(t);
        break;
    }
  }

  for (auto& [eid, ts] : by_edge) {
    const SkeletonEdge& e = skel.edge(eid);
    const Timestamp b_lo = skel.node(e.from).boundary_time;
    const Timestamp b_hi = skel.node(e.to).boundary_time;
    const double total_bytes = static_cast<double>(e.sizes.TotalBytes(components));
    const double span = std::max<double>(1.0, static_cast<double>(b_hi - b_lo));
    std::sort(ts.begin(), ts.end());
    int32_t prev_node = e.from;
    Timestamp prev_t = b_lo;
    for (Timestamp t : ts) {
      const int32_t v = g.AddNode();
      g.emit_times[v].push_back(t);
      aug_of_time[t] = v;
      PlanStep step;
      step.kind = PlanStep::Kind::kApplyEvents;
      step.edge = eid;
      step.lo = prev_t;
      step.hi = t;
      const double frac = static_cast<double>(t - prev_t) / span;
      g.AddEdge(prev_node, v, costs_.per_edge_overhead + frac * total_bytes, step);
      prev_node = v;
      prev_t = t;
    }
    PlanStep tail;
    tail.kind = PlanStep::Kind::kApplyEvents;
    tail.edge = eid;
    tail.lo = prev_t;
    tail.hi = b_hi;
    const double frac = static_cast<double>(b_hi - prev_t) / span;
    g.AddEdge(prev_node, e.to, costs_.per_edge_overhead + frac * total_bytes, tail);
  }

  if (!on_recent.empty() || current_node >= 0) {
    std::sort(on_recent.begin(), on_recent.end());
    const double total_bytes = costs_.memory_cost_factor * ctx_.avg_event_bytes *
                               static_cast<double>(ctx_.recent_count);
    const double span = std::max<double>(
        1.0, static_cast<double>(ctx_.recent_end - last_boundary));
    int32_t prev_node = last_leaf;
    Timestamp prev_t = last_boundary;
    for (Timestamp t : on_recent) {
      const int32_t v = g.AddNode();
      g.emit_times[v].push_back(t);
      aug_of_time[t] = v;
      PlanStep step;
      step.kind = PlanStep::Kind::kApplyRecentEvents;
      step.lo = prev_t;
      step.hi = t;
      const double frac =
          std::min(1.0, static_cast<double>(t - prev_t) / span);
      g.AddEdge(prev_node, v, frac * total_bytes, step);
      prev_node = v;
      prev_t = t;
    }
    if (current_node >= 0) {
      // Always link the recent chain (or, with no on-recent terminals, the
      // last leaf directly) to the current-graph node. Besides modeling the
      // "rightmost leaf is materialized" rule, this keeps every leaf
      // reachable through the current graph even when the skeleton's roots
      // are not attached yet (leaves cut by appends after — or without —
      // a Finalize); without it such plans had no path from the origin.
      PlanStep tail;
      tail.kind = PlanStep::Kind::kApplyRecentEvents;
      tail.lo = prev_t;
      tail.hi = kMaxTimestamp;
      const double frac = std::max(
          0.0, std::min(1.0, static_cast<double>(ctx_.recent_end - prev_t) / span));
      g.AddEdge(prev_node, current_node, frac * total_bytes, tail);
    }
  }

  for (const auto& [t, v] : aug_of_time) terminal_aug_nodes.push_back(v);
  std::sort(terminal_aug_nodes.begin(), terminal_aug_nodes.end());
  terminal_aug_nodes.erase(
      std::unique(terminal_aug_nodes.begin(), terminal_aug_nodes.end()),
      terminal_aug_nodes.end());

  return SolveSteiner(g, terminal_aug_nodes);
}

Result<Plan> Planner::PlanSinglepointCached(Timestamp t, unsigned components,
                                            SsspCache* cache) const {
  const Skeleton& skel = *ctx_.skeleton;
  if (skel.leaves().empty() || skel.super_root() < 0) {
    return Status::InvalidArgument("planner: index has no leaves yet");
  }
  const Timestamp last_boundary = skel.node(skel.leaves().back()).boundary_time;
  if (t > last_boundary) {
    // Depends on the recent eventlist / current graph, which change with
    // every append: not worth caching.
    return PlanSnapshots({t}, components);
  }

  // (Re)build the cached SSSP over the base skeleton when stale. The base
  // graph has no virtual nodes, so augmented ids equal skeleton ids.
  if (!cache->ValidFor(skel, components)) {
    AugGraph g;
    for (size_t i = 0; i < skel.node_count(); ++i) g.AddNode();
    g.origin = skel.super_root();
    for (size_t i = 0; i < skel.edge_count(); ++i) {
      const SkeletonEdge& e = skel.edge(static_cast<int32_t>(i));
      if (e.deleted) continue;
      PlanStep step;
      step.edge = e.id;
      step.forward = true;
      if (e.is_eventlist) {
        step.kind = PlanStep::Kind::kApplyEvents;
        step.lo = skel.node(e.from).boundary_time;
        step.hi = skel.node(e.to).boundary_time;
      } else {
        step.kind = PlanStep::Kind::kApplyDelta;
      }
      g.AddEdge(e.from, e.to,
                costs_.per_edge_overhead +
                    static_cast<double>(e.sizes.TotalBytes(components)),
                step);
    }
    for (size_t i = 0; ctx_.allow_materialized && i < skel.node_count(); ++i) {
      const SkeletonNode& n = skel.node(static_cast<int32_t>(i));
      if (!n.materialized || n.is_super_root) continue;
      if ((n.materialized_components & components) != components) continue;
      PlanStep step;
      step.kind = PlanStep::Kind::kLoadMaterialized;
      step.node = n.id;
      g.AddEdge(g.origin, n.id,
                costs_.memory_cost_factor * costs_.bytes_per_element *
                    static_cast<double>(n.element_count),
                step);
    }
    // The base graph's edges map 1:1 onto plan steps; Dijkstra's parent
    // edges reference the *augmented* edge ids, which we translate back via
    // the stored steps. Keep the aug edge list alongside.
    std::vector<double> dist;
    std::vector<int32_t> parent;
    g.Dijkstra(g.origin, &dist, &parent);
    cache->skeleton_version = skel.version();
    cache->components = components;
    cache->dist = std::move(dist);
    // Translate parent aug-edge ids to (kind, skeleton ids) by re-walking;
    // store the aug edge index and rebuild steps below from the aug graph.
    // To keep the cache self-contained we instead store, per node, the
    // skeleton edge id (>= 0) or ~node for a materialized load (< -1).
    cache->parent_edge.assign(skel.node_count(), -1);
    for (size_t v = 0; v < skel.node_count(); ++v) {
      const int32_t aug_eid = parent[v];
      if (aug_eid < 0) continue;
      const auto& e = g.edges[aug_eid];
      if (e.step.kind == PlanStep::Kind::kLoadMaterialized) {
        cache->parent_edge[v] = -2 - e.step.node;  // Encoded materialized load.
      } else {
        cache->parent_edge[v] = e.step.edge;
      }
    }
  }

  // Resolve the terminal: exact leaf, or one side of a leaf-eventlist.
  const auto& leaves = skel.leaves();
  const Timestamp first_boundary = skel.node(leaves.front()).boundary_time;
  int32_t target = -1;
  int32_t el_edge = -1;  // Partial eventlist to apply after reaching target.
  bool forward = true;
  Timestamp lo = 0, hi = 0;
  double partial_weight = 0.0;
  if (t <= first_boundary) {
    target = leaves.front();
  } else {
    const int i = skel.FindLeafInterval(t);
    const int32_t left = leaves[i], right = leaves[i + 1];
    if (skel.node(right).boundary_time == t) {
      target = right;
    } else {
      el_edge = skel.FindEventlistEdge(left, right);
      if (el_edge < 0) return Status::Internal("planner: missing eventlist edge");
      const SkeletonEdge& e = skel.edge(el_edge);
      const Timestamp b_lo = skel.node(left).boundary_time;
      const Timestamp b_hi = skel.node(right).boundary_time;
      const double total = static_cast<double>(e.sizes.TotalBytes(components));
      const double span = std::max<double>(1.0, static_cast<double>(b_hi - b_lo));
      const double w_left = total * static_cast<double>(t - b_lo) / span;
      const double w_right = total * static_cast<double>(b_hi - t) / span;
      if (cache->dist[left] + w_left <= cache->dist[right] + w_right) {
        target = left;
        forward = true;
        lo = b_lo;
        hi = t;
        partial_weight = costs_.per_edge_overhead + w_left;
      } else {
        target = right;
        forward = false;
        lo = t;
        hi = b_hi;
        partial_weight = costs_.per_edge_overhead + w_right;
      }
    }
  }
  if (cache->dist[target] == kInf) {
    // The target is not reachable through persisted skeleton edges alone —
    // e.g. it lives in a leaf cut by appends after the last Finalize, whose
    // root is not yet attached to the super-root. The general planner also
    // knows the current-graph and recent-eventlist edges; use it.
    return PlanSnapshots({t}, components);
  }

  // Unfold the cached parent chain into a linear plan.
  std::vector<PlanStep> steps;
  for (int32_t v = target; v != skel.super_root();) {
    const int32_t enc = cache->parent_edge[v];
    if (enc == -1) return Status::Internal("planner: broken cached path");
    PlanStep step;
    if (enc <= -2) {
      step.kind = PlanStep::Kind::kLoadMaterialized;
      step.node = -2 - enc;
      steps.push_back(step);
      break;  // Materialized loads always hang off the super-root.
    }
    const SkeletonEdge& e = skel.edge(enc);
    step.edge = e.id;
    if (e.is_eventlist) {
      step.kind = PlanStep::Kind::kApplyEvents;
      step.lo = skel.node(e.from).boundary_time;
      step.hi = skel.node(e.to).boundary_time;
    } else {
      step.kind = PlanStep::Kind::kApplyDelta;
    }
    step.forward = (e.to == v);  // Stored direction is from -> to.
    steps.push_back(step);
    v = (e.to == v) ? e.from : e.to;
  }
  std::reverse(steps.begin(), steps.end());

  Plan plan;
  plan.root = std::make_unique<PlanNode>();
  PlanNode* cursor = plan.root.get();
  plan.estimated_cost = cache->dist[target] + partial_weight;
  for (const auto& step : steps) {
    auto child = std::make_unique<PlanNode>();
    PlanNode* next = child.get();
    cursor->children.emplace_back(step, std::move(child));
    cursor = next;
  }
  if (el_edge >= 0) {
    PlanStep partial;
    partial.kind = PlanStep::Kind::kApplyEvents;
    partial.edge = el_edge;
    partial.forward = forward;
    partial.lo = lo;
    partial.hi = hi;
    auto child = std::make_unique<PlanNode>();
    PlanNode* next = child.get();
    cursor->children.emplace_back(partial, std::move(child));
    cursor = next;
  }
  cursor->emit_times.push_back(t);
  return plan;
}

Result<Plan> Planner::PlanNodes(const std::vector<int32_t>& node_ids,
                                unsigned components) const {
  const Skeleton& skel = *ctx_.skeleton;
  if (skel.super_root() < 0) {
    return Status::InvalidArgument("planner: index has no super-root yet");
  }
  AugGraph g;
  for (size_t i = 0; i < skel.node_count(); ++i) g.AddNode();
  g.origin = skel.super_root();
  for (size_t i = 0; i < skel.edge_count(); ++i) {
    const SkeletonEdge& e = skel.edge(static_cast<int32_t>(i));
    if (e.deleted) continue;
    PlanStep step;
    step.edge = e.id;
    step.forward = true;
    if (e.is_eventlist) {
      step.kind = PlanStep::Kind::kApplyEvents;
      step.lo = skel.node(e.from).boundary_time;
      step.hi = skel.node(e.to).boundary_time;
    } else {
      step.kind = PlanStep::Kind::kApplyDelta;
    }
    const double w =
        costs_.per_edge_overhead + static_cast<double>(e.sizes.TotalBytes(components));
    g.AddEdge(e.from, e.to, w, step);
  }
  for (size_t i = 0; ctx_.allow_materialized && i < skel.node_count(); ++i) {
    const SkeletonNode& n = skel.node(static_cast<int32_t>(i));
    if (!n.materialized || n.is_super_root) continue;
    if ((n.materialized_components & components) != components) continue;
    PlanStep step;
    step.kind = PlanStep::Kind::kLoadMaterialized;
    step.node = n.id;
    const double w = costs_.memory_cost_factor * costs_.bytes_per_element *
                     static_cast<double>(n.element_count);
    g.AddEdge(g.origin, n.id, w, step);
  }
  std::vector<int32_t> terminal_nodes;
  for (int32_t id : node_ids) {
    if (id < 0 || static_cast<size_t>(id) >= skel.node_count()) {
      return Status::InvalidArgument("planner: bad node id");
    }
    g.emit_node[id] = id;
    terminal_nodes.push_back(id);
  }
  std::sort(terminal_nodes.begin(), terminal_nodes.end());
  terminal_nodes.erase(std::unique(terminal_nodes.begin(), terminal_nodes.end()),
                       terminal_nodes.end());
  return SolveSteiner(g, terminal_nodes);
}

Result<Plan> Planner::SolveSteiner(AugGraph& g,
                                   const std::vector<int32_t>& terminals) const {
  // Single terminal: plain Dijkstra from the origin (Section 4.3).
  std::vector<int32_t> chosen;
  if (terminals.size() <= 1) {
    std::vector<double> dist;
    std::vector<int32_t> parent;
    g.Dijkstra(g.origin, &dist, &parent);
    for (int32_t t : terminals) {
      if (dist[t] == kInf) return Status::Internal("planner: terminal unreachable");
      for (int32_t v = t; v != g.origin;) {
        const int32_t eid = parent[v];
        chosen.push_back(eid);
        const auto& e = g.edges[eid];
        v = (e.u == v) ? e.v : e.u;
      }
    }
  } else {
    // Metric-closure MST 2-approximation (Section 4.4).
    std::vector<int32_t> T;
    T.push_back(g.origin);
    for (int32_t t : terminals) {
      if (t != g.origin) T.push_back(t);
    }
    const size_t K = T.size();
    std::vector<std::vector<double>> dist(K);
    std::vector<std::vector<int32_t>> parent(K);
    for (size_t i = 0; i < K; ++i) g.Dijkstra(T[i], &dist[i], &parent[i]);

    // Prim over the K terminals.
    std::vector<bool> in_tree(K, false);
    std::vector<double> best(K, kInf);
    std::vector<size_t> best_from(K, 0);
    best[0] = 0.0;
    std::unordered_set<int32_t> chosen_set;
    for (size_t iter = 0; iter < K; ++iter) {
      size_t u = K;
      for (size_t i = 0; i < K; ++i) {
        if (!in_tree[i] && (u == K || best[i] < best[u])) u = i;
      }
      if (u == K || best[u] == kInf) {
        return Status::Internal("planner: disconnected terminals");
      }
      in_tree[u] = true;
      if (iter > 0) {
        // Unfold the path from T[best_from[u]] to T[u].
        const size_t s = best_from[u];
        for (int32_t v = T[u]; v != T[s];) {
          const int32_t eid = parent[s][v];
          chosen_set.insert(eid);
          const auto& e = g.edges[eid];
          v = (e.u == v) ? e.v : e.u;
        }
      }
      for (size_t i = 0; i < K; ++i) {
        if (!in_tree[i] && dist[u][T[i]] < best[i]) {
          best[i] = dist[u][T[i]];
          best_from[i] = u;
        }
      }
    }
    chosen.assign(chosen_set.begin(), chosen_set.end());
  }

  Plan plan;
  plan.root = BuildPlanTree(g, chosen, &plan.estimated_cost);
  return plan;
}

}  // namespace hgdb
