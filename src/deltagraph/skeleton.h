#ifndef HISTGRAPH_DELTAGRAPH_SKELETON_H_
#define HISTGRAPH_DELTAGRAPH_SKELETON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "temporal/event.h"

namespace hgdb {

/// Per-component statistics of a stored delta or eventlist: serialized bytes
/// and element/event counts, indexed by component (struct, nodeattr,
/// edgeattr, transient). Bytes are the skeleton edge weights the planner uses
/// ("we approximate this cost by using the size of the delta retrieved").
struct ComponentSizes {
  uint64_t bytes[kNumComponents] = {0, 0, 0, 0};
  uint64_t elements[kNumComponents] = {0, 0, 0, 0};

  uint64_t TotalBytes(unsigned components) const {
    uint64_t total = 0;
    for (int c = 0; c < kNumComponents; ++c) {
      if (components & (1u << c)) total += bytes[c];
    }
    return total;
  }
  uint64_t TotalElements(unsigned components) const {
    uint64_t total = 0;
    for (int c = 0; c < kNumComponents; ++c) {
      if (components & (1u << c)) total += elements[c];
    }
    return total;
  }
};

/// A node of the DeltaGraph skeleton. Leaves correspond to (implicit)
/// historical snapshots at their boundary time; interior nodes are graphs
/// produced by a differential function; the super-root holds the empty graph.
struct SkeletonNode {
  int32_t id = -1;
  int32_t level = 1;          ///< 1 = leaves; super-root has the highest level.
  bool is_leaf = false;
  bool is_super_root = false;
  int32_t hierarchy = 0;      ///< Interior nodes: which hierarchy built them.
  Timestamp boundary_time = 0;  ///< Leaves: snapshot time (state after all
                                ///< events with time <= boundary_time).
  bool materialized = false;  ///< Kept in memory; planner treats as free start.
  unsigned materialized_components = 0;  ///< Components the materialized copy has.
  uint64_t element_count = 0;  ///< |S| for stats and dependent-graph decisions.
};

/// An edge of the skeleton. Delta edges point parent -> child and store
/// Delta(child, parent): applying the delta *forward* to the parent's graph
/// yields the child's. Eventlist edges connect adjacent leaves
/// (left -> right); applying the eventlist forward to the left leaf yields
/// the right leaf. Both kinds are exactly invertible, so the planner may
/// traverse any edge in either direction at equal cost.
struct SkeletonEdge {
  int32_t id = -1;
  int32_t from = -1;  ///< Parent (delta) or left leaf (eventlist).
  int32_t to = -1;    ///< Child (delta) or right leaf (eventlist).
  bool is_eventlist = false;
  DeltaId delta_id = 0;  ///< Key of the stored delta/eventlist blobs.
  ComponentSizes sizes;
  bool deleted = false;  ///< Soft-deleted (index evolution keeps ids stable).
};

/// \brief The DeltaGraph skeleton: the structure of the index without the
/// delta payloads (Section 3.2.2).
///
/// "The structure of the DeltaGraph itself ... is maintained as a weighted
/// graph in memory (it contains statistics about the deltas and eventlists,
/// but not the actual data). The skeleton is used during query planning."
class Skeleton {
 public:
  Skeleton() = default;

  // -- Construction ----------------------------------------------------------
  int32_t AddNode(SkeletonNode node);  ///< Assigns and returns the node id.
  int32_t AddEdge(SkeletonEdge edge);  ///< Assigns and returns the edge id.
  void RemoveEdge(int32_t edge_id);    ///< Soft delete.

  void SetSuperRoot(int32_t node_id) { super_root_ = node_id; }
  int32_t super_root() const { return super_root_; }

  void SetMaterialized(int32_t node_id, bool on) {
    ++version_;
    nodes_[node_id].materialized = on;
  }

  // -- Access ------------------------------------------------------------ ---
  const SkeletonNode& node(int32_t id) const { return nodes_[id]; }
  SkeletonNode* mutable_node(int32_t id) {
    ++version_;
    return &nodes_[id];
  }
  const SkeletonEdge& edge(int32_t id) const { return edges_[id]; }
  SkeletonEdge* mutable_edge(int32_t id) {
    ++version_;
    return &edges_[id];
  }

  /// Monotone change counter: bumped by any mutation (new nodes/edges, soft
  /// deletes, materialization flags). Planner caches key on it so cached
  /// shortest-path trees are dropped exactly when the skeleton changes.
  uint64_t version() const { return version_; }
  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

  /// Ids of live (non-deleted) edges incident to `node_id` (both directions;
  /// the index is undirected for traversal purposes).
  const std::vector<int32_t>& incident_edges(int32_t node_id) const {
    return incident_[node_id];
  }

  /// Leaves in chronological order.
  const std::vector<int32_t>& leaves() const { return leaves_; }

  /// Finds the position of the leaf-eventlist interval containing time `t`:
  /// returns the index `i` into leaves() such that
  /// boundary(leaves[i]) < t <= boundary(leaves[i+1]); -1 when t <= first
  /// boundary (the first leaf itself answers the query exactly); leaves
  /// count-1 when t is beyond the last boundary.
  int FindLeafInterval(Timestamp t) const;

  /// The eventlist edge between adjacent leaves `left_leaf` and `right_leaf`
  /// (by node id), or -1.
  int32_t FindEventlistEdge(int32_t left_leaf, int32_t right_leaf) const;

  /// All live eventlist edges in chronological order.
  std::vector<int32_t> EventlistEdgesInOrder() const;

  /// Sum of stored bytes across live edges (index disk footprint, modulo
  /// store-level compression).
  uint64_t TotalBytes(unsigned components = kCompAllWithTransient) const;

  /// Serialization for persistence in the key-value store.
  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(const Slice& blob, Skeleton* out);

 private:
  std::vector<SkeletonNode> nodes_;
  std::vector<SkeletonEdge> edges_;
  std::vector<std::vector<int32_t>> incident_;
  std::vector<int32_t> leaves_;
  int32_t super_root_ = -1;
  uint64_t version_ = 0;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_SKELETON_H_
