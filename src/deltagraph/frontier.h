#ifndef HISTGRAPH_DELTAGRAPH_FRONTIER_H_
#define HISTGRAPH_DELTAGRAPH_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "deltagraph/skeleton.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// \brief The epoch-based visibility seam between the single ingest writer
/// and concurrent readers.
///
/// Every mutation of a DeltaGraph lands under a monotonically increasing
/// epoch; after each batch of mutations the writer publishes an immutable
/// FrontierState through one `shared_ptr` swap (release store). A query pins
/// the frontier once (acquire load) and resolves *everything* — skeleton
/// edges, the current COW snapshot, materialized graphs, the recent event
/// tail — against that pinned state, so in-flight queries are immune to
/// concurrent appends, leaf cuts, finalizes, and materialization changes.
///
/// What a pinned reader may never observe:
///  - a torn batch (events of one Append/AppendAll call split across epochs),
///  - a skeleton edge whose payload is not yet durable in the KV store
///    (payloads are written before the edge is added, and edges/payloads are
///    never deleted, so pinned fetches always succeed),
///  - recent-tail slots beyond the pinned count (the slot array is
///    append-once; publication orders the writes before the swap).

/// Append-once buffer backing the recent (un-cut) event tail. The writer
/// fills slots left to right and never moves or reallocates them; a
/// published RecentView exposes a prefix. When the buffer fills, the writer
/// copies the live prefix into a larger buffer and publishes that instead —
/// superseded buffers stay alive for as long as some pinned frontier
/// references them (the same discipline as chunk sharing in common/cow.h,
/// at buffer granularity).
class RecentTail {
 public:
  explicit RecentTail(size_t capacity) : slots_(capacity) {}

  size_t capacity() const { return slots_.size(); }
  const Event* data() const { return slots_.data(); }
  /// Writer-side slot access; slot `i` must not be covered by any published
  /// RecentView yet.
  Event* slot(size_t i) { return &slots_[i]; }

 private:
  std::vector<Event> slots_;
};

/// An immutable view of the first `count` slots of a RecentTail.
struct RecentView {
  std::shared_ptr<const RecentTail> tail;
  size_t count = 0;

  std::span<const Event> events() const {
    return tail == nullptr ? std::span<const Event>()
                           : std::span<const Event>(tail->data(), count);
  }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  /// Timestamp of the newest event in view (EventList::EndTime semantics:
  /// kMaxTimestamp when empty).
  Timestamp EndTime() const {
    return count == 0 ? kMaxTimestamp : tail->data()[count - 1].time;
  }
};

/// One published, immutable frontier. Everything reachable from here is
/// frozen: the skeleton is a private copy (refreshed only when its version
/// counter moved — leaf cuts, finalize, materialization flags), `current` is
/// an O(1) COW copy sharing chunks with the writer's working graph, and the
/// materialized map is copied on materialization changes only.
struct FrontierState {
  /// Monotone publication counter (0 = empty pre-publication state).
  uint64_t epoch = 0;

  std::shared_ptr<const Skeleton> skeleton;
  /// COW copy of the current graph; null when the index does not maintain
  /// one (options.maintain_current = false).
  std::shared_ptr<const Snapshot> current;
  /// Materialized node graphs as of this frontier (never null; may be empty).
  std::shared_ptr<const std::map<int32_t, std::shared_ptr<Snapshot>>>
      materialized;
  /// Events newer than the last cut leaf, as of this frontier.
  RecentView recent;

  Timestamp min_time = kMaxTimestamp;
  Timestamp max_time = kMinTimestamp;
  /// Events applied so far — the oracle prefix: a reader pinned here sees
  /// exactly the replay of the first `event_count` log events.
  size_t event_count = 0;
  size_t insert_events = 0;
  size_t delete_events = 0;
  double initial_elements = 0;

  const Snapshot* materialized_snapshot(int32_t node_id) const {
    if (materialized == nullptr) return nullptr;
    auto it = materialized->find(node_id);
    return it == materialized->end() ? nullptr : it->second.get();
  }
};

using FrontierPtr = std::shared_ptr<const FrontierState>;

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_FRONTIER_H_
