#ifndef HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_
#define HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_

#include <string>

#include "common/status.h"
#include "common/types.h"
#include "deltagraph/skeleton.h"
#include "graph/delta.h"
#include "kvstore/kv_store.h"
#include "temporal/event_list.h"

namespace hgdb {

/// \brief Columnar persistence of deltas and leaf-eventlists in a KVStore.
///
/// Each delta/eventlist is stored as up to four values under keys
/// `d/<delta_id>/<component>` — the paper's
/// `<partition id, delta id, c>` keys with the partition made implicit by
/// using one store per partition (one Kyoto Cabinet instance per machine in
/// the paper's deployment). Empty components are not stored; the skeleton's
/// per-edge ComponentSizes record which components exist and how large they
/// are, so queries fetch exactly what they need.
class DeltaStore {
 public:
  explicit DeltaStore(KVStore* store) : store_(store) {}

  /// Allocates a fresh delta id.
  DeltaId AllocateId() { return next_id_++; }

  /// Persists all non-empty components of `delta`; fills `sizes` with the
  /// serialized byte/element counts per component.
  Status PutDelta(DeltaId id, const Delta& delta, ComponentSizes* sizes);

  /// Loads the requested components into `out` (missing components of the
  /// request that were never stored are treated as empty).
  Status GetDelta(DeltaId id, unsigned components, const ComponentSizes& sizes,
                  Delta* out) const;

  /// Persists all non-empty components of `events` (struct, nodeattr,
  /// edgeattr, transient).
  Status PutEventList(DeltaId id, const EventList& events, ComponentSizes* sizes);

  /// Loads and merges the requested components, in original order.
  Status GetEventList(DeltaId id, unsigned components, const ComponentSizes& sizes,
                      EventList* out) const;

  /// Deletes all components of a delta (used when index evolution replaces
  /// super-root attachments).
  Status DeleteDelta(DeltaId id);

  /// Skeleton + metadata persistence.
  Status PutSkeleton(const Skeleton& skeleton);
  Status GetSkeleton(Skeleton* skeleton) const;
  Status PutMeta(const std::string& key, const std::string& value);
  Status GetMeta(const std::string& key, std::string* value) const;

  KVStore* store() const { return store_; }

  /// Restores the id allocator after reopening an index.
  void SetNextId(DeltaId next) { next_id_ = next; }
  DeltaId next_id() const { return next_id_; }

 private:
  static std::string Key(DeltaId id, int component_index);

  KVStore* store_;
  DeltaId next_id_ = 1;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_
