#ifndef HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_
#define HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_

#include <atomic>
#include <cassert>
#include <list>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "deltagraph/skeleton.h"
#include "graph/delta.h"
#include "kvstore/kv_store.h"
#include "obs/metrics.h"
#include "temporal/event_list.h"

namespace hgdb {

/// \brief Per-payload fetch-frequency counters, indexed by delta id — the
/// access-frequency signal adaptive materialization (ROADMAP item 3) scores
/// candidates with. One relaxed atomic add per recorded fetch (LRU hits
/// count too: a hit is still traffic on that skeleton edge), gated on
/// `obs::MetricsEnabled()`.
///
/// Storage is a grow-only flat array of atomics. Growth (EnsureSize) happens
/// on the build path (AllocateId/SetNextId) under a mutex; retired arrays are
/// kept alive so a concurrent Record through a stale pointer stays safe.
/// Increments racing a grow can be dropped — the index contract already
/// forbids mutating an index mid-retrieval, and frequency estimates tolerate
/// off-by-a-few.
class FetchFrequency {
 public:
  void Record(DeltaId id) {
    if (!always_on_.load(std::memory_order_relaxed) && !obs::MetricsEnabled()) {
      return;
    }
    const size_t n = size_.load(std::memory_order_acquire);
    if (id >= n) return;
    std::atomic<uint32_t>* slots = slots_.load(std::memory_order_acquire);
    slots[id].fetch_add(1, std::memory_order_relaxed);
  }

  /// Records counts even when the metrics subsystem is off. The adaptive
  /// materialization advisor steers on these counters, so its signal must
  /// not depend on HISTGRAPH_METRICS being set.
  void SetAlwaysOn(bool on) { always_on_.store(on, std::memory_order_relaxed); }

  /// Grows to at least `n` slots (geometric, so repeated AllocateId is O(1)
  /// amortized). Existing counts carry over.
  void EnsureSize(size_t n);

  uint32_t Count(DeltaId id) const;
  size_t size() const { return size_.load(std::memory_order_acquire); }
  /// Zeroes every counter. Serialized against EnsureSize (both take
  /// grow_mu_) so a reset cannot race a grow's count carry-over and leave
  /// stale counts alive in the new arena.
  void Reset();
  /// Halves every counter (the advisor's per-tick exponential decay, so a
  /// past hot streak cannot pin a node forever once traffic shifts).
  void Decay();

  /// The `k` hottest (id, count) pairs with nonzero counts, as a JSON array
  /// sorted by count descending, ties broken by ascending id so exports and
  /// the advisor's candidate ranking are deterministic across runs.
  std::string TopKJSON(size_t k) const;

 private:
  mutable std::mutex grow_mu_;
  std::atomic<bool> always_on_{false};
  std::atomic<std::atomic<uint32_t>*> slots_{nullptr};
  std::atomic<size_t> size_{0};
  std::vector<std::unique_ptr<std::atomic<uint32_t>[]>> arenas_;
};

/// \brief Columnar persistence of deltas and leaf-eventlists in a KVStore.
///
/// Each delta/eventlist is stored as up to four values under keys
/// `d/<delta_id>/<component>` — the paper's
/// `<partition id, delta id, c>` keys with the partition made implicit by
/// using one store per partition (one Kyoto Cabinet instance per machine in
/// the paper's deployment). Empty components are not stored; the skeleton's
/// per-edge ComponentSizes record which components exist and how large they
/// are, so queries fetch exactly what they need.
///
/// A small LRU of *decoded* deltas/eventlists sits above the KVStore, keyed
/// by (delta id, requested components). SnapshotPlanVisitor already caches
/// decodes within one plan; this cache carries them across consecutive plans
/// that traverse the same skeleton edges (repeated singlepoint queries, the
/// paper's Section 6 access pattern), skipping the fetch, the decompression,
/// and the decode. Entries are shared_ptr-owned so a hit never copies.
class DeltaStore {
 public:
  explicit DeltaStore(KVStore* store) : store_(store) {}

  /// Allocates a fresh delta id.
  DeltaId AllocateId() {
    const DeltaId id = next_id_++;
    fetch_freq_.EnsureSize(next_id_);
    return id;
  }

  /// Persists all non-empty components of `delta`; fills `sizes` with the
  /// serialized byte/element counts per component.
  Status PutDelta(DeltaId id, const Delta& delta, ComponentSizes* sizes);

  /// Loads the requested components into `out` (missing components of the
  /// request that were never stored are treated as empty).
  Status GetDelta(DeltaId id, unsigned components, const ComponentSizes& sizes,
                  Delta* out) const;

  /// What one shared read cost, for trace attribution (filled when the
  /// caller passes a non-null out-param; no cost otherwise).
  struct ReadStats {
    bool cache_hit = false;  ///< Served from the decoded LRU.
    uint32_t kv_keys = 0;    ///< Keys fetched from the KVStore.
    uint64_t bytes = 0;      ///< Blob bytes fetched.
  };

  /// Like GetDelta but returns the cache-resident decoded delta without
  /// copying (the retrieval hot path).
  Result<std::shared_ptr<const Delta>> GetDeltaShared(DeltaId id, unsigned components,
                                                      const ComponentSizes& sizes,
                                                      ReadStats* rs = nullptr) const;

  /// Persists all non-empty components of `events` (struct, nodeattr,
  /// edgeattr, transient).
  Status PutEventList(DeltaId id, const EventList& events, ComponentSizes* sizes);

  /// Loads and merges the requested components, in original order.
  Status GetEventList(DeltaId id, unsigned components, const ComponentSizes& sizes,
                      EventList* out) const;

  /// Like GetEventList but returns the cache-resident decoded eventlist.
  Result<std::shared_ptr<const EventList>> GetEventListShared(
      DeltaId id, unsigned components, const ComponentSizes& sizes,
      ReadStats* rs = nullptr) const;

  /// One delta / eventlist read inside a cross-delta batch (GetBatch).
  struct BatchedRead {
    // Inputs.
    DeltaId id = 0;
    unsigned components = 0;
    ComponentSizes sizes;
    bool is_eventlist = false;
    // Outputs: `status` plus exactly one of the two objects (by is_eventlist).
    Status status;
    std::shared_ptr<const Delta> delta;
    std::shared_ptr<const EventList> events;
    bool lru_hit = false;  ///< Served from the decoded LRU, no fetch needed.
  };

  /// Batched read path: resolves every entry of `batch`, serving decoded-LRU
  /// hits directly and gathering the KV keys of *all* misses into ONE
  /// KVStore::MultiGet — one storage round-trip per batch, not per delta.
  /// This is what an I/O shard calls after draining its queued prefetches
  /// (src/exec/fetch_cache.h). Per-entry failures land in that entry's
  /// `status`; other entries still complete.
  void GetBatch(std::vector<BatchedRead>* batch) const;

  /// Raw bytes of one batch miss, fetched but not yet decoded: the handoff
  /// unit between FetchBatch (I/O thread) and DecodeFetched (compute pool).
  struct FetchedRead {
    size_t entry = 0;  ///< Index of the owning entry in the batch.
    Status status;     ///< Fetch status; decode status lands on the entry.
    std::vector<std::pair<ComponentMask, std::string>> blobs;
  };

  /// The I/O half of GetBatch: decoded-LRU probes plus ONE MultiGet for all
  /// misses. LRU hits are resolved directly on their batch entries; each miss
  /// yields one FetchedRead of raw component blobs. Splitting here lets the
  /// fetch cache run the CPU-bound decode on the compute TaskPool instead of
  /// serializing it on a seek-bound I/O shard thread.
  void FetchBatch(std::vector<BatchedRead>* batch,
                  std::vector<FetchedRead>* fetched) const;

  /// The decode half: decodes one fetched miss into its batch entry and
  /// inserts the result into the decoded LRU. Thread-safe; distinct entries
  /// may decode concurrently.
  void DecodeFetched(BatchedRead* read, FetchedRead* fetched) const;

  /// Cross-delta batching stats: number of GetBatch MultiGet round-trips and
  /// the total reads they served (avg batch width = reads / round-trips).
  size_t batched_multigets() const { return batched_multigets_.load(std::memory_order_relaxed); }
  size_t batched_reads() const { return batched_reads_.load(std::memory_order_relaxed); }

  /// Deletes all components of a delta (used when index evolution replaces
  /// super-root attachments).
  Status DeleteDelta(DeltaId id);

  /// Skeleton + metadata persistence.
  Status PutSkeleton(const Skeleton& skeleton);
  Status GetSkeleton(Skeleton* skeleton) const;
  Status PutMeta(const std::string& key, const std::string& value);
  Status GetMeta(const std::string& key, std::string* value) const;

  KVStore* store() const { return store_; }

  /// Restores the id allocator after reopening an index.
  void SetNextId(DeltaId next) {
    next_id_ = next;
    fetch_freq_.EnsureSize(next);
  }
  DeltaId next_id() const { return next_id_; }

  /// Per-delta fetch-frequency counters (see FetchFrequency).
  FetchFrequency& fetch_frequency() const { return fetch_freq_; }

  /// Decoded-object cache sizing/introspection (0 capacity disables).
  void SetDecodedCacheCapacity(size_t entries);
  size_t decoded_cache_hits() const;
  size_t decoded_cache_misses() const;

  /// Decoded-cache key: (id, components, is_delta) packed into 64 bits.
  /// Components fit in 4 bits; ids get the remaining 59 bits, which at one
  /// delta per leaf-cut outlasts any realizable index (debug-asserted so an
  /// id overflow can never silently alias two cache slots).
  static uint64_t CacheKey(DeltaId id, unsigned components, bool is_delta) {
    assert((id >> 59) == 0 && "DeltaId exceeds 2^59: decoded-cache key overflow");
    return (id << 5) | (static_cast<uint64_t>(components & 0xF) << 1) |
           (is_delta ? 1 : 0);
  }

 private:
  static std::string Key(DeltaId id, int component_index);

  // -- Decoded-object cache --------------------------------------------------
  //
  // Approximate LRU with a second-chance (clock) recency bit instead of
  // splice-on-hit, so concurrent plan execution can serve hits under a
  // *shared* lock: a hit only reads the list node and flips an atomic flag.
  // Eviction (under the exclusive lock) scans from the cold end, giving
  // flagged entries one more trip through the list. The single-thread fast
  // path is an uncontended shared-lock acquire plus one hash probe.
  struct CacheEntry {
    CacheEntry(uint64_t k, std::shared_ptr<const Delta> d,
               std::shared_ptr<const EventList> e)
        : key(k), delta(std::move(d)), events(std::move(e)) {}
    uint64_t key;
    std::shared_ptr<const Delta> delta;          // One of the two is set.
    std::shared_ptr<const EventList> events;
    mutable std::atomic<bool> hot{false};        // Set on hit; cleared by the clock.
  };
  std::shared_ptr<const Delta> CacheLookupDelta(uint64_t key) const;
  std::shared_ptr<const EventList> CacheLookupEvents(uint64_t key) const;
  void CacheInsert(uint64_t key, std::shared_ptr<const Delta> delta,
                   std::shared_ptr<const EventList> events) const;
  /// Must be called with cache_mu_ held exclusively.
  void EvictOverCapacityLocked() const;
  void CacheInvalidate(DeltaId id);

  KVStore* store_;
  DeltaId next_id_ = 1;

  mutable std::shared_mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_;  // Front = most recently inserted.
  mutable std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  size_t cache_capacity_ = 64;
  mutable std::atomic<size_t> cache_hits_{0};
  mutable std::atomic<size_t> cache_misses_{0};
  mutable std::atomic<size_t> batched_multigets_{0};
  mutable std::atomic<size_t> batched_reads_{0};
  mutable FetchFrequency fetch_freq_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_DELTA_STORE_H_
