#ifndef HISTGRAPH_DELTAGRAPH_AUX_HOOK_H_
#define HISTGRAPH_DELTAGRAPH_AUX_HOOK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// Opaque per-query state of an auxiliary index (e.g. the reconstructed
/// auxiliary snapshot). Created by AuxIndexHook::NewState and threaded through
/// plan execution.
class AuxState {
 public:
  virtual ~AuxState() = default;
};

/// \brief Extensibility hook wiring an auxiliary index into the DeltaGraph
/// (Section 4.7).
///
/// The DeltaGraph calls the Build* methods while constructing or updating the
/// index so the auxiliary information is "automatically indexed along with
/// the original graph data": the hook maintains its own auxiliary snapshots
/// mirroring the skeleton's nodes and persists auxiliary deltas keyed by the
/// skeleton's edge ids. At query time the planner's chosen path is replayed
/// through Apply* to reconstruct the auxiliary snapshot as of any time point.
class AuxIndexHook {
 public:
  virtual ~AuxIndexHook() = default;

  virtual const std::string& name() const = 0;

  // -- Build-time callbacks ---------------------------------------------------
  /// Called when the index is seeded with a non-empty initial graph G0
  /// (DeltaGraph::SetInitialSnapshot). The hook must rebuild its auxiliary
  /// state from scratch. The default refuses, so hooks that do not support
  /// bootstrapping fail loudly instead of silently indexing garbage.
  virtual Status BuildOnInitialSnapshot(const Snapshot& g0) {
    (void)g0;
    return Status::NotSupported(name() +
                                ": auxiliary index cannot bootstrap from an "
                                "initial snapshot");
  }

  /// Called for every event, in chronological order, after the event has been
  /// applied to `graph_after` (the current graph). The hook derives its
  /// auxiliary event (CreateAuxEvent) and updates its running aux snapshot.
  virtual Status BuildOnEvent(const Event& e, const Snapshot& graph_after) = 0;

  /// Called when a leaf is cut: the hook must snapshot its running auxiliary
  /// state as the leaf's aux snapshot and persist the auxiliary eventlist for
  /// `eventlist_edge_id` (the edge from `prev_leaf_id` to `leaf_id`; -1 for
  /// the first leaf).
  virtual Status BuildOnLeaf(int32_t leaf_id, int32_t prev_leaf_id,
                             int32_t eventlist_edge_id) = 0;

  /// Called when an interior node is formed from `children`. The hook applies
  /// its differential function (AuxDF) over the children's aux snapshots and
  /// persists one aux delta per `delta_edge_ids[i]` (parent -> children[i]).
  virtual Status BuildOnParent(int32_t parent_id,
                               const std::vector<int32_t>& children,
                               const std::vector<int32_t>& delta_edge_ids) = 0;

  /// Called when `node_id` is attached to the super-root by `edge_id`; the
  /// hook persists the full aux snapshot of that node as the edge's delta.
  virtual Status BuildOnSuperRootEdge(int32_t edge_id, int32_t node_id) = 0;

  // -- Query-time callbacks ---------------------------------------------------
  /// Fresh (empty, super-root) auxiliary state.
  virtual std::unique_ptr<AuxState> NewState() const = 0;

  /// Applies the aux delta stored for skeleton edge `edge_id`.
  virtual Status ApplyDeltaEdge(AuxState* state, int32_t edge_id, bool forward) const = 0;

  /// Applies the aux events stored for eventlist edge `edge_id` restricted to
  /// times in (lo, hi].
  virtual Status ApplyEventRange(AuxState* state, int32_t edge_id, bool forward,
                                 Timestamp lo, Timestamp hi) const = 0;

  /// Applies the hook's buffered *recent* aux events (those not yet folded
  /// into the index) restricted to times in (lo, hi].
  virtual Status ApplyRecentRange(AuxState* state, bool forward, Timestamp lo,
                                  Timestamp hi) const = 0;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_AUX_HOOK_H_
