#include "deltagraph/delta_graph.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "codec/format.h"
#include "common/coding.h"
#include "obs/metrics.h"

namespace hgdb {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

Status DeltaGraphOptions::Validate() const {
  if (leaf_size < 1) return Status::InvalidArgument("leaf_size must be >= 1");
  if (arity < 2) return Status::InvalidArgument("arity must be >= 2");
  if (functions.empty()) {
    return Status::InvalidArgument("at least one differential function required");
  }
  for (const auto& spec : functions) {
    auto fn = MakeDifferentialFunction(spec);
    if (!fn.ok()) return fn.status();
  }
  return Status::OK();
}

std::string DeltaGraphOptions::Encode() const {
  std::string out;
  PutVarint64(&out, leaf_size);
  PutVarint32(&out, static_cast<uint32_t>(arity));
  out.push_back(maintain_current ? 1 : 0);
  out.push_back(use_plan_cache ? 1 : 0);
  PutVarint64(&out, functions.size());
  for (const auto& f : functions) PutLengthPrefixedSlice(&out, Slice(f));
  return out;
}

Status DeltaGraphOptions::Decode(const std::string& blob, DeltaGraphOptions* out) {
  Slice in(blob);
  uint64_t leaf_size = 0, fn_count = 0;
  uint32_t arity = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &leaf_size, "options leaf_size"));
  if (!GetVarint32(&in, &arity)) return Status::Corruption("options arity");
  if (in.empty()) return Status::Corruption("options maintain_current");
  const bool maintain_current = in[0] != 0;
  in.RemovePrefix(1);
  if (in.empty()) return Status::Corruption("options use_plan_cache");
  const bool use_plan_cache = in[0] != 0;
  in.RemovePrefix(1);
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &fn_count, "options function count"));
  out->functions.clear();
  for (uint64_t i = 0; i < fn_count; ++i) {
    std::string f;
    HG_RETURN_NOT_OK(ExpectLengthPrefixedString(&in, &f, "options function"));
    out->functions.push_back(std::move(f));
  }
  out->leaf_size = static_cast<size_t>(leaf_size);
  out->arity = static_cast<int>(arity);
  out->maintain_current = maintain_current;
  out->use_plan_cache = use_plan_cache;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

DeltaGraph::DeltaGraph(KVStore* store, DeltaGraphOptions options)
    : kv_(store), store_(store), options_(std::move(options)) {}

Result<std::unique_ptr<DeltaGraph>> DeltaGraph::Create(KVStore* store,
                                                       DeltaGraphOptions options) {
  HG_RETURN_NOT_OK(options.Validate());
  auto dg = std::unique_ptr<DeltaGraph>(new DeltaGraph(store, std::move(options)));
  for (const auto& spec : dg->options_.functions) {
    auto fn = MakeDifferentialFunction(spec);
    dg->functions_.push_back(std::move(fn).value());
  }
  dg->pending_.resize(dg->functions_.size());
  SkeletonNode super;
  super.level = 0;
  super.is_super_root = true;
  dg->skeleton_.SetSuperRoot(dg->skeleton_.AddNode(super));
  dg->PublishFrontier();
  return dg;
}

Result<std::unique_ptr<DeltaGraph>> DeltaGraph::Open(KVStore* store) {
  DeltaStore ds(store);
  std::string blob;
  // Index-level format gate: a missing "format" meta is a pre-codec (v0)
  // index, which still opens (every blob decoder auto-detects per blob); a
  // version newer than this build can decode is rejected up front instead of
  // failing blob-by-blob later.
  Status format_status = ds.GetMeta("format", &blob);
  if (format_status.ok()) {
    const unsigned version = static_cast<unsigned>(std::strtoul(blob.c_str(), nullptr, 10));
    if (version == 0 || version > codec::kMaxSupportedVersion) {
      return Status::InvalidArgument("index written by unsupported format version: " +
                                     blob);
    }
  } else if (!format_status.IsNotFound()) {
    return format_status;
  }
  HG_RETURN_NOT_OK(ds.GetMeta("options", &blob));
  DeltaGraphOptions options;
  HG_RETURN_NOT_OK(DeltaGraphOptions::Decode(blob, &options));
  auto result = Create(store, std::move(options));
  if (!result.ok()) return result.status();
  auto dg = std::move(result).value();

  Skeleton skel;
  HG_RETURN_NOT_OK(ds.GetSkeleton(&skel));
  dg->skeleton_ = std::move(skel);

  HG_RETURN_NOT_OK(ds.GetMeta("counters", &blob));
  Slice in(blob);
  uint64_t next_id = 0, event_count = 0;
  int64_t min_time = 0, max_time = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &next_id, "meta next_id"));
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &event_count, "meta event_count"));
  if (!GetVarsint64(&in, &min_time) || !GetVarsint64(&in, &max_time)) {
    return Status::Corruption("meta times");
  }
  dg->store_.SetNextId(next_id);
  dg->event_count_ = static_cast<size_t>(event_count);
  dg->min_time_ = min_time;
  dg->max_time_ = max_time;
  dg->has_initial_leaf_ = !dg->skeleton_.leaves().empty();

  // Restore the recent (unindexed) eventlist.
  Status s = ds.GetMeta("recent", &blob);
  if (s.ok()) {
    EventList recent;
    HG_RETURN_NOT_OK(recent.DecodeAndMergeComponent(blob));
    recent.FinalizeMerge();
    dg->recent_ = std::move(recent);
  } else if (!s.IsNotFound()) {
    return s;
  }

  // Publish the reopened state (sans current graph) so the rebuild below can
  // execute against a pinned frontier like any other query.
  dg->ResetRecentTail();
  dg->PublishFrontier();

  // Rebuild the current graph: last leaf snapshot + recent events.
  if (dg->options_.maintain_current && !dg->skeleton_.leaves().empty()) {
    const Timestamp last_boundary =
        dg->skeleton_.node(dg->skeleton_.leaves().back()).boundary_time;
    // Plan without the current graph (it does not exist yet).
    Planner planner(PlannerContext{.skeleton = &dg->skeleton_,
                                   .recent_count = 0,
                                   .has_current = false});
    auto plan = planner.PlanSnapshots({last_boundary}, kCompAll);
    if (!plan.ok()) return plan.status();
    auto snaps = dg->ExecuteSnapshotPlan(plan.value(), kCompAll, dg->PinFrontier());
    if (!snaps.ok()) return snaps.status();
    auto it = snaps.value().by_time.find(last_boundary);
    if (it == snaps.value().by_time.end()) {
      return Status::Internal("open: failed to rebuild current graph");
    }
    dg->current_ = std::move(it->second);
    HG_RETURN_NOT_OK(dg->current_.ApplyAll(dg->recent_.events(), /*forward=*/true));
    dg->PublishFrontier();
  }
  return dg;
}

// ---------------------------------------------------------------------------
// Epoch publication (single writer; see src/deltagraph/frontier.h)
// ---------------------------------------------------------------------------

void DeltaGraph::PushRecentTail(const Event& e) {
  if (recent_tail_ == nullptr || recent_tail_count_ == recent_tail_->capacity()) {
    // Full (or first use): move to a larger append-once buffer. The old
    // buffer stays alive behind every frontier that references it.
    const size_t cap = std::max<size_t>(
        64, std::max(options_.leaf_size, 2 * recent_tail_count_));
    auto grown = std::make_shared<RecentTail>(cap);
    for (size_t i = 0; i < recent_tail_count_; ++i) {
      *grown->slot(i) = *recent_tail_->slot(i);
    }
    recent_tail_ = std::move(grown);
  }
  *recent_tail_->slot(recent_tail_count_++) = e;
}

void DeltaGraph::ResetRecentTail() {
  // A leaf cut (or reopen) leaves a *different* event sequence in recent_;
  // published views of the old tail must not change, so start a new buffer.
  const std::vector<Event>& ev = recent_.events();
  recent_tail_ =
      std::make_shared<RecentTail>(std::max<size_t>(64, std::max(options_.leaf_size, 2 * ev.size())));
  for (size_t i = 0; i < ev.size(); ++i) *recent_tail_->slot(i) = ev[i];
  recent_tail_count_ = ev.size();
}

void DeltaGraph::PublishFrontier() {
  auto f = std::make_shared<FrontierState>();
  f->epoch = ++epoch_;
  if (skeleton_.version() != published_skeleton_version_) {
    published_skeleton_ = std::make_shared<const Skeleton>(skeleton_);
    published_skeleton_version_ = skeleton_.version();
  }
  f->skeleton = published_skeleton_;
  if (options_.maintain_current) {
    // O(1) COW copy: shares every chunk with the writer's working graph; the
    // writer's next mutation clones the touched chunk (common/cow.h).
    f->current = std::make_shared<const Snapshot>(current_);
  }
  if (materialized_dirty_) {
    published_materialized_ = std::make_shared<
        const std::map<int32_t, std::shared_ptr<Snapshot>>>(materialized_);
    materialized_dirty_ = false;
  }
  f->materialized = published_materialized_;
  f->recent = RecentView{recent_tail_, recent_tail_count_};
  f->min_time = min_time_;
  f->max_time = max_time_;
  f->event_count = event_count_;
  f->insert_events = insert_events_;
  f->delete_events = delete_events_;
  f->initial_elements = initial_elements_;
  // The swap is the release point: every slot write and COW clone above
  // happens-before any reader's pin (mutex release/acquire pairing). The
  // lock covers only the pointer swap; the old frontier (possibly the last
  // reference) is dropped after unlock.
  FrontierPtr old;
  {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    old = std::exchange(frontier_, std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Building / updating
// ---------------------------------------------------------------------------

Status DeltaGraph::SetInitialSnapshot(const Snapshot& g0, Timestamp t0) {
  if (has_initial_leaf_ || event_count_ > 0) {
    return Status::InvalidArgument(
        "SetInitialSnapshot must precede all appended events");
  }
  SkeletonNode leaf;
  leaf.level = 1;
  leaf.is_leaf = true;
  leaf.boundary_time = t0;
  leaf.element_count = g0.ElementCount();
  const int32_t leaf_id = skeleton_.AddNode(leaf);
  auto graph = std::make_shared<Snapshot>(g0);
  for (size_t h = 0; h < functions_.size(); ++h) {
    if (pending_[h].empty()) pending_[h].emplace_back();
    pending_[h][0].push_back(Pending{leaf_id, graph});
  }
  current_ = g0;
  min_time_ = t0;
  max_time_ = t0;
  initial_elements_ = static_cast<double>(g0.ElementCount());
  has_initial_leaf_ = true;
  for (auto* hook : aux_hooks_) {
    HG_RETURN_NOT_OK(hook->BuildOnInitialSnapshot(g0));
    HG_RETURN_NOT_OK(hook->BuildOnLeaf(leaf_id, -1, -1));
  }
  PublishFrontier();
  return Status::OK();
}

Status DeltaGraph::Append(const Event& e) {
  Status s = AppendOne(e);
  PublishFrontier();
  return s;
}

Status DeltaGraph::AppendOne(const Event& e) {
  if (e.time < max_time_) {
    return Status::InvalidArgument("events must be appended chronologically");
  }
  // An equal-time event may only extend a run that still lives in the recent
  // eventlist. If the state at max_time_ is already sealed by a leaf boundary
  // (an initial snapshot at t0 with nothing appended since), the event would
  // fall on the closed end of that leaf's (lo, hi] interval and be invisible
  // to retrieval, so reject it instead of silently losing it.
  if (recent_.empty() && !skeleton_.leaves().empty() &&
      e.time == skeleton_.node(skeleton_.leaves().back()).boundary_time) {
    return Status::InvalidArgument(
        "event time equals the sealed final leaf boundary; events must be "
        "strictly after an initial snapshot's time");
  }
  // Cut a leaf when the eventlist is full, but never split equal-time events
  // across two leaves (a snapshot boundary must fall between distinct times).
  if (recent_.size() >= options_.leaf_size && e.time > recent_.EndTime()) {
    HG_RETURN_NOT_OK(CutLeaf(recent_.size()));
  }
  if (!has_initial_leaf_) {
    // Leaf 0: the initial (empty) state just before the first event.
    SkeletonNode leaf;
    leaf.level = 1;
    leaf.is_leaf = true;
    leaf.boundary_time = e.time - 1;
    leaf.element_count = 0;
    const int32_t leaf_id = skeleton_.AddNode(leaf);
    auto graph = std::make_shared<Snapshot>();
    for (size_t h = 0; h < functions_.size(); ++h) {
      if (pending_[h].empty()) pending_[h].emplace_back();
      pending_[h][0].push_back(Pending{leaf_id, graph});
    }
    for (auto* hook : aux_hooks_) {
      HG_RETURN_NOT_OK(hook->BuildOnLeaf(leaf_id, -1, -1));
    }
    has_initial_leaf_ = true;
  }
  HG_RETURN_NOT_OK(current_.Apply(e, /*forward=*/true));
  recent_.Append(e);
  PushRecentTail(e);
  min_time_ = std::min(min_time_, e.time);
  max_time_ = std::max(max_time_, e.time);
  ++event_count_;
  // Running (δ*, ρ*) inputs for the online cost model (see insert_events()).
  if (e.type == EventType::kAddNode || e.type == EventType::kAddEdge) {
    ++insert_events_;
  } else if (e.type == EventType::kDeleteNode || e.type == EventType::kDeleteEdge) {
    ++delete_events_;
  }
  for (auto* hook : aux_hooks_) {
    HG_RETURN_NOT_OK(hook->BuildOnEvent(e, current_));
  }
  return Status::OK();
}

Status DeltaGraph::AppendAll(const std::vector<Event>& events) {
  // One epoch per batch: readers never observe a torn AppendAll. (On error
  // the successfully applied prefix is still published — the frontier always
  // reflects the events actually applied.)
  Status s;
  for (const auto& e : events) {
    s = AppendOne(e);
    if (!s.ok()) break;
  }
  PublishFrontier();
  return s;
}

Status DeltaGraph::CutLeaf(size_t prefix) {
  if (recent_.empty() || prefix == 0) return Status::OK();
  const std::vector<Event>& ev = recent_.events();
  prefix = std::min(prefix, ev.size());
  const bool full = prefix == ev.size();
  const int32_t prev_leaf = skeleton_.leaves().back();

  // The leaf's graph is the state after the cut events only. Events held back
  // beyond `prefix` are rolled off the current graph; events are exactly
  // invertible, so the rollback is exact (transient events are no-ops).
  auto graph = std::make_shared<Snapshot>(current_);
  for (size_t i = ev.size(); i > prefix; --i) {
    HG_RETURN_NOT_OK(graph->Apply(ev[i - 1], /*forward=*/false));
  }

  SkeletonNode leaf;
  leaf.level = 1;
  leaf.is_leaf = true;
  leaf.boundary_time = ev[prefix - 1].time;
  leaf.element_count = graph->ElementCount();
  const int32_t leaf_id = skeleton_.AddNode(leaf);

  // Persist the eventlist and hook it between the leaves.
  SkeletonEdge edge;
  edge.from = prev_leaf;
  edge.to = leaf_id;
  edge.is_eventlist = true;
  edge.delta_id = store_.AllocateId();
  if (full) {
    HG_RETURN_NOT_OK(store_.PutEventList(edge.delta_id, recent_, &edge.sizes));
  } else {
    const EventList cut(std::vector<Event>(ev.begin(), ev.begin() + prefix));
    HG_RETURN_NOT_OK(store_.PutEventList(edge.delta_id, cut, &edge.sizes));
  }
  const int32_t edge_id = skeleton_.AddEdge(edge);

  for (size_t h = 0; h < functions_.size(); ++h) {
    if (pending_[h].empty()) pending_[h].emplace_back();
    pending_[h][0].push_back(Pending{leaf_id, graph});
  }
  for (auto* hook : aux_hooks_) {
    HG_RETURN_NOT_OK(hook->BuildOnLeaf(leaf_id, prev_leaf, edge_id));
  }
  if (full) {
    recent_.Clear();
  } else {
    recent_ = EventList(std::vector<Event>(ev.begin() + prefix, ev.end()));
  }
  ResetRecentTail();
  return CascadeMerges(/*force_partial=*/false);
}

Status DeltaGraph::BuildParent(size_t hierarchy, size_t level_index) {
  auto& level = pending_[hierarchy][level_index];
  const size_t take =
      std::min(level.size(), static_cast<size_t>(options_.arity));
  // A parent over a single child would be a delta onto itself; finalization
  // promotes lone leftovers upward instead (see CascadeMerges).
  if (take < 2) return Status::OK();

  std::vector<Pending> children(level.begin(), level.begin() + take);
  level.erase(level.begin(), level.begin() + take);

  std::vector<const Snapshot*> child_graphs;
  child_graphs.reserve(children.size());
  for (const auto& c : children) child_graphs.push_back(c.graph.get());
  auto parent_graph =
      std::make_shared<Snapshot>(functions_[hierarchy]->Combine(child_graphs));

  SkeletonNode parent;
  parent.level = static_cast<int32_t>(level_index + 2);
  parent.hierarchy = static_cast<int32_t>(hierarchy);
  parent.element_count = parent_graph->ElementCount();
  // The covered time range is that of the children (diagnostics only).
  parent.boundary_time = skeleton_.node(children.back().node_id).boundary_time;
  const int32_t parent_id = skeleton_.AddNode(parent);

  std::vector<int32_t> child_ids, edge_ids;
  for (const auto& c : children) {
    Delta d = Delta::Between(*c.graph, *parent_graph);
    SkeletonEdge edge;
    edge.from = parent_id;
    edge.to = c.node_id;
    edge.delta_id = store_.AllocateId();
    HG_RETURN_NOT_OK(store_.PutDelta(edge.delta_id, d, &edge.sizes));
    const int32_t eid = skeleton_.AddEdge(edge);
    child_ids.push_back(c.node_id);
    edge_ids.push_back(eid);
  }
  for (auto* hook : aux_hooks_) {
    HG_RETURN_NOT_OK(hook->BuildOnParent(parent_id, child_ids, edge_ids));
  }

  if (pending_[hierarchy].size() <= level_index + 1) {
    pending_[hierarchy].emplace_back();
  }
  pending_[hierarchy][level_index + 1].push_back(Pending{parent_id, parent_graph});
  return Status::OK();
}

Status DeltaGraph::CascadeMerges(bool force_partial) {
  for (size_t h = 0; h < pending_.size(); ++h) {
    for (size_t l = 0; l < pending_[h].size(); ++l) {
      while (pending_[h][l].size() >= static_cast<size_t>(options_.arity)) {
        HG_RETURN_NOT_OK(BuildParent(h, l));
      }
      if (force_partial) {
        if (pending_[h][l].size() >= 2) {
          HG_RETURN_NOT_OK(BuildParent(h, l));
        }
        // A single leftover node is promoted upward so exactly one root
        // emerges per hierarchy.
        if (pending_[h][l].size() == 1 && l + 1 < pending_[h].size()) {
          pending_[h][l + 1].push_back(std::move(pending_[h][l].front()));
          pending_[h][l].clear();
        }
      }
    }
  }
  return Status::OK();
}

Status DeltaGraph::AttachSuperRoot(size_t hierarchy, const Pending& pending_root) {
  // Skip if this node is already attached.
  for (int32_t eid : skeleton_.incident_edges(skeleton_.super_root())) {
    const SkeletonEdge& e = skeleton_.edge(eid);
    if (!e.deleted && e.to == pending_root.node_id) return Status::OK();
  }
  Snapshot empty;
  Delta d = Delta::Between(*pending_root.graph, empty);
  SkeletonEdge edge;
  edge.from = skeleton_.super_root();
  edge.to = pending_root.node_id;
  edge.delta_id = store_.AllocateId();
  HG_RETURN_NOT_OK(store_.PutDelta(edge.delta_id, d, &edge.sizes));
  const int32_t eid = skeleton_.AddEdge(edge);
  for (auto* hook : aux_hooks_) {
    HG_RETURN_NOT_OK(hook->BuildOnSuperRootEdge(eid, pending_root.node_id));
  }
  (void)hierarchy;
  return Status::OK();
}

Status DeltaGraph::Finalize() {
  // Flush the trailing partial eventlist — but never cut a boundary inside an
  // equal-time run. A resumed index may keep appending events at max_time_,
  // and those must stay strictly inside the recent interval (boundary, +inf)
  // to remain visible under the (lo, hi] eventlist semantics. The events at
  // EndTime() are therefore held back in the recent eventlist (persisted by
  // PersistMeta, replayed by Open) until a strictly later event seals them.
  if (!recent_.empty()) {
    const std::vector<Event>& ev = recent_.events();
    size_t prefix = ev.size();
    while (prefix > 0 && ev[prefix - 1].time == recent_.EndTime()) --prefix;
    HG_RETURN_NOT_OK(CutLeaf(prefix));
  }
  HG_RETURN_NOT_OK(CascadeMerges(/*force_partial=*/true));
  for (size_t h = 0; h < pending_.size(); ++h) {
    for (auto& level : pending_[h]) {
      for (auto& p : level) {
        HG_RETURN_NOT_OK(AttachSuperRoot(h, p));
      }
    }
    pending_[h].clear();
  }
  Status s = PersistMeta();
  PublishFrontier();
  return s;
}

Status DeltaGraph::PersistMeta() {
  HG_RETURN_NOT_OK(store_.PutSkeleton(skeleton_));
  // Index-level format version (the blob-level version rides in each blob's
  // codec header; see src/codec/README.md). Absent on pre-codec indexes.
  // Written as the newest version this build emits, so older builds that
  // cannot decode it refuse the whole index up front.
  HG_RETURN_NOT_OK(store_.PutMeta(
      "format", std::to_string(static_cast<unsigned>(codec::kMaxSupportedVersion))));
  HG_RETURN_NOT_OK(store_.PutMeta("options", options_.Encode()));
  std::string counters;
  PutVarint64(&counters, store_.next_id());
  PutVarint64(&counters, event_count_);
  PutVarsint64(&counters, min_time_);
  PutVarsint64(&counters, max_time_);
  HG_RETURN_NOT_OK(store_.PutMeta("counters", counters));
  std::string recent_blob;
  recent_.EncodeComponent(
      static_cast<ComponentMask>(kCompAllWithTransient), &recent_blob);
  HG_RETURN_NOT_OK(store_.PutMeta("recent", recent_blob));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

std::vector<int32_t> DeltaGraph::NodesAtDepth(int depth) const {
  std::vector<int32_t> frontier;
  const int32_t sr = skeleton_.super_root();
  if (sr < 0) return frontier;
  for (int32_t eid : skeleton_.incident_edges(sr)) {
    const SkeletonEdge& e = skeleton_.edge(eid);
    if (!e.deleted && !e.is_eventlist && e.from == sr) frontier.push_back(e.to);
  }
  for (int d = 0; d < depth; ++d) {
    std::vector<int32_t> next;
    for (int32_t node : frontier) {
      bool has_children = false;
      for (int32_t eid : skeleton_.incident_edges(node)) {
        const SkeletonEdge& e = skeleton_.edge(eid);
        if (!e.deleted && !e.is_eventlist && e.from == node) {
          next.push_back(e.to);
          has_children = true;
        }
      }
      // Leaves stay in the frontier so "grandchildren of a shallow root"
      // remains meaningful on ragged trees.
      if (!has_children) next.push_back(node);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
  }
  return frontier;
}

Status DeltaGraph::MaterializeNode(int32_t node_id, unsigned components) {
  std::vector<int32_t> ids = {node_id};
  Planner planner(MakePlannerContext());
  auto plan = planner.PlanNodes(ids, components);
  if (!plan.ok()) return plan.status();
  auto exec = ExecuteSnapshotPlan(plan.value(), components, PinFrontier());
  if (!exec.ok()) return exec.status();
  auto it = exec.value().by_node.find(node_id);
  if (it == exec.value().by_node.end()) {
    return Status::Internal("materialize: node not emitted by plan");
  }
  materialized_[node_id] = std::make_shared<Snapshot>(std::move(it->second));
  skeleton_.mutable_node(node_id)->materialized = true;
  skeleton_.mutable_node(node_id)->materialized_components = components;
  skeleton_.mutable_node(node_id)->element_count =
      materialized_[node_id]->ElementCount();
  materialized_dirty_ = true;
  PublishFrontier();
  return Status::OK();
}

Status DeltaGraph::UnmaterializeNode(int32_t node_id) {
  materialized_.erase(node_id);
  skeleton_.mutable_node(node_id)->materialized = false;
  skeleton_.mutable_node(node_id)->materialized_components = 0;
  materialized_dirty_ = true;
  PublishFrontier();
  return Status::OK();
}

Result<size_t> DeltaGraph::MaterializeDepth(int depth, unsigned components) {
  const std::vector<int32_t> ids = NodesAtDepth(depth);
  if (ids.empty()) return Status::InvalidArgument("no nodes at requested depth");
  Planner planner(MakePlannerContext());
  auto plan = planner.PlanNodes(ids, components);
  if (!plan.ok()) return plan.status();
  auto exec = ExecuteSnapshotPlan(plan.value(), components, PinFrontier());
  if (!exec.ok()) return exec.status();
  size_t count = 0;
  for (auto& [id, snap] : exec.value().by_node) {
    materialized_[id] = std::make_shared<Snapshot>(std::move(snap));
    skeleton_.mutable_node(id)->materialized = true;
    skeleton_.mutable_node(id)->materialized_components = components;
    skeleton_.mutable_node(id)->element_count = materialized_[id]->ElementCount();
    ++count;
  }
  materialized_dirty_ = true;
  PublishFrontier();
  return count;
}

Status DeltaGraph::MaterializeAllLeaves(unsigned components) {
  std::vector<int32_t> ids = skeleton_.leaves();
  Planner planner(MakePlannerContext());
  auto plan = planner.PlanNodes(ids, components);
  if (!plan.ok()) return plan.status();
  auto exec = ExecuteSnapshotPlan(plan.value(), components, PinFrontier());
  if (!exec.ok()) return exec.status();
  for (auto& [id, snap] : exec.value().by_node) {
    materialized_[id] = std::make_shared<Snapshot>(std::move(snap));
    skeleton_.mutable_node(id)->materialized = true;
    skeleton_.mutable_node(id)->materialized_components = components;
    // Same skeleton state as MaterializeNode/MaterializeDepth: the planner
    // weights materialized starts by element_count, so a stale count here
    // would mis-cost every plan that could start from this leaf.
    skeleton_.mutable_node(id)->element_count = materialized_[id]->ElementCount();
  }
  materialized_dirty_ = true;
  PublishFrontier();
  return Status::OK();
}

const Snapshot* DeltaGraph::materialized_snapshot(int32_t node_id) const {
  auto it = materialized_.find(node_id);
  return it == materialized_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

PlannerContext DeltaGraph::MakePlannerContext() const {
  PlannerContext ctx;
  ctx.skeleton = &skeleton_;
  ctx.recent_count = recent_.size();
  ctx.recent_end = recent_.empty() ? kMinTimestamp : recent_.EndTime();
  ctx.has_current = options_.maintain_current;
  ctx.current_elements = current_.ElementCount();
  return ctx;
}

PlannerContext DeltaGraph::MakePlannerContext(const FrontierState& frontier) const {
  PlannerContext ctx;
  ctx.skeleton = frontier.skeleton.get();
  ctx.recent_count = frontier.recent.size();
  ctx.recent_end =
      frontier.recent.empty() ? kMinTimestamp : frontier.recent.EndTime();
  ctx.has_current = options_.maintain_current && frontier.current != nullptr;
  ctx.current_elements =
      frontier.current == nullptr ? 0 : frontier.current->ElementCount();
  return ctx;
}

DeltaGraphStats DeltaGraph::Stats() const {
  DeltaGraphStats stats;
  stats.leaf_count = skeleton_.leaves().size();
  stats.node_count = skeleton_.node_count();
  int max_level = 0;
  for (size_t i = 0; i < skeleton_.node_count(); ++i) {
    const auto& n = skeleton_.node(static_cast<int32_t>(i));
    if (!n.is_super_root) max_level = std::max(max_level, n.level);
  }
  stats.height = max_level;
  for (size_t i = 0; i < skeleton_.edge_count(); ++i) {
    const auto& e = skeleton_.edge(static_cast<int32_t>(i));
    if (e.deleted) continue;
    ++stats.edge_count;
    if (e.is_eventlist) {
      stats.eventlist_bytes += e.sizes.TotalBytes(kCompAllWithTransient);
    } else {
      stats.delta_bytes += e.sizes.TotalBytes(kCompAllWithTransient);
    }
  }
  stats.store_bytes = kv_->ValueBytes();
  stats.materialized_nodes = materialized_.size();
  for (const auto& [id, snap] : materialized_) {
    stats.materialized_bytes += snap->MemoryBytes();
  }
  return stats;
}

void DeltaGraph::RegisterMetricsExports(const std::string& name) {
  auto& registry = obs::MetricsRegistry::Global();
  if (!metrics_export_name_.empty()) {
    registry.UnregisterProvider(metrics_export_name_);
  }
  metrics_export_name_ = "deltagraph." + name;
  registry.RegisterProvider(metrics_export_name_, [this]() {
    const DeltaGraphStats s = Stats();
    std::ostringstream out;
    out << "{\"stats\":{"
        << "\"leaf_count\":" << s.leaf_count
        << ",\"node_count\":" << s.node_count
        << ",\"edge_count\":" << s.edge_count
        << ",\"height\":" << s.height
        << ",\"delta_bytes\":" << s.delta_bytes
        << ",\"eventlist_bytes\":" << s.eventlist_bytes
        << ",\"store_bytes\":" << s.store_bytes
        << ",\"materialized_bytes\":" << s.materialized_bytes
        << ",\"materialized_nodes\":" << s.materialized_nodes
        << "},\"fetch_freq_top\":" << store_.fetch_frequency().TopKJSON(16)
        << ",\"node_touch_top\":" << node_touches_.TopKJSON(16) << "}";
    return out.str();
  });
}

DeltaGraph::~DeltaGraph() {
  if (!metrics_export_name_.empty()) {
    obs::MetricsRegistry::Global().UnregisterProvider(metrics_export_name_);
  }
}

}  // namespace hgdb
