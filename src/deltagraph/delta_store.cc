#include "deltagraph/delta_store.h"

#include <algorithm>
#include <sstream>

namespace hgdb {

namespace {

constexpr ComponentMask kComponentByIndex[kNumComponents] = {
    kCompStruct, kCompNodeAttr, kCompEdgeAttr, kCompTransient};

constexpr char kComponentTag[kNumComponents] = {'s', 'n', 'e', 't'};

// Registry metrics (process-wide; every DeltaStore instance folds in). The
// pointers are fetched once — GetCounter takes the registry lock — and the
// per-event cost is Counter::Add's enabled-check + relaxed add.
obs::Counter& LruHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.lru_hits");
  return *c;
}
obs::Counter& LruMisses() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.lru_misses");
  return *c;
}
obs::Counter& MultiGets() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.multigets");
  return *c;
}
obs::Counter& KeysRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.keys_read");
  return *c;
}
obs::Counter& BytesRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.bytes_read");
  return *c;
}
obs::Counter& Decodes() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("delta_store.decodes");
  return *c;
}

}  // namespace

// -- FetchFrequency ----------------------------------------------------------

void FetchFrequency::EnsureSize(size_t n) {
  if (n <= size_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(grow_mu_);
  const size_t old_n = size_.load(std::memory_order_acquire);
  if (n <= old_n) return;
  size_t cap = std::max<size_t>(1024, old_n * 2);
  while (cap < n) cap *= 2;
  auto fresh = std::make_unique<std::atomic<uint32_t>[]>(cap);
  std::atomic<uint32_t>* old = slots_.load(std::memory_order_acquire);
  for (size_t i = 0; i < old_n; ++i) {
    fresh[i].store(old[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  for (size_t i = old_n; i < cap; ++i) {
    fresh[i].store(0, std::memory_order_relaxed);
  }
  slots_.store(fresh.get(), std::memory_order_release);
  size_.store(cap, std::memory_order_release);
  arenas_.push_back(std::move(fresh));  // Old arenas stay alive (see header).
}

uint32_t FetchFrequency::Count(DeltaId id) const {
  const size_t n = size_.load(std::memory_order_acquire);
  if (id >= n) return 0;
  return slots_.load(std::memory_order_acquire)[id].load(
      std::memory_order_relaxed);
}

void FetchFrequency::Reset() {
  // grow_mu_ serializes against EnsureSize: without it a concurrent grow
  // could copy counts into a fresh arena while this loop zeroes only the old
  // one, and the copied counts would survive the reset.
  std::lock_guard<std::mutex> lock(grow_mu_);
  const size_t n = size_.load(std::memory_order_acquire);
  std::atomic<uint32_t>* slots = slots_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) slots[i].store(0, std::memory_order_relaxed);
}

void FetchFrequency::Decay() {
  std::lock_guard<std::mutex> lock(grow_mu_);  // Same carry-over race as Reset.
  const size_t n = size_.load(std::memory_order_acquire);
  std::atomic<uint32_t>* slots = slots_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = slots[i].load(std::memory_order_relaxed);
    if (c > 0) slots[i].store(c >> 1, std::memory_order_relaxed);
  }
}

std::string FetchFrequency::TopKJSON(size_t k) const {
  const size_t n = size_.load(std::memory_order_acquire);
  std::atomic<uint32_t>* slots = slots_.load(std::memory_order_acquire);
  std::vector<std::pair<uint32_t, size_t>> hot;  // (count, id)
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = slots[i].load(std::memory_order_relaxed);
    if (c > 0) hot.emplace_back(c, i);
  }
  const size_t keep = std::min(k, hot.size());
  // (count desc, id asc) is a strict total order over the (count, id) pairs,
  // so the selected top-k — including which of several equal-count entries
  // make the cut — is deterministic across runs.
  std::partial_sort(hot.begin(), hot.begin() + keep, hot.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < keep; ++i) {
    if (i > 0) out << ",";
    out << "{\"id\":" << hot[i].second << ",\"fetches\":" << hot[i].first << "}";
  }
  out << "]";
  return out.str();
}

std::string DeltaStore::Key(DeltaId id, int component_index) {
  std::string key = "d/";
  key += std::to_string(id);
  key += '/';
  key += kComponentTag[component_index];
  return key;
}

// -- Decoded-object LRU ------------------------------------------------------

std::shared_ptr<const Delta> DeltaStore::CacheLookupDelta(uint64_t key) const {
  std::shared_lock lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    LruMisses().Add();
    return nullptr;
  }
  it->second->hot.store(true, std::memory_order_relaxed);
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  LruHits().Add();
  return it->second->delta;
}

std::shared_ptr<const EventList> DeltaStore::CacheLookupEvents(uint64_t key) const {
  std::shared_lock lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    LruMisses().Add();
    return nullptr;
  }
  it->second->hot.store(true, std::memory_order_relaxed);
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  LruHits().Add();
  return it->second->events;
}

void DeltaStore::CacheInsert(uint64_t key, std::shared_ptr<const Delta> delta,
                             std::shared_ptr<const EventList> events) const {
  std::unique_lock lock(cache_mu_);
  if (cache_capacity_ == 0) return;
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {  // Raced decode; keep the existing entry hot.
    it->second->hot.store(true, std::memory_order_relaxed);
    return;
  }
  cache_lru_.emplace_front(key, std::move(delta), std::move(events));
  cache_index_[key] = cache_lru_.begin();
  EvictOverCapacityLocked();
}

void DeltaStore::EvictOverCapacityLocked() const {
  while (cache_lru_.size() > cache_capacity_) {
    auto victim = std::prev(cache_lru_.end());
    if (victim->hot.load(std::memory_order_relaxed)) {
      // Second chance: recently hit under the shared lock; cycle it to the
      // hot end instead of evicting. Each pass either evicts or clears one
      // flag, so the loop terminates.
      victim->hot.store(false, std::memory_order_relaxed);
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, victim);
      continue;
    }
    cache_index_.erase(victim->key);
    cache_lru_.erase(victim);
  }
}

void DeltaStore::CacheInvalidate(DeltaId id) {
  std::unique_lock lock(cache_mu_);
  for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
    if ((it->key >> 5) == id) {
      cache_index_.erase(it->key);
      it = cache_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void DeltaStore::SetDecodedCacheCapacity(size_t entries) {
  std::unique_lock lock(cache_mu_);
  cache_capacity_ = entries;
  // Capacity shrink is an explicit reset; no second chances here.
  while (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
}

size_t DeltaStore::decoded_cache_hits() const {
  return cache_hits_.load(std::memory_order_relaxed);
}

size_t DeltaStore::decoded_cache_misses() const {
  return cache_misses_.load(std::memory_order_relaxed);
}

// -- Deltas ------------------------------------------------------------------

Status DeltaStore::PutDelta(DeltaId id, const Delta& delta, ComponentSizes* sizes) {
  CacheInvalidate(id);
  *sizes = ComponentSizes();
  std::string blob;
  for (int c = 0; c < 3; ++c) {  // Deltas have no transient component.
    const ComponentMask mask = kComponentByIndex[c];
    if (delta.ElementCount(mask) == 0) continue;
    delta.EncodeComponent(mask, &blob);
    HG_RETURN_NOT_OK(store_->Put(Key(id, c), blob));
    sizes->bytes[c] = blob.size();
    sizes->elements[c] = delta.ElementCount(mask);
  }
  return Status::OK();
}

Status DeltaStore::GetDelta(DeltaId id, unsigned components,
                            const ComponentSizes& sizes, Delta* out) const {
  auto shared = GetDeltaShared(id, components, sizes);
  if (!shared.ok()) return shared.status();
  *out = *shared.value();
  return Status::OK();
}

Result<std::shared_ptr<const Delta>> DeltaStore::GetDeltaShared(
    DeltaId id, unsigned components, const ComponentSizes& sizes,
    ReadStats* rs) const {
  fetch_freq_.Record(id);
  const uint64_t key = CacheKey(id, components, /*is_delta=*/true);
  if (auto hit = CacheLookupDelta(key)) {
    if (rs != nullptr) rs->cache_hit = true;
    return hit;
  }
  // All requested components in one MultiGet: one storage round-trip per
  // delta instead of one per component.
  std::vector<std::string> keys;
  std::vector<ComponentMask> masks;
  for (int c = 0; c < 3; ++c) {  // Deltas have no transient component.
    const ComponentMask mask = kComponentByIndex[c];
    if ((components & mask) == 0) continue;
    if (sizes.bytes[c] == 0) continue;  // Component empty; nothing stored.
    keys.push_back(Key(id, c));
    masks.push_back(mask);
  }
  auto decoded = std::make_shared<Delta>();
  std::vector<Slice> key_slices(keys.begin(), keys.end());
  std::vector<std::string> blobs;
  std::vector<Status> statuses;
  store_->MultiGet(key_slices, &blobs, &statuses);
  MultiGets().Add();
  KeysRead().Add(keys.size());
  Decodes().Add();
  uint64_t bytes = 0;
  for (const std::string& b : blobs) bytes += b.size();
  BytesRead().Add(bytes);
  if (rs != nullptr) {
    rs->kv_keys = static_cast<uint32_t>(keys.size());
    rs->bytes = bytes;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    HG_RETURN_NOT_OK(statuses[i]);
    HG_RETURN_NOT_OK(decoded->DecodeComponent(masks[i], blobs[i]));
  }
  std::shared_ptr<const Delta> out = std::move(decoded);
  CacheInsert(key, out, nullptr);
  return out;
}

Status DeltaStore::PutEventList(DeltaId id, const EventList& events,
                                ComponentSizes* sizes) {
  CacheInvalidate(id);
  *sizes = ComponentSizes();
  std::string blob;
  for (int c = 0; c < kNumComponents; ++c) {
    const ComponentMask mask = kComponentByIndex[c];
    const size_t count = events.CountComponent(mask);
    if (count == 0) continue;
    events.EncodeComponent(mask, &blob);
    HG_RETURN_NOT_OK(store_->Put(Key(id, c), blob));
    sizes->bytes[c] = blob.size();
    sizes->elements[c] = count;
  }
  return Status::OK();
}

Status DeltaStore::GetEventList(DeltaId id, unsigned components,
                                const ComponentSizes& sizes, EventList* out) const {
  auto shared = GetEventListShared(id, components, sizes);
  if (!shared.ok()) return shared.status();
  *out = *shared.value();
  return Status::OK();
}

Result<std::shared_ptr<const EventList>> DeltaStore::GetEventListShared(
    DeltaId id, unsigned components, const ComponentSizes& sizes,
    ReadStats* rs) const {
  fetch_freq_.Record(id);
  const uint64_t key = CacheKey(id, components, /*is_delta=*/false);
  if (auto hit = CacheLookupEvents(key)) {
    if (rs != nullptr) rs->cache_hit = true;
    return hit;
  }
  std::vector<std::string> keys;
  for (int c = 0; c < kNumComponents; ++c) {
    const ComponentMask mask = kComponentByIndex[c];
    if ((components & mask) == 0) continue;
    if (sizes.bytes[c] == 0) continue;
    keys.push_back(Key(id, c));
  }
  auto decoded = std::make_shared<EventList>();
  std::vector<Slice> key_slices(keys.begin(), keys.end());
  std::vector<std::string> blobs;
  std::vector<Status> statuses;
  store_->MultiGet(key_slices, &blobs, &statuses);
  MultiGets().Add();
  KeysRead().Add(keys.size());
  Decodes().Add();
  uint64_t bytes = 0;
  for (const std::string& b : blobs) bytes += b.size();
  BytesRead().Add(bytes);
  if (rs != nullptr) {
    rs->kv_keys = static_cast<uint32_t>(keys.size());
    rs->bytes = bytes;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    HG_RETURN_NOT_OK(statuses[i]);
    HG_RETURN_NOT_OK(decoded->DecodeAndMergeComponent(blobs[i]));
  }
  decoded->FinalizeMerge();
  std::shared_ptr<const EventList> out = std::move(decoded);
  CacheInsert(key, nullptr, out);
  return out;
}

void DeltaStore::FetchBatch(std::vector<BatchedRead>* batch,
                            std::vector<FetchedRead>* fetched) const {
  // Resolve decoded-LRU hits first and gather the KV keys of every miss, so
  // the storage round-trip below covers the whole batch.
  struct KeyPart {
    size_t fetched_index;
    ComponentMask mask;
  };
  std::vector<std::string> keys;
  std::vector<KeyPart> parts;
  for (size_t i = 0; i < batch->size(); ++i) {
    BatchedRead& r = (*batch)[i];
    fetch_freq_.Record(r.id);
    const uint64_t cache_key = CacheKey(r.id, r.components, !r.is_eventlist);
    if (r.is_eventlist) {
      if (auto hit = CacheLookupEvents(cache_key)) {
        r.events = std::move(hit);
        r.status = Status::OK();
        r.lru_hit = true;
        continue;
      }
    } else {
      if (auto hit = CacheLookupDelta(cache_key)) {
        r.delta = std::move(hit);
        r.status = Status::OK();
        r.lru_hit = true;
        continue;
      }
    }
    const size_t fi = fetched->size();
    fetched->push_back(FetchedRead{i, Status::OK(), {}});
    const int limit = r.is_eventlist ? kNumComponents : 3;
    for (int c = 0; c < limit; ++c) {
      const ComponentMask mask = kComponentByIndex[c];
      if ((r.components & mask) == 0) continue;
      if (r.sizes.bytes[c] == 0) continue;
      keys.push_back(Key(r.id, c));
      parts.push_back(KeyPart{fi, mask});
    }
  }
  if (fetched->empty()) return;

  // One MultiGet round-trip for the entire batch (cross-*delta*, not just
  // cross-component): this is the prefetcher's per-I/O-shard drain path.
  std::vector<std::string> blobs;
  std::vector<Status> statuses;
  if (!keys.empty()) {
    std::vector<Slice> key_slices(keys.begin(), keys.end());
    store_->MultiGet(key_slices, &blobs, &statuses);
    batched_multigets_.fetch_add(1, std::memory_order_relaxed);
    batched_reads_.fetch_add(fetched->size(), std::memory_order_relaxed);
    MultiGets().Add();
    KeysRead().Add(keys.size());
    uint64_t bytes = 0;
    for (const std::string& b : blobs) bytes += b.size();
    BytesRead().Add(bytes);
  }
  for (size_t k = 0; k < parts.size(); ++k) {
    FetchedRead& f = (*fetched)[parts[k].fetched_index];
    if (!f.status.ok()) continue;  // A failed key poisons only its own entry.
    if (!statuses[k].ok()) {
      f.status = statuses[k];
      f.blobs.clear();
      continue;
    }
    f.blobs.emplace_back(parts[k].mask, std::move(blobs[k]));
  }
}

void DeltaStore::DecodeFetched(BatchedRead* read, FetchedRead* fetched) const {
  read->status = fetched->status;
  if (!read->status.ok()) return;
  Decodes().Add();
  if (read->is_eventlist) {
    auto decoded = std::make_shared<EventList>();
    for (auto& [mask, blob] : fetched->blobs) {
      (void)mask;  // Eventlist blobs self-describe their component.
      Status s = decoded->DecodeAndMergeComponent(blob);
      if (!s.ok()) {
        read->status = s;
        return;
      }
    }
    decoded->FinalizeMerge();
    read->events = std::move(decoded);
    CacheInsert(CacheKey(read->id, read->components, /*is_delta=*/false),
                nullptr, read->events);
  } else {
    auto decoded = std::make_shared<Delta>();
    for (auto& [mask, blob] : fetched->blobs) {
      Status s = decoded->DecodeComponent(mask, blob);
      if (!s.ok()) {
        read->status = s;
        return;
      }
    }
    read->delta = std::move(decoded);
    CacheInsert(CacheKey(read->id, read->components, /*is_delta=*/true),
                read->delta, nullptr);
  }
}

void DeltaStore::GetBatch(std::vector<BatchedRead>* batch) const {
  std::vector<FetchedRead> fetched;
  FetchBatch(batch, &fetched);
  for (FetchedRead& f : fetched) DecodeFetched(&(*batch)[f.entry], &f);
}

Status DeltaStore::DeleteDelta(DeltaId id) {
  CacheInvalidate(id);
  for (int c = 0; c < kNumComponents; ++c) {
    HG_RETURN_NOT_OK(store_->Delete(Key(id, c)));
  }
  return Status::OK();
}

Status DeltaStore::PutSkeleton(const Skeleton& skeleton) {
  std::string blob;
  skeleton.EncodeTo(&blob);
  return store_->Put("m/skeleton", blob);
}

Status DeltaStore::GetSkeleton(Skeleton* skeleton) const {
  std::string blob;
  HG_RETURN_NOT_OK(store_->Get("m/skeleton", &blob));
  return Skeleton::DecodeFrom(blob, skeleton);
}

Status DeltaStore::PutMeta(const std::string& key, const std::string& value) {
  return store_->Put("m/" + key, value);
}

Status DeltaStore::GetMeta(const std::string& key, std::string* value) const {
  return store_->Get("m/" + key, value);
}

}  // namespace hgdb
