#include "deltagraph/delta_store.h"

namespace hgdb {

namespace {

constexpr ComponentMask kComponentByIndex[kNumComponents] = {
    kCompStruct, kCompNodeAttr, kCompEdgeAttr, kCompTransient};

constexpr char kComponentTag[kNumComponents] = {'s', 'n', 'e', 't'};

}  // namespace

std::string DeltaStore::Key(DeltaId id, int component_index) {
  std::string key = "d/";
  key += std::to_string(id);
  key += '/';
  key += kComponentTag[component_index];
  return key;
}

Status DeltaStore::PutDelta(DeltaId id, const Delta& delta, ComponentSizes* sizes) {
  *sizes = ComponentSizes();
  std::string blob;
  for (int c = 0; c < 3; ++c) {  // Deltas have no transient component.
    const ComponentMask mask = kComponentByIndex[c];
    if (delta.ElementCount(mask) == 0) continue;
    delta.EncodeComponent(mask, &blob);
    HG_RETURN_NOT_OK(store_->Put(Key(id, c), blob));
    sizes->bytes[c] = blob.size();
    sizes->elements[c] = delta.ElementCount(mask);
  }
  return Status::OK();
}

Status DeltaStore::GetDelta(DeltaId id, unsigned components,
                            const ComponentSizes& sizes, Delta* out) const {
  *out = Delta();
  std::string blob;
  for (int c = 0; c < 3; ++c) {
    const ComponentMask mask = kComponentByIndex[c];
    if ((components & mask) == 0) continue;
    if (sizes.bytes[c] == 0) continue;  // Component empty; nothing stored.
    HG_RETURN_NOT_OK(store_->Get(Key(id, c), &blob));
    HG_RETURN_NOT_OK(out->DecodeComponent(mask, blob));
  }
  return Status::OK();
}

Status DeltaStore::PutEventList(DeltaId id, const EventList& events,
                                ComponentSizes* sizes) {
  *sizes = ComponentSizes();
  std::string blob;
  for (int c = 0; c < kNumComponents; ++c) {
    const ComponentMask mask = kComponentByIndex[c];
    const size_t count = events.CountComponent(mask);
    if (count == 0) continue;
    events.EncodeComponent(mask, &blob);
    HG_RETURN_NOT_OK(store_->Put(Key(id, c), blob));
    sizes->bytes[c] = blob.size();
    sizes->elements[c] = count;
  }
  return Status::OK();
}

Status DeltaStore::GetEventList(DeltaId id, unsigned components,
                                const ComponentSizes& sizes, EventList* out) const {
  *out = EventList();
  std::string blob;
  for (int c = 0; c < kNumComponents; ++c) {
    const ComponentMask mask = kComponentByIndex[c];
    if ((components & mask) == 0) continue;
    if (sizes.bytes[c] == 0) continue;
    HG_RETURN_NOT_OK(store_->Get(Key(id, c), &blob));
    HG_RETURN_NOT_OK(out->DecodeAndMergeComponent(blob));
  }
  out->FinalizeMerge();
  return Status::OK();
}

Status DeltaStore::DeleteDelta(DeltaId id) {
  for (int c = 0; c < kNumComponents; ++c) {
    HG_RETURN_NOT_OK(store_->Delete(Key(id, c)));
  }
  return Status::OK();
}

Status DeltaStore::PutSkeleton(const Skeleton& skeleton) {
  std::string blob;
  skeleton.EncodeTo(&blob);
  return store_->Put("m/skeleton", blob);
}

Status DeltaStore::GetSkeleton(Skeleton* skeleton) const {
  std::string blob;
  HG_RETURN_NOT_OK(store_->Get("m/skeleton", &blob));
  return Skeleton::DecodeFrom(blob, skeleton);
}

Status DeltaStore::PutMeta(const std::string& key, const std::string& value) {
  return store_->Put("m/" + key, value);
}

Status DeltaStore::GetMeta(const std::string& key, std::string* value) const {
  return store_->Get("m/" + key, value);
}

}  // namespace hgdb
