#ifndef HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_
#define HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "deltagraph/delta_graph.h"

namespace hgdb {

/// \brief Horizontally partitioned DeltaGraph (Sections 4.2 / 4.6).
///
/// The node-id space is hash-partitioned; every event, edge, node, and
/// attribute is assigned to the partition of its primary node id ("based on
/// the node id of the concerned node(s)"). Each partition is an independent
/// DeltaGraph over its own key-value store — in the paper, one Kyoto Cabinet
/// instance per machine; here, one store per partition with one thread per
/// partition standing in for a machine. Snapshot retrieval on each partition
/// is independent and requires no cross-partition communication; results are
/// merged in memory (the Figure 8(b) multicore experiment and the Dataset-3
/// deployment exercise this path).
class PartitionedDeltaGraph {
 public:
  /// One store per partition; all partitions share the same options. Stores
  /// must outlive the index.
  static Result<std::unique_ptr<PartitionedDeltaGraph>> Create(
      std::vector<KVStore*> stores, DeltaGraphOptions options);

  /// The partition an event is routed to: node events and node attributes by
  /// node id, edge events (including edge attributes and transient edges) by
  /// the source endpoint's node id.
  PartitionId PartitionOf(const Event& e) const;
  PartitionId PartitionOfNode(NodeId n) const;

  /// Splits a non-empty initial graph across partitions (nodes and node
  /// attributes by node id, edges and edge attributes by source endpoint).
  Status SetInitialSnapshot(const Snapshot& g0, Timestamp t0);

  Status Append(const Event& e);
  Status AppendAll(const std::vector<Event>& events);
  Status Finalize();

  /// Retrieves the merged snapshot as of `t`, loading partitions in parallel
  /// with `num_threads` workers (<= partition count; 0 = one per partition).
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components = kCompAll,
                               int num_threads = 0);

  /// Per-partition retrieval without merging (a distributed compute engine
  /// keeps partitions separate; see the compute module).
  Result<std::vector<Snapshot>> GetSnapshotParts(Timestamp t,
                                                 unsigned components = kCompAll,
                                                 int num_threads = 0);

  /// Multipoint retrieval: each partition plans one Steiner tree for all the
  /// time points; partitions run in parallel and results are merged per
  /// time point.
  Result<std::vector<Snapshot>> GetSnapshots(const std::vector<Timestamp>& times,
                                             unsigned components = kCompAll,
                                             int num_threads = 0);

  size_t partition_count() const { return partitions_.size(); }
  DeltaGraph* partition(size_t i) { return partitions_[i].get(); }
  const DeltaGraph* partition(size_t i) const { return partitions_[i].get(); }

 private:
  explicit PartitionedDeltaGraph(std::vector<std::unique_ptr<DeltaGraph>> parts)
      : partitions_(std::move(parts)) {}

  std::vector<std::unique_ptr<DeltaGraph>> partitions_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_
