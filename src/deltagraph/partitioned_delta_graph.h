#ifndef HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_
#define HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "deltagraph/delta_graph.h"

namespace hgdb {

class TaskPool;  // src/exec/task_pool.h
class IoPool;    // src/exec/io_pool.h

/// \brief Horizontally partitioned DeltaGraph (Sections 4.2 / 4.6).
///
/// The node-id space is hash-partitioned; every event, edge, node, and
/// attribute is assigned to the partition of its primary node id ("based on
/// the node id of the concerned node(s)"). Each shard is a *full engine*: an
/// independent DeltaGraph over its own key namespace, with its own decoded
/// cache, its own plan, and its own IoPool lane — the paper's one Kyoto
/// Cabinet instance per machine, with one I/O lane per shard standing in for
/// a machine's disk. Snapshot retrieval on each shard is independent and
/// requires no cross-shard communication; results are merged in memory (the
/// Figure 8(b) multicore experiment and the Dataset-3 deployment exercise
/// this path).
///
/// Routing is chunk-aligned: PartitionOfNode hashes `node_id >> 8` and
/// PartitionOfEdge hashes `edge_id >> 8`, so every 256-id block of either id
/// space lands on one shard. Snapshot stores elements in chunks of at most
/// 256 ids (node sets) / 128 ids (edges and attributes), and a 256-id block
/// covers exactly two 128-id chunks, so *every* chunk of a merged snapshot
/// comes from exactly one shard and Snapshot::AbsorbDisjoint adopts it as an
/// O(1) pointer move rather than an element-by-element merge. An edge's
/// attributes route with the edge, so they are always co-located with it (see
/// src/deltagraph/README.md for the merge invariants). Edges are *not*
/// co-located with their endpoints — nothing in the element-wise delta
/// machinery needs them to be.
///
/// Retrieval runs every shard's plan concurrently: multipoint queries plan
/// one Steiner tree per shard, issue every shard's prefetch batch up front
/// (each on the shard's own I/O lane, so the per-shard fetch pipelines
/// overlap in flight), then execute all shard plans as sibling task trees on
/// one shared work-stealing TaskPool.
class PartitionedDeltaGraph {
 public:
  /// One store per partition; all partitions share the same options. Stores
  /// must outlive the index. This is the multi-store deployment shape (one
  /// physical store per shard, e.g. one disk or one machine each).
  static Result<std::unique_ptr<PartitionedDeltaGraph>> Create(
      std::vector<KVStore*> stores, DeltaGraphOptions options);

  /// Single-store deployment shape: carves `shards` private key namespaces
  /// ("s0/", "s1/", ...) out of `base` with prefix wrappers and records the
  /// shard count under "pm/shards" so Open can rebuild the same layout.
  /// `base` must be empty and must outlive the index.
  static Result<std::unique_ptr<PartitionedDeltaGraph>> Create(
      KVStore* base, size_t shards, DeltaGraphOptions options);

  /// Reopens a single-store index previously created by Create(base, n) and
  /// persisted by Finalize.
  static Result<std::unique_ptr<PartitionedDeltaGraph>> Open(KVStore* base);

  /// The partition an event is routed to: node events and node attributes by
  /// node id, edge events (including edge attributes and transient edges) by
  /// edge id.
  PartitionId PartitionOf(const Event& e) const;
  /// Chunk-aligned node routing: all ids in one 256-id block share a shard.
  PartitionId PartitionOfNode(NodeId n) const;
  /// Chunk-aligned edge routing: all ids in one 256-id block share a shard.
  PartitionId PartitionOfEdge(EdgeId e) const;

  /// Splits a non-empty initial graph across partitions (nodes and node
  /// attributes by node id, edges and edge attributes by edge id).
  Status SetInitialSnapshot(const Snapshot& g0, Timestamp t0);

  Status Append(const Event& e);
  /// Buckets `events` per shard and appends each bucket on its own task
  /// (shards ingest independently; per-shard event order is preserved).
  Status AppendAll(const std::vector<Event>& events);
  /// Finalizes every shard, in parallel on the attached pool.
  Status Finalize();

  /// Retrieves the merged snapshot as of `t`.
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components = kCompAll);

  /// Per-partition retrieval without merging (a distributed compute engine
  /// keeps partitions separate; see the compute module).
  Result<std::vector<Snapshot>> GetSnapshotParts(Timestamp t,
                                                 unsigned components = kCompAll);

  /// Multipoint retrieval: each shard plans one Steiner tree for all the
  /// time points; shards run concurrently and results are merged per time
  /// point. Snapshots are returned in the order of `times`.
  Result<std::vector<Snapshot>> GetSnapshots(const std::vector<Timestamp>& times,
                                             unsigned components = kCompAll);

  /// The unmerged core of GetSnapshots: `result[shard][i]` is shard `shard`'s
  /// piece of the snapshot at `times[i]`. Plans every shard, issues all
  /// shards' prefetches up front, then executes the shard plans concurrently
  /// (sibling task trees on one pool) or serially pinned to the prefilled
  /// caches when the resolved pool is serial.
  Result<std::vector<std::vector<Snapshot>>> RetrieveParts(
      const std::vector<Timestamp>& times, unsigned components = kCompAll);

  /// RetrieveParts under an externally owned trace: one "shard" span per
  /// shard plan (carrying that shard's fetches), plus per-shard busy-time
  /// skew attributes on the enclosing "retrieve" span.
  Result<std::vector<std::vector<Snapshot>>> RetrieveParts(
      const std::vector<Timestamp>& times, unsigned components, obs::TraceCtx tc);

  /// Index-shape statistics aggregated across every shard: counts and byte
  /// totals are summed; `height` is the tallest shard's (retrieval cost is
  /// bounded by the deepest traversal, not the sum).
  DeltaGraphStats Stats() const;

  /// Attaches the pool shard plans (and parallel ingest) run on, and forwards
  /// it to every shard. Same contract as DeltaGraph::SetTaskPool: nullptr
  /// forces serial, never calling it defaults to TaskPool::Shared().
  void SetTaskPool(TaskPool* pool);
  TaskPool* task_pool() const { return exec_pool_; }
  bool task_pool_overridden() const { return exec_pool_set_; }
  /// The pool retrieval actually uses (nullptr = forced serial).
  TaskPool* ResolveTaskPool() const;

  /// Forwards to every shard. Each shard keeps its distinct I/O lane
  /// (shard index % io->parallelism()), so shard fetch pipelines drain on
  /// distinct I/O threads.
  void SetIoPool(IoPool* pool);

  /// Forwards to every shard's decoded-payload LRU.
  void SetDecodedCacheCapacity(size_t entries);

  size_t partition_count() const { return partitions_.size(); }
  DeltaGraph* partition(size_t i) { return partitions_[i].get(); }
  const DeltaGraph* partition(size_t i) const { return partitions_[i].get(); }

  /// Pins one cross-shard frontier: every shard's published state, read in
  /// one sweep. Shards publish independently, so the vector is the sharded
  /// analogue of one DeltaGraph::PinFrontier() — a query that resolves all
  /// its shard reads against this vector sees a consistent, immutable view
  /// even while the writer keeps appending.
  std::vector<FrontierPtr> PinFrontiers() const {
    std::vector<FrontierPtr> out;
    out.reserve(partitions_.size());
    for (const auto& p : partitions_) out.push_back(p->PinFrontier());
    return out;
  }

 private:
  PartitionedDeltaGraph(std::vector<std::unique_ptr<DeltaGraph>> parts,
                        std::vector<std::unique_ptr<KVStore>> owned_stores);

  /// Runs `fn(shard)` for every shard — concurrently when the resolved pool
  /// has parallelism, serially otherwise. Returns the first error.
  Status ForEachShard(const std::function<Status(size_t)>& fn);

  // Prefix wrappers created by the single-store Create/Open (empty for the
  // multi-store form). Declared before partitions_ so shards die first.
  std::vector<std::unique_ptr<KVStore>> owned_stores_;
  std::vector<std::unique_ptr<DeltaGraph>> partitions_;
  TaskPool* exec_pool_ = nullptr;  ///< See SetTaskPool.
  bool exec_pool_set_ = false;     ///< False = default to the lazy shared pool.
};

}  // namespace hgdb

#endif  // HISTGRAPH_DELTAGRAPH_PARTITIONED_DELTA_GRAPH_H_
