#ifndef HISTGRAPH_GRAPHPOOL_GRAPH_POOL_H_
#define HISTGRAPH_GRAPHPOOL_GRAPH_POOL_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dynamic_bitset.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/delta.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// Identifier of a graph resident in the pool (an index into the GraphID-bit
/// mapping table, Figure 5(c)).
using PoolGraphId = int32_t;
inline constexpr PoolGraphId kCurrentGraph = 0;

class HistGraphView;

/// \brief GraphPool: many graphs overlaid on one in-memory union graph
/// (Section 6).
///
/// The pool maintains a single graph that is the union of all active graphs:
/// the current graph, retrieved historical snapshots, and materialized
/// DeltaGraph nodes. Every element (node, edge, and each attribute *value*)
/// carries a bitmap (BM) saying which active graphs contain it:
///
///  - Bit 0: membership in the current graph.
///  - Bit 1: elements recently deleted from the current graph but not yet
///    folded into the DeltaGraph index.
///  - Materialized graphs: one bit each.
///  - Historical graphs: a bit *pair* {2i, 2i+1}. An independent graph sets
///    both bits on its members. A *dependent* graph (one that differs from a
///    materialized/current graph in only a few elements) stores only
///    overrides: bit 2i = "membership explicitly overridden here", bit 2i+1 =
///    the overridden membership; unset pairs inherit the dependency's
///    membership. (The paper words the pair the other way around, which
///    would still touch every element; flipping the default to "inherit" is
///    what makes the optimization eliminate the full scan.)
///
/// Cleanup is lazy (Section 6, "Clean-up of a graph from memory"): Release()
/// only marks a slot dead; RunCleaner() later resets bits and evicts elements
/// whose bitmaps become empty.
class GraphPool {
 public:
  GraphPool();

  // -- Current graph -----------------------------------------------------------
  /// (Re)initializes the current graph's membership (bit 0) from `g`.
  void InitCurrent(const Snapshot& g);

  /// Applies one update event to the current graph. Deletions keep the
  /// element in the union and set bit 1 (recently-deleted) until
  /// ClearRecentlyDeleted() is called after the index absorbs the eventlist.
  Status ApplyEventToCurrent(const Event& e);

  /// Drops all bit-1 marks (the recent eventlist was flushed into the index).
  void ClearRecentlyDeleted();

  // -- Overlaying graphs --------------------------------------------------------
  /// Overlays an independent historical snapshot; returns its pool id.
  Result<PoolGraphId> OverlayHistorical(const Snapshot& g);

  /// Overlays one historical graph supplied as disjoint per-shard pieces (a
  /// PartitionedDeltaGraph's GetSnapshotParts output) under a *single* pool
  /// id, without first merging the pieces into one Snapshot. Pieces must be
  /// element-disjoint; each piece's edge attributes must reference edges of
  /// the same piece (shard routing co-locates an edge with its attributes).
  Result<PoolGraphId> OverlayHistoricalParts(const std::vector<Snapshot>& parts);

  /// Overlays a historical snapshot as `base` plus `diff` (the dependent-
  /// graph optimization): only elements in the diff are touched.
  /// `diff` must satisfy: base-graph-membership + diff = overlaid graph.
  Result<PoolGraphId> OverlayDependent(PoolGraphId base, const Delta& diff);

  /// Overlays a materialized DeltaGraph node (single bit).
  Result<PoolGraphId> OverlayMaterialized(const Snapshot& g);

  // -- Membership and access ----------------------------------------------------
  bool ContainsNode(PoolGraphId id, NodeId n) const;
  bool ContainsEdge(PoolGraphId id, EdgeId e) const;
  /// The value of an attribute in graph `id`, or nullptr.
  const std::string* GetNodeAttr(PoolGraphId id, NodeId n, const std::string& key) const;
  const std::string* GetEdgeAttr(PoolGraphId id, EdgeId e, const std::string& key) const;
  const EdgeRecord* FindEdge(EdgeId e) const;

  /// A filtered view of one pool graph (the paper's HistGraph).
  HistGraphView View(PoolGraphId id) const;

  /// Extracts a full standalone copy (testing / handoff).
  Snapshot ExtractSnapshot(PoolGraphId id) const;

  // -- Lifecycle ---------------------------------------------------------------
  /// Marks a graph as no longer needed. Cleanup happens lazily.
  Status Release(PoolGraphId id);

  /// Scans the pool, clearing bits of released graphs and evicting elements
  /// with empty bitmaps. Returns the number of elements evicted.
  size_t RunCleaner();

  // -- Introspection -------------------------------------------------------------
  /// One row of the GraphID-bit mapping table.
  struct SlotInfo {
    PoolGraphId id = -1;
    enum class Kind { kCurrent, kHistorical, kMaterialized } kind = Kind::kHistorical;
    bool active = false;
    int bit0 = -1;          ///< Kind-dependent (see class comment).
    int bit1 = -1;          ///< Historical graphs only.
    PoolGraphId dep = -1;   ///< Dependency, or -1.
  };
  const std::vector<SlotInfo>& slots() const { return slots_; }
  size_t ActiveGraphCount() const;

  size_t UnionNodeCount() const { return nodes_.size(); }
  size_t UnionEdgeCount() const { return edges_.size(); }

  /// All node ids present in the union graph, regardless of membership.
  std::vector<NodeId> UnionNodes() const {
    std::vector<NodeId> out;
    out.reserve(nodes_.size());
    for (const auto& [n, entry] : nodes_) out.push_back(n);
    return out;
  }

  /// Approximate total heap usage: union graph + all bitmaps. This backs the
  /// Figure 8(a) memory plot.
  size_t MemoryBytes() const;

  /// Incident edge ids of `n` in the union graph (callers filter by graph).
  const std::vector<EdgeId>* UnionIncidentEdges(NodeId n) const;

 private:
  friend class HistGraphView;

  /// One attribute value *variant* (Section 6: a graph holds at most one
  /// value per attribute; the pool holds every value any resident graph has,
  /// each with its own membership bitmap). Values are interned ids — the
  /// same id space Snapshots use, so overlaying never touches string bytes.
  struct AttrValue {
    AttrId value = kInvalidAttrId;
    DynamicBitset bm;
  };
  using PoolAttrs = std::unordered_map<AttrId, std::vector<AttrValue>>;

  struct NodeEntry {
    DynamicBitset bm;
    PoolAttrs attrs;
  };
  struct EdgeEntry {
    EdgeRecord rec;
    DynamicBitset bm;
    PoolAttrs attrs;
  };

  // Membership evaluation under the bit-pair/dependency scheme.
  bool MemberOf(const DynamicBitset& bm, PoolGraphId id) const;
  // Sets membership of an element in graph `id` (resolving the slot's bits).
  void SetMembership(DynamicBitset* bm, PoolGraphId id, bool member);

  int AllocateBit();
  PoolGraphId AllocateSlot(SlotInfo::Kind kind, int bits_needed, PoolGraphId dep);

  NodeEntry* EnsureNode(NodeId n);
  EdgeEntry* EnsureEdge(EdgeId e, const EdgeRecord& rec);
  /// Marks every element of `g` as a member of the (historical) slot `id`.
  void OverlayIntoSlot(PoolGraphId id, const Snapshot& g);
  void SetAttrValue(PoolAttrs* attrs, AttrId key, AttrId value, PoolGraphId id);
  /// The value id of `key` in graph `id`, or kInvalidAttrId.
  AttrId FindAttrValue(const PoolAttrs& attrs, AttrId key, PoolGraphId id) const;

  std::vector<SlotInfo> slots_;
  std::vector<int> free_bits_;
  int next_bit_ = 2;  // 0 and 1 are reserved for the current graph.

  std::unordered_map<NodeId, NodeEntry> nodes_;
  std::unordered_map<EdgeId, EdgeEntry> edges_;
  std::unordered_map<NodeId, std::vector<EdgeId>> adjacency_;
};

/// \brief A single graph's read view over the pool (the paper's HistGraph,
/// Section 3.2.1): traversal and attribute access filtered by the graph's
/// bitmap bits.
class HistGraphView {
 public:
  HistGraphView() = default;
  HistGraphView(const GraphPool* pool, PoolGraphId id) : pool_(pool), id_(id) {}

  bool HasNode(NodeId n) const { return pool_->ContainsNode(id_, n); }
  bool HasEdge(EdgeId e) const { return pool_->ContainsEdge(id_, e); }

  /// All node ids in this graph (paper: h.getNodes()).
  std::vector<NodeId> GetNodes() const;

  /// Neighbor node ids of `n` (paper: node.getNeighbors()); for directed
  /// edges both directions are reported (co-citation style traversal), like
  /// the union adjacency the paper overlays.
  std::vector<NodeId> GetNeighbors(NodeId n) const;

  /// Incident edge ids of `n` within this graph.
  std::vector<EdgeId> GetIncidentEdges(NodeId n) const;

  /// Out-neighbors only (directed edges respected; undirected count both ways).
  std::vector<NodeId> GetOutNeighbors(NodeId n) const;

  const EdgeRecord* GetEdgeRecord(EdgeId e) const {
    return HasEdge(e) ? pool_->FindEdge(e) : nullptr;
  }
  const std::string* GetNodeAttr(NodeId n, const std::string& key) const {
    return pool_->GetNodeAttr(id_, n, key);
  }
  const std::string* GetEdgeAttr(EdgeId e, const std::string& key) const {
    return pool_->GetEdgeAttr(id_, e, key);
  }

  size_t CountNodes() const;
  size_t CountEdges() const;

  PoolGraphId id() const { return id_; }
  const GraphPool* pool() const { return pool_; }

 private:
  const GraphPool* pool_ = nullptr;
  PoolGraphId id_ = -1;
};

}  // namespace hgdb

#endif  // HISTGRAPH_GRAPHPOOL_GRAPH_POOL_H_
