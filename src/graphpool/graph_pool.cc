#include "graphpool/graph_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace hgdb {

namespace {

obs::Counter& PoolOverlays() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("graphpool.overlays");
  return *c;
}
obs::Histogram& PoolOverlayUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("graphpool.overlay_us");
  return *h;
}

/// Times one historical-overlay operation into the registry.
class OverlayMeter {
 public:
  OverlayMeter() : on_(obs::MetricsEnabled()) {
    if (on_) start_ = std::chrono::steady_clock::now();
  }
  ~OverlayMeter() {
    if (!on_) return;
    PoolOverlayUs().Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
    PoolOverlays().Add();
  }

 private:
  bool on_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

GraphPool::GraphPool() {
  // Slot 0 is the current graph (bits 0 and 1 reserved).
  SlotInfo current;
  current.id = kCurrentGraph;
  current.kind = SlotInfo::Kind::kCurrent;
  current.active = true;
  current.bit0 = 0;
  current.bit1 = 1;
  slots_.push_back(current);
}

// ---------------------------------------------------------------------------
// Bit-pair membership semantics
// ---------------------------------------------------------------------------

bool GraphPool::MemberOf(const DynamicBitset& bm, PoolGraphId id) const {
  const SlotInfo& s = slots_[id];
  switch (s.kind) {
    case SlotInfo::Kind::kCurrent:
      return bm.Test(0);
    case SlotInfo::Kind::kMaterialized:
      return bm.Test(static_cast<size_t>(s.bit0));
    case SlotInfo::Kind::kHistorical: {
      if (bm.Test(static_cast<size_t>(s.bit0))) {
        return bm.Test(static_cast<size_t>(s.bit1));  // Explicit override.
      }
      return s.dep >= 0 && MemberOf(bm, s.dep);  // Inherit from dependency.
    }
  }
  return false;
}

void GraphPool::SetMembership(DynamicBitset* bm, PoolGraphId id, bool member) {
  const SlotInfo& s = slots_[id];
  switch (s.kind) {
    case SlotInfo::Kind::kCurrent:
      bm->Set(0, member);
      return;
    case SlotInfo::Kind::kMaterialized:
      bm->Set(static_cast<size_t>(s.bit0), member);
      return;
    case SlotInfo::Kind::kHistorical:
      bm->Set(static_cast<size_t>(s.bit0), true);
      bm->Set(static_cast<size_t>(s.bit1), member);
      return;
  }
}

int GraphPool::AllocateBit() {
  if (!free_bits_.empty()) {
    const int bit = free_bits_.back();
    free_bits_.pop_back();
    return bit;
  }
  return next_bit_++;
}

PoolGraphId GraphPool::AllocateSlot(SlotInfo::Kind kind, int bits_needed,
                                    PoolGraphId dep) {
  SlotInfo slot;
  slot.id = static_cast<PoolGraphId>(slots_.size());
  slot.kind = kind;
  slot.active = true;
  slot.dep = dep;
  slot.bit0 = AllocateBit();
  if (bits_needed > 1) slot.bit1 = AllocateBit();
  slots_.push_back(slot);
  return slot.id;
}

// ---------------------------------------------------------------------------
// Union-graph element management
// ---------------------------------------------------------------------------

GraphPool::NodeEntry* GraphPool::EnsureNode(NodeId n) { return &nodes_[n]; }

GraphPool::EdgeEntry* GraphPool::EnsureEdge(EdgeId e, const EdgeRecord& rec) {
  auto [it, inserted] = edges_.try_emplace(e);
  if (inserted) {
    it->second.rec = rec;
    adjacency_[rec.src].push_back(e);
    if (rec.dst != rec.src) adjacency_[rec.dst].push_back(e);
  }
  return &it->second;
}

void GraphPool::SetAttrValue(PoolAttrs* attrs, AttrId key, AttrId value,
                             PoolGraphId id) {
  auto& variants = (*attrs)[key];
  // A graph holds at most one value per attribute: clear membership from any
  // other variant this graph currently sees (including inherited ones).
  for (auto& variant : variants) {
    if (variant.value != value && MemberOf(variant.bm, id)) {
      SetMembership(&variant.bm, id, false);
    }
  }
  for (auto& variant : variants) {
    if (variant.value == value) {
      SetMembership(&variant.bm, id, true);
      return;
    }
  }
  variants.push_back(AttrValue{value, DynamicBitset()});
  SetMembership(&variants.back().bm, id, true);
}

AttrId GraphPool::FindAttrValue(const PoolAttrs& attrs, AttrId key,
                                PoolGraphId id) const {
  auto it = attrs.find(key);
  if (it == attrs.end()) return kInvalidAttrId;
  for (const auto& variant : it->second) {
    if (MemberOf(variant.bm, id)) return variant.value;
  }
  return kInvalidAttrId;
}

// ---------------------------------------------------------------------------
// Current graph
// ---------------------------------------------------------------------------

void GraphPool::InitCurrent(const Snapshot& g) {
  for (NodeId n : g.nodes()) EnsureNode(n)->bm.Set(0);
  for (const auto& [id, rec] : g.edges()) EnsureEdge(id, rec)->bm.Set(0);
  for (const auto& [n, attrs] : g.node_attrs()) {
    NodeEntry* entry = EnsureNode(n);
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&entry->attrs, k, v, kCurrentGraph);
    }
  }
  for (const auto& [e, attrs] : g.edge_attrs()) {
    auto it = edges_.find(e);
    if (it == edges_.end()) continue;  // Attribute of an unknown edge.
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&it->second.attrs, k, v, kCurrentGraph);
    }
  }
}

Status GraphPool::ApplyEventToCurrent(const Event& e) {
  switch (e.type) {
    case EventType::kAddNode:
      EnsureNode(e.node)->bm.Set(0);
      return Status::OK();
    case EventType::kDeleteNode: {
      auto it = nodes_.find(e.node);
      if (it == nodes_.end()) return Status::InvalidArgument("delete of unknown node");
      it->second.bm.Set(0, false);
      it->second.bm.Set(1, true);  // Recently deleted; not yet indexed.
      return Status::OK();
    }
    case EventType::kAddEdge:
      EnsureEdge(e.edge, EdgeRecord{e.src, e.dst, e.directed})->bm.Set(0);
      return Status::OK();
    case EventType::kDeleteEdge: {
      auto it = edges_.find(e.edge);
      if (it == edges_.end()) return Status::InvalidArgument("delete of unknown edge");
      it->second.bm.Set(0, false);
      it->second.bm.Set(1, true);
      return Status::OK();
    }
    case EventType::kNodeAttr: {
      NodeEntry* entry = EnsureNode(e.node);
      if (e.new_value.has_value()) {
        SetAttrValue(&entry->attrs, InternAttr(e.key), InternAttr(*e.new_value),
                     kCurrentGraph);
      } else if (e.old_value.has_value()) {
        auto it = entry->attrs.find(InternAttr(e.key));
        if (it != entry->attrs.end()) {
          const AttrId old_id = InternAttr(*e.old_value);
          for (auto& variant : it->second) {
            if (variant.value == old_id) {
              variant.bm.Set(0, false);
              variant.bm.Set(1, true);
            }
          }
        }
      }
      return Status::OK();
    }
    case EventType::kEdgeAttr: {
      auto eit = edges_.find(e.edge);
      if (eit == edges_.end()) {
        return Status::InvalidArgument("attr update of unknown edge");
      }
      if (e.new_value.has_value()) {
        SetAttrValue(&eit->second.attrs, InternAttr(e.key), InternAttr(*e.new_value),
                     kCurrentGraph);
      } else if (e.old_value.has_value()) {
        auto it = eit->second.attrs.find(InternAttr(e.key));
        if (it != eit->second.attrs.end()) {
          const AttrId old_id = InternAttr(*e.old_value);
          for (auto& variant : it->second) {
            if (variant.value == old_id) {
              variant.bm.Set(0, false);
              variant.bm.Set(1, true);
            }
          }
        }
      }
      return Status::OK();
    }
    case EventType::kTransientEdge:
    case EventType::kTransientNode:
      return Status::OK();  // Transients are never part of the current graph.
  }
  return Status::OK();
}

void GraphPool::ClearRecentlyDeleted() {
  for (auto& [n, entry] : nodes_) {
    entry.bm.Set(1, false);
    for (auto& [k, variants] : entry.attrs) {
      for (auto& v : variants) v.bm.Set(1, false);
    }
  }
  for (auto& [e, entry] : edges_) {
    entry.bm.Set(1, false);
    for (auto& [k, variants] : entry.attrs) {
      for (auto& v : variants) v.bm.Set(1, false);
    }
  }
}

// ---------------------------------------------------------------------------
// Overlays
// ---------------------------------------------------------------------------

void GraphPool::OverlayIntoSlot(PoolGraphId id, const Snapshot& g) {
  for (NodeId n : g.nodes()) SetMembership(&EnsureNode(n)->bm, id, true);
  for (const auto& [e, rec] : g.edges()) {
    SetMembership(&EnsureEdge(e, rec)->bm, id, true);
  }
  for (const auto& [n, attrs] : g.node_attrs()) {
    NodeEntry* entry = EnsureNode(n);
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&entry->attrs, k, v, id);
    }
  }
  for (const auto& [e, attrs] : g.edge_attrs()) {
    auto it = edges_.find(e);
    if (it == edges_.end()) continue;
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&it->second.attrs, k, v, id);
    }
  }
}

Result<PoolGraphId> GraphPool::OverlayHistorical(const Snapshot& g) {
  OverlayMeter meter;
  const PoolGraphId id = AllocateSlot(SlotInfo::Kind::kHistorical, 2, -1);
  OverlayIntoSlot(id, g);
  return id;
}

Result<PoolGraphId> GraphPool::OverlayHistoricalParts(
    const std::vector<Snapshot>& parts) {
  OverlayMeter meter;
  const PoolGraphId id = AllocateSlot(SlotInfo::Kind::kHistorical, 2, -1);
  // One slot, many disjoint pieces: each piece's elements are marked under
  // the same bit pair, so the overlaid graph is the union of the pieces —
  // the merged snapshot — without ever materializing that merge.
  for (const Snapshot& part : parts) OverlayIntoSlot(id, part);
  return id;
}

Result<PoolGraphId> GraphPool::OverlayDependent(PoolGraphId base, const Delta& diff) {
  if (base < 0 || static_cast<size_t>(base) >= slots_.size() || !slots_[base].active) {
    return Status::InvalidArgument("dependent overlay: bad base graph");
  }
  const PoolGraphId id = AllocateSlot(SlotInfo::Kind::kHistorical, 2, base);
  // Only the symmetric difference is touched — the point of the bit pair.
  for (NodeId n : diff.add_nodes) SetMembership(&EnsureNode(n)->bm, id, true);
  for (NodeId n : diff.del_nodes) {
    auto it = nodes_.find(n);
    if (it != nodes_.end()) SetMembership(&it->second.bm, id, false);
  }
  for (const auto& [e, rec] : diff.add_edges) {
    SetMembership(&EnsureEdge(e, rec)->bm, id, true);
  }
  for (const auto& [e, rec] : diff.del_edges) {
    auto it = edges_.find(e);
    if (it != edges_.end()) SetMembership(&it->second.bm, id, false);
  }
  // AttrEntry keys/values are already interned ids; no lookup needed.
  auto key_of = [](const AttrEntry& a) { return a.key; };
  auto value_of = [](const AttrEntry& a) { return a.value; };
  for (const auto& a : diff.del_node_attrs) {
    auto nit = nodes_.find(a.owner);
    if (nit == nodes_.end()) continue;
    auto it = nit->second.attrs.find(key_of(a));
    if (it == nit->second.attrs.end()) continue;
    const AttrId vid = value_of(a);
    for (auto& variant : it->second) {
      if (variant.value == vid) SetMembership(&variant.bm, id, false);
    }
  }
  for (const auto& a : diff.add_node_attrs) {
    SetAttrValue(&EnsureNode(a.owner)->attrs, key_of(a), value_of(a), id);
  }
  for (const auto& a : diff.del_edge_attrs) {
    auto eit = edges_.find(a.owner);
    if (eit == edges_.end()) continue;
    auto it = eit->second.attrs.find(key_of(a));
    if (it == eit->second.attrs.end()) continue;
    const AttrId vid = value_of(a);
    for (auto& variant : it->second) {
      if (variant.value == vid) SetMembership(&variant.bm, id, false);
    }
  }
  for (const auto& a : diff.add_edge_attrs) {
    auto eit = edges_.find(a.owner);
    if (eit == edges_.end()) continue;
    SetAttrValue(&eit->second.attrs, key_of(a), value_of(a), id);
  }
  return id;
}

Result<PoolGraphId> GraphPool::OverlayMaterialized(const Snapshot& g) {
  const PoolGraphId id = AllocateSlot(SlotInfo::Kind::kMaterialized, 1, -1);
  for (NodeId n : g.nodes()) SetMembership(&EnsureNode(n)->bm, id, true);
  for (const auto& [e, rec] : g.edges()) {
    SetMembership(&EnsureEdge(e, rec)->bm, id, true);
  }
  for (const auto& [n, attrs] : g.node_attrs()) {
    NodeEntry* entry = EnsureNode(n);
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&entry->attrs, k, v, id);
    }
  }
  for (const auto& [e, attrs] : g.edge_attrs()) {
    auto it = edges_.find(e);
    if (it == edges_.end()) continue;
    for (const auto& [k, v] : attrs) {
      SetAttrValue(&it->second.attrs, k, v, id);
    }
  }
  return id;
}

// ---------------------------------------------------------------------------
// Membership / access
// ---------------------------------------------------------------------------

bool GraphPool::ContainsNode(PoolGraphId id, NodeId n) const {
  auto it = nodes_.find(n);
  return it != nodes_.end() && MemberOf(it->second.bm, id);
}

bool GraphPool::ContainsEdge(PoolGraphId id, EdgeId e) const {
  auto it = edges_.find(e);
  return it != edges_.end() && MemberOf(it->second.bm, id);
}

const std::string* GraphPool::GetNodeAttr(PoolGraphId id, NodeId n,
                                          const std::string& key) const {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return nullptr;
  auto it = nodes_.find(n);
  if (it == nodes_.end()) return nullptr;
  const AttrId vid = FindAttrValue(it->second.attrs, kid, id);
  return vid == kInvalidAttrId ? nullptr : &AttrStr(vid);
}

const std::string* GraphPool::GetEdgeAttr(PoolGraphId id, EdgeId e,
                                          const std::string& key) const {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return nullptr;
  auto it = edges_.find(e);
  if (it == edges_.end()) return nullptr;
  const AttrId vid = FindAttrValue(it->second.attrs, kid, id);
  return vid == kInvalidAttrId ? nullptr : &AttrStr(vid);
}

const EdgeRecord* GraphPool::FindEdge(EdgeId e) const {
  auto it = edges_.find(e);
  return it == edges_.end() ? nullptr : &it->second.rec;
}

HistGraphView GraphPool::View(PoolGraphId id) const { return HistGraphView(this, id); }

Snapshot GraphPool::ExtractSnapshot(PoolGraphId id) const {
  Snapshot out;
  for (const auto& [n, entry] : nodes_) {
    if (MemberOf(entry.bm, id)) out.AddNode(n);
    for (const auto& [k, variants] : entry.attrs) {
      for (const auto& variant : variants) {
        if (MemberOf(variant.bm, id)) out.SetNodeAttrId(n, k, variant.value);
      }
    }
  }
  for (const auto& [e, entry] : edges_) {
    if (MemberOf(entry.bm, id)) out.AddEdge(e, entry.rec);
    for (const auto& [k, variants] : entry.attrs) {
      for (const auto& variant : variants) {
        if (MemberOf(variant.bm, id)) out.SetEdgeAttrId(e, k, variant.value);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Status GraphPool::Release(PoolGraphId id) {
  if (id <= 0 || static_cast<size_t>(id) >= slots_.size()) {
    return Status::InvalidArgument("release: bad graph id (current graph is pinned)");
  }
  if (!slots_[id].active) return Status::OK();
  for (const auto& s : slots_) {
    if (s.active && s.dep == id && s.id != id) {
      return Status::InvalidArgument(
          "release: graph " + std::to_string(s.id) + " still depends on it");
    }
  }
  slots_[id].active = false;  // Bits are reclaimed lazily by RunCleaner.
  return Status::OK();
}

size_t GraphPool::RunCleaner() {
  // Bits belonging to released slots.
  std::vector<int> dead_bits;
  for (auto& s : slots_) {
    if (!s.active && s.bit0 >= 0) {
      dead_bits.push_back(s.bit0);
      if (s.bit1 >= 0) dead_bits.push_back(s.bit1);
      free_bits_.push_back(s.bit0);
      if (s.bit1 >= 0) free_bits_.push_back(s.bit1);
      s.bit0 = s.bit1 = -1;
    }
  }
  auto scrub = [&dead_bits](DynamicBitset* bm) {
    for (int b : dead_bits) bm->Set(static_cast<size_t>(b), false);
  };

  size_t evicted = 0;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    scrub(&it->second.bm);
    for (auto ait = it->second.attrs.begin(); ait != it->second.attrs.end();) {
      auto& variants = ait->second;
      for (auto vit = variants.begin(); vit != variants.end();) {
        scrub(&vit->bm);
        if (vit->bm.None()) {
          vit = variants.erase(vit);
          ++evicted;
        } else {
          ++vit;
        }
      }
      ait = variants.empty() ? it->second.attrs.erase(ait) : std::next(ait);
    }
    if (it->second.bm.None() && it->second.attrs.empty()) {
      adjacency_.erase(it->first);
      it = nodes_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  for (auto it = edges_.begin(); it != edges_.end();) {
    scrub(&it->second.bm);
    for (auto ait = it->second.attrs.begin(); ait != it->second.attrs.end();) {
      auto& variants = ait->second;
      for (auto vit = variants.begin(); vit != variants.end();) {
        scrub(&vit->bm);
        if (vit->bm.None()) {
          vit = variants.erase(vit);
          ++evicted;
        } else {
          ++vit;
        }
      }
      ait = variants.empty() ? it->second.attrs.erase(ait) : std::next(ait);
    }
    if (it->second.bm.None() && it->second.attrs.empty()) {
      const EdgeRecord rec = it->second.rec;
      auto drop = [this](NodeId n, EdgeId e) {
        auto ait = adjacency_.find(n);
        if (ait == adjacency_.end()) return;
        auto& v = ait->second;
        v.erase(std::remove(v.begin(), v.end(), e), v.end());
        if (v.empty()) adjacency_.erase(ait);
      };
      drop(rec.src, it->first);
      drop(rec.dst, it->first);
      it = edges_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t GraphPool::ActiveGraphCount() const {
  size_t n = 0;
  for (const auto& s : slots_) {
    if (s.active) ++n;
  }
  return n;
}

size_t GraphPool::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [n, entry] : nodes_) {
    bytes += sizeof(NodeId) + sizeof(NodeEntry) + entry.bm.MemoryBytes();
    for (const auto& [k, variants] : entry.attrs) {
      bytes += sizeof(AttrId);
      for (const auto& v : variants) {
        bytes += v.bm.MemoryBytes() + sizeof(AttrValue);
      }
    }
  }
  for (const auto& [e, entry] : edges_) {
    bytes += sizeof(EdgeId) + sizeof(EdgeEntry) + entry.bm.MemoryBytes();
    for (const auto& [k, variants] : entry.attrs) {
      bytes += sizeof(AttrId);
      for (const auto& v : variants) {
        bytes += v.bm.MemoryBytes() + sizeof(AttrValue);
      }
    }
  }
  for (const auto& [n, edges] : adjacency_) {
    bytes += sizeof(NodeId) + edges.capacity() * sizeof(EdgeId);
  }
  return bytes;
}

const std::vector<EdgeId>* GraphPool::UnionIncidentEdges(NodeId n) const {
  auto it = adjacency_.find(n);
  return it == adjacency_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// HistGraphView
// ---------------------------------------------------------------------------

std::vector<NodeId> HistGraphView::GetNodes() const {
  std::vector<NodeId> out;
  for (const auto& [n, entry] : pool_->nodes_) {
    if (pool_->MemberOf(entry.bm, id_)) out.push_back(n);
  }
  return out;
}

std::vector<EdgeId> HistGraphView::GetIncidentEdges(NodeId n) const {
  std::vector<EdgeId> out;
  const std::vector<EdgeId>* union_edges = pool_->UnionIncidentEdges(n);
  if (union_edges == nullptr) return out;
  for (EdgeId e : *union_edges) {
    auto it = pool_->edges_.find(e);
    if (it != pool_->edges_.end() && pool_->MemberOf(it->second.bm, id_)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<NodeId> HistGraphView::GetNeighbors(NodeId n) const {
  // One hash lookup per edge: the membership test itself is a couple of
  // bit probes, which is what keeps the paper's bitmap penalty small.
  std::vector<NodeId> out;
  const std::vector<EdgeId>* union_edges = pool_->UnionIncidentEdges(n);
  if (union_edges == nullptr) return out;
  for (EdgeId e : *union_edges) {
    auto it = pool_->edges_.find(e);
    if (it == pool_->edges_.end() || !pool_->MemberOf(it->second.bm, id_)) continue;
    const EdgeRecord& rec = it->second.rec;
    out.push_back(rec.src == n ? rec.dst : rec.src);
  }
  return out;
}

std::vector<NodeId> HistGraphView::GetOutNeighbors(NodeId n) const {
  std::vector<NodeId> out;
  const std::vector<EdgeId>* union_edges = pool_->UnionIncidentEdges(n);
  if (union_edges == nullptr) return out;
  for (EdgeId e : *union_edges) {
    auto it = pool_->edges_.find(e);
    if (it == pool_->edges_.end() || !pool_->MemberOf(it->second.bm, id_)) continue;
    const EdgeRecord& rec = it->second.rec;
    if (!rec.directed) {
      out.push_back(rec.src == n ? rec.dst : rec.src);
    } else if (rec.src == n) {
      out.push_back(rec.dst);
    }
  }
  return out;
}

size_t HistGraphView::CountNodes() const {
  size_t count = 0;
  for (const auto& [n, entry] : pool_->nodes_) {
    if (pool_->MemberOf(entry.bm, id_)) ++count;
  }
  return count;
}

size_t HistGraphView::CountEdges() const {
  size_t count = 0;
  for (const auto& [e, entry] : pool_->edges_) {
    if (pool_->MemberOf(entry.bm, id_)) ++count;
  }
  return count;
}

}  // namespace hgdb
