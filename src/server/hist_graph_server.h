#ifndef HISTGRAPH_SERVER_HIST_GRAPH_SERVER_H_
#define HISTGRAPH_SERVER_HIST_GRAPH_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "adaptive/materialization_advisor.h"
#include "common/result.h"
#include "core/graph_manager.h"

namespace hgdb {

/// Configuration of the service front end.
struct HistGraphServerOptions {
  GraphManagerOptions manager;

  /// Queries admitted concurrently; one more is rejected with Unavailable
  /// rather than queued (open-loop callers retry or shed). Values <= 0
  /// reject every query — useful for drain/maintenance and for testing the
  /// rejection path deterministically.
  int max_concurrent_queries = 64;

  /// Ingest operations (Append batches / Finalize markers) buffered ahead of
  /// the ingest strand; a full queue rejects Append with Unavailable instead
  /// of blocking the producer.
  size_t max_ingest_queue = 4096;

  /// Deadline applied to queries that don't pass their own, in microseconds
  /// of wall time from admission. 0 = none. Deadlines are cooperative:
  /// checked at stage boundaries (admission, frontier pin, execution done),
  /// so a query can overshoot by at most one stage.
  int64_t default_deadline_us = 0;

  /// Tuning of the traffic-adaptive materialization policy. Its budget_bytes
  /// is ignored: the budget comes from manager.materialization_budget_bytes
  /// (one knob), with the HISTGRAPH_MAT_BUDGET environment override. A
  /// resolved budget of 0 means no advisor runs at all.
  MaterializationAdvisorOptions advisor;

  /// How often the ingest strand runs an advisor decision tick, in
  /// microseconds. Ticks run between queued ops (never preempting one) and
  /// while idle. <= 0 disables periodic ticks — RunAdvisorOnce still works,
  /// which is how deterministic tests drive the policy.
  int64_t advisor_tick_us = 50000;

  // -- Observability (see src/obs/README.md) ----------------------------------

  /// Production trace sampling: 1 in every N queries allocates a full trace
  /// that lands in the flight recorder (src/obs/sampler.h). 0 disables
  /// sampling, -1 keeps whatever the process-wide sampler is already
  /// configured with (environment or a previous server). The sampler and
  /// flight recorder are process-wide singletons: the last constructed
  /// server's options win.
  int trace_sample_every_n = 64;

  /// Slow-query threshold in wall microseconds: a query at/above it is
  /// retained in the flight recorder's slow-query log, and its latency arms
  /// the sampler to force-trace the next `trace_arm_budget` queries (a slow
  /// query cannot be traced retroactively; its successors in a bursty tail
  /// can). 0 disables latency-based slow capture and tail arming.
  int64_t slow_query_us = 0;

  /// Queries force-traced after an over-threshold latency observation.
  int trace_arm_budget = 4;

  /// Flight-recorder ring capacities; 0 keeps the recorder's current
  /// (default or env-configured) capacity.
  size_t flight_recent_capacity = 0;
  size_t flight_slow_capacity = 0;

  /// Ingest watchdog: an op that has been executing on the ingest strand for
  /// longer than this budget (wall microseconds) is flagged — once per op —
  /// via server.watchdog_stalls and the stats/StatusJSON surface. The
  /// watchdog only ever observes and counts; it never interrupts or kills
  /// the strand. <= 0 disables the watchdog thread entirely.
  int64_t watchdog_budget_us = 1000000;
};

/// \brief Service-shaped front end over one GraphManager: a single ingest
/// strand, concurrent admitted queries, per-query deadlines.
///
/// The paper's target deployment ("heavy traffic from millions of users")
/// needs ingest and retrieval to run concurrently. The epoch-based frontier
/// machinery (src/deltagraph/frontier.h) makes that safe at the storage
/// layer: every mutation publishes an immutable FrontierState, and every
/// query pins one. The server supplies the process shape on top:
///
///  - **One ingest strand.** Append/Finalize enqueue onto a bounded FIFO
///    drained by a dedicated thread, pipeline-stage style (samgraph's
///    queued-stage engine): callers never wait for a leaf cut, an encode, or
///    a KV write, and Finalize is a background stage that never blocks
///    readers — readers were never blocked to begin with, since they only
///    ever read published frontiers. A full queue fails fast (Unavailable).
///  - **Admission control.** At most max_concurrent_queries queries run at
///    once; the next one is rejected, not queued, keeping tail latency
///    bounded under overload.
///  - **Deadlines.** Each query carries a deadline (its own or the server
///    default), checked cooperatively at stage boundaries.
///
/// Results carry the pinned epoch and its event count, so a caller (or an
/// oracle test) can state exactly which prefix of the ingest log the answer
/// reflects.
///
/// The server is also the process's observability front end: it configures
/// the production trace sampler and flight recorder (sampled always-on
/// tracing with slow-query capture), runs a watchdog over the ingest strand
/// (dwell time, epoch-publish latency, stall flagging — never killing), and
/// exports everything through StatusJSON().
class HistGraphServer {
 public:
  /// Creates a fresh database under the server. `store` must outlive it.
  static Result<std::unique_ptr<HistGraphServer>> Create(
      KVStore* store, HistGraphServerOptions options);
  /// Reopens a previously finalized database.
  static Result<std::unique_ptr<HistGraphServer>> Open(
      KVStore* store, HistGraphServerOptions options = {});

  /// Stops the ingest strand after draining whatever is queued.
  ~HistGraphServer();

  HistGraphServer(const HistGraphServer&) = delete;
  HistGraphServer& operator=(const HistGraphServer&) = delete;

  // -- Ingest (asynchronous; applied in submission order) ---------------------

  /// Queues one batch of events for the ingest strand. The batch lands under
  /// one epoch (readers never observe it torn). Returns Unavailable when the
  /// ingest queue is full, or the sticky ingest error if a previous batch
  /// failed to apply.
  Status Append(std::vector<Event> batch);

  /// Queues a finalize (flush trailing events, persist index meta) behind
  /// everything appended so far. Never blocks readers.
  Status Finalize();

  /// Blocks until the ingest strand has drained everything queued before
  /// this call, then returns the sticky ingest error (OK when none).
  Status Flush();

  // -- Adaptive materialization -----------------------------------------------

  /// Queues one advisor decision tick behind everything appended so far,
  /// waits for it, and returns what it did. This is the deterministic
  /// driver for tests and benches (periodic ticks race the caller's clock;
  /// this does not). InvalidArgument when the advisor is disabled. If
  /// periodic ticks run concurrently, the returned TickResult may be from a
  /// newer tick than the queued one — same strand, never torn.
  Result<MaterializationAdvisor::TickResult> RunAdvisorOnce();

  /// The advisor, or nullptr when the resolved budget is 0. Exposed for
  /// introspection (budget/residency accessors, metrics export
  /// registration); do not call Tick directly — use RunAdvisorOnce so it
  /// runs on the ingest strand.
  MaterializationAdvisor* advisor() { return advisor_.get(); }

  // -- Queries (concurrent; each pins one frontier) ---------------------------

  struct QueryResult {
    std::vector<Snapshot> snapshots;  ///< In the order of the query's times.
    uint64_t epoch = 0;               ///< The pinned frontier's epoch.
    /// Events visible at the pinned frontier: the result equals a naive
    /// replay of exactly the first `event_count` appended events.
    size_t event_count = 0;
  };

  /// Multipoint retrieval at the server's current frontier. `deadline_us` in
  /// wall microseconds from admission; -1 uses the server default, 0 means
  /// no deadline.
  Result<QueryResult> Retrieve(const std::vector<Timestamp>& times,
                               unsigned components = kCompAll,
                               int64_t deadline_us = -1);

  Result<QueryResult> GetSnapshot(Timestamp t, unsigned components = kCompAll,
                                  int64_t deadline_us = -1) {
    return Retrieve({t}, components, deadline_us);
  }
  Result<QueryResult> GetSnapshots(const std::vector<Timestamp>& times,
                                   unsigned components = kCompAll,
                                   int64_t deadline_us = -1) {
    return Retrieve(times, components, deadline_us);
  }

  // -- Introspection ----------------------------------------------------------

  struct Stats {
    uint64_t queries_admitted = 0;
    uint64_t queries_rejected = 0;   ///< Admission-limit rejections.
    uint64_t deadlines_exceeded = 0;
    uint64_t batches_appended = 0;   ///< Applied by the ingest strand.
    uint64_t events_appended = 0;
    uint64_t finalizes = 0;
    uint64_t appends_rejected = 0;   ///< Queue-full rejections.
    uint64_t frontier_epoch = 0;     ///< Published epoch at the stats read.
    uint64_t slow_queries = 0;       ///< Queries at/over slow_query_us.
    uint64_t watchdog_stalls = 0;    ///< Ingest ops flagged over budget.
    uint64_t ingest_queue_depth = 0; ///< Ops queued at the stats read.
  };
  Stats stats() const;

  /// One JSON object describing the whole server right now: lifetime
  /// counters, ingest-strand state (queue depth/age, lag, watchdog), the
  /// published frontier (epoch, event count, age since last publish), the
  /// flight recorder's retained traces, and the full metrics registry
  /// (including the server.stage_* latency-attribution histograms). This is
  /// the statz surface rendered by tools/statz_view.
  std::string StatusJSON() const;

  /// The epoch a query admitted right now would pin.
  uint64_t frontier_epoch() const;

  GraphManager& manager() { return *manager_; }
  const GraphManager& manager() const { return *manager_; }

  /// Test hook: makes the ingest strand sleep this long before applying each
  /// op, so a test can fill the bounded queue deterministically.
  void SetIngestDelayForTesting(int64_t us) {
    ingest_delay_us_.store(us, std::memory_order_relaxed);
  }

 private:
  explicit HistGraphServer(std::unique_ptr<GraphManager> manager,
                           HistGraphServerOptions options);

  struct IngestOp {
    std::vector<Event> batch;  ///< Empty for a finalize/advise marker.
    bool finalize = false;
    bool advise = false;  ///< RunAdvisorOnce marker: run one advisor tick.
    uint64_t seq = 0;
    /// When the op entered the queue (steady clock, ns) — the watchdog and
    /// the epoch-publish histogram measure from here.
    int64_t enqueued_ns = 0;
  };

  void IngestLoop();
  void WatchdogLoop();
  /// Enqueues `op`; Unavailable when the queue is full.
  Status EnqueueIngest(IngestOp op);
  /// Runs one advisor tick on the calling (ingest) thread and publishes the
  /// outcome to server.mat_* metrics and last_tick_*. Caller must NOT hold
  /// ingest_mu_ (the tick runs real retrievals).
  void RunAdvisorTick();

  HistGraphServerOptions options_;
  std::unique_ptr<GraphManager> manager_;
  /// Non-null iff the resolved materialization budget is > 0. Ticks only on
  /// the ingest strand, so its mutations serialize with appends by
  /// construction.
  std::unique_ptr<MaterializationAdvisor> advisor_;

  /// Guards the last advisor tick outcome (written by the ingest strand,
  /// read by RunAdvisorOnce). Separate from ingest_mu_: the tick itself runs
  /// with no lock held.
  mutable std::mutex advisor_mu_;
  Status last_tick_status_;
  MaterializationAdvisor::TickResult last_tick_result_;

  // Ingest strand state. `ingest_mu_` guards the queue, sequence counters,
  // and the sticky error; the strand signals `drained_cv_` whenever it
  // finishes an op so Flush can wait for a sequence point.
  mutable std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;   ///< Strand wakeup: work or shutdown.
  std::condition_variable drained_cv_;  ///< Flush wakeup: op completed.
  std::deque<IngestOp> ingest_queue_;
  uint64_t next_seq_ = 1;      ///< Sequence of the next enqueued op.
  uint64_t applied_seq_ = 0;   ///< Highest op sequence fully applied.
  Status ingest_error_;        ///< Sticky: first failure, kept forever.
  bool stopping_ = false;
  std::atomic<int64_t> ingest_delay_us_{0};

  // Admission + stats (all relaxed; stats are advisory).
  std::atomic<int> active_queries_{0};
  std::atomic<uint64_t> queries_admitted_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};
  std::atomic<uint64_t> batches_appended_{0};
  std::atomic<uint64_t> events_appended_{0};
  std::atomic<uint64_t> finalizes_{0};
  std::atomic<uint64_t> appends_rejected_{0};
  std::atomic<uint64_t> slow_queries_{0};

  // Watchdog view of the ingest strand (all relaxed: the watchdog only ever
  // observes; a torn read costs at most one late or spurious-free tick).
  // The strand publishes which op it is executing and since when; 0 seq =
  // idle. `watchdog_flagged_seq_` makes the stall flag once-per-op.
  std::atomic<uint64_t> op_active_seq_{0};
  std::atomic<int64_t> op_started_ns_{0};
  std::atomic<int64_t> op_enqueued_ns_{0};
  std::atomic<int64_t> last_publish_ns_{0};  ///< Last epoch-publishing op done.
  std::atomic<uint64_t> watchdog_flagged_seq_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;  ///< Shutdown wakeup only.
  bool watchdog_stop_ = false;

  // Threads last: joined by the destructor after members they touch.
  std::thread watchdog_thread_;
  std::thread ingest_thread_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_SERVER_HIST_GRAPH_SERVER_H_
