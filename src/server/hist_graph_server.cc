#include "server/hist_graph_server.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stages.h"
#include "obs/trace.h"

namespace hgdb {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendQuoted(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

obs::Histogram& QueryLatency() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("server.query_us");
  return *h;
}
obs::Counter& QueriesServed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.queries");
  return *c;
}
obs::Counter& QueriesShed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.rejected");
  return *c;
}
obs::Counter& QueriesTimedOut() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.deadline_exceeded");
  return *c;
}
obs::Counter& MatTicks() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_ticks");
  return *c;
}
obs::Counter& MatMaterializations() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_materializations");
  return *c;
}
obs::Counter& MatEvictions() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_evictions");
  return *c;
}
obs::Gauge& MatResidentBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_resident_bytes");
  return *g;
}
obs::Gauge& MatResidentNodes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_resident_nodes");
  return *g;
}
obs::Gauge& MatBudgetBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_budget_bytes");
  return *g;
}
obs::Histogram& IngestDwell() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("server.ingest_dwell_us");
  return *h;
}
obs::Histogram& EpochPublish() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("server.epoch_publish_us");
  return *h;
}
obs::Gauge& IngestQueueDepth() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.ingest_queue_depth");
  return *g;
}
obs::Gauge& IngestLag() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.ingest_lag_us");
  return *g;
}
obs::Counter& WatchdogStalls() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.watchdog_stalls");
  return *c;
}
obs::Counter& SlowQueries() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.slow_queries");
  return *c;
}

}  // namespace

Result<std::unique_ptr<HistGraphServer>> HistGraphServer::Create(
    KVStore* store, HistGraphServerOptions options) {
  auto gm = GraphManager::Create(store, options.manager);
  if (!gm.ok()) return gm.status();
  return std::unique_ptr<HistGraphServer>(
      new HistGraphServer(std::move(gm).value(), std::move(options)));
}

Result<std::unique_ptr<HistGraphServer>> HistGraphServer::Open(
    KVStore* store, HistGraphServerOptions options) {
  auto gm = GraphManager::Open(store, options.manager);
  if (!gm.ok()) return gm.status();
  return std::unique_ptr<HistGraphServer>(
      new HistGraphServer(std::move(gm).value(), std::move(options)));
}

HistGraphServer::HistGraphServer(std::unique_ptr<GraphManager> manager,
                                 HistGraphServerOptions options)
    : options_(std::move(options)), manager_(std::move(manager)) {
  // The budget knob lives on the manager options (HISTGRAPH_MAT_BUDGET
  // overrides); the rest of the advisor tuning rides on options_.advisor.
  MaterializationAdvisorOptions aopts = options_.advisor;
  aopts.budget_bytes = options_.manager.materialization_budget_bytes;
  if (MaterializationAdvisor::ResolveBudgetBytes(aopts.budget_bytes) > 0) {
    advisor_ = std::make_unique<MaterializationAdvisor>(aopts);
    advisor_->Attach(&manager_->index());
    MatBudgetBytes().Set(static_cast<int64_t>(advisor_->budget_bytes()));
  }
  // Apply the observability options to the process-wide sampler and flight
  // recorder (last constructed server wins; -1 sampling keeps the current
  // configuration).
  if (options_.trace_sample_every_n >= 0) {
    obs::TraceSampler::Global().Configure(
        static_cast<uint32_t>(options_.trace_sample_every_n),
        std::max<int64_t>(options_.slow_query_us, 0),
        static_cast<uint32_t>(std::max(options_.trace_arm_budget, 0)));
  }
  obs::FlightRecorder::Global().Configure(options_.flight_recent_capacity,
                                          options_.flight_slow_capacity,
                                          std::max<int64_t>(options_.slow_query_us, 0));
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  if (options_.watchdog_budget_us > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  ingest_thread_ = std::thread([this] { IngestLoop(); });
}

HistGraphServer::~HistGraphServer() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stopping_ = true;
  }
  ingest_cv_.notify_all();
  ingest_thread_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
}

// -- Ingest strand -------------------------------------------------------------

Status HistGraphServer::EnqueueIngest(IngestOp op) {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (stopping_) return Status::Unavailable("server is shutting down");
    // Surface a poisoned strand immediately: once a batch failed to apply,
    // later batches would be applied against inconsistent state, so the
    // strand discards them and producers see the original error.
    if (!ingest_error_.ok()) return ingest_error_;
    if (ingest_queue_.size() >= options_.max_ingest_queue) {
      appends_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("ingest queue full");
    }
    op.seq = next_seq_++;
    op.enqueued_ns = SteadyNowNs();
    ingest_queue_.push_back(std::move(op));
    IngestQueueDepth().Set(static_cast<int64_t>(ingest_queue_.size()));
  }
  ingest_cv_.notify_one();
  return Status::OK();
}

Status HistGraphServer::Append(std::vector<Event> batch) {
  if (batch.empty()) return Status::OK();
  IngestOp op;
  op.batch = std::move(batch);
  return EnqueueIngest(std::move(op));
}

Status HistGraphServer::Finalize() {
  IngestOp op;
  op.finalize = true;
  return EnqueueIngest(std::move(op));
}

Status HistGraphServer::Flush() {
  std::unique_lock<std::mutex> lock(ingest_mu_);
  const uint64_t target = next_seq_ - 1;
  drained_cv_.wait(lock, [&] { return applied_seq_ >= target; });
  return ingest_error_;
}

void HistGraphServer::IngestLoop() {
  // Advisor ticks share the strand with appends: they run while idle and
  // between queued ops (never preempting one), so every skeleton /
  // materialized-map mutation on this thread serializes with appends by
  // construction and publishes through the usual frontier protocol.
  const bool periodic = advisor_ != nullptr && options_.advisor_tick_us > 0;
  const auto interval = std::chrono::microseconds(
      periodic ? options_.advisor_tick_us : 0);
  auto next_tick = std::chrono::steady_clock::now() + interval;
  auto tick_if_due = [&] {
    // Caller must NOT hold ingest_mu_.
    if (periodic && std::chrono::steady_clock::now() >= next_tick) {
      RunAdvisorTick();
      next_tick = std::chrono::steady_clock::now() + interval;
    }
  };

  std::unique_lock<std::mutex> lock(ingest_mu_);
  for (;;) {
    if (periodic) {
      ingest_cv_.wait_until(lock, next_tick,
                            [&] { return stopping_ || !ingest_queue_.empty(); });
    } else {
      ingest_cv_.wait(lock, [&] { return stopping_ || !ingest_queue_.empty(); });
    }
    if (ingest_queue_.empty()) {
      if (stopping_) return;  // Drained and told to stop.
      lock.unlock();
      tick_if_due();  // Idle wakeup: keep adapting with no traffic to drain.
      lock.lock();
      continue;
    }
    IngestOp op = std::move(ingest_queue_.front());
    ingest_queue_.pop_front();
    IngestQueueDepth().Set(static_cast<int64_t>(ingest_queue_.size()));
    const bool poisoned = !ingest_error_.ok();
    lock.unlock();

    // Publish the executing op to the watchdog: which op, since when, and
    // how long it already waited in the queue. The test delay hook counts as
    // execution time on purpose — it is how tests stall the strand.
    const int64_t op_start_ns = SteadyNowNs();
    op_enqueued_ns_.store(op.enqueued_ns, std::memory_order_relaxed);
    op_started_ns_.store(op_start_ns, std::memory_order_relaxed);
    op_active_seq_.store(op.seq, std::memory_order_relaxed);

    const int64_t delay = ingest_delay_us_.load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    Status s;
    bool published = false;
    if (!poisoned) {
      if (op.advise) {
        if (advisor_ != nullptr) RunAdvisorTick();
      } else if (op.finalize) {
        s = manager_->FinalizeIndex();
        if (s.ok()) finalizes_.fetch_add(1, std::memory_order_relaxed);
        published = s.ok();
      } else {
        s = manager_->ApplyEvents(op.batch);
        if (s.ok()) {
          batches_appended_.fetch_add(1, std::memory_order_relaxed);
          events_appended_.fetch_add(op.batch.size(), std::memory_order_relaxed);
        }
        published = s.ok();
      }
    }
    const int64_t op_end_ns = SteadyNowNs();
    op_active_seq_.store(0, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      IngestDwell().Record(static_cast<uint64_t>((op_end_ns - op_start_ns) / 1000));
      if (published) {
        // Epoch-publish latency: submission (enqueue) to visible frontier.
        EpochPublish().Record(
            static_cast<uint64_t>((op_end_ns - op.enqueued_ns) / 1000));
      }
    }
    if (published) last_publish_ns_.store(op_end_ns, std::memory_order_relaxed);
    tick_if_due();  // Busy path: ticks interleave with a saturated queue too.

    lock.lock();
    if (!s.ok() && ingest_error_.ok()) ingest_error_ = s;
    applied_seq_ = op.seq;
    drained_cv_.notify_all();
  }
}

void HistGraphServer::WatchdogLoop() {
  // Observe-only: the watchdog flags a stuck ingest strand (an op executing
  // past the budget) once per op and keeps the lag/queue gauges fresh; it
  // never interrupts, skips, or kills anything — a stall is a diagnosis, not
  // a fault the watchdog can safely "fix" mid-mutation.
  const int64_t budget_ns = options_.watchdog_budget_us * 1000;
  const auto period = std::chrono::microseconds(
      std::max<int64_t>(options_.watchdog_budget_us / 4, 10000));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, period, [&] { return watchdog_stop_; })) {
      return;
    }
    const int64_t now = SteadyNowNs();
    const uint64_t seq = op_active_seq_.load(std::memory_order_relaxed);
    int64_t lag_ns = 0;
    if (seq != 0) {
      // Strand busy: lag = how long the executing op's work has been
      // pending, from its enqueue.
      lag_ns = now - op_enqueued_ns_.load(std::memory_order_relaxed);
      const int64_t running_ns =
          now - op_started_ns_.load(std::memory_order_relaxed);
      if (running_ns >= budget_ns &&
          watchdog_flagged_seq_.load(std::memory_order_relaxed) != seq) {
        watchdog_flagged_seq_.store(seq, std::memory_order_relaxed);
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
        WatchdogStalls().Add();
      }
    } else {
      // Strand idle between ops: lag = age of the oldest queued op, if any.
      std::lock_guard<std::mutex> qlock(ingest_mu_);
      if (!ingest_queue_.empty()) {
        lag_ns = now - ingest_queue_.front().enqueued_ns;
      }
    }
    IngestLag().Set(std::max<int64_t>(lag_ns / 1000, 0));
  }
}

void HistGraphServer::RunAdvisorTick() {
  auto res = advisor_->Tick(&manager_->index());
  MatTicks().Add();
  std::lock_guard<std::mutex> lock(advisor_mu_);
  if (res.ok()) {
    last_tick_status_ = Status::OK();
    last_tick_result_ = res.value();
    MatMaterializations().Add(last_tick_result_.materialized);
    MatEvictions().Add(last_tick_result_.evicted);
    MatResidentBytes().Set(static_cast<int64_t>(last_tick_result_.resident_bytes));
    MatResidentNodes().Set(static_cast<int64_t>(last_tick_result_.resident_nodes));
  } else {
    // An advisor failure does not poison ingest: appends remain correct
    // whether or not a materialized copy exists. Surfaced via RunAdvisorOnce.
    last_tick_status_ = res.status();
  }
}

Result<MaterializationAdvisor::TickResult> HistGraphServer::RunAdvisorOnce() {
  if (advisor_ == nullptr) {
    return Status::InvalidArgument(
        "adaptive materialization is disabled (resolved budget is 0)");
  }
  IngestOp op;
  op.advise = true;
  HG_RETURN_NOT_OK(EnqueueIngest(std::move(op)));
  HG_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> lock(advisor_mu_);
  HG_RETURN_NOT_OK(last_tick_status_);
  return last_tick_result_;
}

// -- Queries -------------------------------------------------------------------

Result<HistGraphServer::QueryResult> HistGraphServer::Retrieve(
    const std::vector<Timestamp>& times, unsigned components,
    int64_t deadline_us) {
  const int64_t limit =
      deadline_us < 0 ? options_.default_deadline_us : deadline_us;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_us = [&] {
    return static_cast<int64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  auto expired = [&] { return limit > 0 && elapsed_us() >= limit; };

  // Admission: run or reject, never queue — under overload the caller sheds
  // (or retries with backoff) instead of stacking latency onto every later
  // query.
  const int max = options_.max_concurrent_queries;
  const int running = active_queries_.fetch_add(1, std::memory_order_acq_rel);
  if (max <= 0 || running >= max) {
    active_queries_.fetch_sub(1, std::memory_order_acq_rel);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    QueriesShed().Add();
    // A slim slow-log entry (no span tree — nothing ran) so overload shows
    // up in the flight recorder, not only as a counter.
    obs::FlightRecorder::Global().RecordEvent(
        "server", "admission", static_cast<double>(elapsed_us()),
        manager_->index().frontier_epoch(), 0);
    return Status::Unavailable("admission limit reached");
  }
  struct Admission {
    std::atomic<int>* active;
    ~Admission() { active->fetch_sub(1, std::memory_order_acq_rel); }
  } admission{&active_queries_};
  queries_admitted_.fetch_add(1, std::memory_order_relaxed);

  // Trace when globally enabled or when this query wins the sampler's draw;
  // sampled traces land in the flight recorder when the query finishes.
  std::unique_ptr<obs::QueryTrace> trace;
  if (obs::TraceEnabled() || obs::TraceSampler::Global().Sample()) {
    trace = std::make_unique<obs::QueryTrace>();
    trace->set_query_label(times.size() == 1 ? "server.singlepoint"
                                             : "server.multipoint");
  }

  // Pin one frontier; the whole query resolves against it, so the ingest
  // strand may keep publishing epochs while this runs.
  const FrontierPtr frontier = manager_->index().PinFrontier();
  if (trace != nullptr) {
    trace->set_epoch(frontier->epoch);
    trace->set_event_count(frontier->event_count);
  }
  auto finish_trace = [&](const char* event) {
    if (trace == nullptr) return;
    if (event != nullptr) trace->set_event(event);
    obs::FinishAndMaybeDump(trace.get());
  };
  auto record_deadline = [&] {
    deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
    QueriesTimedOut().Add();
    if (trace != nullptr) {
      finish_trace("deadline");
    } else {
      obs::FlightRecorder::Global().RecordEvent(
          "server", "deadline", static_cast<double>(elapsed_us()),
          frontier->epoch, frontier->event_count);
    }
  };

  if (expired()) {
    record_deadline();
    return Status::DeadlineExceeded("deadline expired before execution");
  }
  auto snaps = manager_->index().GetSnapshotsAt(
      frontier, times, components, obs::TraceCtx{trace.get(), obs::kNoSpan});
  if (!snaps.ok()) {
    finish_trace("error");
    return snaps.status();
  }
  if (expired()) {
    // The work is done but the caller has given up; count and drop it.
    record_deadline();
    return Status::DeadlineExceeded("deadline expired during execution");
  }

  const int64_t latency_us = elapsed_us();
  QueriesServed().Add();
  QueryLatency().Record(static_cast<uint64_t>(latency_us));
  // Feed the sampler (tail arming) and the slow-query log with the
  // end-to-end server latency — queueing and admission included, which the
  // per-index deltagraph.query_us observation below it cannot see.
  obs::TraceSampler::Global().Observe(static_cast<uint64_t>(latency_us));
  const bool slow =
      options_.slow_query_us > 0 && latency_us >= options_.slow_query_us;
  if (slow) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    SlowQueries().Add();
  }
  if (trace != nullptr) {
    // The recorder routes it to the slow log by threshold (or event).
    finish_trace(nullptr);
  } else if (slow) {
    // Untraced slow query: retain a slim entry — identity without spans.
    obs::FlightRecorder::Global().RecordEvent(
        "server", "slow", static_cast<double>(latency_us), frontier->epoch,
        frontier->event_count);
  }

  QueryResult out;
  out.snapshots = std::move(snaps).value();
  out.epoch = frontier->epoch;
  out.event_count = frontier->event_count;
  return out;
}

// -- Introspection -------------------------------------------------------------

uint64_t HistGraphServer::frontier_epoch() const {
  return manager_->index().frontier_epoch();
}

HistGraphServer::Stats HistGraphServer::stats() const {
  Stats s;
  s.queries_admitted = queries_admitted_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.deadlines_exceeded = deadlines_exceeded_.load(std::memory_order_relaxed);
  s.batches_appended = batches_appended_.load(std::memory_order_relaxed);
  s.events_appended = events_appended_.load(std::memory_order_relaxed);
  s.finalizes = finalizes_.load(std::memory_order_relaxed);
  s.appends_rejected = appends_rejected_.load(std::memory_order_relaxed);
  s.frontier_epoch = frontier_epoch();
  s.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  s.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    s.ingest_queue_depth = ingest_queue_.size();
  }
  return s;
}

std::string HistGraphServer::StatusJSON() const {
  const int64_t now_ns = SteadyNowNs();
  const Stats s = stats();

  // Ingest-strand state: queue shape under the lock, strand occupancy from
  // the watchdog atomics (a torn read costs one slightly stale number).
  size_t queue_depth = 0;
  int64_t queue_age_us = 0;
  uint64_t applied_seq = 0, next_seq = 0;
  Status ingest_error;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    queue_depth = ingest_queue_.size();
    if (!ingest_queue_.empty()) {
      queue_age_us = (now_ns - ingest_queue_.front().enqueued_ns) / 1000;
    }
    applied_seq = applied_seq_;
    next_seq = next_seq_;
    ingest_error = ingest_error_;
  }
  const uint64_t active_op = op_active_seq_.load(std::memory_order_relaxed);
  int64_t current_op_us = 0;
  int64_t lag_us = queue_age_us;
  if (active_op != 0) {
    current_op_us = (now_ns - op_started_ns_.load(std::memory_order_relaxed)) / 1000;
    lag_us = std::max<int64_t>(
        lag_us, (now_ns - op_enqueued_ns_.load(std::memory_order_relaxed)) / 1000);
  }

  const FrontierPtr frontier = manager_->index().PinFrontier();
  const int64_t frontier_age_us =
      (now_ns - last_publish_ns_.load(std::memory_order_relaxed)) / 1000;

  std::ostringstream out;
  out << "{\"server\":{"
      << "\"queries_admitted\":" << s.queries_admitted
      << ",\"queries_rejected\":" << s.queries_rejected
      << ",\"deadlines_exceeded\":" << s.deadlines_exceeded
      << ",\"slow_queries\":" << s.slow_queries
      << ",\"active_queries\":" << active_queries_.load(std::memory_order_relaxed)
      << ",\"max_concurrent_queries\":" << options_.max_concurrent_queries
      << ",\"slow_query_us\":" << options_.slow_query_us
      << ",\"trace_sample_every_n\":" << options_.trace_sample_every_n
      << ",\"batches_appended\":" << s.batches_appended
      << ",\"events_appended\":" << s.events_appended
      << ",\"finalizes\":" << s.finalizes
      << ",\"appends_rejected\":" << s.appends_rejected << "}";
  out << ",\"ingest\":{"
      << "\"queue_depth\":" << queue_depth
      << ",\"queue_age_us\":" << queue_age_us
      << ",\"lag_us\":" << lag_us
      << ",\"applied_seq\":" << applied_seq
      << ",\"next_seq\":" << next_seq
      << ",\"busy\":" << (active_op != 0 ? "true" : "false")
      << ",\"current_op_us\":" << current_op_us << ",\"error\":";
  AppendQuoted(out, ingest_error.ok() ? "" : ingest_error.ToString());
  out << "}";
  out << ",\"watchdog\":{"
      << "\"budget_us\":" << options_.watchdog_budget_us
      << ",\"enabled\":" << (options_.watchdog_budget_us > 0 ? "true" : "false")
      << ",\"stalls\":" << s.watchdog_stalls << "}";
  out << ",\"frontier\":{"
      << "\"epoch\":" << frontier->epoch
      << ",\"event_count\":" << frontier->event_count
      << ",\"age_us\":" << frontier_age_us << "}";
  out << ",\"sampler\":{"
      << "\"every_n\":" << obs::TraceSampler::Global().every_n()
      << ",\"arm_threshold_us\":" << obs::TraceSampler::Global().arm_threshold_us()
      << ",\"sampled\":" << obs::TraceSampler::Global().sampled()
      << ",\"slow_observed\":" << obs::TraceSampler::Global().slow_observed()
      << ",\"armed_remaining\":" << obs::TraceSampler::Global().armed_remaining()
      << "}";
  out << ",\"flight_recorder\":" << obs::FlightRecorder::Global().ToJSON();
  out << ",\"metrics\":" << obs::MetricsRegistry::Global().ToJSON();
  out << "}";
  return out.str();
}

}  // namespace hgdb
