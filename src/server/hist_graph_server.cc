#include "server/hist_graph_server.h"

#include <chrono>

#include "obs/metrics.h"

namespace hgdb {

namespace {

obs::Histogram& QueryLatency() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("server.query_us");
  return *h;
}
obs::Counter& QueriesServed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.queries");
  return *c;
}
obs::Counter& QueriesShed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.rejected");
  return *c;
}
obs::Counter& QueriesTimedOut() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.deadline_exceeded");
  return *c;
}
obs::Counter& MatTicks() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_ticks");
  return *c;
}
obs::Counter& MatMaterializations() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_materializations");
  return *c;
}
obs::Counter& MatEvictions() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.mat_evictions");
  return *c;
}
obs::Gauge& MatResidentBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_resident_bytes");
  return *g;
}
obs::Gauge& MatResidentNodes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_resident_nodes");
  return *g;
}
obs::Gauge& MatBudgetBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("server.mat_budget_bytes");
  return *g;
}

}  // namespace

Result<std::unique_ptr<HistGraphServer>> HistGraphServer::Create(
    KVStore* store, HistGraphServerOptions options) {
  auto gm = GraphManager::Create(store, options.manager);
  if (!gm.ok()) return gm.status();
  return std::unique_ptr<HistGraphServer>(
      new HistGraphServer(std::move(gm).value(), std::move(options)));
}

Result<std::unique_ptr<HistGraphServer>> HistGraphServer::Open(
    KVStore* store, HistGraphServerOptions options) {
  auto gm = GraphManager::Open(store, options.manager);
  if (!gm.ok()) return gm.status();
  return std::unique_ptr<HistGraphServer>(
      new HistGraphServer(std::move(gm).value(), std::move(options)));
}

HistGraphServer::HistGraphServer(std::unique_ptr<GraphManager> manager,
                                 HistGraphServerOptions options)
    : options_(std::move(options)), manager_(std::move(manager)) {
  // The budget knob lives on the manager options (HISTGRAPH_MAT_BUDGET
  // overrides); the rest of the advisor tuning rides on options_.advisor.
  MaterializationAdvisorOptions aopts = options_.advisor;
  aopts.budget_bytes = options_.manager.materialization_budget_bytes;
  if (MaterializationAdvisor::ResolveBudgetBytes(aopts.budget_bytes) > 0) {
    advisor_ = std::make_unique<MaterializationAdvisor>(aopts);
    advisor_->Attach(&manager_->index());
    MatBudgetBytes().Set(static_cast<int64_t>(advisor_->budget_bytes()));
  }
  ingest_thread_ = std::thread([this] { IngestLoop(); });
}

HistGraphServer::~HistGraphServer() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stopping_ = true;
  }
  ingest_cv_.notify_all();
  ingest_thread_.join();
}

// -- Ingest strand -------------------------------------------------------------

Status HistGraphServer::EnqueueIngest(IngestOp op) {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (stopping_) return Status::Unavailable("server is shutting down");
    // Surface a poisoned strand immediately: once a batch failed to apply,
    // later batches would be applied against inconsistent state, so the
    // strand discards them and producers see the original error.
    if (!ingest_error_.ok()) return ingest_error_;
    if (ingest_queue_.size() >= options_.max_ingest_queue) {
      appends_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("ingest queue full");
    }
    op.seq = next_seq_++;
    ingest_queue_.push_back(std::move(op));
  }
  ingest_cv_.notify_one();
  return Status::OK();
}

Status HistGraphServer::Append(std::vector<Event> batch) {
  if (batch.empty()) return Status::OK();
  IngestOp op;
  op.batch = std::move(batch);
  return EnqueueIngest(std::move(op));
}

Status HistGraphServer::Finalize() {
  IngestOp op;
  op.finalize = true;
  return EnqueueIngest(std::move(op));
}

Status HistGraphServer::Flush() {
  std::unique_lock<std::mutex> lock(ingest_mu_);
  const uint64_t target = next_seq_ - 1;
  drained_cv_.wait(lock, [&] { return applied_seq_ >= target; });
  return ingest_error_;
}

void HistGraphServer::IngestLoop() {
  // Advisor ticks share the strand with appends: they run while idle and
  // between queued ops (never preempting one), so every skeleton /
  // materialized-map mutation on this thread serializes with appends by
  // construction and publishes through the usual frontier protocol.
  const bool periodic = advisor_ != nullptr && options_.advisor_tick_us > 0;
  const auto interval = std::chrono::microseconds(
      periodic ? options_.advisor_tick_us : 0);
  auto next_tick = std::chrono::steady_clock::now() + interval;
  auto tick_if_due = [&] {
    // Caller must NOT hold ingest_mu_.
    if (periodic && std::chrono::steady_clock::now() >= next_tick) {
      RunAdvisorTick();
      next_tick = std::chrono::steady_clock::now() + interval;
    }
  };

  std::unique_lock<std::mutex> lock(ingest_mu_);
  for (;;) {
    if (periodic) {
      ingest_cv_.wait_until(lock, next_tick,
                            [&] { return stopping_ || !ingest_queue_.empty(); });
    } else {
      ingest_cv_.wait(lock, [&] { return stopping_ || !ingest_queue_.empty(); });
    }
    if (ingest_queue_.empty()) {
      if (stopping_) return;  // Drained and told to stop.
      lock.unlock();
      tick_if_due();  // Idle wakeup: keep adapting with no traffic to drain.
      lock.lock();
      continue;
    }
    IngestOp op = std::move(ingest_queue_.front());
    ingest_queue_.pop_front();
    const bool poisoned = !ingest_error_.ok();
    lock.unlock();

    const int64_t delay = ingest_delay_us_.load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    Status s;
    if (!poisoned) {
      if (op.advise) {
        if (advisor_ != nullptr) RunAdvisorTick();
      } else if (op.finalize) {
        s = manager_->FinalizeIndex();
        if (s.ok()) finalizes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        s = manager_->ApplyEvents(op.batch);
        if (s.ok()) {
          batches_appended_.fetch_add(1, std::memory_order_relaxed);
          events_appended_.fetch_add(op.batch.size(), std::memory_order_relaxed);
        }
      }
    }
    tick_if_due();  // Busy path: ticks interleave with a saturated queue too.

    lock.lock();
    if (!s.ok() && ingest_error_.ok()) ingest_error_ = s;
    applied_seq_ = op.seq;
    drained_cv_.notify_all();
  }
}

void HistGraphServer::RunAdvisorTick() {
  auto res = advisor_->Tick(&manager_->index());
  MatTicks().Add();
  std::lock_guard<std::mutex> lock(advisor_mu_);
  if (res.ok()) {
    last_tick_status_ = Status::OK();
    last_tick_result_ = res.value();
    MatMaterializations().Add(last_tick_result_.materialized);
    MatEvictions().Add(last_tick_result_.evicted);
    MatResidentBytes().Set(static_cast<int64_t>(last_tick_result_.resident_bytes));
    MatResidentNodes().Set(static_cast<int64_t>(last_tick_result_.resident_nodes));
  } else {
    // An advisor failure does not poison ingest: appends remain correct
    // whether or not a materialized copy exists. Surfaced via RunAdvisorOnce.
    last_tick_status_ = res.status();
  }
}

Result<MaterializationAdvisor::TickResult> HistGraphServer::RunAdvisorOnce() {
  if (advisor_ == nullptr) {
    return Status::InvalidArgument(
        "adaptive materialization is disabled (resolved budget is 0)");
  }
  IngestOp op;
  op.advise = true;
  HG_RETURN_NOT_OK(EnqueueIngest(std::move(op)));
  HG_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> lock(advisor_mu_);
  HG_RETURN_NOT_OK(last_tick_status_);
  return last_tick_result_;
}

// -- Queries -------------------------------------------------------------------

Result<HistGraphServer::QueryResult> HistGraphServer::Retrieve(
    const std::vector<Timestamp>& times, unsigned components,
    int64_t deadline_us) {
  const int64_t limit =
      deadline_us < 0 ? options_.default_deadline_us : deadline_us;
  const auto start = std::chrono::steady_clock::now();
  auto expired = [&] {
    return limit > 0 && std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                                .count() >= limit;
  };

  // Admission: run or reject, never queue — under overload the caller sheds
  // (or retries with backoff) instead of stacking latency onto every later
  // query.
  const int max = options_.max_concurrent_queries;
  const int running = active_queries_.fetch_add(1, std::memory_order_acq_rel);
  if (max <= 0 || running >= max) {
    active_queries_.fetch_sub(1, std::memory_order_acq_rel);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    QueriesShed().Add();
    return Status::Unavailable("admission limit reached");
  }
  struct Admission {
    std::atomic<int>* active;
    ~Admission() { active->fetch_sub(1, std::memory_order_acq_rel); }
  } admission{&active_queries_};
  queries_admitted_.fetch_add(1, std::memory_order_relaxed);

  // Pin one frontier; the whole query resolves against it, so the ingest
  // strand may keep publishing epochs while this runs.
  const FrontierPtr frontier = manager_->index().PinFrontier();
  if (expired()) {
    deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
    QueriesTimedOut().Add();
    return Status::DeadlineExceeded("deadline expired before execution");
  }
  auto snaps = manager_->index().GetSnapshotsAt(frontier, times, components);
  if (!snaps.ok()) return snaps.status();
  if (expired()) {
    // The work is done but the caller has given up; count and drop it.
    deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
    QueriesTimedOut().Add();
    return Status::DeadlineExceeded("deadline expired during execution");
  }

  QueriesServed().Add();
  QueryLatency().Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));

  QueryResult out;
  out.snapshots = std::move(snaps).value();
  out.epoch = frontier->epoch;
  out.event_count = frontier->event_count;
  return out;
}

// -- Introspection -------------------------------------------------------------

uint64_t HistGraphServer::frontier_epoch() const {
  return manager_->index().frontier_epoch();
}

HistGraphServer::Stats HistGraphServer::stats() const {
  Stats s;
  s.queries_admitted = queries_admitted_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.deadlines_exceeded = deadlines_exceeded_.load(std::memory_order_relaxed);
  s.batches_appended = batches_appended_.load(std::memory_order_relaxed);
  s.events_appended = events_appended_.load(std::memory_order_relaxed);
  s.finalizes = finalizes_.load(std::memory_order_relaxed);
  s.appends_rejected = appends_rejected_.load(std::memory_order_relaxed);
  s.frontier_epoch = frontier_epoch();
  return s;
}

}  // namespace hgdb
