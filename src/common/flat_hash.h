#ifndef HISTGRAPH_COMMON_FLAT_HASH_H_
#define HISTGRAPH_COMMON_FLAT_HASH_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

namespace hgdb {

/// \brief Open-addressing hash containers for the Snapshot element stores.
///
/// Linear probing over a power-of-two table with a separate one-byte control
/// array (empty/full) and backward-shift deletion (no tombstones), so probe
/// sequences never degrade under churn. Keys are integer ids (NodeId/EdgeId);
/// the hash is a 64-bit finalizer over the raw id, which keeps probes O(1)
/// even for the sequential ids the workload generators produce.
///
/// Compared to std::unordered_map, there is one allocation for the whole
/// table instead of one per element, iteration touches contiguous memory, and
/// cloning a table of trivially-copyable slots is a pair of memcpys — the
/// property the Snapshot copy-on-write machinery leans on.
///
/// Invalidation rules (stricter than std::unordered_map — do not hold
/// references across mutations): any insert may rehash and any erase may
/// backward-shift later slots, so pointers/iterators into the table are
/// invalidated by every mutation. Erase during iteration is not supported.

namespace flat_hash_internal {

/// Identity-folded hash. NodeId/EdgeId are dense allocation counters, so
/// keeping the low bits intact maps sequential ids to sequential slots:
/// bulk scans and the diff loops (iterate table A, probe table B) touch
/// memory in order, which measures ~2x faster than a mixing hash here —
/// the same reason libstdc++'s identity std::hash works well for these keys.
/// The cost is sensitivity to strided keys (ids ≡ 0 mod 2^k cluster into
/// linear chains); every id in this codebase comes from a ++counter, and the
/// fold mixes the high bits in for anything else.
inline uint64_t HashId(uint64_t x) { return x ^ (x >> 32); }

inline constexpr size_t kMinCapacity = 8;

/// Next power of two >= n (n > 0).
inline size_t NormalizeCapacity(size_t n) {
  size_t cap = kMinCapacity;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace flat_hash_internal

/// Flat open-addressing map from an integer id to an arbitrary value type.
template <typename K, typename V>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(std::move(other)); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~FlatHashMap() { Destroy(); }

  template <bool kConst>
  class Iterator {
   public:
    using value_type = typename FlatHashMap::value_type;
    using slot_ptr = std::conditional_t<kConst, const value_type*, value_type*>;
    using ctrl_ptr = const uint8_t*;
    using reference = std::conditional_t<kConst, const value_type&, value_type&>;
    using pointer = slot_ptr;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iterator() = default;
    Iterator(slot_ptr slots, ctrl_ptr ctrl, size_t pos, size_t cap)
        : slots_(slots), ctrl_(ctrl), pos_(pos), cap_(cap) {
      SkipEmpty();
    }

    reference operator*() const { return slots_[pos_]; }
    pointer operator->() const { return &slots_[pos_]; }
    Iterator& operator++() {
      ++pos_;
      SkipEmpty();
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const Iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const Iterator& o) const { return pos_ != o.pos_; }

    // Implicit const conversion.
    operator Iterator<true>() const {
      Iterator<true> it;
      it.slots_ = slots_;
      it.ctrl_ = ctrl_;
      it.pos_ = pos_;
      it.cap_ = cap_;
      return it;
    }

   private:
    friend class FlatHashMap;
    void SkipEmpty() {
      while (pos_ < cap_ && ctrl_[pos_] == 0) ++pos_;
    }
    slot_ptr slots_ = nullptr;
    ctrl_ptr ctrl_ = nullptr;
    size_t pos_ = 0;
    size_t cap_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  iterator begin() { return iterator(slots_, ctrl_, 0, capacity_); }
  iterator end() { return iterator(slots_, ctrl_, capacity_, capacity_); }
  const_iterator begin() const { return const_iterator(slots_, ctrl_, 0, capacity_); }
  const_iterator end() const {
    return const_iterator(slots_, ctrl_, capacity_, capacity_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  void clear() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i]) slots_[i].~value_type();
    }
    std::memset(ctrl_, 0, capacity_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n == 0) return;
    const size_t needed = flat_hash_internal::NormalizeCapacity(n + n / 3 + 1);
    if (needed > capacity_) Rehash(needed);
  }

  bool contains(const K& key) const { return FindIndex(key) != kNotFound; }

  const_iterator find(const K& key) const {
    const size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : const_iterator(slots_, ctrl_, idx, capacity_);
  }
  iterator find(const K& key) {
    const size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : iterator(slots_, ctrl_, idx, capacity_);
  }

  const V* FindValue(const K& key) const {
    const size_t idx = FindIndex(key);
    return idx == kNotFound ? nullptr : &slots_[idx].second;
  }
  V* FindValue(const K& key) {
    const size_t idx = FindIndex(key);
    return idx == kNotFound ? nullptr : &slots_[idx].second;
  }

  /// try_emplace semantics: no overwrite when the key exists.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    GrowIfNeeded();
    size_t idx = ProbeFor(key);
    if (ctrl_[idx]) return {iterator(slots_, ctrl_, idx, capacity_), false};
    new (&slots_[idx]) value_type(std::piecewise_construct, std::forward_as_tuple(key),
                                  std::forward_as_tuple(std::forward<Args>(args)...));
    ctrl_[idx] = 1;
    ++size_;
    return {iterator(slots_, ctrl_, idx, capacity_), true};
  }

  V& operator[](const K& key) { return emplace(key).first->second; }

  template <typename U>
  void InsertOrAssign(const K& key, U&& value) {
    auto [it, inserted] = emplace(key, std::forward<U>(value));
    if (!inserted) it->second = std::forward<U>(value);
  }

  /// Erases by key (backward-shift, no tombstones); true if the key existed.
  bool erase(const K& key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return false;
    EraseAt(idx);
    return true;
  }

  /// Order-independent element equality.
  bool operator==(const FlatHashMap& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < capacity_; ++i) {
      if (!ctrl_[i]) continue;
      const V* ov = other.FindValue(slots_[i].first);
      if (ov == nullptr || !(*ov == slots_[i].second)) return false;
    }
    return true;
  }
  bool operator!=(const FlatHashMap& other) const { return !(*this == other); }

  /// Bytes held by the table itself (not by heap-owning values).
  size_t TableBytes() const { return capacity_ * (sizeof(value_type) + 1); }

 private:
  static constexpr size_t kNotFound = ~size_t{0};

  size_t Mask() const { return capacity_ - 1; }

  size_t FindIndex(const K& key) const {
    if (capacity_ == 0) return kNotFound;
    size_t idx = flat_hash_internal::HashId(static_cast<uint64_t>(key)) & Mask();
    while (ctrl_[idx]) {
      if (slots_[idx].first == key) return idx;
      idx = (idx + 1) & Mask();
    }
    return kNotFound;
  }

  /// First slot where `key` lives or should be inserted (capacity_ > 0).
  size_t ProbeFor(const K& key) const {
    size_t idx = flat_hash_internal::HashId(static_cast<uint64_t>(key)) & Mask();
    while (ctrl_[idx] && !(slots_[idx].first == key)) idx = (idx + 1) & Mask();
    return idx;
  }

  void GrowIfNeeded() {
    if (capacity_ == 0) {
      Rehash(flat_hash_internal::kMinCapacity);
    } else if ((size_ + 1) * 4 > capacity_ * 3) {  // Max load factor 3/4.
      Rehash(capacity_ * 2);
    }
  }

  void Rehash(size_t new_cap) {
    value_type* old_slots = slots_;
    uint8_t* old_ctrl = ctrl_;
    const size_t old_cap = capacity_;

    slots_ = static_cast<value_type*>(
        ::operator new(new_cap * sizeof(value_type), std::align_val_t(alignof(value_type))));
    ctrl_ = new uint8_t[new_cap];
    std::memset(ctrl_, 0, new_cap);
    capacity_ = new_cap;

    for (size_t i = 0; i < old_cap; ++i) {
      if (!old_ctrl[i]) continue;
      const size_t idx = ProbeFor(old_slots[i].first);
      new (&slots_[idx]) value_type(std::move(old_slots[i]));
      ctrl_[idx] = 1;
      old_slots[i].~value_type();
    }
    if (old_slots != nullptr) {
      ::operator delete(old_slots, std::align_val_t(alignof(value_type)));
      delete[] old_ctrl;
    }
  }

  void EraseAt(size_t idx) {
    slots_[idx].~value_type();
    ctrl_[idx] = 0;
    --size_;
    // Backward-shift: pull home any follower whose probe chain crossed `idx`.
    size_t hole = idx;
    size_t next = (idx + 1) & Mask();
    while (ctrl_[next]) {
      const size_t home =
          flat_hash_internal::HashId(static_cast<uint64_t>(slots_[next].first)) & Mask();
      // Move `next` into the hole unless its home lies strictly inside
      // (hole, next] in circular probe order (then the hole doesn't break it).
      const size_t dist_home = (next - home) & Mask();
      const size_t dist_hole = (next - hole) & Mask();
      if (dist_home >= dist_hole) {
        new (&slots_[hole]) value_type(std::move(slots_[next]));
        ctrl_[hole] = 1;
        slots_[next].~value_type();
        ctrl_[next] = 0;
        hole = next;
      }
      next = (next + 1) & Mask();
    }
  }

  void CopyFrom(const FlatHashMap& other) {
    capacity_ = other.capacity_;
    size_ = other.size_;
    if (capacity_ == 0) {
      slots_ = nullptr;
      ctrl_ = nullptr;
      return;
    }
    slots_ = static_cast<value_type*>(
        ::operator new(capacity_ * sizeof(value_type), std::align_val_t(alignof(value_type))));
    ctrl_ = new uint8_t[capacity_];
    std::memcpy(ctrl_, other.ctrl_, capacity_);
    if constexpr (std::is_trivially_copyable_v<value_type>) {
      std::memcpy(static_cast<void*>(slots_), static_cast<const void*>(other.slots_),
                  capacity_ * sizeof(value_type));
    } else {
      for (size_t i = 0; i < capacity_; ++i) {
        if (ctrl_[i]) new (&slots_[i]) value_type(other.slots_[i]);
      }
    }
  }

  void MoveFrom(FlatHashMap&& other) {
    slots_ = other.slots_;
    ctrl_ = other.ctrl_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.slots_ = nullptr;
    other.ctrl_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  void Destroy() {
    if (capacity_ == 0) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i]) slots_[i].~value_type();
    }
    ::operator delete(slots_, std::align_val_t(alignof(value_type)));
    delete[] ctrl_;
    slots_ = nullptr;
    ctrl_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  value_type* slots_ = nullptr;
  uint8_t* ctrl_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Flat open-addressing set of trivially-copyable integer ids.
template <typename K>
class FlatHashSet {
  static_assert(std::is_trivially_copyable_v<K>, "FlatHashSet keys must be POD ids");

 public:
  FlatHashSet() = default;

  FlatHashSet(const FlatHashSet& other) { CopyFrom(other); }
  FlatHashSet& operator=(const FlatHashSet& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  FlatHashSet(FlatHashSet&& other) noexcept { MoveFrom(std::move(other)); }
  FlatHashSet& operator=(FlatHashSet&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~FlatHashSet() { Destroy(); }

  class const_iterator {
   public:
    using reference = const K&;
    using pointer = const K*;
    using value_type = K;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const K* slots, const uint8_t* ctrl, size_t pos, size_t cap)
        : slots_(slots), ctrl_(ctrl), pos_(pos), cap_(cap) {
      SkipEmpty();
    }

    reference operator*() const { return slots_[pos_]; }
    pointer operator->() const { return &slots_[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      SkipEmpty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    void SkipEmpty() {
      while (pos_ < cap_ && ctrl_[pos_] == 0) ++pos_;
    }
    const K* slots_ = nullptr;
    const uint8_t* ctrl_ = nullptr;
    size_t pos_ = 0;
    size_t cap_ = 0;
  };
  using iterator = const_iterator;

  const_iterator begin() const { return const_iterator(slots_, ctrl_, 0, capacity_); }
  const_iterator end() const {
    return const_iterator(slots_, ctrl_, capacity_, capacity_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  void clear() {
    if (capacity_ == 0) return;
    std::memset(ctrl_, 0, capacity_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n == 0) return;
    const size_t needed = flat_hash_internal::NormalizeCapacity(n + n / 3 + 1);
    if (needed > capacity_) Rehash(needed);
  }

  bool contains(const K& key) const { return FindIndex(key) != kNotFound; }

  /// Returns true if the key was newly inserted.
  bool insert(const K& key) {
    GrowIfNeeded();
    const size_t idx = ProbeFor(key);
    if (ctrl_[idx]) return false;
    slots_[idx] = key;
    ctrl_[idx] = 1;
    ++size_;
    return true;
  }

  bool erase(const K& key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return false;
    ctrl_[idx] = 0;
    --size_;
    size_t hole = idx;
    size_t next = (idx + 1) & Mask();
    while (ctrl_[next]) {
      const size_t home =
          flat_hash_internal::HashId(static_cast<uint64_t>(slots_[next])) & Mask();
      const size_t dist_home = (next - home) & Mask();
      const size_t dist_hole = (next - hole) & Mask();
      if (dist_home >= dist_hole) {
        slots_[hole] = slots_[next];
        ctrl_[hole] = 1;
        ctrl_[next] = 0;
        hole = next;
      }
      next = (next + 1) & Mask();
    }
    return true;
  }

  bool operator==(const FlatHashSet& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] && !other.contains(slots_[i])) return false;
    }
    return true;
  }
  bool operator!=(const FlatHashSet& other) const { return !(*this == other); }

  size_t TableBytes() const { return capacity_ * (sizeof(K) + 1); }

 private:
  static constexpr size_t kNotFound = ~size_t{0};

  size_t Mask() const { return capacity_ - 1; }

  size_t FindIndex(const K& key) const {
    if (capacity_ == 0) return kNotFound;
    size_t idx = flat_hash_internal::HashId(static_cast<uint64_t>(key)) & Mask();
    while (ctrl_[idx]) {
      if (slots_[idx] == key) return idx;
      idx = (idx + 1) & Mask();
    }
    return kNotFound;
  }

  size_t ProbeFor(const K& key) const {
    size_t idx = flat_hash_internal::HashId(static_cast<uint64_t>(key)) & Mask();
    while (ctrl_[idx] && !(slots_[idx] == key)) idx = (idx + 1) & Mask();
    return idx;
  }

  void GrowIfNeeded() {
    if (capacity_ == 0) {
      Rehash(flat_hash_internal::kMinCapacity);
    } else if ((size_ + 1) * 4 > capacity_ * 3) {
      Rehash(capacity_ * 2);
    }
  }

  void Rehash(size_t new_cap) {
    K* old_slots = slots_;
    uint8_t* old_ctrl = ctrl_;
    const size_t old_cap = capacity_;

    slots_ = new K[new_cap];
    ctrl_ = new uint8_t[new_cap];
    std::memset(ctrl_, 0, new_cap);
    capacity_ = new_cap;

    for (size_t i = 0; i < old_cap; ++i) {
      if (!old_ctrl[i]) continue;
      const size_t idx = ProbeFor(old_slots[i]);
      slots_[idx] = old_slots[i];
      ctrl_[idx] = 1;
    }
    delete[] old_slots;
    delete[] old_ctrl;
  }

  void CopyFrom(const FlatHashSet& other) {
    capacity_ = other.capacity_;
    size_ = other.size_;
    if (capacity_ == 0) {
      slots_ = nullptr;
      ctrl_ = nullptr;
      return;
    }
    slots_ = new K[capacity_];
    ctrl_ = new uint8_t[capacity_];
    std::memcpy(static_cast<void*>(slots_), static_cast<const void*>(other.slots_),
                capacity_ * sizeof(K));
    std::memcpy(ctrl_, other.ctrl_, capacity_);
  }

  void MoveFrom(FlatHashSet&& other) {
    slots_ = other.slots_;
    ctrl_ = other.ctrl_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.slots_ = nullptr;
    other.ctrl_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  void Destroy() {
    delete[] slots_;
    delete[] ctrl_;
    slots_ = nullptr;
    ctrl_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  K* slots_ = nullptr;
  uint8_t* ctrl_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_FLAT_HASH_H_
