#ifndef HISTGRAPH_COMMON_TYPES_H_
#define HISTGRAPH_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hgdb {

/// Unique identifier of a node. Ids are assigned at creation time and are never
/// reassigned after deletion (a deletion followed by a re-insertion produces a
/// new id), matching the paper's data model (Section 3.1).
using NodeId = uint64_t;

/// Unique identifier of an edge. Same lifetime rules as NodeId.
using EdgeId = uint64_t;

/// Discrete time point. The paper assumes discrete time; we use a signed 64-bit
/// integer so callers may map it to seconds, days, or event counters.
using Timestamp = int64_t;

inline constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdgeId = std::numeric_limits<EdgeId>::max();
inline constexpr Timestamp kMinTimestamp = std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp = std::numeric_limits<Timestamp>::max();

/// Identifier of a delta or eventlist inside the key-value store.
using DeltaId = uint64_t;

/// Identifier of a horizontal partition of the node-id space.
using PartitionId = uint32_t;

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_TYPES_H_
