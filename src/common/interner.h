#ifndef HISTGRAPH_COMMON_INTERNER_H_
#define HISTGRAPH_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hgdb {

/// Interned id of an attribute key or value string. 32 bits: a historical
/// graph has many attribute *instances* but few distinct strings (keys repeat
/// per schema; values repeat across time because most updates flip between a
/// small set of values).
using AttrId = uint32_t;
inline constexpr AttrId kInvalidAttrId = 0xFFFFFFFFu;

/// \brief Process-wide string interner backing all attribute storage.
///
/// Snapshots store attribute keys and values as AttrIds; the bytes live here
/// exactly once. The table is append-only — ids are never reassigned or
/// freed — so a resolved `const std::string&` stays valid for the process
/// lifetime, which is what lets Snapshot::GetNodeAttr return a stable pointer
/// even while the snapshot itself mutates.
///
/// Thread safety — both hot paths are lock-free:
///  - Get: strings live in immutable fixed-size chunks whose pointers are
///    published with release stores.
///  - Intern/Find hits: an open-addressing index of (hash, id) atomic pairs,
///    probed with acquire loads. Writers publish id before hash, so a reader
///    that sees the hash sees the id and the string bytes.
///
/// First-sight Interns take a lock, but the write side is **sharded**: the
/// index (and its mutex) is picked by the string's hash, so concurrent
/// decoders interning distinct strings contend only 1/kNumShards of the
/// time instead of on one process-wide mutex. Each shard allocates whole
/// chunks from a shared chunk counter and then owns them, so the id space
/// stays process-wide (ids remain comparable across shards) while every
/// string write happens under exactly one shard's lock.
class StringInterner {
 public:
  StringInterner();

  /// The process-wide interner all snapshots share. Sharing one id space
  /// means value equality is id equality across any two snapshots, however
  /// they were produced (retrieval, differential combine, partition merge).
  static StringInterner& Global();

  /// Returns the id of `s`, interning it on first sight.
  AttrId Intern(std::string_view s) {
    const uint64_t h = HashKey(s);
    Shard& shard = ShardFor(h);
    const AttrId hit = Probe(shard.index.load(std::memory_order_acquire), h, s);
    return hit != kInvalidAttrId ? hit : InternSlow(shard, h, s);
  }

  /// Returns the id of `s` or kInvalidAttrId if it was never interned
  /// (read-only probes, e.g. attribute lookup by name).
  AttrId Find(std::string_view s) const {
    const uint64_t h = HashKey(s);
    return Probe(ShardFor(h).index.load(std::memory_order_acquire), h, s);
  }

  /// Resolves an id (must have been returned by Intern). Lock-free; the
  /// reference is stable for the process lifetime.
  const std::string& Get(AttrId id) const {
    const std::string* chunk =
        chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    return chunk[id & kChunkMask];
  }

  /// Distinct strings interned so far (advisory; monotone).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Approximate heap bytes held by the interner (memory accounting).
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kChunkShift = 13;  // 8192 strings per chunk.
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  // 512 KB directory, ~536M distinct strings before Intern reports overflow.
  static constexpr size_t kMaxChunks = size_t{1} << 16;
  static constexpr size_t kNumShards = 16;

  /// One index generation: open-addressing (hash, id) slots. hash == 0 means
  /// empty; ids are published before hashes (release/acquire pairing).
  struct IndexTable {
    explicit IndexTable(size_t cap);
    const size_t capacity;  // Power of two.
    std::unique_ptr<std::atomic<uint64_t>[]> hashes;
    std::unique_ptr<std::atomic<uint32_t>[]> ids;
  };

  /// Write-side state of one shard, padded to its own cache line so shard
  /// mutexes don't false-share.
  struct alignas(64) Shard {
    std::mutex mu;  // Guards everything below + this shard's string writes.
    std::atomic<IndexTable*> index{nullptr};
    std::vector<std::unique_ptr<IndexTable>> tables;  // Current + retired.
    uint32_t count = 0;       ///< Strings interned through this shard.
    uint32_t chunk_used = 0;  ///< Slots used in the newest owned chunk.
    std::vector<uint32_t> owned_chunks;  ///< Chunk directory indexes.
  };

  static uint64_t HashKey(std::string_view s);

  /// Shard selection uses high hash bits; index slots use low bits, so the
  /// two stay decorrelated.
  Shard& ShardFor(uint64_t h) const { return shards_[(h >> 57) & (kNumShards - 1)]; }

  AttrId Probe(const IndexTable* t, uint64_t h, std::string_view s) const {
    const size_t mask = t->capacity - 1;
    for (size_t idx = h & mask;; idx = (idx + 1) & mask) {
      const uint64_t hv = t->hashes[idx].load(std::memory_order_acquire);
      if (hv == 0) return kInvalidAttrId;
      if (hv == h) {
        const AttrId id = t->ids[idx].load(std::memory_order_acquire);
        if (Get(id) == s) return id;  // 64-bit collisions resolved by bytes.
      }
    }
  }

  AttrId InternSlow(Shard& shard, uint64_t h, std::string_view s);
  void InsertLocked(IndexTable* t, uint64_t h, AttrId id);

  mutable std::unique_ptr<Shard[]> shards_;
  std::atomic<uint32_t> next_chunk_{0};  ///< Shared chunk allocator.
  std::atomic<uint32_t> size_{0};        ///< Total across shards.
  // Chunk directory: slots are null until a chunk is published. The
  // directory itself is allocated once so chunk lookup never takes a lock;
  // chunks are never freed or moved.
  std::unique_ptr<std::atomic<std::string*>[]> chunks_;
};

/// Shorthands for the common "resolve this id" / "intern this string" calls.
inline AttrId InternAttr(std::string_view s) {
  return StringInterner::Global().Intern(s);
}
inline const std::string& AttrStr(AttrId id) { return StringInterner::Global().Get(id); }

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_INTERNER_H_
