#ifndef HISTGRAPH_COMMON_DYNAMIC_BITSET_H_
#define HISTGRAPH_COMMON_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hgdb {

/// \brief A growable bitmap.
///
/// GraphPool associates one of these with every node, edge, and attribute
/// value to record which of the active graphs contain that element (the "BM"
/// of Section 6). The bitmap grows on demand as new graphs are pulled into
/// memory; unset bits beyond the current size read as 0.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t nbits) { Resize(nbits); }

  /// Reads bit `i`; out-of-range bits read as false.
  bool Test(size_t i) const {
    const size_t w = i >> 6;
    if (w >= words_.size()) return false;
    return (words_[w] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` to `value`, growing the bitmap if needed.
  void Set(size_t i, bool value = true) {
    const size_t w = i >> 6;
    if (w >= words_.size()) {
      if (!value) return;  // Setting an out-of-range bit to 0 is a no-op.
      words_.resize(w + 1, 0);
    }
    if (value) {
      words_[w] |= (uint64_t{1} << (i & 63));
    } else {
      words_[w] &= ~(uint64_t{1} << (i & 63));
    }
  }

  void Reset(size_t i) { Set(i, false); }

  /// True if no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Clears all bits (keeps capacity).
  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  /// Ensures capacity for at least `nbits` bits.
  void Resize(size_t nbits) {
    const size_t words = (nbits + 63) / 64;
    if (words > words_.size()) words_.resize(words, 0);
  }

  /// Approximate heap footprint in bytes (for the memory-accounting benches).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  bool operator==(const DynamicBitset& other) const;

 private:
  std::vector<uint64_t> words_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_DYNAMIC_BITSET_H_
