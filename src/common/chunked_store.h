#ifndef HISTGRAPH_COMMON_CHUNKED_STORE_H_
#define HISTGRAPH_COMMON_CHUNKED_STORE_H_

#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/cow.h"
#include "common/flat_hash.h"

namespace hgdb {

/// \brief Chunked copy-on-write id containers — the Snapshot element stores.
///
/// The id space is cut into fixed ranges of 2^kRangeLog2 consecutive ids
/// ("chunks"); a hash spine (FlatHashMap keyed by id >> kRangeLog2) maps each
/// occupied range to a shared_ptr chunk holding an occupancy bitmap and, for
/// maps, a direct-indexed slot array. Copying a container copies the spine
/// and *shares every chunk*; mutating an element copies (at most) the one
/// chunk it lives in. Two snapshots emitted by the same retrieval plan
/// therefore share all chunks the plan did not touch between their emit
/// points, making k-point retrieval's marginal emit cost O(|delta|) instead
/// of O(|graph|) — the cross-snapshot structural sharing of the DeltaGraph
/// follow-up system (Khurana & Deshpande, 2015) applied in memory.
///
/// Why a direct-indexed chunk per id range (rather than hashing ids across
/// chunks): the workload's ids come from ++counters, so consecutive ids fill
/// consecutive chunks, fresh appends never touch old chunks at all, and the
/// spine never rehashes element positions — growth only *adds* spine
/// entries, so sharing survives growth. Sparse id ranges cost only their
/// occupied chunks (the spine is a hash map, not an array).
///
/// Thread-visibility contract (mirrors the Snapshot store-level COW; see
/// src/graph/README.md): chunks may be shared between containers owned by
/// different threads. A writer may mutate a chunk in place only while it is
/// the chunk's sole owner; the relaxed use_count() == 1 probe is ordered by
/// an acquire fence that pairs with the release-decrement performed by
/// whichever thread dropped the other reference. CowAnnotate* make that
/// protocol visible to TSan (no-ops in production).
///
/// The spine scaffolding — ctors/assignment, chunk-release annotations, the
/// sole-owner-or-clone gate, divergent-chunk walks, erase-with-vacated-chunk
/// handling, iterator settling — lives once in chunked_internal::SpineBase;
/// ChunkedIdMap / ChunkedIdSet differ only in element semantics (slot array
/// vs pure bitmap).
///
/// Invalidation rules match FlatHashMap: pointers into a container are
/// invalidated by every mutation of that container (the chunk they point
/// into may be replaced by a copy).

namespace chunked_internal {

inline bool TestBit(const uint64_t* bits, size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}
inline void SetBit(uint64_t* bits, size_t i) { bits[i >> 6] |= uint64_t{1} << (i & 63); }
inline void ClearBit(uint64_t* bits, size_t i) {
  bits[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

/// First occupied index >= `from`, or kWords*64 when none.
template <size_t kWords>
inline size_t NextOccupied(const uint64_t (&bits)[kWords], size_t from) {
  constexpr size_t kRange = kWords * 64;
  size_t word = from >> 6;
  if (word >= kWords) return kRange;
  const uint64_t first = bits[word] >> (from & 63);
  if (first != 0) return from + static_cast<size_t>(__builtin_ctzll(first));
  for (++word; word < kWords; ++word) {
    if (bits[word] != 0) {
      return (word << 6) + static_cast<size_t>(__builtin_ctzll(bits[word]));
    }
  }
  return kRange;
}

/// Sole-owner-or-clone gate for a spine slot. The acquire fence pairs with
/// the release-decrement of whichever thread dropped the other chunk
/// reference, ordering its reads of the chunk before our in-place writes
/// (free on x86; one dmb on ARM).
template <typename Chunk>
Chunk* MutableChunk(std::shared_ptr<Chunk>* slot) {
  if (slot->use_count() > 1) {
    auto fresh = std::make_shared<Chunk>(**slot);
    CowAnnotateRelease(slot->get());  // Our clone read the shared chunk.
    *slot = std::move(fresh);
  } else {
    std::atomic_thread_fence(std::memory_order_acquire);
    CowAnnotateAcquire(slot->get());
  }
  return slot->get();
}

/// \brief The shared chunk-spine scaffolding of ChunkedIdMap / ChunkedIdSet.
///
/// Owns the spine and the element count, and implements everything that does
/// not depend on what a chunk stores beyond its occupancy bitmap + count:
/// the COW copy/move/destroy protocol (with its TSan annotations), lookup,
/// erase, equality and divergence walks, per-part enumeration, and the
/// occupied-slot iterator core. `ChunkT` must expose `bits[kWords]`,
/// `count`, and `Test(i)`.
template <typename K, typename ChunkT, size_t kRangeLog2_>
class SpineBase {
 public:
  static constexpr size_t kRangeLog2 = kRangeLog2_;
  static constexpr size_t kRange = size_t{1} << kRangeLog2_;
  static constexpr size_t kWords = kRange / 64;
  static_assert(kRange >= 64, "chunks must cover at least one bitmap word");

  using Chunk = ChunkT;
  using ChunkPtr = std::shared_ptr<ChunkT>;
  using Spine = FlatHashMap<uint64_t, ChunkPtr>;

  SpineBase() = default;
  SpineBase(const SpineBase& other)
      : spine_(other.spine_), size_(other.size_) {}  // Shares every chunk.
  SpineBase& operator=(const SpineBase& other) {
    if (this != &other) {
      AnnotateReleaseChunks();
      spine_ = other.spine_;
      size_ = other.size_;
    }
    return *this;
  }
  SpineBase(SpineBase&& other) noexcept
      : spine_(std::move(other.spine_)), size_(other.size_) {
    other.size_ = 0;
  }
  SpineBase& operator=(SpineBase&& other) noexcept {
    if (this != &other) {
      AnnotateReleaseChunks();
      spine_ = std::move(other.spine_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }
  ~SpineBase() { AnnotateReleaseChunks(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    AnnotateReleaseChunks();
    spine_.clear();
    size_ = 0;
  }

  /// Pre-sizes the spine for ~n elements of dense ids. Never moves chunks.
  void reserve(size_t n) { spine_.reserve(n >> kRangeLog2_); }

  bool contains(const K& key) const {
    const ChunkPtr* c = spine_.FindValue(ChunkKey(key));
    return c != nullptr && (*c)->Test(SlotIndex(key));
  }

  // -- Introspection ---------------------------------------------------------
  size_t ChunkCount() const { return spine_.size(); }

  /// Bytes held by the spine and chunks themselves (not by heap-owning
  /// values — callers account those via iteration).
  size_t MemoryBytes() const {
    return spine_.TableBytes() + spine_.size() * sizeof(ChunkT);
  }

 protected:
  static uint64_t ChunkKey(const K& key) {
    return static_cast<uint64_t>(key) >> kRangeLog2_;
  }
  static size_t SlotIndex(const K& key) {
    return static_cast<size_t>(key) & (kRange - 1);
  }

  /// Calls fn(idx) for every occupied slot of `chunk`.
  template <typename Fn>
  static void ForEachOccupied(const ChunkT& chunk, Fn fn) {
    for (size_t i = NextOccupied(chunk.bits, 0); i < kRange;
         i = NextOccupied(chunk.bits, i + 1)) {
      fn(i);
    }
  }

  /// The writable chunk for `ck`, given the (possibly null) slot a FindValue
  /// just returned: creates a fresh chunk for an absent range, otherwise runs
  /// the sole-owner-or-clone gate.
  ChunkT* OwnedChunk(uint64_t ck, ChunkPtr* slot) {
    return slot == nullptr
               ? spine_.emplace(ck, std::make_shared<ChunkT>()).first->second.get()
               : MutableChunk(slot);
  }

  /// Erase skeleton shared by map and set: a chunk holding its last element
  /// is dropped from the spine (nothing is copied — its memory is reclaimed
  /// or returned to COW siblings); otherwise the chunk is made writable and
  /// `clear_slot(chunk, idx)` releases whatever the slot owns before the
  /// occupancy bit clears.
  template <typename ClearSlotFn>
  bool EraseImpl(const K& key, ClearSlotFn clear_slot) {
    const size_t idx = SlotIndex(key);
    ChunkPtr* slot = spine_.FindValue(ChunkKey(key));
    if (slot == nullptr || !(*slot)->Test(idx)) return false;
    if ((*slot)->count == 1) {  // Chunk becomes empty: drop it, copy nothing.
      CowAnnotateRelease(slot->get());
      spine_.erase(ChunkKey(key));
      --size_;
      return true;
    }
    ChunkT* c = MutableChunk(slot);
    clear_slot(c, idx);
    ClearBit(c->bits, idx);
    --c->count;
    --size_;
    return true;
  }

  /// Order-independent equality skeleton: totals, then per-range chunks with
  /// pointer-shared chunks short-circuited; `eq(mine, theirs)` compares two
  /// divergent chunks known to hold the same element count. Equal totals +
  /// equal per-chunk counts leave no room for extra chunks on the other side
  /// (empty chunks never stay in a spine).
  template <typename ChunkEq>
  bool EqualElements(const SpineBase& other, ChunkEq eq) const {
    if (size_ != other.size_) return false;
    for (const auto& [ck, chunk] : spine_) {
      const ChunkPtr* oc = other.spine_.FindValue(ck);
      if (oc == nullptr) return false;
      if (oc->get() == chunk.get()) continue;
      if ((*oc)->count != chunk->count) return false;
      if (!eq(*chunk, **oc)) return false;
    }
    return true;
  }

  /// Calls fn(ck, chunk) for every chunk not pointer-shared with `other`'s
  /// chunk of the same id range. Shared chunks are element-identical by
  /// construction, so diff loops skip them wholesale.
  template <typename Fn>
  void ForEachDivergentChunk(const SpineBase& other, Fn fn) const {
    for (const auto& [ck, chunk] : spine_) {
      const ChunkPtr* oc = other.spine_.FindValue(ck);
      if (oc != nullptr && oc->get() == chunk.get()) continue;
      fn(ck, *chunk);
    }
  }

  /// Enumerates this container's heap parts as fn(pointer, bytes): the spine
  /// (keyed by the container object) and each chunk (keyed by the chunk
  /// address — identical across containers that share it).
  template <typename PartFn, typename ChunkBytesFn>
  void ForEachPartImpl(PartFn fn, ChunkBytesFn chunk_bytes) const {
    fn(static_cast<const void*>(this), spine_.TableBytes());
    for (const auto& [ck, chunk] : spine_) {
      fn(static_cast<const void*>(chunk.get()), chunk_bytes(*chunk));
    }
  }

  /// Announces (for TSan) that this container is done reading every chunk it
  /// references; no-op in production builds.
  void AnnotateReleaseChunks() const {
#if defined(HISTGRAPH_TSAN)
    for (const auto& [ck, chunk] : spine_) CowAnnotateRelease(chunk.get());
#endif
  }

  /// Occupied-slot cursor shared by both const_iterators: walks the spine,
  /// settling on the next occupied bitmap slot. Derived iterators add only
  /// the dereference.
  class IterCore {
   public:
    IterCore() = default;
    IterCore(typename Spine::const_iterator it, typename Spine::const_iterator end,
             size_t idx)
        : it_(it), end_(end), idx_(idx) {
      Settle();
    }

    void Advance() {
      ++idx_;
      Settle();
    }
    bool Equal(const IterCore& o) const { return it_ == o.it_ && idx_ == o.idx_; }

   protected:
    void Settle() {
      while (it_ != end_) {
        idx_ = NextOccupied(it_->second->bits, idx_);
        if (idx_ < kRange) return;
        ++it_;
        idx_ = 0;
      }
      idx_ = 0;  // end() canonical form.
    }
    typename Spine::const_iterator it_, end_;
    size_t idx_ = 0;
  };

  Spine spine_;
  size_t size_ = 0;
};

template <typename V, size_t kRange>
struct MapChunk {
  uint64_t bits[kRange / 64] = {};
  uint32_t count = 0;
  V slots[kRange] = {};

  bool Test(size_t i) const { return TestBit(bits, i); }
};

template <size_t kRange>
struct SetChunk {
  uint64_t bits[kRange / 64] = {};
  uint32_t count = 0;

  bool Test(size_t i) const { return TestBit(bits, i); }
};

}  // namespace chunked_internal

/// Chunked COW map from an integer id to an arbitrary value type.
/// Chunks cover 2^kRangeLog2 consecutive ids (default 128).
template <typename K, typename V, size_t kRangeLog2 = 7>
class ChunkedIdMap
    : public chunked_internal::SpineBase<
          K, chunked_internal::MapChunk<V, (size_t{1} << kRangeLog2)>, kRangeLog2> {
  using Base = chunked_internal::SpineBase<
      K, chunked_internal::MapChunk<V, (size_t{1} << kRangeLog2)>, kRangeLog2>;
  using Base::spine_;
  using Base::size_;

 public:
  using Base::kRange;
  using typename Base::Chunk;
  using typename Base::ChunkPtr;
  using typename Base::Spine;

  const V* FindValue(const K& key) const {
    const ChunkPtr* c = spine_.FindValue(Base::ChunkKey(key));
    if (c == nullptr || !(*c)->Test(Base::SlotIndex(key))) return nullptr;
    return &(*c)->slots[Base::SlotIndex(key)];
  }

  /// Writable pointer to the value of `key`, or nullptr. Copies the chunk
  /// first if it is shared — the only sanctioned way to mutate a value in
  /// place.
  V* MutableValue(const K& key) {
    ChunkPtr* c = spine_.FindValue(Base::ChunkKey(key));
    if (c == nullptr || !(*c)->Test(Base::SlotIndex(key))) return nullptr;
    return &chunked_internal::MutableChunk(c)->slots[Base::SlotIndex(key)];
  }

  /// try_emplace semantics: no overwrite (and no chunk copy) when the key
  /// exists. The returned pointer aliases a possibly-shared chunk when
  /// `inserted` is false — treat it as read-only unless this container is
  /// known to be exclusive.
  template <typename... Args>
  std::pair<V*, bool> emplace(const K& key, Args&&... args) {
    const size_t idx = Base::SlotIndex(key);
    ChunkPtr* slot = spine_.FindValue(Base::ChunkKey(key));
    if (slot != nullptr && (*slot)->Test(idx)) {
      return {&(*slot)->slots[idx], false};
    }
    Chunk* c = Base::OwnedChunk(Base::ChunkKey(key), slot);
    c->slots[idx] = V(std::forward<Args>(args)...);
    chunked_internal::SetBit(c->bits, idx);
    ++c->count;
    ++size_;
    return {&c->slots[idx], true};
  }

  /// Inserts a default value if absent; owns the chunk either way.
  V& operator[](const K& key) {
    const size_t idx = Base::SlotIndex(key);
    ChunkPtr* slot = spine_.FindValue(Base::ChunkKey(key));
    Chunk* c = Base::OwnedChunk(Base::ChunkKey(key), slot);
    if (!c->Test(idx)) {
      chunked_internal::SetBit(c->bits, idx);
      ++c->count;
      ++size_;
    }
    return c->slots[idx];
  }

  /// Erases by key; true if the key existed. Fully vacated chunks leave the
  /// spine (their memory is reclaimed or returned to COW siblings).
  bool erase(const K& key) {
    return Base::EraseImpl(key, [](Chunk* c, size_t idx) {
      c->slots[idx] = V();  // Release any heap the value owns.
    });
  }

  /// Order-independent element equality; pointer-shared chunks short-circuit.
  bool operator==(const ChunkedIdMap& other) const {
    return Base::EqualElements(other, [](const Chunk& mine, const Chunk& theirs) {
      for (size_t i = chunked_internal::NextOccupied(mine.bits, 0); i < kRange;
           i = chunked_internal::NextOccupied(mine.bits, i + 1)) {
        if (!theirs.Test(i) || !(theirs.slots[i] == mine.slots[i])) return false;
      }
      return true;
    });
  }
  bool operator!=(const ChunkedIdMap& other) const { return !(*this == other); }

  /// Calls fn(key, value) for every element living in a chunk that is not
  /// pointer-shared with `other`'s chunk of the same id range. Shared chunks
  /// are element-identical by construction, so diff loops skip them wholesale.
  template <typename Fn>
  void ForEachDivergent(const ChunkedIdMap& other, Fn fn) const {
    Base::ForEachDivergentChunk(other, [&](uint64_t ck, const Chunk& chunk) {
      const K base = static_cast<K>(ck << kRangeLog2);
      Base::ForEachOccupied(chunk, [&](size_t i) {
        fn(static_cast<K>(base | i), chunk.slots[i]);
      });
    });
  }

  /// Merges a container with disjoint keys: ranges absent here adopt the
  /// other side's chunk pointer (O(1), shared); colliding ranges copy the
  /// other side's elements in.
  void MergeDisjointCopy(const ChunkedIdMap& other) {
    for (const auto& [ck, chunk] : other.spine_) {
      MergeChunk(ck, ChunkPtr(chunk), /*may_move_values=*/false);
    }
  }
  /// As MergeDisjointCopy, but may move values out of chunks this side of
  /// the merge solely owns (large attribute maps avoid a deep copy).
  void MergeDisjointMove(ChunkedIdMap&& other) {
    for (auto& [ck, chunk] : other.spine_) {
      // Moving values out mutates `chunk` in place, so the sole-owner probe
      // needs the same acquire pairing as MutableChunk: a sibling's last
      // reference may have been dropped on another thread, and its reads
      // must be ordered before our writes.
      const bool sole = chunk.use_count() == 1;
      if (sole) {
        std::atomic_thread_fence(std::memory_order_acquire);
        CowAnnotateAcquire(chunk.get());
      }
      MergeChunk(ck, std::move(chunk), /*may_move_values=*/sole);
    }
    other.spine_.clear();
    other.size_ = 0;
  }

  /// ForEachPart with per-value heap accounting: `value_bytes` reports the
  /// heap owned by one value (return 0 for inline values).
  template <typename PartFn, typename ValueBytesFn>
  void ForEachPart(PartFn fn, ValueBytesFn value_bytes) const {
    Base::ForEachPartImpl(fn, [&](const Chunk& chunk) {
      size_t bytes = sizeof(Chunk);
      Base::ForEachOccupied(chunk, [&](size_t i) { bytes += value_bytes(chunk.slots[i]); });
      return bytes;
    });
  }

  // -- Iteration (const only; yields proxy pairs) ----------------------------
  class const_iterator : public Base::IterCore {
   public:
    using value_type = std::pair<K, const V&>;
    using reference = value_type;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(typename Spine::const_iterator it,
                   typename Spine::const_iterator end, size_t idx)
        : Base::IterCore(it, end, idx) {}

    reference operator*() const {
      const auto& [ck, chunk] = *this->it_;
      return {static_cast<K>((ck << kRangeLog2) | this->idx_),
              chunk->slots[this->idx_]};
    }
    const_iterator& operator++() {
      this->Advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return this->Equal(o); }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }
  };

  const_iterator begin() const {
    return const_iterator(spine_.begin(), spine_.end(), 0);
  }
  const_iterator end() const {
    return const_iterator(spine_.end(), spine_.end(), 0);
  }

 private:
  void MergeChunk(uint64_t ck, ChunkPtr theirs, bool may_move_values) {
    ChunkPtr* mine = spine_.FindValue(ck);
    if (mine == nullptr) {
      size_ += theirs->count;
      spine_.emplace(ck, std::move(theirs));
      return;
    }
    Chunk* c = chunked_internal::MutableChunk(mine);
    Base::ForEachOccupied(*theirs, [&](size_t i) {
      if (c->Test(i)) return;  // Disjoint by contract; be tolerant anyway.
      if (may_move_values) {
        c->slots[i] = std::move(theirs->slots[i]);
      } else {
        c->slots[i] = theirs->slots[i];
      }
      chunked_internal::SetBit(c->bits, i);
      ++c->count;
      ++size_;
    });
  }
};

/// Chunked COW set of integer ids: bitmap-only chunks covering 2^kRangeLog2
/// consecutive ids (default 256 — a 32-byte bitmap per chunk).
template <typename K, size_t kRangeLog2 = 8>
class ChunkedIdSet
    : public chunked_internal::SpineBase<
          K, chunked_internal::SetChunk<(size_t{1} << kRangeLog2)>, kRangeLog2> {
  using Base = chunked_internal::SpineBase<
      K, chunked_internal::SetChunk<(size_t{1} << kRangeLog2)>, kRangeLog2>;
  using Base::spine_;
  using Base::size_;

 public:
  using Base::kRange;
  using Base::kWords;
  using typename Base::Chunk;
  using typename Base::ChunkPtr;
  using typename Base::Spine;

  /// Returns true if the key was newly inserted.
  bool insert(const K& key) {
    const size_t idx = Base::SlotIndex(key);
    ChunkPtr* slot = spine_.FindValue(Base::ChunkKey(key));
    if (slot != nullptr && (*slot)->Test(idx)) return false;
    Chunk* c = Base::OwnedChunk(Base::ChunkKey(key), slot);
    chunked_internal::SetBit(c->bits, idx);
    ++c->count;
    ++size_;
    return true;
  }

  bool erase(const K& key) {
    return Base::EraseImpl(key, [](Chunk*, size_t) {});
  }

  bool operator==(const ChunkedIdSet& other) const {
    return Base::EqualElements(other, [](const Chunk& mine, const Chunk& theirs) {
      for (size_t w = 0; w < kWords; ++w) {
        if (mine.bits[w] != theirs.bits[w]) return false;
      }
      return true;
    });
  }
  bool operator!=(const ChunkedIdSet& other) const { return !(*this == other); }

  /// Calls fn(key) for every id living in a chunk not pointer-shared with
  /// `other`'s chunk of the same range (see ChunkedIdMap::ForEachDivergent).
  template <typename Fn>
  void ForEachDivergent(const ChunkedIdSet& other, Fn fn) const {
    Base::ForEachDivergentChunk(other, [&](uint64_t ck, const Chunk& chunk) {
      const K base = static_cast<K>(ck << kRangeLog2);
      Base::ForEachOccupied(chunk, [&](size_t i) { fn(static_cast<K>(base | i)); });
    });
  }

  void MergeDisjointCopy(const ChunkedIdSet& other) {
    for (const auto& [ck, chunk] : other.spine_) MergeChunk(ck, ChunkPtr(chunk));
  }
  void MergeDisjointMove(ChunkedIdSet&& other) {
    for (auto& [ck, chunk] : other.spine_) MergeChunk(ck, std::move(chunk));
    other.spine_.clear();
    other.size_ = 0;
  }

  template <typename PartFn>
  void ForEachPart(PartFn fn) const {
    Base::ForEachPartImpl(fn, [](const Chunk&) { return sizeof(Chunk); });
  }

  class const_iterator : public Base::IterCore {
   public:
    using value_type = K;
    using reference = K;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(typename Spine::const_iterator it,
                   typename Spine::const_iterator end, size_t idx)
        : Base::IterCore(it, end, idx) {}

    reference operator*() const {
      return static_cast<K>((this->it_->first << kRangeLog2) | this->idx_);
    }
    const_iterator& operator++() {
      this->Advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return this->Equal(o); }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }
  };
  using iterator = const_iterator;

  const_iterator begin() const {
    return const_iterator(spine_.begin(), spine_.end(), 0);
  }
  const_iterator end() const {
    return const_iterator(spine_.end(), spine_.end(), 0);
  }

 private:
  void MergeChunk(uint64_t ck, ChunkPtr theirs) {
    ChunkPtr* mine = spine_.FindValue(ck);
    if (mine == nullptr) {
      size_ += theirs->count;
      spine_.emplace(ck, std::move(theirs));
      return;
    }
    Chunk* c = chunked_internal::MutableChunk(mine);
    for (size_t w = 0; w < kWords; ++w) {
      const uint64_t added = theirs->bits[w] & ~c->bits[w];
      c->bits[w] |= theirs->bits[w];
      const auto n = static_cast<uint32_t>(__builtin_popcountll(added));
      c->count += n;
      size_ += n;
    }
  }
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_CHUNKED_STORE_H_
