#ifndef HISTGRAPH_COMMON_CODING_H_
#define HISTGRAPH_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace hgdb {

/// Binary encoding primitives (LevelDB-style varints and length-prefixed
/// strings). All multi-byte fixed-width values are little-endian. These are
/// the building blocks of every serialized delta, eventlist, and skeleton.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// ZigZag-encodes a signed value so that small magnitudes stay small.
void PutVarsint64(std::string* dst, int64_t value);

/// Each Get* consumes bytes from the front of `input` on success. On failure
/// (truncated input) they return false/Corruption and leave `input` unspecified.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetVarsint64(Slice* input, int64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetLengthPrefixedString(Slice* input, std::string* result);

/// Convenience Status-returning wrappers for deserializers.
Status ExpectVarint64(Slice* input, uint64_t* value, const char* what);
Status ExpectLengthPrefixedString(Slice* input, std::string* value, const char* what);

/// 64-bit mixing hash (splitmix64 finalizer). Deterministic across platforms;
/// used for partitioning node ids and for the hash-based event selection of the
/// Skewed/Mixed differential functions (Section 5.2 of the paper).
uint64_t Mix64(uint64_t x);

/// Hashes an arbitrary byte string (FNV-1a 64-bit followed by Mix64).
uint64_t HashBytes(const char* data, size_t n, uint64_t seed = 0);

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_CODING_H_
