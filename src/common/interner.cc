#include "common/interner.h"

#include <cstdio>
#include <cstdlib>

#include "common/coding.h"

namespace hgdb {

StringInterner::IndexTable::IndexTable(size_t cap)
    : capacity(cap),
      hashes(new std::atomic<uint64_t>[cap]()),
      ids(new std::atomic<uint32_t>[cap]()) {}

StringInterner::StringInterner()
    : shards_(new Shard[kNumShards]),
      chunks_(new std::atomic<std::string*>[kMaxChunks]()) {
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_[i].tables.push_back(std::make_unique<IndexTable>(size_t{1} << 8));
    shards_[i].index.store(shards_[i].tables.back().get(),
                           std::memory_order_release);
  }
}

StringInterner& StringInterner::Global() {
  static StringInterner* interner = new StringInterner();  // Never destroyed.
  return *interner;
}

uint64_t StringInterner::HashKey(std::string_view s) {
  // Nonzero (0 marks an empty index slot).
  return HashBytes(s.data(), s.size(), 0x5eed) | 1;
}

void StringInterner::InsertLocked(IndexTable* t, uint64_t h, AttrId id) {
  const size_t mask = t->capacity - 1;
  size_t idx = h & mask;
  while (t->hashes[idx].load(std::memory_order_relaxed) != 0) {
    idx = (idx + 1) & mask;
  }
  // Publish the id before the hash: a reader that acquires the hash is
  // guaranteed to see the id (and, transitively, the string bytes).
  t->ids[idx].store(id, std::memory_order_release);
  t->hashes[idx].store(h, std::memory_order_release);
}

AttrId StringInterner::InternSlow(Shard& shard, uint64_t h, std::string_view s) {
  std::lock_guard<std::mutex> lock(shard.mu);
  IndexTable* table = shard.index.load(std::memory_order_relaxed);
  // Re-probe: the string may have been interned between the lock-free miss
  // and acquiring the lock (equal strings hash to the same shard, so the
  // shard lock is enough to make first-sight interns unique).
  if (const AttrId raced = Probe(table, h, s); raced != kInvalidAttrId) {
    return raced;
  }

  // Allocate the id from the shard's current chunk, grabbing a fresh chunk
  // from the shared counter when it's full. Chunks are owned by one shard,
  // so the string write below is ordered by this shard's lock alone.
  if (shard.owned_chunks.empty() || shard.chunk_used == kChunkSize) {
    const uint32_t chunk_idx =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk_idx >= kMaxChunks) {
      std::fprintf(stderr, "StringInterner: id space exhausted\n");
      std::abort();
    }
    chunks_[chunk_idx].store(new std::string[kChunkSize],
                             std::memory_order_release);
    shard.owned_chunks.push_back(chunk_idx);
    shard.chunk_used = 0;
  }
  const uint32_t id = (shard.owned_chunks.back() << kChunkShift) |
                      shard.chunk_used++;
  chunks_[id >> kChunkShift].load(std::memory_order_relaxed)[id & kChunkMask] =
      std::string(s);

  // Grow the index at 70% load. Old tables are retired, not freed: a reader
  // may still be probing one (append-only, so stale tables are merely
  // incomplete — its misses fall through to this locked path).
  ++shard.count;
  if (shard.count * 10 > table->capacity * 7) {
    auto grown = std::make_unique<IndexTable>(table->capacity * 2);
    for (size_t i = 0; i < table->capacity; ++i) {
      const uint64_t hv = table->hashes[i].load(std::memory_order_relaxed);
      if (hv != 0) {
        InsertLocked(grown.get(), hv,
                     table->ids[i].load(std::memory_order_relaxed));
      }
    }
    table = grown.get();
    shard.tables.push_back(std::move(grown));
    shard.index.store(table, std::memory_order_release);
  }

  InsertLocked(table, h, id);
  size_.fetch_add(1, std::memory_order_release);
  return id;
}

size_t StringInterner::MemoryBytes() const {
  size_t bytes = kMaxChunks * sizeof(std::atomic<std::string*>);
  for (size_t i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    // Under the shard lock every string this shard wrote is fully published.
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.owned_chunks.size() * kChunkSize * sizeof(std::string);
    for (size_t c = 0; c < shard.owned_chunks.size(); ++c) {
      const std::string* chunk =
          chunks_[shard.owned_chunks[c]].load(std::memory_order_relaxed);
      const size_t used = c + 1 == shard.owned_chunks.size() ? shard.chunk_used
                                                             : kChunkSize;
      for (size_t j = 0; j < used; ++j) {
        if (chunk[j].capacity() > sizeof(std::string)) bytes += chunk[j].capacity();
      }
    }
    const IndexTable* t = shard.index.load(std::memory_order_relaxed);
    bytes += t->capacity * (sizeof(uint64_t) + sizeof(uint32_t));
  }
  return bytes;
}

}  // namespace hgdb
