#include "common/interner.h"

#include <cstdio>
#include <cstdlib>

#include "common/coding.h"

namespace hgdb {

StringInterner::IndexTable::IndexTable(size_t cap)
    : capacity(cap),
      hashes(new std::atomic<uint64_t>[cap]()),
      ids(new std::atomic<uint32_t>[cap]()) {}

StringInterner::StringInterner()
    : chunks_(new std::atomic<std::string*>[kMaxChunks]()) {
  tables_.push_back(std::make_unique<IndexTable>(size_t{1} << 12));
  index_.store(tables_.back().get(), std::memory_order_release);
}

StringInterner& StringInterner::Global() {
  static StringInterner* interner = new StringInterner();  // Never destroyed.
  return *interner;
}

uint64_t StringInterner::HashKey(std::string_view s) {
  // Nonzero (0 marks an empty index slot).
  return HashBytes(s.data(), s.size(), 0x5eed) | 1;
}

void StringInterner::InsertLocked(IndexTable* t, uint64_t h, AttrId id) {
  const size_t mask = t->capacity - 1;
  size_t idx = h & mask;
  while (t->hashes[idx].load(std::memory_order_relaxed) != 0) {
    idx = (idx + 1) & mask;
  }
  // Publish the id before the hash: a reader that acquires the hash is
  // guaranteed to see the id (and, transitively, the string bytes).
  t->ids[idx].store(id, std::memory_order_release);
  t->hashes[idx].store(h, std::memory_order_release);
}

AttrId StringInterner::InternSlow(uint64_t h, std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  IndexTable* table = index_.load(std::memory_order_relaxed);
  // Re-probe: the string may have been interned between the lock-free miss
  // and acquiring the lock (the table is stable under the lock).
  if (const AttrId raced = Probe(table, h, s); raced != kInvalidAttrId) {
    return raced;
  }

  const uint32_t id = size_.load(std::memory_order_relaxed);
  const size_t chunk_idx = id >> kChunkShift;
  if (chunk_idx >= kMaxChunks) {
    std::fprintf(stderr, "StringInterner: id space exhausted\n");
    std::abort();
  }
  std::string* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kChunkSize];
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk[id & kChunkMask] = std::string(s);

  // Grow the index at 70% load. Old tables are retired, not freed: a reader
  // may still be probing one (append-only, so stale tables are merely
  // incomplete — its misses fall through to this locked path).
  if ((id + 1) * 10 > table->capacity * 7) {
    auto grown = std::make_unique<IndexTable>(table->capacity * 2);
    for (size_t i = 0; i < table->capacity; ++i) {
      const uint64_t hv = table->hashes[i].load(std::memory_order_relaxed);
      if (hv != 0) {
        InsertLocked(grown.get(), hv,
                     table->ids[i].load(std::memory_order_relaxed));
      }
    }
    table = grown.get();
    tables_.push_back(std::move(grown));
    index_.store(table, std::memory_order_release);
  }

  InsertLocked(table, h, id);
  size_.store(id + 1, std::memory_order_release);
  return id;
}

size_t StringInterner::MemoryBytes() const {
  const uint32_t n = size_.load(std::memory_order_acquire);
  size_t bytes = kMaxChunks * sizeof(std::atomic<std::string*>);
  const size_t chunks_used = (n + kChunkSize - 1) >> kChunkShift;
  bytes += chunks_used * kChunkSize * sizeof(std::string);
  for (uint32_t id = 0; id < n; ++id) {
    const std::string& s = Get(id);
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  const IndexTable* t = index_.load(std::memory_order_acquire);
  bytes += t->capacity * (sizeof(uint64_t) + sizeof(uint32_t));
  return bytes;
}

}  // namespace hgdb
