#ifndef HISTGRAPH_COMMON_RANDOM_H_
#define HISTGRAPH_COMMON_RANDOM_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace hgdb {

/// \brief Deterministic pseudo-random generator used by workload generators and
/// property tests. All randomness in the repository flows through explicit
/// seeds so that every experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Geometric-ish small count >= 1 with mean roughly `mean` (used for paper
  /// sizes like authors-per-paper).
  uint64_t SmallCount(double mean) {
    std::poisson_distribution<uint64_t> dist(mean > 1.0 ? mean - 1.0 : 0.1);
    return 1 + dist(engine_);
  }

  /// Random lowercase ASCII string of length n.
  std::string String(size_t n) {
    std::string s(n, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf-distributed integers in [0, n) with exponent `theta`.
///
/// Used for skewed attribute/label selection in workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(sum);
    }
    for (auto& v : cdf_) v /= sum;
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_RANDOM_H_
