#include "common/coding.h"

#include <cstring>

namespace hgdb {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarsint64(std::string* dst, int64_t value) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(dst, zigzag);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  std::memcpy(value, input->data(), 4);
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  std::memcpy(value, input->data(), 8);
  input->RemovePrefix(8);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const auto byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarsint64(Slice* input, int64_t* value) {
  uint64_t zigzag;
  if (!GetVarint64(input, &zigzag)) return false;
  *value = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

bool GetLengthPrefixedString(Slice* input, std::string* result) {
  Slice s;
  if (!GetLengthPrefixedSlice(input, &s)) return false;
  result->assign(s.data(), s.size());
  return true;
}

Status ExpectVarint64(Slice* input, uint64_t* value, const char* what) {
  if (!GetVarint64(input, value)) {
    return Status::Corruption(std::string("truncated varint: ") + what);
  }
  return Status::OK();
}

Status ExpectLengthPrefixedString(Slice* input, std::string* value, const char* what) {
  if (!GetLengthPrefixedString(input, value)) {
    return Status::Corruption(std::string("truncated string: ") + what);
  }
  return Status::OK();
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const char* data, size_t n, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

}  // namespace hgdb
