#include "common/env_util.h"

#include <cstdlib>
#include <filesystem>

namespace hgdb {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

double WorkloadScale() { return GetEnvDouble("HISTGRAPH_SCALE", 1.0); }

std::string FreshScratchDir(const std::string& tag) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "histgraph-scratch" / tag;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

}  // namespace hgdb
