#ifndef HISTGRAPH_COMMON_STATUS_H_
#define HISTGRAPH_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hgdb {

/// \brief Result status of a library operation.
///
/// HistGraph does not throw exceptions across its public API (Google style /
/// RocksDB idiom); every fallible operation returns a Status (or a Result<T>,
/// see result.h). A Status is cheap to copy in the OK case.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kOutOfRange = 6,
    kInternal = 7,
    /// Transient overload: the server declined admission (queue full,
    /// concurrency limit). Retrying later is expected to succeed.
    kUnavailable = 8,
    /// The caller's deadline expired before the operation completed.
    kDeadlineExceeded = 9,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) { return Status(Code::kIOError, std::move(msg)); }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "NotFound: delta 42 missing".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. For use inside functions that
/// themselves return Status.
#define HG_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::hgdb::Status _hg_status = (expr);        \
    if (!_hg_status.ok()) return _hg_status;   \
  } while (false)

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_STATUS_H_
