#ifndef HISTGRAPH_COMMON_COW_H_
#define HISTGRAPH_COMMON_COW_H_

// Shared-block copy-on-write helpers used by the Snapshot stores at both
// sharing granularities: whole stores (graph/snapshot.h) and the chunks
// inside them (common/chunked_store.h).
//
// ThreadSanitizer does not model standalone atomic_thread_fence, so the COW
// sole-owner fast path — correct on hardware via use_count() + acquire fence
// pairing with the refcount's release-decrement — is invisible to it and
// reported as a race. Under TSan we mirror the fence protocol with explicit
// happens-before annotations on the shared block's address: every path that
// drops a reference announces (release) after its last read of the block,
// and the sole-owner write path joins (acquire) before writing in place.
// Production builds compile these away entirely.

#if defined(__SANITIZE_THREAD__)
#define HISTGRAPH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HISTGRAPH_TSAN 1
#endif
#endif

#if defined(HISTGRAPH_TSAN)
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#endif

namespace hgdb {

inline void CowAnnotateAcquire([[maybe_unused]] const void* block) {
#if defined(HISTGRAPH_TSAN)
  if (block != nullptr) __tsan_acquire(const_cast<void*>(block));
#endif
}

inline void CowAnnotateRelease([[maybe_unused]] const void* block) {
#if defined(HISTGRAPH_TSAN)
  if (block != nullptr) __tsan_release(const_cast<void*>(block));
#endif
}

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_COW_H_
