#ifndef HISTGRAPH_COMMON_ENV_UTIL_H_
#define HISTGRAPH_COMMON_ENV_UTIL_H_

#include <cstdint>
#include <string>

namespace hgdb {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable. Benchmarks use HISTGRAPH_SCALE to scale workload sizes.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Reads a floating-point environment variable.
double GetEnvDouble(const char* name, double fallback);

/// Reads a string environment variable, returning `fallback` when unset.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Global workload scale factor (HISTGRAPH_SCALE, default 1).
double WorkloadScale();

/// Creates (if needed) and returns a scratch directory for on-disk stores used
/// by tests and benches, e.g. "/tmp/histgraph-scratch/<tag>". The directory is
/// wiped on each call.
std::string FreshScratchDir(const std::string& tag);

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_ENV_UTIL_H_
