#include "common/dynamic_bitset.h"

#include <algorithm>

namespace hgdb {

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] != other.words_[i]) return false;
  }
  const auto& longer = words_.size() > other.words_.size() ? words_ : other.words_;
  for (size_t i = common; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

}  // namespace hgdb
