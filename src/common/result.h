#ifndef HISTGRAPH_COMMON_RESULT_H_
#define HISTGRAPH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hgdb {

/// \brief A Status or a value of type T (analogous to arrow::Result /
/// absl::StatusOr).
///
/// A Result holds either an OK status together with a value, or a non-OK
/// status. Accessing the value of a non-OK Result is a programming error
/// (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define HG_ASSIGN_OR_RETURN(lhs, expr)               \
  do {                                               \
    auto _hg_result = (expr);                        \
    if (!_hg_result.ok()) return _hg_result.status(); \
    lhs = std::move(_hg_result).value();             \
  } while (false)

}  // namespace hgdb

#endif  // HISTGRAPH_COMMON_RESULT_H_
