#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace hgdb {

GeneratedTrace GenerateRandomTrace(const RandomTraceOptions& options) {
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(options.seed);
  TraceWorld& w = *trace.world;
  auto& out = trace.events;
  Rng& rng = w.rng();

  Timestamp t = options.start_time;
  // Seed a couple of nodes so edge events have endpoints.
  w.AddNode(t, options.attrs_per_new_node, &out);
  w.AddNode(t, options.attrs_per_new_node, &out);

  while (out.size() < options.num_events) {
    if (!rng.Chance(options.p_same_time)) t += 1 + rng.Uniform(3);
    const double roll = rng.NextDouble();
    double acc = 0.0;
    if (roll < (acc += options.p_add_node)) {
      w.AddNode(t, options.attrs_per_new_node, &out);
    } else if (roll < (acc += options.p_add_edge)) {
      w.AddRandomEdge(t, rng.Chance(0.3), &out);
    } else if (roll < (acc += options.p_del_edge)) {
      w.DeleteRandomEdge(t, &out);
    } else if (roll < (acc += options.p_del_node)) {
      // Keep a minimum population so the trace stays interesting.
      if (w.node_count() > 4) w.DeleteRandomNode(t, &out);
    } else if (roll < (acc += options.p_node_attr)) {
      w.UpdateRandomNodeAttr(t, &out);
    } else if (roll < (acc += options.p_edge_attr)) {
      w.UpdateRandomEdgeAttr(t, &out);
    } else {
      w.EmitTransientEdge(t, &out);
    }
  }
  return trace;
}

GeneratedTrace GenerateDblpLikeTrace(const DblpLikeOptions& options) {
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(options.seed);
  TraceWorld& w = *trace.world;
  auto& out = trace.events;
  Rng& rng = w.rng();

  // Yearly paper volume: base * growth^year, normalized so the total edge
  // count lands near target_edges (average paper contributes ~2.6 edges:
  // author cliques of mean size ~2.6 authors).
  double growth_sum = 0.0;
  for (int y = 0; y < options.years; ++y) {
    growth_sum += std::pow(options.yearly_growth, y);
  }
  const double avg_edges_per_paper = 2.6;
  const double base_papers =
      static_cast<double>(options.target_edges) / (avg_edges_per_paper * growth_sum);

  // Preferential re-selection pool: one entry per (author, paper) incidence.
  std::vector<NodeId> activity_pool;

  for (int y = 0; y < options.years && out.size() < options.target_edges * 4; ++y) {
    const auto papers = static_cast<size_t>(
        std::max(1.0, base_papers * std::pow(options.yearly_growth, y)));
    for (size_t p = 0; p < papers; ++p) {
      // Publication date: a day within the year.
      const Timestamp t = static_cast<Timestamp>(y) * 365 + 1 +
                          static_cast<Timestamp>(rng.Uniform(365));
      const size_t team = 2 + rng.Uniform(3);  // 2..4 authors.
      std::vector<NodeId> authors;
      for (size_t a = 0; a < team; ++a) {
        NodeId id;
        if (activity_pool.empty() || rng.Chance(options.new_author_prob)) {
          id = w.AddNode(t, options.attrs_per_node, &out);
        } else {
          id = activity_pool[rng.Uniform(activity_pool.size())];
        }
        if (std::find(authors.begin(), authors.end(), id) == authors.end()) {
          authors.push_back(id);
        }
      }
      for (size_t i = 0; i < authors.size(); ++i) {
        for (size_t j = i + 1; j < authors.size(); ++j) {
          // Repeat collaborations create parallel edges deliberately.
          w.AddEdge(t, authors[i], authors[j], /*directed=*/false, &out);
        }
      }
      for (NodeId a : authors) activity_pool.push_back(a);
    }
  }
  // Events are generated per-paper with random days; restore chronology.
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
  return trace;
}

void AppendChurnPhase(TraceWorld* world, Timestamp start_time,
                      const ChurnOptions& options, std::vector<Event>* out) {
  Rng& rng = world->rng();
  Timestamp t = start_time;
  size_t produced = 0;
  while (produced < options.num_events) {
    const size_t before = out->size();
    t += 1 + rng.Uniform(static_cast<uint64_t>(options.time_step) + 1);
    const double roll = rng.NextDouble();
    if (roll < options.attr_update_fraction) {
      if (rng.Chance(0.7)) {
        world->UpdateRandomNodeAttr(t, out);
      } else {
        world->UpdateRandomEdgeAttr(t, out);
      }
    } else if (rng.NextDouble() < options.add_fraction) {
      world->AddRandomEdge(t, /*directed=*/false, out);
    } else if (world->edge_count() > 0) {
      world->DeleteRandomEdge(t, out);
    } else {
      world->AddRandomEdge(t, /*directed=*/false, out);
    }
    produced += out->size() - before;
  }
}

GeneratedTrace GeneratePatentLikeTrace(const PatentLikeOptions& options) {
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(options.seed);
  TraceWorld& w = *trace.world;
  auto& out = trace.events;
  Rng& rng = w.rng();

  // Bootstrap: patents arrive in order; each cites ~E/N earlier patents with
  // preferential attachment (citation counts follow a heavy tail).
  std::vector<NodeId> patents;
  patents.reserve(options.initial_nodes);
  std::vector<NodeId> citation_pool;
  const double cites_per_patent = static_cast<double>(options.initial_edges) /
                                  static_cast<double>(options.initial_nodes);
  Timestamp t = 1;
  for (size_t i = 0; i < options.initial_nodes; ++i) {
    if (i % 16 == 0) ++t;  // Bursty arrivals: many patents share a day.
    const NodeId id = w.AddNode(t, options.attrs_per_node, &out);
    patents.push_back(id);
    const auto cites = static_cast<size_t>(cites_per_patent * 0.5 +
                                           rng.Uniform(static_cast<uint64_t>(
                                               cites_per_patent + 1)));
    for (size_t c = 0; c < cites && patents.size() > 1; ++c) {
      const NodeId target = (citation_pool.empty() || rng.Chance(0.3))
                                ? patents[rng.Uniform(patents.size() - 1)]
                                : citation_pool[rng.Uniform(citation_pool.size())];
      if (target == id) continue;
      w.AddEdge(t, id, target, /*directed=*/true, &out);
      citation_pool.push_back(target);
    }
  }
  ChurnOptions churn;
  churn.num_events = options.churn_events;
  churn.seed = options.seed + 1;
  AppendChurnPhase(&w, t + 1, churn, &out);
  return trace;
}

}  // namespace hgdb
