#include "workload/trace_world.h"

#include <cassert>

namespace hgdb {

NodeId TraceWorld::AddNode(Timestamp t, size_t attr_count, std::vector<Event>* out) {
  const NodeId id = next_node_id_++;
  out->push_back(Event::AddNode(t, id));
  graph_.AddNode(id);
  node_pos_[id] = node_ids_.size();
  node_ids_.push_back(id);
  for (size_t i = 0; i < attr_count; ++i) {
    const std::string key = "attr" + std::to_string(i);
    const std::string value = rng_.String(8);
    out->push_back(Event::SetNodeAttr(t, id, key, std::nullopt, value));
    graph_.SetNodeAttr(id, key, value);
  }
  return id;
}

EdgeId TraceWorld::AddEdge(Timestamp t, NodeId src, NodeId dst, bool directed,
                           std::vector<Event>* out) {
  const EdgeId id = next_edge_id_++;
  out->push_back(Event::AddEdge(t, id, src, dst, directed));
  graph_.AddEdge(id, EdgeRecord{src, dst, directed});
  edge_pos_[id] = edge_ids_.size();
  edge_ids_.push_back(id);
  incident_[src].insert(id);
  incident_[dst].insert(id);
  return id;
}

EdgeId TraceWorld::AddRandomEdge(Timestamp t, bool directed, std::vector<Event>* out) {
  if (node_ids_.size() < 2) return kInvalidEdgeId;
  const NodeId a = node_ids_[rng_.Uniform(node_ids_.size())];
  NodeId b = node_ids_[rng_.Uniform(node_ids_.size())];
  for (int tries = 0; b == a && tries < 8; ++tries) {
    b = node_ids_[rng_.Uniform(node_ids_.size())];
  }
  if (a == b) return kInvalidEdgeId;
  return AddEdge(t, a, b, directed, out);
}

void TraceWorld::DeleteEdge(Timestamp t, EdgeId e, std::vector<Event>* out) {
  const EdgeRecord* rec = graph_.FindEdge(e);
  assert(rec != nullptr);
  const EdgeRecord copy = *rec;
  // Attributes must be removed before the structural delete. The removal
  // events carry the edge endpoints so partitioned indexes co-locate them
  // with the edge itself.
  if (const AttrMap* attrs = graph_.GetEdgeAttrs(e)) {
    const AttrMap attrs_copy = *attrs;
    for (const auto& [k, v] : attrs_copy) {
      Event ev = Event::SetEdgeAttr(t, e, AttrStr(k), AttrStr(v), std::nullopt);
      ev.src = copy.src;
      ev.dst = copy.dst;
      out->push_back(std::move(ev));
      graph_.RemoveEdgeAttrId(e, k);
    }
  }
  out->push_back(Event::DeleteEdge(t, e, copy.src, copy.dst, copy.directed));
  graph_.RemoveEdge(e);
  incident_[copy.src].erase(e);
  incident_[copy.dst].erase(e);
  const size_t pos = edge_pos_[e];
  edge_pos_[edge_ids_.back()] = pos;
  std::swap(edge_ids_[pos], edge_ids_.back());
  edge_ids_.pop_back();
  edge_pos_.erase(e);
}

bool TraceWorld::DeleteRandomEdge(Timestamp t, std::vector<Event>* out) {
  if (edge_ids_.empty()) return false;
  DeleteEdge(t, edge_ids_[rng_.Uniform(edge_ids_.size())], out);
  return true;
}

bool TraceWorld::DeleteRandomNode(Timestamp t, std::vector<Event>* out) {
  if (node_ids_.empty()) return false;
  const NodeId n = node_ids_[rng_.Uniform(node_ids_.size())];
  // Remove incident edges first.
  auto it = incident_.find(n);
  if (it != incident_.end()) {
    const std::vector<EdgeId> edges(it->second.begin(), it->second.end());
    for (EdgeId e : edges) DeleteEdge(t, e, out);
  }
  incident_.erase(n);
  if (const AttrMap* attrs = graph_.GetNodeAttrs(n)) {
    const AttrMap attrs_copy = *attrs;
    for (const auto& [k, v] : attrs_copy) {
      out->push_back(Event::SetNodeAttr(t, n, AttrStr(k), AttrStr(v), std::nullopt));
      graph_.RemoveNodeAttrId(n, k);
    }
  }
  out->push_back(Event::DeleteNode(t, n));
  graph_.RemoveNode(n);
  const size_t pos = node_pos_[n];
  node_pos_[node_ids_.back()] = pos;
  std::swap(node_ids_[pos], node_ids_.back());
  node_ids_.pop_back();
  node_pos_.erase(n);
  return true;
}

void TraceWorld::SetNodeAttr(Timestamp t, NodeId n, const std::string& key,
                             const std::string& value, std::vector<Event>* out) {
  const std::string* old = graph_.GetNodeAttr(n, key);
  out->push_back(Event::SetNodeAttr(
      t, n, key, old ? std::optional<std::string>(*old) : std::nullopt, value));
  graph_.SetNodeAttr(n, key, value);
}

bool TraceWorld::UpdateRandomNodeAttr(Timestamp t, std::vector<Event>* out) {
  if (node_ids_.empty()) return false;
  const NodeId n = node_ids_[rng_.Uniform(node_ids_.size())];
  const std::string key = "attr" + std::to_string(rng_.Uniform(10));
  SetNodeAttr(t, n, key, rng_.String(8), out);
  return true;
}

bool TraceWorld::UpdateRandomEdgeAttr(Timestamp t, std::vector<Event>* out) {
  if (edge_ids_.empty()) return false;
  const EdgeId e = edge_ids_[rng_.Uniform(edge_ids_.size())];
  const std::string key = "weight";
  const std::string* old = graph_.GetEdgeAttr(e, key);
  Event ev = Event::SetEdgeAttr(
      t, e, key, old ? std::optional<std::string>(*old) : std::nullopt,
      std::to_string(rng_.Uniform(1000)));
  // Carry the source endpoint so partitioned indexes co-locate the event
  // with its edge.
  const EdgeRecord* rec = graph_.FindEdge(e);
  ev.src = rec->src;
  ev.dst = rec->dst;
  graph_.SetEdgeAttr(e, key, *ev.new_value);
  out->push_back(std::move(ev));
  return true;
}

bool TraceWorld::EmitTransientEdge(Timestamp t, std::vector<Event>* out) {
  if (node_ids_.size() < 2) return false;
  const NodeId a = node_ids_[rng_.Uniform(node_ids_.size())];
  const NodeId b = node_ids_[rng_.Uniform(node_ids_.size())];
  out->push_back(Event::TransientEdge(t, a, b, "msg-" + rng_.String(6)));
  return true;
}

NodeId TraceWorld::RandomNode() {
  if (node_ids_.empty()) return kInvalidNodeId;
  return node_ids_[rng_.Uniform(node_ids_.size())];
}

EdgeId TraceWorld::RandomEdge() {
  if (edge_ids_.empty()) return kInvalidEdgeId;
  return edge_ids_[rng_.Uniform(edge_ids_.size())];
}

Snapshot ReplayAt(const std::vector<Event>& events, Timestamp t, unsigned components) {
  Snapshot g;
  for (const auto& e : events) {
    if (e.time > t) break;
    const Status s = g.Apply(e, /*forward=*/true, components);
    assert(s.ok());
    (void)s;
  }
  return g;
}

}  // namespace hgdb
