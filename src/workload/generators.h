#ifndef HISTGRAPH_WORKLOAD_GENERATORS_H_
#define HISTGRAPH_WORKLOAD_GENERATORS_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "temporal/event.h"
#include "workload/trace_world.h"

namespace hgdb {

/// A generated historical trace plus its world (which holds the final graph
/// state and can be extended with further phases).
struct GeneratedTrace {
  std::vector<Event> events;
  std::unique_ptr<TraceWorld> world;

  Timestamp min_time() const { return events.empty() ? 0 : events.front().time; }
  Timestamp max_time() const { return events.empty() ? 0 : events.back().time; }
};

/// \brief Uniform random mixed trace for property tests: every event type,
/// including transients, with tunable insert/delete rates.
struct RandomTraceOptions {
  size_t num_events = 10000;
  double p_add_node = 0.18;
  double p_add_edge = 0.40;
  double p_del_edge = 0.12;
  double p_del_node = 0.02;
  double p_node_attr = 0.15;
  double p_edge_attr = 0.08;
  double p_transient = 0.05;
  size_t attrs_per_new_node = 2;
  /// Probability that consecutive events share a timestamp (tests boundary
  /// handling of equal-time events).
  double p_same_time = 0.25;
  Timestamp start_time = 1;
  uint64_t seed = 42;
};
GeneratedTrace GenerateRandomTrace(const RandomTraceOptions& options);

/// \brief Dataset 1 stand-in (Section 7): a growing-only co-authorship
/// network a la DBLP.
///
/// Authors arrive over `years` with super-linearly growing yearly volume
/// (event density g(t) grows over time, Section 5.1); each "paper" adds a
/// small author clique mixing new and preferentially re-selected authors
/// (so repeat collaborations produce parallel edges, matching the paper's
/// 2M edges / 1.04M unique endpoint pairs ratio); every node gets
/// `attrs_per_node` random attribute pairs; nothing is ever deleted.
struct DblpLikeOptions {
  size_t target_edges = 100000;
  int years = 70;
  size_t attrs_per_node = 10;
  double yearly_growth = 1.07;
  double new_author_prob = 0.35;
  uint64_t seed = 7;
};
GeneratedTrace GenerateDblpLikeTrace(const DblpLikeOptions& options);

/// \brief Churn phase (Datasets 2 and 3): `num_events` random edge
/// additions/deletions (plus optional attribute noise) appended to an
/// existing world, starting after `start_time`.
struct ChurnOptions {
  size_t num_events = 100000;
  double add_fraction = 0.5;
  double attr_update_fraction = 0.0;  ///< Portion of events that are UNA/UEA.
  Timestamp time_step = 1;            ///< Mean gap between event timestamps.
  uint64_t seed = 11;
};
void AppendChurnPhase(TraceWorld* world, Timestamp start_time,
                      const ChurnOptions& options, std::vector<Event>* out);

/// \brief Dataset 3 stand-in: a patent-citation-like bootstrap (directed
/// acyclic preferential citations) followed by heavy churn.
struct PatentLikeOptions {
  size_t initial_nodes = 30000;
  size_t initial_edges = 100000;
  size_t churn_events = 500000;
  size_t attrs_per_node = 0;
  uint64_t seed = 13;
};
GeneratedTrace GeneratePatentLikeTrace(const PatentLikeOptions& options);

}  // namespace hgdb

#endif  // HISTGRAPH_WORKLOAD_GENERATORS_H_
