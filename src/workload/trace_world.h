#ifndef HISTGRAPH_WORKLOAD_TRACE_WORLD_H_
#define HISTGRAPH_WORKLOAD_TRACE_WORLD_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// \brief Mutable world state used by trace generators to emit *valid*
/// chronological event streams.
///
/// The event protocol requires deletes to reference existing elements with
/// their exact prior state (attribute removals carry old values; structural
/// deletes happen only after attributes and incident edges are gone).
/// TraceWorld tracks the live graph plus adjacency so generators can produce
/// arbitrarily shuffled add/delete/update mixes that always replay cleanly in
/// both directions.
class TraceWorld {
 public:
  explicit TraceWorld(uint64_t seed) : rng_(seed) {}

  /// Emits a new-node event (plus attribute events) into `out`.
  NodeId AddNode(Timestamp t, size_t attr_count, std::vector<Event>* out);

  /// Emits a new-edge event between two existing nodes; returns
  /// kInvalidEdgeId if fewer than two nodes exist or the pair is exhausted.
  EdgeId AddEdge(Timestamp t, NodeId src, NodeId dst, bool directed,
                 std::vector<Event>* out);

  /// Adds an edge between random distinct existing nodes.
  EdgeId AddRandomEdge(Timestamp t, bool directed, std::vector<Event>* out);

  /// Deletes a uniformly random live edge (attribute removals first).
  /// Returns false if no edges exist.
  bool DeleteRandomEdge(Timestamp t, std::vector<Event>* out);

  /// Deletes a specific edge.
  void DeleteEdge(Timestamp t, EdgeId e, std::vector<Event>* out);

  /// Deletes a random node along with its attributes and incident edges.
  bool DeleteRandomNode(Timestamp t, std::vector<Event>* out);

  /// Sets (or overwrites) an attribute on a random node.
  bool UpdateRandomNodeAttr(Timestamp t, std::vector<Event>* out);

  /// Sets (or overwrites) an attribute on a random edge.
  bool UpdateRandomEdgeAttr(Timestamp t, std::vector<Event>* out);

  /// Sets a specific node attribute (emitting the correct old value).
  void SetNodeAttr(Timestamp t, NodeId n, const std::string& key,
                   const std::string& value, std::vector<Event>* out);

  /// Emits a transient edge (message) between two random nodes.
  bool EmitTransientEdge(Timestamp t, std::vector<Event>* out);

  NodeId RandomNode();
  EdgeId RandomEdge();

  const Snapshot& graph() const { return graph_; }
  size_t node_count() const { return node_ids_.size(); }
  size_t edge_count() const { return edge_ids_.size(); }
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  Snapshot graph_;
  NodeId next_node_id_ = 1;
  EdgeId next_edge_id_ = 1;
  std::vector<NodeId> node_ids_;   // Dense vectors for O(1) random pick
  std::vector<EdgeId> edge_ids_;   // with swap-remove on delete.
  std::unordered_map<NodeId, size_t> node_pos_;
  std::unordered_map<EdgeId, size_t> edge_pos_;
  std::unordered_map<NodeId, std::unordered_set<EdgeId>> incident_;
};

/// Replays `events` with time <= t onto an empty snapshot — the ground-truth
/// oracle every index implementation is tested against.
Snapshot ReplayAt(const std::vector<Event>& events, Timestamp t,
                  unsigned components = kCompAll);

}  // namespace hgdb

#endif  // HISTGRAPH_WORKLOAD_TRACE_WORLD_H_
