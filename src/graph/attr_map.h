#ifndef HISTGRAPH_GRAPH_ATTR_MAP_H_
#define HISTGRAPH_GRAPH_ATTR_MAP_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/interner.h"

namespace hgdb {

/// \brief Attribute map of a single node or edge: a small flat map from
/// interned key id to interned value id, sorted by key id.
///
/// Nodes carry ~10 attributes in the paper's workloads, so a sorted vector of
/// 8-byte entries beats any hash table: lookups are a binary search over one
/// cache line, iteration is deterministic (key-id order), equality is a
/// memcmp, and copying is a single allocation — which keeps the Snapshot
/// copy-on-write clone path cheap.
class AttrMap {
 public:
  using value_type = std::pair<AttrId, AttrId>;  ///< (key id, value id).
  using const_iterator = std::vector<value_type>::const_iterator;

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Inserts or overwrites the value of `key`.
  void Set(AttrId key, AttrId value) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = value;
    } else {
      entries_.insert(it, {key, value});
    }
  }

  /// Removes `key`; returns false if absent.
  bool Erase(AttrId key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  /// The value id of `key`, or kInvalidAttrId.
  AttrId Get(AttrId key) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, AttrId k) { return e.first < k; });
    return (it != entries_.end() && it->first == key) ? it->second : kInvalidAttrId;
  }

  bool Contains(AttrId key) const { return Get(key) != kInvalidAttrId; }

  /// String-keyed probe (tests / diagnostics): true if the key is present.
  bool contains(std::string_view key) const {
    const AttrId kid = StringInterner::Global().Find(key);
    return kid != kInvalidAttrId && Contains(kid);
  }

  bool operator==(const AttrMap& other) const { return entries_ == other.entries_; }
  bool operator!=(const AttrMap& other) const { return !(*this == other); }

  size_t MemoryBytes() const { return entries_.capacity() * sizeof(value_type); }

 private:
  std::vector<value_type>::iterator LowerBound(AttrId key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, AttrId k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_GRAPH_ATTR_MAP_H_
