#include "graph/snapshot.h"

#include <sstream>

namespace hgdb {

void Snapshot::RemoveNodeAttr(NodeId n, const std::string& key) {
  auto it = node_attrs_.find(n);
  if (it == node_attrs_.end()) return;
  it->second.erase(key);
  if (it->second.empty()) node_attrs_.erase(it);
}

const std::string* Snapshot::GetNodeAttr(NodeId n, const std::string& key) const {
  auto it = node_attrs_.find(n);
  if (it == node_attrs_.end()) return nullptr;
  auto jt = it->second.find(key);
  return jt == it->second.end() ? nullptr : &jt->second;
}

void Snapshot::RemoveEdgeAttr(EdgeId e, const std::string& key) {
  auto it = edge_attrs_.find(e);
  if (it == edge_attrs_.end()) return;
  it->second.erase(key);
  if (it->second.empty()) edge_attrs_.erase(it);
}

const std::string* Snapshot::GetEdgeAttr(EdgeId e, const std::string& key) const {
  auto it = edge_attrs_.find(e);
  if (it == edge_attrs_.end()) return nullptr;
  auto jt = it->second.find(key);
  return jt == it->second.end() ? nullptr : &jt->second;
}

namespace {

Status Inconsistent(const Event& e, const char* what) {
  return Status::InvalidArgument(std::string("inconsistent event application (") + what +
                                 "): " + e.ToString());
}

}  // namespace

Status Snapshot::Apply(const Event& e, bool forward, unsigned components) {
  if (e.is_transient()) return Status::OK();
  if ((e.component() & components) == 0) return Status::OK();

  // An event applied backward behaves exactly like its mirror event applied
  // forward: adds become deletes and attribute old/new swap roles.
  switch (e.type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode: {
      const bool add = (e.type == EventType::kAddNode) == forward;
      if (add) {
        if (!AddNode(e.node)) return Inconsistent(e, "node already present");
      } else {
        if (node_attrs_.contains(e.node)) {
          return Inconsistent(e, "deleting node that still has attributes");
        }
        if (!RemoveNode(e.node)) return Inconsistent(e, "node absent");
      }
      return Status::OK();
    }
    case EventType::kAddEdge:
    case EventType::kDeleteEdge: {
      const bool add = (e.type == EventType::kAddEdge) == forward;
      if (add) {
        // Endpoint checks only make sense when structure is being tracked,
        // which it is here (struct component gate above).
        if (!AddEdge(e.edge, EdgeRecord{e.src, e.dst, e.directed})) {
          return Inconsistent(e, "edge already present");
        }
      } else {
        if (edge_attrs_.contains(e.edge)) {
          return Inconsistent(e, "deleting edge that still has attributes");
        }
        if (!RemoveEdge(e.edge)) return Inconsistent(e, "edge absent");
      }
      return Status::OK();
    }
    case EventType::kNodeAttr: {
      const auto& before = forward ? e.old_value : e.new_value;
      const auto& after = forward ? e.new_value : e.old_value;
      const std::string* current = GetNodeAttr(e.node, e.key);
      if (before.has_value()) {
        if (current == nullptr || *current != *before) {
          return Inconsistent(e, "node attr old value mismatch");
        }
      } else if (current != nullptr) {
        return Inconsistent(e, "node attr unexpectedly present");
      }
      if (after.has_value()) {
        SetNodeAttr(e.node, e.key, *after);
      } else {
        RemoveNodeAttr(e.node, e.key);
      }
      return Status::OK();
    }
    case EventType::kEdgeAttr: {
      const auto& before = forward ? e.old_value : e.new_value;
      const auto& after = forward ? e.new_value : e.old_value;
      const std::string* current = GetEdgeAttr(e.edge, e.key);
      if (before.has_value()) {
        if (current == nullptr || *current != *before) {
          return Inconsistent(e, "edge attr old value mismatch");
        }
      } else if (current != nullptr) {
        return Inconsistent(e, "edge attr unexpectedly present");
      }
      if (after.has_value()) {
        SetEdgeAttr(e.edge, e.key, *after);
      } else {
        RemoveEdgeAttr(e.edge, e.key);
      }
      return Status::OK();
    }
    case EventType::kTransientEdge:
    case EventType::kTransientNode:
      return Status::OK();
  }
  return Status::OK();
}

Status Snapshot::ApplyAll(const std::vector<Event>& events, bool forward,
                          unsigned components) {
  if (forward) {
    for (const auto& e : events) HG_RETURN_NOT_OK(Apply(e, true, components));
  } else {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      HG_RETURN_NOT_OK(Apply(*it, false, components));
    }
  }
  return Status::OK();
}

size_t Snapshot::NodeAttrCount() const {
  size_t n = 0;
  for (const auto& [id, attrs] : node_attrs_) n += attrs.size();
  return n;
}

size_t Snapshot::EdgeAttrCount() const {
  size_t n = 0;
  for (const auto& [id, attrs] : edge_attrs_) n += attrs.size();
  return n;
}

bool Snapshot::Equals(const Snapshot& other) const {
  return nodes_ == other.nodes_ && edges_ == other.edges_ &&
         node_attrs_ == other.node_attrs_ && edge_attrs_ == other.edge_attrs_;
}

std::string Snapshot::DiffString(const Snapshot& other, size_t limit) const {
  std::ostringstream os;
  size_t shown = 0;
  auto note = [&](const std::string& s) {
    if (shown < limit) os << s << "\n";
    ++shown;
  };
  for (NodeId n : nodes_) {
    if (!other.HasNode(n)) note("node " + std::to_string(n) + " only in lhs");
  }
  for (NodeId n : other.nodes_) {
    if (!HasNode(n)) note("node " + std::to_string(n) + " only in rhs");
  }
  for (const auto& [id, rec] : edges_) {
    auto* o = other.FindEdge(id);
    if (o == nullptr) {
      note("edge " + std::to_string(id) + " only in lhs");
    } else if (!(rec == *o)) {
      note("edge " + std::to_string(id) + " differs");
    }
  }
  for (const auto& [id, rec] : other.edges_) {
    if (!HasEdge(id)) note("edge " + std::to_string(id) + " only in rhs");
  }
  for (const auto& [id, attrs] : node_attrs_) {
    for (const auto& [k, v] : attrs) {
      const std::string* o = other.GetNodeAttr(id, k);
      if (o == nullptr) {
        note("nattr (" + std::to_string(id) + "," + k + ") only in lhs");
      } else if (*o != v) {
        note("nattr (" + std::to_string(id) + "," + k + ") value differs");
      }
    }
  }
  for (const auto& [id, attrs] : other.node_attrs_) {
    for (const auto& [k, v] : attrs) {
      if (GetNodeAttr(id, k) == nullptr) {
        note("nattr (" + std::to_string(id) + "," + k + ") only in rhs");
      }
    }
  }
  for (const auto& [id, attrs] : edge_attrs_) {
    for (const auto& [k, v] : attrs) {
      const std::string* o = other.GetEdgeAttr(id, k);
      if (o == nullptr) {
        note("eattr (" + std::to_string(id) + "," + k + ") only in lhs");
      } else if (*o != v) {
        note("eattr (" + std::to_string(id) + "," + k + ") value differs");
      }
    }
  }
  for (const auto& [id, attrs] : other.edge_attrs_) {
    for (const auto& [k, v] : attrs) {
      if (GetEdgeAttr(id, k) == nullptr) {
        note("eattr (" + std::to_string(id) + "," + k + ") only in rhs");
      }
    }
  }
  if (shown > limit) {
    os << "... and " << (shown - limit) << " more differences\n";
  }
  return os.str();
}

Snapshot Snapshot::CopyFiltered(unsigned components) const {
  Snapshot out;
  if (components & kCompStruct) {
    out.nodes_ = nodes_;
    out.edges_ = edges_;
  }
  if (components & kCompNodeAttr) out.node_attrs_ = node_attrs_;
  if (components & kCompEdgeAttr) out.edge_attrs_ = edge_attrs_;
  return out;
}

void Snapshot::AbsorbDisjoint(Snapshot&& other) {
  nodes_.merge(other.nodes_);
  edges_.merge(other.edges_);
  node_attrs_.merge(other.node_attrs_);
  edge_attrs_.merge(other.edge_attrs_);
}

void Snapshot::Clear() {
  nodes_.clear();
  edges_.clear();
  node_attrs_.clear();
  edge_attrs_.clear();
}

size_t Snapshot::MemoryBytes() const {
  size_t bytes = 0;
  bytes += nodes_.size() * (sizeof(NodeId) + sizeof(void*));
  bytes += edges_.size() * (sizeof(EdgeId) + sizeof(EdgeRecord) + sizeof(void*));
  for (const auto& [id, attrs] : node_attrs_) {
    bytes += sizeof(NodeId) + sizeof(void*);
    for (const auto& [k, v] : attrs) bytes += k.size() + v.size() + 2 * sizeof(void*);
  }
  for (const auto& [id, attrs] : edge_attrs_) {
    bytes += sizeof(EdgeId) + sizeof(void*);
    for (const auto& [k, v] : attrs) bytes += k.size() + v.size() + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace hgdb
