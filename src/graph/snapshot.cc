#include "graph/snapshot.h"

#include <sstream>

namespace hgdb {

const Snapshot::NodeSet& Snapshot::EmptyNodes() {
  static const NodeSet* empty = new NodeSet();
  return *empty;
}
const Snapshot::EdgeMap& Snapshot::EmptyEdges() {
  static const EdgeMap* empty = new EdgeMap();
  return *empty;
}
const Snapshot::NodeAttrTable& Snapshot::EmptyNodeAttrs() {
  static const NodeAttrTable* empty = new NodeAttrTable();
  return *empty;
}
const Snapshot::EdgeAttrTable& Snapshot::EmptyEdgeAttrs() {
  static const EdgeAttrTable* empty = new EdgeAttrTable();
  return *empty;
}

void Snapshot::SetNodeAttrId(NodeId n, AttrId key, AttrId value) {
  // Skip the write when it would be a no-op (common during idempotent
  // replays and union-style combines): on a shared store it would clone the
  // store's spine, and even on a solely-owned store it would deep-copy the
  // 128-slot attr chunk the owner lives in if that chunk is still shared
  // with an emitted sibling.
  if (GetNodeAttrValueId(n, key) == value) return;
  if (SoleOwner(node_attrs_)) {
    (*node_attrs_)[n].Set(key, value);
    return;
  }
  (*MutableNodeAttrs())[n].Set(key, value);
}

void Snapshot::SetEdgeAttrId(EdgeId e, AttrId key, AttrId value) {
  if (GetEdgeAttrValueId(e, key) == value) return;
  if (SoleOwner(edge_attrs_)) {
    (*edge_attrs_)[e].Set(key, value);
    return;
  }
  (*MutableEdgeAttrs())[e].Set(key, value);
}

bool Snapshot::RemoveNodeAttrId(NodeId n, AttrId key) {
  // Probe read-only first: a no-op removal must not clone a store *or* a
  // chunk. Only then take ownership of the one chunk the map lives in.
  const AttrMap* attrs = GetNodeAttrs(n);
  if (attrs == nullptr || !attrs->Contains(key)) return false;
  NodeAttrTable* table =
      SoleOwner(node_attrs_) ? node_attrs_.get() : MutableNodeAttrs();
  AttrMap* mine = table->MutableValue(n);
  mine->Erase(key);
  if (mine->empty()) table->erase(n);
  return true;
}

bool Snapshot::RemoveEdgeAttrId(EdgeId e, AttrId key) {
  const AttrMap* attrs = GetEdgeAttrs(e);
  if (attrs == nullptr || !attrs->Contains(key)) return false;
  EdgeAttrTable* table =
      SoleOwner(edge_attrs_) ? edge_attrs_.get() : MutableEdgeAttrs();
  AttrMap* mine = table->MutableValue(e);
  mine->Erase(key);
  if (mine->empty()) table->erase(e);
  return true;
}

void Snapshot::RemoveNodeAttr(NodeId n, const std::string& key) {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return;
  RemoveNodeAttrId(n, kid);
}

const std::string* Snapshot::GetNodeAttr(NodeId n, const std::string& key) const {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return nullptr;
  const AttrId vid = GetNodeAttrValueId(n, kid);
  return vid == kInvalidAttrId ? nullptr : &AttrStr(vid);
}

void Snapshot::RemoveEdgeAttr(EdgeId e, const std::string& key) {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return;
  RemoveEdgeAttrId(e, kid);
}

const std::string* Snapshot::GetEdgeAttr(EdgeId e, const std::string& key) const {
  const AttrId kid = StringInterner::Global().Find(key);
  if (kid == kInvalidAttrId) return nullptr;
  const AttrId vid = GetEdgeAttrValueId(e, kid);
  return vid == kInvalidAttrId ? nullptr : &AttrStr(vid);
}

namespace {

Status Inconsistent(const Event& e, const char* what) {
  return Status::InvalidArgument(std::string("inconsistent event application (") + what +
                                 "): " + e.ToString());
}

}  // namespace

Status Snapshot::Apply(const Event& e, bool forward, unsigned components) {
  if (e.is_transient()) return Status::OK();
  if ((e.component() & components) == 0) return Status::OK();

  // An event applied backward behaves exactly like its mirror event applied
  // forward: adds become deletes and attribute old/new swap roles.
  switch (e.type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode: {
      const bool add = (e.type == EventType::kAddNode) == forward;
      if (add) {
        if (!AddNode(e.node)) return Inconsistent(e, "node already present");
      } else {
        if (GetNodeAttrs(e.node) != nullptr) {
          return Inconsistent(e, "deleting node that still has attributes");
        }
        if (!RemoveNode(e.node)) return Inconsistent(e, "node absent");
      }
      return Status::OK();
    }
    case EventType::kAddEdge:
    case EventType::kDeleteEdge: {
      const bool add = (e.type == EventType::kAddEdge) == forward;
      if (add) {
        // Endpoint checks only make sense when structure is being tracked,
        // which it is here (struct component gate above).
        if (!AddEdge(e.edge, EdgeRecord{e.src, e.dst, e.directed})) {
          return Inconsistent(e, "edge already present");
        }
      } else {
        if (GetEdgeAttrs(e.edge) != nullptr) {
          return Inconsistent(e, "deleting edge that still has attributes");
        }
        if (!RemoveEdge(e.edge)) return Inconsistent(e, "edge absent");
      }
      return Status::OK();
    }
    case EventType::kNodeAttr: {
      const auto& before = forward ? e.old_value : e.new_value;
      const auto& after = forward ? e.new_value : e.old_value;
      const AttrId kid = InternAttr(e.key);
      const AttrId current = GetNodeAttrValueId(e.node, kid);
      if (before.has_value()) {
        if (current == kInvalidAttrId || AttrStr(current) != *before) {
          return Inconsistent(e, "node attr old value mismatch");
        }
      } else if (current != kInvalidAttrId) {
        return Inconsistent(e, "node attr unexpectedly present");
      }
      if (after.has_value()) {
        SetNodeAttrId(e.node, kid, InternAttr(*after));
      } else {
        RemoveNodeAttrId(e.node, kid);
      }
      return Status::OK();
    }
    case EventType::kEdgeAttr: {
      const auto& before = forward ? e.old_value : e.new_value;
      const auto& after = forward ? e.new_value : e.old_value;
      const AttrId kid = InternAttr(e.key);
      const AttrId current = GetEdgeAttrValueId(e.edge, kid);
      if (before.has_value()) {
        if (current == kInvalidAttrId || AttrStr(current) != *before) {
          return Inconsistent(e, "edge attr old value mismatch");
        }
      } else if (current != kInvalidAttrId) {
        return Inconsistent(e, "edge attr unexpectedly present");
      }
      if (after.has_value()) {
        SetEdgeAttrId(e.edge, kid, InternAttr(*after));
      } else {
        RemoveEdgeAttrId(e.edge, kid);
      }
      return Status::OK();
    }
    case EventType::kTransientEdge:
    case EventType::kTransientNode:
      return Status::OK();
  }
  return Status::OK();
}

Status Snapshot::ApplyAll(const std::vector<Event>& events, bool forward,
                          unsigned components) {
  if (forward) {
    for (const auto& e : events) HG_RETURN_NOT_OK(Apply(e, true, components));
  } else {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      HG_RETURN_NOT_OK(Apply(*it, false, components));
    }
  }
  return Status::OK();
}

size_t Snapshot::NodeAttrCount() const {
  size_t n = 0;
  for (const auto& [id, attrs] : node_attrs()) n += attrs.size();
  return n;
}

size_t Snapshot::EdgeAttrCount() const {
  size_t n = 0;
  for (const auto& [id, attrs] : edge_attrs()) n += attrs.size();
  return n;
}

bool Snapshot::Equals(const Snapshot& other) const {
  const bool nodes_eq = nodes_ == other.nodes_ || nodes() == other.nodes();
  if (!nodes_eq) return false;
  const bool edges_eq = edges_ == other.edges_ || edges() == other.edges();
  if (!edges_eq) return false;
  const bool nattrs_eq =
      node_attrs_ == other.node_attrs_ || node_attrs() == other.node_attrs();
  if (!nattrs_eq) return false;
  return edge_attrs_ == other.edge_attrs_ || edge_attrs() == other.edge_attrs();
}

std::string Snapshot::DiffString(const Snapshot& other, size_t limit) const {
  std::ostringstream os;
  size_t shown = 0;
  auto note = [&](const std::string& s) {
    if (shown < limit) os << s << "\n";
    ++shown;
  };
  for (NodeId n : nodes()) {
    if (!other.HasNode(n)) note("node " + std::to_string(n) + " only in lhs");
  }
  for (NodeId n : other.nodes()) {
    if (!HasNode(n)) note("node " + std::to_string(n) + " only in rhs");
  }
  for (const auto& [id, rec] : edges()) {
    auto* o = other.FindEdge(id);
    if (o == nullptr) {
      note("edge " + std::to_string(id) + " only in lhs");
    } else if (!(rec == *o)) {
      note("edge " + std::to_string(id) + " differs");
    }
  }
  for (const auto& [id, rec] : other.edges()) {
    if (!HasEdge(id)) note("edge " + std::to_string(id) + " only in rhs");
  }
  for (const auto& [id, attrs] : node_attrs()) {
    for (const auto& [k, v] : attrs) {
      const AttrId o = other.GetNodeAttrValueId(id, k);
      if (o == kInvalidAttrId) {
        note("nattr (" + std::to_string(id) + "," + AttrStr(k) + ") only in lhs");
      } else if (o != v) {
        note("nattr (" + std::to_string(id) + "," + AttrStr(k) + ") value differs");
      }
    }
  }
  for (const auto& [id, attrs] : other.node_attrs()) {
    for (const auto& [k, v] : attrs) {
      if (GetNodeAttrValueId(id, k) == kInvalidAttrId) {
        note("nattr (" + std::to_string(id) + "," + AttrStr(k) + ") only in rhs");
      }
    }
  }
  for (const auto& [id, attrs] : edge_attrs()) {
    for (const auto& [k, v] : attrs) {
      const AttrId o = other.GetEdgeAttrValueId(id, k);
      if (o == kInvalidAttrId) {
        note("eattr (" + std::to_string(id) + "," + AttrStr(k) + ") only in lhs");
      } else if (o != v) {
        note("eattr (" + std::to_string(id) + "," + AttrStr(k) + ") value differs");
      }
    }
  }
  for (const auto& [id, attrs] : other.edge_attrs()) {
    for (const auto& [k, v] : attrs) {
      if (GetEdgeAttrValueId(id, k) == kInvalidAttrId) {
        note("eattr (" + std::to_string(id) + "," + AttrStr(k) + ") only in rhs");
      }
    }
  }
  if (shown > limit) {
    os << "... and " << (shown - limit) << " more differences\n";
  }
  return os.str();
}

Snapshot Snapshot::CopyFiltered(unsigned components) const {
  Snapshot out;
  if (components & kCompStruct) {
    out.nodes_ = nodes_;
    out.edges_ = edges_;
  }
  if (components & kCompNodeAttr) out.node_attrs_ = node_attrs_;
  if (components & kCompEdgeAttr) out.edge_attrs_ = edge_attrs_;
  return out;
}

void Snapshot::AbsorbDisjoint(Snapshot&& other) {
  // Per store: steal the whole store when this side is empty; otherwise
  // merge chunk-wise — id ranges only one side occupies adopt the other
  // side's chunk pointer outright (O(1), shared), colliding ranges merge
  // element-wise. Values move (instead of copy) only out of chunks `other`
  // solely owns; a COW sibling (another emit of the same plan, a
  // materialized snapshot) may still be reading shared chunks, and chunk
  // adoption only ever copies pointers, never mutates in place.
  auto absorb = [](auto* mine, auto&& theirs, auto&& make_mutable) {
    if (theirs == nullptr || theirs->empty()) return;
    if (*mine == nullptr || (*mine)->empty()) {
      CowAnnotateRelease(mine->get());  // Dropping our (empty) reference.
      *mine = std::move(theirs);
      return;
    }
    auto* m = make_mutable();
    if (theirs.use_count() == 1) {
      m->MergeDisjointMove(std::move(*theirs));
    } else {
      m->MergeDisjointCopy(*theirs);
    }
  };
  absorb(&nodes_, std::move(other.nodes_), [&] { return MutableNodes(); });
  absorb(&edges_, std::move(other.edges_), [&] { return MutableEdges(); });
  absorb(&node_attrs_, std::move(other.node_attrs_),
         [&] { return MutableNodeAttrs(); });
  absorb(&edge_attrs_, std::move(other.edge_attrs_),
         [&] { return MutableEdgeAttrs(); });
}

void Snapshot::Clear() {
  AnnotateReleaseStores();
  nodes_.reset();
  edges_.reset();
  node_attrs_.reset();
  edge_attrs_.reset();
}

void Snapshot::ForEachStorePart(
    const std::function<void(const void*, size_t)>& fn) const {
  const auto no_heap = [](const EdgeRecord&) { return size_t{0}; };
  const auto attr_heap = [](const AttrMap& attrs) { return attrs.MemoryBytes(); };
  if (nodes_) nodes_->ForEachPart(fn);
  if (edges_) edges_->ForEachPart(fn, no_heap);
  if (node_attrs_) node_attrs_->ForEachPart(fn, attr_heap);
  if (edge_attrs_) edge_attrs_->ForEachPart(fn, attr_heap);
}

size_t Snapshot::MemoryBytes() const {
  size_t bytes = 0;
  ForEachStorePart([&bytes](const void*, size_t part_bytes) { bytes += part_bytes; });
  return bytes;
}

}  // namespace hgdb
