#ifndef HISTGRAPH_GRAPH_SNAPSHOT_H_
#define HISTGRAPH_GRAPH_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/chunked_store.h"
#include "common/cow.h"
#include "common/interner.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/attr_map.h"
#include "temporal/event.h"

// The COW/TSan annotation helpers (CowAnnotateAcquire/Release and the
// HISTGRAPH_TSAN detection) live in common/cow.h — they are shared with the
// chunk-granular sharing layer in common/chunked_store.h.

namespace hgdb {

/// Endpoint and orientation payload of an edge. The edge id is kept outside.
struct EdgeRecord {
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  bool directed = false;

  bool operator==(const EdgeRecord& other) const {
    return src == other.src && dst == other.dst && directed == other.directed;
  }
};

/// \brief A graph as a set of *elements* — the unit the DeltaGraph's set
/// algebra operates on (Section 4.2).
///
/// Elements are: node existence `(id)`, edge existence `(id, src, dst,
/// directed)`, node attribute `(node, key, value)`, and edge attribute
/// `(edge, key, value)`. Differential functions (intersection, union, ...)
/// and deltas are defined element-wise over this representation. Both the
/// DeltaGraph and GraphPool "treat the network as a collection of objects and
/// do not exploit any properties of the graphical structure" — which is why
/// the same machinery would serve a temporal relational store.
///
/// Representation (see src/graph/README.md for the invariants):
///  - Attribute keys/values are interned AttrIds; the bytes live once in the
///    process-wide StringInterner. Value equality is id equality.
///  - The four element stores are *chunked* COW containers
///    (common/chunked_store.h) held through shared_ptr with two granularities
///    of sharing: copying a Snapshot is O(1) and shares whole stores; the
///    first mutation of a shared store clones only the store's spine (a table
///    of chunk pointers), sharing every chunk; and each element mutation then
///    copies just the one 128/256-id chunk it lands in. Snapshots emitted by
///    the same retrieval plan therefore share all chunks the plan did not
///    touch between emits, which is what makes multipoint retrieval's
///    marginal emit cost O(|delta|) instead of O(|graph|) — the sharing
///    discipline of the paper's follow-up system (Khurana & Deshpande, 2015)
///    applied in memory.
class Snapshot {
 public:
  using NodeSet = ChunkedIdSet<NodeId, 8>;              // 256-id bitmap chunks.
  using EdgeMap = ChunkedIdMap<EdgeId, EdgeRecord, 7>;  // 128-id chunks.
  using NodeAttrTable = ChunkedIdMap<NodeId, AttrMap, 7>;
  using EdgeAttrTable = ChunkedIdMap<EdgeId, AttrMap, 7>;

  Snapshot() = default;
  Snapshot(const Snapshot&) = default;  // O(1): shares all stores.
  Snapshot(Snapshot&&) = default;
#if defined(HISTGRAPH_TSAN)
  // Assignment and destruction drop store references; under TSan each drop
  // announces its reads so a later sole-owner writer can join them (see the
  // CowAnnotate* note above). Production keeps the defaulted members.
  Snapshot& operator=(const Snapshot& other) {
    if (this != &other) {
      AnnotateReleaseStores();
      nodes_ = other.nodes_;
      edges_ = other.edges_;
      node_attrs_ = other.node_attrs_;
      edge_attrs_ = other.edge_attrs_;
    }
    return *this;
  }
  Snapshot& operator=(Snapshot&& other) {
    if (this != &other) {
      AnnotateReleaseStores();
      nodes_ = std::move(other.nodes_);
      edges_ = std::move(other.edges_);
      node_attrs_ = std::move(other.node_attrs_);
      edge_attrs_ = std::move(other.edge_attrs_);
    }
    return *this;
  }
  ~Snapshot() { AnnotateReleaseStores(); }
#else
  Snapshot& operator=(const Snapshot&) = default;  // O(1): shares all stores.
  Snapshot& operator=(Snapshot&&) = default;
#endif

  // -- Structure ------------------------------------------------------------
  bool HasNode(NodeId n) const { return nodes_ && nodes_->contains(n); }
  bool HasEdge(EdgeId e) const { return edges_ && edges_->contains(e); }
  /// The record of edge `e`, or nullptr. Invalidated by any mutation of this
  /// snapshot's edge store (flat tables move elements on rehash/erase).
  const EdgeRecord* FindEdge(EdgeId e) const {
    return edges_ ? edges_->FindValue(e) : nullptr;
  }

  /// Adds a node; returns false if already present.
  bool AddNode(NodeId n) {
    if (SoleOwner(nodes_)) return nodes_->insert(n);  // Single probe.
    if (HasNode(n)) return false;  // No-op: don't break sharing.
    return MutableNodes()->insert(n);
  }
  /// Removes a node; returns false if absent. Does not touch attributes or
  /// incident edges — the event protocol guarantees they were removed first.
  bool RemoveNode(NodeId n) {
    if (SoleOwner(nodes_)) return nodes_->erase(n);
    if (!HasNode(n)) return false;
    return MutableNodes()->erase(n);
  }
  bool AddEdge(EdgeId e, const EdgeRecord& rec) {
    if (SoleOwner(edges_)) return edges_->emplace(e, rec).second;
    if (HasEdge(e)) return false;
    return MutableEdges()->emplace(e, rec).second;
  }
  bool RemoveEdge(EdgeId e) {
    if (SoleOwner(edges_)) return edges_->erase(e);
    if (!HasEdge(e)) return false;
    return MutableEdges()->erase(e);
  }

  // -- Attributes -----------------------------------------------------------
  /// Sets (inserting or overwriting) a node attribute.
  void SetNodeAttr(NodeId n, const std::string& key, const std::string& value) {
    SetNodeAttrId(n, InternAttr(key), InternAttr(value));
  }
  void RemoveNodeAttr(NodeId n, const std::string& key);
  const std::string* GetNodeAttr(NodeId n, const std::string& key) const;
  /// The attribute map of `n`, or nullptr. Invalidated by mutation (COW clone
  /// or rehash) — copy it if you mutate this snapshot while holding it.
  const AttrMap* GetNodeAttrs(NodeId n) const {
    return node_attrs_ ? node_attrs_->FindValue(n) : nullptr;
  }

  void SetEdgeAttr(EdgeId e, const std::string& key, const std::string& value) {
    SetEdgeAttrId(e, InternAttr(key), InternAttr(value));
  }
  void RemoveEdgeAttr(EdgeId e, const std::string& key);
  const std::string* GetEdgeAttr(EdgeId e, const std::string& key) const;
  const AttrMap* GetEdgeAttrs(EdgeId e) const {
    return edge_attrs_ ? edge_attrs_->FindValue(e) : nullptr;
  }

  // -- Interned-id attribute API (hot paths skip the string round-trip) ------
  void SetNodeAttrId(NodeId n, AttrId key, AttrId value);
  void SetEdgeAttrId(EdgeId e, AttrId key, AttrId value);
  bool RemoveNodeAttrId(NodeId n, AttrId key);
  bool RemoveEdgeAttrId(EdgeId e, AttrId key);
  /// Value id of the attribute, or kInvalidAttrId if absent.
  AttrId GetNodeAttrValueId(NodeId n, AttrId key) const {
    const AttrMap* attrs = GetNodeAttrs(n);
    return attrs == nullptr ? kInvalidAttrId : attrs->Get(key);
  }
  AttrId GetEdgeAttrValueId(EdgeId e, AttrId key) const {
    const AttrMap* attrs = GetEdgeAttrs(e);
    return attrs == nullptr ? kInvalidAttrId : attrs->Get(key);
  }

  // -- Event application ----------------------------------------------------
  /// Applies one event in the given direction (forward = evolving time).
  /// Only aspects selected by `components` are applied; transient events are
  /// always ignored (they are not part of any snapshot by definition).
  /// Returns InvalidArgument on inconsistent application (e.g. adding an edge
  /// whose endpoint is missing) — the ground-truth tests rely on this being
  /// strict.
  Status Apply(const Event& e, bool forward, unsigned components = kCompAll);

  /// Applies a span of events in order (or reverse order when !forward).
  Status ApplyAll(const std::vector<Event>& events, bool forward,
                  unsigned components = kCompAll);

  // -- Introspection --------------------------------------------------------
  const NodeSet& nodes() const { return nodes_ ? *nodes_ : EmptyNodes(); }
  const EdgeMap& edges() const { return edges_ ? *edges_ : EmptyEdges(); }
  const NodeAttrTable& node_attrs() const {
    return node_attrs_ ? *node_attrs_ : EmptyNodeAttrs();
  }
  const EdgeAttrTable& edge_attrs() const {
    return edge_attrs_ ? *edge_attrs_ : EmptyEdgeAttrs();
  }

  size_t NodeCount() const { return nodes_ ? nodes_->size() : 0; }
  size_t EdgeCount() const { return edges_ ? edges_->size() : 0; }
  size_t NodeAttrCount() const;
  size_t EdgeAttrCount() const;
  /// Total element count |G| used by the analytical models of Section 5.
  size_t ElementCount() const {
    return NodeCount() + EdgeCount() + NodeAttrCount() + EdgeAttrCount();
  }

  bool Empty() const { return NodeCount() == 0 && EdgeCount() == 0; }

  /// Element-wise equality (the correctness oracle of the test suite).
  /// Shared stores short-circuit by pointer identity.
  bool Equals(const Snapshot& other) const;

  /// Returns a copy containing only the selected components (e.g. structure
  /// without attributes, for structure-only retrieval from a full snapshot).
  /// O(1): the returned snapshot shares the selected stores.
  Snapshot CopyFiltered(unsigned components) const;

  /// Merges another snapshot whose ids are disjoint from this one (used to
  /// combine per-partition retrieval results). Steals the other's stores
  /// outright when this side is empty.
  void AbsorbDisjoint(Snapshot&& other);

  /// Returns a human-readable diff of up to `limit` differing elements
  /// (test-failure diagnostics).
  std::string DiffString(const Snapshot& other, size_t limit = 10) const;

  void Clear();

  /// Pre-sizes the structure tables for `nodes` / `edges` additional entries
  /// (bulk delta application avoids rehash churn this way).
  void ReserveAdditional(size_t nodes, size_t edges) {
    if (nodes > 0) MutableNodes()->reserve(NodeCount() + nodes);
    if (edges > 0) MutableEdges()->reserve(EdgeCount() + edges);
  }

  /// Approximate heap usage in bytes (memory-accounting benches). Counts each
  /// store this snapshot references, whether or not it is shared; interned
  /// string bytes are global and not included.
  size_t MemoryBytes() const;

  /// Enumerates the heap parts this snapshot references as
  /// `fn(const void* part, size_t bytes)` pairs. Parts shared between
  /// snapshots report identical pointers, so a caller can dedupe by pointer
  /// to compute *resident* bytes across a set of snapshots (as opposed to
  /// the per-copy sum MemoryBytes gives) and measure how much structure a
  /// group of emitted snapshots actually shares.
  void ForEachStorePart(
      const std::function<void(const void*, size_t)>& fn) const;

  // -- Copy-on-write introspection (tests / benches) -------------------------
  /// True if both snapshots reference the same store object for every
  /// component they hold (i.e. a copy that has not diverged).
  bool SharesAllStoresWith(const Snapshot& other) const {
    return nodes_ == other.nodes_ && edges_ == other.edges_ &&
           node_attrs_ == other.node_attrs_ && edge_attrs_ == other.edge_attrs_;
  }
  bool SharesNodeStoreWith(const Snapshot& other) const {
    return nodes_ == other.nodes_;
  }
  bool SharesEdgeStoreWith(const Snapshot& other) const {
    return edges_ == other.edges_;
  }
  bool SharesNodeAttrStoreWith(const Snapshot& other) const {
    return node_attrs_ == other.node_attrs_;
  }
  bool SharesEdgeAttrStoreWith(const Snapshot& other) const {
    return edge_attrs_ == other.edge_attrs_;
  }

 private:
  static const NodeSet& EmptyNodes();
  static const EdgeMap& EmptyEdges();
  static const NodeAttrTable& EmptyNodeAttrs();
  static const EdgeAttrTable& EmptyEdgeAttrs();

  // Copy-on-write gates: allocate on first write, clone on first write to a
  // shared store. All mutations funnel through these. Mutators first try the
  // SoleOwner fast path (uniquely-owned store: write straight through, one
  // probe); the shared path re-checks for no-ops before cloning so that
  // no-op writes never break sharing.
  //
  // The acquire fence is what lets snapshots that share stores be mutated
  // from different threads (the parallel executor's fork model): use_count()
  // is a relaxed load, so observing 1 does not by itself synchronize with
  // the other thread's release-decrement of the refcount. The fence pairs
  // with that release, ordering the releasing thread's reads of the store
  // (its COW clone) before our in-place writes. Free on x86; one dmb on ARM.
  template <typename T>
  static bool SoleOwner(const std::shared_ptr<T>& store) {
    if (store == nullptr || store.use_count() != 1) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    CowAnnotateAcquire(store.get());
    return true;
  }
  template <typename T>
  static T* Mutable(std::shared_ptr<T>* store) {
    if (*store == nullptr) {
      *store = std::make_shared<T>();
    } else if (store->use_count() > 1) {
      auto fresh = std::make_shared<T>(**store);
      CowAnnotateRelease(store->get());  // Our clone read the shared block.
      *store = std::move(fresh);
    } else {
      std::atomic_thread_fence(std::memory_order_acquire);  // See SoleOwner.
      CowAnnotateAcquire(store->get());
    }
    return store->get();
  }
  NodeSet* MutableNodes() { return Mutable(&nodes_); }
  EdgeMap* MutableEdges() { return Mutable(&edges_); }
  NodeAttrTable* MutableNodeAttrs() { return Mutable(&node_attrs_); }
  EdgeAttrTable* MutableEdgeAttrs() { return Mutable(&edge_attrs_); }

  /// Announces (for TSan) that this snapshot is done reading all stores it
  /// references; no-op in production builds.
  void AnnotateReleaseStores() const {
    CowAnnotateRelease(nodes_.get());
    CowAnnotateRelease(edges_.get());
    CowAnnotateRelease(node_attrs_.get());
    CowAnnotateRelease(edge_attrs_.get());
  }

  std::shared_ptr<NodeSet> nodes_;
  std::shared_ptr<EdgeMap> edges_;
  std::shared_ptr<NodeAttrTable> node_attrs_;
  std::shared_ptr<EdgeAttrTable> edge_attrs_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_GRAPH_SNAPSHOT_H_
