#ifndef HISTGRAPH_GRAPH_SNAPSHOT_H_
#define HISTGRAPH_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "temporal/event.h"

namespace hgdb {

/// Endpoint and orientation payload of an edge. The edge id is kept outside.
struct EdgeRecord {
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  bool directed = false;

  bool operator==(const EdgeRecord& other) const {
    return src == other.src && dst == other.dst && directed == other.directed;
  }
};

/// Attribute map of a single node or edge.
using AttrMap = std::unordered_map<std::string, std::string>;

/// \brief A graph as a set of *elements* — the unit the DeltaGraph's set
/// algebra operates on (Section 4.2).
///
/// Elements are: node existence `(id)`, edge existence `(id, src, dst,
/// directed)`, node attribute `(node, key, value)`, and edge attribute
/// `(edge, key, value)`. Differential functions (intersection, union, ...)
/// and deltas are defined element-wise over this representation. Both the
/// DeltaGraph and GraphPool "treat the network as a collection of objects and
/// do not exploit any properties of the graphical structure" — which is why
/// the same machinery would serve a temporal relational store.
class Snapshot {
 public:
  Snapshot() = default;

  // -- Structure ------------------------------------------------------------
  bool HasNode(NodeId n) const { return nodes_.contains(n); }
  bool HasEdge(EdgeId e) const { return edges_.contains(e); }
  const EdgeRecord* FindEdge(EdgeId e) const {
    auto it = edges_.find(e);
    return it == edges_.end() ? nullptr : &it->second;
  }

  /// Adds a node; returns false if already present.
  bool AddNode(NodeId n) { return nodes_.insert(n).second; }
  /// Removes a node; returns false if absent. Does not touch attributes or
  /// incident edges — the event protocol guarantees they were removed first.
  bool RemoveNode(NodeId n) { return nodes_.erase(n) > 0; }
  bool AddEdge(EdgeId e, const EdgeRecord& rec) { return edges_.emplace(e, rec).second; }
  bool RemoveEdge(EdgeId e) { return edges_.erase(e) > 0; }

  // -- Attributes -----------------------------------------------------------
  /// Sets (inserting or overwriting) a node attribute.
  void SetNodeAttr(NodeId n, const std::string& key, std::string value) {
    node_attrs_[n][key] = std::move(value);
  }
  void RemoveNodeAttr(NodeId n, const std::string& key);
  const std::string* GetNodeAttr(NodeId n, const std::string& key) const;
  const AttrMap* GetNodeAttrs(NodeId n) const {
    auto it = node_attrs_.find(n);
    return it == node_attrs_.end() ? nullptr : &it->second;
  }

  void SetEdgeAttr(EdgeId e, const std::string& key, std::string value) {
    edge_attrs_[e][key] = std::move(value);
  }
  void RemoveEdgeAttr(EdgeId e, const std::string& key);
  const std::string* GetEdgeAttr(EdgeId e, const std::string& key) const;
  const AttrMap* GetEdgeAttrs(EdgeId e) const {
    auto it = edge_attrs_.find(e);
    return it == edge_attrs_.end() ? nullptr : &it->second;
  }

  // -- Event application ----------------------------------------------------
  /// Applies one event in the given direction (forward = evolving time).
  /// Only aspects selected by `components` are applied; transient events are
  /// always ignored (they are not part of any snapshot by definition).
  /// Returns InvalidArgument on inconsistent application (e.g. adding an edge
  /// whose endpoint is missing) — the ground-truth tests rely on this being
  /// strict.
  Status Apply(const Event& e, bool forward, unsigned components = kCompAll);

  /// Applies a span of events in order (or reverse order when !forward).
  Status ApplyAll(const std::vector<Event>& events, bool forward,
                  unsigned components = kCompAll);

  // -- Introspection --------------------------------------------------------
  const std::unordered_set<NodeId>& nodes() const { return nodes_; }
  const std::unordered_map<EdgeId, EdgeRecord>& edges() const { return edges_; }
  const std::unordered_map<NodeId, AttrMap>& node_attrs() const { return node_attrs_; }
  const std::unordered_map<EdgeId, AttrMap>& edge_attrs() const { return edge_attrs_; }

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }
  size_t NodeAttrCount() const;
  size_t EdgeAttrCount() const;
  /// Total element count |G| used by the analytical models of Section 5.
  size_t ElementCount() const {
    return NodeCount() + EdgeCount() + NodeAttrCount() + EdgeAttrCount();
  }

  bool Empty() const { return nodes_.empty() && edges_.empty(); }

  /// Element-wise equality (the correctness oracle of the test suite).
  bool Equals(const Snapshot& other) const;

  /// Returns a copy containing only the selected components (e.g. structure
  /// without attributes, for structure-only retrieval from a full snapshot).
  Snapshot CopyFiltered(unsigned components) const;

  /// Merges another snapshot whose ids are disjoint from this one (used to
  /// combine per-partition retrieval results).
  void AbsorbDisjoint(Snapshot&& other);

  /// Returns a human-readable diff of up to `limit` differing elements
  /// (test-failure diagnostics).
  std::string DiffString(const Snapshot& other, size_t limit = 10) const;

  void Clear();

  /// Pre-sizes the structure tables for `nodes` / `edges` additional entries
  /// (bulk delta application avoids rehash churn this way).
  void ReserveAdditional(size_t nodes, size_t edges) {
    nodes_.reserve(nodes_.size() + nodes);
    edges_.reserve(edges_.size() + edges);
  }

  /// Approximate heap usage in bytes (memory-accounting benches).
  size_t MemoryBytes() const;

 private:
  std::unordered_set<NodeId> nodes_;
  std::unordered_map<EdgeId, EdgeRecord> edges_;
  std::unordered_map<NodeId, AttrMap> node_attrs_;
  std::unordered_map<EdgeId, AttrMap> edge_attrs_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_GRAPH_SNAPSHOT_H_
