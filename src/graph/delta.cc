#include "graph/delta.h"

#include <algorithm>

#include "codec/delta_codec.h"
#include "common/coding.h"

namespace hgdb {

namespace {

AttrEntry MakeAttrEntry(uint64_t owner, AttrId key_id, AttrId value_id) {
  return AttrEntry{owner, key_id, value_id};
}

// Diff helper over attribute tables: emits (owner,key,value) adds for entries
// of `target` missing or different in `source`, and deletes for the opposite.
// Value comparison is id comparison (the interner guarantees id equality ==
// string equality process-wide). Iteration skips chunks the two tables share
// by pointer — those owners are element-identical and contribute nothing.
template <typename AttrTable>
void DiffAttrs(const AttrTable& target, const AttrTable& source,
               std::vector<AttrEntry>* add, std::vector<AttrEntry>* del) {
  target.ForEachDivergent(source, [&](uint64_t owner, const AttrMap& attrs) {
    const AttrMap* sattrs = source.FindValue(owner);
    for (const auto& [k, v] : attrs) {
      const AttrId sv = sattrs == nullptr ? kInvalidAttrId : sattrs->Get(k);
      if (sv != v) add->push_back(MakeAttrEntry(owner, k, v));
      if (sv != kInvalidAttrId && sv != v) del->push_back(MakeAttrEntry(owner, k, sv));
    }
  });
  source.ForEachDivergent(target, [&](uint64_t owner, const AttrMap& attrs) {
    const AttrMap* tattrs = target.FindValue(owner);
    for (const auto& [k, v] : attrs) {
      if (tattrs == nullptr || !tattrs->Contains(k)) {
        del->push_back(MakeAttrEntry(owner, k, v));
      }
    }
  });
}

// Canonical attr order compares the interned *strings* (not the ids), so two
// processes with different interning histories canonicalize — and therefore
// encode — identically.
void SortAttrEntries(std::vector<AttrEntry>* v) {
  std::sort(v->begin(), v->end(), [](const AttrEntry& a, const AttrEntry& b) {
    if (a.owner != b.owner) return a.owner < b.owner;
    if (a.key != b.key) return AttrStr(a.key) < AttrStr(b.key);
    if (a.value == b.value) return false;
    return AttrStr(a.value) < AttrStr(b.value);
  });
}

}  // namespace

Delta Delta::Between(const Snapshot& target, const Snapshot& source) {
  Delta d;
  // COW-shared stores are identical by construction (differential combines
  // and filtered copies share structure until mutated) — skip them outright;
  // within divergent stores, chunks still shared by pointer are skipped the
  // same way, so diffing two snapshots emitted close together costs the
  // divergent chunks, not the graph.
  if (!target.SharesNodeStoreWith(source)) {
    target.nodes().ForEachDivergent(source.nodes(), [&](NodeId n) {
      if (!source.HasNode(n)) d.add_nodes.push_back(n);
    });
    source.nodes().ForEachDivergent(target.nodes(), [&](NodeId n) {
      if (!target.HasNode(n)) d.del_nodes.push_back(n);
    });
  }
  if (!target.SharesEdgeStoreWith(source)) {
    target.edges().ForEachDivergent(
        source.edges(), [&](EdgeId id, const EdgeRecord& rec) {
          if (source.FindEdge(id) == nullptr) d.add_edges.emplace_back(id, rec);
          // Ids are unique and immutable, so a shared id implies an identical
          // record.
        });
    source.edges().ForEachDivergent(
        target.edges(), [&](EdgeId id, const EdgeRecord& rec) {
          if (!target.HasEdge(id)) d.del_edges.emplace_back(id, rec);
        });
  }
  if (!target.SharesNodeAttrStoreWith(source)) {
    DiffAttrs(target.node_attrs(), source.node_attrs(), &d.add_node_attrs,
              &d.del_node_attrs);
  }
  if (!target.SharesEdgeAttrStoreWith(source)) {
    DiffAttrs(target.edge_attrs(), source.edge_attrs(), &d.add_edge_attrs,
              &d.del_edge_attrs);
  }
  d.Canonicalize();
  return d;
}

Status Delta::ApplyTo(Snapshot* g, bool forward, unsigned components) const {
  const auto& plus_nodes = forward ? add_nodes : del_nodes;
  const auto& minus_nodes = forward ? del_nodes : add_nodes;
  const auto& plus_edges = forward ? add_edges : del_edges;
  const auto& minus_edges = forward ? del_edges : add_edges;
  const auto& plus_nattrs = forward ? add_node_attrs : del_node_attrs;
  const auto& minus_nattrs = forward ? del_node_attrs : add_node_attrs;
  const auto& plus_eattrs = forward ? add_edge_attrs : del_edge_attrs;
  const auto& minus_eattrs = forward ? del_edge_attrs : add_edge_attrs;

  // Deletions first (attributes, then structure), then additions (structure,
  // then attributes), so that intermediate states stay consistent.
  if (components & kCompStruct) {
    g->ReserveAdditional(plus_nodes.size(), plus_edges.size());
  }
  if (components & kCompNodeAttr) {
    for (const auto& a : minus_nattrs) g->RemoveNodeAttrId(a.owner, a.key);
  }
  if (components & kCompEdgeAttr) {
    for (const auto& a : minus_eattrs) g->RemoveEdgeAttrId(a.owner, a.key);
  }
  if (components & kCompStruct) {
    for (const auto& [id, rec] : minus_edges) {
      if (!g->RemoveEdge(id)) {
        return Status::InvalidArgument("delta: removing absent edge " +
                                       std::to_string(id));
      }
    }
    for (NodeId n : minus_nodes) {
      if (!g->RemoveNode(n)) {
        return Status::InvalidArgument("delta: removing absent node " +
                                       std::to_string(n));
      }
    }
    for (NodeId n : plus_nodes) {
      if (!g->AddNode(n)) {
        return Status::InvalidArgument("delta: adding duplicate node " +
                                       std::to_string(n));
      }
    }
    for (const auto& [id, rec] : plus_edges) {
      if (!g->AddEdge(id, rec)) {
        return Status::InvalidArgument("delta: adding duplicate edge " +
                                       std::to_string(id));
      }
    }
  }
  if (components & kCompNodeAttr) {
    for (const auto& a : plus_nattrs) {
      g->SetNodeAttrId(a.owner, a.key, a.value);
    }
  }
  if (components & kCompEdgeAttr) {
    for (const auto& a : plus_eattrs) {
      g->SetEdgeAttrId(a.owner, a.key, a.value);
    }
  }
  return Status::OK();
}

Delta Delta::Inverse() const {
  Delta inv;
  inv.add_nodes = del_nodes;
  inv.del_nodes = add_nodes;
  inv.add_edges = del_edges;
  inv.del_edges = add_edges;
  inv.add_node_attrs = del_node_attrs;
  inv.del_node_attrs = add_node_attrs;
  inv.add_edge_attrs = del_edge_attrs;
  inv.del_edge_attrs = add_edge_attrs;
  return inv;
}

bool Delta::IsEmpty() const {
  return add_nodes.empty() && del_nodes.empty() && add_edges.empty() &&
         del_edges.empty() && add_node_attrs.empty() && del_node_attrs.empty() &&
         add_edge_attrs.empty() && del_edge_attrs.empty();
}

size_t Delta::ElementCount(unsigned components) const {
  size_t n = 0;
  if (components & kCompStruct) {
    n += add_nodes.size() + del_nodes.size() + add_edges.size() + del_edges.size();
  }
  if (components & kCompNodeAttr) {
    n += add_node_attrs.size() + del_node_attrs.size();
  }
  if (components & kCompEdgeAttr) {
    n += add_edge_attrs.size() + del_edge_attrs.size();
  }
  return n;
}

void Delta::Canonicalize() {
  std::sort(add_nodes.begin(), add_nodes.end());
  std::sort(del_nodes.begin(), del_nodes.end());
  auto by_id = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(add_edges.begin(), add_edges.end(), by_id);
  std::sort(del_edges.begin(), del_edges.end(), by_id);
  SortAttrEntries(&add_node_attrs);
  SortAttrEntries(&del_node_attrs);
  SortAttrEntries(&add_edge_attrs);
  SortAttrEntries(&del_edge_attrs);
}

void Delta::EncodeComponent(ComponentMask component, std::string* out) const {
  codec::EncodeDeltaComponent(*this, component, out);
}

Status Delta::DecodeComponent(ComponentMask component, const Slice& blob) {
  return codec::DecodeDeltaComponent(component, blob, this);
}

bool Delta::operator==(const Delta& other) const {
  return add_nodes == other.add_nodes && del_nodes == other.del_nodes &&
         add_edges == other.add_edges && del_edges == other.del_edges &&
         add_node_attrs == other.add_node_attrs &&
         del_node_attrs == other.del_node_attrs &&
         add_edge_attrs == other.add_edge_attrs &&
         del_edge_attrs == other.del_edge_attrs;
}

}  // namespace hgdb
