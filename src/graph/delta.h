#ifndef HISTGRAPH_GRAPH_DELTA_H_
#define HISTGRAPH_GRAPH_DELTA_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// One attribute element `(owner id, key, value)`. Keys and values are
/// interned AttrIds, so applying a delta writes ids straight into the
/// snapshot stores with no per-entry hash or string copy. Serialized bytes
/// stay independent of the process-local interning order because the codec
/// resolves ids through a per-blob string dictionary (src/codec/README.md);
/// id equality is string equality process-wide.
struct AttrEntry {
  uint64_t owner = 0;
  AttrId key = kInvalidAttrId;
  AttrId value = kInvalidAttrId;

  const std::string& key_str() const { return AttrStr(key); }
  const std::string& value_str() const { return AttrStr(value); }

  bool operator==(const AttrEntry& other) const {
    return owner == other.owner && key == other.key && value == other.value;
  }
};

/// \brief The difference between two snapshots (Section 4.2).
///
/// For an edge Sp -> Sc of the DeltaGraph, the stored delta is
/// `Delta(Sc, Sp)`: the elements to *add* to Sp (those in Sc - Sp) and the
/// elements to *delete* from Sp (those in Sp - Sc) to obtain Sc. A Delta is
/// exactly invertible — applying it backward turns Sc into Sp — which makes
/// every skeleton edge traversable in both directions and keeps the
/// Steiner-tree planner's undirected 2-approximation sound.
///
/// A delta is stored *columnar* as three blobs (struct, nodeattr, edgeattr),
/// each under its own key in the key-value store, so that structure-only
/// queries never fetch or decode attribute bytes (Figure 8(d)).
class Delta {
 public:
  // Structure component.
  std::vector<NodeId> add_nodes, del_nodes;
  std::vector<std::pair<EdgeId, EdgeRecord>> add_edges, del_edges;
  // Node-attribute component.
  std::vector<AttrEntry> add_node_attrs, del_node_attrs;
  // Edge-attribute component.
  std::vector<AttrEntry> add_edge_attrs, del_edge_attrs;

  /// Computes the delta that transforms `source` into `target`:
  /// `source + delta = target`.
  static Delta Between(const Snapshot& target, const Snapshot& source);

  /// Applies this delta to `g`. Forward means source -> target; backward
  /// undoes it exactly. Only the selected components are touched.
  Status ApplyTo(Snapshot* g, bool forward, unsigned components = kCompAll) const;

  /// Returns the inverse delta (adds and deletes swapped).
  Delta Inverse() const;

  bool IsEmpty() const;

  /// Number of elements in the given components (the "size of the delta" the
  /// paper uses as the skeleton edge weight approximation).
  size_t ElementCount(unsigned components = kCompAll) const;

  /// Serializes one component (`kCompStruct`, `kCompNodeAttr`, or
  /// `kCompEdgeAttr`) to a blob in the current on-disk format (delegates to
  /// src/codec/; the blob carries a magic + version header).
  void EncodeComponent(ComponentMask component, std::string* out) const;

  /// Decodes a component blob produced by EncodeComponent — any supported
  /// format version, including headerless legacy v0 blobs — into this delta.
  Status DecodeComponent(ComponentMask component, const Slice& blob);

  /// Sorts element vectors into canonical order (by id / owner + key string +
  /// value string — *string* order, so the encoding stays deterministic
  /// across processes with different interning orders). Between produces
  /// canonical deltas; hand-built deltas should call this before encoding.
  void Canonicalize();

  bool operator==(const Delta& other) const;
};

}  // namespace hgdb

#endif  // HISTGRAPH_GRAPH_DELTA_H_
