#ifndef HISTGRAPH_CODEC_EVENT_CODEC_H_
#define HISTGRAPH_CODEC_EVENT_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "temporal/event.h"

namespace hgdb {
namespace codec {

/// One decoded event together with its global sequence number within the
/// original (full) eventlist, so component blobs merge back in order.
struct SeqEvent {
  uint64_t seq = 0;
  Event event;
};

/// Serializes the events of `events` whose component intersects `mask` in the
/// current (v1, columnar) format: header, then a per-blob string dictionary
/// and SoA columns — sequence numbers and timestamps delta-encoded, op kinds
/// one byte each, ids/endpoints as varint columns, attribute keys and values
/// as dictionary indexes.
void EncodeEventListComponent(const std::vector<Event>& events, ComponentMask mask,
                              std::string* out);

/// Decodes a component blob, appending (seq, event) pairs to `out`. The
/// version is detected per blob (magic header => v1+, otherwise legacy v0).
Status DecodeEventListComponent(const Slice& blob, std::vector<SeqEvent>* out);

/// Legacy v0 row-format writer/reader (writer kept for compat fixtures only).
void EncodeEventListComponentV0(const std::vector<Event>& events, ComponentMask mask,
                                std::string* out);
Status DecodeEventListComponentV0(const Slice& blob, std::vector<SeqEvent>* out);

}  // namespace codec
}  // namespace hgdb

#endif  // HISTGRAPH_CODEC_EVENT_CODEC_H_
