#include "codec/format.h"

#include "kvstore/compression.h"

namespace hgdb {
namespace codec {

void PutHeader(std::string* out, uint8_t version) {
  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(version));
}

bool HasHeader(const Slice& blob) {
  return blob.size() >= sizeof(kMagic) + 1 &&
         std::memcmp(blob.data(), kMagic, sizeof(kMagic)) == 0;
}

Status ParseHeader(Slice* in, uint8_t* version) {
  if (in->size() < sizeof(kMagic) + 1) return Status::Corruption("codec: truncated header");
  if (std::memcmp(in->data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("codec: bad magic");
  }
  *version = static_cast<uint8_t>((*in)[sizeof(kMagic)]);
  if (*version == 0 || *version > kMaxSupportedVersion) {
    return Status::InvalidArgument("codec: blob written by unsupported format version " +
                                   std::to_string(*version));
  }
  in->RemovePrefix(sizeof(kMagic) + 1);
  return Status::OK();
}

void AppendBlock(uint8_t tag, const Slice& payload, std::string* out) {
  if (payload.size() >= kCompressMinBytes) {
    std::string lz;
    LzCompress(payload, &lz);  // LzCompress clears its output first.
    std::string packed;
    PutVarint64(&packed, payload.size());
    packed.append(lz);
    if (packed.size() < payload.size()) {
      out->push_back(static_cast<char>(tag | kBlockCompressedBit));
      PutVarint64(out, packed.size());
      out->append(packed);
      return;
    }
  }
  out->push_back(static_cast<char>(tag));
  PutVarint64(out, payload.size());
  out->append(payload.data(), payload.size());
}

Status BlockReader::Next(uint8_t* tag, Slice* payload, bool* done) {
  if (in_.empty()) {
    *done = true;
    return Status::OK();
  }
  *done = false;
  const uint8_t frame = static_cast<uint8_t>(in_[0]);
  in_.RemovePrefix(1);
  uint64_t stored_len = 0;
  if (!GetVarint64(&in_, &stored_len) || stored_len > in_.size()) {
    return Status::Corruption("codec: torn block frame");
  }
  Slice stored(in_.data(), static_cast<size_t>(stored_len));
  in_.RemovePrefix(static_cast<size_t>(stored_len));
  *tag = frame & kBlockTagMask;
  if ((frame & kBlockCompressedBit) == 0) {
    *payload = stored;
    return Status::OK();
  }
  uint64_t raw_len = 0;
  if (!GetVarint64(&stored, &raw_len)) {
    return Status::Corruption("codec: torn compressed block");
  }
  // Bound the claimed size before reserving: the LZ token stream expands at
  // most kMaxMatch (< 512) bytes per token byte, so a corrupt length varint
  // must return Corruption here rather than attempt a multi-GB allocation.
  if (raw_len > stored.size() * 512 + 64) {
    return Status::Corruption("codec: compressed block claims absurd size");
  }
  scratch_.emplace_back();
  HG_RETURN_NOT_OK(LzDecompress(stored, static_cast<size_t>(raw_len), &scratch_.back()));
  *payload = Slice(scratch_.back());
  return Status::OK();
}

Status ReadBlocks(const Slice& blob, BlockReader* reader,
                  std::unordered_map<uint8_t, Slice>* blocks, uint8_t* version_out) {
  Slice in = blob;
  uint8_t version = 0;
  HG_RETURN_NOT_OK(ParseHeader(&in, &version));
  if (version_out != nullptr) *version_out = version;
  *reader = BlockReader(in);
  for (;;) {
    uint8_t tag = 0;
    Slice payload;
    bool done = false;
    HG_RETURN_NOT_OK(reader->Next(&tag, &payload, &done));
    if (done) return Status::OK();
    if (!blocks->emplace(tag, payload).second) {
      return Status::Corruption("codec: duplicate block tag");
    }
  }
}

// -- Dictionary ---------------------------------------------------------------

void DictBuilder::EncodeTo(std::string* out) const {
  PutVarint64(out, strings_.size());
  for (std::string_view s : strings_) {
    PutLengthPrefixedSlice(out, Slice(s));
  }
}

Status DictView::Parse(Slice payload) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&payload, &count, "codec dict count"));
  if (count > payload.size()) {  // Each entry costs at least its length byte.
    return Status::Corruption("codec: dict count exceeds payload");
  }
  entries_.clear();
  entries_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Slice s;
    if (!GetLengthPrefixedSlice(&payload, &s)) {
      return Status::Corruption("codec: truncated dict entry");
    }
    entries_.push_back(s);
  }
  if (!payload.empty()) return Status::Corruption("codec: trailing dict bytes");
  ids_.assign(entries_.size(), kInvalidAttrId);
  return Status::OK();
}

// -- Column primitives --------------------------------------------------------

void PutDeltaVarints(const std::vector<uint64_t>& ids, std::string* out) {
  PutVarint64(out, ids.size());
  uint64_t prev = 0;
  for (uint64_t id : ids) {
    PutVarint64(out, id - prev);  // Wrapping difference; decode adds back.
    prev = id;
  }
}

Status GetDeltaVarints(Slice* in, std::vector<uint64_t>* ids, const char* what) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(in, &count, what));
  if (count > in->size()) {  // Each id costs at least one byte.
    return Status::Corruption(std::string("codec: count exceeds payload for ") + what);
  }
  ids->clear();
  ids->reserve(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(in, &gap, what));
    prev += gap;
    ids->push_back(prev);
  }
  return Status::OK();
}

void PutBitmap(const std::vector<bool>& bits, std::string* out) {
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i & 7));
    if ((i & 7) == 7) {
      out->push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(byte));
}

Status GetBitmap(Slice* in, size_t count, std::vector<bool>* bits, const char* what) {
  const size_t bytes = (count + 7) / 8;
  if (in->size() < bytes) {
    return Status::Corruption(std::string("codec: truncated bitmap for ") + what);
  }
  bits->assign(count, false);
  for (size_t i = 0; i < count; ++i) {
    (*bits)[i] = ((*in)[i >> 3] >> (i & 7)) & 1;
  }
  in->RemovePrefix(bytes);
  return Status::OK();
}

}  // namespace codec
}  // namespace hgdb
