#ifndef HISTGRAPH_CODEC_FORMAT_H_
#define HISTGRAPH_CODEC_FORMAT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/interner.h"
#include "common/slice.h"
#include "common/status.h"

namespace hgdb {
namespace codec {

/// \brief Versioned columnar block format for delta / eventlist blobs.
///
/// Every v1 blob starts with a 4-byte header (3 magic bytes + version), then
/// a sequence of framed column blocks:
///
///   [tag|flags : 1][varint stored_len][payload : stored_len]
///
/// The low 7 tag bits identify the column block; the high bit marks an
/// LZ-compressed payload (prefixed by a varint uncompressed length). Readers
/// skip blocks with unknown tags by their length, which is what makes the
/// format evolvable: a future version can add columns without breaking this
/// reader, and this reader rejects blobs whose *header* version it does not
/// know. Blobs without the magic are the implicit legacy v0 row format and
/// are routed to the v0 decoders (see README.md for the full spec).

/// Magic prefix of every versioned blob. Chosen with the top bit set in each
/// byte so that a legacy v0 blob (which starts with a varint element count)
/// would need a pathological multi-megabyte leading count to collide.
inline constexpr char kMagic[3] = {'\xd1', '\x47', '\xc5'};
inline constexpr uint8_t kVersion1 = 1;
/// v2 changes only the EventList id block (kBlockEventIds): id columns are
/// rebased against per-column minima with invalid-id sentinels mapped to 0,
/// so a sentinel costs one varint byte instead of ten (see event_codec.cc).
/// Delta blobs are unchanged and still written at v1.
inline constexpr uint8_t kVersion2 = 2;
/// Newest version this build can decode.
inline constexpr uint8_t kMaxSupportedVersion = kVersion2;

/// Column block tags (low 7 bits of the frame's first byte).
enum BlockTag : uint8_t {
  kBlockDict = 1,       ///< Per-blob string dictionary.
  kBlockNodeAdds = 2,   ///< Delta: added node ids.
  kBlockNodeDels = 3,   ///< Delta: deleted node ids.
  kBlockEdgeAdds = 4,   ///< Delta: added edges (id/src/dst/directed columns).
  kBlockEdgeDels = 5,   ///< Delta: deleted edges.
  kBlockAttrAdds = 6,   ///< Delta: added attribute entries.
  kBlockAttrDels = 7,   ///< Delta: deleted attribute entries.
  kBlockEventMeta = 8,  ///< EventList: seq / time / op-kind columns.
  kBlockEventIds = 9,   ///< EventList: node / edge / src / dst / directed columns.
  kBlockEventAttrs = 10,  ///< EventList: key / old / new dictionary-id columns.
  kBlockSkelNodes = 11,   ///< Skeleton: level/flags/hierarchy/time/size columns.
  kBlockSkelEdges = 12,   ///< Skeleton: from/to/flags/delta-id/sizes columns.
  kBlockSkelMeta = 13,    ///< Skeleton: super-root pointer.
};
inline constexpr uint8_t kBlockTagMask = 0x7f;
inline constexpr uint8_t kBlockCompressedBit = 0x80;

/// Column payloads at least this large are attempted through the LZ codec
/// and stored compressed when that shrinks them. (The KV layer stores codec
/// blobs as-is — see CompressValue — so this is the only compression pass.)
inline constexpr size_t kCompressMinBytes = 64;

/// Appends the header (magic + version byte).
void PutHeader(std::string* out, uint8_t version = kVersion1);

/// True if `blob` carries the v1+ magic (false => legacy v0 blob).
bool HasHeader(const Slice& blob);

/// Consumes the header, rejecting unknown (newer) versions.
Status ParseHeader(Slice* in, uint8_t* version);

/// Appends one framed block, compressing the payload when profitable.
void AppendBlock(uint8_t tag, const Slice& payload, std::string* out);

/// \brief Iterates the framed blocks of a v1 blob body (post-header).
///
/// Decompressed payloads are owned by the reader; returned slices stay valid
/// for the reader's lifetime. Unknown tags are returned to the caller, which
/// may skip them (forward compatibility).
class BlockReader {
 public:
  BlockReader() = default;
  explicit BlockReader(Slice body) : in_(body) {}

  /// Advances to the next block. Sets `*done` at a clean end of input;
  /// returns Corruption for a torn frame or an undecodable payload.
  Status Next(uint8_t* tag, Slice* payload, bool* done);

 private:
  Slice in_;
  // deque: growth never moves existing elements, so payload slices into
  // decompressed scratch buffers stay valid as more blocks are read.
  std::deque<std::string> scratch_;
};

/// Reads every block of `blob` (header included) into a tag -> payload map.
/// Duplicate tags are corruption. The reader owning decompressed payloads is
/// `*reader`, which must outlive any use of the returned slices. The blob's
/// header version is reported through `version` when non-null (decoders
/// branch on it for version-dependent column layouts).
Status ReadBlocks(const Slice& blob, BlockReader* reader,
                  std::unordered_map<uint8_t, Slice>* blocks,
                  uint8_t* version = nullptr);

// -- Per-blob string dictionary ----------------------------------------------
//
// Attribute keys/values (and transient payloads) repeat heavily within one
// blob; the dictionary stores each distinct string once, in first-appearance
// order, and the entry columns store small dictionary indexes. Decoding
// resolves (and interns) each distinct string once per blob instead of once
// per element. Because indexes are assigned by appearance order, the encoded
// bytes are independent of the process-local interning order.

class DictBuilder {
 public:
  /// Returns the dictionary index of `s`, adding it on first sight. The view
  /// must stay valid until EncodeTo (interner strings and event fields both
  /// outlive the encode call).
  uint32_t Index(std::string_view s) {
    auto [it, inserted] = map_.try_emplace(s, static_cast<uint32_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  bool empty() const { return strings_.empty(); }

  /// Serializes the dictionary payload: varint count + length-prefixed bytes.
  void EncodeTo(std::string* out) const;

 private:
  std::vector<std::string_view> strings_;
  std::unordered_map<std::string_view, uint32_t> map_;
};

class DictView {
 public:
  /// Parses a dictionary block payload; entries are slices into it.
  Status Parse(Slice payload);

  size_t size() const { return entries_.size(); }

  /// Bounds-checked entry access. Takes the full decoded varint so an index
  /// that only aliases a valid entry modulo 2^32 is rejected, not resolved.
  Status At(uint64_t idx, Slice* out) const {
    if (idx >= entries_.size()) return Status::Corruption("codec: dict index out of range");
    *out = entries_[static_cast<size_t>(idx)];
    return Status::OK();
  }

  /// Bounds-checked interned id of entry `idx` (cached: each distinct string
  /// is interned at most once per blob).
  Status InternAt(uint64_t idx, AttrId* out) {
    if (idx >= entries_.size()) return Status::Corruption("codec: dict index out of range");
    AttrId& id = ids_[static_cast<size_t>(idx)];
    if (id == kInvalidAttrId) id = InternAttr(entries_[static_cast<size_t>(idx)].ToView());
    *out = id;
    return Status::OK();
  }

 private:
  std::vector<Slice> entries_;
  std::vector<AttrId> ids_;  // kInvalidAttrId = not interned yet.
};

// -- Column primitives --------------------------------------------------------

/// Appends `ids` as varint count + ascending-delta varints (canonical order
/// makes consecutive ids close, so deltas stay short). Works for any
/// non-decreasing sequence; strictly unsorted inputs still round-trip because
/// deltas are encoded as unsigned wrapping differences.
void PutDeltaVarints(const std::vector<uint64_t>& ids, std::string* out);

/// Reads a PutDeltaVarints column. `what` names the column in errors.
Status GetDeltaVarints(Slice* in, std::vector<uint64_t>* ids, const char* what);

/// Appends a bitmap of `bits` (ceil(n/8) bytes, LSB-first).
void PutBitmap(const std::vector<bool>& bits, std::string* out);

/// Reads `count` bits appended by PutBitmap.
Status GetBitmap(Slice* in, size_t count, std::vector<bool>* bits, const char* what);

}  // namespace codec
}  // namespace hgdb

#endif  // HISTGRAPH_CODEC_FORMAT_H_
