#include "codec/event_codec.h"

#include <limits>
#include <vector>

#include "codec/format.h"
#include "common/coding.h"
#include "common/types.h"

namespace hgdb {
namespace codec {

namespace {

// Which columns an event of a given kind draws from. One byte of op kind in
// the meta column fully determines the field layout, so the id/attr columns
// hold no per-event framing at all.
bool HasNodeField(EventType t) {
  return t == EventType::kAddNode || t == EventType::kDeleteNode ||
         t == EventType::kNodeAttr || t == EventType::kTransientNode;
}
bool HasEdgeField(EventType t) {
  return t == EventType::kAddEdge || t == EventType::kDeleteEdge ||
         t == EventType::kEdgeAttr;
}
bool HasEndpoints(EventType t) {
  return HasEdgeField(t) || t == EventType::kTransientEdge;
}
bool HasDirected(EventType t) {
  return t == EventType::kAddEdge || t == EventType::kDeleteEdge;
}
bool HasKey(EventType t) {
  return t == EventType::kNodeAttr || t == EventType::kEdgeAttr ||
         t == EventType::kTransientEdge || t == EventType::kTransientNode;
}
bool HasOptionals(EventType t) {
  return t == EventType::kNodeAttr || t == EventType::kEdgeAttr;
}

// v2 id columns (ROADMAP 5c). Node/edge/src/dst ids are written rebased
// against their column's minimum *valid* id, and the invalid-id sentinel
// (all-ones, shared by kInvalidNodeId and kInvalidEdgeId) maps to 0:
//
//   [varint base][per value: 0 for sentinel, else v - base + 1]
//
// Unknown-endpoint attribute events carry sentinel src/dst, which cost ten
// varint bytes absolute but one byte rebased; valid ids shrink too whenever
// a column's ids sit far from zero. A valid id is at most max-1, so
// v - base + 1 never collides with the sentinel's 0 and round-trips exactly.
constexpr uint64_t kSentinelId = std::numeric_limits<uint64_t>::max();
static_assert(kInvalidNodeId == kSentinelId && kInvalidEdgeId == kSentinelId,
              "rebased id columns assume the all-ones invalid-id sentinel");

void PutRebasedIds(const std::vector<uint64_t>& col, std::string* out) {
  uint64_t base = kSentinelId;
  for (uint64_t v : col) {
    if (v != kSentinelId && v < base) base = v;
  }
  if (base == kSentinelId) base = 0;  // Column holds no valid ids.
  PutVarint64(out, base);
  for (uint64_t v : col) PutVarint64(out, v == kSentinelId ? 0 : v - base + 1);
}

Status GetRebasedIds(Slice* in, std::vector<uint64_t>* col, const char* what) {
  uint64_t base = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(in, &base, what));
  for (uint64_t& v : *col) {
    uint64_t rel = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(in, &rel, what));
    // Unsigned wrap on corrupt (base, rel) pairs yields a garbage id, never
    // UB; corrupt blobs fail structural checks elsewhere.
    v = rel == 0 ? kSentinelId : base + rel - 1;
  }
  return Status::OK();
}

Status DecodeVersioned(const Slice& blob, std::vector<SeqEvent>* out) {
  BlockReader reader;
  std::unordered_map<uint8_t, Slice> blocks;
  uint8_t version = 0;
  HG_RETURN_NOT_OK(ReadBlocks(blob, &reader, &blocks, &version));
  auto block = [&](uint8_t tag, Slice* payload) {
    auto it = blocks.find(tag);
    if (it == blocks.end()) return false;
    *payload = it->second;
    return true;
  };

  Slice meta;
  if (!block(kBlockEventMeta, &meta)) return Status::OK();  // Empty blob.
  uint64_t n = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&meta, &n, "eventlist count"));
  if (n > meta.size()) return Status::Corruption("eventlist count exceeds payload");
  const size_t count = static_cast<size_t>(n);

  std::vector<uint64_t> seqs(count);
  uint64_t prev_seq = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&meta, &gap, "eventlist seq"));
    prev_seq += gap;
    seqs[i] = prev_seq;
  }
  std::vector<Timestamp> times(count);
  Timestamp prev_time = 0;
  for (size_t i = 0; i < count; ++i) {
    int64_t diff = 0;
    if (!GetVarsint64(&meta, &diff)) return Status::Corruption("eventlist time");
    prev_time += diff;
    times[i] = prev_time;
  }
  if (meta.size() < count) return Status::Corruption("eventlist: truncated op kinds");
  std::vector<EventType> types(count);
  size_t nodes = 0, edges = 0, endpoints = 0, directed_n = 0, keys = 0, optionals = 0;
  for (size_t i = 0; i < count; ++i) {
    const auto t = static_cast<EventType>(meta[i]);
    if (static_cast<unsigned>(t) > static_cast<unsigned>(EventType::kTransientNode)) {
      return Status::Corruption("eventlist: bad op kind");
    }
    types[i] = t;
    nodes += HasNodeField(t);
    edges += HasEdgeField(t);
    endpoints += HasEndpoints(t);
    directed_n += HasDirected(t);
    keys += HasKey(t);
    optionals += HasOptionals(t);
  }
  meta.RemovePrefix(count);
  if (!meta.empty()) return Status::Corruption("eventlist meta: trailing bytes");

  // Id columns.
  std::vector<uint64_t> node_col(nodes), edge_col(edges), src_col(endpoints),
      dst_col(endpoints);
  std::vector<bool> directed_col;
  Slice ids;
  const bool want_ids = nodes + endpoints > 0;
  if (want_ids && !block(kBlockEventIds, &ids)) {
    return Status::Corruption("eventlist: missing id columns");
  }
  if (want_ids) {
    if (version >= kVersion2) {
      HG_RETURN_NOT_OK(GetRebasedIds(&ids, &node_col, "event node"));
      HG_RETURN_NOT_OK(GetRebasedIds(&ids, &edge_col, "event edge"));
      HG_RETURN_NOT_OK(GetRebasedIds(&ids, &src_col, "event src"));
      HG_RETURN_NOT_OK(GetRebasedIds(&ids, &dst_col, "event dst"));
    } else {  // v1: absolute varints.
      for (auto& v : node_col) HG_RETURN_NOT_OK(ExpectVarint64(&ids, &v, "event node"));
      for (auto& v : edge_col) HG_RETURN_NOT_OK(ExpectVarint64(&ids, &v, "event edge"));
      for (auto& v : src_col) HG_RETURN_NOT_OK(ExpectVarint64(&ids, &v, "event src"));
      for (auto& v : dst_col) HG_RETURN_NOT_OK(ExpectVarint64(&ids, &v, "event dst"));
    }
    HG_RETURN_NOT_OK(GetBitmap(&ids, directed_n, &directed_col, "event directed"));
    if (!ids.empty()) return Status::Corruption("eventlist ids: trailing bytes");
  }

  // Attribute columns (dictionary indexes).
  DictView dict;
  Slice payload;
  if (block(kBlockDict, &payload)) HG_RETURN_NOT_OK(dict.Parse(payload));
  std::vector<uint64_t> key_col(keys);
  std::vector<bool> old_present, new_present;
  std::vector<uint64_t> old_col, new_col;
  Slice attrs;
  if (keys > 0) {
    if (!block(kBlockEventAttrs, &attrs)) {
      return Status::Corruption("eventlist: missing attr columns");
    }
    for (auto& v : key_col) HG_RETURN_NOT_OK(ExpectVarint64(&attrs, &v, "event key"));
    HG_RETURN_NOT_OK(GetBitmap(&attrs, optionals, &old_present, "event old bitmap"));
    HG_RETURN_NOT_OK(GetBitmap(&attrs, optionals, &new_present, "event new bitmap"));
    for (bool present : old_present) {
      if (!present) continue;
      uint64_t v = 0;
      HG_RETURN_NOT_OK(ExpectVarint64(&attrs, &v, "event old value"));
      old_col.push_back(v);
    }
    for (bool present : new_present) {
      if (!present) continue;
      uint64_t v = 0;
      HG_RETURN_NOT_OK(ExpectVarint64(&attrs, &v, "event new value"));
      new_col.push_back(v);
    }
    if (!attrs.empty()) return Status::Corruption("eventlist attrs: trailing bytes");
  }

  // Assemble: one pass over the op-kind column with per-column cursors.
  size_t ni = 0, ei = 0, pi = 0, di = 0, ki = 0, oi = 0, oldi = 0, newi = 0;
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    Event e;
    e.type = types[i];
    e.time = times[i];
    if (HasNodeField(e.type)) e.node = node_col[ni++];
    if (HasEdgeField(e.type)) e.edge = edge_col[ei++];
    if (HasEndpoints(e.type)) {
      e.src = src_col[pi];
      e.dst = dst_col[pi];
      ++pi;
    }
    if (HasDirected(e.type)) e.directed = directed_col[di++];
    if (HasKey(e.type)) {
      Slice s;
      HG_RETURN_NOT_OK(dict.At(key_col[ki++], &s));
      e.key.assign(s.data(), s.size());
    }
    if (HasOptionals(e.type)) {
      if (old_present[oi]) {
        Slice s;
        HG_RETURN_NOT_OK(dict.At(old_col[oldi++], &s));
        e.old_value.emplace(s.data(), s.size());
      }
      if (new_present[oi]) {
        Slice s;
        HG_RETURN_NOT_OK(dict.At(new_col[newi++], &s));
        e.new_value.emplace(s.data(), s.size());
      }
      ++oi;
    }
    out->push_back(SeqEvent{seqs[i], std::move(e)});
  }
  return Status::OK();
}

}  // namespace

void EncodeEventListComponent(const std::vector<Event>& events, ComponentMask mask,
                              std::string* out) {
  out->clear();
  PutHeader(out, kVersion2);  // v2: rebased id columns (see PutRebasedIds).
  std::vector<uint32_t> selected;
  selected.reserve(events.size());
  for (uint32_t i = 0; i < events.size(); ++i) {
    if (events[i].component() & mask) selected.push_back(i);
  }
  if (selected.empty()) return;

  // Meta columns: count, sequence numbers (delta), timestamps (zigzag delta),
  // op kinds.
  std::string meta;
  PutVarint64(&meta, selected.size());
  uint64_t prev_seq = 0;
  for (uint32_t i : selected) {
    PutVarint64(&meta, i - prev_seq);
    prev_seq = i;
  }
  Timestamp prev_time = 0;
  for (uint32_t i : selected) {
    PutVarsint64(&meta, events[i].time - prev_time);
    prev_time = events[i].time;
  }
  for (uint32_t i : selected) meta.push_back(static_cast<char>(events[i].type));
  AppendBlock(kBlockEventMeta, meta, out);

  // Id columns: node, edge, endpoints (each rebased per column), directed
  // bitmap.
  std::vector<uint64_t> node_col, edge_col, src_col, dst_col;
  std::vector<bool> directed;
  for (uint32_t i : selected) {
    const Event& e = events[i];
    if (HasNodeField(e.type)) node_col.push_back(e.node);
    if (HasEdgeField(e.type)) edge_col.push_back(e.edge);
    if (HasEndpoints(e.type)) {
      src_col.push_back(e.src);
      dst_col.push_back(e.dst);
    }
    if (HasDirected(e.type)) directed.push_back(e.directed);
  }
  const bool any_ids = !node_col.empty() || !src_col.empty();
  if (any_ids) {
    std::string ids;
    PutRebasedIds(node_col, &ids);
    PutRebasedIds(edge_col, &ids);
    PutRebasedIds(src_col, &ids);
    PutRebasedIds(dst_col, &ids);
    PutBitmap(directed, &ids);
    AppendBlock(kBlockEventIds, ids, out);
  }

  // Attribute columns: key indexes, old/new presence bitmaps + indexes, all
  // through the per-blob dictionary.
  DictBuilder dict;
  std::string attrs;
  std::string old_idx, new_idx;
  std::vector<bool> old_present, new_present;
  bool any_attrs = false;
  for (uint32_t i : selected) {
    const Event& e = events[i];
    if (!HasKey(e.type)) continue;
    any_attrs = true;
    PutVarint64(&attrs, dict.Index(e.key));
    if (!HasOptionals(e.type)) continue;
    old_present.push_back(e.old_value.has_value());
    new_present.push_back(e.new_value.has_value());
    if (e.old_value) PutVarint64(&old_idx, dict.Index(*e.old_value));
    if (e.new_value) PutVarint64(&new_idx, dict.Index(*e.new_value));
  }
  if (any_attrs) {
    PutBitmap(old_present, &attrs);
    PutBitmap(new_present, &attrs);
    attrs.append(old_idx);
    attrs.append(new_idx);
    std::string dict_payload;
    dict.EncodeTo(&dict_payload);
    AppendBlock(kBlockDict, dict_payload, out);
    AppendBlock(kBlockEventAttrs, attrs, out);
  }
}

Status DecodeEventListComponent(const Slice& blob, std::vector<SeqEvent>* out) {
  if (HasHeader(blob)) return DecodeVersioned(blob, out);
  return DecodeEventListComponentV0(blob, out);
}

void EncodeEventListComponentV0(const std::vector<Event>& events, ComponentMask mask,
                                std::string* out) {
  out->clear();
  size_t count = 0;
  for (const auto& e : events) {
    if (e.component() & mask) ++count;
  }
  PutVarint64(out, count);
  for (size_t i = 0; i < events.size(); ++i) {
    if ((events[i].component() & mask) == 0) continue;
    PutVarint64(out, i);  // Sequence number within the full list.
    events[i].EncodeTo(out);
  }
}

Status DecodeEventListComponentV0(const Slice& blob, std::vector<SeqEvent>* out) {
  Slice in = blob;
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "eventlist component count"));
  if (count > in.size()) {
    return Status::Corruption("eventlist component count exceeds blob");
  }
  out->reserve(out->size() + static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &seq, "eventlist seq"));
    Event e;
    HG_RETURN_NOT_OK(Event::DecodeFrom(&in, &e));
    out->push_back(SeqEvent{seq, std::move(e)});
  }
  if (!in.empty()) return Status::Corruption("eventlist component: trailing bytes");
  return Status::OK();
}

}  // namespace codec
}  // namespace hgdb
