#ifndef HISTGRAPH_CODEC_DELTA_CODEC_H_
#define HISTGRAPH_CODEC_DELTA_CODEC_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "temporal/event.h"

namespace hgdb {

class Delta;

namespace codec {

/// Serializes one component of `d` in the current (v1, columnar) format:
/// header, then per-column blocks — ids varint-delta-encoded, attribute
/// key/value ids resolved through a per-blob string dictionary.
void EncodeDeltaComponent(const Delta& d, ComponentMask component, std::string* out);

/// Decodes a component blob into `out`, replacing that component's vectors.
/// The version is detected per blob: v1+ blobs carry the magic header;
/// anything else is parsed as the legacy v0 row format, so indexes persisted
/// before the codec existed still open.
Status DecodeDeltaComponent(ComponentMask component, const Slice& blob, Delta* out);

/// Legacy v0 row-format writer/reader. The writer exists only for tests (the
/// backward-compat fixtures); production code always writes v1.
void EncodeDeltaComponentV0(const Delta& d, ComponentMask component, std::string* out);
Status DecodeDeltaComponentV0(ComponentMask component, const Slice& blob, Delta* out);

}  // namespace codec
}  // namespace hgdb

#endif  // HISTGRAPH_CODEC_DELTA_CODEC_H_
