#include "codec/delta_codec.h"

#include <utility>
#include <vector>

#include "codec/format.h"
#include "common/coding.h"
#include "common/interner.h"
#include "graph/delta.h"

namespace hgdb {
namespace codec {

namespace {

// -- v1 columnar format -------------------------------------------------------

void EncodeNodeColumn(const std::vector<NodeId>& ids, uint8_t tag, std::string* out) {
  if (ids.empty()) return;
  std::string payload;
  PutDeltaVarints(ids, &payload);
  AppendBlock(tag, payload, out);
}

Status DecodeNodeColumn(Slice payload, std::vector<NodeId>* ids) {
  HG_RETURN_NOT_OK(GetDeltaVarints(&payload, ids, "delta node column"));
  if (!payload.empty()) return Status::Corruption("delta node column: trailing bytes");
  return Status::OK();
}

void EncodeEdgeColumns(const std::vector<std::pair<EdgeId, EdgeRecord>>& edges,
                       uint8_t tag, std::string* out) {
  if (edges.empty()) return;
  std::string payload;
  PutVarint64(&payload, edges.size());
  EdgeId prev = 0;
  for (const auto& [id, rec] : edges) {  // id column (delta-encoded).
    PutVarint64(&payload, id - prev);
    prev = id;
  }
  for (const auto& [id, rec] : edges) PutVarint64(&payload, rec.src);
  for (const auto& [id, rec] : edges) PutVarint64(&payload, rec.dst);
  std::vector<bool> directed;
  directed.reserve(edges.size());
  for (const auto& [id, rec] : edges) directed.push_back(rec.directed);
  PutBitmap(directed, &payload);
  AppendBlock(tag, payload, out);
}

Status DecodeEdgeColumns(Slice payload,
                         std::vector<std::pair<EdgeId, EdgeRecord>>* edges) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&payload, &count, "delta edge count"));
  if (count > payload.size()) {
    return Status::Corruption("delta edge column: count exceeds payload");
  }
  edges->clear();
  edges->resize(static_cast<size_t>(count));
  EdgeId prev = 0;
  for (auto& [id, rec] : *edges) {
    uint64_t gap = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &gap, "delta edge id"));
    prev += gap;
    id = prev;
  }
  for (auto& [id, rec] : *edges) {
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &rec.src, "delta edge src"));
  }
  for (auto& [id, rec] : *edges) {
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &rec.dst, "delta edge dst"));
  }
  std::vector<bool> directed;
  HG_RETURN_NOT_OK(GetBitmap(&payload, static_cast<size_t>(count), &directed,
                             "delta edge directed"));
  for (size_t i = 0; i < edges->size(); ++i) (*edges)[i].second.directed = directed[i];
  if (!payload.empty()) return Status::Corruption("delta edge column: trailing bytes");
  return Status::OK();
}

void EncodeAttrColumns(const std::vector<AttrEntry>& entries, uint8_t tag,
                       DictBuilder* dict, std::string* out) {
  if (entries.empty()) return;
  std::string payload;
  PutVarint64(&payload, entries.size());
  uint64_t prev = 0;
  for (const auto& a : entries) {  // Owner column (canonical order: ascending).
    PutVarint64(&payload, a.owner - prev);
    prev = a.owner;
  }
  for (const auto& a : entries) PutVarint64(&payload, dict->Index(AttrStr(a.key)));
  for (const auto& a : entries) PutVarint64(&payload, dict->Index(AttrStr(a.value)));
  AppendBlock(tag, payload, out);
}

Status DecodeAttrColumns(Slice payload, DictView* dict, std::vector<AttrEntry>* entries) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&payload, &count, "delta attr count"));
  if (count > payload.size()) {
    return Status::Corruption("delta attr column: count exceeds payload");
  }
  entries->clear();
  entries->resize(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (auto& a : *entries) {
    uint64_t gap = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &gap, "delta attr owner"));
    prev += gap;
    a.owner = prev;
  }
  for (auto& a : *entries) {
    uint64_t idx = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &idx, "delta attr key"));
    HG_RETURN_NOT_OK(dict->InternAt(idx, &a.key));
  }
  for (auto& a : *entries) {
    uint64_t idx = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&payload, &idx, "delta attr value"));
    HG_RETURN_NOT_OK(dict->InternAt(idx, &a.value));
  }
  if (!payload.empty()) return Status::Corruption("delta attr column: trailing bytes");
  return Status::OK();
}

Status DecodeV1(ComponentMask component, const Slice& blob, Delta* out) {
  BlockReader reader;
  std::unordered_map<uint8_t, Slice> blocks;
  HG_RETURN_NOT_OK(ReadBlocks(blob, &reader, &blocks));
  auto block = [&](uint8_t tag, Slice* payload) {
    auto it = blocks.find(tag);
    if (it == blocks.end()) return false;
    *payload = it->second;
    return true;
  };
  Slice payload;
  if (component == kCompStruct) {
    out->add_nodes.clear();
    out->del_nodes.clear();
    out->add_edges.clear();
    out->del_edges.clear();
    if (block(kBlockNodeAdds, &payload)) {
      HG_RETURN_NOT_OK(DecodeNodeColumn(payload, &out->add_nodes));
    }
    if (block(kBlockNodeDels, &payload)) {
      HG_RETURN_NOT_OK(DecodeNodeColumn(payload, &out->del_nodes));
    }
    if (block(kBlockEdgeAdds, &payload)) {
      HG_RETURN_NOT_OK(DecodeEdgeColumns(payload, &out->add_edges));
    }
    if (block(kBlockEdgeDels, &payload)) {
      HG_RETURN_NOT_OK(DecodeEdgeColumns(payload, &out->del_edges));
    }
    return Status::OK();
  }
  auto* adds = component == kCompNodeAttr ? &out->add_node_attrs : &out->add_edge_attrs;
  auto* dels = component == kCompNodeAttr ? &out->del_node_attrs : &out->del_edge_attrs;
  adds->clear();
  dels->clear();
  DictView dict;
  if (block(kBlockDict, &payload)) HG_RETURN_NOT_OK(dict.Parse(payload));
  if (block(kBlockAttrAdds, &payload)) {
    HG_RETURN_NOT_OK(DecodeAttrColumns(payload, &dict, adds));
  }
  if (block(kBlockAttrDels, &payload)) {
    HG_RETURN_NOT_OK(DecodeAttrColumns(payload, &dict, dels));
  }
  return Status::OK();
}

// -- Legacy v0 row format (the pre-codec encoding, kept verbatim) -------------

void EncodeNodeIdsV0(const std::vector<NodeId>& ids, std::string* out) {
  PutVarint64(out, ids.size());
  NodeId prev = 0;
  for (NodeId n : ids) {
    PutVarint64(out, n - prev);
    prev = n;
  }
}

Status DecodeNodeIdsV0(Slice* in, std::vector<NodeId>* ids) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(in, &count, "delta node count"));
  ids->clear();
  if (count > in->size()) return Status::Corruption("delta node count exceeds blob");
  ids->reserve(static_cast<size_t>(count));
  NodeId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(in, &gap, "delta node id"));
    prev += gap;
    ids->push_back(prev);
  }
  return Status::OK();
}

void EncodeEdgesV0(const std::vector<std::pair<EdgeId, EdgeRecord>>& edges,
                   std::string* out) {
  PutVarint64(out, edges.size());
  EdgeId prev = 0;
  for (const auto& [id, rec] : edges) {
    PutVarint64(out, id - prev);
    prev = id;
    PutVarint64(out, rec.src);
    PutVarint64(out, rec.dst);
    out->push_back(rec.directed ? 1 : 0);
  }
}

Status DecodeEdgesV0(Slice* in, std::vector<std::pair<EdgeId, EdgeRecord>>* edges) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(in, &count, "delta edge count"));
  edges->clear();
  if (count > in->size()) return Status::Corruption("delta edge count exceeds blob");
  edges->reserve(static_cast<size_t>(count));
  EdgeId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0, src = 0, dst = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(in, &gap, "delta edge id"));
    HG_RETURN_NOT_OK(ExpectVarint64(in, &src, "delta edge src"));
    HG_RETURN_NOT_OK(ExpectVarint64(in, &dst, "delta edge dst"));
    if (in->empty()) return Status::Corruption("delta edge: truncated directed flag");
    const bool directed = (*in)[0] != 0;
    in->RemovePrefix(1);
    prev += gap;
    edges->emplace_back(prev, EdgeRecord{src, dst, directed});
  }
  return Status::OK();
}

void EncodeAttrEntriesV0(const std::vector<AttrEntry>& entries, std::string* out) {
  PutVarint64(out, entries.size());
  for (const auto& a : entries) {
    PutVarint64(out, a.owner);
    PutLengthPrefixedSlice(out, Slice(AttrStr(a.key)));
    PutLengthPrefixedSlice(out, Slice(AttrStr(a.value)));
  }
}

Status DecodeAttrEntriesV0(Slice* in, std::vector<AttrEntry>* entries) {
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(in, &count, "delta attr count"));
  entries->clear();
  if (count > in->size()) return Status::Corruption("delta attr count exceeds blob");
  entries->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AttrEntry a;
    Slice key, value;
    HG_RETURN_NOT_OK(ExpectVarint64(in, &a.owner, "delta attr owner"));
    if (!GetLengthPrefixedSlice(in, &key) || !GetLengthPrefixedSlice(in, &value)) {
      return Status::Corruption("delta attr: truncated string");
    }
    a.key = InternAttr(key.ToView());
    a.value = InternAttr(value.ToView());
    entries->push_back(a);
  }
  return Status::OK();
}

}  // namespace

void EncodeDeltaComponent(const Delta& d, ComponentMask component, std::string* out) {
  out->clear();
  PutHeader(out);
  switch (component) {
    case kCompStruct:
      EncodeNodeColumn(d.add_nodes, kBlockNodeAdds, out);
      EncodeNodeColumn(d.del_nodes, kBlockNodeDels, out);
      EncodeEdgeColumns(d.add_edges, kBlockEdgeAdds, out);
      EncodeEdgeColumns(d.del_edges, kBlockEdgeDels, out);
      break;
    case kCompNodeAttr:
    case kCompEdgeAttr: {
      const auto& adds = component == kCompNodeAttr ? d.add_node_attrs : d.add_edge_attrs;
      const auto& dels = component == kCompNodeAttr ? d.del_node_attrs : d.del_edge_attrs;
      DictBuilder dict;
      // Columns are built before the dictionary block is emitted (the dict is
      // populated while the attr columns are encoded) but the dict block is
      // written first so decoding is single-pass-friendly.
      std::string columns;
      EncodeAttrColumns(adds, kBlockAttrAdds, &dict, &columns);
      EncodeAttrColumns(dels, kBlockAttrDels, &dict, &columns);
      if (!dict.empty()) {
        std::string dict_payload;
        dict.EncodeTo(&dict_payload);
        AppendBlock(kBlockDict, dict_payload, out);
      }
      out->append(columns);
      break;
    }
    default:
      break;  // Deltas have no transient component.
  }
}

Status DecodeDeltaComponent(ComponentMask component, const Slice& blob, Delta* out) {
  if (component != kCompStruct && component != kCompNodeAttr &&
      component != kCompEdgeAttr) {
    return Status::InvalidArgument("delta: unknown component");
  }
  if (HasHeader(blob)) return DecodeV1(component, blob, out);
  return DecodeDeltaComponentV0(component, blob, out);
}

void EncodeDeltaComponentV0(const Delta& d, ComponentMask component, std::string* out) {
  out->clear();
  switch (component) {
    case kCompStruct:
      EncodeNodeIdsV0(d.add_nodes, out);
      EncodeNodeIdsV0(d.del_nodes, out);
      EncodeEdgesV0(d.add_edges, out);
      EncodeEdgesV0(d.del_edges, out);
      break;
    case kCompNodeAttr:
      EncodeAttrEntriesV0(d.add_node_attrs, out);
      EncodeAttrEntriesV0(d.del_node_attrs, out);
      break;
    case kCompEdgeAttr:
      EncodeAttrEntriesV0(d.add_edge_attrs, out);
      EncodeAttrEntriesV0(d.del_edge_attrs, out);
      break;
    default:
      break;
  }
}

Status DecodeDeltaComponentV0(ComponentMask component, const Slice& blob, Delta* out) {
  Slice in = blob;
  switch (component) {
    case kCompStruct:
      HG_RETURN_NOT_OK(DecodeNodeIdsV0(&in, &out->add_nodes));
      HG_RETURN_NOT_OK(DecodeNodeIdsV0(&in, &out->del_nodes));
      HG_RETURN_NOT_OK(DecodeEdgesV0(&in, &out->add_edges));
      HG_RETURN_NOT_OK(DecodeEdgesV0(&in, &out->del_edges));
      break;
    case kCompNodeAttr:
      HG_RETURN_NOT_OK(DecodeAttrEntriesV0(&in, &out->add_node_attrs));
      HG_RETURN_NOT_OK(DecodeAttrEntriesV0(&in, &out->del_node_attrs));
      break;
    case kCompEdgeAttr:
      HG_RETURN_NOT_OK(DecodeAttrEntriesV0(&in, &out->add_edge_attrs));
      HG_RETURN_NOT_OK(DecodeAttrEntriesV0(&in, &out->del_edge_attrs));
      break;
    default:
      return Status::InvalidArgument("delta: unknown component");
  }
  if (!in.empty()) return Status::Corruption("delta component: trailing bytes");
  return Status::OK();
}

}  // namespace codec
}  // namespace hgdb
