#ifndef HISTGRAPH_ADAPTIVE_MATERIALIZATION_ADVISOR_H_
#define HISTGRAPH_ADAPTIVE_MATERIALIZATION_ADVISOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "deltagraph/planner.h"

namespace hgdb {

class DeltaGraph;

/// Tuning of the adaptive materialization policy (see src/adaptive/README.md
/// for the scoring formula and the budget/eviction contract).
struct MaterializationAdvisorOptions {
  /// Total bytes of resident materialized snapshots the advisor may hold.
  /// 0 disables the advisor entirely. HISTGRAPH_MAT_BUDGET overrides
  /// (ResolveBudgetBytes).
  uint64_t budget_bytes = 0;
  /// Components materialized copies carry. Queries for a superset of these
  /// cannot start from the copy, so serve-everything deployments keep
  /// kCompAll.
  unsigned components = kCompAll;
  /// Materializations applied per tick. Each one is a real retrieval on the
  /// ingest strand, so this caps how long a tick can stall appends.
  int max_materialize_per_tick = 4;
  /// Candidates below this touch count are never materialized (noise floor).
  uint32_t min_touches = 2;
  /// An incumbent's score is multiplied by this before ranking, so a
  /// challenger must beat it by a margin to displace it (thrash damping).
  double hysteresis = 1.5;
  /// Both traffic counters are halved every this many ticks, so a past hot
  /// streak ages out and the policy follows traffic shifts.
  int decay_every_ticks = 8;
  /// Cost constants — kept identical to the planner's so "bytes saved" here
  /// means the same thing as plan cost there.
  PlannerCosts costs;
};

/// \brief The online materialization policy (ROADMAP item 3): scores every
/// skeleton node by observed traffic × predicted bytes saved per resident
/// byte, then materializes winners and evicts losers under the byte budget.
///
/// Traffic comes from two live counters: the planner-side per-node touch
/// counter (DeltaGraph::node_touches — every retrieval plan records the
/// skeleton nodes its traversal passes through) and the store's per-edge
/// fetch frequency (delta-id keyed; LRU hits count). The predicted benefit
/// of a candidate is its super-root shortest-path cost under planner weights
/// — what every query through it pays today and would not pay with a
/// resident copy — with the paper's analytical model
/// (EstimateDynamics → BalancedPathElements) supplying the estimate for
/// nodes the skeleton cannot yet price.
///
/// Threading contract: Tick mutates the skeleton and the materialized map,
/// so it MUST run on the index's single writer strand (the server runs it
/// on the ingest strand between batches). Every mutation publishes through
/// PublishFrontier, so concurrent queries keep their pinned frontier: an
/// eviction never invalidates a running plan — the pinned frontier's
/// materialized map keeps the snapshot alive until the last query drops it.
class MaterializationAdvisor {
 public:
  explicit MaterializationAdvisor(MaterializationAdvisorOptions options);
  ~MaterializationAdvisor();  ///< Unregisters any metrics export.

  MaterializationAdvisor(const MaterializationAdvisor&) = delete;
  MaterializationAdvisor& operator=(const MaterializationAdvisor&) = delete;

  /// The configured budget with the HISTGRAPH_MAT_BUDGET environment
  /// override applied (set = wins, including 0 to disable).
  static uint64_t ResolveBudgetBytes(uint64_t configured);

  /// Turns on always-on recording for `dg`'s traffic counters so the signal
  /// flows even when the metrics subsystem is off. Call once before ticking.
  void Attach(DeltaGraph* dg);

  /// What one decision round did.
  struct TickResult {
    size_t materialized = 0;       ///< Nodes materialized this tick.
    size_t evicted = 0;            ///< Nodes evicted this tick.
    size_t resident_nodes = 0;     ///< Materialized nodes after the tick.
    uint64_t resident_bytes = 0;   ///< Their actual in-memory bytes.
    size_t candidates = 0;         ///< Nodes scored this tick.
    double model_path_bytes = 0;   ///< Analytical expected path cost (bytes).
  };

  /// Runs one decision round against `dg`. Must run on the writer strand
  /// (see class comment). A no-op returning current residency when the
  /// budget is 0 or the skeleton has no leaves yet.
  Result<TickResult> Tick(DeltaGraph* dg);

  uint64_t budget_bytes() const { return options_.budget_bytes; }
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t total_materialized() const {
    return total_materialized_.load(std::memory_order_relaxed);
  }
  uint64_t total_evicted() const {
    return total_evicted_.load(std::memory_order_relaxed);
  }
  uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  /// Registers the advisor's state under `"adaptive.<name>"` in the metrics
  /// registry's "exports" block: budget, residency, cumulative decisions,
  /// and the model estimate. The advisor must outlive concurrent ToJSON.
  void RegisterMetricsExports(const std::string& name);

 private:
  MaterializationAdvisorOptions options_;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> total_materialized_{0};
  std::atomic<uint64_t> total_evicted_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> resident_nodes_{0};
  /// Bit-cast double: last tick's analytical path estimate, for the export.
  std::atomic<uint64_t> model_path_bytes_bits_{0};

  std::string metrics_export_name_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_ADAPTIVE_MATERIALIZATION_ADVISOR_H_
