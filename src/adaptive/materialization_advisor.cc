#include "adaptive/materialization_advisor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/models.h"
#include "common/env_util.h"
#include "deltagraph/delta_graph.h"
#include "obs/metrics.h"

namespace hgdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Shortest build-from-scratch cost per skeleton node under planner weights
/// (per-fetch overhead + payload bytes for the requested components),
/// deliberately ignoring materialized shortcuts: this is what a query
/// through the node pays when no copy is resident — the bytes a resident
/// copy saves. Free sources: the super-root (the empty graph) and, when the
/// current graph is maintained, the newest leaf at the current graph's copy
/// cost (the planner's "rightmost leaf is materialized" rule).
std::vector<double> BuildCostFromScratch(const Skeleton& skel, unsigned components,
                                         const PlannerCosts& costs,
                                         bool has_current, double current_elements) {
  std::vector<double> dist(skel.node_count(), kInf);
  using Item = std::pair<double, int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  auto seed = [&](int32_t id, double d) {
    if (id >= 0 && d < dist[id]) {
      dist[id] = d;
      pq.emplace(d, id);
    }
  };
  seed(skel.super_root(), 0.0);
  if (has_current && !skel.leaves().empty()) {
    seed(skel.leaves().back(),
         costs.memory_cost_factor * costs.bytes_per_element * current_elements);
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (int32_t eid : skel.incident_edges(u)) {
      const SkeletonEdge& e = skel.edge(eid);
      if (e.deleted) continue;
      const double w =
          costs.per_edge_overhead + static_cast<double>(e.sizes.TotalBytes(components));
      const int32_t v = e.from == u ? e.to : e.from;
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        pq.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

}  // namespace

MaterializationAdvisor::MaterializationAdvisor(MaterializationAdvisorOptions options)
    : options_(options) {
  options_.budget_bytes = ResolveBudgetBytes(options_.budget_bytes);
}

MaterializationAdvisor::~MaterializationAdvisor() {
  if (!metrics_export_name_.empty()) {
    obs::MetricsRegistry::Global().UnregisterProvider(metrics_export_name_);
  }
}

uint64_t MaterializationAdvisor::ResolveBudgetBytes(uint64_t configured) {
  const int64_t env = GetEnvInt("HISTGRAPH_MAT_BUDGET", -1);
  if (env >= 0) return static_cast<uint64_t>(env);
  return configured;
}

void MaterializationAdvisor::Attach(DeltaGraph* dg) {
  if (options_.budget_bytes == 0) return;  // Disabled: leave counters gated.
  dg->node_touches().SetAlwaysOn(true);
  dg->delta_store().fetch_frequency().SetAlwaysOn(true);
}

Result<MaterializationAdvisor::TickResult> MaterializationAdvisor::Tick(
    DeltaGraph* dg) {
  TickResult out;
  const Skeleton& skel = dg->skeleton();

  auto scan_resident = [&](const std::vector<int32_t>& ids) {
    out.resident_nodes = 0;
    out.resident_bytes = 0;
    for (int32_t id : ids) {
      const Snapshot* snap = dg->materialized_snapshot(id);
      if (snap == nullptr) continue;
      ++out.resident_nodes;
      out.resident_bytes += snap->MemoryBytes();
    }
  };
  auto resident_ids = [&] {
    std::vector<int32_t> ids;
    for (size_t i = 0; i < skel.node_count(); ++i) {
      if (skel.node(static_cast<int32_t>(i)).materialized) {
        ids.push_back(static_cast<int32_t>(i));
      }
    }
    return ids;
  };
  auto publish = [&] {
    resident_bytes_.store(out.resident_bytes, std::memory_order_relaxed);
    resident_nodes_.store(out.resident_nodes, std::memory_order_relaxed);
    model_path_bytes_bits_.store(DoubleBits(out.model_path_bytes),
                                 std::memory_order_relaxed);
  };

  if (options_.budget_bytes == 0 || skel.leaves().empty()) {
    scan_resident(resident_ids());
    publish();
    return out;
  }
  const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Analytical estimate of one query's path cost (Section 5.3's balanced
  // path weight, in planner byte units): the benefit stand-in for nodes the
  // skeleton cannot price yet (unreachable before roots attach).
  const GraphDynamics dyn =
      EstimateDynamics(dg->insert_events(), dg->delete_events(), dg->event_count(),
                       dg->initial_elements());
  const double model_path_bytes =
      BalancedPathElements(dyn) * options_.costs.bytes_per_element;
  out.model_path_bytes = model_path_bytes;

  const std::vector<double> base_cost = BuildCostFromScratch(
      skel, options_.components, options_.costs, dg->options().maintain_current,
      static_cast<double>(dg->current().ElementCount()));

  // Score every non-super-root node: observed traffic × bytes saved per
  // resident byte. Traffic is the plan touch count plus the fetch counts of
  // the node's incident edges (repeated fetch work next to the node is
  // exactly the cost a resident copy removes; decoded-LRU hits count — a
  // hit is still traffic on that skeleton edge).
  FetchFrequency& touches = dg->node_touches();
  FetchFrequency& fetches = dg->delta_store().fetch_frequency();
  struct Candidate {
    int32_t id = -1;
    double score = 0;
    double est_bytes = 0;  ///< Actual bytes when resident, estimate otherwise.
    uint64_t traffic = 0;
    bool resident = false;
  };
  std::vector<Candidate> cands;
  cands.reserve(skel.node_count());
  for (size_t i = 0; i < skel.node_count(); ++i) {
    const SkeletonNode& n = skel.node(static_cast<int32_t>(i));
    if (n.is_super_root) continue;
    Candidate c;
    c.id = n.id;
    const Snapshot* snap = n.materialized ? dg->materialized_snapshot(n.id) : nullptr;
    c.resident = snap != nullptr;
    c.traffic = touches.Count(static_cast<DeltaId>(n.id));
    for (int32_t eid : skel.incident_edges(n.id)) {
      const SkeletonEdge& e = skel.edge(eid);
      if (!e.deleted) c.traffic += fetches.Count(e.delta_id);
    }
    c.est_bytes =
        c.resident ? static_cast<double>(snap->MemoryBytes())
                   : std::max(1.0, options_.costs.bytes_per_element *
                                       static_cast<double>(n.element_count));
    const double load_cost = options_.costs.memory_cost_factor *
                             options_.costs.bytes_per_element *
                             static_cast<double>(n.element_count);
    const double base =
        base_cost[n.id] < kInf ? base_cost[n.id] : model_path_bytes;
    const double saved = std::max(0.0, base - load_cost);
    c.score = static_cast<double>(c.traffic) * saved / c.est_bytes;
    if (c.resident) c.score *= options_.hysteresis;
    cands.push_back(c);
  }
  out.candidates = cands.size();
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // Deterministic across runs.
  });

  // Greedy knapsack under the byte budget. Incumbents compete with their
  // hysteresis-boosted score; one that no longer makes the cut is evicted.
  std::unordered_set<int32_t> desired;
  std::unordered_map<int32_t, double> score_of;
  uint64_t planned = 0;
  for (const Candidate& c : cands) {
    score_of[c.id] = c.score;
    if (c.score <= 0) continue;
    if (!c.resident && c.traffic < options_.min_touches) continue;
    const auto need = static_cast<uint64_t>(c.est_bytes);
    if (planned + need > options_.budget_bytes) continue;
    desired.insert(c.id);
    planned += need;
  }

  // Apply: evictions first (free the budget), then materializations in score
  // order, capped so one tick cannot stall the ingest strand for long.
  for (const Candidate& c : cands) {
    if (c.resident && desired.find(c.id) == desired.end()) {
      HG_RETURN_NOT_OK(dg->UnmaterializeNode(c.id));
      ++out.evicted;
    }
  }
  int budget_actions = options_.max_materialize_per_tick;
  for (const Candidate& c : cands) {
    if (c.resident || desired.find(c.id) == desired.end()) continue;
    if (budget_actions-- <= 0) break;
    // A failed materialization is skipped, not fatal: mid-ingest the skeleton
    // can transiently leave a scored node unreachable to the planner
    // ("terminal unreachable" before its hierarchy attaches). The candidate
    // keeps its traffic and is retried on a later tick; meanwhile queries are
    // unaffected — a missing copy only costs latency.
    if (!dg->MaterializeNode(c.id, options_.components).ok()) continue;
    ++out.materialized;
  }

  // Enforce the budget on *actual* resident bytes: the knapsack ran on
  // estimates, and a fresh copy's real footprint can exceed them. Evict the
  // lowest-scored residents until the total fits (their next-tick estimate
  // is the actual size, so repeat offenders stop being selected).
  std::vector<int32_t> resident = resident_ids();
  scan_resident(resident);
  while (out.resident_bytes > options_.budget_bytes && !resident.empty()) {
    std::sort(resident.begin(), resident.end(), [&](int32_t a, int32_t b) {
      const double sa = score_of.count(a) ? score_of[a] : 0;
      const double sb = score_of.count(b) ? score_of[b] : 0;
      if (sa != sb) return sa < sb;
      return a < b;
    });
    HG_RETURN_NOT_OK(dg->UnmaterializeNode(resident.front()));
    ++out.evicted;
    resident.erase(resident.begin());
    scan_resident(resident);
  }

  if (options_.decay_every_ticks > 0 &&
      tick % static_cast<uint64_t>(options_.decay_every_ticks) == 0) {
    touches.Decay();
    fetches.Decay();
  }

  total_materialized_.fetch_add(out.materialized, std::memory_order_relaxed);
  total_evicted_.fetch_add(out.evicted, std::memory_order_relaxed);
  publish();
  return out;
}

void MaterializationAdvisor::RegisterMetricsExports(const std::string& name) {
  auto& registry = obs::MetricsRegistry::Global();
  if (!metrics_export_name_.empty()) {
    registry.UnregisterProvider(metrics_export_name_);
  }
  metrics_export_name_ = "adaptive." + name;
  registry.RegisterProvider(metrics_export_name_, [this]() {
    std::ostringstream outs;
    outs << "{\"budget_bytes\":" << options_.budget_bytes
         << ",\"resident_bytes\":" << resident_bytes_.load(std::memory_order_relaxed)
         << ",\"resident_nodes\":" << resident_nodes_.load(std::memory_order_relaxed)
         << ",\"ticks\":" << ticks_.load(std::memory_order_relaxed)
         << ",\"materialized_total\":"
         << total_materialized_.load(std::memory_order_relaxed)
         << ",\"evicted_total\":" << total_evicted_.load(std::memory_order_relaxed)
         << ",\"model_path_bytes\":"
         << BitsDouble(model_path_bytes_bits_.load(std::memory_order_relaxed)) << "}";
    return outs.str();
  });
}

}  // namespace hgdb
