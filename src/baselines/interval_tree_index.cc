#include "baselines/interval_tree_index.h"

#include <algorithm>
#include <unordered_map>

namespace hgdb {

// ---------------------------------------------------------------------------
// Events -> validity intervals
// ---------------------------------------------------------------------------

std::vector<IntervalElement> EventsToIntervals(const std::vector<Event>& events) {
  std::vector<IntervalElement> out;
  std::unordered_map<NodeId, size_t> open_nodes;
  std::unordered_map<EdgeId, size_t> open_edges;
  // (owner, key) -> index of the open attr interval.
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, std::string>& p) const {
      return std::hash<uint64_t>()(p.first) ^ (std::hash<std::string>()(p.second) << 1);
    }
  };
  std::unordered_map<std::pair<uint64_t, std::string>, size_t, PairHash> open_nattrs,
      open_eattrs;

  for (const auto& e : events) {
    switch (e.type) {
      case EventType::kAddNode: {
        IntervalElement el;
        el.kind = IntervalElement::Kind::kNode;
        el.start = e.time;
        el.end = kMaxTimestamp;
        el.id = e.node;
        open_nodes[e.node] = out.size();
        out.push_back(std::move(el));
        break;
      }
      case EventType::kDeleteNode: {
        auto it = open_nodes.find(e.node);
        if (it != open_nodes.end()) {
          out[it->second].end = e.time;
          open_nodes.erase(it);
        }
        break;
      }
      case EventType::kAddEdge: {
        IntervalElement el;
        el.kind = IntervalElement::Kind::kEdge;
        el.start = e.time;
        el.end = kMaxTimestamp;
        el.id = e.edge;
        el.edge = EdgeRecord{e.src, e.dst, e.directed};
        open_edges[e.edge] = out.size();
        out.push_back(std::move(el));
        break;
      }
      case EventType::kDeleteEdge: {
        auto it = open_edges.find(e.edge);
        if (it != open_edges.end()) {
          out[it->second].end = e.time;
          open_edges.erase(it);
        }
        break;
      }
      case EventType::kNodeAttr: {
        const auto key = std::make_pair(e.node, e.key);
        auto it = open_nattrs.find(key);
        if (it != open_nattrs.end()) {
          out[it->second].end = e.time;
          open_nattrs.erase(it);
        }
        if (e.new_value.has_value()) {
          IntervalElement el;
          el.kind = IntervalElement::Kind::kNodeAttr;
          el.start = e.time;
          el.end = kMaxTimestamp;
          el.id = e.node;
          el.key = e.key;
          el.value = *e.new_value;
          open_nattrs[key] = out.size();
          out.push_back(std::move(el));
        }
        break;
      }
      case EventType::kEdgeAttr: {
        const auto key = std::make_pair(e.edge, e.key);
        auto it = open_eattrs.find(key);
        if (it != open_eattrs.end()) {
          out[it->second].end = e.time;
          open_eattrs.erase(it);
        }
        if (e.new_value.has_value()) {
          IntervalElement el;
          el.kind = IntervalElement::Kind::kEdgeAttr;
          el.start = e.time;
          el.end = kMaxTimestamp;
          el.id = e.edge;
          el.key = e.key;
          el.value = *e.new_value;
          open_eattrs[key] = out.size();
          out.push_back(std::move(el));
        }
        break;
      }
      case EventType::kTransientEdge:
      case EventType::kTransientNode:
        break;  // Transients have no interval; snapshot queries skip them.
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// IntervalTreeIndex
// ---------------------------------------------------------------------------

void AddIntervalElementToSnapshot(const IntervalElement& e, Snapshot* out) {
  switch (e.kind) {
    case IntervalElement::Kind::kNode:
      out->AddNode(e.id);
      break;
    case IntervalElement::Kind::kEdge:
      out->AddEdge(e.id, e.edge);
      break;
    case IntervalElement::Kind::kNodeAttr:
      out->SetNodeAttr(e.id, e.key, e.value);
      break;
    case IntervalElement::Kind::kEdgeAttr:
      out->SetEdgeAttr(e.id, e.key, e.value);
      break;
  }
}

Status IntervalTreeIndex::Build(const std::vector<Event>& events) {
  elements_ = EventsToIntervals(events);
  std::vector<int32_t> all;
  all.reserve(elements_.size());
  for (size_t i = 0; i < elements_.size(); ++i) {
    // [t, t) is empty (added and deleted at the same instant): no snapshot
    // ever contains it, and empty intervals would break the recursion's
    // progress guarantee.
    if (elements_[i].start < elements_[i].end) all.push_back(static_cast<int32_t>(i));
  }
  root_ = BuildNode(std::move(all));
  return Status::OK();
}

std::unique_ptr<IntervalTreeIndex::TreeNode> IntervalTreeIndex::BuildNode(
    std::vector<int32_t> items) {
  if (items.empty()) return nullptr;
  // Center = median of interval starts (robust enough for event traces).
  std::vector<Timestamp> points;
  points.reserve(items.size());
  for (int32_t i : items) points.push_back(elements_[i].start);
  std::nth_element(points.begin(), points.begin() + points.size() / 2, points.end());
  const Timestamp center = points[points.size() / 2];

  auto node = std::make_unique<TreeNode>();
  node->center = center;
  ++node_count_;
  std::vector<int32_t> left_items, right_items;
  for (int32_t i : items) {
    const auto& e = elements_[i];
    // Interval is [start, end): contains center iff start <= center < end.
    if (e.end <= center) {
      left_items.push_back(i);
    } else if (e.start > center) {
      right_items.push_back(i);
    } else {
      node->by_start.push_back(i);
    }
  }
  node->by_end = node->by_start;
  std::sort(node->by_start.begin(), node->by_start.end(), [this](int32_t a, int32_t b) {
    return elements_[a].start < elements_[b].start;
  });
  std::sort(node->by_end.begin(), node->by_end.end(), [this](int32_t a, int32_t b) {
    return elements_[a].end > elements_[b].end;
  });
  node->left = BuildNode(std::move(left_items));
  node->right = BuildNode(std::move(right_items));
  return node;
}

void IntervalTreeIndex::Query(const TreeNode* node, Timestamp t, unsigned components,
                              Snapshot* out) const {
  if (node == nullptr) return;
  if (t <= node->center) {
    // All stored intervals end after center >= t; report those starting <= t.
    for (int32_t i : node->by_start) {
      const auto& e = elements_[i];
      if (e.start > t) break;
      if (e.component() & components) AddIntervalElementToSnapshot(e, out);
    }
    if (t < node->center) Query(node->left.get(), t, components, out);
  }
  if (t > node->center) {
    // All stored intervals start before center < t; report those ending > t.
    for (int32_t i : node->by_end) {
      const auto& e = elements_[i];
      if (e.end <= t) break;
      if (e.component() & components) AddIntervalElementToSnapshot(e, out);
    }
    Query(node->right.get(), t, components, out);
  }
}

Result<Snapshot> IntervalTreeIndex::GetSnapshot(Timestamp t, unsigned components) {
  Snapshot out;
  Query(root_.get(), t, components, &out);
  return out;
}

size_t IntervalTreeIndex::MemoryBytes() const {
  size_t bytes = node_count_ * sizeof(TreeNode);
  for (const auto& e : elements_) {
    bytes += sizeof(IntervalElement) + e.key.size() + e.value.size();
  }
  bytes += 2 * elements_.size() * sizeof(int32_t);  // by_start + by_end entries.
  return bytes;
}

// ---------------------------------------------------------------------------
// SegmentTreeIndex
// ---------------------------------------------------------------------------

Status SegmentTreeIndex::Build(const std::vector<Event>& events) {
  elements_ = EventsToIntervals(events);
  boundaries_.clear();
  for (const auto& e : elements_) {
    boundaries_.push_back(e.start);
    if (e.end != kMaxTimestamp) boundaries_.push_back(e.end);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  if (boundaries_.empty()) return Status::OK();

  nodes_.assign(4 * boundaries_.size(), {});
  for (size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    // Canonical range over elementary-interval indices [a, b).
    const size_t a = static_cast<size_t>(
        std::lower_bound(boundaries_.begin(), boundaries_.end(), e.start) -
        boundaries_.begin());
    const size_t b =
        e.end == kMaxTimestamp
            ? boundaries_.size()
            : static_cast<size_t>(std::lower_bound(boundaries_.begin(),
                                                   boundaries_.end(), e.end) -
                                  boundaries_.begin());
    if (a < b) Insert(1, 0, boundaries_.size(), a, b, static_cast<int32_t>(i));
  }
  return Status::OK();
}

void SegmentTreeIndex::Insert(size_t node, size_t lo, size_t hi, size_t a, size_t b,
                              int32_t elem) {
  if (a <= lo && hi <= b) {
    nodes_[node].push_back(elem);
    ++stored_entries_;
    return;
  }
  const size_t mid = (lo + hi) / 2;
  if (a < mid) Insert(2 * node, lo, mid, a, b, elem);
  if (b > mid) Insert(2 * node + 1, mid, hi, a, b, elem);
}

Result<Snapshot> SegmentTreeIndex::GetSnapshot(Timestamp t, unsigned components) {
  Snapshot out;
  if (boundaries_.empty()) return out;
  // Elementary interval containing t: index of last boundary <= t.
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  if (it == boundaries_.begin()) return out;  // Before the first event.
  size_t pos = static_cast<size_t>(it - boundaries_.begin()) - 1;

  size_t node = 1, lo = 0, hi = boundaries_.size();
  while (true) {
    for (int32_t i : nodes_[node]) {
      const auto& e = elements_[i];
      if (e.component() & components) AddIntervalElementToSnapshot(e, &out);
    }
    if (hi - lo <= 1) break;
    const size_t mid = (lo + hi) / 2;
    if (pos < mid) {
      node = 2 * node;
      hi = mid;
    } else {
      node = 2 * node + 1;
      lo = mid;
    }
  }
  return out;
}

size_t SegmentTreeIndex::MemoryBytes() const {
  size_t bytes = boundaries_.capacity() * sizeof(Timestamp);
  for (const auto& e : elements_) {
    bytes += sizeof(IntervalElement) + e.key.size() + e.value.size();
  }
  bytes += nodes_.capacity() * sizeof(std::vector<int32_t>);
  bytes += stored_entries_ * sizeof(int32_t);
  return bytes;
}

}  // namespace hgdb
