#include "baselines/copy_log_index.h"

#include "graph/delta.h"

namespace hgdb {

namespace {

constexpr ComponentMask kDeltaComponents[3] = {kCompStruct, kCompNodeAttr,
                                               kCompEdgeAttr};
constexpr ComponentMask kAllComponents[4] = {kCompStruct, kCompNodeAttr,
                                             kCompEdgeAttr, kCompTransient};
constexpr char kTag[4] = {'s', 'n', 'e', 't'};

std::string Key(const char* prefix, uint64_t id, int c) {
  return std::string(prefix) + std::to_string(id) + "/" + kTag[c];
}

}  // namespace

void EncodeSnapshot(const Snapshot& snap, unsigned components, std::string* out) {
  // A full snapshot is exactly the delta from the empty graph; the blob is a
  // sequence of (component tag, length-prefixed component blob) pairs.
  static const Snapshot kEmpty;
  Delta d = Delta::Between(snap, kEmpty);
  out->clear();
  for (int c = 0; c < 3; ++c) {
    if ((components & kDeltaComponents[c]) == 0) continue;
    std::string blob;
    d.EncodeComponent(kDeltaComponents[c], &blob);
    out->push_back(kTag[c]);
    PutLengthPrefixedSlice(out, blob);
  }
}

Status DecodeSnapshot(const Slice& blob, Snapshot* out) {
  Delta d;
  Slice in = blob;
  while (!in.empty()) {
    const char tag = in[0];
    in.RemovePrefix(1);
    Slice component;
    if (!GetLengthPrefixedSlice(&in, &component)) {
      return Status::Corruption("snapshot blob: truncated component");
    }
    int index = -1;
    for (int c = 0; c < 3; ++c) {
      if (kTag[c] == tag) index = c;
    }
    if (index < 0) return Status::Corruption("snapshot blob: unknown component tag");
    HG_RETURN_NOT_OK(d.DecodeComponent(kDeltaComponents[index], component));
  }
  *out = Snapshot();
  return d.ApplyTo(out, true, kCompAll);
}

// ---------------------------------------------------------------------------
// CopyLogIndex
// ---------------------------------------------------------------------------

Status CopyLogIndex::Build(const std::vector<Event>& events) {
  Snapshot current;
  EventList pending;
  static const Snapshot kEmpty;

  auto store_snapshot = [&](Timestamp boundary) -> Status {
    Checkpoint cp;
    cp.boundary = boundary;
    cp.snapshot_id = next_id_++;
    cp.eventlist_id = 0;
    Delta d = Delta::Between(current, kEmpty);
    std::string blob;
    for (int c = 0; c < 3; ++c) {
      d.EncodeComponent(kDeltaComponents[c], &blob);
      if (blob.empty()) continue;
      HG_RETURN_NOT_OK(store_->Put(Key("cl/s/", cp.snapshot_id, c), blob));
      cp.snapshot_bytes[c] = blob.size();
    }
    checkpoints_.push_back(cp);
    return Status::OK();
  };

  auto flush_events = [&]() -> Status {
    if (pending.empty() || checkpoints_.empty()) return Status::OK();
    Checkpoint& cp = checkpoints_.back();
    cp.eventlist_id = next_id_++;
    std::string blob;
    for (int c = 0; c < 4; ++c) {
      pending.EncodeComponent(kAllComponents[c], &blob);
      if (pending.CountComponent(kAllComponents[c]) == 0) continue;
      HG_RETURN_NOT_OK(store_->Put(Key("cl/e/", cp.eventlist_id, c), blob));
      cp.eventlist_bytes[c] = blob.size();
    }
    pending.Clear();
    return Status::OK();
  };

  for (const auto& e : events) {
    if (checkpoints_.empty()) {
      HG_RETURN_NOT_OK(store_snapshot(e.time - 1));
    }
    // Checkpoint at time boundaries once L events have accumulated (equal-
    // time events never straddle a checkpoint).
    if (pending.size() >= leaf_size_ && e.time > pending.EndTime()) {
      const Timestamp boundary = pending.EndTime();
      HG_RETURN_NOT_OK(flush_events());
      HG_RETURN_NOT_OK(store_snapshot(boundary));
    }
    HG_RETURN_NOT_OK(current.Apply(e, true));
    pending.Append(e);
  }
  return flush_events();
}

Result<Snapshot> CopyLogIndex::GetSnapshot(Timestamp t, unsigned components) {
  if (checkpoints_.empty()) return Snapshot();
  // Latest checkpoint with boundary <= t.
  int lo = 0, hi = static_cast<int>(checkpoints_.size()) - 1, best = 0;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (checkpoints_[mid].boundary <= t) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  const Checkpoint& cp = checkpoints_[best];

  Snapshot snap;
  Delta d;
  std::string blob;
  for (int c = 0; c < 3; ++c) {
    if ((components & kDeltaComponents[c]) == 0) continue;
    if (cp.snapshot_bytes[c] == 0) continue;
    HG_RETURN_NOT_OK(store_->Get(Key("cl/s/", cp.snapshot_id, c), &blob));
    HG_RETURN_NOT_OK(d.DecodeComponent(kDeltaComponents[c], blob));
  }
  HG_RETURN_NOT_OK(d.ApplyTo(&snap, true, components));

  if (cp.eventlist_id != 0 && t > cp.boundary) {
    EventList el;
    for (int c = 0; c < 4; ++c) {
      if ((components & kAllComponents[c]) == 0) continue;
      if (cp.eventlist_bytes[c] == 0) continue;
      HG_RETURN_NOT_OK(store_->Get(Key("cl/e/", cp.eventlist_id, c), &blob));
      HG_RETURN_NOT_OK(el.DecodeAndMergeComponent(blob));
    }
    el.FinalizeMerge();
    for (const auto& e : el.events()) {
      if (e.time > t) break;
      HG_RETURN_NOT_OK(snap.Apply(e, true, components));
    }
  }
  return snap;
}

size_t CopyLogIndex::MemoryBytes() const {
  return checkpoints_.capacity() * sizeof(Checkpoint);
}

// ---------------------------------------------------------------------------
// LogIndex
// ---------------------------------------------------------------------------

namespace {

// Escapes a string token for the text log (spaces/backslashes/newlines).
void AppendToken(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case ' ':
        *out += "\\s";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string UnescapeToken(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 's' ? ' ' : s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// "-" encodes an absent optional; real values are prefixed with "=" so an
// actual "-" round-trips.
void AppendOptional(const std::optional<std::string>& v, std::string* out) {
  if (!v.has_value()) {
    *out += "-";
  } else {
    *out += "=";
    AppendToken(*v, out);
  }
}

std::optional<std::string> ParseOptional(const std::string& token) {
  if (token == "-") return std::nullopt;
  return UnescapeToken(token.substr(1));
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t space = pos;
    // Find an unescaped space.
    while (space < line.size() &&
           !(line[space] == ' ' && (space == pos || line[space - 1] != '\\'))) {
      // Escaped spaces are "\s", so a raw ' ' is always a separator; the
      // check above is defensive.
      if (line[space] == ' ') break;
      ++space;
    }
    out.push_back(line.substr(pos, space - pos));
    pos = space + 1;
    if (space >= line.size()) break;
  }
  return out;
}

}  // namespace

void EncodeEventText(const Event& e, std::string* out) {
  char buf[64];
  switch (e.type) {
    case EventType::kAddNode:
      std::snprintf(buf, sizeof(buf), "NN %llu %lld",
                    static_cast<unsigned long long>(e.node),
                    static_cast<long long>(e.time));
      *out += buf;
      return;
    case EventType::kDeleteNode:
      std::snprintf(buf, sizeof(buf), "DN %llu %lld",
                    static_cast<unsigned long long>(e.node),
                    static_cast<long long>(e.time));
      *out += buf;
      return;
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
      std::snprintf(buf, sizeof(buf), "%s %llu %llu %llu %c %lld",
                    e.type == EventType::kAddEdge ? "NE" : "DE",
                    static_cast<unsigned long long>(e.edge),
                    static_cast<unsigned long long>(e.src),
                    static_cast<unsigned long long>(e.dst),
                    e.directed ? 'd' : 'u', static_cast<long long>(e.time));
      *out += buf;
      return;
    case EventType::kNodeAttr:
    case EventType::kEdgeAttr: {
      *out += e.type == EventType::kNodeAttr ? "UNA " : "UEA ";
      std::snprintf(buf, sizeof(buf), "%llu ",
                    static_cast<unsigned long long>(
                        e.type == EventType::kNodeAttr ? e.node : e.edge));
      *out += buf;
      AppendToken(e.key, out);
      *out += ' ';
      AppendOptional(e.old_value, out);
      *out += ' ';
      AppendOptional(e.new_value, out);
      std::snprintf(buf, sizeof(buf), " %lld", static_cast<long long>(e.time));
      *out += buf;
      return;
    }
    case EventType::kTransientEdge:
      std::snprintf(buf, sizeof(buf), "TE %llu %llu ",
                    static_cast<unsigned long long>(e.src),
                    static_cast<unsigned long long>(e.dst));
      *out += buf;
      AppendToken(e.key, out);
      std::snprintf(buf, sizeof(buf), " %lld", static_cast<long long>(e.time));
      *out += buf;
      return;
    case EventType::kTransientNode:
      std::snprintf(buf, sizeof(buf), "TN %llu ",
                    static_cast<unsigned long long>(e.node));
      *out += buf;
      AppendToken(e.key, out);
      std::snprintf(buf, sizeof(buf), " %lld", static_cast<long long>(e.time));
      *out += buf;
      return;
  }
}

Status DecodeEventText(const std::string& line, Event* out) {
  const std::vector<std::string> tok = SplitTokens(line);
  auto bad = [&line]() {
    return Status::Corruption("text log: bad line: " + line);
  };
  if (tok.empty()) return bad();
  const std::string& kind = tok[0];
  auto num = [](const std::string& s) { return std::strtoull(s.c_str(), nullptr, 10); };
  auto snum = [](const std::string& s) { return std::strtoll(s.c_str(), nullptr, 10); };
  if (kind == "NN" || kind == "DN") {
    if (tok.size() != 3) return bad();
    *out = kind == "NN" ? Event::AddNode(snum(tok[2]), num(tok[1]))
                        : Event::DeleteNode(snum(tok[2]), num(tok[1]));
    return Status::OK();
  }
  if (kind == "NE" || kind == "DE") {
    if (tok.size() != 6) return bad();
    const bool directed = tok[4] == "d";
    *out = kind == "NE" ? Event::AddEdge(snum(tok[5]), num(tok[1]), num(tok[2]),
                                         num(tok[3]), directed)
                        : Event::DeleteEdge(snum(tok[5]), num(tok[1]), num(tok[2]),
                                            num(tok[3]), directed);
    return Status::OK();
  }
  if (kind == "UNA" || kind == "UEA") {
    if (tok.size() != 6) return bad();
    if (kind == "UNA") {
      *out = Event::SetNodeAttr(snum(tok[5]), num(tok[1]), UnescapeToken(tok[2]),
                                ParseOptional(tok[3]), ParseOptional(tok[4]));
    } else {
      *out = Event::SetEdgeAttr(snum(tok[5]), num(tok[1]), UnescapeToken(tok[2]),
                                ParseOptional(tok[3]), ParseOptional(tok[4]));
    }
    return Status::OK();
  }
  if (kind == "TE") {
    if (tok.size() != 5) return bad();
    *out = Event::TransientEdge(snum(tok[4]), num(tok[1]), num(tok[2]),
                                UnescapeToken(tok[3]));
    return Status::OK();
  }
  if (kind == "TN") {
    if (tok.size() != 4) return bad();
    *out = Event::TransientNode(snum(tok[3]), num(tok[1]), UnescapeToken(tok[2]));
    return Status::OK();
  }
  return bad();
}

Status LogIndex::Build(const std::vector<Event>& events) {
  EventList pending;
  auto flush = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    Chunk chunk;
    chunk.start = pending.StartTime();
    chunk.id = next_id_++;
    std::string blob;
    if (text_format_) {
      for (const auto& e : pending.events()) {
        EncodeEventText(e, &blob);
        blob += '\n';
      }
      HG_RETURN_NOT_OK(store_->Put(Key("log/", chunk.id, 0), blob));
    } else {
      for (int c = 0; c < 4; ++c) {
        pending.EncodeComponent(kAllComponents[c], &blob);
        if (pending.CountComponent(kAllComponents[c]) == 0) continue;
        HG_RETURN_NOT_OK(store_->Put(Key("log/", chunk.id, c), blob));
      }
    }
    chunks_.push_back(chunk);
    pending.Clear();
    return Status::OK();
  };
  for (const auto& e : events) {
    if (pending.size() >= chunk_events_ && e.time > pending.EndTime()) {
      HG_RETURN_NOT_OK(flush());
    }
    pending.Append(e);
  }
  return flush();
}

Result<Snapshot> LogIndex::GetSnapshot(Timestamp t, unsigned components) {
  Snapshot snap;
  std::string blob;
  for (const auto& chunk : chunks_) {
    if (chunk.start > t) break;
    if (text_format_) {
      HG_RETURN_NOT_OK(store_->Get(Key("log/", chunk.id, 0), &blob));
      size_t pos = 0;
      bool done = false;
      while (pos < blob.size() && !done) {
        size_t nl = blob.find('\n', pos);
        if (nl == std::string::npos) nl = blob.size();
        Event e;
        HG_RETURN_NOT_OK(DecodeEventText(blob.substr(pos, nl - pos), &e));
        if (e.time > t) {
          done = true;
        } else {
          HG_RETURN_NOT_OK(snap.Apply(e, true, components));
        }
        pos = nl + 1;
      }
      continue;
    }
    EventList el;
    for (int c = 0; c < 4; ++c) {
      if ((components & kAllComponents[c]) == 0) continue;
      Status s = store_->Get(Key("log/", chunk.id, c), &blob);
      if (s.IsNotFound()) continue;
      HG_RETURN_NOT_OK(s);
      HG_RETURN_NOT_OK(el.DecodeAndMergeComponent(blob));
    }
    el.FinalizeMerge();
    for (const auto& e : el.events()) {
      if (e.time > t) break;
      HG_RETURN_NOT_OK(snap.Apply(e, true, components));
    }
  }
  return snap;
}

}  // namespace hgdb
