#ifndef HISTGRAPH_BASELINES_INTERVAL_TREE_INDEX_H_
#define HISTGRAPH_BASELINES_INTERVAL_TREE_INDEX_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "baselines/snapshot_index.h"

namespace hgdb {

/// One element of the historical graph with its validity interval
/// [start, end). Attribute elements are value-specific: changing a value
/// closes one interval and opens another.
struct IntervalElement {
  enum class Kind : unsigned char { kNode, kEdge, kNodeAttr, kEdgeAttr };
  Kind kind;
  Timestamp start;
  Timestamp end;  ///< kMaxTimestamp when still valid.
  uint64_t id;    ///< NodeId or EdgeId (attribute owner for attr kinds).
  EdgeRecord edge;
  std::string key, value;

  unsigned component() const {
    switch (kind) {
      case Kind::kNode:
      case Kind::kEdge:
        return kCompStruct;
      case Kind::kNodeAttr:
        return kCompNodeAttr;
      case Kind::kEdgeAttr:
        return kCompEdgeAttr;
    }
    return kCompStruct;
  }
};

/// Converts an event trace into validity intervals (shared by the interval-
/// and segment-tree baselines).
std::vector<IntervalElement> EventsToIntervals(const std::vector<Event>& events);

/// Materializes one interval element into a snapshot under construction.
void AddIntervalElementToSnapshot(const IntervalElement& e, Snapshot* out);

/// \brief In-memory interval tree over element validity intervals
/// (Section 4.1 / Figure 7's comparison baseline; the centered interval-tree
/// counterpart of Arge & Vitter's external structure).
///
/// A stabbing query at time t collects every element whose validity interval
/// contains t, i.e. exactly the valid-timeslice snapshot.
class IntervalTreeIndex final : public SnapshotIndex {
 public:
  std::string name() const override { return "interval-tree"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components) override;
  size_t StorageBytes() const override { return 0; }  // Purely in-memory.
  size_t MemoryBytes() const override;

 private:
  struct TreeNode {
    Timestamp center;
    // Intervals containing center, sorted by start (asc) and by end (desc).
    std::vector<int32_t> by_start;
    std::vector<int32_t> by_end;
    std::unique_ptr<TreeNode> left, right;
  };

  std::unique_ptr<TreeNode> BuildNode(std::vector<int32_t> items);
  void Query(const TreeNode* node, Timestamp t, unsigned components,
             Snapshot* out) const;

  std::vector<IntervalElement> elements_;
  std::unique_ptr<TreeNode> root_;
  size_t node_count_ = 0;
};

/// \brief Segment tree over the elementary intervals of the trace
/// (Section 4.1 / Section 5.4's qualitative comparison). Each element
/// interval is stored in O(log n) canonical nodes, duplicating entries —
/// space O(|E| log |E|) versus the interval tree's O(|E|), which is exactly
/// the trade-off the paper calls out.
class SegmentTreeIndex final : public SnapshotIndex {
 public:
  std::string name() const override { return "segment-tree"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components) override;
  size_t StorageBytes() const override { return 0; }
  size_t MemoryBytes() const override;

 private:
  void Insert(size_t node, size_t lo, size_t hi, size_t a, size_t b, int32_t elem);

  std::vector<IntervalElement> elements_;
  std::vector<Timestamp> boundaries_;          ///< Sorted distinct endpoints.
  std::vector<std::vector<int32_t>> nodes_;    ///< Heap-layout canonical lists.
  size_t stored_entries_ = 0;
};

}  // namespace hgdb

#endif  // HISTGRAPH_BASELINES_INTERVAL_TREE_INDEX_H_
