#ifndef HISTGRAPH_BASELINES_SNAPSHOT_INDEX_H_
#define HISTGRAPH_BASELINES_SNAPSHOT_INDEX_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {

/// \brief Common interface over the historical-snapshot storage approaches
/// the paper compares against (Section 4.1): Copy+Log, the naive Log, the
/// in-memory interval tree, and the external segment tree.
///
/// Every implementation answers the same valid-timeslice query — retrieve the
/// snapshot as of time t — so the benchmark harness can swap approaches
/// behind one call, exactly as the paper integrated them ("both of those
/// were integrated into our system such that any of the approaches could be
/// used to fetch the historical snapshots into the GraphPool").
class SnapshotIndex {
 public:
  virtual ~SnapshotIndex() = default;

  virtual std::string name() const = 0;

  /// Bulk-builds the index from a chronological event trace.
  virtual Status Build(const std::vector<Event>& events) = 0;

  /// Retrieves the snapshot as of `t` (all events with time <= t applied).
  virtual Result<Snapshot> GetSnapshot(Timestamp t, unsigned components) = 0;

  /// Bytes of persistent storage used (0 for purely in-memory approaches).
  virtual size_t StorageBytes() const = 0;

  /// Bytes of main memory permanently held by the index.
  virtual size_t MemoryBytes() const = 0;
};

/// Serializes a full snapshot (columnar, like a super-root delta).
void EncodeSnapshot(const Snapshot& snap, unsigned components, std::string* out);
Status DecodeSnapshot(const Slice& blob, Snapshot* out);

}  // namespace hgdb

#endif  // HISTGRAPH_BASELINES_SNAPSHOT_INDEX_H_
