#ifndef HISTGRAPH_BASELINES_COPY_LOG_INDEX_H_
#define HISTGRAPH_BASELINES_COPY_LOG_INDEX_H_

#include <memory>

#include "baselines/snapshot_index.h"
#include "kvstore/kv_store.h"
#include "temporal/event_list.h"

namespace hgdb {

/// \brief The Copy+Log approach (Section 4.1): store an explicit snapshot
/// every L events plus the eventlists between snapshots.
///
/// Retrieval loads the nearest stored snapshot at or before t and replays the
/// partial eventlist forward. Copy+Log is the special case of a DeltaGraph
/// with the Empty differential function and arity N; it trades much higher
/// disk usage for short replay distances.
class CopyLogIndex final : public SnapshotIndex {
 public:
  /// `store` must outlive the index. `checkpoint_every` is L.
  CopyLogIndex(KVStore* store, size_t checkpoint_every)
      : store_(store), leaf_size_(checkpoint_every) {}

  std::string name() const override { return "copy+log"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components) override;
  size_t StorageBytes() const override { return store_->ValueBytes(); }
  size_t MemoryBytes() const override;

 private:
  struct Checkpoint {
    Timestamp boundary;    ///< Snapshot state time.
    uint64_t snapshot_id;  ///< Key of the stored full snapshot.
    uint64_t eventlist_id; ///< Key of the eventlist following this snapshot
                           ///< (0 when none).
    uint64_t snapshot_bytes[4] = {0, 0, 0, 0};   ///< Per-component blob sizes.
    uint64_t eventlist_bytes[4] = {0, 0, 0, 0};
  };

  KVStore* store_;
  size_t leaf_size_;
  std::vector<Checkpoint> checkpoints_;  ///< Chronological.
  uint64_t next_id_ = 1;
};

/// \brief The naive Log approach (Section 4.1): "only and all the changes are
/// recorded"; every query replays the event log from the beginning. Space
/// optimal, prohibitively slow queries — the paper measured it 20-23x slower
/// than the DeltaGraph.
///
/// The paper's variant reads "raw events from input files directly", i.e. a
/// textual event log that must be parsed during replay. `text_format=true`
/// reproduces that (one text line per event, parsed on read);
/// `text_format=false` replays the compact binary encoding instead, which is
/// a much stronger baseline than the paper's.
class LogIndex final : public SnapshotIndex {
 public:
  /// `store` must outlive the index; events are chunked into blobs of
  /// `chunk_events` so replay reads sequentially like a log file would.
  explicit LogIndex(KVStore* store, size_t chunk_events = 4096,
                    bool text_format = false)
      : store_(store), chunk_events_(chunk_events), text_format_(text_format) {}

  std::string name() const override { return text_format_ ? "log(text)" : "log"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Snapshot> GetSnapshot(Timestamp t, unsigned components) override;
  size_t StorageBytes() const override { return store_->ValueBytes(); }
  size_t MemoryBytes() const override { return chunks_.capacity() * sizeof(Chunk); }

 private:
  struct Chunk {
    Timestamp start;
    uint64_t id;
  };
  KVStore* store_;
  size_t chunk_events_;
  bool text_format_;
  std::vector<Chunk> chunks_;
  uint64_t next_id_ = 1;
};

/// Text-line codec for the Log baseline's "raw input file" format, e.g.
///   "NE 5 1 2 u 17"        (new edge 5 between 1 and 2, undirected, t=17)
///   "UNA 3 name alice bob 21"
/// Exposed for tests.
void EncodeEventText(const Event& e, std::string* out);
Status DecodeEventText(const std::string& line, Event* out);

}  // namespace hgdb

#endif  // HISTGRAPH_BASELINES_COPY_LOG_INDEX_H_
