#include "auxiliary/aux_snapshot.h"

#include "common/coding.h"

namespace hgdb {

bool AuxSnapshot::Remove(const std::string& key, const std::string& value) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  const bool removed = it->second.erase(value) > 0;
  if (it->second.empty()) map_.erase(it);
  return removed;
}

bool AuxSnapshot::Contains(const std::string& key, const std::string& value) const {
  auto it = map_.find(key);
  return it != map_.end() && it->second.contains(value);
}

size_t AuxSnapshot::PairCount() const {
  size_t n = 0;
  for (const auto& [k, vs] : map_) n += vs.size();
  return n;
}

Status ApplyAuxEvents(const std::vector<AuxEvent>& events, bool forward, Timestamp lo,
                      Timestamp hi, AuxSnapshot* snap) {
  if (forward) {
    for (const auto& e : events) {
      if (e.time <= lo) continue;
      if (e.time > hi) break;
      if (e.add) {
        snap->Add(e.key, e.value);
      } else {
        snap->Remove(e.key, e.value);
      }
    }
  } else {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it->time > hi) continue;
      if (it->time <= lo) break;
      if (it->add) {
        snap->Remove(it->key, it->value);  // Undo the add.
      } else {
        snap->Add(it->key, it->value);  // Undo the delete.
      }
    }
  }
  return Status::OK();
}

void EncodeAuxEvents(const std::vector<AuxEvent>& events, std::string* out) {
  out->clear();
  PutVarint64(out, events.size());
  for (const auto& e : events) {
    PutVarsint64(out, e.time);
    out->push_back(e.add ? 1 : 0);
    PutLengthPrefixedSlice(out, Slice(e.key));
    PutLengthPrefixedSlice(out, Slice(e.value));
  }
}

Status DecodeAuxEvents(const Slice& blob, std::vector<AuxEvent>* out) {
  Slice in = blob;
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "aux event count"));
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AuxEvent e;
    if (!GetVarsint64(&in, &e.time)) return Status::Corruption("aux event time");
    if (in.empty()) return Status::Corruption("aux event flag");
    e.add = in[0] != 0;
    in.RemovePrefix(1);
    HG_RETURN_NOT_OK(ExpectLengthPrefixedString(&in, &e.key, "aux event key"));
    HG_RETURN_NOT_OK(ExpectLengthPrefixedString(&in, &e.value, "aux event value"));
    out->push_back(std::move(e));
  }
  if (!in.empty()) return Status::Corruption("aux events: trailing bytes");
  return Status::OK();
}

AuxDelta AuxDelta::Between(const AuxSnapshot& target, const AuxSnapshot& source) {
  AuxDelta d;
  for (const auto& [k, vs] : target.entries()) {
    for (const auto& v : vs) {
      if (!source.Contains(k, v)) d.add.emplace_back(k, v);
    }
  }
  for (const auto& [k, vs] : source.entries()) {
    for (const auto& v : vs) {
      if (!target.Contains(k, v)) d.del.emplace_back(k, v);
    }
  }
  return d;
}

Status AuxDelta::ApplyTo(AuxSnapshot* snap, bool forward) const {
  const auto& plus = forward ? add : del;
  const auto& minus = forward ? del : add;
  for (const auto& [k, v] : minus) snap->Remove(k, v);
  for (const auto& [k, v] : plus) snap->Add(k, v);
  return Status::OK();
}

void AuxDelta::EncodeTo(std::string* out) const {
  out->clear();
  auto encode_side = [out](const std::vector<std::pair<std::string, std::string>>& s) {
    PutVarint64(out, s.size());
    for (const auto& [k, v] : s) {
      PutLengthPrefixedSlice(out, Slice(k));
      PutLengthPrefixedSlice(out, Slice(v));
    }
  };
  encode_side(add);
  encode_side(del);
}

Status AuxDelta::DecodeFrom(const Slice& blob, AuxDelta* out) {
  Slice in = blob;
  auto decode_side =
      [&in](std::vector<std::pair<std::string, std::string>>* s) -> Status {
    uint64_t count = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "aux delta count"));
    s->clear();
    s->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      std::string k, v;
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(&in, &k, "aux delta key"));
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(&in, &v, "aux delta value"));
      s->emplace_back(std::move(k), std::move(v));
    }
    return Status::OK();
  };
  HG_RETURN_NOT_OK(decode_side(&out->add));
  HG_RETURN_NOT_OK(decode_side(&out->del));
  if (!in.empty()) return Status::Corruption("aux delta: trailing bytes");
  return Status::OK();
}

AuxSnapshot AuxIntersect(const std::vector<const AuxSnapshot*>& children) {
  AuxSnapshot out;
  if (children.empty()) return out;
  for (const auto& [k, vs] : children[0]->entries()) {
    for (const auto& v : vs) {
      bool in_all = true;
      for (size_t i = 1; i < children.size() && in_all; ++i) {
        in_all = children[i]->Contains(k, v);
      }
      if (in_all) out.Add(k, v);
    }
  }
  return out;
}

}  // namespace hgdb
