#ifndef HISTGRAPH_AUXILIARY_AUX_SNAPSHOT_H_
#define HISTGRAPH_AUXILIARY_AUX_SNAPSHOT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace hgdb {

/// \brief AuxiliarySnapshot (Section 4.7): "a hashtable of string key-value
/// pairs". Keys may map to multiple values (e.g. all data-graph paths
/// matching a label quartet); the element unit for deltas is the (key, value)
/// pair.
class AuxSnapshot {
 public:
  bool Add(const std::string& key, const std::string& value) {
    return map_[key].insert(value).second;
  }
  bool Remove(const std::string& key, const std::string& value);
  bool Contains(const std::string& key, const std::string& value) const;

  /// All values for a key (nullptr if none).
  const std::set<std::string>* Get(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t PairCount() const;
  bool Empty() const { return map_.empty(); }
  const std::map<std::string, std::set<std::string>>& entries() const { return map_; }

  bool Equals(const AuxSnapshot& other) const { return map_ == other.map_; }
  void Clear() { map_.clear(); }

 private:
  std::map<std::string, std::set<std::string>> map_;
};

/// \brief AuxiliaryEvent (Section 4.7): timestamp, an add/delete flag, and a
/// key-value pair. A value change is modeled as delete + add, keeping every
/// aux event invertible (backward application flips the flag).
struct AuxEvent {
  Timestamp time = 0;
  bool add = true;
  std::string key, value;

  bool operator==(const AuxEvent& other) const {
    return time == other.time && add == other.add && key == other.key &&
           value == other.value;
  }
};

/// Applies events with lo < time <= hi to `snap` (backward flips add/delete
/// and processes newest-first).
Status ApplyAuxEvents(const std::vector<AuxEvent>& events, bool forward, Timestamp lo,
                      Timestamp hi, AuxSnapshot* snap);

void EncodeAuxEvents(const std::vector<AuxEvent>& events, std::string* out);
Status DecodeAuxEvents(const Slice& blob, std::vector<AuxEvent>* out);

/// \brief Difference between two auxiliary snapshots; applying it forward to
/// `source` yields `target` (the aux analogue of Delta).
struct AuxDelta {
  std::vector<std::pair<std::string, std::string>> add, del;

  static AuxDelta Between(const AuxSnapshot& target, const AuxSnapshot& source);
  Status ApplyTo(AuxSnapshot* snap, bool forward) const;
  size_t PairCount() const { return add.size() + del.size(); }

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(const Slice& blob, AuxDelta* out);
};

/// The differential function for auxiliary hierarchies used by the pattern
/// index: a pair belongs to the parent iff it belongs to *all* children
/// ("present in all the snapshots below that interior node").
AuxSnapshot AuxIntersect(const std::vector<const AuxSnapshot*>& children);

}  // namespace hgdb

#endif  // HISTGRAPH_AUXILIARY_AUX_SNAPSHOT_H_
