#ifndef HISTGRAPH_AUXILIARY_AUX_INDEX_BASE_H_
#define HISTGRAPH_AUXILIARY_AUX_INDEX_BASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxiliary/aux_snapshot.h"
#include "deltagraph/aux_hook.h"
#include "kvstore/kv_store.h"

namespace hgdb {

/// Query-time auxiliary state: just an AuxSnapshot under reconstruction.
class AuxSnapshotState final : public AuxState {
 public:
  AuxSnapshot snapshot;
};

/// \brief Generic implementation of the DeltaGraph auxiliary hook
/// (Section 4.7's AuxIndex abstract class).
///
/// Subclasses only implement the *semantics*: CreateAuxEvents — "generates an
/// AuxiliaryEvent corresponding to a plain Event, based upon the current
/// Graph and the latest Auxiliary Snapshot" — and optionally a different
/// differential function (AuxDF; the default is intersection). This base
/// class does the rest of what the paper's HistoryManager automates: it
/// mirrors the skeleton's leaves and interior nodes with auxiliary
/// snapshots, persists aux eventlists / aux deltas keyed by skeleton edge
/// id, and replays them along retrieval plans.
class AuxIndexBase : public AuxIndexHook {
 public:
  /// `store` holds the aux blobs under "aux/<name>/..."; it may be the same
  /// store as the main index and must outlive the hook.
  AuxIndexBase(std::string name, KVStore* store)
      : name_(std::move(name)), store_(store) {}

  const std::string& name() const override { return name_; }

  // -- Semantics supplied by subclasses -----------------------------------------
  /// Translates one plain event into auxiliary events (may be none or many).
  virtual std::vector<AuxEvent> CreateAuxEvents(const Event& e,
                                                const Snapshot& graph_after) = 0;

  /// The auxiliary differential function (default: intersection — a pair is
  /// at an interior node iff it is in all children).
  virtual AuxSnapshot AuxDF(const std::vector<const AuxSnapshot*>& children) const {
    return AuxIntersect(children);
  }

  // -- Build-time callbacks (wired by the DeltaGraph) ----------------------------
  Status BuildOnEvent(const Event& e, const Snapshot& graph_after) override;
  Status BuildOnLeaf(int32_t leaf_id, int32_t prev_leaf_id,
                     int32_t eventlist_edge_id) override;
  Status BuildOnParent(int32_t parent_id, const std::vector<int32_t>& children,
                       const std::vector<int32_t>& delta_edge_ids) override;
  Status BuildOnSuperRootEdge(int32_t edge_id, int32_t node_id) override;

  // -- Query-time callbacks -------------------------------------------------------
  std::unique_ptr<AuxState> NewState() const override {
    return std::make_unique<AuxSnapshotState>();
  }
  Status ApplyDeltaEdge(AuxState* state, int32_t edge_id, bool forward) const override;
  Status ApplyEventRange(AuxState* state, int32_t edge_id, bool forward, Timestamp lo,
                         Timestamp hi) const override;
  Status ApplyRecentRange(AuxState* state, bool forward, Timestamp lo,
                          Timestamp hi) const override;

  /// The live auxiliary snapshot (tracks the current graph).
  const AuxSnapshot& current() const { return current_; }

 protected:
  std::string EdgeKey(int32_t edge_id) const {
    return "aux/" + name_ + "/e/" + std::to_string(edge_id);
  }

  std::string name_;
  KVStore* store_;
  AuxSnapshot current_;
  std::vector<AuxEvent> recent_;  ///< Aux events since the last leaf cut.
  std::map<int32_t, AuxSnapshot> pending_;  ///< Un-parented skeleton nodes.
};

}  // namespace hgdb

#endif  // HISTGRAPH_AUXILIARY_AUX_INDEX_BASE_H_
