#ifndef HISTGRAPH_AUXILIARY_PATH_INDEX_H_
#define HISTGRAPH_AUXILIARY_PATH_INDEX_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "auxiliary/aux_index_base.h"
#include "deltagraph/delta_graph.h"

namespace hgdb {

/// \brief The subgraph-pattern-matching auxiliary index of Section 4.7.
///
/// "One simple way to efficiently support such queries is to index all paths
/// of say length 4 in the data graph. This pattern index takes the form of a
/// key-value data structure, where a key is a quartet of labels, and the
/// value is the set of all paths in the data graph over 4 nodes that match
/// it." Node labels are read from the node attribute `label_attr` (fixed at
/// node creation; the index treats labels as immutable, like the paper's
/// randomly assigned labels). Paths are simple (4 distinct nodes), edges are
/// traversed undirected, and each path is stored once in its canonical
/// orientation.
///
/// The differential function is the intersection variant the paper
/// describes: a path lives at an interior node iff it is present in all the
/// snapshots below it — so a path associated with the root is present
/// throughout the history of the network.
class PathIndex final : public AuxIndexBase {
 public:
  PathIndex(KVStore* store, std::string label_attr = "label")
      : AuxIndexBase("path4", store), label_attr_(std::move(label_attr)) {}

  std::vector<AuxEvent> CreateAuxEvents(const Event& e,
                                        const Snapshot& graph_after) override;

  /// Bootstraps the index from a non-empty initial graph (enumerates all of
  /// its 4-node label paths).
  Status BuildOnInitialSnapshot(const Snapshot& g0) override;

  /// Key of a label quartet (canonical orientation), e.g. "a|b|b|c".
  static std::string QuartetKey(const std::vector<std::string>& labels);

  /// Value encoding of a node path, e.g. "3,17,4,9".
  static std::string PathValue(const std::vector<NodeId>& nodes);
  static std::vector<NodeId> ParsePathValue(const std::string& value);

 private:
  const std::string* LabelOf(NodeId n, const Snapshot& g) const;
  void EnumeratePathsThroughEdge(NodeId u, NodeId v, const Snapshot& g,
                                 std::vector<std::vector<NodeId>>* out) const;

  // Undirected neighbor multiset (multiplicity counts parallel edges) so
  // deleting one of two parallel edges does not kill the paths.
  std::unordered_map<NodeId, std::unordered_map<NodeId, int>> adj_;
  std::string label_attr_;
};

/// \brief A small node-labeled pattern graph for historical matching.
struct PatternGraph {
  std::vector<std::string> labels;                    ///< Per pattern-node.
  std::vector<std::pair<int, int>> edges;             ///< Pattern-node indices.
};

/// One match of a pattern: the data-graph nodes bound to the pattern nodes.
using PatternMatch = std::vector<NodeId>;

/// \brief Finds all matches of `pattern` over the entire history of the
/// graph (the paper's example query), by reconstructing the auxiliary path
/// snapshot at every leaf boundary, joining candidate paths from the index,
/// and verifying remaining pattern edges against the graph snapshot.
///
/// Returns the total number of (boundary, match) occurrences — the
/// "matches over the entire history" figure — and fills `distinct_matches`
/// if non-null.
Result<size_t> FindMatchesOverHistory(DeltaGraph* dg, const PathIndex& index,
                                      const PatternGraph& pattern,
                                      std::set<PatternMatch>* distinct_matches);

/// Test oracle: all canonical 4-node label paths of a snapshot.
AuxSnapshot EnumerateAllLabelPaths(const Snapshot& g, const std::string& label_attr);

}  // namespace hgdb

#endif  // HISTGRAPH_AUXILIARY_PATH_INDEX_H_
