#include "auxiliary/path_index.h"

#include <algorithm>

namespace hgdb {

namespace {

std::vector<NodeId> Canonical(std::vector<NodeId> path) {
  std::vector<NodeId> rev(path.rbegin(), path.rend());
  return rev < path ? rev : path;
}

}  // namespace

std::string PathIndex::QuartetKey(const std::vector<std::string>& labels) {
  std::string key;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += '|';
    key += labels[i];
  }
  return key;
}

std::string PathIndex::PathValue(const std::vector<NodeId>& nodes) {
  std::string v;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) v += ',';
    v += std::to_string(nodes[i]);
  }
  return v;
}

std::vector<NodeId> PathIndex::ParsePathValue(const std::string& value) {
  std::vector<NodeId> out;
  size_t pos = 0;
  while (pos < value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    out.push_back(std::strtoull(value.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

const std::string* PathIndex::LabelOf(NodeId n, const Snapshot& g) const {
  return g.GetNodeAttr(n, label_attr_);
}

void PathIndex::EnumeratePathsThroughEdge(
    NodeId u, NodeId v, const Snapshot& g,
    std::vector<std::vector<NodeId>>* out) const {
  (void)g;
  auto neighbors = [this](NodeId n) -> const std::unordered_map<NodeId, int>* {
    auto it = adj_.find(n);
    return it == adj_.end() ? nullptr : &it->second;
  };
  auto distinct = [](NodeId a, NodeId b, NodeId c, NodeId d) {
    return a != b && a != c && a != d && b != c && b != d && c != d;
  };
  const auto* nu = neighbors(u);
  const auto* nv = neighbors(v);
  if (nu == nullptr || nv == nullptr) return;

  // Edge in the middle: x - u - v - y.
  for (const auto& [x, cx] : *nu) {
    for (const auto& [y, cy] : *nv) {
      if (distinct(x, u, v, y)) out->push_back({x, u, v, y});
    }
  }
  // Edge leading: u - v - w - x and (reversed role) v - u - w - x.
  for (const auto& [w, cw] : *nv) {
    if (w == u) continue;
    const auto* nw = neighbors(w);
    if (nw == nullptr) continue;
    for (const auto& [x, cx] : *nw) {
      if (distinct(u, v, w, x)) out->push_back({u, v, w, x});
    }
  }
  for (const auto& [w, cw] : *nu) {
    if (w == v) continue;
    const auto* nw = neighbors(w);
    if (nw == nullptr) continue;
    for (const auto& [x, cx] : *nw) {
      if (distinct(v, u, w, x)) out->push_back({v, u, w, x});
    }
  }
}

Status PathIndex::BuildOnInitialSnapshot(const Snapshot& g0) {
  adj_.clear();
  for (const auto& [id, rec] : g0.edges()) {
    if (rec.src == rec.dst) continue;
    adj_[rec.src][rec.dst] += 1;
    adj_[rec.dst][rec.src] += 1;
  }
  current_ = EnumerateAllLabelPaths(g0, label_attr_);
  recent_.clear();
  return Status::OK();
}

std::vector<AuxEvent> PathIndex::CreateAuxEvents(const Event& e,
                                                 const Snapshot& graph_after) {
  std::vector<AuxEvent> out;
  switch (e.type) {
    case EventType::kNodeAttr:
      // Labels are assigned at node creation and treated as immutable (the
      // paper assigns each node a random label once).
      return out;
    case EventType::kAddEdge: {
      const bool new_pair = adj_[e.src][e.dst] == 0 && e.src != e.dst;
      adj_[e.src][e.dst] += 1;
      adj_[e.dst][e.src] += 1;
      if (!new_pair) return out;  // A parallel edge creates no new node path.
      std::vector<std::vector<NodeId>> paths;
      EnumeratePathsThroughEdge(e.src, e.dst, graph_after, &paths);
      std::set<std::pair<std::string, std::string>> emitted;
      for (auto& p : paths) {
        std::vector<NodeId> canon = Canonical(p);
        std::vector<std::string> labels;
        bool ok = true;
        for (NodeId n : canon) {
          const std::string* l = LabelOf(n, graph_after);
          if (l == nullptr) {
            ok = false;
            break;
          }
          labels.push_back(*l);
        }
        if (!ok) continue;
        auto kv = std::make_pair(QuartetKey(labels), PathValue(canon));
        if (!emitted.insert(kv).second) continue;
        out.push_back(AuxEvent{e.time, true, kv.first, kv.second});
      }
      return out;
    }
    case EventType::kDeleteEdge: {
      auto uit = adj_.find(e.src);
      if (uit == adj_.end()) return out;
      auto cnt = uit->second.find(e.dst);
      if (cnt == uit->second.end()) return out;
      const bool last_pair = cnt->second == 1;
      if (last_pair) {
        // Enumerate while the pair is still adjacent, then drop it.
        std::vector<std::vector<NodeId>> paths;
        EnumeratePathsThroughEdge(e.src, e.dst, graph_after, &paths);
        std::set<std::pair<std::string, std::string>> emitted;
        for (auto& p : paths) {
          std::vector<NodeId> canon = Canonical(p);
          std::vector<std::string> labels;
          bool ok = true;
          for (NodeId n : canon) {
            const std::string* l = LabelOf(n, graph_after);
            if (l == nullptr) {
              // The node may already have lost its attributes (deletion
              // protocol removes attrs first); fall back to any label the
              // index saw when the path was created — conservatively skip.
              ok = false;
              break;
            }
            labels.push_back(*l);
          }
          if (!ok) continue;
          auto kv = std::make_pair(QuartetKey(labels), PathValue(canon));
          if (!emitted.insert(kv).second) continue;
          out.push_back(AuxEvent{e.time, false, kv.first, kv.second});
        }
      }
      adj_[e.src][e.dst] -= 1;
      adj_[e.dst][e.src] -= 1;
      if (adj_[e.src][e.dst] == 0) {
        adj_[e.src].erase(e.dst);
        adj_[e.dst].erase(e.src);
      }
      return out;
    }
    default:
      return out;
  }
}

// ---------------------------------------------------------------------------
// Pattern matching over history
// ---------------------------------------------------------------------------

namespace {

/// Finds a simple 4-node path in the pattern (pattern-node indices), or empty.
std::vector<int> FindPatternPath(const PatternGraph& pattern) {
  const int n = static_cast<int>(pattern.labels.size());
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : pattern.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> path;
  std::vector<bool> used(n, false);
  std::function<bool(int)> dfs = [&](int v) -> bool {
    path.push_back(v);
    used[v] = true;
    if (path.size() == 4) return true;
    for (int w : adj[v]) {
      if (!used[w] && dfs(w)) return true;
    }
    path.pop_back();
    used[v] = false;
    return false;
  };
  for (int v = 0; v < n; ++v) {
    if (dfs(v)) return path;
  }
  return {};
}

}  // namespace

Result<size_t> FindMatchesOverHistory(DeltaGraph* dg, const PathIndex& index,
                                      const PatternGraph& pattern,
                                      std::set<PatternMatch>* distinct_matches) {
  if (pattern.labels.size() < 4) {
    return Status::NotSupported(
        "pattern must contain a path over 4 nodes (paper's decomposition unit)");
  }
  const std::vector<int> ppath = FindPatternPath(pattern);
  if (ppath.size() != 4) {
    return Status::NotSupported("pattern has no simple 4-node path");
  }
  std::vector<std::string> path_labels;
  for (int v : ppath) path_labels.push_back(pattern.labels[v]);
  std::vector<std::string> rev_labels(path_labels.rbegin(), path_labels.rend());
  const std::string key_fwd = PathIndex::QuartetKey(path_labels);
  const std::string key_rev = PathIndex::QuartetKey(rev_labels);

  // Pattern edges not covered by the chosen path must be verified against
  // the graph snapshot.
  std::vector<std::pair<int, int>> extra_edges;
  auto on_path = [&](int a, int b) {
    for (size_t i = 0; i + 1 < ppath.size(); ++i) {
      if ((ppath[i] == a && ppath[i + 1] == b) || (ppath[i] == b && ppath[i + 1] == a)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [a, b] : pattern.edges) {
    if (!on_path(a, b)) extra_edges.emplace_back(a, b);
  }
  // Pattern-node index -> position in ppath (all four must be on the path
  // for this decomposition-based matcher).
  std::vector<int> pos_of(pattern.labels.size(), -1);
  for (size_t i = 0; i < ppath.size(); ++i) pos_of[ppath[i]] = static_cast<int>(i);
  if (pattern.labels.size() > 4) {
    return Status::NotSupported("patterns over more than 4 nodes are not supported");
  }

  size_t total = 0;
  const Skeleton& skel = dg->skeleton();
  for (int32_t leaf : skel.leaves()) {
    const Timestamp t = skel.node(leaf).boundary_time;
    auto state = dg->GetAuxState(index, t);
    if (!state.ok()) return state.status();
    const auto& aux = static_cast<const AuxSnapshotState&>(*state.value()).snapshot;

    // Candidate data paths from the index (both orientations).
    std::vector<std::pair<std::vector<NodeId>, bool>> candidates;  // (path, reversed)
    if (const auto* vals = aux.Get(key_fwd)) {
      for (const auto& v : *vals) candidates.emplace_back(PathIndex::ParsePathValue(v), false);
    }
    if (key_rev != key_fwd) {
      if (const auto* vals = aux.Get(key_rev)) {
        for (const auto& v : *vals) {
          auto nodes = PathIndex::ParsePathValue(v);
          std::reverse(nodes.begin(), nodes.end());
          candidates.emplace_back(std::move(nodes), true);
        }
      }
    } else if (const auto* vals = aux.Get(key_fwd)) {
      // Palindromic label quartets match in both orientations.
      for (const auto& v : *vals) {
        auto nodes = PathIndex::ParsePathValue(v);
        std::reverse(nodes.begin(), nodes.end());
        candidates.emplace_back(std::move(nodes), true);
      }
    }

    // Verify extra edges against the structure snapshot (fetched lazily).
    Snapshot snap;
    bool have_snap = false;
    std::set<std::pair<NodeId, NodeId>> adj_pairs;
    if (!extra_edges.empty()) {
      auto s = dg->GetSnapshot(t, kCompStruct);
      if (!s.ok()) return s.status();
      snap = std::move(s).value();
      have_snap = true;
      for (const auto& [id, rec] : snap.edges()) {
        adj_pairs.emplace(std::min(rec.src, rec.dst), std::max(rec.src, rec.dst));
      }
    }
    (void)have_snap;

    std::set<PatternMatch> matches_here;
    for (const auto& [nodes, reversed] : candidates) {
      if (nodes.size() != 4) continue;
      // Bind pattern nodes via their path positions.
      PatternMatch binding(pattern.labels.size(), kInvalidNodeId);
      bool ok = true;
      for (size_t pv = 0; pv < pattern.labels.size(); ++pv) {
        if (pos_of[pv] < 0) {
          ok = false;
          break;
        }
        binding[pv] = nodes[pos_of[pv]];
      }
      if (!ok) continue;
      for (const auto& [a, b] : extra_edges) {
        const NodeId x = binding[a], y = binding[b];
        if (!adj_pairs.contains({std::min(x, y), std::max(x, y)})) {
          ok = false;
          break;
        }
      }
      if (ok) matches_here.insert(binding);
    }
    total += matches_here.size();
    if (distinct_matches != nullptr) {
      distinct_matches->insert(matches_here.begin(), matches_here.end());
    }
  }
  return total;
}

AuxSnapshot EnumerateAllLabelPaths(const Snapshot& g, const std::string& label_attr) {
  AuxSnapshot out;
  std::unordered_map<NodeId, std::set<NodeId>> adj;
  for (const auto& [id, rec] : g.edges()) {
    if (rec.src == rec.dst) continue;
    adj[rec.src].insert(rec.dst);
    adj[rec.dst].insert(rec.src);
  }
  for (const auto& [a, na] : adj) {
    for (NodeId b : na) {
      for (NodeId c : adj[b]) {
        if (c == a || c == b) continue;
        for (NodeId d : adj[c]) {
          if (d == a || d == b || d == c) continue;
          std::vector<NodeId> path = {a, b, c, d};
          std::vector<NodeId> canon = Canonical(path);
          std::vector<std::string> labels;
          bool ok = true;
          for (NodeId n : canon) {
            const std::string* l = g.GetNodeAttr(n, label_attr);
            if (l == nullptr) {
              ok = false;
              break;
            }
            labels.push_back(*l);
          }
          if (!ok) continue;
          out.Add(PathIndex::QuartetKey(labels), PathIndex::PathValue(canon));
        }
      }
    }
  }
  return out;
}

}  // namespace hgdb
