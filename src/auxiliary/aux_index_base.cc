#include "auxiliary/aux_index_base.h"

namespace hgdb {

Status AuxIndexBase::BuildOnEvent(const Event& e, const Snapshot& graph_after) {
  std::vector<AuxEvent> aux_events = CreateAuxEvents(e, graph_after);
  for (auto& ae : aux_events) {
    if (ae.add) {
      current_.Add(ae.key, ae.value);
    } else {
      current_.Remove(ae.key, ae.value);
    }
    recent_.push_back(std::move(ae));
  }
  return Status::OK();
}

Status AuxIndexBase::BuildOnLeaf(int32_t leaf_id, int32_t prev_leaf_id,
                                 int32_t eventlist_edge_id) {
  (void)prev_leaf_id;
  pending_[leaf_id] = current_;
  if (eventlist_edge_id >= 0) {
    std::string blob;
    EncodeAuxEvents(recent_, &blob);
    HG_RETURN_NOT_OK(store_->Put(EdgeKey(eventlist_edge_id), blob));
  }
  recent_.clear();
  return Status::OK();
}

Status AuxIndexBase::BuildOnParent(int32_t parent_id,
                                   const std::vector<int32_t>& children,
                                   const std::vector<int32_t>& delta_edge_ids) {
  std::vector<const AuxSnapshot*> child_snaps;
  child_snaps.reserve(children.size());
  for (int32_t c : children) {
    auto it = pending_.find(c);
    if (it == pending_.end()) {
      return Status::Internal("aux index: missing pending snapshot for node " +
                              std::to_string(c));
    }
    child_snaps.push_back(&it->second);
  }
  AuxSnapshot parent = AuxDF(child_snaps);
  for (size_t i = 0; i < children.size(); ++i) {
    AuxDelta d = AuxDelta::Between(pending_[children[i]], parent);
    std::string blob;
    d.EncodeTo(&blob);
    HG_RETURN_NOT_OK(store_->Put(EdgeKey(delta_edge_ids[i]), blob));
  }
  for (int32_t c : children) pending_.erase(c);
  pending_[parent_id] = std::move(parent);
  return Status::OK();
}

Status AuxIndexBase::BuildOnSuperRootEdge(int32_t edge_id, int32_t node_id) {
  auto it = pending_.find(node_id);
  if (it == pending_.end()) {
    return Status::Internal("aux index: missing pending snapshot for root " +
                            std::to_string(node_id));
  }
  static const AuxSnapshot kEmpty;
  AuxDelta d = AuxDelta::Between(it->second, kEmpty);
  std::string blob;
  d.EncodeTo(&blob);
  HG_RETURN_NOT_OK(store_->Put(EdgeKey(edge_id), blob));
  pending_.erase(it);
  return Status::OK();
}

Status AuxIndexBase::ApplyDeltaEdge(AuxState* state, int32_t edge_id,
                                    bool forward) const {
  auto* s = static_cast<AuxSnapshotState*>(state);
  std::string blob;
  HG_RETURN_NOT_OK(store_->Get(EdgeKey(edge_id), &blob));
  AuxDelta d;
  HG_RETURN_NOT_OK(AuxDelta::DecodeFrom(blob, &d));
  return d.ApplyTo(&s->snapshot, forward);
}

Status AuxIndexBase::ApplyEventRange(AuxState* state, int32_t edge_id, bool forward,
                                     Timestamp lo, Timestamp hi) const {
  auto* s = static_cast<AuxSnapshotState*>(state);
  std::string blob;
  Status st = store_->Get(EdgeKey(edge_id), &blob);
  if (st.IsNotFound()) return Status::OK();  // No aux events on this edge.
  HG_RETURN_NOT_OK(st);
  std::vector<AuxEvent> events;
  HG_RETURN_NOT_OK(DecodeAuxEvents(blob, &events));
  return ApplyAuxEvents(events, forward, lo, hi, &s->snapshot);
}

Status AuxIndexBase::ApplyRecentRange(AuxState* state, bool forward, Timestamp lo,
                                      Timestamp hi) const {
  auto* s = static_cast<AuxSnapshotState*>(state);
  return ApplyAuxEvents(recent_, forward, lo, hi, &s->snapshot);
}

}  // namespace hgdb
