#include "analysis/models.h"

#include <cmath>

namespace hgdb {

double CurrentGraphSize(const GraphDynamics& dyn) {
  return dyn.initial_size + dyn.num_events * (dyn.delta_star - dyn.rho_star);
}

double BalancedDeltaElements(const GraphDynamics& dyn, size_t leaf_size, int arity,
                             int level) {
  // Level 2 (children are leaves): (1/2)(k−1)(δ*+ρ*)L; each level up scales
  // the inter-child distance by k.
  const double base = 0.5 * (arity - 1) * (dyn.delta_star + dyn.rho_star) *
                      static_cast<double>(leaf_size);
  return base * std::pow(static_cast<double>(arity), level - 2);
}

double BalancedLevelElements(const GraphDynamics& dyn, int arity) {
  return 0.5 * (arity - 1) * (dyn.delta_star + dyn.rho_star) * dyn.num_events;
}

double BalancedTotalDeltaElements(const GraphDynamics& dyn, size_t leaf_size,
                                  int arity) {
  const double leaves = dyn.num_events / static_cast<double>(leaf_size) + 1.0;
  const double levels = std::log(leaves) / std::log(static_cast<double>(arity));
  return (levels - 1.0) * BalancedLevelElements(dyn, arity);
}

double BalancedRootSize(const GraphDynamics& dyn) {
  return dyn.initial_size + 0.5 * (dyn.delta_star - dyn.rho_star) * dyn.num_events;
}

double BalancedPathElements(const GraphDynamics& dyn) {
  return 0.5 * (dyn.delta_star + dyn.rho_star) * dyn.num_events;
}

double IntersectionRootSize(const GraphDynamics& dyn) {
  const double g0 = dyn.initial_size;
  if (g0 <= 0) return 0.0;
  if (dyn.rho_star == 0.0) return g0;  // Growing-only: root is exactly G0.
  if (std::abs(dyn.delta_star - dyn.rho_star) < 1e-12) {
    // Constant-size graph: |G0| e^(−|E|δ*/|G0|).
    return g0 * std::exp(-dyn.num_events * dyn.delta_star / g0);
  }
  // General continuous-deletion survival: the graph grows as
  // S(e) = |G0| + e(δ*−ρ*); a uniformly random deletion hits a G0 survivor
  // with probability (survivors)/S, giving
  //   |root| = |G0| (S_E / S_0)^(−ρ*/(δ*−ρ*)).
  // For δ* = 2ρ* the exponent is −1, recovering |G0|²/(|G0|+ρ*|E|).
  const double s_end = CurrentGraphSize(dyn);
  const double exponent = -dyn.rho_star / (dyn.delta_star - dyn.rho_star);
  return g0 * std::pow(s_end / g0, exponent);
}

double IntersectionPathElements(const GraphDynamics& dyn, double events_until_leaf) {
  GraphDynamics at_leaf = dyn;
  at_leaf.num_events = events_until_leaf;
  return CurrentGraphSize(at_leaf);
}

double IntervalTreeElements(const GraphDynamics& dyn) {
  // One interval per inserted element.
  return dyn.delta_star * dyn.num_events + dyn.initial_size;
}

double SegmentTreeElements(const GraphDynamics& dyn) {
  const double n = IntervalTreeElements(dyn);
  return n * std::log2(std::max(2.0, n));
}

EventDensity FitEventDensity(const std::vector<size_t>& bucket_counts) {
  EventDensity out;
  if (bucket_counts.empty()) return out;
  double total = 0;
  for (size_t c : bucket_counts) total += static_cast<double>(c);
  if (total <= 0) return out;
  double running = 0;
  out.cumulative.reserve(bucket_counts.size());
  for (size_t c : bucket_counts) {
    running += static_cast<double>(c);
    out.cumulative.push_back(running / total);
  }
  // Least-squares fit of log g(t) = alpha log t + c over interior points
  // (skipping empty prefixes).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < out.cumulative.size(); ++i) {
    const double t = static_cast<double>(i + 1) / out.cumulative.size();
    const double g = out.cumulative[i];
    if (g <= 0) continue;
    const double x = std::log(t), y = std::log(g);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n >= 2 && sxx * n - sx * sx > 1e-12) {
    out.growth_exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  }
  return out;
}

double RecommendedMixedRatio(const EventDensity& density) {
  // Linear growth -> 0.5 (Balanced). Super-linear growth concentrates events
  // near the present; shifting r toward 1 moves delta mass toward newer
  // snapshots so latencies stay uniform over *time* rather than over events.
  const double alpha = std::max(1.0, density.growth_exponent);
  return std::min(0.95, 0.5 + 0.2 * (alpha - 1.0));
}

GraphDynamics EstimateDynamics(size_t inserts, size_t deletes, size_t total_events,
                               double initial_size) {
  GraphDynamics dyn;
  dyn.num_events = static_cast<double>(total_events);
  dyn.initial_size = initial_size;
  if (total_events > 0) {
    dyn.delta_star = static_cast<double>(inserts) / total_events;
    dyn.rho_star = static_cast<double>(deletes) / total_events;
  }
  return dyn;
}

}  // namespace hgdb
