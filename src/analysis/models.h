#ifndef HISTGRAPH_ANALYSIS_MODELS_H_
#define HISTGRAPH_ANALYSIS_MODELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hgdb {

/// \brief The constant-rate model of graph dynamics (Section 5.1).
///
/// A δ* fraction of events insert an element, a ρ* fraction delete one
/// (δ* + ρ* <= 1; the remainder are transient events). The graph size after
/// |E| events is |G0| + |E|(δ* − ρ*).
struct GraphDynamics {
  double delta_star = 0.5;  ///< Insert fraction.
  double rho_star = 0.0;    ///< Delete fraction.
  double initial_size = 0;  ///< |G0| in elements.
  double num_events = 0;    ///< |E|.
};

/// |G_{|E|}| = |G0| + |E|(δ* − ρ*).
double CurrentGraphSize(const GraphDynamics& dyn);

// ---------------------------------------------------------------------------
// Balanced differential function (Section 5.3)
// ---------------------------------------------------------------------------

/// |Δ(p, c_i)| for an interior node at `level` (leaves are level 1, their
/// parents level 2): (1/2)(k−1) k^(level−2) (δ*+ρ*) L, identical for every
/// child of the node.
double BalancedDeltaElements(const GraphDynamics& dyn, size_t leaf_size, int arity,
                             int level);

/// Total delta elements at one level — the surprising result that every
/// level costs the same: (1/2)(k−1)(δ*+ρ*)|E|.
double BalancedLevelElements(const GraphDynamics& dyn, int arity);

/// Total elements across all interior deltas (excluding the super-root
/// edge): (log_k N − 1)/2 · (k−1)(δ*+ρ*)|E| with N = |E|/L + 1 leaves.
double BalancedTotalDeltaElements(const GraphDynamics& dyn, size_t leaf_size,
                                  int arity);

/// Size of the root snapshot: |G0| + (1/2)(δ* − ρ*)|E| (independent of k).
double BalancedRootSize(const GraphDynamics& dyn);

/// Weight (elements fetched) of the shortest root-to-leaf path:
/// (1/2)(δ*+ρ*)|E| — the same for every leaf, hence the Balanced function's
/// uniform retrieval latencies.
double BalancedPathElements(const GraphDynamics& dyn);

// ---------------------------------------------------------------------------
// Intersection differential function (Section 5.3)
// ---------------------------------------------------------------------------

/// Size of the root (the elements of G0 that survive the whole trace).
/// Closed forms from the paper:
///   ρ* = 0      : |G0| (growing-only);
///   δ* = ρ*     : |G0| e^(−|E|δ*/|G0|);
///   δ* = 2ρ*    : |G0|² / (|G0| + ρ*|E|);
/// and the general continuous-deletion solution
///   |G0| · (S_E/S_0)^(−ρ*/(δ*−ρ*)) for δ* ≠ ρ*,
/// which reduces to the paper's two non-trivial special cases.
double IntersectionRootSize(const GraphDynamics& dyn);

/// With Intersection, the shortest super-root-to-leaf weight equals the leaf
/// snapshot's own size (each interior node is a subset of its children), so
/// retrieval cost is skewed toward newer (larger) snapshots.
double IntersectionPathElements(const GraphDynamics& dyn, double events_until_leaf);

// ---------------------------------------------------------------------------
// Qualitative space comparisons (Section 5.4)
// ---------------------------------------------------------------------------

/// Interval-tree space: one record per element interval, ~|E|/2 .. |E|.
double IntervalTreeElements(const GraphDynamics& dyn);

/// Segment-tree space: O(|E| log |E|) stored entries.
double SegmentTreeElements(const GraphDynamics& dyn);

/// Estimates the empirical (δ*, ρ*) of an event trace: pass counts of insert
/// and delete events.
GraphDynamics EstimateDynamics(size_t inserts, size_t deletes, size_t total_events,
                               double initial_size);

// ---------------------------------------------------------------------------
// Event density over time — g(t) (Section 5.1)
// ---------------------------------------------------------------------------

/// \brief Empirical event density: g(t) = number of events in [0, t],
/// sampled over uniform buckets. "For most real-world networks, we expect
/// g(t) to be a super-linear function of t"; the Mixed function's r1, r2
/// should then exceed 0.5 for uniform retrieval latencies over *time*
/// (Section 5.4).
struct EventDensity {
  std::vector<double> cumulative;  ///< g at each bucket boundary (fractions).
  double growth_exponent = 1.0;    ///< Fitted alpha in g(t) ~ t^alpha.

  bool IsSuperLinear() const { return growth_exponent > 1.05; }
};

/// Fits the density from per-bucket event counts (chronological).
EventDensity FitEventDensity(const std::vector<size_t>& bucket_counts);

/// Recommends Mixed-function parameters for uniform query latency over time
/// given the density: 0.5 for linear g(t), larger for super-linear.
double RecommendedMixedRatio(const EventDensity& density);

}  // namespace hgdb

#endif  // HISTGRAPH_ANALYSIS_MODELS_H_
