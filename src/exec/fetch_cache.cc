#include "exec/fetch_cache.h"

#include "deltagraph/delta_graph.h"

namespace hgdb {

Result<std::shared_ptr<const Delta>> ExecFetchCache::GetDelta(const DeltaGraph& dg,
                                                              int32_t edge,
                                                              unsigned components) {
  const uint64_t key = Key(edge, components);
  {
    std::shared_lock lock(mu_);
    auto it = deltas_.find(key);
    if (it != deltas_.end()) return it->second;
  }
  const SkeletonEdge& e = dg.skeleton().edge(edge);
  auto d = dg.delta_store().GetDeltaShared(e.delta_id, components, e.sizes);
  if (!d.ok()) return d.status();
  std::unique_lock lock(mu_);
  auto [it, inserted] = deltas_.emplace(key, std::move(d).value());
  (void)inserted;  // A racing decode already landed: keep the first, same data.
  return it->second;
}

Result<std::shared_ptr<const EventList>> ExecFetchCache::GetEventList(
    const DeltaGraph& dg, int32_t edge, unsigned components) {
  const uint64_t key = Key(edge, components);
  {
    std::shared_lock lock(mu_);
    auto it = events_.find(key);
    if (it != events_.end()) return it->second;
  }
  const SkeletonEdge& e = dg.skeleton().edge(edge);
  auto el = dg.delta_store().GetEventListShared(e.delta_id, components, e.sizes);
  if (!el.ok()) return el.status();
  std::unique_lock lock(mu_);
  auto [it, inserted] = events_.emplace(key, std::move(el).value());
  (void)inserted;
  return it->second;
}

}  // namespace hgdb
