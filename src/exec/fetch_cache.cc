#include "exec/fetch_cache.h"

#include "deltagraph/delta_graph.h"

namespace hgdb {

template <typename T>
ExecFetchCache::FetchFuture<T> ExecFetchCache::ClaimOrGet(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key,
    std::promise<Result<std::shared_ptr<const T>>>* promise, bool* claimed) {
  // Fast path: slot already claimed (shared lock, one hash probe).
  {
    std::shared_lock lock(mu_);
    auto it = map->find(key);
    if (it != map->end()) {
      *claimed = false;
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto it = map->find(key);
  if (it != map->end()) {  // Raced claim: wait on the winner's future.
    *claimed = false;
    return it->second;
  }
  *claimed = true;
  auto future = promise->get_future().share();
  map->emplace(key, future);
  return future;
}

template <typename T>
void ExecFetchCache::ReleaseFailedSlot(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key) {
  // A failed fetch must not pin its error for the cache's lifetime: current
  // waiters see the error (their future is already fulfilled), but dropping
  // the slot lets the next caller re-claim and retry — matching the old
  // insert-only-on-success behavior across a long-lived session cache.
  std::unique_lock lock(mu_);
  map->erase(key);
}

// The single-flight protocol, shared by the worker and prefetch paths: claim
// the slot and (if won) fetch outside any lock, fulfil the future, drop the
// slot on failure. A caller that lost the claim either blocks on the winner's
// future (workers need the object) or skips (prefetch jobs must not stall
// their I/O shard behind a busy slot). Returns null only on a lost claim with
// wait_if_claimed=false.
template <typename T, typename FetchFn>
Result<std::shared_ptr<const T>> ExecFetchCache::FetchSingleFlight(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key,
    bool wait_if_claimed, FetchFn fetch) {
  std::promise<Result<std::shared_ptr<const T>>> promise;
  bool claimed = false;
  auto future = ClaimOrGet(map, key, &promise, &claimed);
  if (claimed) {
    Result<std::shared_ptr<const T>> r = fetch();
    promise.set_value(r);
    if (!r.ok()) ReleaseFailedSlot(map, key);
    return r;
  }
  if (!wait_if_claimed) return std::shared_ptr<const T>();
  return future.get();
}

Result<std::shared_ptr<const Delta>> ExecFetchCache::GetDelta(const DeltaGraph& dg,
                                                              int32_t edge,
                                                              unsigned components) {
  const SkeletonEdge& e = dg.skeleton().edge(edge);
  return FetchSingleFlight(&deltas_, Key(edge, components), /*wait_if_claimed=*/true,
                           [&] {
                             return dg.delta_store().GetDeltaShared(
                                 e.delta_id, components, e.sizes);
                           });
}

Result<std::shared_ptr<const EventList>> ExecFetchCache::GetEventList(
    const DeltaGraph& dg, int32_t edge, unsigned components) {
  const SkeletonEdge& e = dg.skeleton().edge(edge);
  return FetchSingleFlight(&events_, Key(edge, components), /*wait_if_claimed=*/true,
                           [&] {
                             return dg.delta_store().GetEventListShared(
                                 e.delta_id, components, e.sizes);
                           });
}

void ExecFetchCache::Prefetch(const DeltaGraph& dg, int32_t edge, bool is_eventlist,
                              unsigned components) {
  const uint64_t key = Key(edge, components);
  const SkeletonEdge& e = dg.skeleton().edge(edge);
  if (is_eventlist) {
    (void)FetchSingleFlight(&events_, key, /*wait_if_claimed=*/false, [&] {
      return dg.delta_store().GetEventListShared(e.delta_id, components, e.sizes);
    });
  } else {
    (void)FetchSingleFlight(&deltas_, key, /*wait_if_claimed=*/false, [&] {
      return dg.delta_store().GetDeltaShared(e.delta_id, components, e.sizes);
    });
  }
  std::lock_guard<std::mutex> lock(prefetch_mu_);
  if (--prefetches_in_flight_ == 0) prefetch_cv_.notify_all();
}

void ExecFetchCache::BeginPrefetch() {
  std::lock_guard<std::mutex> lock(prefetch_mu_);
  ++prefetches_in_flight_;
}

void ExecFetchCache::WaitPrefetchesIdle() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_cv_.wait(lock, [this] { return prefetches_in_flight_ == 0; });
}

}  // namespace hgdb
