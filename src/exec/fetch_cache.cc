#include "exec/fetch_cache.h"

#include <chrono>

#include "deltagraph/delta_graph.h"
#include "exec/task_pool.h"
#include "obs/metrics.h"
#include "obs/stages.h"

namespace hgdb {

namespace {

obs::Counter& DemandFetches() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.fetches_demand");
  return *c;
}
obs::Counter& CoveredFetches() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.fetches_covered");
  return *c;
}
obs::Counter& PrefetchesIssued() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.prefetch_issued");
  return *c;
}
obs::Counter& Drains() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.drains");
  return *c;
}
obs::Histogram& DrainWidth() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("exec.drain_width");
  return *h;
}

// Books one demand fetch's cost onto the trace tallies.
void TallyDemandRead(const obs::TraceCtx& tc, const DeltaStore::ReadStats& rs) {
  if (!tc) return;
  if (rs.cache_hit) {
    tc.trace->lru_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    tc.trace->lru_misses.fetch_add(1, std::memory_order_relaxed);
    tc.trace->kv_reads.fetch_add(rs.kv_keys, std::memory_order_relaxed);
    tc.trace->bytes_read.fetch_add(rs.bytes, std::memory_order_relaxed);
    tc.trace->bytes_decoded.fetch_add(rs.bytes, std::memory_order_relaxed);
  }
}

// Blocks on `future`, helping drain the calling thread's own TaskPool while
// it waits. With decode offload, a slot's fulfilment can sit in the compute
// pool's queue *behind* this very thread; a plain future.get() would park
// the worker on work only it can start. The timed wait covers the window
// where the fulfilling task is already running on another thread.
template <typename FutureT>
auto WaitHelping(const FutureT& future) {
  TaskPool* helper = TaskPool::Current();
  if (helper != nullptr) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!helper->RunOne()) {
        future.wait_for(std::chrono::microseconds(100));
      }
    }
  }
  return future.get();
}

}  // namespace

template <typename T>
ExecFetchCache::FetchFuture<T> ExecFetchCache::ClaimOrGet(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key,
    std::promise<Result<std::shared_ptr<const T>>>* promise, bool* claimed) {
  // Fast path: slot already claimed (shared lock, one hash probe).
  {
    std::shared_lock lock(mu_);
    auto it = map->find(key);
    if (it != map->end()) {
      *claimed = false;
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto it = map->find(key);
  if (it != map->end()) {  // Raced claim: wait on the winner's future.
    *claimed = false;
    return it->second;
  }
  *claimed = true;
  auto future = promise->get_future().share();
  map->emplace(key, future);
  return future;
}

template <typename T>
void ExecFetchCache::ReleaseFailedSlot(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key) {
  // A failed fetch must not pin its error for the cache's lifetime: current
  // waiters see the error (their future is already fulfilled), but dropping
  // the slot lets the next caller re-claim and retry — matching the old
  // insert-only-on-success behavior across a long-lived session cache.
  std::unique_lock lock(mu_);
  map->erase(key);
}

// The single-flight protocol, shared by the worker and prefetch paths: claim
// the slot and (if won) fetch outside any lock, fulfil the future, drop the
// slot on failure. A caller that lost the claim either blocks on the winner's
// future (workers need the object) or skips (prefetch jobs must not stall
// their I/O shard behind a busy slot). Returns null only on a lost claim with
// wait_if_claimed=false.
template <typename T, typename FetchFn>
Result<std::shared_ptr<const T>> ExecFetchCache::FetchSingleFlight(
    std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key,
    bool wait_if_claimed, FetchFn fetch) {
  std::promise<Result<std::shared_ptr<const T>>> promise;
  bool claimed = false;
  auto future = ClaimOrGet(map, key, &promise, &claimed);
  if (claimed) {
    Result<std::shared_ptr<const T>> r = fetch();
    promise.set_value(r);
    if (!r.ok()) ReleaseFailedSlot(map, key);
    return r;
  }
  if (!wait_if_claimed) return std::shared_ptr<const T>();
  return WaitHelping(future);
}

Result<std::shared_ptr<const Delta>> ExecFetchCache::GetDelta(const DeltaGraph& dg,
                                                              const SkeletonEdge& e,
                                                              unsigned components) {
  const int32_t edge = e.id;
  const obs::TraceCtx tc = trace();
  bool claimed_here = false;
  auto result = FetchSingleFlight(
      &deltas_, Key(edge, components), /*wait_if_claimed=*/true, [&] {
        claimed_here = true;
        obs::StageTimer stage(obs::StageFetchHist());
        obs::ScopedSpan span(tc, "fetch.demand");
        DeltaStore::ReadStats rs;
        auto r = dg.delta_store().GetDeltaShared(e.delta_id, components, e.sizes,
                                                 tc ? &rs : nullptr);
        if (tc) {
          span.SetAttrs({{"edge", static_cast<int64_t>(edge)},
                         {"kind", std::string("delta")},
                         {"lru_hit", static_cast<int64_t>(rs.cache_hit ? 1 : 0)},
                         {"kv_keys", static_cast<int64_t>(rs.kv_keys)},
                         {"bytes", static_cast<int64_t>(rs.bytes)}});
          TallyDemandRead(tc, rs);
        }
        return r;
      });
  if (claimed_here) {
    DemandFetches().Add();
  } else {
    CoveredFetches().Add();
  }
  if (tc) {
    tc.trace->fetches_total.fetch_add(1, std::memory_order_relaxed);
    auto& bucket =
        claimed_here ? tc.trace->fetches_demand : tc.trace->fetches_prefetched;
    bucket.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<std::shared_ptr<const EventList>> ExecFetchCache::GetEventList(
    const DeltaGraph& dg, const SkeletonEdge& e, unsigned components) {
  const int32_t edge = e.id;
  const obs::TraceCtx tc = trace();
  bool claimed_here = false;
  auto result = FetchSingleFlight(
      &events_, Key(edge, components), /*wait_if_claimed=*/true, [&] {
        claimed_here = true;
        obs::StageTimer stage(obs::StageFetchHist());
        obs::ScopedSpan span(tc, "fetch.demand");
        DeltaStore::ReadStats rs;
        auto r = dg.delta_store().GetEventListShared(
            e.delta_id, components, e.sizes, tc ? &rs : nullptr);
        if (tc) {
          span.SetAttrs({{"edge", static_cast<int64_t>(edge)},
                         {"kind", std::string("eventlist")},
                         {"lru_hit", static_cast<int64_t>(rs.cache_hit ? 1 : 0)},
                         {"kv_keys", static_cast<int64_t>(rs.kv_keys)},
                         {"bytes", static_cast<int64_t>(rs.bytes)}});
          TallyDemandRead(tc, rs);
        }
        return r;
      });
  if (claimed_here) {
    DemandFetches().Add();
  } else {
    CoveredFetches().Add();
  }
  if (tc) {
    tc.trace->fetches_total.fetch_add(1, std::memory_order_relaxed);
    auto& bucket =
        claimed_here ? tc.trace->fetches_demand : tc.trace->fetches_prefetched;
    bucket.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void ExecFetchCache::EnqueuePrefetch(const DeltaGraph& dg, size_t shard,
                                     const SkeletonEdge& e, bool is_eventlist,
                                     unsigned components) {
  PrefetchesIssued().Add();
  if (const obs::TraceCtx tc = trace()) {
    tc.trace->prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(batch_mu_);
  batch_queues_[shard].push_back(
      QueuedPrefetch{&dg, e.id, e.delta_id, e.sizes, is_eventlist, components});
}

void ExecFetchCache::DrainPrefetchBatch(size_t shard) {
  std::vector<QueuedPrefetch> drained;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    auto it = batch_queues_.find(shard);
    if (it != batch_queues_.end()) drained.swap(it->second);
  }
  if (!drained.empty()) {
    const obs::TraceCtx tc = trace();
    obs::ScopedSpan drain_span(tc, "io.drain");
    uint64_t claimed_n = 0, lru_hits_n = 0, kv_keys_n = 0, bytes_n = 0;
    // Claim the unclaimed slots, then resolve all claimed reads of one graph
    // through a single batched DeltaStore fetch — one storage round-trip for
    // the whole drain. Slots someone else claimed are skipped: single-flight,
    // the owner fulfils them.
    struct Pending {
      uint64_t key;
      bool is_eventlist;
      // Exactly one engages (a promise allocates its shared state, so only
      // the kind this fetch needs is constructed).
      std::optional<std::promise<Result<std::shared_ptr<const Delta>>>> delta_promise;
      std::optional<std::promise<Result<std::shared_ptr<const EventList>>>> events_promise;
    };
    // Per-graph drain state lives in a shared_ptr so the decode jobs this
    // drain may schedule on the compute pool can outlive this stack frame.
    struct GraphDrain {
      const DeltaGraph* dg = nullptr;
      std::vector<DeltaStore::BatchedRead> batch;
      std::vector<Pending> pending;  // pending[i] owns batch[i]'s slot.
      std::vector<DeltaStore::FetchedRead> fetched;
    };
    std::unordered_map<const DeltaGraph*, std::shared_ptr<GraphDrain>> graphs;
    for (const QueuedPrefetch& q : drained) {
      const uint64_t key = Key(q.edge, q.components);
      Pending p;
      p.key = key;
      p.is_eventlist = q.is_eventlist;
      bool claimed = false;
      if (q.is_eventlist) {
        (void)ClaimOrGet(&events_, key, &p.events_promise.emplace(), &claimed);
      } else {
        (void)ClaimOrGet(&deltas_, key, &p.delta_promise.emplace(), &claimed);
      }
      if (!claimed) continue;
      DeltaStore::BatchedRead read;
      read.id = q.delta_id;
      read.components = q.components;
      read.sizes = q.sizes;
      read.is_eventlist = q.is_eventlist;
      std::shared_ptr<GraphDrain>& gd = graphs[q.dg];
      if (gd == nullptr) {
        gd = std::make_shared<GraphDrain>();
        gd->dg = q.dg;
      }
      gd->batch.push_back(read);
      gd->pending.push_back(std::move(p));
    }
    // Fulfils one resolved entry: publish through the slot's future, drop the
    // slot on failure so a later caller can retry.
    auto fulfil = [this](DeltaStore::BatchedRead& r, auto& p) {
      if (p.is_eventlist) {
        p.events_promise->set_value(r.status.ok()
                                        ? Result<std::shared_ptr<const EventList>>(
                                              std::move(r.events))
                                        : Result<std::shared_ptr<const EventList>>(
                                              r.status));
        if (!r.status.ok()) ReleaseFailedSlot(&events_, p.key);
      } else {
        p.delta_promise->set_value(
            r.status.ok()
                ? Result<std::shared_ptr<const Delta>>(std::move(r.delta))
                : Result<std::shared_ptr<const Delta>>(r.status));
        if (!r.status.ok()) ReleaseFailedSlot(&deltas_, p.key);
      }
    };
    TaskPool* const decode_pool = decode_pool_;
    const bool offload = decode_pool != nullptr && decode_pool->parallelism() >= 2;
    for (auto& graph_entry : graphs) {
      const std::shared_ptr<GraphDrain>& gd = graph_entry.second;
      // Fetch bytes for the whole graph batch (one MultiGet), then account
      // the drain before decode touches the blobs.
      gd->dg->delta_store().FetchBatch(&gd->batch, &gd->fetched);
      claimed_n += gd->batch.size();
      for (const DeltaStore::BatchedRead& r : gd->batch) {
        if (r.lru_hit) ++lru_hits_n;
      }
      for (const DeltaStore::FetchedRead& f : gd->fetched) {
        kv_keys_n += f.blobs.size();
        for (const auto& [mask, blob] : f.blobs) bytes_n += blob.size();
      }
      if (!offload) {
        for (DeltaStore::FetchedRead& f : gd->fetched) {
          gd->dg->delta_store().DecodeFetched(&gd->batch[f.entry], &f);
        }
        for (size_t i = 0; i < gd->batch.size(); ++i) {
          fulfil(gd->batch[i], gd->pending[i]);
        }
        continue;
      }
      // Decode offload: only the byte fetch ran on this I/O thread; each
      // fetched miss becomes one decode job on the compute pool. Every job
      // registers as an in-flight prefetch, so WaitPrefetchesIdle (and the
      // cache destructor) cannot return beneath it.
      std::vector<char> deferred(gd->batch.size(), 0);
      for (const DeltaStore::FetchedRead& f : gd->fetched) deferred[f.entry] = 1;
      for (size_t i = 0; i < gd->batch.size(); ++i) {
        if (!deferred[i]) fulfil(gd->batch[i], gd->pending[i]);  // Decoded-LRU hit.
      }
      for (size_t j = 0; j < gd->fetched.size(); ++j) {
        BeginPrefetch();
        std::shared_ptr<GraphDrain> state = gd;
        decode_pool->Submit([this, state, j, fulfil] {
          DeltaStore::FetchedRead& f = state->fetched[j];
          state->dg->delta_store().DecodeFetched(&state->batch[f.entry], &f);
          fulfil(state->batch[f.entry], state->pending[f.entry]);
          std::lock_guard<std::mutex> lock(prefetch_mu_);
          if (--prefetches_in_flight_ == 0) prefetch_cv_.notify_all();
        });
      }
    }
    Drains().Add();
    DrainWidth().Record(drained.size());
    if (tc) {
      drain_span.SetAttr("shard", static_cast<int64_t>(shard));
      drain_span.SetAttr("queued", static_cast<int64_t>(drained.size()));
      drain_span.SetAttr("claimed", static_cast<int64_t>(claimed_n));
      drain_span.SetAttr("lru_hits", static_cast<int64_t>(lru_hits_n));
      drain_span.SetAttr("kv_keys", static_cast<int64_t>(kv_keys_n));
      drain_span.SetAttr("bytes", static_cast<int64_t>(bytes_n));
      tc.trace->lru_hits.fetch_add(lru_hits_n, std::memory_order_relaxed);
      tc.trace->lru_misses.fetch_add(claimed_n - lru_hits_n,
                                     std::memory_order_relaxed);
      tc.trace->kv_reads.fetch_add(kv_keys_n, std::memory_order_relaxed);
      tc.trace->bytes_read.fetch_add(bytes_n, std::memory_order_relaxed);
      tc.trace->bytes_decoded.fetch_add(bytes_n, std::memory_order_relaxed);
    }
  }
  // One scheduled drain job ran (jobs and enqueues are 1:1, so the counter
  // drains exactly once per job even when one job takes the whole queue).
  std::lock_guard<std::mutex> lock(prefetch_mu_);
  if (--prefetches_in_flight_ == 0) prefetch_cv_.notify_all();
}

void ExecFetchCache::BeginPrefetch() {
  std::lock_guard<std::mutex> lock(prefetch_mu_);
  ++prefetches_in_flight_;
}

void ExecFetchCache::WaitPrefetchesIdle() {
  // A waiter that is itself a pool worker must help: with decode offload the
  // outstanding "prefetches" may be decode jobs queued on this thread's own
  // pool, parked behind this very frame.
  TaskPool* helper = TaskPool::Current();
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  if (helper == nullptr) {
    prefetch_cv_.wait(lock, [this] { return prefetches_in_flight_ == 0; });
    return;
  }
  while (prefetches_in_flight_ != 0) {
    lock.unlock();
    const bool ran = helper->RunOne();
    lock.lock();
    if (!ran) {
      prefetch_cv_.wait_for(lock, std::chrono::microseconds(100),
                            [this] { return prefetches_in_flight_ == 0; });
    }
  }
}

}  // namespace hgdb
