#ifndef HISTGRAPH_EXEC_PARTITIONED_SESSION_H_
#define HISTGRAPH_EXEC_PARTITIONED_SESSION_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "exec/fetch_cache.h"
#include "exec/parallel_executor.h"
#include "exec/task_pool.h"
#include "graph/snapshot.h"

namespace hgdb {

/// \brief Batches several in-flight snapshot retrievals over a
/// PartitionedDeltaGraph onto one shared TaskPool.
///
/// The sharded counterpart of RetrievalSession: each submitted request plans
/// one Steiner tree *per shard* and starts every shard plan immediately, so
/// all requests' shard subtrees coexist as sibling tasks in one group. The
/// session keeps one fetch pin per shard, shared across requests — two
/// requests traversing the same skeleton edge of the same shard fetch and
/// decode it once — and each shard's prefetch drains on the shard's own
/// IoPool lane, so the per-shard fetch pipelines of every request overlap in
/// flight.
///
/// Usage:
///   PartitionedRetrievalSession session(&pdg);
///   auto* a = session.Submit({t1, t2});
///   auto* b = session.Submit({t3}, kCompStruct);
///   HG_RETURN_NOT_OK(session.Wait());
///   use(a->result.value());   // merged snapshots, in the order of a's times
///
/// Same ownership contract as RetrievalSession: one thread drives
/// Submit/Wait and execution fans out on the pool. Each Submit pins one
/// cross-shard frontier (every shard's published epoch, read in one sweep),
/// so the single ingest writer may keep appending while requests are in
/// flight — a request merges shard states that were all published when it
/// was submitted.
class PartitionedRetrievalSession {
 public:
  /// One queued retrieval and, after Wait, its merged outcome.
  struct Request {
    std::vector<Timestamp> times;
    unsigned components = kCompAll;
    /// Merged snapshots in the order of `times`; set by Wait.
    Result<std::vector<Snapshot>> result = Status::Internal("session not waited");

    /// One cross-shard frontier, pinned at Submit: frontiers[s] is shard s's
    /// published state as of the pin. Each shard publishes independently, but
    /// the whole request reads this one consistent vector.
    std::vector<FrontierPtr> frontiers;

    // Per-shard machinery (owned here: executors reference the plans until
    // Wait returns). executors[s] is null when shard s took the synchronous
    // replay fallback, whose result then sits in fallbacks[s].
    std::vector<Plan> plans;
    std::vector<std::unique_ptr<ParallelPlanExecutor>> executors;
    std::vector<std::optional<Result<std::vector<Snapshot>>>> fallbacks;
    obs::SpanId span = obs::kNoSpan;  ///< "request" span; closed by Wait.
  };

  /// `pool` defaults to the index's attached pool (which itself defaults to
  /// TaskPool::Shared()).
  explicit PartitionedRetrievalSession(PartitionedDeltaGraph* pdg,
                                       TaskPool* pool = nullptr);
  ~PartitionedRetrievalSession();

  PartitionedRetrievalSession(const PartitionedRetrievalSession&) = delete;
  PartitionedRetrievalSession& operator=(const PartitionedRetrievalSession&) = delete;

  /// Queues a multipoint retrieval and starts every shard's plan on the pool.
  /// The returned pointer stays valid for the session's lifetime; its
  /// `result` is meaningful only after Wait.
  Request* Submit(std::vector<Timestamp> times, unsigned components = kCompAll);

  /// Blocks (helping the pool) until every shard plan of every request has
  /// finished, then merges each request's per-shard pieces per time point.
  /// Returns the first error. Idempotent.
  Status Wait();

  size_t request_count() const { return requests_.size(); }

  /// The session's query trace, or nullptr when tracing is off. Spans —
  /// per-request "request" spans with per-shard busy-time skew attributes,
  /// session-wide per-shard "shard" spans carrying every fetch through that
  /// shard's pin, and per-request "merge" spans — are complete after Wait.
  const obs::QueryTrace* LastTrace() const { return trace_.get(); }

 private:
  PartitionedDeltaGraph* pdg_;
  TaskPool* pool_;
  /// Declared before caches_ so in-flight prefetch drains (waited out by the
  /// caches' destructors) never outlive the trace they attribute to.
  std::unique_ptr<obs::QueryTrace> trace_;
  bool trace_dumped_ = false;
  /// Session-lifetime span per shard; the shard's fetch pin attributes its
  /// drains and demand fetches here. Closed by the final Wait.
  std::vector<obs::SpanId> shard_spans_;
  /// One fetch pin per shard, shared across all requests in the session.
  std::vector<std::unique_ptr<ExecFetchCache>> caches_;
  std::vector<std::unique_ptr<Request>> requests_;
  // Declared last (destroyed first): in-flight tasks reference the plans and
  // executors above; the destructor also waits explicitly.
  TaskGroup group_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_PARTITIONED_SESSION_H_
