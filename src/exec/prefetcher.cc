#include "exec/prefetcher.h"

#include <unordered_set>

#include "deltagraph/delta_graph.h"
#include "exec/fetch_cache.h"
#include "exec/io_pool.h"

namespace hgdb {

namespace {

void CollectNode(const PlanNode& node, std::unordered_set<int32_t>* seen,
                 std::vector<PlanFetch>* out) {
  for (const auto& [step, child] : node.children) {
    switch (step.kind) {
      case PlanStep::Kind::kApplyDelta:
      case PlanStep::Kind::kApplyEvents:
        if (seen->insert(step.edge).second) {
          out->push_back(
              PlanFetch{step.edge, step.kind == PlanStep::Kind::kApplyEvents});
        }
        break;
      case PlanStep::Kind::kLoadMaterialized:
      case PlanStep::Kind::kLoadCurrent:
      case PlanStep::Kind::kApplyRecentEvents:
        break;  // In-memory; nothing to fetch.
    }
    CollectNode(*child, seen, out);
  }
}

}  // namespace

std::vector<PlanFetch> CollectPlanFetches(const Plan& plan) {
  std::vector<PlanFetch> out;
  if (!plan.root) return out;
  std::unordered_set<int32_t> seen;
  CollectNode(*plan.root, &seen, &out);
  return out;
}

void StartPlanPrefetch(const DeltaGraph& dg, const Skeleton& skel, const Plan& plan,
                       unsigned components, ExecFetchCache* cache, IoPool* io) {
  if (io == nullptr || cache == nullptr) return;
  StartCollectedPrefetch(dg, skel, CollectPlanFetches(plan), components, cache, io);
}

void StartCollectedPrefetch(const DeltaGraph& dg, const Skeleton& skel,
                            const std::vector<PlanFetch>& fetches,
                            unsigned components, ExecFetchCache* cache, IoPool* io) {
  if (io == nullptr || cache == nullptr) return;
  // Fetches are queued per I/O shard and each shard wakeup drains its whole
  // queue into one DeltaStore::GetBatch (one storage round-trip per *batch*):
  // all the fetches that pile up while a shard sleeps through a simulated
  // seek coalesce into the next round-trip instead of paying one each.
  // A graph pinned to an I/O lane (SetIoLane: one lane per partition of a
  // PartitionedDeltaGraph) sends all its fetches there, so distinct
  // partitions drain on distinct I/O threads and their pipelines overlap;
  // otherwise fetches spread across shards by delta id.
  const auto shards = static_cast<uint64_t>(io->parallelism());
  const int lane = dg.io_lane();
  for (const PlanFetch& fetch : fetches) {
    const SkeletonEdge& e = skel.edge(fetch.edge);
    const size_t shard = lane >= 0
                             ? static_cast<size_t>(lane) % shards
                             : static_cast<size_t>(e.delta_id % shards);
    cache->BeginPrefetch();
    cache->EnqueuePrefetch(dg, shard, e, fetch.is_eventlist, components);
    io->Submit(shard, [cache, shard] { cache->DrainPrefetchBatch(shard); });
  }
}

}  // namespace hgdb
