#include "exec/plan_touches.h"

#include "deltagraph/skeleton.h"

namespace hgdb {

namespace {

void CollectNode(const PlanNode& node, const Skeleton& skel,
                 std::vector<int32_t>* out) {
  for (const auto& [step, child] : node.children) {
    switch (step.kind) {
      case PlanStep::Kind::kLoadMaterialized:
        out->push_back(step.node);
        break;
      case PlanStep::Kind::kApplyDelta:
      case PlanStep::Kind::kApplyEvents: {
        const SkeletonEdge& e = skel.edge(step.edge);
        out->push_back(step.forward ? e.to : e.from);
        break;
      }
      case PlanStep::Kind::kLoadCurrent:
      case PlanStep::Kind::kApplyRecentEvents:
        break;  // No skeleton node behind these.
    }
    CollectNode(*child, skel, out);
  }
}

}  // namespace

std::vector<int32_t> CollectPlanNodeTouches(const Plan& plan, const Skeleton& skel) {
  std::vector<int32_t> out;
  if (!plan.root) return out;
  CollectNode(*plan.root, skel, &out);
  return out;
}

}  // namespace hgdb
