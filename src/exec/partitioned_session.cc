#include "exec/partitioned_session.h"

#include <algorithm>

#include "obs/sampler.h"
#include "obs/stages.h"

namespace hgdb {

namespace {

// Mirrors RetrievalSession's pool resolution, over the partitioned index:
// honor an explicit pool, honor forced-serial, default to the shared pool.
TaskPool* ResolvePartitionedPool(PartitionedDeltaGraph* pdg, TaskPool* pool) {
  if (pool != nullptr) return pool;
  if (pdg->task_pool() != nullptr) return pdg->task_pool();
  return pdg->task_pool_overridden() ? &TaskPool::Serial() : &TaskPool::Shared();
}

}  // namespace

PartitionedRetrievalSession::PartitionedRetrievalSession(PartitionedDeltaGraph* pdg,
                                                         TaskPool* pool)
    : pdg_(pdg), pool_(ResolvePartitionedPool(pdg, pool)), group_(pool_) {
  // Trace when globally enabled, or when this session wins the production
  // sampler's draw (see src/obs/sampler.h).
  if (obs::TraceEnabled() || obs::TraceSampler::Global().Sample()) {
    trace_ = std::make_unique<obs::QueryTrace>();
    trace_->set_query_label("partitioned_session");
  }
  caches_.reserve(pdg_->partition_count());
  for (size_t i = 0; i < pdg_->partition_count(); ++i) {
    caches_.push_back(std::make_unique<ExecFetchCache>());
    if (pool_->parallelism() >= 2) caches_.back()->SetDecodePool(pool_);
    if (trace_ != nullptr) {
      // One session-lifetime span per shard: every fetch through the shard's
      // pin — whichever request triggered it — lands here.
      const obs::SpanId s = trace_->BeginSpan("shard", obs::kNoSpan);
      trace_->SetAttr(s, "shard", static_cast<int64_t>(i));
      shard_spans_.push_back(s);
      caches_.back()->SetTrace(obs::TraceCtx{trace_.get(), s});
    }
  }
}

PartitionedRetrievalSession::~PartitionedRetrievalSession() {
  // Tasks in flight reference this session's plans and fetch caches; they
  // must drain before members go away.
  (void)Wait();
}

PartitionedRetrievalSession::Request* PartitionedRetrievalSession::Submit(
    std::vector<Timestamp> times, unsigned components) {
  requests_.push_back(std::make_unique<Request>());
  Request* req = requests_.back().get();
  req->times = std::move(times);
  req->components = components;

  const size_t n = pdg_->partition_count();
  if (req->times.empty()) {
    req->result = std::vector<Snapshot>();
    return req;
  }
  // Pin one cross-shard frontier; all shard reads resolve against it.
  req->frontiers = pdg_->PinFrontiers();
  req->plans.resize(n);
  req->executors.resize(n);
  req->fallbacks.resize(n);
  if (trace_ != nullptr) {
    req->span = trace_->BeginSpan("request", obs::kNoSpan);
    trace_->SetAttr(req->span, "times", static_cast<int64_t>(req->times.size()));
    trace_->SetAttr(req->span, "shards", static_cast<int64_t>(n));
  }

  for (size_t i = 0; i < n; ++i) {
    DeltaGraph* shard = pdg_->partition(i);
    const FrontierPtr& frontier = req->frontiers[i];
    // An un-finalized (or empty) shard has no skeleton to plan over; replay
    // it synchronously — its whole history is the pinned recent view.
    if (frontier->skeleton->leaves().empty()) {
      req->fallbacks[i] =
          shard->GetSnapshotsAt(frontier, req->times, req->components);
      continue;
    }
    auto plan = [&] {
      obs::StageTimer stage(obs::StagePlanHist());
      return shard->PlanForAt(frontier, req->times, req->components);
    }();
    if (!plan.ok()) {
      req->fallbacks[i] = plan.status();
      continue;
    }
    req->plans[i] = std::move(plan).value();
    // The executor prefetches into the shard's session-wide cache on the
    // shard's own I/O lane; the cache's single-flight slots dedup fetches
    // across requests.
    req->executors[i] = std::make_unique<ParallelPlanExecutor>(
        shard, frontier, req->components, pool_, caches_[i].get(),
        shard->ResolveIoPool());
    req->executors[i]->SetTrace(obs::TraceCtx{trace_.get(), req->span});
    req->executors[i]->Start(req->plans[i], &group_);
  }
  return req;
}

Status PartitionedRetrievalSession::Wait() {
  group_.Wait();
  Status first_error = Status::OK();
  for (auto& req : requests_) {
    if (req->executors.empty() && req->fallbacks.empty()) {
      // Empty-times request (or already collected on a prior Wait).
      continue;
    }
    std::vector<Snapshot> merged(req->times.size());
    Status req_error = Status::OK();
    uint64_t busy_sum_ns = 0, busy_max_ns = 0;
    size_t busy_shards = 0;
    obs::StageTimer merge_stage(obs::StageMergeHist());
    obs::ScopedSpan merge_span(obs::TraceCtx{trace_.get(), req->span}, "merge");
    for (size_t i = 0; i < req->executors.size(); ++i) {
      Result<std::vector<Snapshot>> piece = Status::Internal("shard never ran");
      if (req->executors[i] != nullptr) {
        const Status s = req->executors[i]->TakeStatus();
        piece = s.ok() ? req->executors[i]->TakeResults().TakeInOrder(req->times)
                       : Result<std::vector<Snapshot>>(s);
        const uint64_t busy = req->executors[i]->busy_ns();
        busy_sum_ns += busy;
        busy_max_ns = std::max(busy_max_ns, busy);
        ++busy_shards;
        req->executors[i].reset();  // Collected; Wait stays idempotent.
      } else if (req->fallbacks[i].has_value()) {
        piece = std::move(*req->fallbacks[i]);
        req->fallbacks[i].reset();
      } else {
        continue;  // Already collected on a prior Wait.
      }
      if (!piece.ok()) {
        if (req_error.ok()) req_error = piece.status();
        continue;
      }
      for (size_t t = 0; t < merged.size(); ++t) {
        merged[t].AbsorbDisjoint(std::move(piece.value()[t]));
      }
    }
    req->executors.clear();
    req->fallbacks.clear();
    req->result = req_error.ok() ? Result<std::vector<Snapshot>>(std::move(merged))
                                 : Result<std::vector<Snapshot>>(req_error);
    if (first_error.ok() && !req->result.ok()) first_error = req->result.status();
    if (trace_ != nullptr && req->span != obs::kNoSpan) {
      // Execution skew: the slowest shard's busy time over the per-shard
      // mean; 1.0 = perfectly balanced.
      trace_->SetAttr(req->span, "busy_us_sum",
                      static_cast<int64_t>(busy_sum_ns / 1000));
      trace_->SetAttr(req->span, "busy_us_max",
                      static_cast<int64_t>(busy_max_ns / 1000));
      if (busy_shards > 0 && busy_sum_ns > 0) {
        const double skew = static_cast<double>(busy_max_ns) * busy_shards /
                            static_cast<double>(busy_sum_ns);
        trace_->SetAttr(req->span, "shard_skew", skew);
        if (skew > trace_->shard_skew()) trace_->set_shard_skew(skew);
      }
      trace_->EndSpan(req->span);
      req->span = obs::kNoSpan;
    }
  }
  if (trace_ != nullptr && !trace_dumped_) {
    trace_dumped_ = true;
    for (obs::SpanId s : shard_spans_) trace_->EndSpan(s);
    // Stamp the query's identity for the flight recorder: the newest pinned
    // cross-shard frontier set — max shard epoch, events summed over shards.
    uint64_t epoch = 0;
    size_t event_count = 0;
    for (const auto& req : requests_) {
      if (req->frontiers.empty()) continue;
      uint64_t req_epoch = 0;
      size_t req_events = 0;
      for (const FrontierPtr& f : req->frontiers) {
        if (f == nullptr) continue;
        req_epoch = std::max(req_epoch, f->epoch);
        req_events += f->event_count;
      }
      if (req_epoch >= epoch) {
        epoch = req_epoch;
        event_count = req_events;
      }
    }
    trace_->set_epoch(epoch);
    trace_->set_event_count(event_count);
    obs::FinishAndMaybeDump(trace_.get());
  }
  return first_error;
}

}  // namespace hgdb
