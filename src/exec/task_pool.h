#ifndef HISTGRAPH_EXEC_TASK_POOL_H_
#define HISTGRAPH_EXEC_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hgdb {

/// \brief A fixed-size work-stealing task pool for plan execution.
///
/// A pool of parallelism P owns P-1 worker threads; the Pth thread is the
/// caller blocked in TaskGroup::Wait, which *helps* by running queued tasks
/// instead of sleeping. Each worker has its own deque: tasks submitted from a
/// worker go to that worker's deque and are popped LIFO (depth-first, cache
/// warm), while idle workers steal FIFO from the other end (breadth-first,
/// stealing the biggest remaining subtrees). External submissions round-robin
/// across deques.
///
/// Tasks must never block on other tasks — the executor forks state instead
/// of waiting, so every task runs to completion once started. That is the
/// no-deadlock invariant of the whole subsystem (see src/exec/README.md).
class TaskPool {
 public:
  /// `parallelism` counts the helping caller: a pool of parallelism P spawns
  /// P-1 workers. Values <= 1 spawn no workers (tasks run inline on submit or
  /// in the caller's Wait loop).
  explicit TaskPool(int parallelism);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The process-wide pool retrieval defaults to, sized by the
  /// HISTGRAPH_THREADS environment variable (default: the hardware
  /// concurrency). Lazily constructed on first use.
  static TaskPool& Shared();

  /// A process-wide parallelism-1 pool (no worker threads; everything runs
  /// inline). For callers that need *a* pool but must stay single-threaded.
  static TaskPool& Serial();

  /// The pool the calling thread is a worker of, or nullptr. Code that must
  /// block on a result produced by a pool task (e.g. the fetch cache waiting
  /// on an offloaded decode) uses this to *help* — run queued tasks while
  /// waiting — instead of parking a worker behind the very queue that holds
  /// the task it waits on.
  static TaskPool* Current();

  /// Pool parallelism including the helping caller (the constructor arg).
  int parallelism() const { return parallelism_; }

  /// Enqueues a task. With no workers the task runs inline before Submit
  /// returns (callers must tolerate inline execution — plan trees are
  /// shallow, so the recursion this implies is bounded).
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread; false if none was queued.
  /// This is how waiting callers help drain the pool.
  bool RunOne();

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool PopOrSteal(size_t home, std::function<void()>* out);

  const int parallelism_;
  std::vector<std::unique_ptr<Deque>> deques_;  // One per worker (>= 1).
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_deque_{0};  // Round-robin for external submits.
  std::atomic<size_t> pending_{0};     // Queued (not yet started) tasks.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stopping_ = false;
};

/// \brief Tracks a set of tasks spawned into a TaskPool and lets one caller
/// wait for all of them (including tasks those tasks spawn) to finish.
///
/// The waiting thread does not sleep while work remains: it runs queued pool
/// tasks itself, so a pool of parallelism P really applies P threads to the
/// group. Spawn may be called from inside group tasks (the counter is
/// incremented before the parent's decrement, so the group cannot be observed
/// empty mid-tree).
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  TaskPool* pool() const { return pool_; }

  void Spawn(std::function<void()> fn);

  /// Blocks (helping) until every spawned task has completed.
  void Wait();

 private:
  TaskPool* pool_;
  std::atomic<size_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable done_cv_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_TASK_POOL_H_
