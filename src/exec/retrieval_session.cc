#include "exec/retrieval_session.h"

#include "obs/sampler.h"
#include "obs/stages.h"

namespace hgdb {

namespace {

// Default pool resolution mirrors DeltaGraph::ExecuteSnapshotPlan: honor an
// explicitly attached pool, honor forced-serial (SetTaskPool(nullptr) /
// exec_parallelism=1) with the inline pool, and only fall back to the shared
// pool when the index was never configured.
TaskPool* ResolveSessionPool(DeltaGraph* dg, TaskPool* pool) {
  if (pool != nullptr) return pool;
  if (dg->task_pool() != nullptr) return dg->task_pool();
  return dg->task_pool_overridden() ? &TaskPool::Serial() : &TaskPool::Shared();
}

}  // namespace

RetrievalSession::RetrievalSession(DeltaGraph* dg, TaskPool* pool)
    : dg_(dg), pool_(ResolveSessionPool(dg, pool)), group_(pool_) {
  if (pool_->parallelism() >= 2) fetches_.SetDecodePool(pool_);
  // Trace when globally enabled, or when this session wins the production
  // sampler's draw (1-in-N / tail-armed; see src/obs/sampler.h) — sampled
  // traces land in the flight recorder when the session finishes.
  if (obs::TraceEnabled() || obs::TraceSampler::Global().Sample()) {
    trace_ = std::make_unique<obs::QueryTrace>();
    trace_->set_query_label("session");
    fetches_.SetTrace(obs::TraceCtx{trace_.get(), obs::kNoSpan});
  }
}

RetrievalSession::~RetrievalSession() {
  // Tasks in flight reference this session's plans and fetch cache; they must
  // drain before members go away.
  (void)Wait();
}

RetrievalSession::Request* RetrievalSession::Submit(std::vector<Timestamp> times,
                                                    unsigned components) {
  requests_.push_back(std::make_unique<Request>());
  Request* req = requests_.back().get();
  req->times = std::move(times);
  req->components = components;

  if (req->times.empty()) {
    req->result = std::vector<Snapshot>();
    return req;
  }
  // Pin the frontier once; the whole request resolves against it.
  req->frontier = dg_->PinFrontier();
  // An un-finalized (or empty) index has no skeleton to plan over; fall back
  // to the DeltaGraph's own replay path, synchronously (still pinned).
  if (req->frontier->skeleton->leaves().empty()) {
    req->result = dg_->GetSnapshotsAt(req->frontier, req->times, req->components);
    return req;
  }

  auto plan = [&] {
    obs::StageTimer stage(obs::StagePlanHist());
    return dg_->PlanForAt(req->frontier, req->times, req->components);
  }();
  if (!plan.ok()) {
    req->result = plan.status();
    return req;
  }
  req->plan = std::move(plan).value();
  if (trace_ != nullptr) {
    req->span = trace_->BeginSpan("request", obs::kNoSpan);
    trace_->SetAttr(req->span, "times", static_cast<int64_t>(req->times.size()));
    trace_->SetAttr(req->span, "steps",
                    static_cast<int64_t>(req->plan.StepCount()));
    trace_->SetAttr(req->span, "est_cost_bytes", req->plan.estimated_cost);
  }
  req->executor = std::make_unique<ParallelPlanExecutor>(
      dg_, req->frontier, req->components, pool_, &fetches_, dg_->ResolveIoPool());
  req->executor->SetTrace(obs::TraceCtx{trace_.get(), req->span});
  req->executor->Start(req->plan, &group_);
  return req;
}

Status RetrievalSession::Wait() {
  group_.Wait();
  Status first_error = Status::OK();
  for (auto& req : requests_) {
    if (req->executor == nullptr) {
      // Never started (planned synchronously or failed to plan) — result is
      // already set; still surface its error below.
    } else {
      const Status s = req->executor->TakeStatus();
      if (s.ok()) {
        obs::StageTimer merge_stage(obs::StageMergeHist());
        req->result = req->executor->TakeResults().TakeInOrder(req->times);
      } else {
        req->result = s;
      }
      req->executor.reset();  // Collected; Wait stays idempotent.
      if (trace_ != nullptr && req->span != obs::kNoSpan) {
        trace_->EndSpan(req->span);
        req->span = obs::kNoSpan;
      }
    }
    if (first_error.ok() && !req->result.ok()) first_error = req->result.status();
  }
  if (trace_ != nullptr && !trace_dumped_) {
    trace_dumped_ = true;
    // Stamp the query's identity for the flight recorder: the newest frontier
    // any request pinned (epoch + its visible-event count).
    uint64_t epoch = 0;
    size_t event_count = 0;
    for (const auto& req : requests_) {
      if (req->frontier != nullptr && req->frontier->epoch >= epoch) {
        epoch = req->frontier->epoch;
        event_count = req->frontier->event_count;
      }
    }
    trace_->set_epoch(epoch);
    trace_->set_event_count(event_count);
    obs::FinishAndMaybeDump(trace_.get());
  }
  return first_error;
}

}  // namespace hgdb
