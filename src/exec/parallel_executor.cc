#include "exec/parallel_executor.h"

#include <chrono>
#include <utility>
#include <vector>

#include "exec/prefetcher.h"
#include "obs/stages.h"

namespace hgdb {

bool PlanHasBranches(const Plan& plan) {
  if (!plan.root) return false;
  std::vector<const PlanNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->children.size() >= 2) return true;
    for (const auto& [step, child] : n->children) stack.push_back(child.get());
  }
  return false;
}

ParallelPlanExecutor::ParallelPlanExecutor(const DeltaGraph* dg, FrontierPtr frontier,
                                           unsigned components, TaskPool* pool,
                                           ExecFetchCache* shared_cache,
                                           IoPool* io_pool)
    : dg_(dg),
      frontier_(frontier != nullptr ? std::move(frontier) : dg->PinFrontier()),
      components_(components),
      pool_(pool),
      io_pool_(io_pool),
      fetches_(shared_cache != nullptr ? shared_cache : &own_cache_) {
  // Our own cache can offload blob decode to the compute pool (a shared
  // cache's owner decides for itself); pointless without real parallelism.
  if (shared_cache == nullptr && pool_ != nullptr && pool_->parallelism() >= 2) {
    own_cache_.SetDecodePool(pool_);
  }
}

Result<DeltaGraph::SnapshotPlanResults> ParallelPlanExecutor::Run(const Plan& plan) {
  TaskGroup group(pool_);
  Start(plan, &group);
  group.Wait();
  HG_RETURN_NOT_OK(TakeStatus());
  return TakeResults();
}

void ParallelPlanExecutor::Start(const Plan& plan, TaskGroup* group) {
  if (!plan.root) {
    RecordError(Status::InvalidArgument("plan has no root"));
    return;
  }
  if (obs::MetricsEnabled()) {
    // Stage attribution: Start -> the first status collection brackets this
    // execution (workers run in between); recorded by TakeStatus.
    exec_started_ = std::chrono::steady_clock::now();
    exec_timed_ = true;
  }
  if (tc_) {
    exec_span_ = tc_.trace->BeginSpan("execute.parallel", tc_.span);
    // Nest this execution's fetches under its span — but only through a cache
    // we own; a shared cache already carries its owner's attachment.
    if (fetches_ == &own_cache_) {
      own_cache_.SetTrace(obs::TraceCtx{tc_.trace, exec_span_});
    }
  }
  // Queue every fetch the plan will perform before the first worker runs;
  // workers then overlap apply work with the I/O pool's fetches and block
  // only if they outrun it. The fetch cache outlives any still-queued job
  // (its destructor drains), so early errors cannot strand a prefetch.
  StartPlanPrefetch(*dg_, *frontier_->skeleton, plan, components_, fetches_,
                    io_pool_);
  const PlanNode* root = plan.root.get();
  group->Spawn([this, root, group] { RunNode(root, Snapshot(), group); });
}

Status ParallelPlanExecutor::TakeStatus() {
  if (exec_timed_) {
    exec_timed_ = false;
    obs::StageExecuteHist().Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_started_)
            .count()));
  }
  if (tc_ && exec_span_ != obs::kNoSpan) {
    tc_.trace->SetAttr(exec_span_, "tasks",
                       static_cast<int64_t>(task_count_.load(std::memory_order_relaxed)));
    tc_.trace->SetAttr(exec_span_, "busy_us",
                       static_cast<int64_t>(busy_ns() / 1000));
    tc_.trace->EndSpan(exec_span_);
    exec_span_ = obs::kNoSpan;
  }
  std::lock_guard<std::mutex> lock(err_mu_);
  return failed_.load(std::memory_order_acquire) ? first_error_ : Status::OK();
}

void ParallelPlanExecutor::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(err_mu_);
  if (!failed_.load(std::memory_order_acquire)) {
    first_error_ = std::move(status);
    failed_.store(true, std::memory_order_release);
  }
}

void ParallelPlanExecutor::EmitTime(Timestamp t, Snapshot snap) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  results_.by_time[t] = std::move(snap);
}

void ParallelPlanExecutor::EmitNode(int32_t node, Snapshot snap) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  results_.by_node[node] = std::move(snap);
}

Status ParallelPlanExecutor::ApplyStepTo(const PlanStep& step, Snapshot* snap) {
  switch (step.kind) {
    case PlanStep::Kind::kLoadMaterialized: {
      const Snapshot* mat = frontier_->materialized_snapshot(step.node);
      if (mat == nullptr) {
        return Status::Internal("plan: node not materialized: " +
                                std::to_string(step.node));
      }
      const unsigned have =
          frontier_->skeleton->node(step.node).materialized_components;
      *snap = (have == components_) ? *mat : mat->CopyFiltered(components_);
      return Status::OK();
    }
    case PlanStep::Kind::kLoadCurrent:
      if (frontier_->current == nullptr) {
        return Status::Internal("plan: current graph not maintained");
      }
      *snap = frontier_->current->CopyFiltered(components_);
      return Status::OK();
    case PlanStep::Kind::kApplyDelta: {
      auto d = fetches_->GetDelta(*dg_, frontier_->skeleton->edge(step.edge),
                                  components_);
      if (!d.ok()) return d.status();
      return d.value()->ApplyTo(snap, step.forward, components_);
    }
    case PlanStep::Kind::kApplyEvents: {
      auto el = fetches_->GetEventList(*dg_, frontier_->skeleton->edge(step.edge),
                                       components_);
      if (!el.ok()) return el.status();
      return ApplyEventRange(el.value()->events(), snap, step.forward, step.lo,
                             step.hi, components_);
    }
    case PlanStep::Kind::kApplyRecentEvents:
      return ApplyEventRange(frontier_->recent.events(), snap, step.forward,
                             step.lo, step.hi, components_);
  }
  return Status::Internal("plan: unknown step kind");
}

void ParallelPlanExecutor::RunNode(const PlanNode* node, Snapshot working,
                                   TaskGroup* group) {
  // Busy-time accounting (trace only): one interval per task invocation,
  // including time blocked on fetch futures — that is wall time this subtree
  // occupied a worker, which is what shard-skew comparisons want.
  struct BusyTimer {
    explicit BusyTimer(ParallelPlanExecutor* e) : exec(e), on(bool(e->tc_)) {
      if (on) {
        exec->task_count_.fetch_add(1, std::memory_order_relaxed);
        start = std::chrono::steady_clock::now();
      }
    }
    ~BusyTimer() {
      if (on) {
        exec->busy_ns_.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count(),
            std::memory_order_relaxed);
      }
    }
    ParallelPlanExecutor* exec;
    bool on;
    std::chrono::steady_clock::time_point start;
  } busy_timer(this);

  // Iterative tail descent: this task handles `node`'s emits, forks siblings
  // off as tasks, and follows the last child itself.
  while (!failed_.load(std::memory_order_acquire)) {
    const bool leaf_task = node->children.empty();
    for (size_t i = 0; i < node->emit_times.size(); ++i) {
      // The last emit of a childless node owns the working fork outright.
      const bool last_emit =
          leaf_task && node->emit_nodes.empty() && i + 1 == node->emit_times.size();
      EmitTime(node->emit_times[i], last_emit ? std::move(working) : working);
    }
    for (size_t i = 0; i < node->emit_nodes.size(); ++i) {
      const bool last_emit = leaf_task && i + 1 == node->emit_nodes.size();
      EmitNode(node->emit_nodes[i], last_emit ? std::move(working) : working);
    }
    if (leaf_task) return;

    // Fork a COW copy of the working snapshot per sibling subtree. The copy
    // is O(1); each subtree's mutations clone only the stores they touch.
    for (size_t i = 0; i + 1 < node->children.size(); ++i) {
      const auto& [step, child] = node->children[i];
      Snapshot fork = working;
      const Status s = ApplyStepTo(step, &fork);
      if (!s.ok()) {
        RecordError(s);
        return;
      }
      const PlanNode* child_ptr = child.get();
      group->Spawn([this, child_ptr, fork = std::move(fork), group]() mutable {
        RunNode(child_ptr, std::move(fork), group);
      });
    }
    const auto& [last_step, last_child] = node->children.back();
    const Status s = ApplyStepTo(last_step, &working);
    if (!s.ok()) {
      RecordError(s);
      return;
    }
    node = last_child.get();
  }
}

}  // namespace hgdb
