#ifndef HISTGRAPH_EXEC_PREFETCHER_H_
#define HISTGRAPH_EXEC_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "deltagraph/plan.h"

namespace hgdb {

class DeltaGraph;
class ExecFetchCache;
class IoPool;
class Skeleton;

/// One storage fetch a plan will perform: a skeleton edge and whether its
/// payload is a leaf-eventlist (vs an interior delta).
struct PlanFetch {
  int32_t edge = -1;
  bool is_eventlist = false;
};

/// Pre-scans `plan` depth-first (the serial execution order) and returns the
/// distinct skeleton edges it fetches, in first-touch order. Steps that need
/// no storage fetch (materialized loads, the current graph, the in-memory
/// recent eventlist) are skipped.
std::vector<PlanFetch> CollectPlanFetches(const Plan& plan);

/// Issues an asynchronous fetch into `cache` for every edge `plan` touches,
/// sharded across `io`'s threads by delta id. Edges are resolved against
/// `skel` — the *pinned frontier's* skeleton, which the plan was built from —
/// never the live one, so a concurrent leaf cut cannot skew a fetch. Returns
/// immediately: workers that reach an edge before its fetch lands block on
/// the cache's future (they only ever wait if they outrun the prefetcher).
/// The jobs reference `dg` and `cache`, which must stay alive until the
/// cache drains (~ExecFetchCache waits; `plan` and `skel` are not referenced
/// after this call returns). No-op when `io` is null.
void StartPlanPrefetch(const DeltaGraph& dg, const Skeleton& skel, const Plan& plan,
                       unsigned components, ExecFetchCache* cache, IoPool* io);

/// Same, over an already-collected fetch list (callers that pre-scan
/// themselves, e.g. to skip prefetch for trivially small plans).
void StartCollectedPrefetch(const DeltaGraph& dg, const Skeleton& skel,
                            const std::vector<PlanFetch>& fetches,
                            unsigned components, ExecFetchCache* cache, IoPool* io);

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_PREFETCHER_H_
