#ifndef HISTGRAPH_EXEC_FETCH_CACHE_H_
#define HISTGRAPH_EXEC_FETCH_CACHE_H_

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/result.h"
#include "common/types.h"
#include "deltagraph/skeleton.h"
#include "graph/delta.h"
#include "obs/trace.h"
#include "temporal/event_list.h"

namespace hgdb {

class DeltaGraph;
class TaskPool;

/// \brief A thread-safe pin of decoded deltas/eventlists for one plan
/// execution (or one RetrievalSession spanning several), with future-based
/// entries so an asynchronous prefetcher can fill it ahead of the workers.
///
/// The serial SnapshotPlanVisitor pins decodes in plain maps so backtracking
/// never refetches; the parallel executor needs the same pin shared across
/// worker threads, a session wants it shared across *plans*, and the prefetch
/// pipeline wants to start fetches before any worker needs them. Entries are
/// keyed by (skeleton edge, components) and live for the cache's lifetime —
/// unlike the DeltaStore's LRU underneath, nothing is evicted, so a pinned
/// pointer stays valid without holding the lock.
///
/// Concurrency: every slot is claimed exactly once (first-claimer-wins under
/// the map lock) and holds a shared_future. The claimer — a prefetch job on
/// an I/O thread, or whichever worker got there first — fetches and decodes
/// *outside* the lock and fulfils the future; everyone else blocks on the
/// future, so a fetch is performed at most once per cache no matter how many
/// threads race on the same edge. Claimers run straight-line fetch/decode
/// code and never wait on other tasks. With a decode pool attached
/// (SetDecodePool) a slot's fulfilment may instead sit in the compute pool's
/// queue, so a waiter that is itself a pool worker *helps* — runs queued
/// tasks between readiness checks — rather than parking behind work only it
/// can start; that preserves the no-deadlock invariant of
/// src/exec/README.md.
class ExecFetchCache {
 public:
  /// Destruction waits for in-flight prefetch jobs (see BeginPrefetch), so
  /// owners may die with prefetches still queued on an IoPool.
  ~ExecFetchCache() { WaitPrefetchesIdle(); }

  /// Returns the decoded delta for skeleton edge `e`, fetching it if no
  /// prefetch ever claimed the slot, or blocking on the in-flight fetch if
  /// one did. The edge is passed by value-semantics reference (resolved by
  /// the caller against *its* pinned frontier's skeleton) so the cache never
  /// reads the live skeleton — payloads are immutable and never deleted, so
  /// an entry fetched under one epoch is valid under every later one.
  Result<std::shared_ptr<const Delta>> GetDelta(const DeltaGraph& dg,
                                                const SkeletonEdge& e,
                                                unsigned components);
  Result<std::shared_ptr<const EventList>> GetEventList(const DeltaGraph& dg,
                                                        const SkeletonEdge& e,
                                                        unsigned components);

  /// Queues one fetch for I/O shard `shard`'s next drain. The scheduler pairs
  /// each enqueue with one BeginPrefetch and one DrainPrefetchBatch job
  /// submitted to that IoPool shard. The edge's delta id and sizes are
  /// captured here, so the drain job never touches a (possibly newer) live
  /// skeleton.
  void EnqueuePrefetch(const DeltaGraph& dg, size_t shard, const SkeletonEdge& e,
                       bool is_eventlist, unsigned components);

  /// Drains everything queued for `shard` into one batched DeltaStore read —
  /// one storage round-trip per wakeup, however many deltas were queued while
  /// the shard was busy. Runs on an IoPool shard thread; a wakeup whose queue
  /// was already taken by an earlier drain is a no-op. Slots another claimer
  /// already owns are skipped (single-flight; the owner fulfils them). With a
  /// decode pool attached, the I/O thread only fetches bytes
  /// (DeltaStore::FetchBatch) and schedules one decode job per fetched miss
  /// on the compute pool, so a seek-bound shard never serializes the
  /// CPU-bound decode of many deltas.
  void DrainPrefetchBatch(size_t shard);

  /// Attaches the compute pool that drains should offload decode to; nullptr
  /// (default) or a pool of parallelism < 2 keeps decode inline on the I/O
  /// thread. Set before any prefetch is scheduled (not thread-safe against
  /// concurrent drains).
  void SetDecodePool(TaskPool* pool) { decode_pool_ = pool; }

  /// Registers one scheduled drain job, keeping this cache (and the
  /// DeltaGraph the queued fetch references) pinned until the job runs.
  /// Called by the scheduler *before* submitting the job to an IoPool.
  void BeginPrefetch();

  /// Blocks until every registered prefetch has run.
  void WaitPrefetchesIdle();

  /// Attaches the query trace that fetches through this cache attribute to
  /// (drain spans, demand-fetch spans, hit/byte tallies). The owning session
  /// sets it before scheduling prefetches or executors; the trace must
  /// outlive the cache. Null trace (the default) records nothing.
  void SetTrace(obs::TraceCtx ctx) {
    trace_span_.store(ctx.span, std::memory_order_relaxed);
    trace_.store(ctx.trace, std::memory_order_release);
  }
  obs::TraceCtx trace() const {
    obs::TraceCtx ctx;
    ctx.trace = trace_.load(std::memory_order_acquire);
    ctx.span = trace_span_.load(std::memory_order_relaxed);
    return ctx;
  }

 private:
  template <typename T>
  using FetchFuture = std::shared_future<Result<std::shared_ptr<const T>>>;

  // Components fit in 4 bits (kCompAll == 0xF).
  static uint64_t Key(int32_t edge, unsigned components) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(edge)) << 4) |
           (components & 0xF);
  }

  /// Claims the slot for `key` (returning an unset promise-backed future and
  /// claimed=true) or returns the existing future (claimed=false).
  template <typename T>
  FetchFuture<T> ClaimOrGet(std::unordered_map<uint64_t, FetchFuture<T>>* map,
                            uint64_t key, std::promise<Result<std::shared_ptr<const T>>>* promise,
                            bool* claimed);

  /// Drops a slot whose fetch failed so a later caller can retry (current
  /// waiters still observe the error through their future).
  template <typename T>
  void ReleaseFailedSlot(std::unordered_map<uint64_t, FetchFuture<T>>* map,
                         uint64_t key);

  /// One copy of the claim/fetch/fulfil/release-on-failure protocol (see the
  /// class comment); `fetch` runs outside any lock when the claim is won.
  template <typename T, typename FetchFn>
  Result<std::shared_ptr<const T>> FetchSingleFlight(
      std::unordered_map<uint64_t, FetchFuture<T>>* map, uint64_t key,
      bool wait_if_claimed, FetchFn fetch);

  std::shared_mutex mu_;
  std::unordered_map<uint64_t, FetchFuture<Delta>> deltas_;
  std::unordered_map<uint64_t, FetchFuture<EventList>> events_;

  /// One queued (not yet drained) prefetch. The DeltaGraph pointer rides
  /// along because a cache outlives plans and could in principle serve more
  /// than one graph; the drain groups reads per graph.
  struct QueuedPrefetch {
    const DeltaGraph* dg;
    int32_t edge;        ///< Skeleton edge id (cache key only).
    DeltaId delta_id;    ///< Storage id, captured at enqueue time.
    ComponentSizes sizes;
    bool is_eventlist;
    unsigned components;
  };
  std::mutex batch_mu_;
  std::unordered_map<size_t, std::vector<QueuedPrefetch>> batch_queues_;

  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  size_t prefetches_in_flight_ = 0;

  TaskPool* decode_pool_ = nullptr;  ///< Optional decode-offload target.

  // Trace attachment (see SetTrace). Two atomics rather than one struct so
  // drain threads can read it lock-free; span is written first and the trace
  // pointer released last, so a reader never sees the new trace with a stale
  // span id.
  std::atomic<obs::QueryTrace*> trace_{nullptr};
  std::atomic<obs::SpanId> trace_span_{obs::kNoSpan};
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_FETCH_CACHE_H_
