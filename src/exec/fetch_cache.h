#ifndef HISTGRAPH_EXEC_FETCH_CACHE_H_
#define HISTGRAPH_EXEC_FETCH_CACHE_H_

#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "common/result.h"
#include "common/types.h"
#include "graph/delta.h"
#include "temporal/event_list.h"

namespace hgdb {

class DeltaGraph;

/// \brief A thread-safe pin of decoded deltas/eventlists for one plan
/// execution (or one RetrievalSession spanning several).
///
/// The serial SnapshotPlanVisitor pins decodes in plain maps so backtracking
/// never refetches; the parallel executor needs the same pin shared across
/// worker threads, and a session wants it shared across *plans* so two
/// in-flight queries traversing the same skeleton edges fetch each edge once.
/// Entries are keyed by (skeleton edge, components) and live for the cache's
/// lifetime — unlike the DeltaStore's LRU underneath, nothing is evicted, so
/// a pinned pointer stays valid without holding the lock.
///
/// Concurrency: lookups take a shared lock; a miss decodes *outside* any lock
/// (so slow fetches don't serialize the pool) and inserts under an exclusive
/// lock, first-writer-wins. Two workers racing on the same edge may both
/// decode; both get usable objects and one copy is dropped — wasted work, not
/// corruption. The DeltaStore LRU below makes the second decode cheap anyway.
class ExecFetchCache {
 public:
  Result<std::shared_ptr<const Delta>> GetDelta(const DeltaGraph& dg, int32_t edge,
                                                unsigned components);
  Result<std::shared_ptr<const EventList>> GetEventList(const DeltaGraph& dg,
                                                        int32_t edge,
                                                        unsigned components);

 private:
  // Components fit in 4 bits (kCompAll == 0xF).
  static uint64_t Key(int32_t edge, unsigned components) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(edge)) << 4) |
           (components & 0xF);
  }

  std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Delta>> deltas_;
  std::unordered_map<uint64_t, std::shared_ptr<const EventList>> events_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_FETCH_CACHE_H_
