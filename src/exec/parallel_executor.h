#ifndef HISTGRAPH_EXEC_PARALLEL_EXECUTOR_H_
#define HISTGRAPH_EXEC_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <mutex>

#include "common/result.h"
#include "common/status.h"
#include "deltagraph/delta_graph.h"
#include "deltagraph/plan.h"
#include "exec/fetch_cache.h"
#include "exec/task_pool.h"

namespace hgdb {

/// True if the plan contains at least one node with two or more children —
/// i.e. independent subtrees a parallel executor could overlap. Linear chains
/// (every singlepoint plan) have nothing to parallelize.
bool PlanHasBranches(const Plan& plan);

/// \brief Executes a retrieval plan with independent subtrees running
/// concurrently on a TaskPool.
///
/// Where the serial SnapshotPlanVisitor walks the plan depth-first and
/// *backtracks* (applying each non-tail step inversely after finishing its
/// subtree), the parallel executor *forks*: at a branch node it copies the
/// working snapshot — an O(1) copy-on-write share — applies each child's step
/// to its own fork, and schedules the sibling subtrees as tasks, descending
/// into the last child itself. No undo steps are ever applied. Emits go
/// through a mutex-guarded sink keyed by emit target (time / node id), so the
/// assembled results are deterministic and element-for-element identical to
/// the serial visitor's regardless of task completion order.
///
/// One executor instance serves one plan execution, pinned to one frontier:
/// every piece of mutable graph state (skeleton, current graph, materialized
/// graphs, recent tail) is resolved against the immutable FrontierState the
/// plan was built from, so concurrent appends/finalizes cannot skew an
/// in-flight execution. Concurrent *retrievals* are fine (see
/// src/exec/README.md for the full concurrency contract).
class IoPool;

class ParallelPlanExecutor {
 public:
  /// `frontier` is the pinned epoch this execution reads at; the plan must
  /// have been built from the same frontier. `shared_cache` (optional) lets a
  /// RetrievalSession share decoded fetches across several concurrent plans;
  /// by default the executor uses a private cache pinned for this plan only.
  /// Both must outlive the execution. `io_pool` (optional) enables
  /// asynchronous prefetch: Start pre-scans the plan and queues every fetch
  /// on the I/O pool before the first worker task runs, so fetch latency
  /// overlaps apply work (see src/exec/prefetcher.h).
  ParallelPlanExecutor(const DeltaGraph* dg, FrontierPtr frontier,
                       unsigned components, TaskPool* pool,
                       ExecFetchCache* shared_cache = nullptr,
                       IoPool* io_pool = nullptr);

  /// Runs the plan to completion, helping the pool from the calling thread.
  Result<DeltaGraph::SnapshotPlanResults> Run(const Plan& plan);

  /// Asynchronous form for sessions: schedules the plan's root into `group`
  /// (the caller later waits on the group, then collects TakeStatus /
  /// TakeResults). `plan` and the executor must outlive the group's Wait.
  void Start(const Plan& plan, TaskGroup* group);

  Status TakeStatus();
  DeltaGraph::SnapshotPlanResults TakeResults() { return std::move(results_); }

  /// Attributes this execution to `tc`: Start opens an "execute.parallel"
  /// span (closed by TakeStatus), worker tasks accumulate busy time, and —
  /// when the executor owns its cache — prefetch drains and demand fetches
  /// nest under the span. Call before Start; with a shared cache the cache's
  /// owner attaches its own trace. No-op for a null trace.
  void SetTrace(obs::TraceCtx tc) { tc_ = tc; }

  /// Total nanoseconds worker tasks of this execution spent running
  /// (accumulated only when a trace is attached). Sessions compare this
  /// across shards to report execution skew.
  uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }

 private:
  /// Walks `node` with `working` as the working snapshot, spawning sibling
  /// subtrees into `group` and descending into the last child iteratively.
  void RunNode(const PlanNode* node, Snapshot working, TaskGroup* group);

  Status ApplyStepTo(const PlanStep& step, Snapshot* snap);
  void RecordError(Status status);

  void EmitTime(Timestamp t, Snapshot snap);
  void EmitNode(int32_t node, Snapshot snap);

  const DeltaGraph* dg_;
  const FrontierPtr frontier_;  ///< Pinned epoch; all graph state reads go here.
  const unsigned components_;
  TaskPool* pool_;
  IoPool* io_pool_;
  ExecFetchCache* fetches_;
  ExecFetchCache own_cache_;

  // Ordered sink: emits land keyed by target, so assembly order never
  // depends on scheduling.
  std::mutex sink_mu_;
  DeltaGraph::SnapshotPlanResults results_;

  std::atomic<bool> failed_{false};
  std::mutex err_mu_;
  Status first_error_;

  // Trace attribution (see SetTrace). The span is opened by Start and closed
  // by TakeStatus, which both run on the submitting thread; workers only
  // bump the (relaxed) tallies.
  obs::TraceCtx tc_;
  obs::SpanId exec_span_ = obs::kNoSpan;
  std::atomic<uint64_t> busy_ns_{0};
  std::atomic<uint32_t> task_count_{0};

  // Stage-attribution window (server.stage_execute_us): set by Start, read by
  // TakeStatus — both on the submitting thread, like the span above.
  std::chrono::steady_clock::time_point exec_started_{};
  bool exec_timed_ = false;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_PARALLEL_EXECUTOR_H_
