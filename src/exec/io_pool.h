#ifndef HISTGRAPH_EXEC_IO_POOL_H_
#define HISTGRAPH_EXEC_IO_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hgdb {

/// \brief A small pool of dedicated I/O threads for asynchronous
/// delta/eventlist prefetch.
///
/// Unlike the compute TaskPool (work-stealing, caller-helps), the IoPool is a
/// plain sharded FIFO: jobs are routed by `shard_key % parallelism()` and each
/// shard drains in submission order on its own thread. Stable sharding keeps
/// every delta's fetch on one thread (the per-shard I/O process of the G*
/// deployment model) and preserves the plan pre-scan's first-touch order, so
/// the prefetcher stays ahead of the executor instead of fetching the tail of
/// the plan first. I/O jobs spend most of their life blocked on the KVStore
/// (simulated seek latency or a real disk), so a pool larger than the core
/// count is useful and cheap.
///
/// Jobs must never submit to or wait on the pool they run in — they fetch,
/// decode, fulfil a fetch-cache future, and return. Waiting on an I/O job's
/// *future* from a TaskPool worker is safe (I/O jobs never block on compute).
class IoPool {
 public:
  /// Spawns `parallelism` I/O threads (values < 1 are clamped to 1).
  explicit IoPool(int parallelism);
  ~IoPool();

  IoPool(const IoPool&) = delete;
  IoPool& operator=(const IoPool&) = delete;

  /// The process-wide pool prefetching defaults to, sized by the
  /// HISTGRAPH_IO_THREADS environment variable (default 8; 0 disables
  /// prefetching process-wide). Lazily constructed on first use.
  /// Returns nullptr when disabled.
  static IoPool* Shared();

  int parallelism() const { return static_cast<int>(shards_.size()); }

  /// Enqueues `fn` on shard `shard_key % parallelism()`.
  void Submit(uint64_t shard_key, std::function<void()> fn);

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> jobs;
    bool stopping = false;
  };

  void ShardLoop(size_t index);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_IO_POOL_H_
