#include "exec/io_pool.h"

#include <algorithm>
#include <chrono>

#include "common/env_util.h"
#include "obs/metrics.h"

namespace hgdb {

namespace {

obs::Counter& IoJobs() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter("io_pool.jobs");
  return *c;
}
obs::Histogram& IoJobUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("io_pool.job_us");
  return *h;
}

}  // namespace

IoPool::IoPool(int parallelism) {
  const int n = std::max(parallelism, 1);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { ShardLoop(static_cast<size_t>(i)); });
  }
}

IoPool::~IoPool() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stopping = true;
    shard->cv.notify_all();
  }
  // No job is ever dropped: each shard thread keeps draining its queue after
  // `stopping` (ShardLoop exits only on an empty queue) and late Submits run
  // inline, so a pending prefetch's fetch-cache promise is always fulfilled.
  for (auto& t : threads_) t.join();
}

IoPool* IoPool::Shared() {
  static IoPool* pool = [] {
    const int n = static_cast<int>(GetEnvInt("HISTGRAPH_IO_THREADS", 8));
    return n < 1 ? nullptr : new IoPool(n);
  }();
  return pool;
}

void IoPool::Submit(uint64_t shard_key, std::function<void()> fn) {
  Shard& shard = *shards_[shard_key % shards_.size()];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (shard.stopping) {
      // Pool is shutting down; run inline rather than dropping the job.
      lock.unlock();
      fn();
      return;
    }
    shard.jobs.push_back(std::move(fn));
  }
  shard.cv.notify_one();
}

void IoPool::ShardLoop(size_t index) {
  Shard& shard = *shards_[index];
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stopping || !shard.jobs.empty(); });
      if (shard.jobs.empty()) return;  // stopping && drained
      job = std::move(shard.jobs.front());
      shard.jobs.pop_front();
    }
    if (obs::MetricsEnabled()) {
      const auto start = std::chrono::steady_clock::now();
      job();
      IoJobUs().Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      IoJobs().Add();
    } else {
      job();
    }
  }
}

}  // namespace hgdb
