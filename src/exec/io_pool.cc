#include "exec/io_pool.h"

#include <algorithm>

#include "common/env_util.h"

namespace hgdb {

IoPool::IoPool(int parallelism) {
  const int n = std::max(parallelism, 1);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { ShardLoop(static_cast<size_t>(i)); });
  }
}

IoPool::~IoPool() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stopping = true;
    shard->cv.notify_all();
  }
  // No job is ever dropped: each shard thread keeps draining its queue after
  // `stopping` (ShardLoop exits only on an empty queue) and late Submits run
  // inline, so a pending prefetch's fetch-cache promise is always fulfilled.
  for (auto& t : threads_) t.join();
}

IoPool* IoPool::Shared() {
  static IoPool* pool = [] {
    const int n = static_cast<int>(GetEnvInt("HISTGRAPH_IO_THREADS", 8));
    return n < 1 ? nullptr : new IoPool(n);
  }();
  return pool;
}

void IoPool::Submit(uint64_t shard_key, std::function<void()> fn) {
  Shard& shard = *shards_[shard_key % shards_.size()];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (shard.stopping) {
      // Pool is shutting down; run inline rather than dropping the job.
      lock.unlock();
      fn();
      return;
    }
    shard.jobs.push_back(std::move(fn));
  }
  shard.cv.notify_one();
}

void IoPool::ShardLoop(size_t index) {
  Shard& shard = *shards_[index];
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stopping || !shard.jobs.empty(); });
      if (shard.jobs.empty()) return;  // stopping && drained
      job = std::move(shard.jobs.front());
      shard.jobs.pop_front();
    }
    job();
  }
}

}  // namespace hgdb
