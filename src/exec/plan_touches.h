#ifndef HISTGRAPH_EXEC_PLAN_TOUCHES_H_
#define HISTGRAPH_EXEC_PLAN_TOUCHES_H_

#include <cstdint>
#include <vector>

#include "deltagraph/plan.h"

namespace hgdb {

class Skeleton;

/// Pre-scans `plan` depth-first and returns every skeleton node the
/// traversal passes through: the destination endpoint of each delta/
/// eventlist step (resolved against `skel`, the pinned frontier's skeleton
/// the plan was built from) and each materialized start node. This is the
/// per-node hit signal adaptive materialization scores candidates with — a
/// node on many query paths is a node whose materialized copy would have
/// let those queries start closer to their targets. Virtual query terminals
/// (partial eventlist applications end between leaves) still credit the
/// eventlist edge's destination leaf: the query traveled to that leaf's
/// neighborhood. kLoadCurrent and recent-tail steps touch no skeleton node.
std::vector<int32_t> CollectPlanNodeTouches(const Plan& plan, const Skeleton& skel);

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_PLAN_TOUCHES_H_
