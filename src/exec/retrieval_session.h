#ifndef HISTGRAPH_EXEC_RETRIEVAL_SESSION_H_
#define HISTGRAPH_EXEC_RETRIEVAL_SESSION_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "deltagraph/delta_graph.h"
#include "exec/fetch_cache.h"
#include "exec/parallel_executor.h"
#include "exec/task_pool.h"
#include "graph/snapshot.h"

namespace hgdb {

/// \brief Batches several in-flight snapshot retrievals over one DeltaGraph
/// onto a shared TaskPool.
///
/// Where GetSnapshots runs one query to completion, a session lets a caller
/// queue k independent GetSnapshot(s)-shaped requests, execute all of their
/// plans concurrently, and share one fetch pin across them — two requests
/// traversing the same skeleton edge fetch and decode it once (the "batch
/// their DeltaStore fetches" half of serving concurrent traffic; the other
/// half is the per-plan subtree parallelism, which sessions get for free
/// because every request's subtrees land in the same pool).
///
/// Usage:
///   RetrievalSession session(&dg);
///   auto* a = session.Submit({t1, t2});
///   auto* b = session.Submit({t3}, kCompStruct);
///   HG_RETURN_NOT_OK(session.Wait());       // runs everything, helping
///   use(a->result.value());                  // in the order of a's times
///
/// A session is single-owner: Submit/Wait are driven by one thread (that
/// serializes the planning step, which shares the index's SSSP cache), while
/// execution fans out on the pool. Sessions from *different* threads over the
/// same DeltaGraph are safe — the underlying stores and caches are
/// thread-safe. Each Submit pins the index's published frontier (epoch) and
/// the whole request — planning, prefetch, execution — reads only that
/// immutable state, so the single ingest writer may Append/Finalize
/// concurrently with in-flight sessions (see src/server/README.md for the
/// visibility contract).
class RetrievalSession {
 public:
  /// One queued retrieval and, after Wait, its outcome.
  struct Request {
    std::vector<Timestamp> times;
    unsigned components = kCompAll;
    /// Snapshots in the order of `times`; set by Wait.
    Result<std::vector<Snapshot>> result = Status::Internal("session not waited");

    /// The epoch this request pinned at Submit. Everything the request reads
    /// — skeleton, current graph, recent tail — resolves against this
    /// frontier, so concurrent appends/finalizes never skew the result.
    FrontierPtr frontier;

    Plan plan;  // Owned here: executors reference it until Wait returns.
    std::unique_ptr<ParallelPlanExecutor> executor;
    obs::SpanId span = obs::kNoSpan;  ///< "request" span; closed by Wait.

    /// Epoch of the pinned frontier (0 before Submit resolved it).
    uint64_t pinned_epoch() const {
      return frontier == nullptr ? 0 : frontier->epoch;
    }
  };

  /// `pool` defaults to the DeltaGraph's attached pool (which itself
  /// defaults to TaskPool::Shared()). Prefetch runs on the DeltaGraph's
  /// resolved I/O pool (SetIoPool / HISTGRAPH_IO_THREADS); each Submit
  /// queues its plan's fetches before execution starts, so requests share
  /// both the fetch pin and the prefetch pipeline.
  explicit RetrievalSession(DeltaGraph* dg, TaskPool* pool = nullptr);
  ~RetrievalSession();

  RetrievalSession(const RetrievalSession&) = delete;
  RetrievalSession& operator=(const RetrievalSession&) = delete;

  /// Queues a multipoint retrieval and starts it on the pool. The returned
  /// pointer stays valid for the session's lifetime; its `result` is
  /// meaningful only after Wait.
  Request* Submit(std::vector<Timestamp> times, unsigned components = kCompAll);

  /// Blocks (helping the pool) until every submitted request finishes and
  /// fills each request's `result`. Returns the first error, if any (per-
  /// request statuses are also available on the requests). Idempotent.
  Status Wait();

  size_t request_count() const { return requests_.size(); }

  /// The session's query trace, or nullptr when tracing is off
  /// (HISTGRAPH_TRACE unset and obs::SetTraceEnabled never called). Spans are
  /// complete after Wait; the pointer stays valid for the session's lifetime.
  const obs::QueryTrace* LastTrace() const { return trace_.get(); }

 private:
  DeltaGraph* dg_;
  TaskPool* pool_;
  /// Declared before fetches_ so in-flight prefetch drains (waited out by the
  /// cache's destructor) never outlive the trace they attribute to.
  std::unique_ptr<obs::QueryTrace> trace_;
  bool trace_dumped_ = false;
  ExecFetchCache fetches_;  ///< Shared across all requests in the session.
  std::vector<std::unique_ptr<Request>> requests_;
  // Declared last (destroyed first): in-flight tasks reference the plans and
  // executors above; the destructor also waits explicitly.
  TaskGroup group_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_EXEC_RETRIEVAL_SESSION_H_
