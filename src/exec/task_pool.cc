#include "exec/task_pool.h"

#include <algorithm>
#include <chrono>

#include "common/env_util.h"

namespace hgdb {

namespace {

/// Which pool (if any) the current thread is a worker of, and its deque
/// index. Lets Submit route a worker's child tasks to its own deque.
struct WorkerIdentity {
  TaskPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

TaskPool::TaskPool(int parallelism) : parallelism_(std::max(parallelism, 1)) {
  const int workers = parallelism_ - 1;
  deques_.reserve(std::max(workers, 1));
  for (int i = 0; i < std::max(workers, 1); ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stopping_ = true;
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Drain anything still queued so submitted work is never silently dropped
  // (group-tracked tasks would otherwise leave a waiter hanging).
  std::function<void()> task;
  while (PopOrSteal(0, &task)) task();
}

TaskPool& TaskPool::Shared() {
  static TaskPool* pool = new TaskPool(static_cast<int>(
      GetEnvInt("HISTGRAPH_THREADS",
                static_cast<int64_t>(std::max(1u, std::thread::hardware_concurrency())))));
  return *pool;
}

TaskPool& TaskPool::Serial() {
  static TaskPool* pool = new TaskPool(1);
  return *pool;
}

TaskPool* TaskPool::Current() { return tls_worker.pool; }

void TaskPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();  // No workers: degenerate inline execution.
    return;
  }
  size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;  // Worker spawning a child: keep it local.
  } else {
    target = next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  }
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(fn));
  }
  {
    // The increment must be ordered against the workers' predicate check
    // under idle_mu_, or a worker that just found pending_ == 0 could block
    // right past this notify and sleep with the task queued (lost wakeup).
    std::lock_guard<std::mutex> lock(idle_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

bool TaskPool::PopOrSteal(size_t home, std::function<void()>* out) {
  if (pending_.load(std::memory_order_acquire) == 0) return false;
  const size_t n = deques_.size();
  // Own deque from the back (LIFO: the subtree just forked, cache-warm) ...
  {
    Deque& d = *deques_[home % n];
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.tasks.empty()) {
      *out = std::move(d.tasks.back());
      d.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // ... then steal from the front of the others (FIFO: the oldest, usually
  // largest, pending subtree).
  for (size_t i = 1; i < n; ++i) {
    Deque& d = *deques_[(home + i) % n];
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.tasks.empty()) {
      *out = std::move(d.tasks.front());
      d.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool TaskPool::RunOne() {
  std::function<void()> task;
  const size_t home = tls_worker.pool == this
                          ? tls_worker.index
                          : next_deque_.load(std::memory_order_relaxed);
  if (!PopOrSteal(home, &task)) return false;
  task();
  return true;
}

void TaskPool::WorkerLoop(size_t index) {
  tls_worker = {this, index};
  std::function<void()> task;
  for (;;) {
    if (PopOrSteal(index, &task)) {
      task();
      task = nullptr;  // Release captures promptly.
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_) return;
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // The decrement happens under mu_ so that Wait, which re-acquires mu_
    // before returning, cannot let the group be destroyed while this task
    // sits between its decrement and the notify (the classic
    // notify-after-destroy condvar lifetime race).
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (pool_->RunOne()) continue;
    // Nothing queued but tasks are still running on workers; sleep briefly.
    // The timeout covers the benign race where a running task spawns a child
    // between our RunOne miss and the wait.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait_for(lock, std::chrono::microseconds(100), [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  // Serialize with the final completing task: it may still hold mu_ between
  // its zero-reaching decrement and its notify. After this acquire, no task
  // touches this group again, so the caller may destroy it.
  std::lock_guard<std::mutex> lock(mu_);
}

}  // namespace hgdb
