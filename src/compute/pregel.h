#ifndef HISTGRAPH_COMPUTE_PREGEL_H_
#define HISTGRAPH_COMPUTE_PREGEL_H_

#include <atomic>
#include <barrier>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/types.h"

namespace hgdb {

/// \brief A Pregel-like iterative vertex-centric framework (Section 3.2:
/// "we have implemented an iterative vertex-based message-passing system
/// analogous to Pregel").
///
/// Vertices are hash-partitioned across workers; each superstep runs the
/// vertex program on every active vertex in parallel, exchanging messages
/// through per-worker double-buffered inboxes with a barrier between
/// supersteps. Vertices vote to halt; a vertex with incoming messages is
/// reactivated. Execution stops when all vertices halt or after
/// `max_supersteps`.
///
/// The Graph type must provide `Nodes()` and `OutNeighbors(n)` (see
/// graph_accessor.h). V is the vertex value, M the message type.
template <typename Graph, typename V, typename M>
class PregelEngine {
 public:
  struct VertexContext {
    int superstep = 0;
    size_t num_vertices = 0;
    NodeId vertex = kInvalidNodeId;
    const std::vector<NodeId>* out_neighbors = nullptr;

    void SendMessage(NodeId dst, M message) {
      outbox->emplace_back(dst, std::move(message));
    }
    void SendToAllNeighbors(M message) {
      for (NodeId n : *out_neighbors) outbox->emplace_back(n, message);
    }
    void VoteToHalt() { *halted = true; }

    // Wiring (engine-internal).
    std::vector<std::pair<NodeId, M>>* outbox = nullptr;
    bool* halted = nullptr;
  };

  /// Vertex program: Init runs in superstep 0 with no messages; Compute runs
  /// whenever the vertex is active or has messages.
  struct Program {
    virtual ~Program() = default;
    virtual void Init(VertexContext* ctx, V* value) = 0;
    virtual void Compute(VertexContext* ctx, V* value,
                         const std::vector<M>& messages) = 0;
  };

  PregelEngine(const Graph* graph, int num_workers)
      : graph_(graph),
        num_workers_(num_workers < 1 ? 1 : num_workers) {}

  /// Runs the program; returns the final vertex values.
  std::unordered_map<NodeId, V> Run(Program* program, int max_supersteps) {
    const std::vector<NodeId> nodes = graph_->Nodes();
    const size_t n = nodes.size();
    if (n == 0) return {};

    // Partition vertices across workers by hash.
    std::vector<std::vector<NodeId>> vertex_of(num_workers_);
    for (NodeId v : nodes) vertex_of[WorkerOf(v)].push_back(v);

    struct VertexState {
      V value{};
      bool halted = false;
      std::vector<M> inbox;
    };
    std::vector<std::unordered_map<NodeId, VertexState>> state(num_workers_);
    for (int w = 0; w < num_workers_; ++w) {
      for (NodeId v : vertex_of[w]) state[w][v] = VertexState{};
    }

    // inboxes[next][w]: messages addressed to worker w for the next
    // superstep, one mutex per destination worker.
    std::vector<std::vector<std::pair<NodeId, M>>> next_inbox(num_workers_);
    std::vector<std::mutex> inbox_mu(num_workers_);

    std::atomic<size_t> active_count{n};
    std::barrier barrier(num_workers_);

    auto worker_body = [&](int w) {
      std::vector<std::pair<NodeId, M>> outbox;
      for (int step = 0; step <= max_supersteps; ++step) {
        // Deliver this worker's pending messages (single-threaded per worker).
        {
          std::lock_guard<std::mutex> lock(inbox_mu[w]);
          for (auto& [dst, msg] : next_inbox[w]) {
            auto it = state[w].find(dst);
            if (it != state[w].end()) {
              it->second.inbox.push_back(std::move(msg));
              it->second.halted = false;
            }
          }
          next_inbox[w].clear();
        }
        barrier.arrive_and_wait();
        if (active_count.load() == 0 && step > 0) break;

        size_t local_active = 0;
        outbox.clear();
        for (NodeId v : vertex_of[w]) {
          VertexState& vs = state[w][v];
          if (step > 0 && vs.halted && vs.inbox.empty()) continue;
          const std::vector<NodeId> neighbors = graph_->OutNeighbors(v);
          VertexContext ctx;
          ctx.superstep = step;
          ctx.num_vertices = n;
          ctx.vertex = v;
          ctx.out_neighbors = &neighbors;
          ctx.outbox = &outbox;
          ctx.halted = &vs.halted;
          vs.halted = false;
          if (step == 0) {
            program->Init(&ctx, &vs.value);
          } else {
            program->Compute(&ctx, &vs.value, vs.inbox);
          }
          vs.inbox.clear();
          if (!vs.halted) ++local_active;
        }
        // Route outgoing messages to destination workers.
        for (auto& [dst, msg] : outbox) {
          const int dw = WorkerOf(dst);
          std::lock_guard<std::mutex> lock(inbox_mu[dw]);
          next_inbox[dw].emplace_back(dst, std::move(msg));
        }
        // Recompute global activity: halted vertices with pending messages
        // count as active for the next round.
        barrier.arrive_and_wait();
        if (w == 0) active_count.store(0);
        barrier.arrive_and_wait();
        size_t pending;
        {
          std::lock_guard<std::mutex> lock(inbox_mu[w]);
          pending = next_inbox[w].size();
        }
        active_count.fetch_add(local_active + pending);
        barrier.arrive_and_wait();
      }
    };

    if (num_workers_ == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(num_workers_);
      for (int w = 0; w < num_workers_; ++w) threads.emplace_back(worker_body, w);
      for (auto& t : threads) t.join();
    }

    std::unordered_map<NodeId, V> out;
    out.reserve(n);
    for (int w = 0; w < num_workers_; ++w) {
      for (auto& [v, vs] : state[w]) out.emplace(v, std::move(vs.value));
    }
    return out;
  }

 private:
  int WorkerOf(NodeId v) const {
    return static_cast<int>(Mix64(v) % static_cast<uint64_t>(num_workers_));
  }

  const Graph* graph_;
  int num_workers_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMPUTE_PREGEL_H_
