#ifndef HISTGRAPH_COMPUTE_ALGORITHMS_H_
#define HISTGRAPH_COMPUTE_ALGORITHMS_H_

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compute/pregel.h"

namespace hgdb {

/// \brief PageRank on the vertex-centric engine (the paper's Dataset-3
/// experiment runs PageRank over partition-parallel workers, including
/// retrieval time).
template <typename Graph>
std::unordered_map<NodeId, double> PageRank(const Graph& graph, int iterations = 20,
                                            double damping = 0.85,
                                            int num_workers = 1) {
  using Engine = PregelEngine<Graph, double, double>;
  struct PageRankProgram final : Engine::Program {
    int iterations;
    double damping;

    void Init(typename Engine::VertexContext* ctx, double* value) override {
      *value = 1.0 / static_cast<double>(ctx->num_vertices);
      const size_t degree = ctx->out_neighbors->size();
      if (degree > 0) {
        ctx->SendToAllNeighbors(*value / static_cast<double>(degree));
      }
    }

    void Compute(typename Engine::VertexContext* ctx, double* value,
                 const std::vector<double>& messages) override {
      double sum = 0.0;
      for (double m : messages) sum += m;
      *value = (1.0 - damping) / static_cast<double>(ctx->num_vertices) +
               damping * sum;
      if (ctx->superstep < iterations) {
        const size_t degree = ctx->out_neighbors->size();
        if (degree > 0) {
          ctx->SendToAllNeighbors(*value / static_cast<double>(degree));
        }
      } else {
        ctx->VoteToHalt();
      }
    }
  };
  PageRankProgram program;
  program.iterations = iterations;
  program.damping = damping;
  Engine engine(&graph, num_workers);
  return engine.Run(&program, iterations + 1);
}

/// \brief Weakly-connected components via min-label propagation. Returns the
/// component label (smallest reachable node id) per node.
template <typename Graph>
std::unordered_map<NodeId, NodeId> ConnectedComponents(const Graph& graph,
                                                       int num_workers = 1,
                                                       int max_supersteps = 200) {
  using Engine = PregelEngine<Graph, NodeId, NodeId>;
  struct WccProgram final : Engine::Program {
    void Init(typename Engine::VertexContext* ctx, NodeId* value) override {
      *value = ctx->vertex;
      ctx->SendToAllNeighbors(*value);
    }
    void Compute(typename Engine::VertexContext* ctx, NodeId* value,
                 const std::vector<NodeId>& messages) override {
      NodeId best = *value;
      for (NodeId m : messages) best = std::min(best, m);
      if (best < *value) {
        *value = best;
        ctx->SendToAllNeighbors(best);
      }
      ctx->VoteToHalt();
    }
  };
  WccProgram program;
  Engine engine(&graph, num_workers);
  return engine.Run(&program, max_supersteps);
}

/// \brief Single-source shortest paths (hop count). Unreached nodes are
/// absent from the result.
template <typename Graph>
std::unordered_map<NodeId, int64_t> ShortestPaths(const Graph& graph, NodeId source,
                                                  int num_workers = 1,
                                                  int max_supersteps = 200) {
  using Engine = PregelEngine<Graph, int64_t, int64_t>;
  struct SsspProgram final : Engine::Program {
    NodeId source;
    void Init(typename Engine::VertexContext* ctx, int64_t* value) override {
      if (ctx->vertex == source) {
        *value = 0;
        ctx->SendToAllNeighbors(1);
      } else {
        *value = -1;  // Unreached.
      }
      ctx->VoteToHalt();
    }
    void Compute(typename Engine::VertexContext* ctx, int64_t* value,
                 const std::vector<int64_t>& messages) override {
      int64_t best = *value;
      for (int64_t m : messages) {
        if (best < 0 || m < best) best = m;
      }
      if (best != *value && best >= 0) {
        *value = best;
        ctx->SendToAllNeighbors(best + 1);
      }
      ctx->VoteToHalt();
    }
  };
  SsspProgram program;
  program.source = source;
  Engine engine(&graph, num_workers);
  auto values = engine.Run(&program, max_supersteps);
  std::unordered_map<NodeId, int64_t> out;
  for (const auto& [v, d] : values) {
    if (d >= 0) out.emplace(v, d);
  }
  return out;
}

/// \brief Exact triangle count (each triangle counted once). Direct
/// neighbor-set intersection — small graphs / example workloads.
template <typename Graph>
uint64_t CountTriangles(const Graph& graph) {
  uint64_t triangles = 0;
  const std::vector<NodeId> nodes = graph.Nodes();
  std::unordered_map<NodeId, std::unordered_set<NodeId>> adj;
  for (NodeId v : nodes) {
    for (NodeId u : graph.OutNeighbors(v)) {
      if (u == v) continue;
      adj[v].insert(u);
      adj[u].insert(v);
    }
  }
  for (const auto& [v, nv] : adj) {
    for (NodeId u : nv) {
      if (u <= v) continue;
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (NodeId w : it->second) {
        if (w <= u) continue;
        if (nv.contains(w)) ++triangles;
      }
    }
  }
  return triangles;
}

/// \brief Community detection by synchronous label propagation: each vertex
/// repeatedly adopts the most frequent label among its neighbors (ties to
/// the smaller label). Returns the final label per node. Used by the
/// evolutionary "how do communities evolve" analyses the paper motivates.
template <typename Graph>
std::unordered_map<NodeId, NodeId> LabelPropagation(const Graph& graph,
                                                    int max_rounds = 20,
                                                    int num_workers = 1) {
  using Engine = PregelEngine<Graph, NodeId, NodeId>;
  struct LpaProgram final : Engine::Program {
    int max_rounds;
    void Init(typename Engine::VertexContext* ctx, NodeId* value) override {
      *value = ctx->vertex;
      ctx->SendToAllNeighbors(*value);
    }
    void Compute(typename Engine::VertexContext* ctx, NodeId* value,
                 const std::vector<NodeId>& messages) override {
      if (ctx->superstep >= max_rounds || messages.empty()) {
        ctx->VoteToHalt();
        return;
      }
      std::unordered_map<NodeId, size_t> freq;
      for (NodeId m : messages) ++freq[m];
      NodeId best = *value;
      size_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      if (best != *value) {
        *value = best;
        ctx->SendToAllNeighbors(best);
      } else {
        ctx->VoteToHalt();
      }
    }
  };
  LpaProgram program;
  program.max_rounds = max_rounds;
  Engine engine(&graph, num_workers);
  return engine.Run(&program, max_rounds + 1);
}

/// \brief Global clustering coefficient: 3 * triangles / open wedges.
template <typename Graph>
double ClusteringCoefficient(const Graph& graph) {
  const uint64_t triangles = CountTriangles(graph);
  uint64_t wedges = 0;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> adj;
  for (NodeId v : graph.Nodes()) {
    for (NodeId u : graph.OutNeighbors(v)) {
      if (u == v) continue;
      adj[v].insert(u);
      adj[u].insert(v);
    }
  }
  for (const auto& [v, nv] : adj) {
    const uint64_t d = nv.size();
    wedges += d * (d - 1) / 2;
  }
  return wedges == 0 ? 0.0 : 3.0 * static_cast<double>(triangles) / wedges;
}

/// \brief Degree distribution summary.
struct DegreeStats {
  size_t nodes = 0;
  size_t max_degree = 0;
  double mean_degree = 0.0;
};

template <typename Graph>
DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  size_t total = 0;
  for (NodeId v : graph.Nodes()) {
    const size_t d = graph.OutNeighbors(v).size();
    stats.max_degree = std::max(stats.max_degree, d);
    total += d;
    ++stats.nodes;
  }
  stats.mean_degree =
      stats.nodes == 0 ? 0.0 : static_cast<double>(total) / stats.nodes;
  return stats;
}

}  // namespace hgdb

#endif  // HISTGRAPH_COMPUTE_ALGORITHMS_H_
