#ifndef HISTGRAPH_COMPUTE_GRAPH_ACCESSOR_H_
#define HISTGRAPH_COMPUTE_GRAPH_ACCESSOR_H_

#include <vector>

#include "common/types.h"
#include "graph/snapshot.h"
#include "graphpool/graph_pool.h"

namespace hgdb {

/// \brief Adapter concept for the compute engine: anything exposing
/// `Nodes()` and `OutNeighbors(n)` can be analyzed.
///
/// Two adapters ship with the library:
///  - SnapshotAccessor: plain in-memory Snapshot (no bitmap checks);
///  - HistViewAccessor: a GraphPool view (bitmap-filtered). The difference
///    between running the same algorithm on these two is exactly the
///    "bitmap penalty" the paper measures (<7% for PageRank).
class SnapshotAccessor {
 public:
  explicit SnapshotAccessor(const Snapshot* snap) : snap_(snap) { BuildAdjacency(); }

  std::vector<NodeId> Nodes() const {
    std::vector<NodeId> out(snap_->nodes().begin(), snap_->nodes().end());
    return out;
  }

  const std::vector<NodeId>& OutNeighbors(NodeId n) const {
    static const std::vector<NodeId> kEmpty;
    auto it = out_adj_.find(n);
    return it == out_adj_.end() ? kEmpty : it->second;
  }

  size_t NodeCount() const { return snap_->NodeCount(); }

 private:
  void BuildAdjacency() {
    for (const auto& [id, rec] : snap_->edges()) {
      out_adj_[rec.src].push_back(rec.dst);
      if (!rec.directed) out_adj_[rec.dst].push_back(rec.src);
    }
  }

  const Snapshot* snap_;
  std::unordered_map<NodeId, std::vector<NodeId>> out_adj_;
};

/// GraphPool-backed accessor; every edge access goes through the bitmap
/// membership test (no private adjacency copy).
class HistViewAccessor {
 public:
  explicit HistViewAccessor(HistGraphView view) : view_(view) {}

  std::vector<NodeId> Nodes() const { return view_.GetNodes(); }

  std::vector<NodeId> OutNeighbors(NodeId n) const { return view_.GetOutNeighbors(n); }

  size_t NodeCount() const { return view_.CountNodes(); }

 private:
  HistGraphView view_;
};

/// GraphPool-backed accessor that *skips* the bitmap membership tests and
/// walks the raw union graph. Only meaningful when the pool holds exactly
/// one graph (then union == that graph). Comparing an algorithm on this
/// accessor vs HistViewAccessor isolates the bitmap-filtering penalty the
/// paper measures (<7% on PageRank) — same data structure, with and without
/// the membership checks.
class UnionPoolAccessor {
 public:
  explicit UnionPoolAccessor(const GraphPool* pool) : pool_(pool) {}

  std::vector<NodeId> Nodes() const { return pool_->UnionNodes(); }

  std::vector<NodeId> OutNeighbors(NodeId n) const {
    std::vector<NodeId> out;
    const std::vector<EdgeId>* union_edges = pool_->UnionIncidentEdges(n);
    if (union_edges == nullptr) return out;
    for (EdgeId e : *union_edges) {
      const EdgeRecord* rec = pool_->FindEdge(e);  // No bitmap test.
      if (!rec->directed) {
        out.push_back(rec->src == n ? rec->dst : rec->src);
      } else if (rec->src == n) {
        out.push_back(rec->dst);
      }
    }
    return out;
  }

  size_t NodeCount() const { return pool_->UnionNodeCount(); }

 private:
  const GraphPool* pool_;
};

}  // namespace hgdb

#endif  // HISTGRAPH_COMPUTE_GRAPH_ACCESSOR_H_
