#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "common/coding.h"
#include "kvstore/compression.h"
#include "kvstore/kv_store.h"
#include "obs/metrics.h"

namespace hgdb {

namespace {

constexpr char kOpPut = 1;
constexpr char kOpDelete = 2;

// Same registry metrics as MemKVStore: every concrete store records under
// kvstore.*, the prefix wrapper does not (it would double count).
obs::Counter& KvGets() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter("kvstore.gets");
  return *c;
}
obs::Counter& KvMultiGets() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.multigets");
  return *c;
}
obs::Counter& KvKeysRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.keys_read");
  return *c;
}
obs::Counter& KvBytesRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.bytes_read");
  return *c;
}

/// Disk-backed KVStore: a single append-only log file plus an in-memory
/// index (key -> value location) rebuilt by scanning the log on open. This is
/// the classic log-structured design the RocksDB lineage is built on, cut down
/// to the get/put interface the paper requires of its storage engine.
///
/// Record layout (all integers varint/fixed little-endian):
///   [op:1][klen][vlen?][key][value?][checksum:4]
/// The checksum covers everything before it; a torn tail is detected on open
/// and ignored (recovery-by-truncation).
class DiskKVStore final : public KVStore {
 public:
  DiskKVStore(std::string path, const KVStoreOptions& options)
      : path_(std::move(path)), options_(options) {}

  ~DiskKVStore() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Open() {
    fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ < 0) {
      return Status::IOError("open " + path_ + ": " + std::strerror(errno));
    }
    return RecoverIndex();
  }

  Status Put(const Slice& key, const Slice& value) override {
    std::string stored;
    Encode(value, &stored);
    std::unique_lock lock(mu_);
    return AppendRecord(kOpPut, key, Slice(stored));
  }

  Status Get(const Slice& key, std::string* value) const override {
    ValueLoc loc;
    {
      std::shared_lock lock(mu_);
      auto it = index_.find(key.ToString());
      if (it == index_.end()) return Status::NotFound("key: " + key.ToString());
      loc = it->second;
    }
    std::string stored(loc.size, '\0');
    const ssize_t n = ::pread(fd_, stored.data(), loc.size, loc.offset);
    if (n != static_cast<ssize_t>(loc.size)) {
      return Status::IOError("pread " + path_ + ": short read");
    }
    KvGets().Add();
    KvKeysRead().Add();
    KvBytesRead().Add(loc.size);
    SimulateRead(loc.size);
    return Decode(stored, value);
  }

  void MultiGet(const std::vector<Slice>& keys, std::vector<std::string>* values,
                std::vector<Status>* statuses) const override {
    values->resize(keys.size());
    statuses->assign(keys.size(), Status::OK());
    if (keys.empty()) return;
    std::vector<ValueLoc> locs(keys.size());
    {
      std::shared_lock lock(mu_);
      for (size_t i = 0; i < keys.size(); ++i) {
        auto it = index_.find(keys[i].ToString());
        if (it == index_.end()) {
          (*statuses)[i] = Status::NotFound("key: " + keys[i].ToString());
        } else {
          locs[i] = it->second;
        }
      }
    }
    uint64_t stored_bytes = 0;
    uint64_t hits = 0;
    bool any_hit = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!(*statuses)[i].ok()) continue;
      any_hit = true;
      ++hits;
      std::string stored(locs[i].size, '\0');
      const ssize_t n = ::pread(fd_, stored.data(), locs[i].size, locs[i].offset);
      if (n != static_cast<ssize_t>(locs[i].size)) {
        (*statuses)[i] = Status::IOError("pread " + path_ + ": short read");
        continue;
      }
      stored_bytes += locs[i].size;
      (*statuses)[i] = Decode(stored, &(*values)[i]);
    }
    KvMultiGets().Add();
    KvKeysRead().Add(hits);
    KvBytesRead().Add(stored_bytes);
    // The whole batch is one round-trip: one seek, every byte at sequential
    // throughput. An all-miss batch resolves from the in-memory index and —
    // like Get returning NotFound — touches no disk.
    if (any_hit) SimulateRead(stored_bytes);
  }

  Status Delete(const Slice& key) override {
    std::unique_lock lock(mu_);
    if (!index_.contains(key.ToString())) return Status::OK();
    return AppendRecord(kOpDelete, key, Slice());
  }

  Status Write(const WriteBatch& batch) override {
    std::unique_lock lock(mu_);
    for (const auto& op : batch.ops()) {
      if (op.type == WriteBatch::OpType::kPut) {
        std::string stored;
        Encode(op.value, &stored);
        HG_RETURN_NOT_OK(AppendRecord(kOpPut, op.key, Slice(stored)));
      } else {
        HG_RETURN_NOT_OK(AppendRecord(kOpDelete, op.key, Slice()));
      }
    }
    if (options_.sync_writes) return SyncLocked();
    return Status::OK();
  }

  bool Contains(const Slice& key) const override {
    std::shared_lock lock(mu_);
    return index_.contains(key.ToString());
  }

  void ForEachKey(const Slice& prefix,
                  const std::function<void(const Slice&)>& fn) const override {
    std::shared_lock lock(mu_);
    for (const auto& [k, loc] : index_) {
      if (Slice(k).StartsWith(prefix)) fn(Slice(k));
    }
  }

  size_t KeyCount() const override {
    std::shared_lock lock(mu_);
    return index_.size();
  }

  size_t ValueBytes() const override {
    std::shared_lock lock(mu_);
    size_t total = 0;
    for (const auto& [k, loc] : index_) total += loc.size;
    return total;
  }

  Status Sync() override {
    std::unique_lock lock(mu_);
    return SyncLocked();
  }

 private:
  struct ValueLoc {
    uint64_t offset = 0;  // Byte offset of the stored value payload.
    uint64_t size = 0;    // Stored (possibly compressed) size.
  };

  void Encode(const Slice& value, std::string* stored) const {
    if (options_.compress_values) {
      CompressValue(value, stored);
    } else {
      stored->assign(value.data(), value.size());
    }
  }

  Status Decode(const std::string& stored, std::string* value) const {
    if (options_.compress_values) return DecompressValue(stored, value);
    *value = stored;
    return Status::OK();
  }

  // Models the disk the paper's Kyoto Cabinet lived on: a per-round-trip seek
  // latency plus a sequential-read throughput term over the bytes read.
  void SimulateRead(uint64_t stored_bytes) const {
    if (options_.read_latency_us == 0 && options_.read_throughput_mbps == 0) return;
    uint64_t micros = options_.read_latency_us;
    if (options_.read_throughput_mbps > 0) {
      micros += stored_bytes / options_.read_throughput_mbps;  // bytes/(MB/s)==us.
    }
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  Status SyncLocked() {
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
    }
    return Status::OK();
  }

  // Appends one record at end_offset_ and updates the index. Caller holds mu_.
  Status AppendRecord(char op, const Slice& key, const Slice& stored_value) {
    std::string rec;
    rec.push_back(op);
    PutVarint64(&rec, key.size());
    if (op == kOpPut) PutVarint64(&rec, stored_value.size());
    rec.append(key.data(), key.size());
    const uint64_t value_offset_in_rec = rec.size();
    if (op == kOpPut) rec.append(stored_value.data(), stored_value.size());
    const uint32_t checksum = static_cast<uint32_t>(HashBytes(rec.data(), rec.size()));
    PutFixed32(&rec, checksum);

    const ssize_t n = ::pwrite(fd_, rec.data(), rec.size(), end_offset_);
    if (n != static_cast<ssize_t>(rec.size())) {
      return Status::IOError("pwrite " + path_ + ": short write");
    }
    if (op == kOpPut) {
      index_[key.ToString()] =
          ValueLoc{end_offset_ + value_offset_in_rec, stored_value.size()};
    } else {
      index_.erase(key.ToString());
    }
    end_offset_ += rec.size();
    return Status::OK();
  }

  // Scans the log sequentially, rebuilding the index. Stops at the first
  // corrupt or truncated record and truncates its view of the log there.
  Status RecoverIndex() {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError("fstat " + path_ + ": " + std::strerror(errno));
    }
    const uint64_t file_size = static_cast<uint64_t>(st.st_size);
    std::string buf(file_size, '\0');
    if (file_size > 0) {
      const ssize_t n = ::pread(fd_, buf.data(), file_size, 0);
      if (n != static_cast<ssize_t>(file_size)) {
        return Status::IOError("pread " + path_ + ": short read during recovery");
      }
    }

    uint64_t offset = 0;
    Slice in(buf);
    while (!in.empty()) {
      Slice record_start = in;
      const char op = in[0];
      in.RemovePrefix(1);
      if (op != kOpPut && op != kOpDelete) break;
      uint64_t klen = 0, vlen = 0;
      if (!GetVarint64(&in, &klen)) break;
      if (op == kOpPut && !GetVarint64(&in, &vlen)) break;
      if (in.size() < klen + (op == kOpPut ? vlen : 0) + 4) break;
      const Slice key(in.data(), static_cast<size_t>(klen));
      in.RemovePrefix(static_cast<size_t>(klen));
      const uint64_t value_offset =
          offset + static_cast<uint64_t>(in.data() - record_start.data());
      if (op == kOpPut) in.RemovePrefix(static_cast<size_t>(vlen));
      const size_t payload_len = static_cast<size_t>(in.data() - record_start.data());
      uint32_t stored_checksum;
      if (!GetFixed32(&in, &stored_checksum)) break;
      const uint32_t computed =
          static_cast<uint32_t>(HashBytes(record_start.data(), payload_len));
      if (computed != stored_checksum) break;  // Torn/corrupt tail: stop here.
      if (op == kOpPut) {
        index_[key.ToString()] = ValueLoc{value_offset, vlen};
      } else {
        index_.erase(key.ToString());
      }
      offset += payload_len + 4;
    }
    end_offset_ = offset;
    return Status::OK();
  }

  std::string path_;
  KVStoreOptions options_;
  int fd_ = -1;
  uint64_t end_offset_ = 0;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, ValueLoc> index_;
};

}  // namespace

Status OpenDiskKVStore(const std::string& path, const KVStoreOptions& options,
                       std::unique_ptr<KVStore>* store) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  auto impl = std::make_unique<DiskKVStore>(path, options);
  HG_RETURN_NOT_OK(impl->Open());
  *store = std::move(impl);
  return Status::OK();
}

}  // namespace hgdb
