#include "kvstore/compression.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace hgdb {

namespace {

constexpr char kTagRaw = 0;
constexpr char kTagLz = 1;

// LZ parameters: window and match bounds chosen for small, delta-shaped
// payloads (lots of repeated varint id prefixes and attribute strings).
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 255 + kMinMatch;
constexpr size_t kWindow = 1 << 16;
constexpr size_t kHashBits = 15;

inline uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

namespace {

// Hash-chain head table, reused across calls: zeroing 256 KB per compressed
// value dominated small-blob compression (the per-column blocks of the codec
// layer especially). A generation stamp invalidates stale entries lazily, so
// a call only pays for the slots it actually probes.
struct MatchTable {
  std::vector<int64_t> head;
  std::vector<uint32_t> stamp;
  uint32_t gen = 0;

  MatchTable()
      : head(size_t{1} << kHashBits, -1), stamp(size_t{1} << kHashBits, 0) {}

  void NextGen() {
    if (++gen == 0) {  // Stamp wrap: one full reset every 2^32 calls.
      std::fill(stamp.begin(), stamp.end(), 0u);
      gen = 1;
    }
  }
  int64_t Get(uint32_t h) const { return stamp[h] == gen ? head[h] : -1; }
  void Put(uint32_t h, int64_t pos) {
    head[h] = pos;
    stamp[h] = gen;
  }
};

}  // namespace

// Token stream format:
//   literal run:  0x00, varint len, bytes
//   match:        0x01, varint distance, one byte (len - kMinMatch)
void LzCompress(const Slice& input, std::string* output) {
  output->clear();
  const char* data = input.data();
  const size_t n = input.size();
  thread_local MatchTable table;
  table.NextGen();

  size_t i = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      output->push_back(0x00);
      PutVarint64(output, end - literal_start);
      output->append(data + literal_start, end - literal_start);
    }
  };

  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(data + i);
    const int64_t cand = table.Get(h);
    table.Put(h, static_cast<int64_t>(i));
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
        std::memcmp(data + cand, data + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      const size_t max_len = std::min(kMaxMatch, n - i);
      while (len < max_len && data[cand + len] == data[i + len]) ++len;
      flush_literals(i);
      output->push_back(0x01);
      PutVarint64(output, i - static_cast<size_t>(cand));
      output->push_back(static_cast<char>(len - kMinMatch));
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
}

Status LzDecompress(const Slice& input, size_t decompressed_size, std::string* output) {
  output->clear();
  output->reserve(decompressed_size);
  Slice in = input;
  while (!in.empty()) {
    const char tag = in[0];
    in.RemovePrefix(1);
    if (tag == 0x00) {
      uint64_t len;
      if (!GetVarint64(&in, &len) || in.size() < len) {
        return Status::Corruption("lz: truncated literal run");
      }
      output->append(in.data(), static_cast<size_t>(len));
      in.RemovePrefix(static_cast<size_t>(len));
    } else if (tag == 0x01) {
      uint64_t dist;
      if (!GetVarint64(&in, &dist) || in.empty()) {
        return Status::Corruption("lz: truncated match");
      }
      const size_t len = static_cast<unsigned char>(in[0]) + kMinMatch;
      in.RemovePrefix(1);
      if (dist == 0 || dist > output->size()) {
        return Status::Corruption("lz: bad match distance");
      }
      // Byte-by-byte copy: matches may overlap their own output.
      size_t src = output->size() - static_cast<size_t>(dist);
      for (size_t k = 0; k < len; ++k) output->push_back((*output)[src + k]);
    } else {
      return Status::Corruption("lz: unknown token tag");
    }
  }
  if (output->size() != decompressed_size) {
    return Status::Corruption("lz: size mismatch after decompression");
  }
  return Status::OK();
}

namespace {

// Magic prefix of versioned codec blobs (mirrors codec::kMagic in
// src/codec/format.h; a codec_test case asserts the two stay equal). Those
// blobs arrive with their column blocks already LZ-compressed by the codec
// layer, so a second whole-value pass here would only burn CPU to conclude
// "incompressible" — store them raw immediately instead.
constexpr char kCodecMagic[3] = {'\xd1', '\x47', '\xc5'};

bool IsCodecBlob(const Slice& input) {
  return input.size() >= sizeof(kCodecMagic) &&
         std::memcmp(input.data(), kCodecMagic, sizeof(kCodecMagic)) == 0;
}

}  // namespace

void CompressValue(const Slice& input, std::string* output) {
  output->clear();
  if (IsCodecBlob(input)) {
    output->push_back(kTagRaw);
    output->append(input.data(), input.size());
    return;
  }
  std::string lz;
  LzCompress(input, &lz);
  // Keep the compressed form only if it actually saves space, including the
  // varint original-size header.
  std::string header;
  PutVarint64(&header, input.size());
  if (lz.size() + header.size() < input.size()) {
    output->push_back(kTagLz);
    output->append(header);
    output->append(lz);
  } else {
    output->push_back(kTagRaw);
    output->append(input.data(), input.size());
  }
}

Status DecompressValue(const Slice& input, std::string* output) {
  if (input.empty()) return Status::Corruption("compressed value: empty");
  Slice in = input;
  const char tag = in[0];
  in.RemovePrefix(1);
  if (tag == kTagRaw) {
    output->assign(in.data(), in.size());
    return Status::OK();
  }
  if (tag == kTagLz) {
    uint64_t original_size;
    if (!GetVarint64(&in, &original_size)) {
      return Status::Corruption("compressed value: truncated size header");
    }
    return LzDecompress(in, static_cast<size_t>(original_size), output);
  }
  return Status::Corruption("compressed value: unknown codec tag");
}

}  // namespace hgdb
