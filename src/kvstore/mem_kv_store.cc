#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "kvstore/compression.h"
#include "kvstore/kv_store.h"
#include "obs/metrics.h"

namespace hgdb {

namespace {

// Registry metrics, shared by every MemKVStore instance (concrete stores
// record; prefix wrappers deliberately do not, to avoid double counting).
obs::Counter& KvGets() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter("kvstore.gets");
  return *c;
}
obs::Counter& KvMultiGets() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.multigets");
  return *c;
}
obs::Counter& KvKeysRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.keys_read");
  return *c;
}
obs::Counter& KvBytesRead() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kvstore.bytes_read");
  return *c;
}

/// In-memory KVStore backed by a hash map. Values are stored in their
/// on-disk (possibly compressed) representation so that ValueBytes() reports
/// the same figure a disk store would.
class MemKVStore final : public KVStore {
 public:
  explicit MemKVStore(const KVStoreOptions& options) : options_(options) {}

  Status Put(const Slice& key, const Slice& value) override {
    std::string stored;
    Encode(value, &stored);
    std::unique_lock lock(mu_);
    auto [it, inserted] = map_.insert_or_assign(key.ToString(), std::move(stored));
    (void)it;
    (void)inserted;
    return Status::OK();
  }

  Status Get(const Slice& key, std::string* value) const override {
    size_t stored_size = 0;
    {
      std::shared_lock lock(mu_);
      auto it = map_.find(key.ToString());
      if (it == map_.end()) return Status::NotFound("key: " + key.ToString());
      stored_size = it->second.size();
      Status s = Decode(it->second, value);
      if (!s.ok()) return s;
    }
    KvGets().Add();
    KvKeysRead().Add();
    KvBytesRead().Add(stored_size);
    SimulateRead(stored_size);
    return Status::OK();
  }

  void MultiGet(const std::vector<Slice>& keys, std::vector<std::string>* values,
                std::vector<Status>* statuses) const override {
    values->resize(keys.size());
    statuses->assign(keys.size(), Status::OK());
    if (keys.empty()) return;
    size_t stored_bytes = 0;
    size_t hits = 0;
    bool any_hit = false;
    {
      std::shared_lock lock(mu_);
      for (size_t i = 0; i < keys.size(); ++i) {
        auto it = map_.find(keys[i].ToString());
        if (it == map_.end()) {
          (*statuses)[i] = Status::NotFound("key: " + keys[i].ToString());
          continue;
        }
        any_hit = true;
        ++hits;
        stored_bytes += it->second.size();
        (*statuses)[i] = Decode(it->second, &(*values)[i]);
      }
    }
    KvMultiGets().Add();
    KvKeysRead().Add(hits);
    KvBytesRead().Add(stored_bytes);
    // One round-trip for the whole batch: the seek latency is paid once, the
    // throughput term covers every byte actually read. An all-miss batch
    // reads nothing — like Get returning NotFound, it costs no simulated I/O.
    if (any_hit) SimulateRead(stored_bytes);
  }

  Status Delete(const Slice& key) override {
    std::unique_lock lock(mu_);
    map_.erase(key.ToString());
    return Status::OK();
  }

  Status Write(const WriteBatch& batch) override {
    std::unique_lock lock(mu_);
    for (const auto& op : batch.ops()) {
      if (op.type == WriteBatch::OpType::kPut) {
        std::string stored;
        Encode(op.value, &stored);
        map_.insert_or_assign(op.key, std::move(stored));
      } else {
        map_.erase(op.key);
      }
    }
    return Status::OK();
  }

  bool Contains(const Slice& key) const override {
    std::shared_lock lock(mu_);
    return map_.contains(key.ToString());
  }

  void ForEachKey(const Slice& prefix,
                  const std::function<void(const Slice&)>& fn) const override {
    std::shared_lock lock(mu_);
    for (const auto& [k, v] : map_) {
      if (Slice(k).StartsWith(prefix)) fn(Slice(k));
    }
  }

  size_t KeyCount() const override {
    std::shared_lock lock(mu_);
    return map_.size();
  }

  size_t ValueBytes() const override {
    std::shared_lock lock(mu_);
    size_t total = 0;
    for (const auto& [k, v] : map_) total += v.size();
    return total;
  }

  Status Sync() override { return Status::OK(); }

 private:
  void Encode(const Slice& value, std::string* stored) const {
    if (options_.compress_values) {
      CompressValue(value, stored);
    } else {
      stored->assign(value.data(), value.size());
    }
  }

  Status Decode(const std::string& stored, std::string* value) const {
    if (options_.compress_values) return DecompressValue(stored, value);
    *value = stored;
    return Status::OK();
  }

  // Models the disk the paper's Kyoto Cabinet lived on: a per-fetch seek
  // latency plus a sequential-read throughput term.
  void SimulateRead(size_t bytes) const {
    if (options_.read_latency_us == 0 && options_.read_throughput_mbps == 0) return;
    uint64_t micros = options_.read_latency_us;
    if (options_.read_throughput_mbps > 0) {
      micros += static_cast<uint64_t>(bytes) /
                options_.read_throughput_mbps;  // bytes / (MB/s) == us.
    }
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  KVStoreOptions options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace

std::unique_ptr<KVStore> NewMemKVStore(const KVStoreOptions& options) {
  return std::make_unique<MemKVStore>(options);
}

}  // namespace hgdb
