#ifndef HISTGRAPH_KVSTORE_KV_STORE_H_
#define HISTGRAPH_KVSTORE_KV_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace hgdb {

/// \brief Options controlling a key-value store instance.
struct KVStoreOptions {
  /// Compress values with the built-in LZ codec (the paper stores the index
  /// "in a compressed fashion (using built-in compression in Kyoto Cabinet)").
  bool compress_values = true;

  /// Call fsync after every write batch (durability at the cost of latency).
  bool sync_writes = false;

  /// Simulated storage performance, applied to every Get. The paper's
  /// experiments ran against a disk-resident Kyoto Cabinet on 2012-era EC2
  /// instances; on a modern machine with the store in RAM, fetch costs
  /// vanish and every disk-bound comparison flattens. The benchmark harness
  /// sets these to model a seek latency plus sequential-read throughput
  /// (see DESIGN.md data substitutions). 0 disables.
  uint32_t read_latency_us = 0;
  uint32_t read_throughput_mbps = 0;
};

/// \brief An ordered set of writes applied atomically (RocksDB idiom).
class WriteBatch {
 public:
  void Put(const Slice& key, const Slice& value) {
    ops_.push_back({OpType::kPut, key.ToString(), value.ToString()});
  }
  void Delete(const Slice& key) { ops_.push_back({OpType::kDelete, key.ToString(), {}}); }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }

  enum class OpType : unsigned char { kPut, kDelete };
  struct Op {
    OpType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

/// \brief Abstract persistent key-value store.
///
/// This is the storage substrate beneath the DeltaGraph — the role Kyoto
/// Cabinet plays in the paper ("we only require a simple get/put interface
/// from the storage engine, so we can easily plug in other key-value
/// stores"). Implementations must be safe for concurrent reads; writes are
/// externally synchronized by the index layer.
class KVStore {
 public:
  virtual ~KVStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Get(const Slice& key, std::string* value) const = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Write(const WriteBatch& batch) = 0;

  /// Batch read: `(*values)[i]` / `(*statuses)[i]` correspond to `keys[i]`
  /// (both vectors are resized). The base implementation loops over Get;
  /// stores that model storage performance override it so one batch pays the
  /// seek latency once (plus the per-byte throughput term for all values),
  /// which is what lets the prefetch layer amortize round-trips across the
  /// components of one delta.
  virtual void MultiGet(const std::vector<Slice>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) const {
    values->resize(keys.size());
    statuses->assign(keys.size(), Status::OK());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*statuses)[i] = Get(keys[i], &(*values)[i]);
    }
  }

  /// True if `key` exists.
  virtual bool Contains(const Slice& key) const = 0;

  /// Invokes `fn(key)` for every key with the given prefix (unspecified order).
  virtual void ForEachKey(const Slice& prefix,
                          const std::function<void(const Slice&)>& fn) const = 0;

  /// Number of stored keys.
  virtual size_t KeyCount() const = 0;

  /// Total bytes of stored (possibly compressed) values. Backs the disk-space
  /// columns of the Figure 7 / Figure 9 experiments.
  virtual size_t ValueBytes() const = 0;

  /// Flushes buffered writes to stable storage (no-op for memory stores).
  virtual Status Sync() = 0;
};

/// Creates a purely in-memory store (used in tests and as a fast backend).
std::unique_ptr<KVStore> NewMemKVStore(const KVStoreOptions& options = {});

/// A view of `base` that prepends `prefix` to every key, giving callers a
/// private namespace inside a shared store. The partitioned index uses one
/// wrapper per shard ("s0/", "s1/", ...) so N shard engines can share a
/// single physical store while keeping disjoint key spaces. MultiGet
/// forwards to the base store as one batch, so the batched-seek accounting
/// of simulated-disk stores is preserved. KeyCount/ForEachKey see only the
/// namespace; ValueBytes reports the shared substrate's total (per-prefix
/// value attribution is not tracked). `base` must outlive the wrapper.
std::unique_ptr<KVStore> NewPrefixKVStore(KVStore* base, std::string prefix);

/// Opens (creating if absent) a disk-backed store rooted at `path`, an
/// append-only log with an in-memory index that is rebuilt on open.
Status OpenDiskKVStore(const std::string& path, const KVStoreOptions& options,
                       std::unique_ptr<KVStore>* store);

}  // namespace hgdb

#endif  // HISTGRAPH_KVSTORE_KV_STORE_H_
