#ifndef HISTGRAPH_KVSTORE_COMPRESSION_H_
#define HISTGRAPH_KVSTORE_COMPRESSION_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace hgdb {

/// \brief Built-in value compression.
///
/// A small LZ77-family codec (greedy hash-chain matcher, byte-oriented
/// emission) standing in for Kyoto Cabinet's built-in compression. The format
/// is self-describing: a one-byte tag selects raw vs compressed so that
/// incompressible values are stored raw with 1 byte of overhead.

/// Compresses `input` into `*output` (tag byte + payload). Never fails; falls
/// back to raw storage when compression does not help.
void CompressValue(const Slice& input, std::string* output);

/// Decompresses a value produced by CompressValue.
Status DecompressValue(const Slice& input, std::string* output);

/// Raw LZ round-trip helpers (exposed for unit tests and micro-benchmarks).
void LzCompress(const Slice& input, std::string* output);
Status LzDecompress(const Slice& input, size_t decompressed_size, std::string* output);

}  // namespace hgdb

#endif  // HISTGRAPH_KVSTORE_COMPRESSION_H_
