// Key-prefixing KVStore wrapper: a private namespace inside a shared store.
//
// Every key is rewritten to `prefix + key` on the way in and stripped on the
// way out (ForEachKey). The wrapper holds no state beyond the prefix, so it
// is as thread-safe as the base store. Batch reads are forwarded as a single
// base MultiGet: a simulated-disk base store charges one seek for the whole
// batch, exactly as it would for an unwrapped caller — this matters because
// each partition of a PartitionedDeltaGraph drains its prefetch batches
// through one of these wrappers.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kvstore/kv_store.h"

namespace hgdb {
namespace {

class PrefixKVStore : public KVStore {
 public:
  PrefixKVStore(KVStore* base, std::string prefix)
      : base_(base), prefix_(std::move(prefix)) {}

  Status Put(const Slice& key, const Slice& value) override {
    return base_->Put(Prefixed(key), value);
  }

  Status Get(const Slice& key, std::string* value) const override {
    return base_->Get(Prefixed(key), value);
  }

  Status Delete(const Slice& key) override { return base_->Delete(Prefixed(key)); }

  Status Write(const WriteBatch& batch) override {
    WriteBatch prefixed;
    for (const WriteBatch::Op& op : batch.ops()) {
      if (op.type == WriteBatch::OpType::kPut) {
        prefixed.Put(prefix_ + op.key, op.value);
      } else {
        prefixed.Delete(prefix_ + op.key);
      }
    }
    return base_->Write(prefixed);
  }

  void MultiGet(const std::vector<Slice>& keys, std::vector<std::string>* values,
                std::vector<Status>* statuses) const override {
    // Prefixed copies must outlive the base call; one vector owns them.
    std::vector<std::string> owned;
    owned.reserve(keys.size());
    std::vector<Slice> prefixed;
    prefixed.reserve(keys.size());
    for (const Slice& key : keys) {
      owned.push_back(Prefixed(key));
      prefixed.emplace_back(owned.back());
    }
    base_->MultiGet(prefixed, values, statuses);
  }

  bool Contains(const Slice& key) const override {
    return base_->Contains(Prefixed(key));
  }

  void ForEachKey(const Slice& prefix,
                  const std::function<void(const Slice&)>& fn) const override {
    base_->ForEachKey(prefix_ + prefix.ToString(), [this, &fn](const Slice& key) {
      fn(Slice(key.data() + prefix_.size(), key.size() - prefix_.size()));
    });
  }

  size_t KeyCount() const override {
    // The base store cannot count per-namespace; walk the prefix (O(keys)).
    size_t count = 0;
    ForEachKey(Slice(), [&count](const Slice&) { ++count; });
    return count;
  }

  size_t ValueBytes() const override {
    // Shared-substrate total; see NewPrefixKVStore's contract.
    return base_->ValueBytes();
  }

  Status Sync() override { return base_->Sync(); }

 private:
  std::string Prefixed(const Slice& key) const { return prefix_ + key.ToString(); }

  KVStore* const base_;
  const std::string prefix_;
};

}  // namespace

std::unique_ptr<KVStore> NewPrefixKVStore(KVStore* base, std::string prefix) {
  return std::make_unique<PrefixKVStore>(base, std::move(prefix));
}

}  // namespace hgdb
