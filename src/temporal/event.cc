#include "temporal/event.h"

#include <sstream>

namespace hgdb {

Event Event::AddNode(Timestamp t, NodeId n) {
  Event e;
  e.type = EventType::kAddNode;
  e.time = t;
  e.node = n;
  return e;
}

Event Event::DeleteNode(Timestamp t, NodeId n) {
  Event e;
  e.type = EventType::kDeleteNode;
  e.time = t;
  e.node = n;
  return e;
}

Event Event::AddEdge(Timestamp t, EdgeId id, NodeId src, NodeId dst, bool directed) {
  Event e;
  e.type = EventType::kAddEdge;
  e.time = t;
  e.edge = id;
  e.src = src;
  e.dst = dst;
  e.directed = directed;
  return e;
}

Event Event::DeleteEdge(Timestamp t, EdgeId id, NodeId src, NodeId dst, bool directed) {
  Event e;
  e.type = EventType::kDeleteEdge;
  e.time = t;
  e.edge = id;
  e.src = src;
  e.dst = dst;
  e.directed = directed;
  return e;
}

Event Event::SetNodeAttr(Timestamp t, NodeId n, std::string key,
                         std::optional<std::string> old_value,
                         std::optional<std::string> new_value) {
  Event e;
  e.type = EventType::kNodeAttr;
  e.time = t;
  e.node = n;
  e.key = std::move(key);
  e.old_value = std::move(old_value);
  e.new_value = std::move(new_value);
  return e;
}

Event Event::SetEdgeAttr(Timestamp t, EdgeId id, std::string key,
                         std::optional<std::string> old_value,
                         std::optional<std::string> new_value) {
  Event e;
  e.type = EventType::kEdgeAttr;
  e.time = t;
  e.edge = id;
  e.key = std::move(key);
  e.old_value = std::move(old_value);
  e.new_value = std::move(new_value);
  return e;
}

Event Event::TransientEdge(Timestamp t, NodeId src, NodeId dst, std::string payload) {
  Event e;
  e.type = EventType::kTransientEdge;
  e.time = t;
  e.src = src;
  e.dst = dst;
  e.key = std::move(payload);
  return e;
}

Event Event::TransientNode(Timestamp t, NodeId n, std::string payload) {
  Event e;
  e.type = EventType::kTransientNode;
  e.time = t;
  e.node = n;
  e.key = std::move(payload);
  return e;
}

ComponentMask Event::component() const {
  switch (type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
      return kCompStruct;
    case EventType::kNodeAttr:
      return kCompNodeAttr;
    case EventType::kEdgeAttr:
      return kCompEdgeAttr;
    case EventType::kTransientEdge:
    case EventType::kTransientNode:
      return kCompTransient;
  }
  return kCompStruct;
}

namespace {

void PutOptionalString(std::string* dst, const std::optional<std::string>& v) {
  if (v.has_value()) {
    dst->push_back(1);
    PutLengthPrefixedSlice(dst, Slice(*v));
  } else {
    dst->push_back(0);
  }
}

Status GetOptionalString(Slice* input, std::optional<std::string>* v) {
  if (input->empty()) return Status::Corruption("event: truncated optional");
  const char present = (*input)[0];
  input->RemovePrefix(1);
  if (present == 0) {
    v->reset();
    return Status::OK();
  }
  std::string s;
  HG_RETURN_NOT_OK(ExpectLengthPrefixedString(input, &s, "event optional string"));
  *v = std::move(s);
  return Status::OK();
}

}  // namespace

void Event::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  PutVarsint64(out, time);
  switch (type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
      PutVarint64(out, node);
      break;
    case EventType::kAddEdge:
    case EventType::kDeleteEdge:
      PutVarint64(out, edge);
      PutVarint64(out, src);
      PutVarint64(out, dst);
      out->push_back(directed ? 1 : 0);
      break;
    case EventType::kNodeAttr:
      PutVarint64(out, node);
      PutLengthPrefixedSlice(out, Slice(key));
      PutOptionalString(out, old_value);
      PutOptionalString(out, new_value);
      break;
    case EventType::kEdgeAttr:
      PutVarint64(out, edge);
      // Endpoints ride along so partitioned indexes can co-locate the event
      // with its edge (the paper routes every event by its node ids).
      PutVarint64(out, src);
      PutVarint64(out, dst);
      PutLengthPrefixedSlice(out, Slice(key));
      PutOptionalString(out, old_value);
      PutOptionalString(out, new_value);
      break;
    case EventType::kTransientEdge:
      PutVarint64(out, src);
      PutVarint64(out, dst);
      PutLengthPrefixedSlice(out, Slice(key));
      break;
    case EventType::kTransientNode:
      PutVarint64(out, node);
      PutLengthPrefixedSlice(out, Slice(key));
      break;
  }
}

Status Event::DecodeFrom(Slice* input, Event* out) {
  if (input->empty()) return Status::Corruption("event: empty input");
  const auto type = static_cast<EventType>((*input)[0]);
  if (static_cast<unsigned>(type) > static_cast<unsigned>(EventType::kTransientNode)) {
    return Status::Corruption("event: bad type byte");
  }
  input->RemovePrefix(1);
  Event e;
  e.type = type;
  if (!GetVarsint64(input, &e.time)) return Status::Corruption("event: truncated time");
  uint64_t v = 0;
  switch (type) {
    case EventType::kAddNode:
    case EventType::kDeleteNode:
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event node"));
      e.node = v;
      break;
    case EventType::kAddEdge:
    case EventType::kDeleteEdge: {
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event edge"));
      e.edge = v;
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event src"));
      e.src = v;
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event dst"));
      e.dst = v;
      if (input->empty()) return Status::Corruption("event: truncated directed flag");
      e.directed = (*input)[0] != 0;
      input->RemovePrefix(1);
      break;
    }
    case EventType::kNodeAttr:
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event node"));
      e.node = v;
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(input, &e.key, "event attr key"));
      HG_RETURN_NOT_OK(GetOptionalString(input, &e.old_value));
      HG_RETURN_NOT_OK(GetOptionalString(input, &e.new_value));
      break;
    case EventType::kEdgeAttr:
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event edge"));
      e.edge = v;
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event src"));
      e.src = v;
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event dst"));
      e.dst = v;
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(input, &e.key, "event attr key"));
      HG_RETURN_NOT_OK(GetOptionalString(input, &e.old_value));
      HG_RETURN_NOT_OK(GetOptionalString(input, &e.new_value));
      break;
    case EventType::kTransientEdge:
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event src"));
      e.src = v;
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event dst"));
      e.dst = v;
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(input, &e.key, "event payload"));
      break;
    case EventType::kTransientNode:
      HG_RETURN_NOT_OK(ExpectVarint64(input, &v, "event node"));
      e.node = v;
      HG_RETURN_NOT_OK(ExpectLengthPrefixedString(input, &e.key, "event payload"));
      break;
  }
  *out = std::move(e);
  return Status::OK();
}

std::string Event::ToString() const {
  std::ostringstream os;
  switch (type) {
    case EventType::kAddNode:
      os << "{NN, N:" << node;
      break;
    case EventType::kDeleteNode:
      os << "{DN, N:" << node;
      break;
    case EventType::kAddEdge:
      os << "{NE, E:" << edge << ", N:" << src << ", N:" << dst
         << ", directed:" << (directed ? "yes" : "no");
      break;
    case EventType::kDeleteEdge:
      os << "{DE, E:" << edge << ", N:" << src << ", N:" << dst
         << ", directed:" << (directed ? "yes" : "no");
      break;
    case EventType::kNodeAttr:
      os << "{UNA, N:" << node << ", '" << key << "', old:"
         << (old_value ? "'" + *old_value + "'" : "-") << ", new:"
         << (new_value ? "'" + *new_value + "'" : "-");
      break;
    case EventType::kEdgeAttr:
      os << "{UEA, E:" << edge << ", '" << key << "', old:"
         << (old_value ? "'" + *old_value + "'" : "-") << ", new:"
         << (new_value ? "'" + *new_value + "'" : "-");
      break;
    case EventType::kTransientEdge:
      os << "{TE, N:" << src << ", N:" << dst << ", '" << key << "'";
      break;
    case EventType::kTransientNode:
      os << "{TN, N:" << node << ", '" << key << "'";
      break;
  }
  os << ", t=" << time << "}";
  return os.str();
}

bool Event::operator==(const Event& other) const {
  return type == other.type && time == other.time && node == other.node &&
         edge == other.edge && src == other.src && dst == other.dst &&
         directed == other.directed && key == other.key &&
         old_value == other.old_value && new_value == other.new_value;
}

}  // namespace hgdb
