#include "temporal/event_list.h"

#include <algorithm>

#include "common/coding.h"

namespace hgdb {

bool EventList::IsChronological() const {
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i - 1].time > events_[i].time) return false;
  }
  return true;
}

size_t EventList::CountComponent(ComponentMask component) const {
  size_t n = 0;
  for (const auto& e : events_) {
    if (e.component() & component) ++n;
  }
  return n;
}

void EventList::EncodeComponent(ComponentMask component, std::string* out) const {
  out->clear();
  PutVarint64(out, CountComponent(component));
  for (size_t i = 0; i < events_.size(); ++i) {
    if ((events_[i].component() & component) == 0) continue;
    PutVarint64(out, i);  // Sequence number within the full list.
    events_[i].EncodeTo(out);
  }
}

Status EventList::DecodeAndMergeComponent(const Slice& blob) {
  Slice in = blob;
  uint64_t count = 0;
  HG_RETURN_NOT_OK(ExpectVarint64(&in, &count, "eventlist component count"));
  pending_.reserve(pending_.size() + static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq = 0;
    HG_RETURN_NOT_OK(ExpectVarint64(&in, &seq, "eventlist seq"));
    Event e;
    HG_RETURN_NOT_OK(Event::DecodeFrom(&in, &e));
    pending_.push_back(SeqEvent{seq, std::move(e)});
  }
  if (!in.empty()) return Status::Corruption("eventlist component: trailing bytes");
  return Status::OK();
}

void EventList::FinalizeMerge() {
  std::sort(pending_.begin(), pending_.end(),
            [](const SeqEvent& a, const SeqEvent& b) { return a.seq < b.seq; });
  events_.reserve(events_.size() + pending_.size());
  for (auto& se : pending_) events_.push_back(std::move(se.event));
  pending_.clear();
}

}  // namespace hgdb
