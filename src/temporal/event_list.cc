#include "temporal/event_list.h"

#include <algorithm>

#include "common/coding.h"

namespace hgdb {

bool EventList::IsChronological() const {
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i - 1].time > events_[i].time) return false;
  }
  return true;
}

size_t EventList::CountComponent(ComponentMask component) const {
  size_t n = 0;
  for (const auto& e : events_) {
    if (e.component() & component) ++n;
  }
  return n;
}

void EventList::EncodeComponent(ComponentMask component, std::string* out) const {
  codec::EncodeEventListComponent(events_, component, out);
}

Status EventList::DecodeAndMergeComponent(const Slice& blob) {
  return codec::DecodeEventListComponent(blob, &pending_);
}

void EventList::FinalizeMerge() {
  std::sort(pending_.begin(), pending_.end(),
            [](const codec::SeqEvent& a, const codec::SeqEvent& b) {
              return a.seq < b.seq;
            });
  events_.reserve(events_.size() + pending_.size());
  for (auto& se : pending_) events_.push_back(std::move(se.event));
  pending_.clear();
}

}  // namespace hgdb
