#ifndef HISTGRAPH_TEMPORAL_EVENT_LIST_H_
#define HISTGRAPH_TEMPORAL_EVENT_LIST_H_

#include <string>
#include <vector>

#include "codec/event_codec.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "temporal/event.h"

namespace hgdb {

/// \brief A chronologically ordered list of events (Section 3.1).
///
/// Leaf-eventlists are the deltas stored on the bidirectional edges between
/// adjacent DeltaGraph leaves. They are persisted *columnar*: the structure,
/// node-attribute, edge-attribute, and transient events are serialized as
/// separate blobs so that a query fetches only the components it needs
/// (Section 4.2). Each event keeps its global sequence number within the list
/// so that selective loads still apply in the exact original order.
class EventList {
 public:
  EventList() = default;
  explicit EventList(std::vector<Event> events) : events_(std::move(events)) {}

  void Append(Event e) { events_.push_back(std::move(e)); }
  void Clear() { events_.clear(); }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& operator[](size_t i) const { return events_[i]; }
  const std::vector<Event>& events() const { return events_; }

  /// Time of the first / last event; kMinTimestamp/kMaxTimestamp when empty.
  Timestamp StartTime() const { return empty() ? kMinTimestamp : events_.front().time; }
  Timestamp EndTime() const { return empty() ? kMaxTimestamp : events_.back().time; }

  /// Verifies chronological ordering.
  bool IsChronological() const;

  /// Number of events belonging to the given component.
  size_t CountComponent(ComponentMask component) const;

  /// Serializes the events matching `component` (one bit or a mask — the
  /// persisted recent eventlist uses kCompAllWithTransient) as a columnar
  /// blob of SoA columns keyed by each event's sequence number in this list
  /// (delegates to src/codec/).
  void EncodeComponent(ComponentMask component, std::string* out) const;

  /// Merges a component blob produced by EncodeComponent into this list.
  /// Events from multiple component blobs interleave by sequence number, so
  /// decoding {struct} or {struct, nodeattr} yields correctly ordered lists.
  Status DecodeAndMergeComponent(const Slice& blob);

  /// Sorts the merged events by sequence number. Call once after all
  /// DecodeAndMergeComponent calls.
  void FinalizeMerge();

 private:
  std::vector<Event> events_;
  std::vector<codec::SeqEvent> pending_;  ///< Accumulated by DecodeAndMergeComponent.
};

}  // namespace hgdb

#endif  // HISTGRAPH_TEMPORAL_EVENT_LIST_H_
