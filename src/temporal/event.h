#ifndef HISTGRAPH_TEMPORAL_EVENT_H_
#define HISTGRAPH_TEMPORAL_EVENT_H_

#include <optional>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace hgdb {

/// \brief The kind of atomic activity an Event records (Section 3.1).
///
/// An event is atomic: it cannot be broken into smaller activities. The valid
/// time interval of an element is expressed by a pair of add/delete events.
/// Deleting a node (edge) with attributes is therefore *two or more* events:
/// attribute-removal events followed by the structural delete. This keeps
/// every event independently invertible, which the DeltaGraph needs to apply
/// eventlists in either direction of time (G_k = G_{k-1} + E, G_{k-1} = G_k - E).
enum class EventType : unsigned char {
  kAddNode = 0,
  kDeleteNode = 1,
  kAddEdge = 2,
  kDeleteEdge = 3,
  kNodeAttr = 4,       ///< Set / change / remove a node attribute.
  kEdgeAttr = 5,       ///< Set / change / remove an edge attribute.
  kTransientEdge = 6,  ///< An edge valid only at this instant (e.g. a message).
  kTransientNode = 7,  ///< A node valid only at this instant.
};

/// \brief Which columnar component of a delta / eventlist an item belongs to.
///
/// The paper separates a delta into Delta_struct, Delta_nodeattr,
/// Delta_edgeattr, and (for leaf-eventlists) E_transient, stored under
/// separate keys so a query fetches only what it needs (Section 4.2).
enum ComponentMask : unsigned {
  kCompStruct = 1u << 0,
  kCompNodeAttr = 1u << 1,
  kCompEdgeAttr = 1u << 2,
  kCompTransient = 1u << 3,
  kCompAll = kCompStruct | kCompNodeAttr | kCompEdgeAttr,
  kCompAllWithTransient = kCompAll | kCompTransient,
};

/// Number of distinct components.
inline constexpr int kNumComponents = 4;

/// \brief One atomic change to the historical graph.
///
/// Events are bidirectional: applying an event forward performs the activity,
/// applying it backward undoes it exactly. Attribute events carry both the
/// old and the new value for this reason (mirroring the paper's UNA example,
/// which records old and new).
struct Event {
  EventType type = EventType::kAddNode;
  Timestamp time = 0;

  NodeId node = kInvalidNodeId;  ///< Node events and node-attribute owner.
  EdgeId edge = kInvalidEdgeId;  ///< Edge events and edge-attribute owner.
  NodeId src = kInvalidNodeId;   ///< Edge endpoints (add/delete/transient edge).
  NodeId dst = kInvalidNodeId;
  bool directed = false;

  std::string key;  ///< Attribute name; payload label for transient events.
  std::optional<std::string> old_value;  ///< nullopt = attribute was absent.
  std::optional<std::string> new_value;  ///< nullopt = attribute removed.

  // -- Factories ------------------------------------------------------------
  static Event AddNode(Timestamp t, NodeId n);
  static Event DeleteNode(Timestamp t, NodeId n);
  static Event AddEdge(Timestamp t, EdgeId e, NodeId src, NodeId dst, bool directed);
  static Event DeleteEdge(Timestamp t, EdgeId e, NodeId src, NodeId dst, bool directed);
  static Event SetNodeAttr(Timestamp t, NodeId n, std::string key,
                           std::optional<std::string> old_value,
                           std::optional<std::string> new_value);
  static Event SetEdgeAttr(Timestamp t, EdgeId e, std::string key,
                           std::optional<std::string> old_value,
                           std::optional<std::string> new_value);
  static Event TransientEdge(Timestamp t, NodeId src, NodeId dst, std::string payload);
  static Event TransientNode(Timestamp t, NodeId n, std::string payload);

  /// The columnar component this event belongs to.
  ComponentMask component() const;

  /// True for transient (single-instant) events, which by definition are not
  /// part of any snapshot and are only returned by interval queries.
  bool is_transient() const {
    return type == EventType::kTransientEdge || type == EventType::kTransientNode;
  }

  /// Serializes this event (without its sequence number) onto `dst`.
  void EncodeTo(std::string* dst) const;

  /// Decodes an event produced by EncodeTo.
  static Status DecodeFrom(Slice* input, Event* out);

  /// Debug rendering, e.g. "{NE, N:23, N:4590, directed:no, t=1234}".
  std::string ToString() const;

  bool operator==(const Event& other) const;
};

}  // namespace hgdb

#endif  // HISTGRAPH_TEMPORAL_EVENT_H_
