#include "obs/sampler.h"

#include <cstdlib>

namespace hgdb {
namespace obs {

namespace {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace

TraceSampler& TraceSampler::Global() {
  static TraceSampler* s = [] {
    auto* sampler = new TraceSampler();  // never destroyed
    sampler->Configure(
        static_cast<uint32_t>(EnvInt("HISTGRAPH_TRACE_SAMPLE", 0)),
        EnvInt("HISTGRAPH_SLOW_QUERY_US", 0));
    return sampler;
  }();
  return *s;
}

void TraceSampler::Configure(uint32_t every_n, int64_t arm_threshold_us,
                             uint32_t arm_budget) {
  every_n_.store(every_n, std::memory_order_relaxed);
  arm_threshold_us_.store(arm_threshold_us, std::memory_order_relaxed);
  arm_budget_.store(arm_budget, std::memory_order_relaxed);
}

bool TraceSampler::Sample() {
  // Armed tail tracing wins over the probabilistic schedule: consume a slot.
  uint32_t armed = armed_remaining_.load(std::memory_order_relaxed);
  while (armed > 0) {
    if (armed_remaining_.compare_exchange_weak(armed, armed - 1,
                                               std::memory_order_relaxed)) {
      sampled_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  const uint32_t n = every_n_.load(std::memory_order_relaxed);
  if (n == 0) return false;
  // Deterministic 1-in-N off a shared counter (not per-thread random): over
  // any window of N queries exactly one is sampled, which tests pin.
  const uint64_t c = counter_.fetch_add(1, std::memory_order_relaxed);
  if (c % n != 0) return false;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TraceSampler::Observe(uint64_t latency_us) {
  const int64_t threshold = arm_threshold_us_.load(std::memory_order_relaxed);
  if (threshold <= 0 || latency_us < static_cast<uint64_t>(threshold)) return;
  slow_observed_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t budget = arm_budget_.load(std::memory_order_relaxed);
  // Top armed slots back up to the budget — never above it, so a burst of
  // slow queries extends forced tracing instead of stacking it unboundedly.
  uint32_t cur = armed_remaining_.load(std::memory_order_relaxed);
  while (cur < budget && !armed_remaining_.compare_exchange_weak(
                             cur, budget, std::memory_order_relaxed)) {
  }
}

void TraceSampler::ResetCounters() {
  counter_.store(0, std::memory_order_relaxed);
  armed_remaining_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  slow_observed_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace hgdb
