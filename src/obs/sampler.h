#ifndef HISTGRAPH_OBS_SAMPLER_H_
#define HISTGRAPH_OBS_SAMPLER_H_

#include <atomic>
#include <cstdint>

namespace hgdb {
namespace obs {

/// \brief Decides which queries carry a QueryTrace when tracing is not
/// globally forced: probabilistic 1-in-N sampling plus "tail arming".
///
/// Full tracing (`SetTraceEnabled(true)` / HISTGRAPH_TRACE=1) traces every
/// query; that is fine for a debugging session but not for always-on
/// production use. The sampler keeps tracing on under full traffic within
/// the <2% observability-overhead gate by tracing only:
///
///  - **1-in-N** queries, deterministically off a shared counter (N = 0
///    disables sampling entirely, N = 1 traces everything), and
///  - the next `arm_budget` queries after any query whose *observed* latency
///    crossed the arm threshold ("tail arming"): a slow query cannot be
///    traced retroactively, but tail latency is bursty — a deadline miss or
///    a cold shard usually hits several queries in a row, so arming catches
///    the burst's successors with their full span trees.
///
/// All state is relaxed atomics; Sample()/Observe() take no lock and cost a
/// handful of relaxed operations, so callers may consult the sampler
/// unconditionally on the query path. Sampled traces land in the
/// FlightRecorder (see flight_recorder.h) when they finish.
///
/// The process-wide instance is `TraceSampler::Global()`, initialized from
/// the environment: HISTGRAPH_TRACE_SAMPLE (the N of 1-in-N; default 0 =
/// off), HISTGRAPH_SLOW_QUERY_US (arm threshold in microseconds; default 0 =
/// arming off). HistGraphServer reconfigures it from its options (see
/// src/server/README.md).
class TraceSampler {
 public:
  /// The process-wide sampler every session/server consults.
  static TraceSampler& Global();

  TraceSampler() = default;

  /// `every_n`: trace 1 in N queries (0 = off, 1 = all). `arm_threshold_us`:
  /// observed latencies at or above this arm tail tracing (0 = arming off).
  /// `arm_budget`: how many subsequent queries an over-threshold observation
  /// forces tracing for.
  void Configure(uint32_t every_n, int64_t arm_threshold_us,
                 uint32_t arm_budget = 4);

  /// True when the query consulting the sampler should allocate a trace.
  /// Consumes one armed slot first when tail tracing is armed.
  bool Sample();

  /// Feeds one completed query's latency back. At/above the arm threshold,
  /// (re-)arms forced tracing of the next `arm_budget` queries. Cheap enough
  /// to call unconditionally (two relaxed loads in the common case).
  void Observe(uint64_t latency_us);

  uint32_t every_n() const { return every_n_.load(std::memory_order_relaxed); }
  int64_t arm_threshold_us() const {
    return arm_threshold_us_.load(std::memory_order_relaxed);
  }
  /// Queries Sample() said yes to (probabilistic + armed).
  uint64_t sampled() const { return sampled_.load(std::memory_order_relaxed); }
  /// Observations that crossed the arm threshold.
  uint64_t slow_observed() const {
    return slow_observed_.load(std::memory_order_relaxed);
  }
  /// Armed slots left right now (0 = tail tracing not armed).
  uint32_t armed_remaining() const {
    return armed_remaining_.load(std::memory_order_relaxed);
  }

  /// Zeroes the counters and armed state, keeping the configuration. Tests
  /// use this for deterministic sample-count assertions.
  void ResetCounters();

 private:
  std::atomic<uint32_t> every_n_{0};
  std::atomic<int64_t> arm_threshold_us_{0};
  std::atomic<uint32_t> arm_budget_{4};

  std::atomic<uint64_t> counter_{0};  ///< Queries seen by Sample().
  std::atomic<uint32_t> armed_remaining_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> slow_observed_{0};
};

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_SAMPLER_H_
