#ifndef HISTGRAPH_OBS_TRACE_H_
#define HISTGRAPH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace hgdb {
namespace obs {

/// \brief Per-query trace: a tree of timed spans plus query-wide tallies,
/// threaded explicitly through the retrieval path (session → planner →
/// prefetcher → fetch cache → delta store → kvstore/io → executor → merge).
///
/// The trace is passed as a `TraceCtx` value — a {trace, current-span} pair —
/// rather than a thread_local, because one query's work hops across IoPool
/// and TaskPool threads; whoever spawns work captures its ctx into the
/// closure. A null `TraceCtx.trace` means "not tracing" and every recording
/// call is a no-op, so instrumented code never branches on a global.
///
/// Span mutations take a mutex (spans are created at plan/drain/execute
/// granularity — dozens per query, not millions); the high-frequency tallies
/// (fetch counts, LRU hits, bytes) are relaxed atomics updated lock-free.
///
/// Tracing is enabled per-session: `RetrievalSession`/`Partitioned-
/// RetrievalSession` (and the one-shot DeltaGraph::GetSnapshots entry points)
/// allocate a QueryTrace when `TraceEnabled()` — set by HISTGRAPH_TRACE=1 or
/// programmatically. When HISTGRAPH_TRACE is set the finished trace is also
/// dumped as JSON to stderr (or to the file named by HISTGRAPH_TRACE_OUT);
/// with programmatic enable the caller reads `session->LastTrace()` instead.

class QueryTrace;

using SpanId = int32_t;
inline constexpr SpanId kNoSpan = -1;

/// True when sessions should allocate traces. Initialized from the
/// HISTGRAPH_TRACE environment variable; overridable at runtime.
bool TraceEnabled();
void SetTraceEnabled(bool on);

/// The unit of trace propagation: which trace (if any) and which span new
/// child work should attach under. Copy freely; null trace = not tracing.
struct TraceCtx {
  QueryTrace* trace = nullptr;
  SpanId span = kNoSpan;

  explicit operator bool() const { return trace != nullptr; }
};

class QueryTrace {
 public:
  using AttrValue = std::variant<int64_t, double, std::string>;

  QueryTrace();

  /// Nanoseconds since this trace was created (steady clock).
  int64_t NowNs() const;

  /// Opens a span under `parent` (kNoSpan = root level). Thread-safe.
  SpanId BeginSpan(const std::string& name, SpanId parent);
  /// Closes the span at the current time. Idempotent.
  void EndSpan(SpanId id);
  /// Attaches/overwrites a named attribute on an open or closed span.
  void SetAttr(SpanId id, const std::string& key, AttrValue v);
  /// Attaches several attributes in one lock acquisition — the per-fetch
  /// hot path books its whole read ledger this way. Keys are appended
  /// without overwrite checks, so callers pass each key at most once and
  /// only on spans they just created.
  void SetAttrs(SpanId id,
                std::initializer_list<std::pair<const char*, AttrValue>> kvs);

  /// Closes any still-open spans and freezes end_ns for the whole trace.
  void Finish();

  /// The whole trace as one JSON object: {"query": ..., "summary": {...},
  /// "spans": [{id, parent, name, start_us, dur_us, attrs...}]}.
  std::string ToJSON() const;

  void set_query_label(std::string label) { query_label_ = std::move(label); }
  const std::string& query_label() const { return query_label_; }

  /// Total trace duration so far — frozen at Finish().
  int64_t TotalNs() const;

  // -- Query identity (plain fields; written by the owning thread before
  // Finish, read by the flight recorder after). -----------------------------

  /// The pinned frontier's epoch / visible-event count (sessions record the
  /// newest pinned frontier; a partitioned query records the max shard epoch
  /// and the summed per-shard event count).
  void set_epoch(uint64_t e) { epoch_ = e; }
  uint64_t epoch() const { return epoch_; }
  void set_event_count(uint64_t n) { event_count_ = n; }
  uint64_t event_count() const { return event_count_; }

  /// Cross-shard execution skew (busy_max * shards / busy_sum; 0 = n/a).
  void set_shard_skew(double s) { shard_skew_ = s; }
  double shard_skew() const { return shard_skew_; }

  /// A terminal event the query hit: "" (none), "deadline", "admission",
  /// "slow". Any non-empty event routes the finished trace into the flight
  /// recorder's slow-query log regardless of latency.
  void set_event(std::string e) { event_ = std::move(e); }
  const std::string& event() const { return event_; }

  // -- Query-wide tallies (relaxed atomics; summarized in ToJSON). ---------
  // A "fetch" is one payload (delta or event list) requested through the
  // fetch cache or directly from the DeltaStore during this query.
  std::atomic<uint64_t> fetches_total{0};      ///< All payload fetches.
  std::atomic<uint64_t> fetches_prefetched{0}; ///< Served by prefetch (incl. waits on in-flight prefetch).
  std::atomic<uint64_t> fetches_demand{0};     ///< Fetched on the demand path.
  std::atomic<uint64_t> prefetch_issued{0};    ///< Prefetch requests enqueued.
  std::atomic<uint64_t> lru_hits{0};           ///< Decoded-LRU hits.
  std::atomic<uint64_t> lru_misses{0};         ///< Decoded-LRU misses (hit the store).
  std::atomic<uint64_t> kv_reads{0};           ///< Keys read from the KVStore.
  std::atomic<uint64_t> bytes_read{0};         ///< Blob bytes fetched from the store.
  std::atomic<uint64_t> bytes_decoded{0};      ///< Blob bytes decoded into objects.

  /// fetches_prefetched / fetches_total (1.0 when there were no fetches).
  double PrefetchCoverage() const;

  struct Span {
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    std::string name;
    int64_t start_ns = 0;
    int64_t end_ns = -1;  // -1 = still open
    std::vector<std::pair<std::string, AttrValue>> attrs;
  };

  /// Snapshot of all spans (for tests and the trace viewer).
  std::vector<Span> Spans() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::string query_label_;
  uint64_t epoch_ = 0;
  uint64_t event_count_ = 0;
  double shard_skew_ = 0;
  std::string event_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  int64_t finished_ns_ = -1;
};

/// One span as a JSON object ({"id":..,"parent":..,"name":..,"start_us":..,
/// "dur_us":..,<attrs>}), exactly as QueryTrace::ToJSON renders it. Shared
/// with the flight recorder, which serializes retained span trees lazily.
std::string SpanToJSON(const QueryTrace::Span& span);

/// RAII span: opens on construction (when ctx is tracing), closes on
/// destruction. `ctx()` yields the context for child work.
class ScopedSpan {
 public:
  ScopedSpan(TraceCtx parent, const std::string& name) : trace_(parent.trace) {
    if (trace_) id_ = trace_->BeginSpan(name, parent.span);
  }
  ~ScopedSpan() {
    if (trace_) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceCtx ctx() const { return TraceCtx{trace_, id_}; }
  void SetAttr(const std::string& key, QueryTrace::AttrValue v) {
    if (trace_) trace_->SetAttr(id_, key, std::move(v));
  }
  void SetAttrs(
      std::initializer_list<std::pair<const char*, QueryTrace::AttrValue>> kvs) {
    if (trace_) trace_->SetAttrs(id_, kvs);
  }

 private:
  QueryTrace* trace_;
  SpanId id_ = kNoSpan;
};

/// Finishes `trace`, hands it to the flight recorder (recent ring + slow
/// log; see flight_recorder.h) and, when the HISTGRAPH_TRACE env var is set,
/// dumps its JSON to stderr or to HISTGRAPH_TRACE_OUT (append mode, one JSON
/// object per line — emission is serialized under a process-wide mutex so
/// concurrent sessions never interleave half-lines). Callers holding the
/// trace for LastTrace() still call this — the dump is what's conditional,
/// not the finish or the recording.
void FinishAndMaybeDump(QueryTrace* trace);

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_TRACE_H_
