#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace hgdb {
namespace obs {

namespace {
const JsonValue& NullValue() {
  static const JsonValue* v = new JsonValue();
  return *v;
}
}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return NullValue();
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  JsonValue Run() {
    JsonValue v = ParseValue();
    SkipWs();
    if (!failed_ && pos_ != s_.size()) Fail("trailing characters");
    return failed_ ? JsonValue() : v;
  }

 private:
  void Fail(const std::string& why) {
    if (!failed_ && error_ != nullptr) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue ParseValue() {
    SkipWs();
    if (failed_ || pos_ >= s_.size()) {
      Fail("unexpected end");
      return JsonValue();
    }
    const char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    JsonValue v;
    if (ConsumeWord("null")) return v;
    if (ConsumeWord("true")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    Fail("unexpected character");
    return JsonValue();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return v;
    while (!failed_) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        Fail("expected object key");
        break;
      }
      JsonValue key = ParseString();
      if (!Consume(':')) {
        Fail("expected ':'");
        break;
      }
      v.members_.emplace_back(key.str_, ParseValue());
      if (Consume('}')) break;
      if (!Consume(',')) {
        Fail("expected ',' or '}'");
        break;
      }
    }
    return v;
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return v;
    while (!failed_) {
      v.items_.push_back(ParseValue());
      if (Consume(']')) break;
      if (!Consume(',')) {
        Fail("expected ',' or ']'");
        break;
      }
    }
    return v;
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        v.str_ += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case 'n': v.str_ += '\n'; break;
        case 't': v.str_ += '\t'; break;
        case 'r': v.str_ += '\r'; break;
        case 'b': v.str_ += '\b'; break;
        case 'f': v.str_ += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            Fail("bad \\u escape");
            return v;
          }
          const unsigned long cp =
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Basic UTF-8 encode; surrogate pairs unsupported.
          if (cp < 0x80) {
            v.str_ += static_cast<char>(cp);
          } else if (cp < 0x800) {
            v.str_ += static_cast<char>(0xC0 | (cp >> 6));
            v.str_ += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            v.str_ += static_cast<char>(0xE0 | (cp >> 12));
            v.str_ += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            v.str_ += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: v.str_ += esc;
      }
    }
    if (pos_ >= s_.size()) {
      Fail("unterminated string");
    } else {
      ++pos_;  // closing '"'
    }
    return v;
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
  bool failed_ = false;
};

JsonValue JsonValue::Parse(const std::string& text, std::string* error) {
  return JsonParser(text, error).Run();
}

}  // namespace obs
}  // namespace hgdb
