#ifndef HISTGRAPH_OBS_JSON_H_
#define HISTGRAPH_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hgdb {
namespace obs {

/// \brief Minimal JSON value tree + recursive-descent parser, just enough to
/// read back the JSON this module emits (traces, metrics snapshots, BENCH
/// reports) in the trace viewer and in tests. Not a general-purpose library:
/// no surrogate-pair unicode, numbers parse as double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool AsBool(bool def = false) const {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  double AsDouble(double def = 0) const {
    return kind_ == Kind::kNumber ? num_ : def;
  }
  int64_t AsInt(int64_t def = 0) const {
    return kind_ == Kind::kNumber ? static_cast<int64_t>(num_) : def;
  }
  const std::string& AsString() const { return str_; }

  const std::vector<JsonValue>& Items() const { return items_; }
  /// Object member by key; a shared null value when absent (so lookups chain:
  /// `v["summary"]["kv_reads"].AsInt()`).
  const JsonValue& operator[](const std::string& key) const;
  bool Has(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  /// Parses `text`; returns null (with *error set) on malformed input.
  static JsonValue Parse(const std::string& text, std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_JSON_H_
