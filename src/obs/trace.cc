#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/flight_recorder.h"

namespace hgdb {
namespace obs {

namespace {

std::atomic<bool>& TraceFlag() {
  static std::atomic<bool> flag = [] {
    const char* v = std::getenv("HISTGRAPH_TRACE");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return flag;
}

bool EnvDumpRequested() {
  const char* v = std::getenv("HISTGRAPH_TRACE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

void AppendJSONString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendAttr(std::ostringstream& out, const QueryTrace::AttrValue& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    out << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    out << *d;
  } else {
    AppendJSONString(out, std::get<std::string>(v));
  }
}

}  // namespace

bool TraceEnabled() { return TraceFlag().load(std::memory_order_relaxed); }
void SetTraceEnabled(bool on) {
  TraceFlag().store(on, std::memory_order_relaxed);
}

QueryTrace::QueryTrace() : start_(std::chrono::steady_clock::now()) {}

int64_t QueryTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

SpanId QueryTrace::BeginSpan(const std::string& name, SpanId parent) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = static_cast<SpanId>(spans_.size());
  s.parent = parent;
  s.name = name;
  s.start_ns = now;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void QueryTrace::EndSpan(SpanId id) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  if (spans_[id].end_ns < 0) spans_[id].end_ns = now;
}

void QueryTrace::SetAttr(SpanId id, const std::string& key, AttrValue v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  auto& attrs = spans_[id].attrs;
  for (auto& [k, old] : attrs) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  attrs.emplace_back(key, std::move(v));
}

void QueryTrace::SetAttrs(
    SpanId id, std::initializer_list<std::pair<const char*, AttrValue>> kvs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  auto& attrs = spans_[id].attrs;
  attrs.reserve(attrs.size() + kvs.size());
  for (const auto& [k, v] : kvs) attrs.emplace_back(k, v);
}

int64_t QueryTrace::TotalNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ns_ >= 0 ? finished_ns_ : NowNs();
}

void QueryTrace::Finish() {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_ns_ >= 0) return;
  finished_ns_ = now;
  for (auto& s : spans_) {
    if (s.end_ns < 0) s.end_ns = now;
  }
}

double QueryTrace::PrefetchCoverage() const {
  const uint64_t total = fetches_total.load(std::memory_order_relaxed);
  if (total == 0) return 1.0;
  const uint64_t pre = fetches_prefetched.load(std::memory_order_relaxed);
  return static_cast<double>(pre) / static_cast<double>(total);
}

std::vector<QueryTrace::Span> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string SpanToJSON(const QueryTrace::Span& s) {
  std::ostringstream out;
  out << "{\"id\":" << s.id << ",\"parent\":" << s.parent << ",\"name\":";
  AppendJSONString(out, s.name);
  out << ",\"start_us\":" << s.start_ns / 1000.0 << ",\"dur_us\":"
      << (s.end_ns >= 0 ? (s.end_ns - s.start_ns) / 1000.0 : -1.0);
  for (const auto& [k, v] : s.attrs) {
    out << ",";
    AppendJSONString(out, k);
    out << ":";
    AppendAttr(out, v);
  }
  out << "}";
  return out.str();
}

std::string QueryTrace::ToJSON() const {
  std::ostringstream out;
  std::vector<Span> spans;
  int64_t finished;
  std::string label, event;
  uint64_t epoch, event_count;
  double skew;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    finished = finished_ns_;
    label = query_label_;
    event = event_;
    epoch = epoch_;
    event_count = event_count_;
    skew = shard_skew_;
  }
  out << "{\"query\":";
  AppendJSONString(out, label.empty() ? "query" : label);
  out << ",\"total_us\":" << (finished >= 0 ? finished : NowNs()) / 1000.0;
  out << ",\"epoch\":" << epoch << ",\"event_count\":" << event_count;
  if (skew > 0) out << ",\"shard_skew\":" << skew;
  if (!event.empty()) {
    out << ",\"event\":";
    AppendJSONString(out, event);
  }
  const uint64_t total = fetches_total.load(std::memory_order_relaxed);
  out << ",\"summary\":{"
      << "\"fetches_total\":" << total
      << ",\"fetches_prefetched\":"
      << fetches_prefetched.load(std::memory_order_relaxed)
      << ",\"fetches_demand\":" << fetches_demand.load(std::memory_order_relaxed)
      << ",\"prefetch_issued\":" << prefetch_issued.load(std::memory_order_relaxed)
      << ",\"prefetch_coverage\":" << PrefetchCoverage()
      << ",\"lru_hits\":" << lru_hits.load(std::memory_order_relaxed)
      << ",\"lru_misses\":" << lru_misses.load(std::memory_order_relaxed)
      << ",\"kv_reads\":" << kv_reads.load(std::memory_order_relaxed)
      << ",\"bytes_read\":" << bytes_read.load(std::memory_order_relaxed)
      << ",\"bytes_decoded\":" << bytes_decoded.load(std::memory_order_relaxed)
      << "},\"spans\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out << ",";
    first = false;
    out << SpanToJSON(s);
  }
  out << "]}";
  return out.str();
}

void FinishAndMaybeDump(QueryTrace* trace) {
  if (trace == nullptr) return;
  trace->Finish();
  // Every finished trace lands in the flight recorder (recent ring; the
  // recorder routes it to the slow-query log too when it crossed the slow
  // threshold or carries an event). Recording copies the span tree but never
  // serializes it — JSON is rendered lazily when statz is read.
  FlightRecorder::Global().Record(*trace);
  if (!EnvDumpRequested()) return;
  const std::string json = trace->ToJSON();
  // One emission at a time: sessions finish traces on their own threads, and
  // stdio append writes of a multi-KB line are not atomic — without this a
  // busy HISTGRAPH_TRACE_OUT file accumulates interleaved half-lines.
  static std::mutex* dump_mu = new std::mutex();  // never destroyed
  std::lock_guard<std::mutex> lock(*dump_mu);
  if (const char* path = std::getenv("HISTGRAPH_TRACE_OUT");
      path != nullptr && path[0] != '\0') {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      return;
    }
  }
  std::fwrite(json.data(), 1, json.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace obs
}  // namespace hgdb
