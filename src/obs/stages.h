#ifndef HISTGRAPH_OBS_STAGES_H_
#define HISTGRAPH_OBS_STAGES_H_

#include <chrono>

#include "obs/metrics.h"

namespace hgdb {
namespace obs {

/// \brief Per-stage latency attribution for the retrieval path.
///
/// Four process-wide histograms answer "where does query time go":
///
///  - `server.stage_plan_us`    — planner runs (Steiner tree / cached SSSP),
///  - `server.stage_fetch_us`   — individual blocking payload fetches on a
///                                query thread (demand path, both through the
///                                fetch cache and the visitor's direct reads),
///  - `server.stage_execute_us` — plan executions (serial, serial+prefetch,
///                                or a parallel executor's Start→collect),
///  - `server.stage_merge_us`   — result assembly (TakeInOrder ordering and
///                                the cross-shard AbsorbDisjoint stitch).
///
/// Stages are recorded per *operation*, not per query: one multipoint query
/// over 8 shards records 8 plan samples and 8 execute samples. Execute spans
/// the whole plan run, so time in `stage_fetch_us` overlaps it — fetch is an
/// attribution within execute, not a disjoint phase. All recording is gated
/// on MetricsEnabled() (a StageTimer costs one relaxed load when metrics are
/// off) and subject to the <2% obs-overhead budget.
inline Histogram& StagePlanHist() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("server.stage_plan_us");
  return *h;
}
inline Histogram& StageFetchHist() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("server.stage_fetch_us");
  return *h;
}
inline Histogram& StageExecuteHist() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("server.stage_execute_us");
  return *h;
}
inline Histogram& StageMergeHist() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("server.stage_merge_us");
  return *h;
}

/// RAII stage sample: records elapsed microseconds into `hist` on
/// destruction; no clock read (let alone a record) when metrics are off.
class StageTimer {
 public:
  explicit StageTimer(Histogram& hist)
      : hist_(MetricsEnabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (hist_ == nullptr) return;
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_STAGES_H_
