#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace hgdb {
namespace obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  // Initialized once from the environment; SetMetricsEnabled overrides.
  static std::atomic<bool> flag = [] {
    const char* v = std::getenv("HISTGRAPH_METRICS");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return flag;
}

void AppendJSONString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendHistJSON(std::ostringstream& out, uint64_t count, uint64_t sum,
                    const std::vector<uint64_t>& buckets) {
  out << "{\"count\":" << count << ",\"sum\":" << sum;
  if (count > 0) {
    out << ",\"mean\":" << static_cast<double>(sum) / static_cast<double>(count)
        << ",\"p50\":" << Histogram::QuantileOf(buckets, 0.50)
        << ",\"p95\":" << Histogram::QuantileOf(buckets, 0.95)
        << ",\"p99\":" << Histogram::QuantileOf(buckets, 0.99);
  }
  out << "}";
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(kNumBuckets, 0);
  for (const auto& s : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::Count() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      n += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return n;
}

uint64_t Histogram::Sum() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s.sum.load(std::memory_order_relaxed);
  return n;
}

uint64_t Histogram::BucketLowerBound(int i) {
  if (i < 32) return static_cast<uint64_t>(i);
  const int octave = kMinOctave + (i - 32) / kSubBuckets;
  const int sub = (i - 32) % kSubBuckets;
  // Sub-bucket width within the octave is 2^(octave-4).
  return (uint64_t(1) << octave) +
         static_cast<uint64_t>(sub) * (uint64_t(1) << (octave - 4));
}

double Histogram::BucketMidpoint(int i) {
  if (i < 32) return static_cast<double>(i);
  const int octave = kMinOctave + (i - 32) / kSubBuckets;
  const double width = static_cast<double>(uint64_t(1) << (octave - 4));
  return static_cast<double>(BucketLowerBound(i)) + width / 2.0;
}

double Histogram::QuantileOf(const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile element (nearest-rank, 1-based).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketMidpoint(static_cast<int>(i));
  }
  return BucketMidpoint(static_cast<int>(buckets.size()) - 1);
}

double Histogram::Quantile(double q) const { return QuantileOf(BucketCounts(), q); }

void Histogram::Reset() {
  for (auto& s : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::ToJSON() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    AppendJSONString(out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    AppendJSONString(out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    AppendJSONString(out, name);
    out << ":";
    AppendHistJSON(out, h.count, h.sum, h.buckets);
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) return nullptr;
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) return nullptr;
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterProvider(const std::string& name,
                                       std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = std::move(fn);
}

void MetricsRegistry::UnregisterProvider(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    auto& out = snap.histograms[name];
    out.buckets = h->BucketCounts();
    for (uint64_t c : out.buckets) out.count += c;
    out.sum = h->Sum();
  }
  return snap;
}

std::string MetricsRegistry::ToJSON() const {
  MetricsSnapshot snap = Snapshot();
  // Providers run outside the registry lock: a provider may itself read
  // metrics or register lazily.
  std::vector<std::pair<std::string, std::function<std::string()>>> provs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, fn] : providers_) provs.emplace_back(name, fn);
  }
  std::string base = snap.ToJSON();
  if (provs.empty()) return base;
  std::ostringstream out;
  // Splice "exports" into the snapshot object before the closing brace.
  out << base.substr(0, base.size() - 1) << ",\"exports\":{";
  bool first = true;
  for (const auto& [name, fn] : provs) {
    if (!first) out << ",";
    first = false;
    AppendJSONString(out, name);
    out << ":" << fn();
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::DeltaJSON(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot d;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    d.counters[name] = v - (it == before.counters.end() ? 0 : it->second);
  }
  d.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    auto it = before.histograms.find(name);
    MetricsSnapshot::Hist out = h;
    if (it != before.histograms.end()) {
      const auto& prev = it->second;
      for (size_t i = 0; i < out.buckets.size() && i < prev.buckets.size(); ++i) {
        out.buckets[i] -= prev.buckets[i];
      }
      out.count -= prev.count;
      out.sum -= prev.sum;
    }
    d.histograms[name] = std::move(out);
  }
  return d.ToJSON();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace hgdb
