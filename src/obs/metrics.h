#ifndef HISTGRAPH_OBS_METRICS_H_
#define HISTGRAPH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hgdb {
namespace obs {

/// \brief Process-wide metrics: named counters, gauges, and log-bucketed
/// latency histograms, sharded per-thread so hot-path increments are one
/// relaxed atomic add with no shared cache line.
///
/// The whole subsystem sits behind one gate, `MetricsEnabled()`: a single
/// relaxed atomic-bool load. When off (the default unless HISTGRAPH_METRICS
/// is set, or a bench/server enables it programmatically), every Add/Record
/// is that one load plus a branch — no allocation, no store, no lock
/// (enforced by obs_test's zero-allocation check). Metric objects are
/// allocated once at first GetCounter/GetGauge/GetHistogram and never freed,
/// so callers cache the returned pointer (typically in a function-local
/// static) and the hot path never touches the registry lock.
///
/// Naming scheme (see src/obs/README.md): `<subsystem>.<metric>` in
/// lower_snake_case, with a unit suffix where one applies — `_us` for
/// microseconds, `_bytes` for bytes. Counters count events; gauges hold a
/// settable level; histograms record value distributions and export
/// p50/p95/p99.

/// True when metric recording is on. Initialized from the HISTGRAPH_METRICS
/// environment variable (unset/0 = off) at first use; overridable at runtime.
bool MetricsEnabled();
void SetMetricsEnabled(bool on);

namespace internal {

/// Number of per-thread shards a metric's storage is split across. Threads
/// map to shards by a sticky thread-local slot, so two threads only contend
/// when they alias modulo the shard count.
inline constexpr size_t kMetricShards = 16;

/// The calling thread's sticky shard index in [0, kMetricShards).
size_t ThreadShard();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

/// A monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[internal::ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::ShardCell, internal::kMetricShards> shards_;
};

/// A settable level (queue depths, resident bytes, shard counts).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A log-linear histogram of non-negative 64-bit values (HDR-style):
/// values below 32 get exact buckets; above, each power-of-two octave is
/// split into 16 sub-buckets, so the quantile error is bounded by one
/// sub-bucket — at most 1/16 ≈ 6.25% relative (obs_test checks this against
/// a sorted oracle). Values are clamped to ~2^39 (≈ 9 minutes in
/// microseconds... and 550 billion of anything else), far above any latency
/// this system records.
class Histogram {
 public:
  /// Exact buckets [0, 32) + 16 sub-buckets per octave for 2^5..2^39.
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinOctave = 5;
  static constexpr int kMaxOctave = 39;
  static constexpr int kNumBuckets =
      32 + (kMaxOctave - kMinOctave + 1) * kSubBuckets;

  void Record(uint64_t v) {
    if (!MetricsEnabled()) return;
    // ThreadShard() ranges over kMetricShards slots; fold onto this metric's
    // smaller shard count.
    Shard& s = shards_[internal::ThreadShard() % shards_.size()];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Merged per-bucket counts (index by BucketIndex).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  uint64_t Sum() const;
  /// q in [0, 1]; returns a representative value (bucket midpoint) of the
  /// bucket holding the q-quantile, 0 when empty.
  double Quantile(double q) const;
  void Reset();

  static int BucketIndex(uint64_t v) {
    if (v < 32) return static_cast<int>(v);
    int octave = 63;
    while ((v >> octave) == 0) --octave;  // octave = floor(log2 v) >= 5.
    if (octave > kMaxOctave) {
      octave = kMaxOctave;
      v = (uint64_t(1) << (kMaxOctave + 1)) - 1;
    }
    const int sub = static_cast<int>((v >> (octave - 4)) & 15);
    return 32 + (octave - kMinOctave) * kSubBuckets + sub;
  }
  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketLowerBound(int i);
  /// Midpoint representative used by Quantile.
  static double BucketMidpoint(int i);

  /// Quantile over an externally merged bucket array (snapshot deltas).
  static double QuantileOf(const std::vector<uint64_t>& buckets, double q);

 private:
  struct Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  // Histograms are bigger than counters; shard less aggressively (recording a
  // latency is rarer than bumping a counter).
  std::array<Shard, 4> shards_;
};

/// Point-in-time copy of every registered metric, used for delta export
/// ("what did this query/bench section cost").
struct MetricsSnapshot {
  struct Hist {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Hist> histograms;

  std::string ToJSON() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem records into.
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use. The pointer is
  /// valid for the process lifetime; asking for the same name with a
  /// different metric kind returns nullptr (a naming bug).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a named export hook: `fn` returns a JSON *value* (object,
  /// array, or scalar) embedded verbatim under "exports" in ToJSON. Used for
  /// structured per-instance state that is not a scalar metric — e.g. a
  /// DeltaGraph's skeleton stats or its per-delta fetch-frequency table.
  /// Re-registering a name replaces the hook; owners must Unregister before
  /// they die.
  void RegisterProvider(const std::string& name, std::function<std::string()> fn);
  void UnregisterProvider(const std::string& name);

  /// Copies every metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Full JSON export: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99}}, "exports": {...}}.
  std::string ToJSON() const;

  /// JSON of the difference `after - before` (counters and histogram buckets
  /// subtract; gauges report their `after` value). Quantiles are recomputed
  /// over the subtracted buckets, so a delta's p99 reflects only the window.
  static std::string DeltaJSON(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// Zeroes every registered metric (metric pointers stay valid). Tests and
  /// bench sections use this to measure from a clean slate.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<std::string()>> providers_;
};

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_METRICS_H_
