#ifndef HISTGRAPH_OBS_FLIGHT_RECORDER_H_
#define HISTGRAPH_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace hgdb {
namespace obs {

/// One retained query record: the identity fields every tail-latency
/// diagnosis needs (epoch, event_count, shard_skew, prefetch coverage) plus
/// — for traced queries — the full span tree, copied (not serialized) when
/// the trace finished. JSON is rendered lazily at read time.
struct FlightEntry {
  uint64_t seq = 0;        ///< Monotone record number (process-wide).
  std::string label;       ///< The trace's query label ("session", ...).
  double total_us = 0;     ///< End-to-end latency.
  uint64_t epoch = 0;      ///< Pinned frontier epoch.
  uint64_t event_count = 0;
  double shard_skew = 0;   ///< 0 = not a sharded query.
  double prefetch_coverage = 1.0;
  uint64_t fetches_total = 0;
  uint64_t kv_reads = 0;
  uint64_t bytes_read = 0;
  std::string event;  ///< "", "deadline", "admission", "slow".
  bool slow = false;  ///< Also retained in the slow-query log.
  bool has_trace = false;
  /// Full span tree of a traced query (empty for slim entries recorded for
  /// untraced slow/deadline/admission events).
  std::vector<QueryTrace::Span> spans;

  std::string ToJSON() const;
};

/// \brief Always-on ring of recently finished traces plus a slow-query log.
///
/// The recorder answers "what did *that* query do": the recent ring holds
/// the last `recent_capacity` finished traces (whatever the sampler picked),
/// and the slow-query log separately retains the last `slow_capacity`
/// entries that crossed the slow threshold or hit a terminal event
/// (deadline, admission) — so a tail query's span tree survives long after
/// the recent ring has cycled past it.
///
/// Lock discipline ("lock-minimal"): the query hot path touches the
/// recorder only when a query actually finished with a trace or crossed the
/// slow threshold — never per fetch, never per span. A Record then takes
/// one short mutex to push an entry (span vectors are moved, not copied
/// again, and nothing is serialized under the lock). Reads (Recent / Slow /
/// ToJSON) copy entries out under the same mutex; they are statz-frequency
/// operations, not query-frequency ones.
///
/// The process-wide instance is `FlightRecorder::Global()`, configured from
/// the environment (HISTGRAPH_FLIGHT_RECENT, HISTGRAPH_FLIGHT_SLOW,
/// HISTGRAPH_SLOW_QUERY_US) and reconfigurable at runtime — HistGraphServer
/// applies its options at construction.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultRecentCapacity = 128;
  static constexpr size_t kDefaultSlowCapacity = 32;

  static FlightRecorder& Global();

  FlightRecorder() = default;

  /// `slow_threshold_us`: queries at/above this total latency are routed to
  /// the slow-query log (0 disables latency-based routing; event-based
  /// routing — deadline/admission — always applies). Capacities of 0 keep
  /// the current values.
  void Configure(size_t recent_capacity, size_t slow_capacity,
                 int64_t slow_threshold_us);
  int64_t slow_threshold_us() const {
    return slow_threshold_us_.load(std::memory_order_relaxed);
  }

  /// Records a finished trace: builds an entry from the trace's identity
  /// fields, tallies, and span tree; always lands in the recent ring, and in
  /// the slow log when slow (over threshold or carrying an event).
  void Record(const QueryTrace& trace);

  /// Records an untraced event (a slow query that wasn't sampled, an
  /// admission rejection): identity fields only, no span tree. Lands in the
  /// slow log (and the recent ring).
  void RecordEvent(std::string label, std::string event, double total_us,
                   uint64_t epoch, uint64_t event_count);

  std::vector<FlightEntry> Recent() const;
  std::vector<FlightEntry> Slow() const;

  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t slow_recorded() const {
    return slow_recorded_.load(std::memory_order_relaxed);
  }

  /// {"recorded":..,"slow_recorded":..,"slow_threshold_us":..,
  ///  "recent":[entry,...],"slow":[entry,...]} — entries oldest-first.
  std::string ToJSON() const;

  /// Empties both rings and zeroes the counters (configuration kept). Tests
  /// and bench sections use this for a clean slate.
  void Clear();

 private:
  void Push(FlightEntry entry);

  std::atomic<int64_t> slow_threshold_us_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_recorded_{0};

  mutable std::mutex mu_;
  size_t recent_capacity_ = kDefaultRecentCapacity;
  size_t slow_capacity_ = kDefaultSlowCapacity;
  uint64_t next_seq_ = 1;
  std::deque<FlightEntry> recent_;
  std::deque<FlightEntry> slow_;
};

}  // namespace obs
}  // namespace hgdb

#endif  // HISTGRAPH_OBS_FLIGHT_RECORDER_H_
