#include "obs/flight_recorder.h"

#include <cstdlib>
#include <sstream>

namespace hgdb {
namespace obs {

namespace {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoll(v, nullptr, 10);
}

void AppendQuoted(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string FlightEntry::ToJSON() const {
  std::ostringstream out;
  out << "{\"seq\":" << seq << ",\"query\":";
  AppendQuoted(out, label);
  out << ",\"total_us\":" << total_us << ",\"epoch\":" << epoch
      << ",\"event_count\":" << event_count;
  if (shard_skew > 0) out << ",\"shard_skew\":" << shard_skew;
  out << ",\"prefetch_coverage\":" << prefetch_coverage
      << ",\"fetches_total\":" << fetches_total << ",\"kv_reads\":" << kv_reads
      << ",\"bytes_read\":" << bytes_read;
  if (!event.empty()) {
    out << ",\"event\":";
    AppendQuoted(out, event);
  }
  out << ",\"slow\":" << (slow ? "true" : "false");
  if (has_trace) {
    out << ",\"spans\":[";
    bool first = true;
    for (const auto& s : spans) {
      if (!first) out << ",";
      first = false;
      out << SpanToJSON(s);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* r = [] {
    auto* rec = new FlightRecorder();  // never destroyed
    rec->Configure(
        static_cast<size_t>(
            EnvInt("HISTGRAPH_FLIGHT_RECENT", kDefaultRecentCapacity)),
        static_cast<size_t>(
            EnvInt("HISTGRAPH_FLIGHT_SLOW", kDefaultSlowCapacity)),
        EnvInt("HISTGRAPH_SLOW_QUERY_US", 0));
    return rec;
  }();
  return *r;
}

void FlightRecorder::Configure(size_t recent_capacity, size_t slow_capacity,
                               int64_t slow_threshold_us) {
  slow_threshold_us_.store(slow_threshold_us, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (recent_capacity > 0) recent_capacity_ = recent_capacity;
  if (slow_capacity > 0) slow_capacity_ = slow_capacity;
  while (recent_.size() > recent_capacity_) recent_.pop_front();
  while (slow_.size() > slow_capacity_) slow_.pop_front();
}

void FlightRecorder::Record(const QueryTrace& trace) {
  FlightEntry e;
  e.label = trace.query_label();
  e.total_us = trace.TotalNs() / 1000.0;
  e.epoch = trace.epoch();
  e.event_count = trace.event_count();
  e.shard_skew = trace.shard_skew();
  e.prefetch_coverage = trace.PrefetchCoverage();
  e.fetches_total = trace.fetches_total.load(std::memory_order_relaxed);
  e.kv_reads = trace.kv_reads.load(std::memory_order_relaxed);
  e.bytes_read = trace.bytes_read.load(std::memory_order_relaxed);
  e.event = trace.event();
  e.has_trace = true;
  e.spans = trace.Spans();
  const int64_t threshold = slow_threshold_us_.load(std::memory_order_relaxed);
  e.slow = !e.event.empty() ||
           (threshold > 0 && e.total_us >= static_cast<double>(threshold));
  Push(std::move(e));
}

void FlightRecorder::RecordEvent(std::string label, std::string event,
                                 double total_us, uint64_t epoch,
                                 uint64_t event_count) {
  FlightEntry e;
  e.label = std::move(label);
  e.event = std::move(event);
  e.total_us = total_us;
  e.epoch = epoch;
  e.event_count = event_count;
  e.prefetch_coverage = 0;
  e.slow = true;
  Push(std::move(e));
}

void FlightRecorder::Push(FlightEntry entry) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (entry.slow) slow_recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  if (entry.slow) {
    // The slow log keeps its own copy (spans shared up to the string data):
    // the recent ring cycling past a tail query must not evict its record.
    slow_.push_back(entry);
    while (slow_.size() > slow_capacity_) slow_.pop_front();
  }
  recent_.push_back(std::move(entry));
  while (recent_.size() > recent_capacity_) recent_.pop_front();
}

std::vector<FlightEntry> FlightRecorder::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightEntry>(recent_.begin(), recent_.end());
}

std::vector<FlightEntry> FlightRecorder::Slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightEntry>(slow_.begin(), slow_.end());
}

std::string FlightRecorder::ToJSON() const {
  const std::vector<FlightEntry> recent = Recent();
  const std::vector<FlightEntry> slow = Slow();
  std::ostringstream out;
  out << "{\"recorded\":" << recorded()
      << ",\"slow_recorded\":" << slow_recorded()
      << ",\"slow_threshold_us\":" << slow_threshold_us() << ",\"recent\":[";
  bool first = true;
  for (const auto& e : recent) {
    if (!first) out << ",";
    first = false;
    out << e.ToJSON();
  }
  out << "],\"slow\":[";
  first = true;
  for (const auto& e : slow) {
    if (!first) out << ",";
    first = false;
    out << e.ToJSON();
  }
  out << "]}";
  return out.str();
}

void FlightRecorder::Clear() {
  recorded_.store(0, std::memory_order_relaxed);
  slow_recorded_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  slow_.clear();
  next_seq_ = 1;
}

}  // namespace obs
}  // namespace hgdb
