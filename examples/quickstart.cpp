// Quickstart: build a small historical social network, retrieve snapshots,
// evaluate a TimeExpression, and run an interval query — the paper's
// Section 3.2.1 API end to end.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/graph_manager.h"
#include "core/query_manager.h"

using namespace hgdb;

namespace {

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::hgdb::Status _s = (expr);                                         \
    if (!_s.ok()) {                                                     \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str());      \
      return 1;                                                         \
    }                                                                   \
  } while (false)

}  // namespace

int main() {
  // 1. Open an in-memory database. (OpenDiskKVStore gives a persistent one.)
  auto store = NewMemKVStore();
  GraphManagerOptions options;
  options.index.leaf_size = 4;  // Tiny leaves so this demo builds a real tree.
  options.index.arity = 2;
  options.index.functions = {"intersection"};
  auto gm_result = GraphManager::Create(store.get(), options);
  if (!gm_result.ok()) return 1;
  GraphManager& gm = *gm_result.value();
  QueryManager qm(&gm);  // External-id translation (Figure 2's QueryManager).

  // 2. Record history: a collaboration network evolving over "days".
  CHECK_OK(qm.AddNode(1, "alice", {{"job", "analyst"}}));
  CHECK_OK(qm.AddNode(1, "bob", {{"job", "engineer"}}));
  CHECK_OK(qm.AddNode(2, "carol", {{"job", "scientist"}}));
  CHECK_OK(qm.AddEdge(3, "alice", "bob").status());
  CHECK_OK(qm.AddEdge(5, "bob", "carol").status());
  CHECK_OK(qm.AddNode(7, "dave", {{"job", "designer"}}));
  CHECK_OK(qm.AddEdge(8, "carol", "dave").status());
  auto ab2 = qm.AddEdge(10, "alice", "carol");
  CHECK_OK(ab2.status());
  // A message (transient event): visible to interval queries only.
  const NodeId alice = qm.Resolve("alice").value();
  const NodeId dave = qm.Resolve("dave").value();
  CHECK_OK(gm.ApplyEvent(Event::TransientEdge(11, alice, dave, "ping!")));
  // Alice changes jobs; the old value stays recorded in history.
  CHECK_OK(gm.ApplyEvent(
      Event::SetNodeAttr(12, alice, "job", "analyst", "manager")));
  CHECK_OK(gm.FinalizeIndex());

  // 3. Singlepoint snapshot queries (Table 1 attr options).
  for (Timestamp t : {4, 9, 12}) {
    auto hist = gm.GetHistGraph(t, "+node:all");
    if (!hist.ok()) return 1;
    std::printf("snapshot @ t=%lld: %zu people; alice's job: %s\n",
                static_cast<long long>(t), hist->GetNodes().size(),
                hist->HasNode(alice) && hist->GetNodeAttr(alice, "job")
                    ? hist->GetNodeAttr(alice, "job")->c_str()
                    : "-");
    CHECK_OK(gm.Release(&hist.value()));
  }

  // 4. Multipoint retrieval: one Steiner-planned pass for many snapshots.
  auto graphs = gm.GetHistGraphs({4, 6, 8, 10}, "");
  if (!graphs.ok()) return 1;
  std::printf("\nmultipoint (4 snapshots in one plan):\n");
  for (auto& g : graphs.value()) {
    std::printf("  t=%lld: %zu nodes, alice<->bob neighbors: %zu\n",
                static_cast<long long>(g.time()), g.GetNodes().size(),
                g.GetNeighbors(alice).size());
    CHECK_OK(gm.Release(&g));
  }

  // 5. TimeExpression: what appeared between t=4 and t=10? (t1 & !t0)
  auto expr = TimeExpression::Parse({4, 10}, "t1 & !t0");
  if (!expr.ok()) return 1;
  auto diff = gm.GetHistGraph(expr.value(), "");
  if (!diff.ok()) return 1;
  std::printf("\nelements valid at t=10 but not t=4: %zu nodes\n",
              diff->GetNodes().size());
  for (NodeId n : diff->GetNodes()) {
    std::printf("  new node: %s\n", qm.ExternalName(n).ValueOr("?").c_str());
  }
  CHECK_OK(gm.Release(&diff.value()));

  // 6. Interval query: everything added in [5, 12), including the transient
  // message that no snapshot ever contains.
  auto window = gm.GetHistGraphInterval(5, 12, "+node:all");
  if (!window.ok()) return 1;
  std::printf("\ninterval [5,12): %zu nodes added\n", window->GetNodes().size());
  auto events = gm.GetEvents(5, 12);
  if (!events.ok()) return 1;
  for (const auto& e : events.value().events()) {
    if (e.is_transient()) {
      std::printf("  transient message %s -> %s: \"%s\"\n",
                  qm.ExternalName(e.src).ValueOr("?").c_str(),
                  qm.ExternalName(e.dst).ValueOr("?").c_str(), e.key.c_str());
    }
  }
  CHECK_OK(gm.Release(&window.value()));

  // 7. Cleanup is lazy, like the paper's Cleaner thread.
  const size_t evicted = gm.RunCleaner();
  std::printf("\ncleaner evicted %zu pool elements; union now %zu nodes\n",
              evicted, gm.pool().UnionNodeCount());
  return 0;
}
