// Section 4.7's extensibility example as an application: maintain the
// subgraph-pattern path index alongside the DeltaGraph and find every
// occurrence of a labeled pattern across the entire history.
//
//   $ ./examples/pattern_history

#include <cstdio>

#include "auxiliary/path_index.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

using namespace hgdb;

int main() {
  // A labeled collaboration network: protein-interaction-flavored labels.
  const char* kLabels[] = {"kinase", "ligase", "receptor", "channel"};
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(4242);
  TraceWorld& w = *trace.world;
  Rng& rng = w.rng();
  Timestamp t = 1;
  auto add_protein = [&]() {
    const NodeId n = w.AddNode(t, 0, &trace.events);
    w.SetNodeAttr(t, n, "label", kLabels[rng.Uniform(4)], &trace.events);
    return n;
  };
  for (int i = 0; i < 10; ++i) add_protein();
  while (trace.events.size() < 8000) {
    t += 1;
    const double roll = rng.NextDouble();
    if (roll < 0.2) {
      add_protein();
    } else if (roll < 0.8 || w.edge_count() == 0) {
      w.AddRandomEdge(t, false, &trace.events);
    } else {
      w.DeleteRandomEdge(t, &trace.events);  // Interactions also disappear.
    }
  }
  std::printf("interaction history: %zu events, %zu proteins, %zu interactions\n",
              trace.events.size(), w.node_count(), w.edge_count());

  // Build the index with the auxiliary path index attached: the DeltaGraph
  // automatically versions the auxiliary information alongside the graph.
  auto store = NewMemKVStore();
  PathIndex index(store.get());
  DeltaGraphOptions opts;
  opts.leaf_size = 800;
  opts.arity = 4;
  auto dg_result = DeltaGraph::Create(store.get(), opts);
  if (!dg_result.ok()) return 1;
  auto dg = std::move(dg_result).value();
  dg->RegisterAuxHook(&index);
  if (!dg->AppendAll(trace.events).ok()) return 1;
  if (!dg->Finalize().ok()) return 1;
  std::printf("path index entries at head: %zu\n\n", index.current().PairCount());

  // Find every signaling-chain occurrence over all of history:
  // kinase - receptor - channel - ligase.
  PatternGraph chain;
  chain.labels = {"kinase", "receptor", "channel", "ligase"};
  chain.edges = {{0, 1}, {1, 2}, {2, 3}};
  std::set<PatternMatch> matches;
  auto occurrences = FindMatchesOverHistory(dg.get(), index, chain, &matches);
  if (!occurrences.ok()) {
    std::fprintf(stderr, "%s\n", occurrences.status().ToString().c_str());
    return 1;
  }
  std::printf("kinase-receptor-channel-ligase chains over history:\n");
  std::printf("  %zu occurrences across snapshots, %zu distinct chains\n",
              occurrences.value(), matches.size());
  int shown = 0;
  for (const auto& m : matches) {
    if (++shown > 5) break;
    std::printf("  chain: %llu - %llu - %llu - %llu\n",
                static_cast<unsigned long long>(m[0]),
                static_cast<unsigned long long>(m[1]),
                static_cast<unsigned long long>(m[2]),
                static_cast<unsigned long long>(m[3]));
  }

  // The same machinery answers a ring pattern (extra edge verified against
  // the structure snapshot).
  PatternGraph ring = chain;
  ring.edges.push_back({3, 0});
  std::set<PatternMatch> ring_matches;
  auto ring_count = FindMatchesOverHistory(dg.get(), index, ring, &ring_matches);
  if (ring_count.ok()) {
    std::printf("\nclosed 4-rings of the same labels: %zu occurrences, %zu distinct\n",
                ring_count.value(), ring_matches.size());
  }
  return 0;
}
