// Figure 1 of the paper: "the evolution of the nodes ranked in top 25 in
// 2004" on the DBLP network — how PageRank centrality of today's top authors
// developed over the preceding years.
//
// We rebuild the study on the DBLP-like Dataset 1 stand-in: index the full
// history, retrieve one snapshot per "year" via a multipoint query, run
// PageRank on each, and print the rank trajectory of the final top authors.
//
//   $ ./examples/dblp_rank_evolution

#include <algorithm>
#include <cstdio>
#include <map>

#include "compute/algorithms.h"
#include "compute/graph_accessor.h"
#include "deltagraph/delta_graph.h"
#include "workload/generators.h"

using namespace hgdb;

int main() {
  // Build the historical index for a DBLP-like growing network.
  DblpLikeOptions opts;
  opts.target_edges = 20000;
  opts.years = 30;
  opts.attrs_per_node = 0;  // Structure-only study.
  opts.seed = 2004;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  std::printf("co-authorship history: %zu events over %d years\n",
              trace.events.size(), opts.years);

  auto store = NewMemKVStore();
  DeltaGraphOptions dgo;
  dgo.leaf_size = 2000;
  dgo.arity = 4;
  auto dg_result = DeltaGraph::Create(store.get(), dgo);
  if (!dg_result.ok()) return 1;
  auto dg = std::move(dg_result).value();
  if (!dg->AppendAll(trace.events).ok()) return 1;
  if (!dg->Finalize().ok()) return 1;

  // One snapshot per year for the last decade, in a single multipoint query.
  std::vector<Timestamp> year_ends;
  const int last_year = static_cast<int>(trace.events.back().time / 365);
  for (int y = last_year - 9; y <= last_year; ++y) {
    year_ends.push_back(static_cast<Timestamp>(y + 1) * 365 - 1);
  }
  auto snaps = dg->GetSnapshots(year_ends, kCompStruct);
  if (!snaps.ok()) {
    std::fprintf(stderr, "%s\n", snaps.status().ToString().c_str());
    return 1;
  }

  // PageRank per year; remember each author's rank position.
  std::vector<std::map<NodeId, int>> rank_by_year(year_ends.size());
  for (size_t i = 0; i < snaps.value().size(); ++i) {
    SnapshotAccessor acc(&snaps.value()[i]);
    auto pr = PageRank(acc, 15);
    std::vector<std::pair<double, NodeId>> order;
    order.reserve(pr.size());
    for (const auto& [n, r] : pr) order.emplace_back(-r, n);
    std::sort(order.begin(), order.end());
    for (size_t pos = 0; pos < order.size(); ++pos) {
      rank_by_year[i][order[pos].second] = static_cast<int>(pos) + 1;
    }
  }

  // The authors in the final year's top 10, tracked backward (Figure 1).
  std::vector<NodeId> top;
  for (const auto& [n, pos] : rank_by_year.back()) {
    if (pos <= 10) top.push_back(n);
  }
  std::sort(top.begin(), top.end(), [&](NodeId a, NodeId b) {
    return rank_by_year.back().at(a) < rank_by_year.back().at(b);
  });

  std::printf("\nrank evolution of the final top-10 authors (rows = author,\n");
  std::printf("columns = last 10 years; '-' = not yet in the network)\n\n");
  std::printf("%-10s", "author");
  for (int y = last_year - 9; y <= last_year; ++y) std::printf("%6d", y);
  std::printf("\n");
  for (NodeId author : top) {
    std::printf("%-10llu", static_cast<unsigned long long>(author));
    for (size_t i = 0; i < year_ends.size(); ++i) {
      auto it = rank_by_year[i].find(author);
      if (it == rank_by_year[i].end()) {
        std::printf("%6s", "-");
      } else {
        std::printf("%6d", it->second);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe typical pattern matches the paper's Figure 1: today's central\n"
      "authors climb steadily through the rankings over the years.\n");
  return 0;
}
