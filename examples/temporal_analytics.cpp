// Temporal and evolutionary analytics over a churning network — the broader
// workload class the paper's introduction motivates ("how the clusters in
// the network evolve over time", "average monthly density since 1997", "how
// many new triangles have been formed over the last year").
//
//   $ ./examples/temporal_analytics

#include <cstdio>
#include <set>

#include "compute/algorithms.h"
#include "compute/graph_accessor.h"
#include "core/graph_manager.h"
#include "workload/generators.h"

using namespace hgdb;

int main() {
  // A network that grows and churns over ten "years".
  RandomTraceOptions opts;
  opts.num_events = 30000;
  opts.p_transient = 0.08;  // Plenty of messages for the interval analytics.
  opts.seed = 1997;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  std::printf("history: %zu events spanning t=%lld..%lld\n", trace.events.size(),
              static_cast<long long>(trace.events.front().time),
              static_cast<long long>(trace.events.back().time));

  auto store = NewMemKVStore();
  GraphManagerOptions gmo;
  gmo.index.leaf_size = 2000;
  gmo.index.arity = 4;
  auto gm_result = GraphManager::Create(store.get(), gmo);
  if (!gm_result.ok()) return 1;
  GraphManager& gm = *gm_result.value();
  if (!gm.ApplyEvents(trace.events).ok()) return 1;
  if (!gm.FinalizeIndex().ok()) return 1;

  // Evolution of structure metrics: density, components, triangles per epoch.
  const Timestamp t0 = trace.events.front().time;
  const Timestamp t1 = trace.events.back().time;
  constexpr int kEpochs = 8;
  std::printf("\n%-8s%-10s%-10s%-12s%-12s%-10s\n", "epoch", "nodes", "edges",
              "density", "components", "triangles");
  std::vector<HistGraph> held;
  for (int e = 1; e <= kEpochs; ++e) {
    const Timestamp t = t0 + (t1 - t0) * e / kEpochs;
    auto hist = gm.GetHistGraph(t, "");
    if (!hist.ok()) return 1;
    HistViewAccessor acc(hist->view());
    const DegreeStats deg = ComputeDegreeStats(acc);
    auto cc = ConnectedComponents(acc, 2);
    std::set<NodeId> labels;
    for (const auto& [n, label] : cc) labels.insert(label);
    const uint64_t triangles = CountTriangles(acc);
    const size_t edges = hist->view().CountEdges();
    std::printf("%-8d%-10zu%-10zu%-12.3f%-12zu%-10llu\n", e, deg.nodes, edges,
                deg.nodes > 1 ? static_cast<double>(edges) / deg.nodes : 0.0,
                labels.size(), static_cast<unsigned long long>(triangles));
    held.push_back(std::move(hist).value());
  }
  for (auto& h : held) (void)gm.Release(&h);
  gm.RunCleaner();

  // Interval analytics: activity (durable + transient) per epoch — the kind
  // of question only GetHistGraphInterval can answer, because transient
  // events belong to no snapshot.
  std::printf("\n%-8s%-14s%-14s%-16s\n", "epoch", "new nodes", "new edges",
              "messages (transient)");
  for (int e = 1; e <= kEpochs; ++e) {
    const Timestamp lo = t0 + (t1 - t0) * (e - 1) / kEpochs;
    const Timestamp hi = t0 + (t1 - t0) * e / kEpochs;
    auto events = gm.GetEvents(lo, hi);
    if (!events.ok()) return 1;
    size_t nodes = 0, edges = 0, messages = 0;
    for (const auto& ev : events.value().events()) {
      if (ev.type == EventType::kAddNode) ++nodes;
      if (ev.type == EventType::kAddEdge) ++edges;
      if (ev.type == EventType::kTransientEdge) ++messages;
    }
    std::printf("%-8d%-14zu%-14zu%-16zu\n", e, nodes, edges, messages);
  }

  // "Who rose fastest?" — compare shortest-path reach of one node between
  // the first and last epoch (an evolutionary single-node question).
  auto early = gm.GetHistGraph(t0 + (t1 - t0) / kEpochs, "");
  auto late = gm.GetHistGraph(t1, "");
  if (!early.ok() || !late.ok()) return 1;
  const auto early_nodes = early->GetNodes();
  if (!early_nodes.empty()) {
    const NodeId probe = early_nodes.front();
    HistViewAccessor acc_early(early->view());
    HistViewAccessor acc_late(late->view());
    const size_t reach_early = ShortestPaths(acc_early, probe, 2).size();
    const size_t reach_late =
        late->HasNode(probe) ? ShortestPaths(acc_late, probe, 2).size() : 0;
    std::printf("\nnode %llu reach: %zu nodes (early) -> %zu nodes (now)\n",
                static_cast<unsigned long long>(probe), reach_early, reach_late);
  }
  (void)gm.Release(&early.value());
  (void)gm.Release(&late.value());
  return 0;
}
