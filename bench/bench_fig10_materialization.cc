// Figure 10: memory materialization (Dataset 2, arity 4, Intersection).
//
// Four configurations: no materialization, root materialized, root's
// children, root's grandchildren. Paper shape: query latency falls by up to
// ~8x while materialization memory grows.

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 10: effect of memory materialization");
  OpenReport("fig10_materialization");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  const std::vector<Timestamp> times = UniformTimepoints(data, 15);
  PrintRow({"materialized", "avg query", "mat memory", "nodes"}, 18);
  struct Config {
    const char* label;
    int depth;  // -1 = none.
  };
  const Config configs[] = {
      {"none", -1}, {"root", 0}, {"root children", 1}, {"root grandchildren", 2}};
  double baseline = 0;
  for (const auto& cfg : configs) {
    auto store = NewSimDiskStore();
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto dg = BuildIndex(store.get(), data, opts);
    if (cfg.depth >= 0) {
      auto mat = dg->MaterializeDepth(cfg.depth);
      if (!mat.ok()) std::abort();
    }
    double total = 0;
    for (Timestamp t : times) {
      Stopwatch sw;
      auto snap = dg->GetSnapshot(t, kCompAll);
      if (!snap.ok()) std::abort();
      total += sw.ElapsedMillis();
    }
    const double avg = total / times.size();
    if (cfg.depth < 0) baseline = avg;
    const auto stats = dg->Stats();
    PrintRow({cfg.label, FormatMs(avg), FormatBytes(stats.materialized_bytes),
              std::to_string(stats.materialized_nodes)},
             18);
    std::string op = "avg_query_depth_";
    op += (cfg.depth < 0 ? "none" : std::to_string(cfg.depth));
    ReportResult(op, avg * 1e6, stats.materialized_bytes);
    if (cfg.depth == 2) {
      std::printf("\nspeedup grandchildren vs none: %.2fx (paper: up to ~8x)\n",
                  baseline / avg);
    }
  }

  // --- Observability overhead (acceptance gate: < 2%) ------------------------
  // The no-materialization sweep again, with metrics + trace spans fully off
  // vs fully on (trace *dumping* stays off — HISTGRAPH_TRACE gates that
  // separately, and the contract is about always-on recording cost). Min of
  // five sweeps each, to keep simulated-disk jitter out of a percent-level
  // comparison.
  {
    auto store = NewSimDiskStore();
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto dg = BuildIndex(store.get(), data, opts);
    if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();  // Warm the LRU.
    auto sweep = [&] {
      double best = 1e30;
      for (int rep = 0; rep < 5; ++rep) {
        Stopwatch sw;
        for (Timestamp t : times) {
          if (!dg->GetSnapshot(t, kCompAll).ok()) std::abort();
        }
        best = std::min(best, sw.ElapsedMillis());
      }
      return best / times.size();
    };
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
    const double off_ms = sweep();
    obs::SetMetricsEnabled(true);
    obs::SetTraceEnabled(true);
    const double on_ms = sweep();
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(GetEnvInt("HISTGRAPH_METRICS", 1) != 0);
    const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
    std::printf("\nobservability overhead (no-mat avg query): off %s, on %s "
                "(%+.2f%%; gate < 2%%)\n",
                FormatMs(off_ms).c_str(), FormatMs(on_ms).c_str(), overhead_pct);
    ReportResult("query_nomat_obs_off", off_ms * 1e6);
    ReportResult("query_nomat_obs_on", on_ms * 1e6);
    // Percent in thousandths (the report writes integers): 1500 = 1.5%.
    ReportResult("obs_overhead_nomat_pct_milli", overhead_pct * 1e3);
  }
  return 0;
}
