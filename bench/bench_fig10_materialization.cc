// Figure 10: memory materialization (Dataset 2, arity 4, Intersection).
//
// Four configurations: no materialization, root materialized, root's
// children, root's grandchildren. Paper shape: query latency falls by up to
// ~8x while materialization memory grows.

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 10: effect of memory materialization");
  OpenReport("fig10_materialization");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  const std::vector<Timestamp> times = UniformTimepoints(data, 15);
  PrintRow({"materialized", "avg query", "mat memory", "nodes"}, 18);
  struct Config {
    const char* label;
    int depth;  // -1 = none.
  };
  const Config configs[] = {
      {"none", -1}, {"root", 0}, {"root children", 1}, {"root grandchildren", 2}};
  double baseline = 0;
  for (const auto& cfg : configs) {
    auto store = NewSimDiskStore();
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto dg = BuildIndex(store.get(), data, opts);
    if (cfg.depth >= 0) {
      auto mat = dg->MaterializeDepth(cfg.depth);
      if (!mat.ok()) std::abort();
    }
    double total = 0;
    for (Timestamp t : times) {
      Stopwatch sw;
      auto snap = dg->GetSnapshot(t, kCompAll);
      if (!snap.ok()) std::abort();
      total += sw.ElapsedMillis();
    }
    const double avg = total / times.size();
    if (cfg.depth < 0) baseline = avg;
    const auto stats = dg->Stats();
    PrintRow({cfg.label, FormatMs(avg), FormatBytes(stats.materialized_bytes),
              std::to_string(stats.materialized_nodes)},
             18);
    std::string op = "avg_query_depth_";
    op += (cfg.depth < 0 ? "none" : std::to_string(cfg.depth));
    ReportResult(op, avg * 1e6, stats.materialized_bytes);
    if (cfg.depth == 2) {
      std::printf("\nspeedup grandchildren vs none: %.2fx (paper: up to ~8x)\n",
                  baseline / avg);
    }
  }

  // --- Observability overhead (sampled gate < 2%, full-on gate < 3.5%) ------
  // The no-materialization sweep again, with metrics + trace spans fully off
  // vs fully on (trace *dumping* stays off — HISTGRAPH_TRACE gates that
  // separately, and the contract is about always-on recording cost).
  // Per-triple paired comparison, to keep simulated-disk jitter out of a
  // percent-level comparison.
  {
    auto store = NewSimDiskStore();
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto dg = BuildIndex(store.get(), data, opts);
    if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();  // Warm the LRU.
    // Three configurations: fully off; metrics + full tracing on; and the
    // production setup — metrics on, full tracing off, sampled tracing
    // (1-in-64 + tail arming) feeding the flight recorder, which is what
    // bench_traffic / HistGraphServer run always-on.
    enum { kOff = 0, kOn = 1, kSampled = 2 };
    constexpr int kRounds = 9;
    double triple_ms[3];
    double best[3] = {1e30, 1e30, 1e30};
    std::vector<double> ratio_on, ratio_sampled;
    auto run_config = [&](int cfg, Timestamp t) {
      obs::SetMetricsEnabled(cfg != kOff);
      obs::SetTraceEnabled(cfg == kOn);
      if (cfg == kSampled) {
        obs::TraceSampler::Global().Configure(64, 1000000, 4);
      }
      Stopwatch sw;
      if (!dg->GetSnapshot(t, kCompAll).ok()) std::abort();
      triple_ms[cfg] = sw.ElapsedMillis();
      if (cfg == kSampled) obs::TraceSampler::Global().Configure(0, 0, 0);
      best[cfg] = std::min(best[cfg], triple_ms[cfg]);
    };
    // Paired comparison at the finest granularity: an untimed warm query
    // first (the LRU does not hold all timestamps at once, so whoever runs
    // a timestamp first pays the simulated-disk fetches — that belongs to
    // no config), then the three configs back-to-back on the now-warm
    // timestamp — a ~15 ms window over which host drift is effectively
    // constant and cancels in the per-triple ratio — with the order
    // rotating so any residual within-triple bias cancels too. The median
    // over all per-triple ratios rejects the odd jittery triple that a
    // min-of-mins would fold into the gate.
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < times.size(); ++i) {
        obs::SetMetricsEnabled(false);
        obs::SetTraceEnabled(false);
        if (!dg->GetSnapshot(times[i], kCompAll).ok()) std::abort();
        const int start = static_cast<int>((round + i) % 3);
        for (int j = 0; j < 3; ++j) {
          run_config((start + j) % 3, times[i]);
        }
        ratio_on.push_back(triple_ms[kOn] / triple_ms[kOff]);
        ratio_sampled.push_back(triple_ms[kSampled] / triple_ms[kOff]);
      }
    }
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(GetEnvInt("HISTGRAPH_METRICS", 1) != 0);
    auto median_overhead_pct = [](std::vector<double> r) {
      std::sort(r.begin(), r.end());
      return (r[r.size() / 2] - 1.0) * 100.0;
    };
    const double off_ms = best[kOff];
    const double on_ms = best[kOn];
    const double sampled_ms = best[kSampled];
    const double overhead_pct = median_overhead_pct(ratio_on);
    const double sampled_pct = median_overhead_pct(ratio_sampled);
    std::printf("\nobservability overhead (no-mat avg query): off %s, on %s "
                "(%+.2f%%; debug gate < 3.5%%), sampled %s (%+.2f%%; "
                "production gate < 2%%)\n",
                FormatMs(off_ms).c_str(), FormatMs(on_ms).c_str(), overhead_pct,
                FormatMs(sampled_ms).c_str(), sampled_pct);
    ReportResult("query_nomat_obs_off", off_ms * 1e6);
    ReportResult("query_nomat_obs_on", on_ms * 1e6);
    ReportResult("query_nomat_obs_sampled", sampled_ms * 1e6);
    // Percent in thousandths (the report writes integers): 1500 = 1.5%.
    ReportResult("obs_overhead_nomat_pct_milli", overhead_pct * 1e3);
    ReportResult("obs_overhead_nomat_sampled_pct_milli", sampled_pct * 1e3);
  }
  return 0;
}
