// Figure 10: memory materialization (Dataset 2, arity 4, Intersection).
//
// Four configurations: no materialization, root materialized, root's
// children, root's grandchildren. Paper shape: query latency falls by up to
// ~8x while materialization memory grows.

#include "bench/bench_common.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 10: effect of memory materialization");
  OpenReport("fig10_materialization");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  const std::vector<Timestamp> times = UniformTimepoints(data, 15);
  PrintRow({"materialized", "avg query", "mat memory", "nodes"}, 18);
  struct Config {
    const char* label;
    int depth;  // -1 = none.
  };
  const Config configs[] = {
      {"none", -1}, {"root", 0}, {"root children", 1}, {"root grandchildren", 2}};
  double baseline = 0;
  for (const auto& cfg : configs) {
    auto store = NewSimDiskStore();
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto dg = BuildIndex(store.get(), data, opts);
    if (cfg.depth >= 0) {
      auto mat = dg->MaterializeDepth(cfg.depth);
      if (!mat.ok()) std::abort();
    }
    double total = 0;
    for (Timestamp t : times) {
      Stopwatch sw;
      auto snap = dg->GetSnapshot(t, kCompAll);
      if (!snap.ok()) std::abort();
      total += sw.ElapsedMillis();
    }
    const double avg = total / times.size();
    if (cfg.depth < 0) baseline = avg;
    const auto stats = dg->Stats();
    PrintRow({cfg.label, FormatMs(avg), FormatBytes(stats.materialized_bytes),
              std::to_string(stats.materialized_nodes)},
             18);
    std::string op = "avg_query_depth_";
    op += (cfg.depth < 0 ? "none" : std::to_string(cfg.depth));
    ReportResult(op, avg * 1e6, stats.materialized_bytes);
    if (cfg.depth == 2) {
      std::printf("\nspeedup grandchildren vs none: %.2fx (paper: up to ~8x)\n",
                  baseline / avg);
    }
  }
  return 0;
}
