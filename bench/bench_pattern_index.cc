// Section 4.7 extensibility example: subgraph pattern matching over the
// entire history through the auxiliary path index (paper: a query over
// Dataset 1 with ten random labels returned 14109 matches in 148 s).

#include "auxiliary/path_index.h"
#include "bench/bench_common.h"
#include "workload/trace_world.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Section 4.7: pattern matching over history via the path index");

  // Labeled growing co-authorship-like trace with ten labels, as the paper.
  const double scale = WorkloadScale();
  const size_t num_events = static_cast<size_t>(30000 * scale);
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(77);
  TraceWorld& w = *trace.world;
  Rng& rng = w.rng();
  Timestamp t = 1;
  for (size_t i = 0; i < 8; ++i) {
    const NodeId n = w.AddNode(t, 0, &trace.events);
    w.SetNodeAttr(t, n, "label", "l" + std::to_string(rng.Uniform(10)), &trace.events);
  }
  while (trace.events.size() < num_events) {
    t += 1;
    if (rng.Chance(0.25)) {
      const NodeId n = w.AddNode(t, 0, &trace.events);
      w.SetNodeAttr(t, n, "label", "l" + std::to_string(rng.Uniform(10)),
                    &trace.events);
    } else {
      w.AddRandomEdge(t, false, &trace.events);
    }
  }
  std::printf("trace: %zu events, %zu nodes, %zu edges, 10 labels\n",
              trace.events.size(), w.node_count(), w.edge_count());

  auto store = NewMemKVStore();
  PathIndex index(store.get());
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, trace.events.size() / 30);
  opts.arity = 4;
  auto dg_result = DeltaGraph::Create(store.get(), opts);
  if (!dg_result.ok()) std::abort();
  auto dg = std::move(dg_result).value();
  dg->RegisterAuxHook(&index);
  Stopwatch build_sw;
  if (!dg->AppendAll(trace.events).ok()) std::abort();
  if (!dg->Finalize().ok()) std::abort();
  std::printf("index built (with path maintenance) in %s\n",
              FormatMs(build_sw.ElapsedMillis()).c_str());
  std::printf("live path entries at head: %zu\n\n", index.current().PairCount());

  PatternGraph pattern;
  pattern.labels = {"l1", "l2", "l3", "l1"};
  pattern.edges = {{0, 1}, {1, 2}, {2, 3}};

  Stopwatch query_sw;
  std::set<PatternMatch> distinct;
  auto count = FindMatchesOverHistory(dg.get(), index, pattern, &distinct);
  if (!count.ok()) {
    std::printf("query failed: %s\n", count.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern l1-l2-l3-l1 over full history:\n");
  std::printf("  occurrences (boundary x match): %zu\n", count.value());
  std::printf("  distinct matches: %zu\n", distinct.size());
  std::printf("  query time: %s\n", FormatMs(query_sw.ElapsedMillis()).c_str());
  std::printf("\npaper shape: 14109 matches / 148 s on the full-size Dataset 1.\n");
  return 0;
}
