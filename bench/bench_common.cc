#include "bench/bench_common.h"

#include <cinttypes>
#include <cmath>

#include "obs/metrics.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace bench {

namespace {

double Scale() { return WorkloadScale(); }

void FillTimes(Dataset* d) {
  d->min_time = d->events.empty() ? d->initial_time : d->events.front().time;
  d->max_time = d->events.empty() ? d->initial_time : d->events.back().time;
}

}  // namespace

Dataset MakeDataset1() {
  Dataset d;
  d.name = "dataset1 (DBLP-like, growing-only)";
  DblpLikeOptions opts;
  opts.target_edges = static_cast<size_t>(40000 * Scale());
  opts.years = 70;
  opts.attrs_per_node = 10;
  opts.seed = 7;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  d.events = std::move(trace.events);
  FillTimes(&d);
  return d;
}

Dataset MakeDataset2() {
  Dataset d;
  d.name = "dataset2 (dataset1 snapshot + add/delete churn)";
  DblpLikeOptions opts;
  opts.target_edges = static_cast<size_t>(40000 * Scale());
  opts.years = 70;
  opts.attrs_per_node = 10;
  opts.seed = 7;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  d.initial = trace.world->graph();
  d.initial_time = trace.events.back().time;

  ChurnOptions churn;
  churn.num_events = static_cast<size_t>(120000 * Scale());
  churn.add_fraction = 0.5;
  churn.seed = 11;
  AppendChurnPhase(trace.world.get(), d.initial_time + 1, churn, &d.events);
  FillTimes(&d);
  return d;
}

Dataset MakeDataset3() {
  Dataset d;
  d.name = "dataset3 (patent-like start + heavy churn)";
  PatentLikeOptions opts;
  opts.initial_nodes = static_cast<size_t>(20000 * Scale());
  opts.initial_edges = static_cast<size_t>(70000 * Scale());
  opts.churn_events = 0;  // Bootstrap only; churn appended below.
  opts.seed = 13;
  GeneratedTrace trace = GeneratePatentLikeTrace(opts);
  d.initial = trace.world->graph();
  d.initial_time =
      trace.events.empty() ? 0 : trace.events.back().time;

  ChurnOptions churn;
  churn.num_events = static_cast<size_t>(200000 * Scale());
  churn.add_fraction = 0.5;
  churn.seed = 17;
  AppendChurnPhase(trace.world.get(), d.initial_time + 1, churn, &d.events);
  FillTimes(&d);
  return d;
}

std::unique_ptr<DeltaGraph> BuildIndex(KVStore* store, const Dataset& data,
                                       DeltaGraphOptions options) {
  auto dg = DeltaGraph::Create(store, options);
  if (!dg.ok()) {
    std::fprintf(stderr, "index create failed: %s\n", dg.status().ToString().c_str());
    std::abort();
  }
  auto index = std::move(dg).value();
  if (!data.initial.Empty()) {
    Status s = index->SetInitialSnapshot(data.initial, data.initial_time);
    if (!s.ok()) {
      std::fprintf(stderr, "initial snapshot failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  Status s = index->AppendAll(data.events);
  if (s.ok()) s = index->Finalize();
  if (!s.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return index;
}

KVStoreOptions SimulatedDiskOptions() {
  KVStoreOptions options;
  options.read_latency_us =
      static_cast<uint32_t>(GetEnvInt("HISTGRAPH_DISK_LAT_US", 500));
  options.read_throughput_mbps =
      static_cast<uint32_t>(GetEnvInt("HISTGRAPH_DISK_MBPS", 50));
  return options;
}

std::unique_ptr<KVStore> NewSimDiskStore() {
  return NewBenchStore(SimulatedDiskOptions());
}

std::unique_ptr<KVStore> NewBenchStore(const KVStoreOptions& options) {
  if (GetEnvString("HISTGRAPH_BENCH_STORE", "mem") == "disk") {
    // A real log-structured DiskKVStore (plus the simulated read costs) so CI
    // exercises the actual on-disk read path behind the prefetcher. Each call
    // gets a fresh scratch file; a bench process may open several stores.
    static int counter = 0;
    const std::string dir =
        FreshScratchDir("bench_store_" + std::to_string(counter++));
    std::unique_ptr<KVStore> store;
    Status s = OpenDiskKVStore(dir + "/db.log", options, &store);
    if (!s.ok()) {
      std::fprintf(stderr, "disk store open failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    return store;
  }
  return NewMemKVStore(options);
}

std::vector<Timestamp> UniformTimepoints(const Dataset& data, int count) {
  std::vector<Timestamp> out;
  const Timestamp lo = data.min_time;
  const Timestamp hi = data.max_time;
  for (int i = 1; i <= count; ++i) {
    out.push_back(lo + (hi - lo) * i / (count + 1));
  }
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("HISTGRAPH_SCALE=%.2f (paper sizes ~ scale 30+; shapes, not\n",
              Scale());
  std::printf("absolute numbers, are the reproduction target)\n");
  std::printf("==============================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable results
// ---------------------------------------------------------------------------

namespace {

struct ReportState {
  std::string name;
  struct Row {
    std::string op;
    double wall_ns = 0;
    uint64_t bytes = 0;
  };
  std::vector<Row> rows;
  bool written = false;
};

ReportState* g_report = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void OpenReport(const std::string& bench_name) {
  if (g_report == nullptr) {
    g_report = new ReportState();
    std::atexit(WriteReport);
  }
  g_report->name = bench_name;
  g_report->rows.clear();
  g_report->written = false;
  // Benches record metrics by default (HISTGRAPH_METRICS=0 opts out), so
  // every BENCH_*.json carries the registry snapshot of the whole run — CI
  // asserts the block is present.
  obs::SetMetricsEnabled(GetEnvInt("HISTGRAPH_METRICS", 1) != 0);
}

void ReportResult(const std::string& op, double wall_ns, uint64_t bytes) {
  if (g_report == nullptr) return;
  g_report->rows.push_back(ReportState::Row{op, wall_ns, bytes});
}

void WriteReport() {
  if (g_report == nullptr || g_report->written || g_report->name.empty()) return;
  g_report->written = true;
  std::string dir = GetEnvString("HISTGRAPH_BENCH_OUT_DIR", ".");
  const std::string path = dir + "/BENCH_" + g_report->name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %.4f,\n  \"results\": [\n",
               JsonEscape(g_report->name).c_str(), Scale());
  for (size_t i = 0; i < g_report->rows.size(); ++i) {
    const auto& r = g_report->rows[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"wall_ns\": %.0f, \"bytes\": %" PRIu64 "}%s\n",
                 JsonEscape(r.op).c_str(), r.wall_ns, r.bytes,
                 i + 1 < g_report->rows.size() ? "," : "");
  }
  // The whole run's metrics registry (counters/gauges/histograms + exports),
  // embedded verbatim so perf tooling can read hit rates and batch widths
  // next to the wall times.
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
               obs::MetricsRegistry::Global().ToJSON().c_str());
  std::fclose(f);
  std::printf("\n[bench report: %s]\n", path.c_str());
}

}  // namespace bench
}  // namespace hgdb
