// Figure 11: differential functions and retrieval-time distributions
// (Dataset 1, growing-only).
//
// (a) Intersection vs Balanced vs Balanced with the root materialized:
//     Intersection's latencies skew upward over time (newer snapshots are
//     larger); Balanced is uniform but higher on average; materializing the
//     Balanced root brings the average down while staying uniform.
// (b) Mixed functions with r1 = r2 in {0.1, 0.5, 0.9} tilt the latency
//     profile toward old or new snapshots.

#include "bench/bench_common.h"

namespace hgdb {
namespace bench {
namespace {

std::vector<double> RunSeries(const Dataset& data, const std::string& function,
                              bool materialize_root,
                              const std::vector<Timestamp>& times) {
  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 2;
  opts.functions = {function};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);
  if (materialize_root) {
    if (!dg->MaterializeDepth(0).ok()) std::abort();
  }
  std::vector<double> ms;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = dg->GetSnapshot(t, kCompAll);
    if (!snap.ok()) std::abort();
    ms.push_back(sw.ElapsedMillis());
  }
  return ms;
}

void Summarize(const char* label, const std::string& report_op,
               const std::vector<double>& ms) {
  double total = 0, first_half = 0, second_half = 0;
  for (size_t i = 0; i < ms.size(); ++i) {
    total += ms[i];
    (i < ms.size() / 2 ? first_half : second_half) += ms[i];
  }
  std::printf("%-28s avg=%-11s old-half=%-11s new-half=%s\n", label,
              FormatMs(total / ms.size()).c_str(),
              FormatMs(first_half / (ms.size() / 2)).c_str(),
              FormatMs(second_half / (ms.size() - ms.size() / 2)).c_str());
  ReportResult(report_op + "_avg", total / ms.size() * 1e6);
  ReportResult(report_op + "_old_half_avg", first_half / (ms.size() / 2) * 1e6);
  ReportResult(report_op + "_new_half_avg",
               second_half / (ms.size() - ms.size() / 2) * 1e6);
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 11: differential functions vs retrieval-time profile");
  OpenReport("fig11_diff_functions");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());
  const std::vector<Timestamp> times = UniformTimepoints(data, 20);

  std::printf("(a) Intersection vs Balanced (per-timepoint series)\n");
  auto inter = RunSeries(data, "intersection", false, times);
  auto bal = RunSeries(data, "balanced", false, times);
  auto bal_mat = RunSeries(data, "balanced", true, times);
  PrintRow({"timepoint", "intersection", "balanced", "balanced+rootmat"}, 18);
  for (size_t i = 0; i < times.size(); ++i) {
    PrintRow({std::to_string(times[i]), FormatMs(inter[i]), FormatMs(bal[i]),
              FormatMs(bal_mat[i])},
             18);
  }
  std::printf("\n");
  Summarize("intersection", "intersection", inter);
  Summarize("balanced", "balanced", bal);
  Summarize("balanced (root mat)", "balanced_rootmat", bal_mat);

  std::printf("\n(b) Mixed functions r1=r2 in {0.1, 0.5, 0.9}\n");
  auto m01 = RunSeries(data, "mixed:0.1:0.1", false, times);
  auto m05 = RunSeries(data, "mixed:0.5:0.5", false, times);
  auto m09 = RunSeries(data, "mixed:0.9:0.9", false, times);
  Summarize("mixed r=0.1 (old-favoring)", "mixed_r01", m01);
  Summarize("mixed r=0.5 (balanced)", "mixed_r05", m05);
  Summarize("mixed r=0.9 (new-favoring)", "mixed_r09", m09);
  std::printf(
      "\npaper shape: intersection skews toward newer snapshots; balanced is\n"
      "uniform; higher r shifts cost from new to old snapshots.\n");
  return 0;
}
