// Figure 8(b): multicore parallelism — average snapshot retrieval time on a
// partitioned DeltaGraph as worker threads grow from 1 to 4 (Dataset 2).
// Shape to reproduce: near-linear speedup.

#include "bench/bench_common.h"
#include "deltagraph/partitioned_delta_graph.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(b): partition-parallel retrieval, 1-4 cores");
  OpenReport("fig8b_multicore");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  constexpr int kPartitions = 4;
  std::vector<std::unique_ptr<KVStore>> stores;
  std::vector<KVStore*> ptrs;
  for (int i = 0; i < kPartitions; ++i) {
    stores.push_back(NewSimDiskStore());
    ptrs.push_back(stores.back().get());
  }
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(250, data.events.size() / 160);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto pdg = PartitionedDeltaGraph::Create(ptrs, opts);
  if (!pdg.ok()) std::abort();
  if (!data.initial.Empty()) {
    if (!pdg.value()->SetInitialSnapshot(data.initial, data.initial_time).ok()) {
      std::abort();
    }
  }
  if (!pdg.value()->AppendAll(data.events).ok()) std::abort();
  if (!pdg.value()->Finalize().ok()) std::abort();

  const std::vector<Timestamp> times = UniformTimepoints(data, 10);
  PrintRow({"# cores", "avg retrieval", "speedup"}, 16);
  double base = 0;
  for (int cores = 1; cores <= kPartitions; ++cores) {
    double total = 0;
    for (Timestamp t : times) {
      Stopwatch sw;
      auto snap = pdg.value()->GetSnapshot(t, kCompAll, cores);
      if (!snap.ok()) std::abort();
      total += sw.ElapsedMillis();
    }
    const double avg = total / times.size();
    if (cores == 1) base = avg;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", base / avg);
    PrintRow({std::to_string(cores), FormatMs(avg), speedup}, 16);
    ReportResult("avg_retrieval_cores" + std::to_string(cores), avg * 1e6);
  }
  std::printf("\npaper shape: near-linear speedup with cores.\n");
  return 0;
}
