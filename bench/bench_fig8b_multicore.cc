// Figure 8(b): scale-out retrieval — multipoint (k=8) retrieval latency over
// a sharded DeltaGraph as the shard count grows 1 -> 8 (Dataset 2). Each
// shard is a full engine on its own simulated disk and its own I/O lane, so
// the per-shard fetch pipelines overlap in flight; the paper ran one Kyoto
// Cabinet instance per machine. Shape to reproduce: retrieval time drops
// near-linearly with shards, because a single index's retrieval is dominated
// by its serial root-to-leaf fetch chain while P shards walk P chains — each
// ~P x smaller — concurrently.

#include "bench/bench_common.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "exec/io_pool.h"
#include "exec/task_pool.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(b): sharded scale-out retrieval, 1-8 shards");
  OpenReport("fig8b_multicore");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n", data.name.c_str(), data.events.size());

  // 100 us seeks (vs the 500 us default elsewhere): with a faster seek the
  // measured effect is the overlap of the per-shard pipelines' *byte* time,
  // not raw seek counts. 25 MB/s is scattered-small-read throughput for the
  // paper's era of commodity disks — it is what each shard's smaller deltas
  // divide, and what makes retrieval I/O-bound enough that the overlap (not
  // the CPU floor of decoding every delta on one core) sets the slope.
  KVStoreOptions disk = SimulatedDiskOptions();
  if (GetEnvInt("HISTGRAPH_DISK_LAT_US", -1) < 0) disk.read_latency_us = 100;
  if (GetEnvInt("HISTGRAPH_DISK_MBPS", -1) < 0) disk.read_throughput_mbps = 25;
  std::printf("simulated disk: %u us seek, %u MB/s\n\n", disk.read_latency_us,
              disk.read_throughput_mbps);

  const std::vector<Timestamp> times = UniformTimepoints(data, 8);  // k = 8.
  TaskPool pool(8);  // Fixed compute pool: only the shard count varies.
  IoPool io(8);      // One I/O lane per shard at the widest configuration.

  PrintRow({"# shards", "blocking", "speedup", "prefetch", "speedup"});
  double base_blocking = 0, base_prefetch = 0;
  for (int shards : {1, 2, 4, 8}) {
    std::vector<std::unique_ptr<KVStore>> stores;
    std::vector<KVStore*> ptrs;
    for (int i = 0; i < shards; ++i) {
      stores.push_back(NewBenchStore(disk));
      ptrs.push_back(stores.back().get());
    }
    DeltaGraphOptions opts;
    opts.leaf_size = std::max<size_t>(250, data.events.size() / 160);
    opts.arity = 4;
    opts.functions = {"intersection"};
    opts.maintain_current = false;
    auto pdg = PartitionedDeltaGraph::Create(ptrs, opts);
    if (!pdg.ok()) std::abort();
    pdg.value()->SetTaskPool(&pool);
    if (!data.initial.Empty()) {
      if (!pdg.value()->SetInitialSnapshot(data.initial, data.initial_time).ok()) {
        std::abort();
      }
    }
    if (!pdg.value()->AppendAll(data.events).ok()) std::abort();
    if (!pdg.value()->Finalize().ok()) std::abort();
    // Every measured run pays the storage costs, not decoded-LRU hits.
    pdg.value()->SetDecodedCacheCapacity(0);

    auto measure = [&](IoPool* io_pool) {
      pdg.value()->SetIoPool(io_pool);
      constexpr int kReps = 3;
      double total = 0;
      for (int r = 0; r < kReps; ++r) {
        Stopwatch sw;
        auto snaps = pdg.value()->GetSnapshots(times, kCompAll);
        if (!snaps.ok()) std::abort();
        total += sw.ElapsedMillis();
      }
      return total / kReps;
    };
    const double blocking_ms = measure(nullptr);
    const double prefetch_ms = measure(&io);
    if (shards == 1) {
      base_blocking = blocking_ms;
      base_prefetch = prefetch_ms;
    }
    char sb[16], sp[16];
    std::snprintf(sb, sizeof(sb), "%.2fx", base_blocking / blocking_ms);
    std::snprintf(sp, sizeof(sp), "%.2fx", base_prefetch / prefetch_ms);
    PrintRow({std::to_string(shards), FormatMs(blocking_ms), sb,
              FormatMs(prefetch_ms), sp});
    ReportResult("multipoint8_blocking_shards" + std::to_string(shards),
                 blocking_ms * 1e6);
    ReportResult("multipoint8_prefetch_shards" + std::to_string(shards),
                 prefetch_ms * 1e6);
    if (shards == 8) {
      // Recorded as ratios x1000 (the report field is integral nanoseconds).
      ReportResult("speedup_8v1_blocking_x1000",
                   base_blocking / blocking_ms * 1000.0);
      ReportResult("speedup_8v1_prefetch_x1000",
                   base_prefetch / prefetch_ms * 1000.0);
    }
  }
  std::printf("\npaper shape: near-linear speedup with shards (Figure 8(b)\n"
              "ran partitions on separate cores; here each shard is a full\n"
              "engine with its own store and I/O lane).\n");
  return 0;
}
