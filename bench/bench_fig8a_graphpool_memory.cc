// Figure 8(a): cumulative GraphPool memory while executing a sequence of 100
// uniformly spaced singlepoint queries (Datasets 1 and 2).
//
// Shape to reproduce: by overlaying snapshots the pool keeps memory near
// flat for the growing-only Dataset 1 (every snapshot is a subset of the
// current graph; only bitmaps grow) and far below disjoint storage for
// Dataset 2 (paper: ~600MB pooled vs 50GB disjoint).

#include "bench/bench_common.h"
#include "core/graph_manager.h"

namespace hgdb {
namespace bench {
namespace {

void RunOn(const Dataset& data) {
  std::printf("\n--- %s ---\n", data.name.c_str());
  auto store = NewMemKVStore();
  GraphManagerOptions gmo;
  gmo.index.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  gmo.index.arity = 4;
  auto gm = GraphManager::Create(store.get(), gmo);
  if (!gm.ok()) std::abort();
  if (!data.initial.Empty()) {
    if (!gm.value()->SetInitialSnapshot(data.initial, data.initial_time).ok()) {
      std::abort();
    }
  }
  if (!gm.value()->ApplyEvents(data.events).ok()) std::abort();
  if (!gm.value()->FinalizeIndex().ok()) std::abort();

  const std::vector<Timestamp> times = UniformTimepoints(data, 100);
  PrintRow({"query #", "pool memory", "disjoint sum"}, 16);
  size_t disjoint_sum = gm.value()->pool().MemoryBytes();
  std::vector<HistGraph> held;
  held.reserve(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    auto hist = gm.value()->GetHistGraph(times[i], "+node:all+edge:all");
    if (!hist.ok()) std::abort();
    // Disjoint cost: what the snapshot would occupy stored on its own.
    disjoint_sum +=
        gm.value()->pool().ExtractSnapshot(hist->pool_id()).MemoryBytes();
    held.push_back(std::move(hist).value());
    if ((i + 1) % 10 == 0) {
      PrintRow({std::to_string(i + 1),
                FormatBytes(gm.value()->pool().MemoryBytes()),
                FormatBytes(disjoint_sum)},
               16);
    }
  }
  std::printf("pooled/disjoint = %.2f%%  (paper shape: ~1%% for 100 snapshots)\n",
              100.0 * static_cast<double>(gm.value()->pool().MemoryBytes()) /
                  static_cast<double>(disjoint_sum));
  ReportResult("pool_memory_" + data.name.substr(0, data.name.find(' ')), 0,
               gm.value()->pool().MemoryBytes());
  ReportResult("disjoint_sum_" + data.name.substr(0, data.name.find(' ')), 0,
               disjoint_sum);
  for (auto& h : held) (void)gm.value()->Release(&h);
  gm.value()->RunCleaner();
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb::bench;
  PrintHeader("Figure 8(a): cumulative GraphPool memory over 100 queries");
  OpenReport("fig8a_graphpool_memory");
  RunOn(MakeDataset1());
  RunOn(MakeDataset2());
  return 0;
}
