// Figure 9: effect of the DeltaGraph construction parameters (Dataset 1).
//
// (a) Varying arity k: query time falls quickly then flattens; space grows
//     (with plateaus where the tree height does not change).
// (b) Varying the leaf-eventlist size L: space falls (fewer leaves), query
//     time rises sharply.

#include "bench/bench_common.h"

namespace hgdb {
namespace bench {
namespace {

struct Measurement {
  double avg_query_ms;
  uint64_t space_bytes;
  int height;
};

Measurement Measure(const Dataset& data, size_t L, int k) {
  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = L;
  opts.arity = k;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);
  const std::vector<Timestamp> times = UniformTimepoints(data, 10);
  double total = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = dg->GetSnapshot(t, kCompAll);
    if (!snap.ok()) std::abort();
    total += sw.ElapsedMillis();
  }
  const auto stats = dg->Stats();
  return Measurement{total / times.size(), stats.store_bytes, stats.height};
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 9: varying arity and leaf-eventlist size");
  OpenReport("fig9_construction");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n", data.name.c_str(), data.events.size());
  const size_t base_L = std::max<size_t>(400, data.events.size() / 60);

  std::printf("\n(a) varying arity, L=%zu\n", base_L);
  PrintRow({"arity", "avg query", "space", "height"}, 14);
  for (int k : {2, 4, 6, 8}) {
    Measurement m = Measure(data, base_L, k);
    PrintRow({std::to_string(k), FormatMs(m.avg_query_ms), FormatBytes(m.space_bytes),
              std::to_string(m.height)},
             14);
    ReportResult("avg_query_arity" + std::to_string(k), m.avg_query_ms * 1e6,
                 m.space_bytes);
  }

  std::printf("\n(b) varying leaf-eventlist size, arity=2\n");
  PrintRow({"L", "avg query", "space", "height"}, 14);
  for (size_t L : {base_L / 2, base_L, base_L * 2, base_L * 4}) {
    Measurement m = Measure(data, L, 2);
    PrintRow({std::to_string(L), FormatMs(m.avg_query_ms), FormatBytes(m.space_bytes),
              std::to_string(m.height)},
             14);
    ReportResult("avg_query_L" + std::to_string(L), m.avg_query_ms * 1e6,
                 m.space_bytes);
  }
  std::printf(
      "\npaper shape: (a) higher arity -> lower query time (flattening) and\n"
      "more space; (b) larger L -> less space, sharply higher query time.\n");
  return 0;
}
