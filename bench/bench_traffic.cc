// Traffic driver: mixed read/write load against a HistGraphServer.
//
// Models the paper's target deployment — a historical graph store serving
// "heavy traffic from millions of users" — as an open-loop driver: Zipf-
// skewed query times (recent history is hot), bursty exponential arrivals, a
// configurable read/write mix and single/multipoint blend. Two phases run
// against the same server and index:
//
//   A  ingest-idle:  readers only; the baseline read latency profile.
//   B  90/10 mix:    the same readers while the ingest strand continuously
//                    applies batches and periodic finalizes.
//
// Reported per phase: sustained QPS and p50/p95/p99 read latency, taken from
// the obs `server.query_us` histogram as a *windowed delta* (snapshot before
// / after each measured phase, quantiles recomputed over the subtracted
// buckets) so warmup iterations never pollute the reported tail. The final
// row reports phase B's p95 regression over phase A — the epoch/frontier
// machinery's whole point is keeping that small.
//
// Env knobs: HISTGRAPH_TRAFFIC_OPS (reads per phase, default 400),
// HISTGRAPH_TRAFFIC_READERS (reader threads, default 4),
// HISTGRAPH_TRAFFIC_QPS (target offered load, default 2000),
// HISTGRAPH_SCALE (index size), plus the bench-common store knobs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/hist_graph_server.h"
#include "workload/generators.h"

namespace hgdb {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

// Zipf-skewed pick over `buckets` ranks (rank 0 hottest), exponent ~1.1.
class ZipfPicker {
 public:
  explicit ZipfPicker(int buckets, double s = 1.1) : cdf_(buckets) {
    double total = 0;
    for (int i = 0; i < buckets; ++i) {
      total += 1.0 / std::pow(i + 1, s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int Pick(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0, 1)(rng);
    return static_cast<int>(std::lower_bound(cdf_.begin(), cdf_.end(), u) -
                            cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct TrafficConfig {
  Timestamp lo = 0, hi = 0;  ///< Queryable time span.
  int buckets = 64;          ///< Zipf buckets over the span (0 = newest).
  double p_multipoint = 0.2;
  int multipoint_times = 4;
  double target_qps = 2000;  ///< Offered load across all readers.
};

// One reader thread: `ops` queries against `server`, open-loop — arrivals
// follow a precomputed bursty-exponential schedule; when the server falls
// behind the schedule the reader does not slow down (queueing shows up as
// latency), which is what distinguishes an open-loop driver from a closed
// loop that politely waits.
void RunReader(HistGraphServer* server, const TrafficConfig& cfg, int ops,
               uint64_t seed, std::atomic<uint64_t>* completed,
               std::atomic<uint64_t>* errors) {
  std::mt19937_64 rng(seed);
  const ZipfPicker zipf(cfg.buckets);
  std::exponential_distribution<double> interarrival(cfg.target_qps);
  std::uniform_real_distribution<double> unit(0, 1);
  const double span = static_cast<double>(cfg.hi - cfg.lo);

  auto pick_time = [&] {
    // Rank 0 = the most recent bucket of the span.
    const int b = zipf.Pick(rng);
    const double bucket_width = span / cfg.buckets;
    const double hi_off = span - b * bucket_width;
    const double lo_off = std::max(0.0, hi_off - bucket_width);
    return cfg.lo +
           static_cast<Timestamp>(lo_off + unit(rng) * (hi_off - lo_off));
  };

  const auto start = Clock::now();
  double next_arrival_s = 0;
  for (int i = 0; i < ops; ++i) {
    // Bursty arrivals: every 64 ops, a 16-op burst arrives at 8x rate.
    const bool burst = (i % 64) < 16;
    next_arrival_s += interarrival(rng) * (burst ? 0.125 : 1.0);
    const auto scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_arrival_s));
    if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);

    std::vector<Timestamp> times;
    if (unit(rng) < cfg.p_multipoint) {
      times.reserve(cfg.multipoint_times);
      for (int k = 0; k < cfg.multipoint_times; ++k) times.push_back(pick_time());
    } else {
      times.push_back(pick_time());
    }
    auto r = server->Retrieve(times, kCompAll);
    if (r.ok()) {
      completed->fetch_add(1, std::memory_order_relaxed);
    } else {
      errors->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

struct PhaseStats {
  double qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, p999_us = 0;
  uint64_t reads = 0, errors = 0;
};

// Quantiles of the `server.query_us` histogram over the window
// [before, after] — the DeltaJSON windowing discipline, applied directly:
// subtract bucket counts, recompute quantiles over the difference.
void WindowedLatency(const obs::MetricsSnapshot& before,
                     const obs::MetricsSnapshot& after, PhaseStats* out) {
  auto it_after = after.histograms.find("server.query_us");
  if (it_after == after.histograms.end()) return;
  std::vector<uint64_t> window = it_after->second.buckets;
  auto it_before = before.histograms.find("server.query_us");
  if (it_before != before.histograms.end()) {
    const auto& prior = it_before->second.buckets;
    for (size_t i = 0; i < window.size() && i < prior.size(); ++i) {
      window[i] -= prior[i];
    }
  }
  out->p50_us = obs::Histogram::QuantileOf(window, 0.50);
  out->p95_us = obs::Histogram::QuantileOf(window, 0.95);
  out->p99_us = obs::Histogram::QuantileOf(window, 0.99);
  out->p999_us = obs::Histogram::QuantileOf(window, 0.999);
}

PhaseStats RunPhase(HistGraphServer* server, const TrafficConfig& cfg,
                    int total_ops, int readers, uint64_t seed_base) {
  std::atomic<uint64_t> completed{0}, errors{0};
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    TrafficConfig per_reader = cfg;
    per_reader.target_qps = cfg.target_qps / readers;
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back(RunReader, server, per_reader, total_ops / readers,
                           seed_base + r, &completed, &errors);
    }
    for (auto& t : threads) t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  PhaseStats stats;
  stats.reads = completed.load();
  stats.errors = errors.load();
  stats.qps = secs > 0 ? stats.reads / secs : 0;
  WindowedLatency(before, after, &stats);
  return stats;
}

}  // namespace

int Main() {
  PrintHeader("bench_traffic: mixed ingest/retrieval traffic via HistGraphServer");
  OpenReport("traffic");

  const int ops = static_cast<int>(GetEnvInt("HISTGRAPH_TRAFFIC_OPS", 400));
  const int readers =
      std::max<int>(1, GetEnvInt("HISTGRAPH_TRAFFIC_READERS", 4));
  const double qps = GetEnvDouble("HISTGRAPH_TRAFFIC_QPS", 2000);

  // One self-consistent event log: the first 80% is bulk-loaded and
  // finalized (the served index), the last 20% is the live ingest stream
  // phase B appends while readers run.
  GeneratedTrace trace = GenerateRandomTrace(RandomTraceOptions{
      .num_events = static_cast<size_t>(40000 * WorkloadScale()),
      .seed = 20130408,
  });
  const size_t split = trace.events.size() * 8 / 10;
  const std::vector<Event> base(trace.events.begin(),
                                trace.events.begin() + split);
  const std::vector<Event> live(trace.events.begin() + split,
                                trace.events.end());

  auto store = NewSimDiskStore();
  HistGraphServerOptions options;
  options.max_concurrent_queries = 256;
  // Production observability on for the whole run: 1-in-N sampled tracing
  // into the flight recorder, slow-query capture, and the ingest watchdog.
  // The fig10/fig8c obs-overhead gates bound what this configuration costs.
  options.trace_sample_every_n =
      static_cast<int>(GetEnvInt("HISTGRAPH_TRAFFIC_SAMPLE", 64));
  options.slow_query_us = GetEnvInt("HISTGRAPH_TRAFFIC_SLOW_US", 50000);
  options.watchdog_budget_us = GetEnvInt("HISTGRAPH_TRAFFIC_WATCHDOG_US", 50000);
  auto server_or = HistGraphServer::Create(store.get(), options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_or).value();

  {
    Stopwatch sw;
    for (size_t i = 0; i < base.size(); i += 2048) {
      const size_t n = std::min<size_t>(2048, base.size() - i);
      std::vector<Event> batch(base.begin() + i, base.begin() + i + n);
      if (!server->Append(std::move(batch)).ok()) return 1;
    }
    if (!server->Finalize().ok()) return 1;
    const Status s = server->Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu events in %s (epoch %llu)\n", base.size(),
                FormatMs(sw.ElapsedMillis()).c_str(),
                static_cast<unsigned long long>(server->frontier_epoch()));
  }

  TrafficConfig cfg;
  cfg.lo = base.front().time;
  cfg.hi = base.back().time;
  cfg.target_qps = qps;

  // Warmup (not measured): populate the decoded cache and page the skeleton
  // path. The phase snapshots below exclude everything recorded here.
  RunPhase(server.get(), cfg, std::max(32, ops / 8), readers, 1);

  // Phase A: ingest idle.
  const PhaseStats a = RunPhase(server.get(), cfg, ops, readers, 100);
  std::printf("phase A (ingest idle):  %7.0f qps  p50 %.0fus  p95 %.0fus  "
              "p99 %.0fus  p99.9 %.0fus  (%llu reads, %llu errors)\n",
              a.qps, a.p50_us, a.p95_us, a.p99_us, a.p999_us,
              static_cast<unsigned long long>(a.reads),
              static_cast<unsigned long long>(a.errors));

  // Phase B: same readers, while a writer streams the live 20% through the
  // ingest strand in small batches with periodic finalizes — a ~90/10
  // read/write op mix at the defaults.
  std::atomic<bool> writer_stop{false};
  std::atomic<uint64_t> batches_written{0};
  std::thread writer([&] {
    size_t i = 0;
    const size_t batch_size = 64;
    std::mt19937_64 wrng(7);
    std::exponential_distribution<double> gap(qps / 9 / batch_size);
    auto next = Clock::now();
    while (!writer_stop.load(std::memory_order_relaxed) && i < live.size()) {
      const size_t n = std::min(batch_size, live.size() - i);
      std::vector<Event> batch(live.begin() + i, live.begin() + i + n);
      if (server->Append(std::move(batch)).ok()) {
        i += n;
        batches_written.fetch_add(1, std::memory_order_relaxed);
      }
      if (batches_written.load(std::memory_order_relaxed) % 32 == 0) {
        (void)server->Finalize();
      }
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap(wrng)));
      std::this_thread::sleep_until(next);
    }
  });
  const PhaseStats b = RunPhase(server.get(), cfg, ops, readers, 200);
  writer_stop.store(true, std::memory_order_relaxed);
  writer.join();
  const Status ingest_status = server->Flush();
  std::printf("phase B (live ingest):  %7.0f qps  p50 %.0fus  p95 %.0fus  "
              "p99 %.0fus  p99.9 %.0fus  (%llu reads, %llu errors, %llu "
              "batches ingested, ingest %s)\n",
              b.qps, b.p50_us, b.p95_us, b.p99_us, b.p999_us,
              static_cast<unsigned long long>(b.reads),
              static_cast<unsigned long long>(b.errors),
              static_cast<unsigned long long>(batches_written.load()),
              ingest_status.ToString().c_str());

  const double regression_pct =
      a.p95_us > 0 ? (b.p95_us / a.p95_us - 1.0) * 100.0 : 0.0;
  std::printf("read p95 regression under ingest: %+.1f%%\n", regression_pct);

  // Injected slow query: drop the recorder's slow threshold to 1us, force a
  // trace, and run one wide multipoint — its full span tree must land in the
  // slow-query log with the pinned epoch/event_count (server_test pins the
  // same contract; this demonstrates it under real traffic state).
  uint64_t slow_captured = 0, slow_spans = 0;
  double slow_total_us = 0;
  {
    obs::FlightRecorder::Global().Configure(0, 0, 1);
    const bool was_tracing = obs::TraceEnabled();
    obs::SetTraceEnabled(true);
    std::vector<Timestamp> times;
    for (int k = 0; k < 16; ++k) {
      times.push_back(cfg.lo + (cfg.hi - cfg.lo) * k / 16);
    }
    auto r = server->Retrieve(times, kCompAll);
    obs::SetTraceEnabled(was_tracing);
    obs::FlightRecorder::Global().Configure(0, 0, options.slow_query_us);
    if (r.ok()) {
      const auto slow_log = obs::FlightRecorder::Global().Slow();
      for (auto it = slow_log.rbegin(); it != slow_log.rend(); ++it) {
        if (it->has_trace && !it->spans.empty() &&
            it->epoch == r.value().epoch &&
            it->event_count == r.value().event_count) {
          slow_captured = 1;
          slow_spans = it->spans.size();
          slow_total_us = it->total_us;
          break;
        }
      }
    }
    std::printf("injected slow query: %s (%llu spans, %.0fus)\n",
                slow_captured ? "captured in slow-query log" : "NOT captured",
                static_cast<unsigned long long>(slow_spans), slow_total_us);
  }

  // Injected ingest stall: delay the strand past the watchdog budget for one
  // op; the watchdog must flag it (and must not have killed anything — the
  // flush below still succeeds).
  const uint64_t stalls_before = server->stats().watchdog_stalls;
  server->SetIngestDelayForTesting(2 * options.watchdog_budget_us);
  (void)server->Finalize();
  const Status stall_flush = server->Flush();
  server->SetIngestDelayForTesting(0);
  const uint64_t stalls_after = server->stats().watchdog_stalls;
  std::printf("injected ingest stall: %llu -> %llu watchdog stalls (flush %s)\n",
              static_cast<unsigned long long>(stalls_before),
              static_cast<unsigned long long>(stalls_after),
              stall_flush.ToString().c_str());

  const auto st = server->stats();
  std::printf("server: %llu admitted, %llu rejected, %llu deadline, %llu slow, "
              "%llu stalls, epoch %llu\n",
              static_cast<unsigned long long>(st.queries_admitted),
              static_cast<unsigned long long>(st.queries_rejected),
              static_cast<unsigned long long>(st.deadlines_exceeded),
              static_cast<unsigned long long>(st.slow_queries),
              static_cast<unsigned long long>(st.watchdog_stalls),
              static_cast<unsigned long long>(st.frontier_epoch));

  // Statz surface: dump the full StatusJSON for statz_view (the CI statz
  // smoke renders it).
  if (const char* statz_out = std::getenv("HISTGRAPH_STATZ_OUT")) {
    std::ofstream f(statz_out);
    f << server->StatusJSON() << "\n";
    std::printf("statz written to %s\n", statz_out);
  }

  // Machine-readable rows (values carried in the wall_ns column; *_us rows
  // are microseconds * 1000 = ns, qps and pct rows use the unit their name
  // says, count rows carry the raw count). The CI smoke step asserts these
  // rows exist.
  ReportResult("phase_a_qps", a.qps);
  ReportResult("phase_a_read_p50_us", a.p50_us * 1000);
  ReportResult("phase_a_read_p95_us", a.p95_us * 1000);
  ReportResult("phase_a_read_p99_us", a.p99_us * 1000);
  ReportResult("phase_a_read_p999_us", a.p999_us * 1000);
  ReportResult("phase_b_qps", b.qps);
  ReportResult("phase_b_read_p50_us", b.p50_us * 1000);
  ReportResult("phase_b_read_p95_us", b.p95_us * 1000);
  ReportResult("phase_b_read_p99_us", b.p99_us * 1000);
  ReportResult("phase_b_read_p999_us", b.p999_us * 1000);
  ReportResult("read_p95_regression_pct_milli", regression_pct * 1000);
  ReportResult("slow_query_captured", static_cast<double>(slow_captured));
  ReportResult("slow_query_spans", static_cast<double>(slow_spans));
  ReportResult("watchdog_stall_injected",
               stalls_after > stalls_before ? 1.0 : 0.0);
  ReportResult("watchdog_stalls", static_cast<double>(stalls_after));
  return ingest_status.ok() && stall_flush.ok() && a.errors == 0 &&
                 b.errors == 0 && slow_captured == 1
             ? 0
             : 1;
}

}  // namespace bench
}  // namespace hgdb

int main() { return hgdb::bench::Main(); }
