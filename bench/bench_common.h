#ifndef HISTGRAPH_BENCH_BENCH_COMMON_H_
#define HISTGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/env_util.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "deltagraph/delta_graph.h"
#include "graph/snapshot.h"
#include "kvstore/kv_store.h"
#include "temporal/event.h"
#include "workload/generators.h"

namespace hgdb {
namespace bench {

/// \brief Scaled stand-ins for the paper's three datasets (Section 7).
///
/// Sizes scale with the HISTGRAPH_SCALE environment variable (default 1);
/// the paper's absolute sizes correspond to roughly scale 30 for Dataset 1/2
/// and scale 500 for Dataset 3. The benchmark harness reproduces *shapes*
/// (who wins, by what factor, where curves bend), not absolute numbers.
struct Dataset {
  std::string name;
  Snapshot initial;            ///< Starting snapshot (empty for Dataset 1).
  Timestamp initial_time = 0;  ///< Time of the starting snapshot.
  std::vector<Event> events;   ///< The indexed historical trace.
  Timestamp min_time = 0;      ///< First event time.
  Timestamp max_time = 0;      ///< Last event time.
};

/// Dataset 1: growing-only DBLP-like co-authorship network, ~70 "years",
/// 10 random attributes per node (paper: 2M edge additions).
Dataset MakeDataset1();

/// Dataset 2: Dataset 1's final graph as the starting snapshot, followed by
/// an equal mix of edge additions and deletions (paper: 2M events).
Dataset MakeDataset2();

/// Dataset 3: patent-citation-like starting snapshot followed by heavy churn
/// (paper: 3M nodes / 10M edges + 100M events); used by the partitioned
/// PageRank deployment experiment.
Dataset MakeDataset3();

/// Builds a DeltaGraph over a dataset (initial snapshot + events + finalize).
std::unique_ptr<DeltaGraph> BuildIndex(KVStore* store, const Dataset& data,
                                       DeltaGraphOptions options);

/// Store options with simulated disk characteristics (the paper's Kyoto
/// Cabinet lived on 2012-era EC2 disks; our store lives in RAM, which would
/// erase every disk-bound effect). Defaults: 500 us seek + 50 MB/s
/// sequential read (2012-era EBS ballpark), overridable via HISTGRAPH_DISK_LAT_US and
/// HISTGRAPH_DISK_MBPS (set both to 0 for raw in-memory timings).
KVStoreOptions SimulatedDiskOptions();

/// A memory-backed store with the simulated-disk read costs applied.
/// With HISTGRAPH_BENCH_STORE=disk, a real log-structured DiskKVStore in a
/// scratch directory instead (CI uses this to exercise the on-disk read path
/// behind the prefetcher).
std::unique_ptr<KVStore> NewSimDiskStore();

/// A store with explicit options, honoring the HISTGRAPH_BENCH_STORE backend
/// switch (mem | disk).
std::unique_ptr<KVStore> NewBenchStore(const KVStoreOptions& options);

/// `count` timepoints uniformly covering the dataset's indexed time span.
std::vector<Timestamp> UniformTimepoints(const Dataset& data, int count);

/// Prints the standard bench header (binary name + scale + dataset sizes).
void PrintHeader(const std::string& title);

/// Simple aligned table output helpers.
void PrintRow(const std::vector<std::string>& cells, int width = 14);
std::string FormatMs(double ms);
std::string FormatBytes(uint64_t bytes);

// -- Machine-readable results -------------------------------------------------
//
// Benches call OpenReport("<name>") once, then ReportResult per measured op.
// Results are written as BENCH_<name>.json into the working directory (or
// $HISTGRAPH_BENCH_OUT_DIR) at exit, so the perf trajectory across PRs can be
// tracked by tooling instead of by scraping stdout tables.

/// Starts a machine-readable report; registers the writer atexit.
void OpenReport(const std::string& bench_name);

/// Records one measured operation. `bytes` is optional payload volume.
void ReportResult(const std::string& op, double wall_ns, uint64_t bytes = 0);

/// Writes BENCH_<name>.json immediately (also runs atexit; idempotent).
void WriteReport();

}  // namespace bench
}  // namespace hgdb

#endif  // HISTGRAPH_BENCH_BENCH_COMMON_H_
