// Figure 8(d): columnar storage — retrieval of structure only vs structure
// plus attributes (Dataset 1, whose nodes carry 10 attribute pairs each).
// Paper shape: structure-only is >= 3x faster because the attribute columns
// are never fetched or processed. Also measures the raw codec: v1 columnar
// decode throughput for delta and eventlist blobs (struct vs attr
// components), which is where the zero-copy SoA decode shows up without any
// storage latency in the way.

#include "bench/bench_common.h"
#include "graph/delta.h"
#include "temporal/event_list.h"
#include "workload/trace_world.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(d): columnar retrieval, structure vs structure+attrs");
  OpenReport("fig8d_columnar");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);

  const std::vector<Timestamp> times = UniformTimepoints(data, 25);
  PrintRow({"timepoint", "structure+attrs", "structure only"}, 20);
  double full_total = 0, struct_total = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto full = dg->GetSnapshot(t, kCompAll);
    if (!full.ok()) std::abort();
    const double full_ms = sw.ElapsedMillis();
    sw.Restart();
    auto structure = dg->GetSnapshot(t, kCompStruct);
    if (!structure.ok()) std::abort();
    const double struct_ms = sw.ElapsedMillis();
    full_total += full_ms;
    struct_total += struct_ms;
    PrintRow({std::to_string(t), FormatMs(full_ms), FormatMs(struct_ms)}, 20);
  }
  const double avg_full_ms = full_total / times.size();
  const double avg_struct_ms = struct_total / times.size();
  const double struct_speedup = full_total / struct_total;
  std::printf("\navg structure+attrs: %s\n", FormatMs(avg_full_ms).c_str());
  std::printf("avg structure only:  %s\n", FormatMs(avg_struct_ms).c_str());
  std::printf("speedup: %.2fx (paper: >3x)\n", struct_speedup);
  ReportResult("avg_full_ms", avg_full_ms * 1e6);
  ReportResult("avg_struct_ms", avg_struct_ms * 1e6);
  // Dimensionless ratio in thousandths (the report stores numbers).
  ReportResult("struct_speedup", struct_speedup * 1e3);

  // --- Raw codec decode throughput ------------------------------------------
  // Bypasses the index: encode one big delta (full-history diff) and one big
  // eventlist, then time repeated decodes of the struct and attr blobs.
  {
    std::printf("\ncodec decode throughput (no storage, no cache):\n");
    RandomTraceOptions topts;
    topts.num_events = 20000;
    topts.seed = 7;
    topts.p_node_attr = 0.3;  // Attr-heavy: the dictionary path dominates.
    GeneratedTrace trace = GenerateRandomTrace(topts);
    const Timestamp t_end = trace.events.back().time;
    Snapshot g1 = ReplayAt(trace.events, t_end / 2);
    Snapshot g2 = ReplayAt(trace.events, t_end);
    Delta d = Delta::Between(g2, g1);
    EventList el(trace.events);

    struct Case {
      const char* name;
      ComponentMask mask;
      bool is_events;
    };
    const Case cases[] = {
        {"delta_struct", kCompStruct, false},
        {"delta_nodeattr", kCompNodeAttr, false},
        {"events_struct", kCompStruct, true},
        {"events_nodeattr", kCompNodeAttr, true},
    };
    PrintRow({"blob", "bytes", "decode MB/s", "decode ms"}, 18);
    for (const Case& c : cases) {
      std::string blob;
      if (c.is_events) {
        el.EncodeComponent(c.mask, &blob);
      } else {
        d.EncodeComponent(c.mask, &blob);
      }
      if (blob.empty()) continue;
      constexpr int kReps = 50;
      Stopwatch sw;
      for (int r = 0; r < kReps; ++r) {
        if (c.is_events) {
          EventList back;
          if (!back.DecodeAndMergeComponent(blob).ok()) std::abort();
          back.FinalizeMerge();
        } else {
          Delta back;
          if (!back.DecodeComponent(c.mask, blob).ok()) std::abort();
        }
      }
      const double ms = sw.ElapsedMillis() / kReps;
      const double mbps = (blob.size() / 1e6) / (ms / 1e3);
      char mbps_s[24];
      std::snprintf(mbps_s, sizeof(mbps_s), "%.0f", mbps);
      PrintRow({c.name, std::to_string(blob.size()), mbps_s, FormatMs(ms)}, 18);
      ReportResult(std::string("decode_") + c.name, ms * 1e6, blob.size());
    }
  }
  return 0;
}
