// Figure 8(d): columnar storage — retrieval of structure only vs structure
// plus attributes (Dataset 1, whose nodes carry 10 attribute pairs each).
// Paper shape: structure-only is >= 3x faster because the attribute columns
// are never fetched or processed.

#include "bench/bench_common.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(d): columnar retrieval, structure vs structure+attrs");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);

  const std::vector<Timestamp> times = UniformTimepoints(data, 25);
  PrintRow({"timepoint", "structure+attrs", "structure only"}, 20);
  double full_total = 0, struct_total = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto full = dg->GetSnapshot(t, kCompAll);
    if (!full.ok()) std::abort();
    const double full_ms = sw.ElapsedMillis();
    sw.Restart();
    auto structure = dg->GetSnapshot(t, kCompStruct);
    if (!structure.ok()) std::abort();
    const double struct_ms = sw.ElapsedMillis();
    full_total += full_ms;
    struct_total += struct_ms;
    PrintRow({std::to_string(t), FormatMs(full_ms), FormatMs(struct_ms)}, 20);
  }
  std::printf("\navg structure+attrs: %s\n", FormatMs(full_total / times.size()).c_str());
  std::printf("avg structure only:  %s\n",
              FormatMs(struct_total / times.size()).c_str());
  std::printf("speedup: %.2fx (paper: >3x)\n", full_total / struct_total);
  return 0;
}
