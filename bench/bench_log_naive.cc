// Naive Log baseline (Section 7, text): "The average retrieval times were
// worse than DeltaGraph by factors of 20 and 23 for Datasets 1 and 2
// respectively."

#include "baselines/copy_log_index.h"
#include "bench/bench_common.h"

namespace hgdb {
namespace bench {
namespace {

void RunOn(const Dataset& data) {
  std::printf("\n--- %s ---\n", data.name.c_str());
  const std::vector<Timestamp> times = UniformTimepoints(data, 8);
  const size_t L = std::max<size_t>(500, data.events.size() / 40);

  auto log_store = NewSimDiskStore();
  LogIndex log(log_store.get(), 4096, /*text_format=*/true);
  {
    std::vector<Event> all;
    for (NodeId n : data.initial.nodes()) {
      all.push_back(Event::AddNode(data.initial_time, n));
    }
    for (const auto& [n, attrs] : data.initial.node_attrs()) {
      for (const auto& [k, v] : attrs) {
        all.push_back(
          Event::SetNodeAttr(data.initial_time, n, AttrStr(k), std::nullopt, AttrStr(v)));
      }
    }
    for (const auto& [id, rec] : data.initial.edges()) {
      all.push_back(
          Event::AddEdge(data.initial_time, id, rec.src, rec.dst, rec.directed));
    }
    all.insert(all.end(), data.events.begin(), data.events.end());
    if (!log.Build(all).ok()) std::abort();
  }

  auto dg_store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = L;
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(dg_store.get(), data, opts);

  double log_total = 0, dg_total = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto s1 = log.GetSnapshot(t, kCompAll);
    if (!s1.ok()) std::abort();
    log_total += sw.ElapsedMillis();
    sw.Restart();
    auto s2 = dg->GetSnapshot(t, kCompAll);
    if (!s2.ok()) std::abort();
    dg_total += sw.ElapsedMillis();
  }
  std::printf("log(text):  avg %s\n", FormatMs(log_total / times.size()).c_str());
  std::printf("deltagraph: avg %s\n", FormatMs(dg_total / times.size()).c_str());
  std::printf("log/deltagraph ratio: %.1fx (paper: 20x / 23x)\n",
              log_total / dg_total);
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb::bench;
  PrintHeader("Naive Log baseline vs DeltaGraph (Section 7 text)");
  RunOn(MakeDataset1());
  RunOn(MakeDataset2());
  return 0;
}
