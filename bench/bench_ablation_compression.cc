// Ablation (design choice called out in DESIGN.md): the store's built-in
// value compression. The paper notes the index "is stored in a compressed
// fashion (using built-in compression in Kyoto Cabinet)"; this bench
// quantifies what that buys on our LZ codec: disk bytes vs. retrieval time,
// under the simulated-disk model (compression trades CPU for fetched bytes).

#include "bench/bench_common.h"

namespace hgdb {
namespace bench {
namespace {

void RunOn(const Dataset& data, bool compress) {
  KVStoreOptions kv = SimulatedDiskOptions();
  kv.compress_values = compress;
  auto store = NewMemKVStore(kv);
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);

  const std::vector<Timestamp> times = UniformTimepoints(data, 12);
  double total = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = dg->GetSnapshot(t, kCompAll);
    if (!snap.ok()) std::abort();
    total += sw.ElapsedMillis();
  }
  std::printf("%-16s disk=%-12s avg query=%s\n",
              compress ? "compressed" : "uncompressed",
              FormatBytes(dg->Stats().store_bytes).c_str(),
              FormatMs(total / times.size()).c_str());
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb::bench;
  PrintHeader("Ablation: built-in store compression (disk vs query time)");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());
  RunOn(data, /*compress=*/true);
  RunOn(data, /*compress=*/false);
  std::printf(
      "\nCompression shrinks the stored deltas (attribute strings compress\n"
      "well) and, under disk-bound retrieval, also cuts query latency — the\n"
      "reason the paper stores the index compressed.\n");
  return 0;
}
