// Contention micro-bench for the sharded StringInterner: threads hammer
// Intern() under three mixes — all-miss (every op interns a fresh string:
// pure write-side contention, the case sharding targets), all-hit (a shared
// pool of pre-interned strings: the lock-free probe path), and a 90/10
// hit/miss mix (the shape decode workloads actually have — most attribute
// strings repeat, a few are first sightings).
//
// Output: ops/s per (mix, thread count) on stdout and BENCH_interner.json
// rows named `<mix>_t<threads>_ns_per_op`.
//
// Knobs: HISTGRAPH_INTERNER_OPS (per thread, default 200000),
//        HISTGRAPH_INTERNER_MAX_THREADS (default 8).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env_util.h"
#include "common/interner.h"
#include "common/stopwatch.h"

namespace hgdb {
namespace {

using bench::OpenReport;
using bench::PrintHeader;
using bench::ReportResult;
using bench::WriteReport;

// Tags make every phase's miss strings globally fresh (the interner is
// append-only and process-wide, so reuse across phases would turn misses
// into hits).
std::string MissKey(int phase, int tid, int i) {
  return "bench-miss-" + std::to_string(phase) + "-" + std::to_string(tid) +
         "-" + std::to_string(i);
}

struct MixResult {
  double ns_per_op = 0;
  double mops = 0;
};

// hit_per_mille: 0 = all miss, 1000 = all hit.
MixResult RunMix(int phase, int threads, int ops_per_thread, int hit_per_mille,
                 const std::vector<AttrId>& pool) {
  auto& interner = StringInterner::Global();
  std::vector<std::thread> workers;
  Stopwatch sw;
  for (int tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      uint64_t x = 0x9e3779b97f4a7c15ull * (tid + 1) + phase;
      int fresh = 0;
      for (int i = 0; i < ops_per_thread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (static_cast<int>(x % 1000) < hit_per_mille) {
          const std::string& s = interner.Get(pool[x % pool.size()]);
          if (interner.Intern(s) == kInvalidAttrId) std::abort();
        } else {
          if (interner.Intern(MissKey(phase, tid, fresh++)) == kInvalidAttrId) {
            std::abort();
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double total_ns = sw.ElapsedMicros() * 1000.0;
  const double ops = static_cast<double>(threads) * ops_per_thread;
  return MixResult{total_ns / ops, ops * 1000.0 / total_ns};
}

int Main() {
  const int ops = GetEnvInt("HISTGRAPH_INTERNER_OPS", 200000);
  const int max_threads = GetEnvInt("HISTGRAPH_INTERNER_MAX_THREADS", 8);
  PrintHeader("interner contention (sharded write path)");
  OpenReport("interner");

  // Shared hit pool, sized like a real attribute vocabulary.
  std::vector<AttrId> pool;
  for (int i = 0; i < 4096; ++i) {
    pool.push_back(InternAttr("bench-pool-" + std::to_string(i)));
  }

  struct Mix {
    const char* name;
    int hit_per_mille;
  };
  const Mix mixes[] = {{"miss", 0}, {"hit", 1000}, {"mixed90", 900}};
  int phase = 0;
  for (const Mix& mix : mixes) {
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      const MixResult r = RunMix(++phase, threads, ops, mix.hit_per_mille, pool);
      std::printf("  %-8s t=%d  %8.1f ns/op  %7.2f Mops/s\n", mix.name,
                  threads, r.ns_per_op, r.mops);
      ReportResult(std::string(mix.name) + "_t" + std::to_string(threads) +
                       "_ns_per_op",
                   r.ns_per_op);
    }
  }
  std::printf("  interned strings: %zu (%.1f MB)\n",
              StringInterner::Global().size(),
              StringInterner::Global().MemoryBytes() / (1024.0 * 1024.0));
  WriteReport();
  return 0;
}

}  // namespace
}  // namespace hgdb

int main() { return hgdb::Main(); }
