// Hot-path micro-benchmarks (google-benchmark): event application, delta
// diff/apply/serde, key-value store operations, LZ compression, bitmap
// membership, and GraphPool overlay.

#include <benchmark/benchmark.h>

#include "common/dynamic_bitset.h"
#include "graph/delta.h"
#include "graphpool/graph_pool.h"
#include "kvstore/compression.h"
#include "kvstore/kv_store.h"
#include "deltagraph/delta_graph.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

const GeneratedTrace& SharedTrace() {
  static GeneratedTrace* trace = [] {
    RandomTraceOptions opts;
    opts.num_events = 20000;
    opts.seed = 1;
    return new GeneratedTrace(GenerateRandomTrace(opts));
  }();
  return *trace;
}

void BM_EventApplyForward(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  for (auto _ : state) {
    Snapshot g;
    for (const auto& e : events) {
      benchmark::DoNotOptimize(g.Apply(e, true));
    }
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_EventApplyForward);

void BM_DeltaBetween(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  const Timestamp t_end = events.back().time;
  Snapshot g1 = ReplayAt(events, t_end / 2);
  Snapshot g2 = ReplayAt(events, t_end);
  for (auto _ : state) {
    Delta d = Delta::Between(g2, g1);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DeltaBetween);

void BM_DeltaApply(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  const Timestamp t_end = events.back().time;
  Snapshot g1 = ReplayAt(events, t_end / 2);
  Snapshot g2 = ReplayAt(events, t_end);
  Delta d = Delta::Between(g2, g1);
  for (auto _ : state) {
    Snapshot g = g1;
    benchmark::DoNotOptimize(d.ApplyTo(&g, true));
  }
  state.SetItemsProcessed(state.iterations() * d.ElementCount());
}
BENCHMARK(BM_DeltaApply);

void BM_DeltaEncodeDecode(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  const Timestamp t_end = events.back().time;
  Snapshot g1 = ReplayAt(events, t_end / 2);
  Snapshot g2 = ReplayAt(events, t_end);
  Delta d = Delta::Between(g2, g1);
  std::string blob;
  for (auto _ : state) {
    d.EncodeComponent(kCompStruct, &blob);
    Delta back;
    benchmark::DoNotOptimize(back.DecodeComponent(kCompStruct, blob));
  }
  state.SetBytesProcessed(state.iterations() * blob.size());
}
BENCHMARK(BM_DeltaEncodeDecode);

void BM_KVStorePutGet(benchmark::State& state) {
  auto store = NewMemKVStore();
  Rng rng(3);
  std::string value = rng.String(512);
  size_t i = 0;
  std::string out;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i % 1024);
    benchmark::DoNotOptimize(store->Put(key, value));
    benchmark::DoNotOptimize(store->Get(key, &out));
    ++i;
  }
}
BENCHMARK(BM_KVStorePutGet);

void BM_LzCompress(benchmark::State& state) {
  std::string data;
  for (int i = 0; i < 2000; ++i) data += "node:" + std::to_string(i % 97) + ";";
  std::string out;
  for (auto _ : state) {
    CompressValue(data, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  std::string data;
  for (int i = 0; i < 2000; ++i) data += "node:" + std::to_string(i % 97) + ";";
  std::string compressed, out;
  CompressValue(data, &compressed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecompressValue(compressed, &out));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzDecompress);

void BM_BitsetMembership(benchmark::State& state) {
  DynamicBitset bm;
  for (size_t i = 0; i < 128; i += 3) bm.Set(i);
  size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += bm.Test(i % 128);
    ++i;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_BitsetMembership);

void BM_PoolOverlayHistorical(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  const Timestamp t_end = events.back().time;
  Snapshot full = ReplayAt(events, t_end);
  Snapshot half = ReplayAt(events, t_end / 2);
  for (auto _ : state) {
    state.PauseTiming();
    GraphPool pool;
    pool.InitCurrent(full);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.OverlayHistorical(half));
  }
  state.SetItemsProcessed(state.iterations() * half.ElementCount());
}
BENCHMARK(BM_PoolOverlayHistorical);

void BM_PoolDependentOverlay(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  const Timestamp t_end = events.back().time;
  Snapshot full = ReplayAt(events, t_end);
  Snapshot near = ReplayAt(events, t_end - 50);
  Delta diff = Delta::Between(near, full);
  for (auto _ : state) {
    state.PauseTiming();
    GraphPool pool;
    pool.InitCurrent(full);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.OverlayDependent(kCurrentGraph, diff));
  }
}
BENCHMARK(BM_PoolDependentOverlay);

void BM_PlanSinglepointUncached(benchmark::State& state) {
  const auto& events = SharedTrace().events;
  auto store = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 500;
  opts.arity = 2;
  opts.use_plan_cache = false;
  auto dg = DeltaGraph::Create(store.get(), opts).value();
  (void)dg->AppendAll(events);
  (void)dg->Finalize();
  const Timestamp mid = events.back().time / 2;
  for (auto _ : state) {
    auto plan = dg->PlanFor({mid});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanSinglepointUncached);

void BM_PlanSinglepointCached(benchmark::State& state) {
  // The paper's "incrementally maintaining single source shortest paths"
  // future-work item: repeated singlepoint planning reuses one SSSP.
  const auto& events = SharedTrace().events;
  auto store = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 500;
  opts.arity = 2;
  auto dg = DeltaGraph::Create(store.get(), opts).value();
  (void)dg->AppendAll(events);
  (void)dg->Finalize();
  Planner planner(PlannerContext{.skeleton = &dg->skeleton()});
  SsspCache cache;
  const Timestamp mid = events.back().time / 2;
  for (auto _ : state) {
    auto plan = planner.PlanSinglepointCached(mid, kCompAll, &cache);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanSinglepointCached);

}  // namespace
}  // namespace hgdb

BENCHMARK_MAIN();
