// Figure 7: in-memory interval tree vs DeltaGraph configurations, Dataset 2.
//
// The paper compares (a) an in-memory interval tree, (b) a largely disk-
// resident DeltaGraph with the root's grandchildren materialized, and (c) a
// DeltaGraph with all leaves materialized (total materialization), over 25
// queries with k = 4. Both DeltaGraph variants beat the interval tree while
// using significantly less memory.

#include "baselines/interval_tree_index.h"
#include "bench/bench_common.h"
#include "graphpool/graph_pool.h"

namespace hgdb {
namespace bench {
namespace {

std::vector<Event> FlattenWithInitial(const Dataset& data) {
  std::vector<Event> all;
  for (NodeId n : data.initial.nodes()) {
    all.push_back(Event::AddNode(data.initial_time, n));
  }
  for (const auto& [n, attrs] : data.initial.node_attrs()) {
    for (const auto& [k, v] : attrs) {
      all.push_back(
          Event::SetNodeAttr(data.initial_time, n, AttrStr(k), std::nullopt, AttrStr(v)));
    }
  }
  for (const auto& [id, rec] : data.initial.edges()) {
    all.push_back(
        Event::AddEdge(data.initial_time, id, rec.src, rec.dst, rec.directed));
  }
  for (const auto& [id, attrs] : data.initial.edge_attrs()) {
    for (const auto& [k, v] : attrs) {
      all.push_back(
          Event::SetEdgeAttr(data.initial_time, id, AttrStr(k), std::nullopt, AttrStr(v)));
    }
  }
  all.insert(all.end(), data.events.begin(), data.events.end());
  return all;
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 7: interval tree vs DeltaGraph materialization levels");
  Dataset data = MakeDataset2();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());
  const std::vector<Timestamp> times = UniformTimepoints(data, 25);
  const size_t L = std::max<size_t>(500, data.events.size() / 30);

  // (a) Interval tree.
  IntervalTreeIndex itree;
  {
    auto all = FlattenWithInitial(data);
    if (!itree.Build(all).ok()) std::abort();
  }
  // (b) DeltaGraph, root's grandchildren materialized.
  auto store_b = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = L;
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg_gc = BuildIndex(store_b.get(), data, opts);
  if (!dg_gc->MaterializeDepth(2).ok()) std::abort();
  // (c) DeltaGraph, total materialization.
  auto store_c = NewSimDiskStore();
  auto dg_total = BuildIndex(store_c.get(), data, opts);
  if (!dg_total->MaterializeAllLeaves().ok()) std::abort();

  struct Row {
    const char* label;
    double avg_ms;
    uint64_t memory;
  };
  auto run = [&](auto&& get) {
    double total = 0;
    std::vector<double> per;
    for (Timestamp t : times) {
      Stopwatch sw;
      get(t);
      per.push_back(sw.ElapsedMillis());
      total += per.back();
    }
    return std::make_pair(total / times.size(), per);
  };

  auto [it_avg, it_per] = run([&](Timestamp t) {
    auto s = itree.GetSnapshot(t, kCompAll);
    if (!s.ok()) std::abort();
  });
  auto [gc_avg, gc_per] = run([&](Timestamp t) {
    auto s = dg_gc->GetSnapshot(t, kCompAll);
    if (!s.ok()) std::abort();
  });
  auto [tot_avg, tot_per] = run([&](Timestamp t) {
    auto s = dg_total->GetSnapshot(t, kCompAll);
    if (!s.ok()) std::abort();
  });

  PrintRow({"timepoint", "interval-tree", "DG(gc mat)", "DG(total mat)"}, 18);
  for (size_t i = 0; i < times.size(); ++i) {
    PrintRow({std::to_string(times[i]), FormatMs(it_per[i]), FormatMs(gc_per[i]),
              FormatMs(tot_per[i])},
             18);
  }
  // The paper's total materialization keeps the leaf snapshots *overlaid* in
  // the GraphPool ("the snapshots are stored in memory in an overlaid
  // fashion"); measure that footprint rather than disjoint copies.
  GraphPool overlaid;
  for (int32_t leaf : dg_total->skeleton().leaves()) {
    const Snapshot* snap = dg_total->materialized_snapshot(leaf);
    if (snap != nullptr) (void)overlaid.OverlayMaterialized(*snap);
  }

  std::printf("\n(a) retrieval time  (b) permanent index memory\n");
  Row rows[] = {
      {"interval-tree", it_avg, itree.MemoryBytes()},
      {"DG (root GC mat)", gc_avg, dg_gc->Stats().materialized_bytes},
      {"DG (total mat)", tot_avg, overlaid.MemoryBytes()},
  };
  for (const auto& r : rows) {
    std::printf("%-20s avg=%-12s memory=%s\n", r.label, FormatMs(r.avg_ms).c_str(),
                FormatBytes(r.memory).c_str());
  }
  std::printf("(total mat disjoint copies would be %s; the GraphPool overlay\n"
              "is what keeps it feasible)\n",
              FormatBytes(dg_total->Stats().materialized_bytes).c_str());
  std::printf(
      "\npaper shape: both DG variants beat the interval tree with less\n"
      "memory; at our scale every approach bottoms out at the cost of\n"
      "constructing the result snapshot, so times converge while the\n"
      "overlaid-memory ordering still holds.\n");
  return 0;
}
