// Bitmap penalty (Section 7, text): PageRank computed directly on a plain
// snapshot vs through the GraphPool's bitmap-filtered view. The paper
// measured 1890 ms -> 2014 ms, i.e. < 7% overhead.

#include <algorithm>

#include "bench/bench_common.h"
#include "compute/algorithms.h"
#include "compute/graph_accessor.h"
#include "graphpool/graph_pool.h"
#include "workload/trace_world.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("GraphPool bitmap penalty on PageRank (Section 7 text)");
  Dataset data = MakeDataset1();
  Snapshot snap = ReplayAt(data.events, data.max_time, kCompStruct);
  std::printf("snapshot: %zu nodes / %zu edges\n\n", snap.NodeCount(),
              snap.EdgeCount());

  GraphPool pool;
  pool.InitCurrent(snap);

  constexpr int kIters = 10;
  constexpr int kTrials = 7;
  // Both runs walk the *same* pool structures; the only difference is the
  // per-edge bitmap membership test — exactly what the paper measures.
  // Trials interleave the two paths and the medians are compared, since a
  // single ~100 ms run is at the mercy of scheduler noise.
  UnionPoolAccessor acc(&pool);
  HistViewAccessor vacc(pool.View(kCurrentGraph));
  (void)PageRank(acc, 2);  // Warm-up.
  (void)PageRank(vacc, 2);

  std::vector<double> plain_runs, view_runs;
  std::unordered_map<NodeId, double> r1, r2;
  for (int trial = 0; trial < kTrials; ++trial) {
    Stopwatch sw;
    r1 = PageRank(acc, kIters);
    plain_runs.push_back(sw.ElapsedMillis());
    sw.Restart();
    r2 = PageRank(vacc, kIters);
    view_runs.push_back(sw.ElapsedMillis());
  }
  std::sort(plain_runs.begin(), plain_runs.end());
  std::sort(view_runs.begin(), view_runs.end());
  const double plain_ms = plain_runs[kTrials / 2];
  const double view_ms = view_runs[kTrials / 2];

  // Sanity: identical results.
  double max_diff = 0;
  for (const auto& [v, r] : r1) {
    max_diff = std::max(max_diff, std::abs(r - r2[v]));
  }

  std::printf("PageRank without bitmaps: %s\n", FormatMs(plain_ms).c_str());
  std::printf("PageRank with bitmaps:    %s\n", FormatMs(view_ms).c_str());
  std::printf("penalty: %.1f%% (paper: <7%%; rank max diff %.2e)\n",
              100.0 * (view_ms - plain_ms) / plain_ms, max_diff);
  std::printf(
      "note: both runs traverse the pool's union adjacency; the penalty is\n"
      "purely the per-edge bitmap membership test, as in the paper.\n");
  return 0;
}
