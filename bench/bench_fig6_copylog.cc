// Figure 6: Copy+Log vs DeltaGraph(Intersection), Datasets 1 and 2.
//
// The paper executes 25 uniformly spaced singlepoint queries with the leaf-
// eventlist sizes chosen so both approaches consume about the same disk
// space ("for similar disk space constraints, the DeltaGraph could afford a
// smaller L"); the best DeltaGraph variant beat Copy+Log by >= 4x and by
// orders of magnitude on many timepoints. Dataset 2 additionally shows
// DG(Int) with the root materialized.

#include "baselines/copy_log_index.h"
#include "bench/bench_common.h"

namespace hgdb {
namespace bench {
namespace {

struct Series {
  std::string label;
  std::vector<double> ms;
  uint64_t disk_bytes = 0;
};

/// Copy+Log takes one flat trace: prepend the initial snapshot as events.
std::vector<Event> Flatten(const Dataset& data) {
  std::vector<Event> all;
  for (NodeId n : data.initial.nodes()) {
    all.push_back(Event::AddNode(data.initial_time, n));
  }
  for (const auto& [n, attrs] : data.initial.node_attrs()) {
    for (const auto& [k, v] : attrs) {
      all.push_back(
          Event::SetNodeAttr(data.initial_time, n, AttrStr(k), std::nullopt, AttrStr(v)));
    }
  }
  for (const auto& [id, rec] : data.initial.edges()) {
    all.push_back(
        Event::AddEdge(data.initial_time, id, rec.src, rec.dst, rec.directed));
  }
  for (const auto& [id, attrs] : data.initial.edge_attrs()) {
    for (const auto& [k, v] : attrs) {
      all.push_back(
          Event::SetEdgeAttr(data.initial_time, id, AttrStr(k), std::nullopt, AttrStr(v)));
    }
  }
  all.insert(all.end(), data.events.begin(), data.events.end());
  return all;
}

/// Builds a Copy+Log index whose disk usage approximately matches
/// `disk_budget` — the equal-disk setup of the paper ("the leaf-eventlist
/// sizes were chosen so that the disk storage space consumed by both the
/// approaches was about the same"). Snapshots are expensive, so matching the
/// budget forces sparse checkpoints and long replay distances.
size_t CalibrateCopyLogSpacing(const Dataset& data, uint64_t disk_budget) {
  const std::vector<Event> all = Flatten(data);
  size_t spacing = std::max<size_t>(1000, all.size() / 20);
  for (int iter = 0; iter < 3; ++iter) {
    auto store = NewMemKVStore();
    CopyLogIndex probe(store.get(), spacing);
    if (!probe.Build(all).ok()) std::abort();
    const uint64_t disk = probe.StorageBytes();
    if (disk < disk_budget * 11 / 10 && disk > disk_budget * 9 / 10) break;
    const double ratio = static_cast<double>(disk) / static_cast<double>(disk_budget);
    spacing = std::max<size_t>(500, static_cast<size_t>(spacing * ratio));
    if (spacing >= all.size()) {
      spacing = all.size() - 1;
      break;
    }
  }
  return spacing;
}

Series RunCopyLog(const Dataset& data, size_t checkpoint_every,
                  const std::vector<Timestamp>& times) {
  Series s;
  s.label = "copy+log";
  auto store = NewSimDiskStore();
  CopyLogIndex index(store.get(), checkpoint_every);
  const std::vector<Event> all = Flatten(data);
  if (!index.Build(all).ok()) std::abort();
  s.disk_bytes = index.StorageBytes();
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = index.GetSnapshot(t, kCompAll);
    if (!snap.ok()) std::abort();
    s.ms.push_back(sw.ElapsedMillis());
  }
  return s;
}

Series RunDeltaGraph(const Dataset& data, size_t leaf_size, bool materialize_root,
                     const std::vector<Timestamp>& times) {
  Series s;
  s.label = materialize_root ? "DG(Int, root mat)" : "DG(Int)";
  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = leaf_size;
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;  // Pure disk-index comparison, as the paper.
  auto dg = BuildIndex(store.get(), data, opts);
  s.disk_bytes = dg->Stats().store_bytes;
  if (materialize_root) {
    if (!dg->MaterializeDepth(0).ok()) std::abort();
  }
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = dg->GetSnapshot(t, kCompAll);
    if (!snap.ok()) std::abort();
    s.ms.push_back(sw.ElapsedMillis());
  }
  return s;
}

void RunOn(const Dataset& data, bool with_root_mat) {
  std::printf("\n--- %s ---\n", data.name.c_str());
  const std::vector<Timestamp> times = UniformTimepoints(data, 25);
  const size_t base_L = std::max<size_t>(500, data.events.size() / 40);
  std::vector<Series> series;
  // Equal-disk setup: size Copy+Log's checkpoint spacing to the DeltaGraph's
  // disk budget (the paper's comparison protocol).
  Series dg = RunDeltaGraph(data, base_L, false, times);
  const size_t cl_spacing = CalibrateCopyLogSpacing(data, dg.disk_bytes);
  std::printf("copy+log checkpoint spacing calibrated to %zu events\n", cl_spacing);
  series.push_back(RunCopyLog(data, cl_spacing, times));
  series.push_back(std::move(dg));
  if (with_root_mat) series.push_back(RunDeltaGraph(data, base_L, true, times));

  std::vector<std::string> head = {"timepoint"};
  for (const auto& s : series) head.push_back(s.label);
  PrintRow(head, 20);
  for (size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {std::to_string(times[i])};
    for (const auto& s : series) row.push_back(FormatMs(s.ms[i]));
    PrintRow(row, 20);
  }
  std::printf("\n");
  for (const auto& s : series) {
    double total = 0;
    for (double v : s.ms) total += v;
    std::printf("%-20s disk=%-12s avg=%s\n", s.label.c_str(),
                FormatBytes(s.disk_bytes).c_str(), FormatMs(total / s.ms.size()).c_str());
  }
  const double cl_avg = [&] {
    double t = 0;
    for (double v : series[0].ms) t += v;
    return t / series[0].ms.size();
  }();
  // The paper's headline compares the *best* DeltaGraph variant.
  double best_avg = 1e300;
  std::string best_label;
  for (size_t i = 1; i < series.size(); ++i) {
    double t = 0;
    for (double v : series[i].ms) t += v;
    t /= series[i].ms.size();
    if (t < best_avg) {
      best_avg = t;
      best_label = series[i].label;
    }
  }
  std::printf("speedup %s over Copy+Log: %.2fx (paper: >=4x best variant)\n",
              best_label.c_str(), cl_avg / best_avg);
}

}  // namespace
}  // namespace bench
}  // namespace hgdb

int main() {
  using namespace hgdb::bench;
  PrintHeader("Figure 6: snapshot retrieval, Copy+Log vs DeltaGraph(Int)");
  RunOn(MakeDataset1(), /*with_root_mat=*/false);
  RunOn(MakeDataset2(), /*with_root_mat=*/true);
  return 0;
}
