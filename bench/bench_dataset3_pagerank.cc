// Dataset 3 deployment experiment (Section 7, "Experimental Setup"):
// a partitioned index with a parallel PageRank computation, timing full
// snapshot retrieval + PageRank per historical snapshot. The paper used 5-7
// single-core EC2 machines at ~22-23.8 s per snapshot; we reproduce the code
// path with one thread per partition on one machine.

#include "bench/bench_common.h"
#include "compute/algorithms.h"
#include "compute/graph_accessor.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "exec/io_pool.h"
#include "exec/task_pool.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Dataset 3: partitioned index + parallel PageRank");
  OpenReport("dataset3_pagerank");
  Dataset data = MakeDataset3();
  std::printf("dataset: %s\n", data.name.c_str());
  std::printf("initial: %zu nodes / %zu edges; churn: %zu events\n\n",
              data.initial.NodeCount(), data.initial.EdgeCount(),
              data.events.size());

  constexpr int kPartitions = 5;  // The paper's 5-machine deployment.
  std::vector<std::unique_ptr<KVStore>> stores;
  std::vector<KVStore*> ptrs;
  for (int i = 0; i < kPartitions; ++i) {
    stores.push_back(NewSimDiskStore());
    ptrs.push_back(stores.back().get());
  }
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / (40 * kPartitions));
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto pdg = PartitionedDeltaGraph::Create(ptrs, opts);
  if (!pdg.ok()) std::abort();
  // One compute worker and one I/O lane per partition ("machine").
  TaskPool pool(kPartitions);
  IoPool io(kPartitions);
  pdg.value()->SetTaskPool(&pool);
  pdg.value()->SetIoPool(&io);
  Stopwatch build_sw;
  if (!pdg.value()->SetInitialSnapshot(data.initial, data.initial_time).ok()) {
    std::abort();
  }
  if (!pdg.value()->AppendAll(data.events).ok()) std::abort();
  if (!pdg.value()->Finalize().ok()) std::abort();
  std::printf("partitioned index built in %s\n\n",
              FormatMs(build_sw.ElapsedMillis()).c_str());

  uint64_t index_bytes = 0;
  for (int i = 0; i < kPartitions; ++i) {
    index_bytes += pdg.value()->partition(i)->Stats().store_bytes;
  }
  std::printf("index storage across %d partitions: %s\n\n", kPartitions,
              FormatBytes(index_bytes).c_str());

  const std::vector<Timestamp> times = UniformTimepoints(data, 3);
  PrintRow({"timepoint", "retrieval", "pagerank", "total"}, 16);
  double total_all = 0;
  for (Timestamp t : times) {
    Stopwatch sw;
    auto snap = pdg.value()->GetSnapshot(t, kCompStruct);
    if (!snap.ok()) std::abort();
    const double retrieval_ms = sw.ElapsedMillis();
    sw.Restart();
    SnapshotAccessor acc(&snap.value());
    auto ranks = PageRank(acc, 10, 0.85, kPartitions);
    const double pr_ms = sw.ElapsedMillis();
    total_all += retrieval_ms + pr_ms;
    PrintRow({std::to_string(t), FormatMs(retrieval_ms), FormatMs(pr_ms),
              FormatMs(retrieval_ms + pr_ms)},
             16);
    ReportResult("retrieval_t" + std::to_string(t), retrieval_ms * 1e6);
    ReportResult("pagerank_t" + std::to_string(t), pr_ms * 1e6);
    (void)ranks;
  }
  ReportResult("avg_per_snapshot", total_all / times.size() * 1e6);
  std::printf("\navg per snapshot (retrieval + PageRank): %s\n",
              FormatMs(total_all / times.size()).c_str());
  std::printf("paper: ~22-23.8 s per snapshot at ~500x this scale on 5-7\n"
              "single-core machines; the claim is the code path, not the\n"
              "absolute number.\n");
  return 0;
}
