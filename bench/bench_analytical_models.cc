// Section 5 analytical models vs measurements: delta sizes, root sizes, and
// total index space for the Balanced and Intersection functions on a
// constant-rate trace. The paper derives these closed forms but reports no
// validation table; we produce one.

#include "analysis/models.h"
#include "bench/bench_common.h"
#include "workload/trace_world.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Section 5: analytical models vs measured index statistics");

  // Constant-rate world: bootstrap G0, then 50/50 add/delete churn.
  const double scale = WorkloadScale();
  TraceWorld world(42);
  std::vector<Event> bootstrap;
  Timestamp t = 1;
  const size_t n0 = static_cast<size_t>(1500 * scale);
  for (size_t i = 0; i < n0; ++i) world.AddNode(t, 0, &bootstrap);
  for (size_t i = 0; i < 4 * n0; ++i) {
    t += 1;
    world.AddRandomEdge(t, false, &bootstrap);
  }
  const Snapshot g0 = world.graph();
  std::vector<Event> churn;
  ChurnOptions copts;
  copts.num_events = static_cast<size_t>(60000 * scale);
  copts.add_fraction = 0.5;
  copts.seed = 3;
  AppendChurnPhase(&world, t + 1, copts, &churn);

  size_t inserts = 0, deletes = 0;
  for (const auto& e : churn) {
    if (e.type == EventType::kAddEdge) ++inserts;
    if (e.type == EventType::kDeleteEdge) ++deletes;
  }
  GraphDynamics dyn = EstimateDynamics(inserts, deletes, churn.size(),
                                       static_cast<double>(g0.ElementCount()));
  std::printf("G0: %zu elements; churn: %zu events, delta*=%.3f rho*=%.3f\n\n",
              g0.ElementCount(), churn.size(), dyn.delta_star, dyn.rho_star);

  const size_t L = 2000;
  const int k = 2;
  auto build = [&](const char* fn) {
    auto store = NewMemKVStore();
    DeltaGraphOptions opts;
    opts.leaf_size = L;
    opts.arity = k;
    opts.functions = {fn};
    opts.maintain_current = false;
    auto dg_result = DeltaGraph::Create(store.get(), opts);
    if (!dg_result.ok()) std::abort();
    auto dg = std::move(dg_result).value();
    if (!dg->SetInitialSnapshot(g0, t).ok()) std::abort();
    if (!dg->AppendAll(churn).ok()) std::abort();
    if (!dg->Finalize().ok()) std::abort();
    return std::make_pair(std::move(dg), std::move(store));
  };

  {
    auto [dg, store] = build("balanced");
    // Measured level-2 average delta elements.
    const auto& skel = dg->skeleton();
    double measured = 0;
    size_t count = 0;
    for (size_t i = 0; i < skel.edge_count(); ++i) {
      const auto& e = skel.edge(static_cast<int32_t>(i));
      if (e.deleted || e.is_eventlist) continue;
      if (skel.node(e.from).level == 2 && skel.node(e.to).is_leaf) {
        measured += static_cast<double>(e.sizes.TotalElements(kCompAll));
        ++count;
      }
    }
    measured /= std::max<size_t>(1, count);
    GraphDynamics churn_dyn = dyn;
    churn_dyn.num_events = static_cast<double>(churn.size());
    std::printf("Balanced function (L=%zu, k=%d)\n", L, k);
    PrintRow({"quantity", "model", "measured"}, 26);
    PrintRow({"level-2 delta elements",
              std::to_string(static_cast<uint64_t>(
                  BalancedDeltaElements(churn_dyn, L, k, 2))),
              std::to_string(static_cast<uint64_t>(measured))},
             26);
    PrintRow({"root-to-leaf path elems",
              std::to_string(
                  static_cast<uint64_t>(BalancedPathElements(churn_dyn))),
              "(see fig11 latencies)"},
             26);
  }

  {
    auto [dg, store] = build("intersection");
    const auto& skel = dg->skeleton();
    uint64_t root_elements = 0;
    for (int32_t eid : skel.incident_edges(skel.super_root())) {
      const auto& e = skel.edge(eid);
      if (!e.deleted) root_elements += e.sizes.TotalElements(kCompAll);
    }
    // Deletions hit edges only: survival model over the edge population plus
    // the never-deleted node population.
    GraphDynamics edge_dyn = dyn;
    edge_dyn.num_events = static_cast<double>(churn.size());
    edge_dyn.initial_size = static_cast<double>(g0.EdgeCount());
    const double predicted =
        static_cast<double>(g0.NodeCount()) + IntersectionRootSize(edge_dyn);
    std::printf("\nIntersection function\n");
    PrintRow({"quantity", "model", "measured"}, 26);
    PrintRow({"root elements", std::to_string(static_cast<uint64_t>(predicted)),
              std::to_string(root_elements)},
             26);
  }

  {
    GraphDynamics space_dyn = dyn;
    space_dyn.num_events = static_cast<double>(churn.size());
    std::printf("\nSpace comparisons (Section 5.4, in elements)\n");
    PrintRow({"structure", "model elements"}, 26);
    PrintRow({"balanced deltas",
              std::to_string(static_cast<uint64_t>(
                  BalancedTotalDeltaElements(space_dyn, L, k)))},
             26);
    PrintRow({"interval tree",
              std::to_string(
                  static_cast<uint64_t>(IntervalTreeElements(space_dyn)))},
             26);
    PrintRow({"segment tree",
              std::to_string(
                  static_cast<uint64_t>(SegmentTreeElements(space_dyn)))},
             26);
  }
  return 0;
}
